package alsrac

import (
	"bytes"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := Benchmark("rca32")
	if g == nil {
		t.Fatal("rca32 missing")
	}
	opts := DefaultOptions(NMED, 0.0005)
	opts.EvalPatterns = 2048
	res := Approximate(g, opts)
	if res.FinalError > opts.Threshold {
		t.Fatalf("error %.4g over threshold", res.FinalError)
	}
	if res.Graph.NumAnds() >= g.NumAnds() {
		t.Fatalf("no area saving: %d -> %d", g.NumAnds(), res.Graph.NumAnds())
	}
	if err := res.Graph.CheckStrict(); err != nil {
		t.Fatalf("flow produced a corrupt graph: %v", err)
	}
	// Independent re-measurement must agree with the flow's estimate to
	// sampling accuracy.
	err := MeasureError(g, res.Graph, NMED, 4096, 999)
	if err > 4*opts.Threshold {
		t.Fatalf("independent NMED %.4g far above threshold", err)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g := Benchmark("mtp8")
	opts := DefaultOptions(ER, 0.02)
	opts.EvalPatterns = 1024
	su := ApproximateSASIMI(g, opts)
	if su.FinalError > opts.Threshold {
		t.Fatalf("SASIMI error over threshold")
	}
	liu := ApproximateMCMC(g, ER, 0.02, 200, 1)
	if liu.FinalError > 0.02 {
		t.Fatalf("MCMC error over threshold")
	}
}

func TestPublicAPIMapping(t *testing.T) {
	g := Benchmark("cla32")
	lut := MapLUT(g, 6)
	if lut.LUTs <= 0 || lut.Depth <= 0 {
		t.Fatalf("bad LUT mapping %+v", lut)
	}
	asic := MapASIC(g)
	if asic.Area <= 0 || asic.Delay <= 0 {
		t.Fatalf("bad ASIC mapping %+v", asic)
	}
	o := Optimize(g)
	if o.NumAnds() > g.NumAnds() {
		t.Fatalf("Optimize grew the circuit")
	}
}

func TestPublicAPIBLIFRoundTrip(t *testing.T) {
	g := Benchmark("voter")
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumPIs() != g.NumPIs() || g2.NumPOs() != g.NumPOs() {
		t.Fatalf("round trip changed the interface")
	}
	if e := MeasureError(g, g2, ER, 2048, 7); e != 0 {
		t.Fatalf("round trip changed the function: ER %.4g", e)
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) < 20 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate benchmark %q", n)
		}
		seen[n] = true
		if Benchmark(n) == nil {
			t.Fatalf("benchmark %q does not build", n)
		}
	}
	for _, want := range []string{"rca32", "cla32", "ksa32", "mtp8", "wal8", "alu4", "voter", "priority", "mult", "sqrt"} {
		if !seen[want] {
			t.Fatalf("missing paper benchmark %q", want)
		}
	}
}

func TestNewCircuitConstruction(t *testing.T) {
	g := NewCircuit()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.Xor(a, b), "y")
	if g.NumAnds() != 3 {
		t.Fatalf("xor should cost 3 ANDs, got %d", g.NumAnds())
	}
}

func TestOptimizeResub(t *testing.T) {
	g := Benchmark("cla32")
	o := Optimize(g)
	r := OptimizeResub(g, 6)
	if r.NumAnds() > o.NumAnds() {
		t.Fatalf("OptimizeResub worse than Optimize: %d vs %d", r.NumAnds(), o.NumAnds())
	}
	if e := MeasureError(g, r, ER, 4096, 3); e != 0 {
		t.Fatalf("OptimizeResub changed the function: ER %.4g", e)
	}
}

func TestCircuitFileFormats(t *testing.T) {
	dir := t.TempDir()
	g := Benchmark("alu4")
	for _, name := range []string{"a.blif", "a.aag", "a.aig", "a.v"} {
		path := dir + "/" + name
		if err := WriteCircuitFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "a.v" {
			continue // no Verilog reader by design
		}
		g2, err := ReadCircuitFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e := MeasureError(g, g2, ER, 2048, 5); e != 0 {
			t.Fatalf("%s: round trip changed function (ER %.4g)", name, e)
		}
	}
	if err := WriteCircuitFile(dir+"/a.xyz", g); err == nil {
		t.Fatalf("expected error for unknown extension")
	}
	if _, err := ReadCircuitFile(dir + "/a.xyz"); err == nil {
		t.Fatalf("expected error for unknown extension")
	}
	if _, err := ReadCircuitFile(dir + "/missing.blif"); err == nil {
		t.Fatalf("expected error for missing file")
	}
}

func TestAIGERWrappers(t *testing.T) {
	g := Benchmark("bcd7seg")
	var buf bytes.Buffer
	if err := WriteAIGER(&buf, g, "aig"); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadAIGER(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := MeasureError(g, g2, ER, 1024, 9); e != 0 {
		t.Fatalf("AIGER wrapper round trip failed")
	}
	if err := WriteAIGER(&buf, g, "nope"); err == nil {
		t.Fatalf("expected format error")
	}
}

func TestVerilogWrapper(t *testing.T) {
	g := Benchmark("gray8")
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("module")) {
		t.Fatalf("no module in Verilog output")
	}
}

func TestPatternHelpers(t *testing.T) {
	p := UniformPatterns(4, 100, 3)
	if p.Valid != 100 || len(p.In) != 4 {
		t.Fatalf("UniformPatterns shape wrong")
	}
	b := BiasedPatterns([]float64{0.1, 0.9}, 200, 3)
	if b.Valid != 200 || len(b.In) != 2 {
		t.Fatalf("BiasedPatterns shape wrong")
	}
	// MeasureErrorOnPatterns consistency with MeasureError at same seed.
	g := Benchmark("cmp16")
	approx := Optimize(g)
	if MeasureErrorOnPatterns(g, approx, ER, UniformPatterns(g.NumPIs(), 1024, 7)) != 0 {
		t.Fatalf("exact optimization should have zero error")
	}
}

func TestBLIFFileHelpers(t *testing.T) {
	dir := t.TempDir()
	g := Benchmark("parity16")
	path := dir + "/p.blif"
	if err := WriteBLIFFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBLIFFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumPIs() != 16 {
		t.Fatalf("parity16 lost inputs")
	}
	if _, err := ReadBLIFFile(dir + "/none.blif"); err == nil {
		t.Fatalf("expected error for missing file")
	}
}
