// Quickstart: approximate a 32-bit ripple-carry adder under an NMED
// constraint and watch area shrink as the error budget grows — the
// motivating use case from the paper's introduction (error-resilient
// arithmetic for energy efficiency).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	g := alsrac.Benchmark("rca32")
	g = alsrac.Optimize(g)
	base := alsrac.MapASIC(g)
	fmt.Printf("exact rca32: %d ANDs, cell area %.0f, delay %.1f\n\n",
		g.NumAnds(), base.Area, base.Delay)

	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n",
		"NMED budget", "ANDs", "area", "area%", "delay%", "time")
	for _, et := range []float64{0.00001, 0.0001, 0.001, 0.01} {
		opts := alsrac.DefaultOptions(alsrac.NMED, et)
		opts.EvalPatterns = 4096

		start := time.Now()
		res := alsrac.Approximate(g, opts)
		m := alsrac.MapASIC(res.Graph)

		fmt.Printf("%-12.5f %10d %10.0f %9.1f%% %9.1f%% %10v\n",
			et, res.Graph.NumAnds(), m.Area,
			100*m.Area/base.Area, 100*m.Delay/base.Delay,
			time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nEvery row satisfies its error budget; looser budgets buy more area.")
}
