// Custom input distribution: the paper notes ALSRAC "is applicable to any
// PI distribution". This example approximates an 8x8 multiplier whose
// operands are usually SMALL (high bits rarely set) — a common situation in
// image kernels — and shows that synthesizing against the true distribution
// yields a smaller circuit than assuming uniform inputs, at the same
// application-level error.
//
// Run with:
//
//	go run ./examples/custom_distribution
package main

import (
	"fmt"

	"repro"
)

func main() {
	g := alsrac.Optimize(alsrac.Benchmark("mtp8"))
	base := alsrac.MapASIC(g)
	const et = 0.00005 // NMED budget under the circuit's OWN input distribution

	// Operand bits get rarer toward the MSB: P(bit i) = 0.5 · 0.7^i.
	probs := make([]float64, g.NumPIs())
	for i := range probs {
		p := 0.5
		for k := 0; k < i%8; k++ {
			p *= 0.7
		}
		probs[i] = p
	}
	biased := func(nPIs, n int, seed int64) *alsrac.Patterns {
		return alsrac.BiasedPatterns(probs, n, seed)
	}

	fmt.Printf("mtp8 with small-operand inputs, NMED <= %.4f%% under the real distribution\n\n", 100*et)

	// Flow 1: assume uniform inputs (the mismatch case).
	uni := alsrac.DefaultOptions(alsrac.NMED, et)
	uni.EvalPatterns = 8192
	resU := alsrac.Approximate(g, uni)

	// Flow 2: synthesize against the true biased distribution.
	bia := alsrac.DefaultOptions(alsrac.NMED, et)
	bia.EvalPatterns = 8192
	bia.Patterns = biased
	resB := alsrac.Approximate(g, bia)

	// Judge both under the TRUE (biased) distribution.
	judge := func(c *alsrac.Circuit) float64 {
		pats := alsrac.BiasedPatterns(probs, 1<<15, 999)
		return alsrac.MeasureErrorOnPatterns(g, c, alsrac.NMED, pats)
	}
	mU := alsrac.MapASIC(resU.Graph)
	mB := alsrac.MapASIC(resB.Graph)
	fmt.Printf("%-22s %8s %8s %14s\n", "synthesized against", "ANDs", "area%", "NMED(real dist)")
	fmt.Printf("%-22s %8d %7.1f%% %14.3g\n", "uniform (mismatch)",
		resU.Graph.NumAnds(), 100*mU.Area/base.Area, judge(resU.Graph))
	fmt.Printf("%-22s %8d %7.1f%% %14.3g\n", "biased (matched)",
		resB.Graph.NumAnds(), 100*mB.Area/base.Area, judge(resB.Graph))
	fmt.Println("\nMatching the synthesis distribution to the workload buys substantially more area\nat a comparable application-level error.")
}
