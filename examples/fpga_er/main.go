// FPGA flow: reproduce one row of the paper's Table VI — approximate an
// EPFL-style control circuit under a 1% error-rate budget and map it into
// 6-input LUTs, comparing ALSRAC with the stochastic (Liu-style MCMC)
// baseline.
//
// Run with:
//
//	go run ./examples/fpga_er
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	for _, name := range []string{"priority", "int2float"} {
		g := alsrac.Optimize(alsrac.Benchmark(name))
		base := alsrac.MapLUT(g, 6)
		const et = 0.01

		fmt.Printf("%s: %d 6-LUTs, depth %d; budget ER <= 1%%\n", name, base.LUTs, base.Depth)

		opts := alsrac.DefaultOptions(alsrac.ER, et)
		opts.EvalPatterns = 4096

		start := time.Now()
		res := alsrac.Approximate(g, opts)
		m := alsrac.MapLUT(res.Graph, 6)
		fmt.Printf("  ALSRAC: %3d LUTs (%.1f%%), depth %d (%.1f%%), ER %.4f, %v\n",
			m.LUTs, 100*float64(m.LUTs)/float64(base.LUTs),
			m.Depth, 100*float64(m.Depth)/float64(base.Depth),
			res.FinalError, time.Since(start).Round(time.Millisecond))

		start = time.Now()
		liu := alsrac.ApproximateMCMC(g, alsrac.ER, et, 1500, 1)
		lm := alsrac.MapLUT(liu.Graph, 6)
		fmt.Printf("  Liu's : %3d LUTs (%.1f%%), depth %d (%.1f%%), ER %.4f, %v\n\n",
			lm.LUTs, 100*float64(lm.LUTs)/float64(base.LUTs),
			lm.Depth, 100*float64(lm.Depth)/float64(base.Depth),
			liu.FinalError, time.Since(start).Round(time.Millisecond))
	}
}
