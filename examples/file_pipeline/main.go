// File pipeline: the end-to-end tool story — generate a benchmark netlist,
// write it to BLIF, read it back, approximate under a delay constraint,
// and export the result as BLIF, AIGER and structural Verilog for
// downstream tools.
//
// Run with:
//
//	go run ./examples/file_pipeline
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "alsrac-pipeline")
	check(err)
	defer os.RemoveAll(dir)

	// 1. Generate and save an exact design.
	exact := alsrac.Optimize(alsrac.Benchmark("wal8"))
	exactPath := filepath.Join(dir, "wal8.blif")
	check(alsrac.WriteBLIFFile(exactPath, exact))
	fmt.Printf("wrote exact design      %s (%d ANDs, depth %d)\n",
		exactPath, exact.NumAnds(), exact.Depth())

	// 2. Read it back, as a downstream user would.
	g, err := alsrac.ReadCircuitFile(exactPath)
	check(err)

	// 3. Approximate under MRED with a hard depth cap at the original.
	opts := alsrac.DefaultOptions(alsrac.MRED, 0.002)
	opts.EvalPatterns = 4096
	opts.MaxDepthRatio = 1.0
	res := alsrac.Approximate(g, opts)
	fmt.Printf("approximated            %d -> %d ANDs, depth %d -> %d, MRED %.4g\n",
		g.NumAnds(), res.Graph.NumAnds(), g.Depth(), res.Graph.Depth(), res.FinalError)

	// 4. Export in every supported format.
	for _, name := range []string{"wal8_approx.blif", "wal8_approx.aag", "wal8_approx.aig", "wal8_approx.v"} {
		path := filepath.Join(dir, name)
		check(alsrac.WriteCircuitFile(path, res.Graph))
		info, _ := os.Stat(path)
		fmt.Printf("exported                %s (%d bytes)\n", path, info.Size())
	}

	// 5. Round-trip check: the AIGER copy must match the BLIF copy exactly.
	a, err := alsrac.ReadCircuitFile(filepath.Join(dir, "wal8_approx.aag"))
	check(err)
	b, err := alsrac.ReadCircuitFile(filepath.Join(dir, "wal8_approx.blif"))
	check(err)
	if er := alsrac.MeasureError(a, b, alsrac.ER, 4096, 7); er != 0 {
		fmt.Println("ERROR: format round trip mismatch!")
		os.Exit(1)
	}
	fmt.Println("format round trip       OK (AIGER and BLIF copies are equivalent)")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
}
