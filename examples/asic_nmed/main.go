// ASIC flow comparison: reproduce one row of the paper's Table V — ALSRAC
// versus the SASIMI-style baseline (Su et al., DAC'18) on a carry-lookahead
// adder under an NMED constraint, both mapped onto the MCNC-style cell
// library.
//
// Run with:
//
//	go run ./examples/asic_nmed
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	g := alsrac.Optimize(alsrac.Benchmark("cla32"))
	base := alsrac.MapASIC(g)
	const et = 0.0019531 // the loosest Table V threshold (0.19531%)

	fmt.Printf("cla32, NMED <= %.5f%%, MCNC-style cells (base area %.0f)\n\n", 100*et, base.Area)
	fmt.Printf("%-8s %10s %10s %10s %12s %10s\n", "flow", "ANDs", "area%", "delay%", "measured", "time")

	type flow struct {
		name string
		run  func() alsrac.Result
	}
	opts := alsrac.DefaultOptions(alsrac.NMED, et)
	opts.EvalPatterns = 4096
	for _, f := range []flow{
		{"ALSRAC", func() alsrac.Result { return alsrac.Approximate(g, opts) }},
		{"Su's", func() alsrac.Result { return alsrac.ApproximateSASIMI(g, opts) }},
	} {
		start := time.Now()
		res := f.run()
		elapsed := time.Since(start)
		m := alsrac.MapASIC(res.Graph)
		// Re-measure the error independently with fresh patterns.
		indep := alsrac.MeasureError(g, res.Graph, alsrac.NMED, 1<<15, 77)
		fmt.Printf("%-8s %10d %9.1f%% %9.1f%% %12.3g %10v\n",
			f.name, res.Graph.NumAnds(),
			100*m.Area/base.Area, 100*m.Delay/base.Delay,
			indep, elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nBoth flows respect the budget; compare the area columns (smaller is better).")
}
