package alsrac_test

import (
	"fmt"
	"strings"

	"repro"
)

// Building a circuit programmatically with the Circuit API.
func ExampleNewCircuit() {
	g := alsrac.NewCircuit()
	a := g.AddPI("a")
	b := g.AddPI("b")
	cin := g.AddPI("cin")
	axb := g.Xor(a, b)
	g.AddPO(g.Xor(axb, cin), "sum")
	g.AddPO(g.Or(g.And(a, b), g.And(axb, cin)), "cout")
	fmt.Println(g.NumPIs(), g.NumPOs(), g.NumAnds() > 0)
	// Output: 3 2 true
}

// Parsing a BLIF netlist into a circuit.
func ExampleReadBLIF() {
	src := `
.model mux
.inputs s a b
.outputs y
.names s a b y
11- 1
0-1 1
.end
`
	g, err := alsrac.ReadBLIF(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Name, g.NumPIs(), g.NumPOs())
	// Output: mux 3 1
}

// Measuring the error of an approximate circuit against its reference.
func ExampleMeasureError() {
	exact := alsrac.Benchmark("rca32")
	// An exact optimization has zero error by definition.
	optimized := alsrac.Optimize(exact)
	fmt.Println(alsrac.MeasureError(exact, optimized, alsrac.ER, 4096, 1))
	// Output: 0
}

// Running the ALSRAC flow with the paper's default parameters.
func ExampleApproximate() {
	g := alsrac.Benchmark("rca32")
	opts := alsrac.DefaultOptions(alsrac.NMED, 0.001)
	opts.EvalPatterns = 2048
	res := alsrac.Approximate(g, opts)
	fmt.Println(res.Graph.NumAnds() < g.NumAnds(), res.FinalError <= opts.Threshold)
	// Output: true true
}
