#!/usr/bin/env bash
# bench.sh — run the core benchmarks (simulation, candidate generation,
# candidate ranking, end-to-end flow, service job throughput, cluster
# dispatch) and record ns/op, B/op and allocs/op as JSON. Usage: scripts/bench.sh [out.json];
# BENCHTIME overrides the per-benchmark time (default 1s).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
benchtime="${BENCHTIME:-1s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkSimulate$|BenchmarkGenerate$|BenchmarkALSRACFlowRCA32$' \
    -benchmem -benchtime="$benchtime" . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkRankCandidates$|BenchmarkSessionStep$|BenchmarkWindowedFlow$' \
    -benchmem -benchtime="$benchtime" ./internal/core | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkServiceThroughput$' \
    -benchmem -benchtime="$benchtime" ./internal/service | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkCertifyExhaustive$|BenchmarkCertifySAT$' \
    -benchmem -benchtime="$benchtime" ./internal/exact | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkClusterDispatch$' \
    -benchmem -benchtime="$benchtime" ./internal/cluster | tee -a "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; b = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "B/op") b = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (b == "" ? 0 : b), (allocs == "" ? 0 : allocs)
}
BEGIN { printf "{\n  \"benchmarks\": {\n" }
END   { printf "\n  }\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
