#!/usr/bin/env bash
# benchcheck.sh — benchmark-regression gate. Compares a freshly recorded
# bench JSON (scripts/bench.sh output) against the best prior BENCH_*.json
# baselines and fails when any shared benchmark regressed by more than the
# threshold in ns/op or allocs/op.
#
# Usage: scripts/benchcheck.sh NEW.json [BASELINE.json ...]
#   With no explicit baselines, every BENCH_*.json in the repo root except
#   NEW.json is used; the per-benchmark baseline is the minimum across them.
#   Benchmarks present only in NEW.json are reported informationally.
#
# BENCHCHECK_THRESHOLD_PCT overrides the allowed regression (default 10).
# BENCHCHECK_SKIP is an optional awk regex of benchmark names to exclude —
# for benchmarks whose historical baseline is stale by design (e.g. a later
# change deliberately traded that benchmark's speed for durability).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: scripts/benchcheck.sh NEW.json [BASELINE.json ...]" >&2
    exit 2
fi
new="$1"
shift
[[ -f "$new" ]] || { echo "benchcheck: $new not found" >&2; exit 2; }

baselines=("$@")
if [[ ${#baselines[@]} -eq 0 ]]; then
    for f in BENCH_*.json; do
        [[ -f "$f" && "$f" != "$(basename "$new")" ]] && baselines+=("$f")
    done
fi
if [[ ${#baselines[@]} -eq 0 ]]; then
    echo "benchcheck: no baselines found; nothing to gate against"
    exit 0
fi

threshold="${BENCHCHECK_THRESHOLD_PCT:-10}"
skip="${BENCHCHECK_SKIP:-}"
echo "benchcheck: $new vs best of: ${baselines[*]} (threshold ${threshold}%)"
[[ -n "$skip" ]] && echo "benchcheck: skipping /${skip}/"

# The JSON is bench.sh's own one-benchmark-per-line format; extract
# name/ns/allocs triples with awk rather than requiring a JSON tool.
extract() {
    awk -F'"' '
/"ns_per_op"/ {
    name = $2
    line = $0
    ns = line; sub(/.*"ns_per_op": */, "", ns); sub(/[,}].*/, "", ns)
    al = line; sub(/.*"allocs_per_op": */, "", al); sub(/[,}].*/, "", al)
    print name, ns, al
}' "$1"
}

tmp_new="$(mktemp)"
tmp_base="$(mktemp)"
trap 'rm -f "$tmp_new" "$tmp_base"' EXIT
extract "$new" > "$tmp_new"
for f in "${baselines[@]}"; do extract "$f"; done > "$tmp_base"

awk -v thr="$threshold" -v skip="$skip" '
NR == FNR {
    # Baselines: keep the best (minimum) prior value per benchmark.
    if (!($1 in bns) || $2 + 0 < bns[$1]) bns[$1] = $2 + 0
    if (!($1 in bal) || $3 + 0 < bal[$1]) bal[$1] = $3 + 0
    next
}
{
    name = $1; ns = $2 + 0; al = $3 + 0
    if (skip != "" && name ~ skip) {
        printf "  skip  %-45s %12.0f ns/op %10d allocs/op\n", name, ns, al
        next
    }
    if (!(name in bns)) {
        printf "  new   %-45s %12.0f ns/op %10d allocs/op (no baseline)\n", name, ns, al
        news = news (news == "" ? "" : ", ") name
        next
    }
    nsLim = bns[name] * (1 + thr / 100)
    alLim = bal[name] * (1 + thr / 100)
    status = "ok"
    if (ns > nsLim) { status = "FAIL ns/op"; failed = 1 }
    else if (al > alLim) { status = "FAIL allocs/op"; failed = 1 }
    printf "  %-5s %-45s %12.0f ns/op (best %12.0f) %10d allocs/op (best %10d)\n", \
        status == "ok" ? "ok" : "FAIL", name, ns, bns[name], al, bal[name]
    if (status != "ok")
        printf "        ^ %s regressed beyond %s%% over the best baseline\n", name, thr
}
END {
    # Call out benchmarks that ran ungated so a new benchmark cannot slip
    # into the suite unnoticed: it must be seeded into a BENCH_*.json
    # baseline before the gate starts protecting it.
    if (news != "")
        printf "benchcheck: ungated new benchmarks (seed a baseline): %s\n", news
    exit failed ? 1 : 0
}
' "$tmp_base" "$tmp_new" || { echo "benchcheck: regression detected"; exit 1; }

echo "benchcheck: no regressions"
