#!/usr/bin/env bash
# smoke_daemon.sh — end-to-end smoke test of the alsracd daemon: build it,
# start it, submit an example circuit over HTTP, follow the job to
# completion, fetch the result, scrape /metrics, and shut down gracefully.
# Usage: scripts/smoke_daemon.sh [port] (default 18337).
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-18337}"
base="http://localhost:$port"
dir="$(mktemp -d)"
log="$dir/alsracd.log"

go build -o "$dir/alsracd" ./cmd/alsracd

"$dir/alsracd" -addr "localhost:$port" -dir "$dir/jobs" -jobs 2 >"$log" 2>&1 &
pid=$!
cleanup() {
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

# Wait for the daemon to come up.
for i in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "daemon never became healthy"; cat "$log"; exit 1; fi
    sleep 0.1
done
echo "daemon healthy on port $port"

# Submit the example circuit.
submit="$(curl -sf -X POST --data-binary @examples/circuits/cla16.blif \
    "$base/jobs?metric=er&threshold=0.05&seed=3&eval=1024")"
id="$(printf '%s' "$submit" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')"
if [ -z "$id" ]; then echo "submit failed: $submit"; exit 1; fi
echo "submitted job $id"

# Poll until the job reaches a terminal state.
state=""
for i in $(seq 1 600); do
    status="$(curl -sf "$base/jobs/$id?history=0")"
    state="$(printf '%s' "$status" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed|cancelled) echo "job ended in state $state: $status"; exit 1 ;;
    esac
    if [ "$i" = 600 ]; then echo "job stuck in state $state"; exit 1; fi
    sleep 0.1
done
echo "job $id done"

# The event stream must replay to a terminal event.
events="$(curl -sf "$base/jobs/$id/events")"
printf '%s\n' "$events" | grep -q '"state":"done"' || {
    echo "event stream has no terminal event:"; printf '%s\n' "$events"; exit 1; }

# Fetch the result and sanity-check it is an AIGER file.
curl -sf "$base/jobs/$id/result" >"$dir/result.aag"
head -c 4 "$dir/result.aag" | grep -q "aag " || {
    echo "result is not ASCII AIGER:"; head -1 "$dir/result.aag"; exit 1; }
echo "result: $(head -1 "$dir/result.aag")"

# Scrape /metrics and check the counters moved.
metrics="$(curl -sf "$base/metrics")"
printf '%s\n' "$metrics" | grep -q '^alsrac_jobs_submitted_total 1$' || {
    echo "unexpected submitted counter:"; printf '%s\n' "$metrics" | grep alsrac_jobs; exit 1; }
printf '%s\n' "$metrics" | grep -q '^alsrac_jobs{state="done"} 1$' || {
    echo "job not counted as done:"; printf '%s\n' "$metrics" | grep alsrac_jobs; exit 1; }

# The robustness series must be exported even when nothing went wrong (a
# clean run reports them at 0) so dashboards and alerts can rely on them.
for series in alsrac_checkpoint_fallback_total alsrac_store_retries_total \
              alsrac_jobs_quarantined_total alsrac_worker_panics_total; do
    printf '%s\n' "$metrics" | grep -q "^$series " || {
        echo "missing robustness series $series:"; printf '%s\n' "$metrics"; exit 1; }
done
echo "metrics OK"

# Certified job type: metric=maxerr runs the same circuit with every commit
# proven by the exact max-error checker. The bound defaults to the threshold.
submit="$(curl -sf -X POST --data-binary @examples/circuits/cla16.blif \
    "$base/jobs?metric=maxerr&threshold=0.05&seed=3&eval=1024")"
cid="$(printf '%s' "$submit" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')"
if [ -z "$cid" ]; then echo "certified submit failed: $submit"; exit 1; fi
echo "submitted certified job $cid"

state=""
for i in $(seq 1 600); do
    status="$(curl -sf "$base/jobs/$cid?history=0")"
    state="$(printf '%s' "$status" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed|cancelled) echo "certified job ended in state $state: $status"; exit 1 ;;
    esac
    if [ "$i" = 600 ]; then echo "certified job stuck in state $state"; exit 1; fi
    sleep 0.1
done
echo "certified job $cid done"

# Its NDJSON stream must carry certified step events — and never a plain
# "applied" one: in certified mode every commit goes through the checker.
events="$(curl -sf "$base/jobs/$cid/events")"
printf '%s\n' "$events" | grep -q '"kind":"certified"' || {
    echo "no certified event in stream:"; printf '%s\n' "$events" | head -5; exit 1; }
printf '%s\n' "$events" | grep -q '"kind":"applied"' && {
    echo "plain applied event in a certified job:"; printf '%s\n' "$events" | head -5; exit 1; }

# The certification instruments must be exported and the call counter moved.
metrics="$(curl -sf "$base/metrics")"
printf '%s\n' "$metrics" | grep -q '^alsrac_certify_total{backend="' || {
    echo "missing alsrac_certify_total:"; printf '%s\n' "$metrics" | grep alsrac_certify; exit 1; }
printf '%s\n' "$metrics" | awk '/^alsrac_certify_total\{/ { sum += $2 } END { exit sum > 0 ? 0 : 1 }' || {
    echo "alsrac_certify_total never moved:"; printf '%s\n' "$metrics" | grep alsrac_certify; exit 1; }
for series in alsrac_certify_rejected_total alsrac_sat_conflicts_total; do
    printf '%s\n' "$metrics" | grep -q "^$series " || {
        echo "missing certification series $series:"; printf '%s\n' "$metrics" | grep alsrac; exit 1; }
done
printf '%s\n' "$metrics" | grep -q '^alsrac_certify_seconds_count{backend="' || {
    echo "missing alsrac_certify_seconds histogram:"; printf '%s\n' "$metrics" | grep alsrac_certify; exit 1; }
echo "certified job metrics OK"

# Graceful shutdown must complete promptly.
kill -TERM "$pid"
for i in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    if [ "$i" = 100 ]; then echo "daemon did not shut down"; cat "$log"; exit 1; fi
    sleep 0.1
done
wait "$pid" 2>/dev/null || true
grep -q "shutdown complete" "$log" || { echo "no clean shutdown in log:"; cat "$log"; exit 1; }
echo "daemon smoke test passed"
