#!/usr/bin/env bash
# smoke_cluster.sh — end-to-end smoke test of the alsracd cluster: start a
# coordinator and two workers, submit a job, kill -9 the worker that owns it
# right after its first checkpoint upload, and assert the other worker
# resumes and finishes with a result bitwise-identical to a single-process
# run of the same spec. Also checks the duplicate-submission cache hit and
# the cluster metrics surface.
# Usage: scripts/smoke_cluster.sh [port] (default 18447; port+1 is used for
# the single-process reference daemon).
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-18447}"
refport=$((port + 1))
base="http://localhost:$port"
refbase="http://localhost:$refport"
dir="$(mktemp -d)"

go build -o "$dir/alsracd" ./cmd/alsracd

spec="metric=er&threshold=0.05&seed=3&eval=8192&workers=1"

cleanup() {
    kill "${coord_pid:-0}" "${w1_pid:-0}" "${w2_pid:-0}" "${ref_pid:-0}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

wait_healthy() { # base-url log-file
    for i in $(seq 1 50); do
        if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "server at $1 never became healthy"; cat "$2"; exit 1
}

poll_done() { # base-url job-id what
    local state=""
    for i in $(seq 1 600); do
        state="$(curl -sf "$1/jobs/$2" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
        case "$state" in
            done) return 0 ;;
            failed|cancelled|quarantined) echo "$3 ended in state $state"; exit 1 ;;
        esac
        sleep 0.1
    done
    echo "$3 stuck in state $state"; exit 1
}

# --- single-process reference run -----------------------------------------
"$dir/alsracd" -addr "localhost:$refport" -dir "$dir/ref" >"$dir/ref.log" 2>&1 &
ref_pid=$!
wait_healthy "$refbase" "$dir/ref.log"
rid="$(curl -sf -X POST --data-binary @examples/circuits/cla16.blif \
    "$refbase/jobs?$spec" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')"
[ -n "$rid" ] || { echo "reference submit failed"; exit 1; }
poll_done "$refbase" "$rid" "reference job"
curl -sf "$refbase/jobs/$rid/result" >"$dir/reference.aag"
kill -TERM "$ref_pid"; wait "$ref_pid" 2>/dev/null || true
echo "reference run done ($(head -1 "$dir/reference.aag"))"

# --- cluster: coordinator + two workers -----------------------------------
"$dir/alsracd" -coordinator -addr "localhost:$port" -dir "$dir/coord" \
    -lease-ttl 2s -poll-interval 100ms >"$dir/coord.log" 2>&1 &
coord_pid=$!
wait_healthy "$base" "$dir/coord.log"

"$dir/alsracd" -worker -join "$base" -name victim -checkpoint-every 1 \
    >"$dir/w1.log" 2>&1 &
w1_pid=$!
"$dir/alsracd" -worker -join "$base" -name successor -checkpoint-every 1 \
    >"$dir/w2.log" 2>&1 &
w2_pid=$!
echo "coordinator up (pid $coord_pid), workers $w1_pid and $w2_pid"

id="$(curl -sf -X POST --data-binary @examples/circuits/cla16.blif \
    "$base/jobs?$spec" | sed -n 's/.*"id": "\(c[0-9]*\)".*/\1/p')"
[ -n "$id" ] || { echo "cluster submit failed"; exit 1; }
echo "submitted cluster job $id"

# Wait for the first checkpoint upload, then SIGKILL whichever worker owns
# the job — a real kill -9: no farewell checkpoint, no graceful anything.
owner=""
for i in $(seq 1 600); do
    ckpts="$(curl -sf "$base/metrics" | sed -n 's/^alsrac_cluster_checkpoints_total \([0-9]*\)$/\1/p')"
    if [ "${ckpts:-0}" -ge 1 ]; then
        owner="$(curl -sf "$base/jobs/$id" | sed -n 's/.*"worker": "\(w[0-9]*\)".*/\1/p')"
        break
    fi
    sleep 0.05
done
[ -n "$owner" ] || { echo "no checkpoint observed (job finished too fast or never ran)"; cat "$dir/coord.log"; exit 1; }
if grep -q "worker $owner (victim) registered" "$dir/coord.log"; then
    victim_pid=$w1_pid
elif grep -q "worker $owner (successor) registered" "$dir/coord.log"; then
    victim_pid=$w2_pid
else
    echo "cannot map owner $owner to a worker pid"; cat "$dir/coord.log"; exit 1
fi
kill -9 "$victim_pid"
echo "killed owning worker $owner (pid $victim_pid) after first checkpoint"

# The survivor must inherit the lease after expiry and finish the job.
poll_done "$base" "$id" "cluster job"
curl -sf "$base/jobs/$id/result" >"$dir/cluster.aag"
cmp "$dir/reference.aag" "$dir/cluster.aag" || {
    echo "BIT-IDENTITY VIOLATION: cluster kill-and-resume result differs from single-process run"
    exit 1
}
echo "kill-and-resume result is bitwise identical to the single-process run"

# Reassignment and checkpoint counters must have moved.
metrics="$(curl -sf "$base/metrics")"
printf '%s\n' "$metrics" | awk '/^alsrac_cluster_reassignments_total / { exit $2 >= 1 ? 0 : 1 }' || {
    echo "no reassignment recorded:"; printf '%s\n' "$metrics" | grep alsrac_cluster; exit 1; }
printf '%s\n' "$metrics" | awk '/^alsrac_cluster_leases_expired_total / { exit $2 >= 1 ? 0 : 1 }' || {
    echo "no lease expiry recorded:"; printf '%s\n' "$metrics" | grep alsrac_cluster; exit 1; }

# Duplicate submission: same circuit, same spec — must be an instant cache
# hit served from the content-addressed store, never reaching a worker.
dup="$(curl -sf -X POST --data-binary @examples/circuits/cla16.blif "$base/jobs?$spec")"
printf '%s' "$dup" | grep -q '"cache_hit": true' || { echo "duplicate was not a cache hit: $dup"; exit 1; }
printf '%s' "$dup" | grep -q '"state": "done"' || { echo "duplicate not instantly done: $dup"; exit 1; }
did="$(printf '%s' "$dup" | sed -n 's/.*"id": "\(c[0-9]*\)".*/\1/p')"
curl -sf "$base/jobs/$did/result" >"$dir/dup.aag"
cmp "$dir/reference.aag" "$dir/dup.aag" || { echo "cache hit served different bytes"; exit 1; }
curl -sf "$base/metrics" | grep -q '^alsrac_cluster_cache_hits_total 1$' || {
    echo "cache-hit counter did not move"; exit 1; }
echo "duplicate submission served from cache, bitwise identical"

# Graceful teardown of coordinator and surviving worker.
kill -TERM "$coord_pid"
for i in $(seq 1 100); do
    if ! kill -0 "$coord_pid" 2>/dev/null; then break; fi
    if [ "$i" = 100 ]; then echo "coordinator did not shut down"; cat "$dir/coord.log"; exit 1; fi
    sleep 0.1
done
echo "cluster smoke test passed"
