#!/usr/bin/env bash
# Tier-1 verification: build, vet, the full test suite, then the race
# detector over the concurrency-bearing packages.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/wordops ./internal/sim ./internal/resub ./internal/errest ./internal/core
