#!/usr/bin/env bash
# Tier-1 verification: build, vet, the project's own analyzer suite (all
# eight rules — determinism, hotpath, concurrency, tailmask, plus the
# interprocedural allocflow, leaks, ctxflow and errwrap on the shared
# dataflow engine), the full test suite, the race detector over the
# concurrency-bearing packages, and a short fuzz smoke over the
# property-tested kernels. Any failure is fatal (set -e): a vet finding, an
# alsraclint diagnostic, a race, or a fuzz counterexample all fail the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/alsraclint ./...
go test ./...
go test -race ./internal/wordops ./internal/sim ./internal/resub ./internal/window ./internal/errest ./internal/core ./internal/exact ./internal/exact/sat ./internal/obs ./internal/service ./internal/faultfs ./internal/cluster

# Chaos gate: the seeded fault-injection matrix (torn writes, injected
# errnos, crash points, worker panics, crash-loop quarantine) under the race
# detector. Set CHAOS=0 to skip locally; CI always runs it.
CHAOS="${CHAOS:-1}"
if [ "$CHAOS" != "0" ]; then
    go test -race -run '^TestChaos' ./internal/service
fi

# Daemon e2e smoke: submit over HTTP, poll to completion, scrape /metrics,
# graceful shutdown.
scripts/smoke_daemon.sh

# Cluster e2e smoke: coordinator + two workers, kill -9 the owning worker
# after its first checkpoint, assert the survivor finishes bit-identically
# to a single-process run, and that a duplicate submission is a cache hit.
scripts/smoke_cluster.sh

# Fuzz smoke: 10 seconds per target (go runs one -fuzz target at a time).
FUZZTIME="${FUZZTIME:-10s}"
go test -run='^$' -fuzz='^FuzzCoverScan$' -fuzztime="$FUZZTIME" ./internal/resub
go test -run='^$' -fuzz='^FuzzISOP$' -fuzztime="$FUZZTIME" ./internal/tt
go test -run='^$' -fuzz='^FuzzEspresso$' -fuzztime="$FUZZTIME" ./internal/espresso
go test -run='^$' -fuzz='^FuzzAIGERParse$' -fuzztime="$FUZZTIME" ./internal/aiger
go test -run='^$' -fuzz='^FuzzBLIFParse$' -fuzztime="$FUZZTIME" ./internal/blif
go test -run='^$' -fuzz='^FuzzMiterSAT$' -fuzztime="$FUZZTIME" ./internal/exact
go test -run='^$' -fuzz='^FuzzCASFrame$' -fuzztime="$FUZZTIME" ./internal/cluster
