#!/usr/bin/env bash
# smoke_bigbench.sh — million-node windowed smoke. Builds the smallest
# MACTree member over 10^6 AND nodes and drives one windowed Session.Step
# under the peak-RSS assertion in TestBigBenchWindowedSmoke. This is the
# end-to-end proof that the windowed mode actually reaches the scale the
# global scan cannot: the same step with full TFI cones would blow both the
# memory ceiling and the job timeout.
#
# The test is opt-in (ALSRAC_BIGBENCH=1) because it needs a few minutes of
# CPU; CI runs it in the dedicated bigbench-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

ALSRAC_BIGBENCH=1 go test -run '^TestBigBenchWindowedSmoke$' -v -timeout 30m ./internal/window
