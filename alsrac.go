// Package alsrac is an open-source reproduction of "ALSRAC: Approximate
// Logic Synthesis by Resubstitution with Approximate Care Set" (Meng, Qian,
// Mishchenko — DAC 2020): a simulation-only approximate logic synthesis
// flow whose local change replaces a node's function by an irredundant
// sum-of-products over distant divisor signals, derived from a care set
// approximated with a handful of random simulation patterns.
//
// The package is a thin, stable facade over the implementation packages:
//
//   - Circuit construction and I/O: NewCircuit, ReadBLIF, WriteBLIF,
//     Benchmark (generated equivalents of the paper's benchmark suites).
//   - The ALSRAC flow: Approximate with Options (error metric, threshold,
//     and the paper's N/L/t/r parameters).
//   - Baselines: ApproximateSASIMI (Su et al.) and ApproximateMCMC
//     (Liu-style stochastic ALS).
//   - Exact optimization and technology mapping: Optimize, MapLUT, MapASIC.
//   - Error measurement: MeasureError.
//
// A minimal use:
//
//	g := alsrac.Benchmark("rca32")
//	opts := alsrac.DefaultOptions(alsrac.NMED, 0.001)
//	res := alsrac.Approximate(g, opts)
//	fmt.Println(res.Graph.NumAnds(), res.FinalError)
package alsrac

import (
	"context"
	"fmt"
	"io"
	"os"

	"path/filepath"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/baseline/mcmc"
	"repro/internal/baseline/sasimi"
	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/errest"
	"repro/internal/mapper"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/verilog"
)

// Circuit is an And-Inverter Graph; see its methods for construction
// (AddPI, And, Or, Xor, Mux, AddPO, ...) and inspection (NumAnds, Depth,
// Stats, ...).
type Circuit = aig.Graph

// Lit is an edge reference into a Circuit (node id plus complement flag).
type Lit = aig.Lit

// Metric identifies an error metric (ER, NMED or MRED).
type Metric = errest.Metric

// The supported error metrics.
const (
	ER   = errest.ER
	NMED = errest.NMED
	MRED = errest.MRED
)

// Options configures the ALSRAC flow; see DefaultOptions for the paper's
// parameter values.
type Options = core.Options

// Result is the outcome of an approximation run.
type Result = core.Result

// LUTMapping is the result of FPGA technology mapping.
type LUTMapping = mapper.LUTResult

// ASICMapping is the result of standard-cell technology mapping.
type ASICMapping = mapper.CellResult

// Patterns holds input stimuli for simulation-based evaluation; plug a
// custom generator into Options.Patterns to approximate under non-uniform
// input distributions.
type Patterns = sim.Patterns

// UniformPatterns returns n uniformly random input patterns.
func UniformPatterns(nPIs, n int, seed int64) *Patterns {
	return sim.UniformN(nPIs, n, seed)
}

// BiasedPatterns returns n patterns where input i is 1 with probability
// probs[i], independently per pattern.
func BiasedPatterns(probs []float64, n int, seed int64) *Patterns {
	words := (n + 63) / 64
	if words < 1 {
		words = 1
	}
	p := sim.Biased(probs, words, seed)
	p.Valid = n
	return p
}

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit { return aig.New() }

// DefaultOptions returns the paper's experiment parameters (N=32, L=1,
// t=5, r=0.9) for the given metric and error threshold.
func DefaultOptions(metric Metric, threshold float64) Options {
	return core.DefaultOptions(metric, threshold)
}

// Approximate runs the ALSRAC flow and returns an approximate circuit
// whose estimated error does not exceed opts.Threshold.
func Approximate(g *Circuit, opts Options) Result {
	return core.Run(g, opts)
}

// ApproximateCtx is Approximate under a context: when ctx is cancelled or
// its deadline expires, the flow stops at the next iteration boundary and
// returns its best-so-far result (never an error) — an interrupted
// iteration commits nothing, so the result is always a valid flow state.
func ApproximateCtx(ctx context.Context, g *Circuit, opts Options) Result {
	return core.RunCtx(ctx, g, opts)
}

// ApproximateSASIMI runs Su et al.'s substitution-based baseline inside
// the same greedy flow (the comparison method of the paper's Tables IV/V).
func ApproximateSASIMI(g *Circuit, opts Options) Result {
	return core.Run(g, sasimi.Configure(opts))
}

// ApproximateSASIMICtx is ApproximateSASIMI under a context, with the same
// best-so-far semantics as ApproximateCtx.
func ApproximateSASIMICtx(ctx context.Context, g *Circuit, opts Options) Result {
	return core.RunCtx(ctx, g, sasimi.Configure(opts))
}

// NewSession starts a stepwise ALSRAC run: each Step performs one greedy
// iteration, and Snapshot/Restore checkpoint the flow across processes.
// Approximate is equivalent to stepping a session to completion.
func NewSession(g *Circuit, opts Options) *Session { return core.NewSession(g, opts) }

// RestoreSession resumes a session from a checkpoint written by
// Session.Snapshot; opts must match the options the snapshotted run used.
func RestoreSession(r io.Reader, opts Options) (*Session, error) {
	return core.Restore(r, opts)
}

// Session is a resumable stepwise ALSRAC run; see core.Session.
type Session = core.Session

// SessionEvent describes what one Session.Step did; see core.Event.
type SessionEvent = core.Event

// ApproximateMCMC runs the Liu-style stochastic baseline (the comparison
// method of the paper's Tables VI/VII). proposals ≤ 0 selects the default.
func ApproximateMCMC(g *Circuit, metric Metric, threshold float64, proposals int, seed int64) Result {
	o := mcmc.DefaultOptions(metric, threshold)
	if proposals > 0 {
		o.Proposals = proposals
	}
	o.Seed = seed
	r := mcmc.Run(g, o)
	return Result{Graph: r.Graph, FinalError: r.FinalError, Iterations: r.Proposed, Applied: r.Accepted}
}

// Optimize applies exact logic optimization (the "sweep; resyn2" analog).
func Optimize(g *Circuit) *Circuit { return opt.Optimize(g) }

// OptimizeResub additionally runs exact windowed resubstitution over
// k-input cut windows (the "resub" analog) after the standard script —
// stronger but slower than Optimize.
func OptimizeResub(g *Circuit, k int) *Circuit {
	return opt.ResubPass(opt.Optimize(g), k)
}

// MapLUT maps the circuit into k-input LUTs (FPGA area = LUT count, delay
// = LUT depth).
func MapLUT(g *Circuit, k int) LUTMapping { return mapper.MapLUT(g, k) }

// MapASIC maps the circuit onto the built-in MCNC-style standard-cell
// library (area and delay in library units).
func MapASIC(g *Circuit) ASICMapping { return mapper.MapCells(g, cell.MCNC()) }

// MeasureError estimates the error of approx against the reference circuit
// ref using `patterns` uniform Monte-Carlo rounds (both circuits must share
// the PI/PO interface).
func MeasureError(ref, approx *Circuit, metric Metric, patterns int, seed int64) float64 {
	words := (patterns + 63) / 64
	if words < 1 {
		words = 1
	}
	p := sim.Uniform(ref.NumPIs(), words, seed)
	ev := errest.NewEvaluator(ref, p, metric)
	return ev.EvalGraph(approx, p)
}

// MeasureErrorOnPatterns estimates the error of approx against ref on a
// caller-supplied pattern set (for non-uniform input distributions).
func MeasureErrorOnPatterns(ref, approx *Circuit, metric Metric, p *Patterns) float64 {
	ev := errest.NewEvaluator(ref, p, metric)
	return ev.EvalGraph(approx, p)
}

// Benchmark builds one of the generated benchmark circuits by its paper
// name (e.g. "rca32", "cla32", "mtp8", "voter", "priority", "mult"),
// or nil when unknown.
func Benchmark(name string) *Circuit { return bench.Get(name) }

// MACTree builds a member of the scalable multiply-accumulate benchmark
// family: units independent width-bit multipliers summed by a balanced adder
// tree, deterministic from the seed. Large members (MACTree(2048, 8, 1) is
// over a million AND nodes) exercise windowed resubstitution at a scale the
// named benchmarks never reach.
func MACTree(units, width int, seed int64) *Circuit { return bench.MACTree(units, width, seed) }

// Benchmarks lists the available benchmark names.
func Benchmarks() []string {
	var names []string
	for _, e := range bench.All() {
		names = append(names, e.Name)
	}
	return names
}

// ReadBLIF parses a combinational BLIF netlist into a circuit.
func ReadBLIF(r io.Reader) (*Circuit, error) {
	net, err := blif.Read(r)
	if err != nil {
		return nil, err
	}
	return net.ToAIG()
}

// ReadBLIFFile parses a BLIF file from disk.
func ReadBLIFFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBLIF(f)
}

// ReadAIGER parses an AIGER file (ASCII "aag" or binary "aig",
// auto-detected).
func ReadAIGER(r io.Reader) (*Circuit, error) { return aiger.Read(r) }

// WriteAIGER emits the circuit in AIGER form; format is "aag" or "aig".
func WriteAIGER(w io.Writer, g *Circuit, format string) error {
	return aiger.Write(w, g, format)
}

// WriteVerilog emits the circuit as a structural Verilog module.
func WriteVerilog(w io.Writer, g *Circuit) error { return verilog.Write(w, g) }

// ReadCircuitFile loads a circuit from disk, selecting the parser by file
// extension: .blif, .aag or .aig.
func ReadCircuitFile(path string) (*Circuit, error) {
	switch filepath.Ext(path) {
	case ".blif":
		return ReadBLIFFile(path)
	case ".aag", ".aig":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return aiger.Read(f)
	}
	return nil, fmt.Errorf("alsrac: unknown circuit format %q", filepath.Ext(path))
}

// WriteCircuitFile saves a circuit to disk, selecting the writer by file
// extension: .blif, .aag or .aig.
func WriteCircuitFile(path string, g *Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch filepath.Ext(path) {
	case ".blif":
		werr = WriteBLIF(f, g)
	case ".aag", ".aig":
		werr = aiger.Write(f, g, filepath.Ext(path)[1:])
	case ".v":
		werr = verilog.Write(f, g)
	default:
		werr = fmt.Errorf("alsrac: unknown circuit format %q", filepath.Ext(path))
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// WriteBLIF emits the circuit as a BLIF netlist.
func WriteBLIF(w io.Writer, g *Circuit) error {
	return blif.FromAIG(g).Write(w)
}

// WriteBLIFFile writes the circuit to a BLIF file on disk.
func WriteBLIFFile(path string, g *Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBLIF(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
