package alsrac

// The benchmark harness regenerates every table of the paper's evaluation
// (Tables III-VII; Fig. 1 and Tables I/II are unit tests in internal/resub)
// plus the ablation studies called out in DESIGN.md. The table benchmarks
// use exp.BenchPreset — a trimmed threshold sweep and evaluation budget so
// `go test -bench=.` finishes on a laptop; run `cmd/exptables` (optionally
// without -quick) for the paper-faithful sweeps. Ratios, not absolute
// times, are the reproduction target.

import (
	"fmt"
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/errest"
	"repro/internal/espresso"
	"repro/internal/exp"
	"repro/internal/mapper"
	"repro/internal/opt"
	"repro/internal/resub"
	"repro/internal/sim"
	"repro/internal/tt"
)

// --- Tables ---------------------------------------------------------------

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table := exp.TableIII()
		if i == 0 {
			b.Logf("\n%s", table)
		}
	}
}

func benchTable(b *testing.B, table int) {
	cfg := exp.BenchPreset(table)
	for i := 0; i < b.N; i++ {
		rows := exp.CompareSuite(exp.Suite(table), cfg, nil)
		mean := rows[len(rows)-1]
		b.ReportMetric(100*mean.AreaRatioA, "ALSRAC_area%")
		b.ReportMetric(100*mean.AreaRatioB, "baseline_area%")
		b.ReportMetric(100*mean.DelayRatioA, "ALSRAC_delay%")
		b.ReportMetric(100*mean.DelayRatioB, "baseline_delay%")
		if i == 0 {
			title := fmt.Sprintf("Table %d (bench preset): ALSRAC vs %s method (%s <= %v)",
				table, exp.BaselineName(table), cfg.Metric, cfg.Thresholds)
			b.Logf("\n%s", exp.Render(title, "ALSRAC", exp.BaselineName(table), rows))
		}
	}
}

func BenchmarkTableIV(b *testing.B)  { benchTable(b, 4) } // ASIC, ER, vs Su's
func BenchmarkTableV(b *testing.B)   { benchTable(b, 5) } // ASIC, NMED, vs Su's
func BenchmarkTableVI(b *testing.B)  { benchTable(b, 6) } // FPGA, ER, vs Liu's
func BenchmarkTableVII(b *testing.B) { benchTable(b, 7) } // FPGA, MRED, vs Liu's

// --- Ablations (design choices called out in DESIGN.md) --------------------

// BenchmarkAblationCareRounds sweeps the initial care-set size N: the
// paper's motivation for adaptive N is that small N widens the
// approximation space while large N approaches exact resubstitution.
func BenchmarkAblationCareRounds(b *testing.B) {
	g := opt.Optimize(bench.CLA(32))
	base := mapper.MapCells(g, cell.MCNC())
	for _, n := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions(errest.NMED, 0.0019531)
				opts.EvalPatterns = 1024
				opts.InitialRounds = n
				res := core.Run(g, opts)
				m := mapper.MapCells(res.Graph, cell.MCNC())
				b.ReportMetric(100*m.Area/base.Area, "area%")
				b.ReportMetric(float64(res.Applied), "LACs")
			}
		})
	}
}

// BenchmarkAblationOptimize toggles the inter-iteration exact optimization
// (Algorithm 3 line 9).
func BenchmarkAblationOptimize(b *testing.B) {
	g := opt.Optimize(bench.RCA(32))
	base := mapper.MapCells(g, cell.MCNC())
	for _, skip := range []bool{false, true} {
		name := "with-resyn"
		if skip {
			name = "without-resyn"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions(errest.NMED, 0.0019531)
				opts.EvalPatterns = 1024
				opts.SkipOptimize = skip
				res := core.Run(g, opts)
				m := mapper.MapCells(res.Graph, cell.MCNC())
				b.ReportMetric(100*m.Area/base.Area, "area%")
			}
		})
	}
}

// BenchmarkAblationMinimizer compares plain Minato ISOP against the
// Espresso-style minimizer for deriving resubstitution functions.
func BenchmarkAblationMinimizer(b *testing.B) {
	g := opt.Optimize(bench.ArrayMult(8))
	base := mapper.MapCells(g, cell.MCNC())
	for _, esp := range []bool{false, true} {
		name := "isop"
		if esp {
			name = "espresso"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions(errest.NMED, 0.0019531)
				opts.EvalPatterns = 1024
				opts.UseEspresso = esp
				res := core.Run(g, opts)
				m := mapper.MapCells(res.Graph, cell.MCNC())
				b.ReportMetric(100*m.Area/base.Area, "area%")
			}
		})
	}
}

// BenchmarkAblationDivisorOrder compares the paper's ascending-level
// divisor scan against a descending (closest-first) scan.
func BenchmarkAblationDivisorOrder(b *testing.B) {
	g := opt.Optimize(bench.ArrayMult(8))
	base := mapper.MapCells(g, cell.MCNC())
	for _, desc := range []bool{false, true} {
		name := "ascending"
		if desc {
			name = "descending"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions(errest.NMED, 0.0019531)
				opts.EvalPatterns = 1024
				opts.Generator = core.ResubGenerator{Cfg: resub.Config{
					MaxLACsPerNode: 1, MaxDivisors: 8, DescendingLevels: desc,
				}}
				res := core.Run(g, opts)
				m := mapper.MapCells(res.Graph, cell.MCNC())
				b.ReportMetric(100*m.Area/base.Area, "area%")
			}
		})
	}
}

// BenchmarkAblationBatchVsNaive measures the batch error estimator (Su
// DAC'18, reused by ALSRAC) against naive per-candidate resimulation —
// the speedup the paper attributes to batching.
func BenchmarkAblationBatchVsNaive(b *testing.B) {
	g := opt.Optimize(bench.CLA(32))
	pats := sim.Uniform(g.NumPIs(), 32, 5) // 2048 patterns
	ev := errest.NewEvaluator(g, pats, errest.ER)
	care := sim.UniformN(g.NumPIs(), 32, 7)
	vecs := sim.Simulate(g, care)
	lacs := resub.Generate(g, vecs, care.Valid, resub.DefaultConfig())
	if len(lacs) == 0 {
		b.Skip("no candidates generated")
	}

	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch := errest.NewBatch(ev, g, pats)
			buf := make([]uint64, pats.Words)
			var prepared aig.Node = -1
			for j := range lacs {
				if lacs[j].Node != prepared {
					batch.Prepare(lacs[j].Node)
					prepared = lacs[j].Node
				}
				lacs[j].EvalVec(batch.Vectors(), buf)
				_ = batch.EvalCandidate(lacs[j].Node, buf)
			}
		}
		b.ReportMetric(float64(len(lacs)), "candidates")
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range lacs {
				ng := lacs[j].Apply(g.Clone())
				_ = ev.EvalGraph(ng, pats)
			}
		}
		b.ReportMetric(float64(len(lacs)), "candidates")
	})
}

// --- Microbenchmarks of the substrates -------------------------------------

func BenchmarkSimulate(b *testing.B) {
	g := bench.CLA(32)
	p := sim.Uniform(g.NumPIs(), 256, 1) // 16384 patterns
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := sim.SimulateWorkers(g, p, workers)
				v.Release()
			}
			b.ReportMetric(float64(g.NumAnds()*256*64), "gate-evals/op")
		})
	}
}

func BenchmarkISOP(b *testing.B) {
	on := tt.Var(8, 0).Xor(tt.Var(8, 3)).Or(tt.Var(8, 5).And(tt.Var(8, 7)))
	dc := tt.Var(8, 1).And(on.Not())
	onn := on.AndNot(dc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tt.ISOP(onn, dc)
	}
}

func BenchmarkEspresso(b *testing.B) {
	on := tt.Var(8, 0).Xor(tt.Var(8, 3)).Or(tt.Var(8, 5).And(tt.Var(8, 7)))
	dc := tt.Var(8, 1).And(on.Not())
	onn := on.AndNot(dc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = espresso.Minimize(onn, dc)
	}
}

func BenchmarkGenerate(b *testing.B) {
	g := opt.Optimize(bench.CLA(32))
	care := sim.UniformN(g.NumPIs(), 32, 7)
	vecs := sim.Simulate(g, care)
	defer vecs.Release()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = resub.GenerateWorkers(g, vecs, care.Valid, resub.DefaultConfig(), workers)
			}
		})
	}
}

func BenchmarkOptimize(b *testing.B) {
	g := bench.WallaceMult(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = opt.Optimize(g)
	}
}

func BenchmarkMapLUT6(b *testing.B) {
	g := opt.Optimize(bench.ArrayMult(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mapper.MapLUT(g, 6)
		if i == 0 {
			b.ReportMetric(float64(r.LUTs), "LUTs")
		}
	}
}

func BenchmarkMapCells(b *testing.B) {
	g := opt.Optimize(bench.ArrayMult(8))
	lib := cell.MCNC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mapper.MapCells(g, lib)
		if i == 0 {
			b.ReportMetric(r.Area, "area")
		}
	}
}

func BenchmarkALSRACFlowRCA32(b *testing.B) {
	g := opt.Optimize(bench.RCA(32))
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions(errest.NMED, 0.0002441)
		opts.EvalPatterns = 1024
		_ = core.Run(g, opts)
	}
}
