// Command aigopt applies the exact logic optimization pipeline (the
// "sweep; resyn2" analog: sweep, balance and cut rewriting) to a BLIF
// netlist — the same pass ALSRAC runs between approximate changes.
//
// Example:
//
//	aigopt -in noisy.blif -out clean.blif
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		inFile  = flag.String("in", "", "input BLIF file")
		outFile = flag.String("out", "", "output BLIF file (default stdout)")
		rounds  = flag.Int("rounds", 1, "optimization rounds")
		resubK  = flag.Int("resub", 0, "also run exact windowed resubstitution with this cut size (0 = off)")
	)
	flag.Parse()
	if *inFile == "" {
		fail("missing -in <file.blif>")
	}
	g, err := alsrac.ReadBLIFFile(*inFile)
	if err != nil {
		fail("%v", err)
	}
	before := g.Stats()
	for i := 0; i < *rounds; i++ {
		if *resubK > 0 {
			g = alsrac.OptimizeResub(g, *resubK)
		} else {
			g = alsrac.Optimize(g)
		}
	}
	after := g.Stats()
	fmt.Fprintf(os.Stderr, "aigopt: ands %d -> %d, depth %d -> %d\n",
		before.Ands, after.Ands, before.Depth, after.Depth)

	if *outFile == "" {
		if err := alsrac.WriteBLIF(os.Stdout, g); err != nil {
			fail("%v", err)
		}
		return
	}
	if err := alsrac.WriteBLIFFile(*outFile, g); err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aigopt: "+format+"\n", args...)
	os.Exit(1)
}
