// Command exptables regenerates the tables of the paper's evaluation
// section on the generated benchmark suites: Table III (benchmark
// inventory), Tables IV/V (ALSRAC vs Su's method, ASIC, ER/NMED) and
// Tables VI/VII (ALSRAC vs Liu's method, FPGA 6-LUT, ER/MRED).
//
// Examples:
//
//	exptables -table 3
//	exptables -table 5 -quick
//	exptables -table 4            # full sweep (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		table = flag.Int("table", 0, "table number to regenerate (3-7)")
		quick = flag.Bool("quick", false, "reduced sweep for fast runs")
	)
	flag.Parse()

	switch *table {
	case 3:
		fmt.Print(exp.TableIII())
	case 4, 5, 6, 7:
		cfg := exp.TableConfig(*table, *quick)
		rows := exp.CompareSuite(exp.Suite(*table), cfg, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		title := fmt.Sprintf("Table %d: ALSRAC vs %s method (%s <= %v)",
			*table, exp.BaselineName(*table), cfg.Metric, cfg.Thresholds)
		fmt.Print(exp.Render(title, "ALSRAC", exp.BaselineName(*table), rows))
	default:
		fmt.Fprintln(os.Stderr, "exptables: use -table 3..7")
		os.Exit(1)
	}
}
