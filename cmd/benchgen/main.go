// Command benchgen writes the generated benchmark circuits (Table III of
// the paper) as BLIF netlists.
//
// Examples:
//
//	benchgen -name rca32            # print rca32 to stdout
//	benchgen -all -dir benchmarks/  # write every benchmark to a directory
//	benchgen -family mac -units 2048 -width 8 -stats   # scalable family
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	var (
		name = flag.String("name", "", "benchmark to emit (stdout)")
		all  = flag.Bool("all", false, "emit every benchmark")
		dir  = flag.String("dir", ".", "output directory for -all")
		stat = flag.Bool("stats", false, "print size statistics instead of BLIF")

		family = flag.String("family", "", "scalable family to emit (mac)")
		units  = flag.Int("units", 64, "family size parameter (mac: multiplier count)")
		width  = flag.Int("width", 8, "family operand width in bits")
		seed   = flag.Int64("seed", 1, "family architecture seed (deterministic)")
	)
	flag.Parse()

	switch {
	case *family != "":
		var g *alsrac.Circuit
		switch *family {
		case "mac":
			if *units < 1 || *width < 1 {
				fail("-family mac needs -units >= 1 and -width >= 1")
			}
			g = alsrac.MACTree(*units, *width, *seed)
		default:
			fail("unknown family %q (mac)", *family)
		}
		if *stat {
			fmt.Println(g.String())
			return
		}
		if err := alsrac.WriteBLIF(os.Stdout, g); err != nil {
			fail("%v", err)
		}
	case *name != "":
		g := alsrac.Benchmark(*name)
		if g == nil {
			fail("unknown benchmark %q", *name)
		}
		if *stat {
			fmt.Println(g.String())
			return
		}
		if err := alsrac.WriteBLIF(os.Stdout, g); err != nil {
			fail("%v", err)
		}
	case *all:
		for _, n := range alsrac.Benchmarks() {
			g := alsrac.Benchmark(n)
			if *stat {
				fmt.Println(g.String())
				continue
			}
			path := filepath.Join(*dir, n+".blif")
			if err := alsrac.WriteBLIFFile(path, g); err != nil {
				fail("writing %s: %v", path, err)
			}
			fmt.Printf("wrote %s (%d ANDs)\n", path, g.NumAnds())
		}
	default:
		fail("use -name <bench> or -all (see alsrac -list for names)")
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgen: "+format+"\n", args...)
	os.Exit(1)
}
