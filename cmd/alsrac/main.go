// Command alsrac runs the ALSRAC approximate logic synthesis flow on a
// BLIF netlist or a built-in benchmark and reports area/delay before and
// after, optionally writing the approximate netlist back out.
//
// Examples:
//
//	alsrac -bench rca32 -metric nmed -threshold 0.001
//	alsrac -in adder.blif -metric er -threshold 0.01 -out adder_approx.blif
//	alsrac -bench mtp8 -metric mred -threshold 0.002 -flow sasimi -target lut6
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		inFile     = flag.String("in", "", "input circuit file: .blif, .aag or .aig (alternative to -bench)")
		benchName  = flag.String("bench", "", "built-in benchmark name (see -list)")
		list       = flag.Bool("list", false, "list built-in benchmarks and exit")
		metric     = flag.String("metric", "er", "error metric: er, nmed, mred or maxerr (certified, NMED-guided)")
		threshold  = flag.Float64("threshold", 0.01, "error threshold Et")
		maxError   = flag.Float64("maxerror", 0, "certified mode: exact worst-case normalized error bound enforced on every committed change (0 = off; -metric maxerr defaults it to -threshold)")
		certBudget = flag.Int64("certbudget", 0, "CDCL conflict cap per SAT certification (0 = unbounded)")
		outFile    = flag.String("out", "", "write the approximate circuit (.blif, .aag, .aig or .v)")
		seed       = flag.Int64("seed", 1, "random seed")
		evalPats   = flag.Int("eval", 8192, "Monte-Carlo error evaluation patterns")
		rounds     = flag.Int("n", 32, "initial care-set simulation rounds N")
		lacLimit   = flag.Int("l", 1, "LAC limit per node L")
		patience   = flag.Int("t", 5, "empty iterations before shrinking N (t)")
		scale      = flag.Float64("r", 0.9, "shrink factor for N (r)")
		flow       = flag.String("flow", "alsrac", "flow: alsrac, sasimi or mcmc")
		target     = flag.String("target", "asic", "mapping target: asic or lut6")
		maxDepth   = flag.Float64("maxdepth", 0, "reject changes exceeding this ratio of the original depth (0 = off)")
		workers    = flag.Int("workers", 0, "worker goroutines for simulation, LAC generation and ranking (0 = all CPUs; results are identical for any value)")
		timeout    = flag.Duration("timeout", 0, "stop after this long and keep the best result so far (0 = no limit)")
		verbose    = flag.Bool("v", false, "log flow progress")

		windowed    = flag.Bool("window", false, "windowed resubstitution: score LACs on bounded reconvergence-driven windows instead of full TFI cones (scales to very large AIGs)")
		winMaxPIs   = flag.Int("window-max-pis", 0, "max window inputs (0 = default, negative = unbounded)")
		winMaxNodes = flag.Int("window-max-nodes", 0, "max window volume in AND nodes (0 = default, negative = unbounded)")
		winMaxDivs  = flag.Int("window-max-divisors", 0, "max divisors per window (0 = default, negative = unbounded)")
		winSkipRoot = flag.Int("window-skip-fanout-roots", 0, "skip roots with more fanouts than this (0 = default, negative = no skip)")
		winSkipDivs = flag.Int("window-skip-fanout-divisors", 0, "drop divisors with more fanouts than this (0 = default, negative = no skip)")
	)
	flag.Parse()

	if *list {
		for _, n := range alsrac.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	g, err := load(*inFile, *benchName)
	if err != nil {
		fail("%v", err)
	}

	m, err := parseMetric(*metric)
	if err != nil {
		fail("%v", err)
	}
	if strings.EqualFold(strings.TrimSpace(*metric), "maxerr") && *maxError == 0 {
		*maxError = *threshold
	}

	g = alsrac.Optimize(g)
	baseArea, baseDelay := measure(g, *target)

	opts := alsrac.DefaultOptions(m, *threshold)
	opts.Seed = *seed
	opts.EvalPatterns = *evalPats
	opts.InitialRounds = *rounds
	opts.MaxLACsPerNode = *lacLimit
	opts.Patience = *patience
	opts.Scale = *scale
	opts.MaxDepthRatio = *maxDepth
	opts.MaxError = *maxError
	opts.CertConflictBudget = *certBudget
	opts.Workers = *workers
	opts.Windowed = *windowed
	opts.WindowMaxPIs = *winMaxPIs
	opts.WindowMaxNodes = *winMaxNodes
	opts.WindowMaxDivisors = *winMaxDivs
	opts.WindowSkipFanoutRoots = *winSkipRoot
	opts.WindowSkipFanoutDivisors = *winSkipDivs
	if *verbose {
		opts.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// A deadline stops the flow at the next iteration boundary with its
	// best-so-far result — a timed-out run still prints and writes a valid
	// approximate circuit rather than failing.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	var res alsrac.Result
	switch strings.ToLower(*flow) {
	case "alsrac":
		res = alsrac.ApproximateCtx(ctx, g, opts)
	case "sasimi":
		res = alsrac.ApproximateSASIMICtx(ctx, g, opts)
	case "mcmc":
		res = alsrac.ApproximateMCMC(g, m, *threshold, 0, *seed)
	default:
		fail("unknown flow %q", *flow)
	}
	elapsed := time.Since(start)
	if *timeout > 0 && ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "alsrac: timeout after %v, reporting best result so far\n", *timeout)
	}

	area, delay := measure(res.Graph, *target)
	fmt.Printf("circuit    : %s (%d PIs, %d POs)\n", g.Name, g.NumPIs(), g.NumPOs())
	fmt.Printf("flow       : %s under %s <= %g\n", *flow, m, *threshold)
	fmt.Printf("AND nodes  : %d -> %d\n", g.NumAnds(), res.Graph.NumAnds())
	fmt.Printf("area       : %.1f -> %.1f (ratio %.2f%%)\n", baseArea, area, 100*area/baseArea)
	fmt.Printf("delay      : %.1f -> %.1f (ratio %.2f%%)\n", baseDelay, delay, 100*delay/baseDelay)
	fmt.Printf("final error: %.6g (%s, %d patterns)\n", res.FinalError, m, *evalPats)
	fmt.Printf("changes    : %d applied in %d iterations, %v\n", res.Applied, res.Iterations, elapsed.Round(time.Millisecond))
	if *maxError > 0 {
		rejected := 0
		for _, rec := range res.History {
			if rec.Rejected {
				rejected++
			}
		}
		fmt.Printf("certified  : worst-case error <= %g proven for every commit, %d candidate(s) rejected\n",
			*maxError, rejected)
	}

	if *outFile != "" {
		if err := alsrac.WriteCircuitFile(*outFile, res.Graph); err != nil {
			fail("writing %s: %v", *outFile, err)
		}
		fmt.Printf("wrote      : %s\n", *outFile)
	}
}

func load(inFile, benchName string) (*alsrac.Circuit, error) {
	switch {
	case inFile != "" && benchName != "":
		return nil, fmt.Errorf("use either -in or -bench, not both")
	case inFile != "":
		return alsrac.ReadCircuitFile(inFile)
	case benchName != "":
		g := alsrac.Benchmark(benchName)
		if g == nil {
			return nil, fmt.Errorf("unknown benchmark %q (try -list)", benchName)
		}
		return g, nil
	}
	return nil, fmt.Errorf("no input: use -in <file.blif> or -bench <name>")
}

func parseMetric(s string) (alsrac.Metric, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "er":
		return alsrac.ER, nil
	case "nmed", "maxerr":
		// maxerr is the certified mode: NMED guides the search, the exact
		// checker (Options.MaxError) bounds every commit.
		return alsrac.NMED, nil
	case "mred":
		return alsrac.MRED, nil
	}
	return 0, fmt.Errorf("unknown metric %q (er, nmed, mred, maxerr)", s)
}

func measure(g *alsrac.Circuit, target string) (float64, float64) {
	if strings.EqualFold(target, "lut6") {
		r := alsrac.MapLUT(g, 6)
		return float64(r.LUTs), float64(r.Depth)
	}
	r := alsrac.MapASIC(g)
	return r.Area, r.Delay
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "alsrac: "+format+"\n", args...)
	os.Exit(1)
}
