// Command alsracd is the ALSRAC synthesis daemon: a job queue and worker
// pool driving checkpointed approximation sessions behind an HTTP API.
//
// Submit a circuit and watch it converge:
//
//	alsracd -dir /var/lib/alsracd &
//	curl -X POST --data-binary @adder.blif \
//	    'localhost:8337/jobs?metric=er&threshold=0.01&seed=1'
//	curl 'localhost:8337/jobs/j000001/events'          # NDJSON progress
//	curl 'localhost:8337/jobs/j000001/result?format=blif' > adder_approx.blif
//
// The certified job type proves an exact worst-case error bound on every
// committed change (metric=maxerr, optionally maxerror= for a bound apart
// from the threshold and certbudget= to cap SAT conflicts per proof):
//
//	curl -X POST --data-binary @adder.blif \
//	    'localhost:8337/jobs?metric=maxerr&threshold=0.02'
//
// Jobs survive restarts: every job's spec, circuit and periodic session
// checkpoints are persisted under -dir, and on startup interrupted jobs are
// re-enqueued and resumed from their latest checkpoint — converging to the
// same final circuit the uninterrupted run would have produced (the flow is
// deterministic in the seed). SIGINT/SIGTERM trigger a graceful shutdown
// that checkpoints every in-flight session first.
//
// The same binary also scales out to a fault-tolerant cluster. A coordinator
// owns the job table and a content-addressed checkpoint/result store;
// workers on any number of machines join it and execute leased jobs:
//
//	alsracd -coordinator -addr :8337 -dir /var/lib/alsrac-coord &
//	alsracd -worker -join http://coord:8337 &     # on each machine
//	curl -X POST --data-binary @adder.blif \
//	    'coord:8337/jobs?metric=er&threshold=0.01&seed=1'
//
// Kill a worker mid-job and its lease expires; another worker resumes from
// the last uploaded checkpoint and — because the flow is bitwise
// deterministic — produces the identical result. Submitting the same
// circuit and parameters twice is a cache hit served from the store.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8337", "HTTP listen address")
		dir        = flag.String("dir", "alsracd-data", "job store directory (specs, circuits, checkpoints, results)")
		jobs       = flag.Int("jobs", 1, "jobs run concurrently (each additionally parallelizes internally per its workers parameter)")
		queue      = flag.Int("queue", 256, "submission queue bound")
		ckptEvery  = flag.Int("checkpoint-every", 8, "checkpoint a running session every N iterations")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline; on expiry a job completes with its best-so-far result (0 = none)")
		quiet      = flag.Bool("q", false, "suppress per-job log lines")

		coordMode = flag.Bool("coordinator", false, "run as a cluster coordinator: lease jobs to joined workers instead of executing locally")
		workMode  = flag.Bool("worker", false, "run as a cluster worker: join a coordinator and execute leased jobs (requires -join)")
		join      = flag.String("join", "", "coordinator base URL to join (worker mode), e.g. http://coord:8337")
		name      = flag.String("name", "", "worker name shown in coordinator logs (default: hostname)")
		leaseTTL  = flag.Duration("lease-ttl", 15*time.Second, "coordinator: job lease TTL; a worker silent this long loses its jobs to reassignment")
		pollEvery = flag.Duration("poll-interval", 500*time.Millisecond, "coordinator: idle claim-poll cadence advertised to workers")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	switch {
	case *coordMode && *workMode:
		fmt.Fprintln(os.Stderr, "alsracd: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	case *coordMode:
		runCoordinator(*addr, *dir, *leaseTTL, *pollEvery, logf)
	case *workMode:
		runWorker(*join, *name, *ckptEvery, logf)
	default:
		if *join != "" {
			fmt.Fprintln(os.Stderr, "alsracd: -join requires -worker")
			os.Exit(2)
		}
		runDaemon(*addr, *dir, *jobs, *queue, *ckptEvery, jobTimeout.Seconds(), logf)
	}
}

// signalCtx is the shared SIGINT/SIGTERM lifetime of every mode.
func signalCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// runCoordinator serves the cluster API: the client-facing /jobs surface
// plus the /cluster/* worker protocol, all state under dir.
func runCoordinator(addr, dir string, leaseTTL, pollEvery time.Duration, logf func(string, ...any)) {
	co, err := cluster.NewCoordinator(cluster.CoordConfig{
		Dir:          dir,
		Now:          time.Now,
		LeaseTTL:     leaseTTL,
		PollInterval: pollEvery,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           cluster.NewHandler(co),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signalCtx()
	defer stop()

	serveErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr <- srv.ListenAndServe()
	}()
	log.Printf("alsracd: coordinator listening on %s, store %s (lease ttl %v)", addr, dir, leaseTTL)

	var exitErr error
	select {
	case <-ctx.Done():
		log.Printf("alsracd: coordinator shutting down (jobs and leases persist under %s)", dir)
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(shutCtx)
		cancel()
	case exitErr = <-serveErr:
	}
	wg.Wait()
	if exitErr != nil && exitErr != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", exitErr)
		os.Exit(1)
	}
	log.Printf("alsracd: coordinator shutdown complete")
}

// runWorker joins a coordinator and executes leased jobs until terminated.
// On SIGTERM the worker uploads a final checkpoint of any in-flight session
// before exiting, so its successor resumes instead of recomputing.
func runWorker(join, name string, ckptEvery int, logf func(string, ...any)) {
	if join == "" {
		fmt.Fprintln(os.Stderr, "alsracd: -worker requires -join <coordinator-url>")
		os.Exit(2)
	}
	if name == "" {
		if host, err := os.Hostname(); err == nil {
			name = host
		} else {
			name = "worker"
		}
	}
	wk, err := cluster.NewWorker(cluster.WorkerConfig{
		Join:            join,
		Name:            name,
		Now:             time.Now,
		CheckpointEvery: ckptEvery,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", err)
		os.Exit(1)
	}
	ctx, stop := signalCtx()
	defer stop()
	log.Printf("alsracd: worker %q joining %s", name, join)
	if err := wk.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("alsracd: worker shutdown complete")
}

// runDaemon is the original single-process mode: queue, worker pool and HTTP
// API in one process.
func runDaemon(addr, dir string, jobs, queue, ckptEvery int, timeoutSec float64, logf func(string, ...any)) {
	m, err := service.New(service.Config{
		Dir:               dir,
		QueueSize:         queue,
		Workers:           jobs,
		CheckpointEvery:   ckptEvery,
		DefaultTimeoutSec: timeoutSec,
		Now:               time.Now,
		Logf:              logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:    addr,
		Handler: service.NewHandler(m),
		// Slow-client hardening: a peer that never finishes its headers or
		// parks an idle keep-alive connection cannot pin a descriptor
		// forever. No WriteTimeout: /jobs/{id}/events is a long-lived NDJSON
		// stream that must outlive any fixed write deadline — each event
		// write instead arms its own per-write deadline via
		// http.ResponseController (see service.HandlerOptions).
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signalCtx()
	defer stop()

	serveErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		m.Run(ctx) // returns after draining: in-flight sessions checkpointed
	}()
	go func() {
		defer wg.Done()
		serveErr <- srv.ListenAndServe()
	}()
	log.Printf("alsracd: listening on %s, job store %s", addr, dir)

	var exitErr error
	select {
	case <-ctx.Done():
		log.Printf("alsracd: shutting down, checkpointing in-flight jobs")
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(shutCtx)
		cancel()
	case err := <-serveErr:
		exitErr = err
		stop() // the listener died: drain the workers and exit
	}
	wg.Wait()
	if exitErr != nil && exitErr != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", exitErr)
		os.Exit(1)
	}
	log.Printf("alsracd: shutdown complete")
}
