// Command alsracd is the ALSRAC synthesis daemon: a job queue and worker
// pool driving checkpointed approximation sessions behind an HTTP API.
//
// Submit a circuit and watch it converge:
//
//	alsracd -dir /var/lib/alsracd &
//	curl -X POST --data-binary @adder.blif \
//	    'localhost:8337/jobs?metric=er&threshold=0.01&seed=1'
//	curl 'localhost:8337/jobs/j000001/events'          # NDJSON progress
//	curl 'localhost:8337/jobs/j000001/result?format=blif' > adder_approx.blif
//
// The certified job type proves an exact worst-case error bound on every
// committed change (metric=maxerr, optionally maxerror= for a bound apart
// from the threshold and certbudget= to cap SAT conflicts per proof):
//
//	curl -X POST --data-binary @adder.blif \
//	    'localhost:8337/jobs?metric=maxerr&threshold=0.02'
//
// Jobs survive restarts: every job's spec, circuit and periodic session
// checkpoints are persisted under -dir, and on startup interrupted jobs are
// re-enqueued and resumed from their latest checkpoint — converging to the
// same final circuit the uninterrupted run would have produced (the flow is
// deterministic in the seed). SIGINT/SIGTERM trigger a graceful shutdown
// that checkpoints every in-flight session first.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8337", "HTTP listen address")
		dir        = flag.String("dir", "alsracd-data", "job store directory (specs, circuits, checkpoints, results)")
		jobs       = flag.Int("jobs", 1, "jobs run concurrently (each additionally parallelizes internally per its workers parameter)")
		queue      = flag.Int("queue", 256, "submission queue bound")
		ckptEvery  = flag.Int("checkpoint-every", 8, "checkpoint a running session every N iterations")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline; on expiry a job completes with its best-so-far result (0 = none)")
		quiet      = flag.Bool("q", false, "suppress per-job log lines")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	m, err := service.New(service.Config{
		Dir:               *dir,
		QueueSize:         *queue,
		Workers:           *jobs,
		CheckpointEvery:   *ckptEvery,
		DefaultTimeoutSec: jobTimeout.Seconds(),
		Now:               time.Now,
		Logf:              logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(m),
		// Slow-client hardening: a peer that never finishes its headers or
		// parks an idle keep-alive connection cannot pin a descriptor
		// forever. No WriteTimeout: /jobs/{id}/events is a long-lived NDJSON
		// stream that must outlive any fixed write deadline.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		m.Run(ctx) // returns after draining: in-flight sessions checkpointed
	}()
	go func() {
		defer wg.Done()
		serveErr <- srv.ListenAndServe()
	}()
	log.Printf("alsracd: listening on %s, job store %s", *addr, *dir)

	var exitErr error
	select {
	case <-ctx.Done():
		log.Printf("alsracd: shutting down, checkpointing in-flight jobs")
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(shutCtx)
		cancel()
	case err := <-serveErr:
		exitErr = err
		stop() // the listener died: drain the workers and exit
	}
	wg.Wait()
	if exitErr != nil && exitErr != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "alsracd: %v\n", exitErr)
		os.Exit(1)
	}
	log.Printf("alsracd: shutdown complete")
}
