// Command alsraclint runs the repository's custom static-analysis suite
// (package internal/analysis): the per-function rules determinism, hotpath,
// concurrency and tailmask, plus the interprocedural rules allocflow, leaks,
// ctxflow and errwrap built on the shared dataflow engine. It is stdlib-only
// — no golang.org/x/tools — and loads the whole module with a lenient
// from-source type check exactly once, however many rules run.
//
// Usage:
//
//	alsraclint [-C dir] [-list] [-rule a,b,...] [-json] [-github] [patterns...]
//
// Patterns are accepted for command-line symmetry with go vet (./... is the
// conventional spelling) but the tool always analyzes the full module rooted
// at dir (default: the current directory, walking up to the nearest go.mod).
// -rule restricts the run to a comma-separated subset of analyzers. Output is
// "file:line:col: [rule] message" by default, one JSON object per finding
// with -json, or GitHub workflow annotations (::error ...) with -github. The
// exit status is 1 when any diagnostic was reported, 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	dir := flag.String("C", "", "module directory (default: nearest go.mod above the working directory)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	rules := flag.String("rule", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines on stdout")
	github := flag.Bool("github", false, "emit findings as GitHub workflow ::error annotations")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a := analysis.AnalyzerByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "alsraclint: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			fmt.Fprintln(os.Stderr, "alsraclint: -rule selected no analyzers")
			os.Exit(2)
		}
	}

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		switch {
		case *jsonOut:
			if err := enc.Encode(jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "alsraclint:", err)
				os.Exit(2)
			}
		case *github:
			// GitHub annotation properties take %,\r\n escaped as URL-style
			// sequences; file paths are repo-relative in CI checkouts.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=alsraclint/%s::%s\n",
				relTo(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule,
				annotationEscape(d.Message))
		default:
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "alsraclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the stable machine-readable finding shape for -json.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// relTo makes the path relative to the module root when possible, which is
// the form GitHub's annotation matcher expects in an actions checkout.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// annotationEscape encodes the characters the workflow-command parser treats
// specially in annotation messages.
func annotationEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("alsraclint: no go.mod found above the working directory")
		}
		dir = parent
	}
}
