// Command alsraclint runs the repository's custom static-analysis suite
// (package internal/analysis): determinism, hotpath, concurrency and
// tailmask. It is stdlib-only — no golang.org/x/tools — and loads the whole
// module with a lenient from-source type check.
//
// Usage:
//
//	alsraclint [-C dir] [-list] [patterns...]
//
// Patterns are accepted for command-line symmetry with go vet (./... is the
// conventional spelling) but the tool always analyzes the full module rooted
// at dir (default: the current directory, walking up to the nearest go.mod).
// Diagnostics are printed as "file:line: [rule] message"; the exit status is
// 1 when any diagnostic was reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	dir := flag.String("C", "", "module directory (default: nearest go.mod above the working directory)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(pkgs, analysis.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "alsraclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("alsraclint: no go.mod found above the working directory")
		}
		dir = parent
	}
}
