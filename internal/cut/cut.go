// Package cut implements k-feasible cut enumeration over AIGs with
// dominance pruning and per-node priority lists, plus cut-function
// computation as truth tables. It is shared by the AIG rewriter (package
// opt) and the technology mappers (package mapper).
package cut

import (
	"sort"

	"repro/internal/aig"
	"repro/internal/tt"
)

// Cut is a set of leaf nodes that cuts the cone of a root node: every path
// from a PI to the root passes through a leaf. Leaves are sorted by id.
type Cut struct {
	Leaves []aig.Node
}

// Size returns the number of leaves.
func (c *Cut) Size() int { return len(c.Leaves) }

// IsTrivial reports whether the cut is the node's own trivial cut {n}.
func (c *Cut) IsTrivial(n aig.Node) bool {
	return len(c.Leaves) == 1 && c.Leaves[0] == n
}

// dominates reports whether c is a subset of d (then d is redundant).
func (c *Cut) dominates(d *Cut) bool {
	if len(c.Leaves) > len(d.Leaves) {
		return false
	}
	i := 0
	for _, l := range c.Leaves {
		for i < len(d.Leaves) && d.Leaves[i] < l {
			i++
		}
		if i == len(d.Leaves) || d.Leaves[i] != l {
			return false
		}
		i++
	}
	return true
}

// mergeLeaves unions two sorted leaf sets, returning nil if the union
// exceeds k leaves.
func mergeLeaves(a, b []aig.Node, k int) []aig.Node {
	out := make([]aig.Node, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next aig.Node
		switch {
		case i == len(a):
			next = b[j]
			j++
		case j == len(b):
			next = a[i]
			i++
		case a[i] < b[j]:
			next = a[i]
			i++
		case a[i] > b[j]:
			next = b[j]
			j++
		default:
			next = a[i]
			i++
			j++
		}
		if len(out) == k {
			return nil
		}
		out = append(out, next)
	}
	return out
}

// Config controls enumeration.
type Config struct {
	K       int // maximum leaves per cut
	PerNode int // maximum stored cuts per node (the trivial cut is extra)
}

// DefaultConfig matches a typical rewriting setup: 4-input cuts, 8 per node.
func DefaultConfig() Config { return Config{K: 4, PerNode: 8} }

// Sets holds the enumerated cuts of every node.
type Sets struct {
	cfg  Config
	cuts [][]Cut
}

// Cuts returns the stored cuts of node n, including the trivial cut (always
// first) for AND nodes and PIs.
func (s *Sets) Cuts(n aig.Node) []Cut { return s.cuts[n] }

// K returns the cut size limit used during enumeration.
func (s *Sets) K() int { return s.cfg.K }

// Enumerate computes priority cuts for every node of g. Per AND node it
// keeps the trivial cut plus up to cfg.PerNode merged cuts, pruning
// dominated cuts and preferring smaller ones.
func Enumerate(g *aig.Graph, cfg Config) *Sets {
	s := &Sets{cfg: cfg, cuts: make([][]Cut, g.NumNodes())}
	for i := 0; i < g.NumPIs(); i++ {
		pi := g.PI(i)
		s.cuts[pi] = []Cut{{Leaves: []aig.Node{pi}}}
	}
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		c0 := s.cuts[g.Fanin0(n).Node()]
		c1 := s.cuts[g.Fanin1(n).Node()]
		var merged []Cut
		for i := range c0 {
			for j := range c1 {
				leaves := mergeLeaves(c0[i].Leaves, c1[j].Leaves, cfg.K)
				if leaves == nil {
					continue
				}
				merged = addCut(merged, Cut{Leaves: leaves})
			}
		}
		sort.SliceStable(merged, func(i, j int) bool {
			return len(merged[i].Leaves) < len(merged[j].Leaves)
		})
		if len(merged) > cfg.PerNode {
			merged = merged[:cfg.PerNode]
		}
		// The trivial cut goes first so consumers can skip it easily.
		s.cuts[n] = append([]Cut{{Leaves: []aig.Node{n}}}, merged...)
	}
	return s
}

// addCut inserts c into list unless it is dominated; cuts dominated by c
// are removed.
func addCut(list []Cut, c Cut) []Cut {
	for i := range list {
		if list[i].dominates(&c) {
			return list
		}
	}
	out := list[:0]
	for i := range list {
		if !c.dominates(&list[i]) {
			out = append(out, list[i])
		}
	}
	return append(out, c)
}

// Table computes the function of root in terms of the cut leaves as a truth
// table (leaf i is variable i). The cut must actually cut root's cone.
func Table(g *aig.Graph, root aig.Node, leaves []aig.Node) tt.Table {
	n := len(leaves)
	memo := make(map[aig.Node]tt.Table, 16)
	for i, l := range leaves {
		memo[l] = tt.Var(n, i)
	}
	var eval func(aig.Node) tt.Table
	eval = func(nd aig.Node) tt.Table {
		if t, ok := memo[nd]; ok {
			return t
		}
		if nd == 0 {
			return tt.New(n)
		}
		if !g.IsAnd(nd) {
			panic("cut: leaves do not cut the cone")
		}
		f0, f1 := g.Fanin0(nd), g.Fanin1(nd)
		t0 := eval(f0.Node())
		if f0.IsCompl() {
			t0 = t0.Not()
		}
		t1 := eval(f1.Node())
		if f1.IsCompl() {
			t1 = t1.Not()
		}
		t := t0.And(t1)
		memo[nd] = t
		return t
	}
	return eval(root)
}

// Volume returns the number of AND nodes strictly inside the cut cone
// (between the leaves and the root, root included).
func Volume(g *aig.Graph, root aig.Node, leaves []aig.Node) int {
	inLeaves := make(map[aig.Node]bool, len(leaves))
	for _, l := range leaves {
		inLeaves[l] = true
	}
	seen := map[aig.Node]bool{}
	var walk func(aig.Node)
	walk = func(nd aig.Node) {
		if seen[nd] || inLeaves[nd] || !g.IsAnd(nd) {
			return
		}
		seen[nd] = true
		walk(g.Fanin0(nd).Node())
		walk(g.Fanin1(nd).Node())
	}
	walk(root)
	return len(seen)
}
