package cut

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
	"repro/internal/tt"
)

func TestMergeLeaves(t *testing.T) {
	a := []aig.Node{1, 3, 5}
	b := []aig.Node{2, 3, 6}
	got := mergeLeaves(a, b, 5)
	want := []aig.Node{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("merge = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
	if mergeLeaves(a, b, 4) != nil {
		t.Fatalf("expected overflow to return nil")
	}
	if got := mergeLeaves(a, a, 3); len(got) != 3 {
		t.Fatalf("self merge = %v", got)
	}
}

func TestDominates(t *testing.T) {
	c := Cut{Leaves: []aig.Node{1, 2}}
	d := Cut{Leaves: []aig.Node{1, 2, 3}}
	e := Cut{Leaves: []aig.Node{1, 4}}
	if !c.dominates(&d) {
		t.Errorf("subset must dominate")
	}
	if d.dominates(&c) {
		t.Errorf("superset must not dominate")
	}
	if c.dominates(&e) || e.dominates(&c) {
		t.Errorf("incomparable cuts must not dominate")
	}
	if !c.dominates(&c) {
		t.Errorf("cut must dominate itself")
	}
}

func buildTestCircuit() (*aig.Graph, []aig.Lit, aig.Lit) {
	g := aig.New()
	xs := g.AddPIs(4, "x")
	f := g.Or(g.And(xs[0], xs[1]), g.And(xs[2], xs[3]))
	g.AddPO(f, "f")
	return g, xs, f
}

func TestEnumerateBasics(t *testing.T) {
	g, xs, f := buildTestCircuit()
	s := Enumerate(g, DefaultConfig())
	// PIs have only the trivial cut.
	piCuts := s.Cuts(xs[0].Node())
	if len(piCuts) != 1 || !piCuts[0].IsTrivial(xs[0].Node()) {
		t.Fatalf("PI cuts = %v", piCuts)
	}
	// Root must include the 4-leaf PI cut.
	root := f.Node()
	found := false
	for _, c := range s.Cuts(root) {
		if c.Size() == 4 {
			all := true
			for i, l := range c.Leaves {
				if l != xs[i].Node() {
					all = false
				}
			}
			if all {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("root cuts missing the full PI cut: %v", s.Cuts(root))
	}
	// First cut must be trivial.
	if !s.Cuts(root)[0].IsTrivial(root) {
		t.Fatalf("first cut is not trivial")
	}
}

func TestEnumerateRespectsK(t *testing.T) {
	g := aig.New()
	xs := g.AddPIs(8, "x")
	f := g.AndN(xs...)
	g.AddPO(f, "f")
	s := Enumerate(g, Config{K: 3, PerNode: 16})
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		for _, c := range s.Cuts(n) {
			if c.Size() > 3 && !c.IsTrivial(n) {
				t.Fatalf("node %d has oversized cut %v", n, c)
			}
		}
	}
}

func TestNoDominatedCutsStored(t *testing.T) {
	g, _, _ := buildTestCircuit()
	s := Enumerate(g, DefaultConfig())
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		cuts := s.Cuts(n)
		for i := 1; i < len(cuts); i++ { // skip trivial
			for j := 1; j < len(cuts); j++ {
				if i != j && cuts[i].dominates(&cuts[j]) {
					t.Fatalf("node %d stores dominated cut %v (by %v)", n, cuts[j], cuts[i])
				}
			}
		}
	}
}

func TestCutTableMatchesSimulation(t *testing.T) {
	// The cut function computed symbolically must agree with bit-parallel
	// simulation for every cut of every node.
	g := aig.New()
	xs := g.AddPIs(5, "x")
	n1 := g.Xor(xs[0], xs[1])
	n2 := g.Mux(xs[2], n1, xs[3])
	n3 := g.Or(n2, g.And(xs[4], n1))
	g.AddPO(n3, "f")

	p := sim.Exhaustive(5)
	vecs := sim.Simulate(g, p)
	s := Enumerate(g, Config{K: 4, PerNode: 12})

	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		for _, c := range s.Cuts(n) {
			if c.IsTrivial(n) {
				continue
			}
			tab := Table(g, n, c.Leaves)
			// Check on all 32 PI patterns: the node value must equal the
			// table row selected by the leaf values.
			for m := 0; m < 32; m++ {
				row := 0
				for i, l := range c.Leaves {
					if vecs.LitBit(aig.MakeLit(l, false), m) {
						row |= 1 << uint(i)
					}
				}
				want := vecs.LitBit(aig.MakeLit(n, false), m)
				if tab.Get(row) != want {
					t.Fatalf("node %d cut %v: table disagrees at pattern %d", n, c.Leaves, m)
				}
			}
		}
	}
}

func TestCutTableTrivial(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	f := g.And(a, b.Not())
	tab := Table(g, f.Node(), []aig.Node{a.Node(), b.Node()})
	want := tt.Var(2, 0).And(tt.Var(2, 1).Not())
	if !tab.Equal(want) {
		t.Fatalf("table = %v, want %v", tab, want)
	}
}

func TestVolume(t *testing.T) {
	g, xs, f := buildTestCircuit()
	leaves := []aig.Node{xs[0].Node(), xs[1].Node(), xs[2].Node(), xs[3].Node()}
	if v := Volume(g, f.Node(), leaves); v != 3 {
		t.Fatalf("volume = %d, want 3", v)
	}
	// Volume with an internal leaf.
	and01 := g.And(xs[0], xs[1])
	leaves2 := []aig.Node{and01.Node(), xs[2].Node(), xs[3].Node()}
	if v := Volume(g, f.Node(), leaves2); v != 2 {
		t.Fatalf("volume = %d, want 2", v)
	}
}
