package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// writeVia writes data to path through fs with the store's temp+rename
// discipline, mirroring what internal/service does.
func writeVia(fsys FS, path string, data []byte) error {
	f, err := fsys.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(name)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(name)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(name)
		return err
	}
	if err := fsys.Rename(name, path); err != nil {
		fsys.Remove(name)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// TestOSPassthrough: the OS implementation round-trips data and fsyncs
// without error on a real directory.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if err := writeVia(OS{}, path, []byte("hello")); err != nil {
		t.Fatalf("writeVia: %v", err)
	}
	got, err := OS{}.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile: %q, %v", got, err)
	}
	entries, err := OS{}.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir: %d entries, %v", len(entries), err)
	}
	if _, err := (OS{}).Stat(path); err != nil {
		t.Fatalf("Stat: %v", err)
	}
}

// TestInjectNthErrno: a fault fires on exactly the Nth matching call with
// the configured errno, then disarms.
func TestInjectNthErrno(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, Fault{Op: OpSync, N: 2, Err: syscall.ENOSPC})

	if err := writeVia(inj, filepath.Join(dir, "a"), []byte("a")); err != nil {
		t.Fatalf("first write (sync #1) should pass: %v", err)
	}
	err := writeVia(inj, filepath.Join(dir, "b"), []byte("b"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second write: %v, want ENOSPC", err)
	}
	if err := writeVia(inj, filepath.Join(dir, "c"), []byte("c")); err != nil {
		t.Fatalf("third write after disarm: %v", err)
	}
	fired := inj.Fired()
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "sync ") {
		t.Fatalf("fired log %v, want exactly one sync fault", fired)
	}
	// The failed write must have been rolled back by the caller.
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Fatalf("failed write left target visible: %v", err)
	}
}

// TestTornWrite: an OpWrite fault persists exactly TornBytes bytes of the
// buffer before failing — the partial prefix really lands in the file.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, Fault{Op: OpWrite, N: 1, TornBytes: 3, Err: syscall.EIO})
	f, err := inj.CreateTemp(dir, "torn-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write error %v, want EIO", err)
	}
	if n != 3 {
		t.Fatalf("torn write reported %d bytes, want 3", n)
	}
	name := f.Name()
	f.Close()
	got, err := os.ReadFile(name)
	if err != nil || string(got) != "abc" {
		t.Fatalf("on-disk prefix %q (%v), want \"abc\"", got, err)
	}
}

// TestCrashPoint: after a crash fault fires, every subsequent operation
// fails with ErrCrashed — nothing persists past the crash point.
func TestCrashPoint(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, Fault{Op: OpRename, N: 1, PathSubstr: "victim", Crash: true})

	err := writeVia(inj, filepath.Join(dir, "victim"), []byte("x"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash fault returned %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not in crashed state")
	}
	if err := writeVia(inj, filepath.Join(dir, "after"), []byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write returned %v, want ErrCrashed", err)
	}
	if _, err := inj.ReadFile(filepath.Join(dir, "victim")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read returned %v, want ErrCrashed", err)
	}
	// The target file never became visible: the rename was the crash point.
	if _, err := os.Stat(filepath.Join(dir, "victim")); !os.IsNotExist(err) {
		t.Fatalf("crashed rename left target visible: %v", err)
	}
}

// TestPanicFault: a Panic fault panics inside the faulted call (the caller
// is expected to isolate it with recover, as the service worker does).
func TestPanicFault(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, Fault{Op: OpCreateTemp, N: 1, Panic: true})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected injected panic")
		}
		// The injector must remain usable after the panic is recovered.
		if err := writeVia(inj, filepath.Join(dir, "ok"), []byte("ok")); err != nil {
			t.Fatalf("injector unusable after recovered panic: %v", err)
		}
	}()
	inj.CreateTemp(dir, ".tmp-*")
}

// TestPathSubstrFilterAndDefaultErr: faults only count calls whose path
// matches, and a fault without Err yields ErrInjected.
func TestPathSubstrFilterAndDefaultErr(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, Fault{Op: OpRename, N: 1, PathSubstr: "special"})
	if err := writeVia(inj, filepath.Join(dir, "plain"), []byte("p")); err != nil {
		t.Fatalf("non-matching rename failed: %v", err)
	}
	err := writeVia(inj, filepath.Join(dir, "special"), []byte("s"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matching rename: %v, want ErrInjected", err)
	}
}

// TestDeterministicSchedule: the same schedule over the same operation
// sequence fires at the same call, run after run.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		inj := NewInjector(OS{},
			Fault{Op: OpSync, N: 3, Err: syscall.EAGAIN},
			Fault{Op: OpRename, N: 2, Err: syscall.EBUSY},
		)
		for i := 0; i < 5; i++ {
			writeVia(inj, filepath.Join(dir, "f"), []byte{byte(i)})
		}
		fired := inj.Fired()
		// Strip the tempdir prefix and the random temp-file suffix so runs
		// compare equal: determinism is about *which call* fires, and
		// os.CreateTemp names are intentionally random.
		out := make([]string, len(fired))
		for i, f := range fired {
			f = strings.ReplaceAll(f, dir, "<dir>")
			if j := strings.Index(f, ".tmp-"); j >= 0 {
				f = f[:j] + ".tmp-X"
			}
			out[i] = f
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 2 {
		t.Fatalf("fired %v, want 2 faults", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic: %v vs %v", a, b)
		}
	}
}
