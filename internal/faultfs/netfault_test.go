package faultfs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func netTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload-0123456789")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestNetInjectorDrop(t *testing.T) {
	srv := netTestServer(t)
	inj := NewNetInjector(nil, nil,
		NetFault{Method: "GET", PathSubstr: "/claim", N: 2, Drop: true})
	client := &http.Client{Transport: inj}

	// First matching call passes through.
	resp, err := client.Get(srv.URL + "/claim")
	if err != nil {
		t.Fatalf("call 1: %v", err)
	}
	resp.Body.Close()
	// Second matching call is dropped.
	_, err = client.Get(srv.URL + "/claim")
	if err == nil || !errors.Is(err, ErrNetInjected) {
		t.Fatalf("call 2: err = %v, want ErrNetInjected", err)
	}
	// Non-matching path is untouched.
	resp, err = client.Get(srv.URL + "/other")
	if err != nil {
		t.Fatalf("non-matching call: %v", err)
	}
	resp.Body.Close()

	fired := inj.Fired()
	if len(fired) != 1 || !strings.Contains(fired[0], "/claim") {
		t.Fatalf("Fired() = %v", fired)
	}
}

func TestNetInjectorTruncate(t *testing.T) {
	srv := netTestServer(t)
	inj := NewNetInjector(nil, nil,
		NetFault{PathSubstr: "/blob", N: 1, Truncate: 7, Truncated: true})
	client := &http.Client{Transport: inj}

	resp, err := client.Get(srv.URL + "/blob")
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("body read err = %v, want ErrUnexpectedEOF", err)
	}
	if string(body) != "payload" {
		t.Fatalf("truncated body = %q, want the 7-byte prefix", body)
	}
}

func TestNetInjectorDelayUsesInjectedSleep(t *testing.T) {
	srv := netTestServer(t)
	var slept []time.Duration
	inj := NewNetInjector(nil, func(d time.Duration) { slept = append(slept, d) },
		NetFault{PathSubstr: "/", N: 1, Delay: 42 * time.Millisecond})
	client := &http.Client{Transport: inj}

	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	resp.Body.Close()
	if len(slept) != 1 || slept[0] != 42*time.Millisecond {
		t.Fatalf("slept = %v, want [42ms]", slept)
	}
}

func TestNetInjectorDeterministicSchedule(t *testing.T) {
	// The same schedule over the same call sequence fires identically.
	srv := netTestServer(t)
	run := func() []string {
		inj := NewNetInjector(nil, nil,
			NetFault{PathSubstr: "/a", N: 2, Drop: true},
			NetFault{PathSubstr: "/b", N: 1, Drop: true})
		client := &http.Client{Transport: inj}
		for _, p := range []string{"/a", "/b", "/a", "/a"} {
			resp, err := client.Get(srv.URL + p)
			if err == nil {
				resp.Body.Close()
			}
		}
		return inj.Fired()
	}
	a, b := run(), run()
	if len(a) != 2 || strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("schedules diverged: %v vs %v", a, b)
	}
}
