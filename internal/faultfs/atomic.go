package faultfs

import (
	"fmt"
	"path/filepath"
)

// WriteAtomic persists data at path with the temp+fsync+rename+dirsync
// discipline: a reader either sees the complete previous content or the
// complete new content, never a torn intermediate, even across a crash at
// any step. This is the single-attempt primitive; callers that want
// transient-errno retries (the service store does) wrap it in their own
// retrier. On failure the temp file is removed on a best-effort basis — a
// crash between create and rename can still strand one, which is why every
// store sweeps its temp pattern on startup.
func WriteAtomic(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("write %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("rename %s -> %s: %w", tmp, path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return nil
}
