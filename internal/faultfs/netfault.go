package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrNetInjected is the default error of a network fault that names none.
// It deliberately does not implement net.Error: the cluster client must
// classify retryability by its own rules, not by type-asserting what only
// real sockets produce.
var ErrNetInjected = errors.New("faultfs: injected network fault")

// NetFault is one entry of a network injection schedule, the HTTP analogue
// of Fault: it fires on the N-th round trip (1-based) whose method matches
// Method (empty matches all) and whose URL path contains PathSubstr (empty
// matches everything), then disarms. Exactly one of the effect fields
// should be set.
type NetFault struct {
	Method     string
	PathSubstr string
	N          int

	// Drop fails the round trip before any bytes reach the server — a
	// connection refused / reset, the request may or may not have been
	// processed from the client's perspective (it was not).
	Drop bool
	// Err is the error a Drop surfaces; nil means ErrNetInjected.
	Err error
	// Delay invokes the injector's sleep function with this duration before
	// performing the round trip — a slow link, deterministic because the
	// sleep is injected (tests pass a recording no-op).
	Delay time.Duration
	// Truncate performs the round trip but delivers only this many
	// response-body bytes before surfacing io.ErrUnexpectedEOF — a
	// connection cut mid-response. The request WAS processed server-side;
	// only the reply is torn. Zero with Truncated=true cuts the body
	// entirely.
	Truncate  int
	Truncated bool

	seen int
}

// NetInjector is a deterministic fault-injecting http.RoundTripper: the
// cluster chaos tests wrap a worker's HTTP client in one to simulate a
// partitioned coordinator — dropped connections, delayed responses,
// truncated replies — with the same schedule discipline as the filesystem
// Injector: no clock reads, no randomness, the N-th matching call always
// fires.
type NetInjector struct {
	base  http.RoundTripper
	sleep func(time.Duration)

	mu     sync.Mutex
	faults []*NetFault
	fired  []string
}

// NewNetInjector wraps base (nil means http.DefaultTransport) with the given
// schedule. sleep services Delay faults; nil means delays are recorded but
// not slept — the right default for tests, which assert on Fired() rather
// than wall time.
func NewNetInjector(base http.RoundTripper, sleep func(time.Duration), schedule ...NetFault) *NetInjector {
	if base == nil {
		base = http.DefaultTransport
	}
	if sleep == nil {
		sleep = func(time.Duration) {}
	}
	ni := &NetInjector{base: base, sleep: sleep}
	for _, f := range schedule {
		c := f
		c.seen = 0
		ni.faults = append(ni.faults, &c)
	}
	return ni
}

// Fired returns the record of network faults that have fired, in firing
// order.
func (ni *NetInjector) Fired() []string {
	ni.mu.Lock()
	defer ni.mu.Unlock()
	return append([]string(nil), ni.fired...)
}

// RoundTrip implements http.RoundTripper.
func (ni *NetInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	fault := ni.match(req)
	if fault == nil {
		return ni.base.RoundTrip(req)
	}
	if fault.Drop {
		return nil, fault.netErr()
	}
	if fault.Delay > 0 {
		ni.sleep(fault.Delay)
	}
	resp, err := ni.base.RoundTrip(req)
	if err != nil || (!fault.Truncated && fault.Truncate == 0) {
		return resp, err
	}
	// Torn response: deliver a prefix of the real body, then a cut.
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr != nil {
		return nil, fmt.Errorf("faultfs: truncating response: %w", readErr)
	}
	n := fault.Truncate
	if n > len(body) {
		n = len(body)
	}
	resp.Body = &tornBody{r: bytes.NewReader(body[:n])}
	return resp, nil
}

func (ni *NetInjector) match(req *http.Request) *NetFault {
	ni.mu.Lock()
	defer ni.mu.Unlock()
	for _, f := range ni.faults {
		if f.N <= 0 {
			continue
		}
		if f.Method != "" && f.Method != req.Method {
			continue
		}
		if f.PathSubstr != "" && !strings.Contains(req.URL.Path, f.PathSubstr) {
			continue
		}
		f.seen++
		if f.seen != f.N {
			continue
		}
		f.N = -1 // disarm
		ni.fired = append(ni.fired, fmt.Sprintf("%s %s", req.Method, req.URL.Path))
		return f
	}
	return nil
}

func (f *NetFault) netErr() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrNetInjected
}

// tornBody yields its prefix then fails with io.ErrUnexpectedEOF — what a
// net/http client body read reports when the connection dies before
// Content-Length bytes arrive.
type tornBody struct {
	r io.Reader
}

func (t *tornBody) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *tornBody) Close() error { return nil }
