// Package faultfs abstracts the small filesystem surface the alsracd
// persistence layer uses (create/open/rename/sync/remove/readdir) behind an
// interface with two implementations: OS, a passthrough to the real
// filesystem, and Injector, a deterministic fault injector that can fail the
// Nth matching call with a chosen errno, truncate a write partway (a torn
// write), panic mid-operation (a worker crash), or simulate a process death
// after which nothing persists any more (a crash point).
//
// The injector exists so the service tests can torture the exact code paths
// production runs: internal/service's store performs every disk operation
// through an FS value, so a chaos test swaps in an Injector with a seeded
// fault schedule and asserts that every injected fault ends in a correct
// resume, a clean checkpoint fallback, or an explicit terminal job state —
// never a hang, a lost job, or daemon death.
//
// Determinism discipline (enforced by alsraclint): the injector draws no
// randomness and reads no clock. A fault schedule is an explicit list; each
// fault keeps its own count of matching calls, so the same schedule against
// the same operation sequence always fires at the same instant.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"
	"sync"
)

// Op names one filesystem operation class for fault matching.
type Op string

const (
	OpOpen       Op = "open"
	OpCreateTemp Op = "createtemp"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
	OpClose      Op = "close"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpRemoveAll  Op = "removeall"
	OpMkdirAll   Op = "mkdirall"
	OpReadFile   Op = "readfile"
	OpReadDir    Op = "readdir"
	OpStat       Op = "stat"
	OpSyncDir    Op = "syncdir"
)

// File is the writable/readable handle the store needs. *os.File satisfies
// it directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// FS is the filesystem surface of the persistence layer.
type FS interface {
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, persisting renames and unlinks inside it.
	SyncDir(dir string) error
}

// OS is the passthrough implementation over the real filesystem.
type OS struct{}

func (OS) Open(name string) (File, error)               { return os.Open(name) }
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

// SyncDir opens the directory and fsyncs it so a preceding rename is durable
// before the caller proceeds.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Sentinel errors the injector produces.
var (
	// ErrInjected is the default error of a fault that names none.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrCrashed is returned by every operation after a crash point fired:
	// the simulated process is dead, nothing persists any more.
	ErrCrashed = errors.New("faultfs: simulated crash: persistence stopped")
)

// Fault is one entry of an injection schedule. It fires on the N-th call
// (1-based) whose operation matches Op and whose path contains PathSubstr
// (empty matches everything), then disarms — except Crash, which is sticky
// by nature.
type Fault struct {
	Op         Op
	PathSubstr string
	N          int

	// Err is returned by the faulted call; nil means ErrInjected.
	Err error
	// TornBytes, on an OpWrite fault, writes only that many bytes of the
	// buffer to the underlying file before returning the error — a torn
	// write: the partial data really lands on disk.
	TornBytes int
	// Crash flips the whole injector into the crashed state when the fault
	// fires: this and every later operation fails with ErrCrashed, as if
	// the process had died at this exact point. Data already durable stays;
	// nothing further persists.
	Crash bool
	// Panic makes the faulted call panic instead of returning an error,
	// simulating a worker goroutine blowing up mid-operation.
	Panic bool

	seen int // matching calls observed so far
}

// Injector wraps a base FS and applies a fault schedule. The zero value is
// unusable; build with NewInjector.
type Injector struct {
	base FS

	mu      sync.Mutex
	faults  []*Fault
	crashed bool
	fired   []string // human-readable record of every fault that fired
}

// NewInjector builds an injector over base with the given schedule. The
// schedule is copied; each fault's trigger count starts at zero.
func NewInjector(base FS, schedule ...Fault) *Injector {
	inj := &Injector{base: base}
	for _, f := range schedule {
		c := f
		c.seen = 0
		inj.faults = append(inj.faults, &c)
	}
	return inj
}

// Fired returns the record of faults that have fired, in firing order.
func (i *Injector) Fired() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.fired...)
}

// Crashed reports whether a crash point has fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// check consults the schedule for one operation. It returns the matched
// fault (nil when none fired) and the error the operation must return. For
// OpWrite faults the error is nil and the caller performs the torn write
// (persisting Fault.TornBytes bytes, zero by default) before failing.
func (i *Injector) check(op Op, path string) (*Fault, error) {
	i.mu.Lock()
	var fired *Fault
	if i.crashed {
		i.mu.Unlock()
		return nil, ErrCrashed
	}
	for _, f := range i.faults {
		if f.N <= 0 || f.Op != op {
			continue
		}
		if f.PathSubstr != "" && !strings.Contains(path, f.PathSubstr) {
			continue
		}
		f.seen++
		if f.seen != f.N {
			continue
		}
		f.N = -1 // disarm
		i.fired = append(i.fired, fmt.Sprintf("%s %s", op, path))
		if f.Crash {
			i.crashed = true
		}
		fired = f
		break
	}
	i.mu.Unlock()
	if fired == nil {
		return nil, nil
	}
	if fired.Panic {
		panic(fmt.Sprintf("faultfs: injected panic on %s %s", op, path))
	}
	if op == OpWrite {
		return fired, nil // torn write: caller persists the prefix, then errors
	}
	return fired, fired.errOrDefault()
}

// errOrDefault is the error a fired fault surfaces: its configured Err, or
// ErrCrashed for crash points, or ErrInjected.
func (f *Fault) errOrDefault() error {
	if f.Err != nil {
		return f.Err
	}
	if f.Crash {
		return ErrCrashed
	}
	return ErrInjected
}

func (i *Injector) Open(name string) (File, error) {
	if _, err := i.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := i.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := i.check(OpCreateTemp, dir+"/"+pattern); err != nil {
		return nil, err
	}
	f, err := i.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if _, err := i.check(OpRename, newpath); err != nil {
		return err
	}
	return i.base.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if _, err := i.check(OpRemove, name); err != nil {
		return err
	}
	return i.base.Remove(name)
}

func (i *Injector) RemoveAll(path string) error {
	if _, err := i.check(OpRemoveAll, path); err != nil {
		return err
	}
	return i.base.RemoveAll(path)
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	if _, err := i.check(OpMkdirAll, path); err != nil {
		return err
	}
	return i.base.MkdirAll(path, perm)
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if _, err := i.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return i.base.ReadFile(name)
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if _, err := i.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return i.base.ReadDir(name)
}

func (i *Injector) Stat(name string) (fs.FileInfo, error) {
	if _, err := i.check(OpStat, name); err != nil {
		return nil, err
	}
	return i.base.Stat(name)
}

func (i *Injector) SyncDir(dir string) error {
	if _, err := i.check(OpSyncDir, dir); err != nil {
		return err
	}
	return i.base.SyncDir(dir)
}

// injFile wraps a file handle so write/sync/close traffic flows through the
// schedule too.
type injFile struct {
	inj *Injector
	f   File
}

func (w *injFile) Name() string { return w.f.Name() }

func (w *injFile) Read(p []byte) (int, error) { return w.f.Read(p) }

func (w *injFile) Write(p []byte) (int, error) {
	fault, err := w.inj.check(OpWrite, w.f.Name())
	if err != nil {
		return 0, err
	}
	if fault != nil {
		// Torn write: persist a prefix of the buffer, then fail.
		n := fault.TornBytes
		if n > len(p) {
			n = len(p)
		}
		wrote, _ := w.f.Write(p[:n])
		return wrote, fault.errOrDefault()
	}
	return w.f.Write(p)
}

func (w *injFile) Sync() error {
	if _, err := w.inj.check(OpSync, w.f.Name()); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *injFile) Close() error {
	if _, err := w.inj.check(OpClose, w.f.Name()); err != nil {
		w.f.Close() // release the descriptor regardless
		return err
	}
	return w.f.Close()
}
