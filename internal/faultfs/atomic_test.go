package faultfs

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")

	if err := WriteAtomic(OS{}, path, []byte("v1")); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back: %q, %v", got, err)
	}

	// Overwrite is atomic: the new content replaces the old wholesale.
	if err := WriteAtomic(OS{}, path, []byte("v2 longer")); err != nil {
		t.Fatalf("WriteAtomic overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2 longer" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestWriteAtomicTornWriteLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if err := WriteAtomic(OS{}, path, []byte("old")); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	inj := NewInjector(OS{}, Fault{Op: OpWrite, PathSubstr: ".tmp-", N: 1, TornBytes: 2, Err: syscall.EIO})
	err := WriteAtomic(inj, path, []byte("newcontent"))
	if err == nil {
		t.Fatalf("torn write reported success")
	}
	if !strings.Contains(err.Error(), "write") {
		t.Fatalf("error lacks operation context: %v", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "old" {
		t.Fatalf("target after torn write: %q, %v (want old content intact)", got, rerr)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp residue left behind: %s", e.Name())
		}
	}
}

func TestWriteAtomicRenameFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	inj := NewInjector(OS{}, Fault{Op: OpRename, PathSubstr: "blob", N: 1, Err: syscall.EIO})
	if err := WriteAtomic(inj, path, []byte("x")); err == nil {
		t.Fatalf("rename fault reported success")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target exists after failed rename")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("residue after failed rename: %v", ents)
	}
}
