package analysis

import "go/ast"

// CtxflowAnalyzer hardens the alsracd cancel/drain/resume machinery: a
// function that receives a context.Context must actually honor it. Two bug
// classes are reported:
//
//  1. Dropped context: a ctx-aware function calls context.Background() or
//     context.TODO(), severing the cancellation chain it was handed. The
//     daemon's graceful drain relies on ctx reaching every Step and store
//     op; a Background() two frames down turns SIGTERM into a hang.
//
//  2. Blocking escape: a ctx-aware function calls (directly, on its own
//     goroutine) a module function that can block indefinitely — a channel
//     send/receive outside a default-guarded select, a select with neither
//     default nor a ctx.Done case, time.Sleep, or transitively any callee
//     that does — and that callee accepts no context, so cancellation can
//     never reach the blocking point. The chain to the blocking seed is
//     printed. Callees that accept a context are assumed to honor it (rule 1
//     and their own ctxflow findings keep them honest); calls inside
//     function literals or go statements run on other schedules and do not
//     propagate.
//
// The blocking summary is computed once on the shared engine and reused by
// every function's check (fixed point over the call graph).
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "ctx-aware functions must pass their context to every blocking callee",
	AppliesTo: pathIn(
		"internal/core", "internal/service", "internal/resub",
		"internal/sim", "internal/window", "internal/errest",
		"internal/exact", "internal/exact/sat", "internal/cluster",
	),
	RunModule: runCtxflow,
}

func runCtxflow(mp *ModulePass) {
	m := mp.Module

	// blocking[f]: f can block with no context to cut it short — it has a
	// blocking seed of its own, or it synchronously calls a blocking
	// module function that accepts no context. Propagation stops at
	// ctx-aware callees: they can be cancelled, so the hazard ends there.
	blocking := m.fixedPoint(
		func(f *FuncInfo) bool { return len(f.Blocks) > 0 && !f.HasCtxParam() },
		func(cs *CallSite) bool {
			return !cs.IsRef && !cs.InFuncLit && !cs.InGo && !cs.Caller.HasCtxParam()
		},
	)

	for _, fi := range m.Funcs {
		if !fi.HasCtxParam() || !mp.applies(fi.Pkg) {
			continue
		}
		// Rule 1: dropping the handed context.
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			x, name, ok := selectorCall(call)
			if !ok || (name != "Background" && name != "TODO") {
				return true
			}
			id, ok := x.(*ast.Ident)
			if !ok || fi.Pkg.pkgNameOf(fi.File, id) != "context" {
				return true
			}
			mp.Reportf(fi.Pkg, call.Pos(),
				"%s receives a context but calls context.%s() here, severing the cancellation chain; derive from the incoming ctx instead",
				fi.DisplayName(), name)
			return true
		})

		// Rule 2: blocking callees reachable without the context.
		for _, cs := range fi.Calls {
			if cs.IsRef || cs.InFuncLit || cs.InGo {
				continue
			}
			if cs.Callee.HasCtxParam() || !blocking[cs.Callee] {
				continue
			}
			chain, last, seed := blockChain(cs.Callee, blocking)
			mp.Reportf(fi.Pkg, cs.Pos,
				"%s holds a context but calls %s, which can block with no way to cancel: %s (%s at %s); thread ctx through or add a ctx-aware variant",
				fi.DisplayName(), cs.Callee.DisplayName(), chainString(chain),
				seed.Desc, last.Pkg.Fset.Position(seed.Pos))
		}
	}
}

// blockChain walks from f down a blocking path to a seed, mirroring
// allocChain: stop at a function with its own blocking seed, else follow the
// first synchronous ctx-less callee that still blocks.
func blockChain(f *FuncInfo, blocking map[*FuncInfo]bool) ([]*FuncInfo, *FuncInfo, Site) {
	chain := []*FuncInfo{f}
	seen := map[*FuncInfo]bool{f: true}
	cur := f
	for {
		if len(cur.Blocks) > 0 {
			return chain, cur, cur.Blocks[0]
		}
		var next *FuncInfo
		for _, cs := range cur.Calls {
			if cs.IsRef || cs.InFuncLit || cs.InGo {
				continue
			}
			if !cs.Callee.HasCtxParam() && blocking[cs.Callee] && !seen[cs.Callee] {
				next = cs.Callee
				break
			}
		}
		if next == nil {
			return chain, cur, Site{cur.Decl.Pos(), "blocking within call cycle"}
		}
		seen[next] = true
		chain = append(chain, next)
		cur = next
	}
}
