package analysis

import (
	"go/token"
	"go/types"
)

// LeaksAnalyzer is the interprocedural upgrade of the concurrency rule's
// join check: every `go` statement must be joined along every path, but the
// join may legitimately live in a different function than the spawn. The
// PR 3 rule demanded a .Wait() somewhere in the spawning function — which
// both rejects the sanctioned spawn-in-helper/join-in-caller pattern and
// accepts a function that Waits on one pool while a second pool leaks.
//
// leaks matches spawns to joins by the synchronization *object*:
//
//   - A spawned literal that calls X.Done() (or sends on channel X) is
//     joined when the spawning function Waits on (receives from) the same X.
//
//   - If X is a *parameter* of the spawning function, the join obligation
//     escapes to every caller: each call site must pass an object the caller
//     itself joins — or the caller's own parameter, in which case the
//     obligation keeps propagating up the call graph (fixed point). A chain
//     that reaches a caller that neither joins nor forwards is reported at
//     that call site, with the spawn position named.
//
//   - A spawn with no recognizable completion signal (no Done, no send)
//     falls back to the concurrency rule's coarse check: any join point in
//     the same function accepts it, none at all is a finding.
//
// The rule runs module-wide: the daemon (internal/service), the windowed and
// global scan worker pools (internal/window, internal/resub, internal/sim,
// internal/core) and cmd/alsracd all spawn, and a leaked goroutine in any of
// them outlives the drain that the graceful-shutdown tests pin.
var LeaksAnalyzer = &Analyzer{
	Name:      "leaks",
	Doc:       "require every goroutine joined on every path, across function boundaries",
	RunModule: runLeaks,
}

// pendingSpawn is one spawn whose join obligation escaped through the
// spawning function's parameter.
type pendingSpawn struct {
	spawn      *SpawnSite
	paramIndex int
}

func runLeaks(mp *ModulePass) {
	m := mp.Module

	// Phase 1: per-function resolution. Spawns joined in-function are
	// discharged; spawns whose join object is a parameter become
	// obligations on the callers; everything else is a finding now.
	obligations := map[*FuncInfo][]pendingSpawn{}
	for _, fi := range m.Funcs {
		for _, sp := range fi.Spawns {
			switch {
			case sp.JoinObj == nil:
				if len(fi.Joins) == 0 && mp.applies(fi.Pkg) {
					mp.Reportf(fi.Pkg, sp.Pos,
						"goroutine in %s has no completion signal (no Done, no channel send) and %s never joins: a leaked goroutine outlives the drain",
						fi.DisplayName(), fi.DisplayName())
				}
			case joinedLocally(fi, sp.JoinObj):
				// discharged in the spawning function
			case sp.ParamIndex >= 0:
				obligations[fi] = append(obligations[fi], pendingSpawn{sp, sp.ParamIndex})
			default:
				if mp.applies(fi.Pkg) {
					mp.Reportf(fi.Pkg, sp.Pos,
						"goroutine in %s signals completion on %q but %s never joins it (no Wait/receive on the same object) and it is not a parameter, so no caller can",
						fi.DisplayName(), sp.JoinObj.Name(), fi.DisplayName())
				}
			}
		}
	}

	// Phase 2: propagate escaped obligations up the call graph until every
	// chain ends in a local join or a finding. The worklist converges
	// because each (function, spawn) pair is visited at most once.
	type frame struct {
		fn    *FuncInfo
		spawn *SpawnSite
		// paramIndex of the join object within fn's parameters.
		paramIndex int
	}
	visited := map[frame]bool{}
	var work []frame
	for _, fi := range m.Funcs { // deterministic seeding order
		for _, p := range obligations[fi] {
			work = append(work, frame{fi, p.spawn, p.paramIndex})
		}
	}
	rev := map[*FuncInfo][]*CallSite{}
	for _, fi := range m.Funcs {
		for _, cs := range fi.Calls {
			rev[cs.Callee] = append(rev[cs.Callee], cs)
		}
	}
	for len(work) > 0 {
		fr := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[fr] {
			continue
		}
		visited[fr] = true
		callers := rev[fr.fn]
		if len(callers) == 0 {
			// Nobody calls this function inside the module: exported
			// helpers joined by external callers are out of scope, but an
			// unexported one with zero callers cannot be joined by anyone
			// visible. Stay silent either way — no caller means no join
			// path to check, and reporting on absence would be guesswork.
			continue
		}
		for _, cs := range callers {
			if cs.IsRef {
				continue // a reference is not an invocation with arguments
			}
			var argObj types.Object
			if fr.paramIndex < len(cs.ArgObjs) {
				argObj = cs.ArgObjs[fr.paramIndex]
			}
			caller := cs.Caller
			switch {
			case argObj == nil:
				if mp.applies(caller.Pkg) {
					mp.Reportf(caller.Pkg, cs.Pos,
						"%s spawns a goroutine (at %s) joined through its parameter, but this call site passes no joinable object for it",
						fr.fn.DisplayName(), posOf(fr.fn, fr.spawn.Pos))
				}
			case joinedLocally(caller, argObj):
				// chain discharged here
			default:
				if idx := paramIndex(caller.Pkg, caller.Decl, argObj); idx >= 0 {
					work = append(work, frame{caller, fr.spawn, idx})
				} else if mp.applies(caller.Pkg) {
					mp.Reportf(caller.Pkg, cs.Pos,
						"%s spawns a goroutine (at %s) that must be joined by its caller, but %s neither waits on %q nor forwards it: the goroutine leaks",
						fr.fn.DisplayName(), posOf(fr.fn, fr.spawn.Pos),
						caller.DisplayName(), argObj.Name())
				}
			}
		}
	}
}

// joinedLocally reports whether fn joins the given object in its own body.
func joinedLocally(fn *FuncInfo, obj types.Object) bool {
	for _, j := range fn.Joins {
		if j.Obj == obj {
			return true
		}
	}
	return false
}

func posOf(fn *FuncInfo, pos token.Pos) string {
	return fn.Pkg.Fset.Position(pos).String()
}
