package analysis

import "strings"

// AllocflowAnalyzer extends the hotpath rule across function boundaries: a
// function annotated //alsrac:hotpath must be allocation-free over its whole
// static call closure, not just its own body. The PR 3 rule looks at one
// body at a time, so a kernel calling a helper that quietly does
// `make([]uint64, n)` two frames down passed clean; allocflow walks the call
// graph (direct calls, method calls, method values, calls inside function
// literals) and reports the offending call chain:
//
//	hotpath kernel K calls H1: H1 -> H2 (alloc at file:line: make)
//
// Waivers propagate: an //alsrac:alloc-ok marker on the allocation line
// inside the helper removes the site from the helper's summary (so every
// transitive proof through it succeeds), and a marker on a call line cuts
// that edge out of the proof. In-function allocations of the kernel itself
// remain the hotpath rule's findings — allocflow only reports transitive
// ones, so the two rules never double-report a line.
//
// Dynamic calls through function-typed values (e.g. an injected accessor
// func) do not resolve statically and are skipped — the proof covers the
// static closure, and the benchmark allocation gates cover the rest.
var AllocflowAnalyzer = &Analyzer{
	Name:      "allocflow",
	Doc:       "prove //alsrac:hotpath kernels allocation-free over their whole call closure",
	RunModule: runAllocflow,
}

func runAllocflow(mp *ModulePass) {
	m := mp.Module

	// allocates[f]: f's own body has an unwaived allocation site, or some
	// unwaived call edge reaches such a function (fixed point over the
	// reverse call graph, so recursion converges). Waived edges do not
	// propagate.
	allocates := m.fixedPoint(
		func(f *FuncInfo) bool { return len(f.Allocs) > 0 },
		func(cs *CallSite) bool { return !cs.Waived },
	)

	for _, fi := range m.Funcs {
		if !fi.Hotpath || !mp.applies(fi.Pkg) {
			continue
		}
		for _, cs := range fi.Calls {
			if cs.Waived || !allocates[cs.Callee] {
				continue
			}
			chain, last, site := allocChain(cs.Callee, allocates)
			mp.Reportf(fi.Pkg, cs.Pos,
				"hotpath %s calls %s, which allocates: %s (alloc at %s: %s); hoist the allocation, pool it, or waive this call with //alsrac:alloc-ok <reason>",
				fi.DisplayName(), cs.Callee.DisplayName(), chainString(chain),
				last.Pkg.Fset.Position(site.Pos), site.Desc)
		}
	}
}

// allocChain walks from f down an allocating path: at each step it stops at
// a function with an own-body allocation site, else follows the first
// (source-ordered) unwaived callee that still allocates. It returns the
// chain including f, its terminal frame, and the terminal allocation site.
func allocChain(f *FuncInfo, allocates map[*FuncInfo]bool) ([]*FuncInfo, *FuncInfo, Site) {
	chain := []*FuncInfo{f}
	seen := map[*FuncInfo]bool{f: true}
	cur := f
	for {
		if len(cur.Allocs) > 0 {
			return chain, cur, cur.Allocs[0]
		}
		var next *FuncInfo
		for _, cs := range cur.Calls {
			if !cs.Waived && allocates[cs.Callee] && !seen[cs.Callee] {
				next = cs.Callee
				break
			}
		}
		if next == nil {
			// Only reachable through a cycle; anchor the report at the
			// current frame.
			return chain, cur, Site{cur.Decl.Pos(), "allocation within call cycle"}
		}
		seen[next] = true
		chain = append(chain, next)
		cur = next
	}
}

// chainString renders "A -> B -> C".
func chainString(chain []*FuncInfo) string {
	parts := make([]string, len(chain))
	for i, f := range chain {
		parts[i] = f.DisplayName()
	}
	return strings.Join(parts, " -> ")
}
