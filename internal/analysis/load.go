package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every package of the Go module rooted at
// dir (the directory containing go.mod). Test files and testdata directories
// are skipped: the analyzers enforce invariants on shipped code.
//
// Type checking is deliberately lenient. Imports that resolve inside the
// module are checked from source in dependency order; imports from outside
// the module (the standard library — the module has no other dependencies)
// are stubbed with empty placeholder packages and every resulting type error
// is swallowed. The analyzers are written to degrade gracefully: where a
// type does not resolve they fall back to syntactic matching or stay silent,
// never report on guesswork.
func LoadModule(dir string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	pkgDirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path    string
		files   []*ast.File
		imports map[string]bool
	}
	raw := make(map[string]*rawPkg)
	for _, d := range pkgDirs {
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(d)
		if err != nil {
			return nil, err
		}
		rp := &rawPkg{path: importPath, imports: map[string]bool{}}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, "_") ||
				strings.HasPrefix(name, ".") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(d, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("alsraclint: parse %s: %w", filepath.Join(d, name), err)
			}
			rp.files = append(rp.files, f)
			for _, imp := range f.Imports {
				rp.imports[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
		if len(rp.files) > 0 {
			raw[importPath] = rp
		}
	}

	// Type-check in dependency order so module-internal imports are real
	// packages by the time their importers are checked.
	checked := make(map[string]*Package)
	imp := &moduleImporter{module: modPath, checked: checked, stubs: map[string]*types.Package{}}
	var order []string
	for path := range raw {
		order = append(order, path)
	}
	sort.Strings(order)
	var visit func(path string) error
	visiting := map[string]bool{}
	var pkgs []*Package
	visit = func(path string) error {
		if _, done := checked[path]; done {
			return nil
		}
		if visiting[path] {
			return fmt.Errorf("alsraclint: import cycle through %s", path)
		}
		visiting[path] = true
		rp := raw[path]
		for dep := range rp.imports {
			if raw[dep] != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		visiting[path] = false
		pkg := checkPackage(fset, path, rp.files, imp)
		checked[path] = pkg
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadFile parses and leniently type-checks a single source file as its own
// package under the given import path. It backs the fixture tests: the
// fixtures under testdata/ are real Go files analyzed exactly like module
// code, with the import path choosing which analyzers apply.
func LoadFile(filename, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{module: importPath, checked: map[string]*Package{},
		stubs: map[string]*types.Package{}}
	return checkPackage(fset, importPath, []*ast.File{f}, imp), nil
}

// checkPackage runs the lenient type check and assembles a Package. Checking
// never fails hard: on a panic or an error flood the package keeps whatever
// partial information was recorded.
func checkPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:                 imp,
		Error:                    func(error) {}, // collect nothing, continue always
		DisableUnusedImportCheck: true,
	}
	tpkg, _ := conf.Check(path, fset, files, info) // errors intentionally ignored
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{Path: path, Name: name, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
}

// moduleImporter resolves module-internal imports to their already-checked
// packages and stubs everything else with an empty placeholder, so the check
// can proceed without compiled export data for the standard library.
type moduleImporter struct {
	module  string
	checked map[string]*Package
	stubs   map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	if s, ok := m.stubs[path]; ok {
		return s, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	s := types.NewPackage(path, name)
	m.stubs[path] = s
	return s, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("alsraclint: %w (run from the module root or pass its path)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("alsraclint: no module directive in %s", gomod)
}

// packageDirs returns every directory under root that holds .go files,
// skipping VCS metadata, testdata trees and underscore/dot-prefixed paths.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}
