package analysis

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the bitwise-determinism contract of the
// simulation-bound packages: Run must pick the same LAC for every worker
// count (TestRunDeterministicAcrossWorkers pins this), which forbids every
// source of run-to-run variation:
//
//   - time.Now / time.Since — wall-clock reads feeding any decision;
//   - the unseeded top-level math/rand generators (rand.Intn, rand.Uint64,
//     ...) — only explicitly seeded rand.New(rand.NewSource(seed)) chains
//     are allowed, as in sim.Uniform;
//   - range over a map whose body produces an ordered result: appending to
//     a slice, sending on a channel, or writing through a slice/array index.
//     Map iteration order is randomized per run, so any of these bakes the
//     iteration order into an ordered output — the exact bug class that
//     would break determinism across worker counts.
//
// The daemon-side packages (internal/service, internal/obs, and the
// cluster coordinator/worker in internal/cluster) are held to the
// same rules: a resumed job must replay bitwise-identically, so the job
// engine may not read the wall clock directly (the Manager's clock is
// injected via Config.Now) and may not derive ordered output from map
// iteration (the job table and metric registry keep insertion-ordered
// slices beside their lookup maps).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, unseeded randomness and order-dependent map iteration in the deterministic core",
	AppliesTo: pathIn(
		"internal/core", "internal/resub", "internal/errest",
		"internal/sim", "internal/aig", "internal/wordops",
		"internal/service", "internal/obs", "internal/faultfs",
		"internal/exact", "internal/exact/sat", "internal/cluster",
	),
	Run: runDeterminism,
}

// seededRandConstructors are the math/rand names that build explicitly
// seeded generators; every other selector on the package is the shared,
// unseeded top-level source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 spellings
}

func runDeterminism(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				x, name, ok := selectorCall(n)
				if !ok {
					return true
				}
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				switch p.Pkg.pkgNameOf(file, id) {
				case "time":
					if name == "Now" || name == "Since" {
						p.Reportf(n.Pos(), "time.%s in deterministic package %s: results must not depend on wall-clock time", name, p.Pkg.Name)
					}
				case "math/rand", "math/rand/v2":
					if !seededRandConstructors[name] {
						p.Reportf(n.Pos(), "unseeded math/rand.%s: use rand.New(rand.NewSource(seed)) so runs are reproducible", name)
					}
				}
			case *ast.RangeStmt:
				if p.isMapRange(n) {
					checkMapRangeBody(p, n)
				}
			}
			return true
		})
	}
}

// isMapRange reports whether the statement ranges over a map. Without type
// information it stays silent (never guesses).
func (p *Pass) isMapRange(r *ast.RangeStmt) bool {
	t := p.Pkg.typeOf(r.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody flags statements inside a range-over-map body that turn
// the randomized iteration order into an ordered result. Writes keyed by the
// map key itself (m2[k] = v, set insertion) are order-independent and pass.
func checkMapRangeBody(p *Pass, r *ast.RangeStmt) {
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside range over map: receiver observes randomized map order")
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && p.isBuiltin(id) {
				p.Reportf(n.Pos(), "append inside range over map: slice order depends on randomized map order")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				t := p.Pkg.typeOf(ix.X)
				if t == nil {
					continue
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
					p.Reportf(n.Pos(), "indexed slice write inside range over map: element order depends on randomized map order")
				}
			}
		}
		return true
	})
}

// isBuiltin reports whether the identifier resolves to a universe builtin
// (or is unresolvable, in which case the spelling is trusted: no user code
// in this repository shadows append/make/new).
func (p *Pass) isBuiltin(id *ast.Ident) bool {
	if p.Pkg.TypesInfo == nil {
		return true
	}
	obj, ok := p.Pkg.TypesInfo.Uses[id]
	if !ok {
		return true
	}
	_, isb := obj.(*types.Builtin)
	return isb
}
