// Package analysis implements alsraclint, the repository's custom static
// analyzer suite. It is built purely on the standard library's go/parser,
// go/ast and go/types (no golang.org/x/tools dependency) and enforces the
// invariants the compiler cannot see but the flow's correctness rests on:
//
//   - determinism: the greedy loop of Algorithm 3 must pick the same LAC
//     for every worker count, so the simulation-bound packages may not read
//     wall-clock time, draw from unseeded global randomness, or produce
//     ordered results from map iteration;
//   - hotpath: functions annotated //alsrac:hotpath (the care-set and
//     error-evaluation kernels) must stay allocation-free in steady state;
//   - concurrency: every goroutine must be joined in the function that
//     spawns it, and goroutine bodies may not write shared captured state
//     outside the sanctioned disjoint-index / mutex / channel patterns;
//   - tailmask: exported errest entry points taking raw pattern words must
//     also take the valid-pattern count, so tail bits beyond Patterns.Valid
//     can never leak into a metric.
//
// On top of the per-function rules, a module-scope dataflow engine
// (module.go) builds one call graph with per-function summaries and runs
// fixed-point propagation, feeding four interprocedural rules:
//
//   - allocflow: hotpath kernels must be allocation-free over their whole
//     static call closure, with //alsrac:alloc-ok waivers propagating;
//   - leaks: every goroutine joined on every path, across function
//     boundaries (join obligations escape through parameters);
//   - ctxflow: a function receiving a context.Context must pass it to every
//     blocking callee and never sever the chain with context.Background;
//   - errwrap: faultfs-born errors stay errno-classifiable — %w wrapping
//     (never %v) and no bare store errors at exported boundaries.
//
// Each analyzer reports diagnostics of the form "file:line:col: [rule]
// message" and is exercised by positive and negative fixtures under
// testdata/ (including the testdata/interproc mini-module, which exercises
// cross-package propagation with fully resolved types).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical "file:line:col: [rule]
// message" form — the file:line:col prefix is what editors and GitHub's
// annotation matcher both parse (tests match on line granularity).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one parsed and (leniently) type-checked package of the module.
// TypesInfo may hold partial information: imports outside the module are
// stubbed, so analyzers must degrade gracefully when a type or object does
// not resolve.
type Package struct {
	Path  string // import path, e.g. "repro/internal/errest"
	Name  string
	Fset  *token.FileSet
	Files []*ast.File

	Types     *types.Package
	TypesInfo *types.Info
}

// Pass carries one analyzer run over one package and collects diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos under the pass's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule set. Exactly one of Run (per-package AST rule)
// and RunModule (interprocedural rule over the shared dataflow engine) is
// set. Module rules receive the one Module that RunAnalyzers builds — the
// call graph and every per-function summary are computed once and shared, so
// adding rules does not add load or type-check passes.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo filters where findings may land by import path; nil means
	// every package. Module rules still see the whole module (summaries
	// propagate through unfiltered packages) but only report inside the
	// filter.
	AppliesTo func(pkgPath string) bool
	Run       func(p *Pass)
	RunModule func(mp *ModulePass)
}

// ModulePass carries one module-scope analyzer run and collects diagnostics.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos, positioned via the package that owns
// the node. AppliesTo filtering is the caller's responsibility (use
// ModulePass.applies on the landing package).
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    mp.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// applies reports whether findings may land in the given package.
func (mp *ModulePass) applies(pkg *Package) bool {
	return mp.Analyzer.AppliesTo == nil || mp.Analyzer.AppliesTo(pkg.Path)
}

// Analyzers returns the full alsraclint suite in reporting order: the four
// per-function rules of PR 3, then the four interprocedural rules.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		HotpathAnalyzer,
		ConcurrencyAnalyzer,
		TailmaskAnalyzer,
		AllocflowAnalyzer,
		LeaksAnalyzer,
		CtxflowAnalyzer,
		ErrwrapAnalyzer,
	}
}

// AnalyzerByName resolves a rule name, for cmd/alsraclint's -rule flag.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies every analyzer to every package it applies to and
// returns the diagnostics sorted by file, line and rule. The packages are
// parsed and type-checked exactly once (by LoadModule) and the dataflow
// Module is built exactly once here, regardless of how many rules run — the
// engine is shared, not rebuilt per rule.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var mod *Module
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if mod == nil {
			mod = BuildModule(pkgs)
		}
		a.RunModule(&ModulePass{Analyzer: a, Module: mod, diags: &diags})
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags
}

// pathIn returns an AppliesTo predicate matching the given import-path
// suffixes (each of the form "internal/errest"). Fixture packages are loaded
// under their real paths, so the same predicate governs tests and the tool.
func pathIn(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

// --- annotations -----------------------------------------------------------

const (
	hotpathMarker = "//alsrac:hotpath"
	allocOKMarker = "//alsrac:alloc-ok"
)

// isHotpath reports whether the function declaration carries the
// //alsrac:hotpath annotation in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

// allocOK maps source lines to the audited //alsrac:alloc-ok escape hatch:
// the value is the stated reason ("" when the marker is present but gives
// none — itself a diagnostic). A marker suppresses hotpath findings on its
// own line and on the line directly below (comment-above style).
type allocOK map[int]string

// collectAllocOK gathers the alloc-ok markers of a file.
func collectAllocOK(fset *token.FileSet, file *ast.File) allocOK {
	ok := allocOK{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, allocOKMarker) {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(text, allocOKMarker))
			ok[fset.Position(c.Pos()).Line] = reason
		}
	}
	return ok
}

// suppressed reports whether a finding at pos is covered by an alloc-ok
// marker, and whether that marker states a reason.
func (a allocOK) suppressed(fset *token.FileSet, pos token.Pos) (found bool, reason string) {
	line := fset.Position(pos).Line
	if r, ok := a[line]; ok {
		return true, r
	}
	if r, ok := a[line-1]; ok {
		return true, r
	}
	return false, ""
}

// --- shared type helpers ---------------------------------------------------

// typeOf returns the type of e, or nil when type information is unavailable
// (stubbed import or type error in degraded checking).
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	t := p.TypesInfo.TypeOf(e)
	if t == nil || isInvalid(t) {
		return nil
	}
	return t
}

func isInvalid(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Invalid
}

// pkgNameOf resolves an identifier used as a qualifier to the import path of
// the package it names, or "" when it is not a package name. It prefers type
// information and falls back to matching the file's import table (so the
// analyzers stay useful even where checking degraded).
func (p *Package) pkgNameOf(file *ast.File, id *ast.Ident) string {
	if p.TypesInfo != nil {
		if obj, ok := p.TypesInfo.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return "" // resolved to something that is not a package
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// selectorCall matches a call of the form qualifier.Fn(...) and returns the
// qualifier expression and the selected name.
func selectorCall(call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}
