package analysis

import (
	"go/ast"
	"strings"
)

// TailmaskAnalyzer enforces the PR 2 tail-masking contract at API
// boundaries: the last simulation word of a run with Valid patterns carries
// arbitrary bits beyond the valid count, so any exported package-level
// errest function that accepts raw pattern words ([]uint64 or [][]uint64)
// must also accept the valid-pattern count — otherwise it cannot mask the
// tail and garbage bits leak into ER/NMED/MRED.
//
// Methods are exempt by design: an Evaluator or Batch is constructed with
// the valid count (NewEvaluatorFromWords takes and stores it), and its
// methods inherit the stored tail mask. The analyzer guards the points
// where words first cross into the package.
var TailmaskAnalyzer = &Analyzer{
	Name:      "tailmask",
	Doc:       "exported errest entry points taking pattern words must take a valid-pattern count",
	AppliesTo: pathIn("internal/errest"),
	Run:       runTailmask,
}

func runTailmask(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			if !takesPatternWords(fd.Type) {
				continue
			}
			if !hasValidParam(fd.Type) {
				p.Reportf(fd.Pos(), "exported %s takes []uint64 pattern words but no valid-pattern count: tail bits beyond Patterns.Valid cannot be masked", fd.Name.Name)
			}
		}
	}
}

// takesPatternWords reports whether any parameter type contains a []uint64
// (including [][]uint64 and deeper nestings).
func takesPatternWords(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if containsWordSlice(field.Type) {
			return true
		}
	}
	return false
}

func containsWordSlice(e ast.Expr) bool {
	at, ok := e.(*ast.ArrayType)
	if !ok || at.Len != nil {
		return false
	}
	if id, ok := at.Elt.(*ast.Ident); ok && id.Name == "uint64" {
		return true
	}
	return containsWordSlice(at.Elt)
}

// hasValidParam reports whether some parameter is an int whose name signals
// a valid-pattern count ("valid", "nPat", "nValid", ...).
func hasValidParam(ft *ast.FuncType) bool {
	for _, field := range ft.Params.List {
		id, ok := field.Type.(*ast.Ident)
		if !ok || id.Name != "int" {
			continue
		}
		for _, name := range field.Names {
			lower := strings.ToLower(name.Name)
			if strings.Contains(lower, "valid") || strings.Contains(lower, "npat") {
				return true
			}
		}
	}
	return false
}
