package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureCases pairs every fixture file with the analyzer it exercises and
// the import path that makes that analyzer apply.
var fixtureCases = []struct {
	file     string
	path     string
	analyzer *Analyzer
}{
	{"determinism_bad.go", "repro/internal/sim", DeterminismAnalyzer},
	{"determinism_ok.go", "repro/internal/sim", DeterminismAnalyzer},
	{"hotpath_bad.go", "repro/internal/wordops", HotpathAnalyzer},
	{"hotpath_ok.go", "repro/internal/wordops", HotpathAnalyzer},
	{"recycle_bad.go", "repro/internal/aig", HotpathAnalyzer},
	{"concurrency_bad.go", "repro/internal/core", ConcurrencyAnalyzer},
	{"concurrency_ok.go", "repro/internal/core", ConcurrencyAnalyzer},
	{"tailmask_bad.go", "repro/internal/errest", TailmaskAnalyzer},
	{"tailmask_ok.go", "repro/internal/errest", TailmaskAnalyzer},
	{"allocflow_bad.go", "repro/internal/wordops", AllocflowAnalyzer},
	{"allocflow_ok.go", "repro/internal/wordops", AllocflowAnalyzer},
	{"leaks_bad.go", "repro/internal/core", LeaksAnalyzer},
	{"leaks_ok.go", "repro/internal/core", LeaksAnalyzer},
	{"ctxflow_bad.go", "repro/internal/service", CtxflowAnalyzer},
	{"ctxflow_ok.go", "repro/internal/service", CtxflowAnalyzer},
	{"errwrap_bad.go", "repro/internal/service", ErrwrapAnalyzer},
	{"errwrap_ok.go", "repro/internal/service", ErrwrapAnalyzer},
}

// wantMarkers extracts the `//want:<rule>` expectations of a fixture file as
// "line:rule" strings (one per marker occurrence).
func wantMarkers(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var want []string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		for rest := text; ; {
			i := strings.Index(rest, "//want:")
			if i < 0 {
				break
			}
			rest = rest[i+len("//want:"):]
			rule := rest
			if j := strings.IndexAny(rule, " \t/"); j >= 0 {
				rule = rule[:j]
			}
			want = append(want, fmt.Sprintf("%d:%s", line, rule))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	return want
}

// TestFixtures runs each analyzer over its positive and negative fixtures
// and requires the diagnostics to match the //want markers exactly.
func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.file, func(t *testing.T) {
			file := filepath.Join("testdata", tc.file)
			pkg, err := LoadFile(file, tc.path)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			if tc.analyzer.AppliesTo != nil && !tc.analyzer.AppliesTo(tc.path) {
				t.Fatalf("analyzer %s does not apply to %s; fixture is wired wrong", tc.analyzer.Name, tc.path)
			}
			diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{tc.analyzer})
			var got []string
			for _, d := range diags {
				got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
			}
			sort.Strings(got)
			want := wantMarkers(t, file)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("diagnostics mismatch\n got: %v\nwant: %v\nfull diagnostics:\n%s",
					got, want, renderDiags(diags))
			}
		})
	}
}

func renderDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	if sb.Len() == 0 {
		return "  (none)\n"
	}
	return sb.String()
}

// TestAnalyzersApplyToScopedPackages pins the scoping predicates: the
// determinism rules cover the six deterministic-core packages plus the
// daemon-side service and obs packages, and tailmask covers errest only.
func TestAnalyzersApplyToScopedPackages(t *testing.T) {
	for _, path := range []string{
		"repro/internal/core", "repro/internal/resub", "repro/internal/errest",
		"repro/internal/sim", "repro/internal/aig", "repro/internal/wordops",
		"repro/internal/service", "repro/internal/obs", "repro/internal/faultfs",
		"repro/internal/exact", "repro/internal/exact/sat",
	} {
		if !DeterminismAnalyzer.AppliesTo(path) {
			t.Errorf("determinism must apply to %s", path)
		}
	}
	for _, path := range []string{"repro/internal/tt", "repro/cmd/alsrac", "repro"} {
		if DeterminismAnalyzer.AppliesTo(path) {
			t.Errorf("determinism must not apply to %s", path)
		}
	}
	if !TailmaskAnalyzer.AppliesTo("repro/internal/errest") {
		t.Error("tailmask must apply to errest")
	}
	if TailmaskAnalyzer.AppliesTo("repro/internal/sim") {
		t.Error("tailmask must not apply to sim")
	}
}

// The repository module is parsed and type-checked exactly once for the
// whole test binary — every module-scope test and benchmark shares this load,
// mirroring the load-once architecture of the tool itself.
var (
	repoOnce sync.Once
	repoPkgs []*Package
	repoErr  error
)

func loadRepoModule(tb testing.TB) []*Package {
	repoOnce.Do(func() {
		repoPkgs, repoErr = LoadModule(filepath.Join("..", ".."))
	})
	if repoErr != nil {
		tb.Fatalf("load module: %v", repoErr)
	}
	return repoPkgs
}

// TestModuleIsClean loads the real module and requires the full suite to
// pass with zero findings — the same gate scripts/verify.sh and CI enforce.
// It also counts the //alsrac:hotpath annotations so a refactor that
// silently drops the markers (and with them the enforcement) fails loudly.
func TestModuleIsClean(t *testing.T) {
	pkgs := loadRepoModule(t)
	if len(pkgs) < 10 {
		t.Fatalf("loader found only %d packages; the walk is broken", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	if len(diags) > 0 {
		t.Errorf("module must lint clean, got %d finding(s):\n%s", len(diags), renderDiags(diags))
	}

	hot := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && isHotpath(fd) {
					hot++
				}
			}
		}
	}
	if hot < 10 {
		t.Errorf("expected at least 10 //alsrac:hotpath annotations in the module, found %d", hot)
	}
}

// TestLoadModuleSkipsTestsAndTestdata guards the loader's file selection:
// fixture packages must never leak into a module load.
func TestLoadModuleSkipsTestsAndTestdata(t *testing.T) {
	pkgs := loadRepoModule(t)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := pkg.Fset.Position(file.Pos()).Filename
			if strings.Contains(name, "testdata") || strings.HasSuffix(name, "_test.go") {
				t.Errorf("loader picked up %s", name)
			}
		}
	}
}
