package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer enforces the steady-state zero-allocation contract of
// functions annotated //alsrac:hotpath — the word-level kernels whose
// per-call allocation counts PR 1 and PR 2 drove to zero (CoverScan, the
// bounded evaluators, the simulate inner loops, the genState cone scan).
// Inside an annotated function it forbids:
//
//   - make and new;
//   - map and slice composite literals, and &T{...} (escaping composite);
//   - func literals (closures capture and routinely escape via call args);
//   - append whose result does not feed back into its own first argument —
//     self-append (s.buf = append(s.buf, x)) into persistent scratch is the
//     sanctioned amortized pattern, anything else mints fresh backing;
//   - go and defer statements (both allocate);
//   - string concatenation (allocates the result).
//
// The audited escape hatch is a //alsrac:alloc-ok <reason> comment on the
// offending line or the line above; a marker without a reason is itself a
// finding, so every exception states why it is safe.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation in //alsrac:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	for _, file := range p.Pkg.Files {
		marks := collectAllocOK(p.Pkg.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotpathBody(p, fd, marks)
		}
	}
}

func checkHotpathBody(p *Pass, fd *ast.FuncDecl, marks allocOK) {
	reportf := func(n ast.Node, format string, args ...any) {
		if found, reason := marks.suppressed(p.Pkg.Fset, n.Pos()); found {
			if reason == "" {
				p.Reportf(n.Pos(), "alloc-ok marker without a reason: state why this allocation is acceptable")
			}
			return
		}
		p.Reportf(n.Pos(), format, args...)
	}

	// Self-appends are recognized from their enclosing assignment, which the
	// walk visits before the nested call expression.
	selfAppend := map[*ast.CallExpr]bool{}

	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isAppendCall(p, call) &&
					appendTargetMatches(n.Lhs[0], call.Args[0]) {
					selfAppend[call] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && p.isBuiltin(id) {
				switch id.Name {
				case "make":
					reportf(n, "make in hotpath %s: draw from a pool or reuse caller scratch", name)
				case "new":
					reportf(n, "new in hotpath %s: allocate outside the kernel", name)
				case "append":
					if !selfAppend[n] {
						reportf(n, "append into a fresh slice in hotpath %s: only self-append into persistent scratch is allocation-amortized", name)
					}
				}
			}
		case *ast.CompositeLit:
			switch p.compositeKind(n) {
			case "map":
				reportf(n, "map literal in hotpath %s allocates", name)
			case "slice":
				reportf(n, "slice literal in hotpath %s allocates", name)
			}
			return false // literals nest; one finding per outermost literal
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					reportf(n, "&composite literal in hotpath %s escapes to the heap", name)
					return false
				}
			}
		case *ast.FuncLit:
			reportf(n, "closure in hotpath %s: captures escape; hoist the function or pass state explicitly", name)
			return false
		case *ast.GoStmt:
			reportf(n, "go statement in hotpath %s allocates a goroutine", name)
		case *ast.DeferStmt:
			reportf(n, "defer in hotpath %s: deferred calls cost on every invocation", name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.Pkg.typeOf(n.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						reportf(n, "string concatenation in hotpath %s allocates", name)
					}
				}
			}
		}
		return true
	})
}

// isAppendCall reports whether the call is the append builtin with at least
// one argument.
func isAppendCall(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append" && p.isBuiltin(id) && len(call.Args) > 0
}

// appendTargetMatches reports whether the assignment target and append's
// first argument name the same slice, treating x = append(x[:0], ...) as a
// match too (reslicing the same backing).
func appendTargetMatches(lhs, arg0 ast.Expr) bool {
	if sl, ok := arg0.(*ast.SliceExpr); ok {
		arg0 = sl.X
	}
	return types.ExprString(lhs) == types.ExprString(arg0)
}

// compositeKind classifies a composite literal as "map", "slice" or "other",
// preferring type information and falling back to the syntactic type.
func (p *Pass) compositeKind(cl *ast.CompositeLit) string {
	if t := p.Pkg.typeOf(cl); t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			return "map"
		case *types.Slice:
			return "slice"
		}
		return "other"
	}
	switch tt := cl.Type.(type) {
	case *ast.MapType:
		return "map"
	case *ast.ArrayType:
		if tt.Len == nil {
			return "slice"
		}
	}
	return "other"
}
