package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConcurrencyAnalyzer enforces the worker-pool discipline of the parallel
// hot path (DESIGN.md §8): goroutines are always scoped to the function that
// spawns them and communicate through disjoint writes or synchronization,
// never through bare shared mutation.
//
//  1. Every `go` statement must be paired with a WaitGroup/errgroup-style
//     join — a call to some receiver's Wait method — in the same function.
//     A fire-and-forget goroutine has no defined completion point, so its
//     effects land nondeterministically relative to the reduction that
//     follows the pool.
//
//  2. A goroutine body may not assign to variables captured from the
//     enclosing function or to package-level variables. The sanctioned ways
//     for workers to publish results remain open: writes through an index
//     expression (the disjoint-shard pattern, results[c] = ...), channel
//     sends, method calls (sync/atomic, mutex-guarded state), and any write
//     made after a .Lock() call in the same goroutine body.
var ConcurrencyAnalyzer = &Analyzer{
	Name: "concurrency",
	Doc:  "require joined goroutines and forbid unsynchronized captured-state writes in worker bodies",
	Run:  runConcurrency,
}

func runConcurrency(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutines(p, fd)
		}
	}
}

func checkGoroutines(p *Pass, fd *ast.FuncDecl) {
	var goStmts []*ast.GoStmt
	hasJoin := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goStmts = append(goStmts, n)
		case *ast.CallExpr:
			if _, name, ok := selectorCall(n); ok && name == "Wait" {
				hasJoin = true
			}
		}
		return true
	})
	if len(goStmts) == 0 {
		return
	}
	if !hasJoin {
		for _, g := range goStmts {
			p.Reportf(g.Pos(), "go statement in %s without a WaitGroup/errgroup-style join (.Wait()) in the same function", fd.Name.Name)
		}
	}
	for _, g := range goStmts {
		if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
			checkWorkerBody(p, fd, fl)
		}
	}
}

// checkWorkerBody flags assignments inside a goroutine body whose target is
// captured from the enclosing function or package scope and is not written
// through one of the sanctioned channels (index write, method call, send,
// post-Lock write).
func checkWorkerBody(p *Pass, fd *ast.FuncDecl, fl *ast.FuncLit) {
	// Track the position of the first .Lock() call; writes after it are
	// treated as mutex-guarded. This is deliberately coarse — the analyzer
	// is a tripwire for the "captured accumulator" bug class, not a proof.
	lockPos := token.Pos(-1)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name, ok := selectorCall(call); ok && name == "Lock" {
				if lockPos == token.Pos(-1) || call.Pos() < lockPos {
					lockPos = call.Pos()
				}
			}
		}
		return true
	})

	flagged := func(lhs ast.Expr, pos token.Pos) {
		base := baseIdent(lhs)
		if base == nil || base.Name == "_" {
			return
		}
		if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
			return // disjoint-shard pattern: results[c] = ...
		}
		if lockPos != token.Pos(-1) && pos > lockPos {
			return // mutex-guarded region
		}
		if !p.capturedByGoroutine(base, fl) {
			return
		}
		p.Reportf(pos, "goroutine in %s writes captured variable %q outside a mutex or channel: workers must publish through disjoint indices, channels or synchronized state", fd.Name.Name, base.Name)
	}

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != fl {
				return false // nested literals are analyzed when they are themselves go'ed
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flagged(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			flagged(n.X, n.Pos())
		}
		return true
	})
}

// baseIdent returns the root identifier of an assignable expression
// (x, x.f, x.f.g, *x ...), or nil when there is none.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr: // &x: the address of a variable is still that variable
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// capturedByGoroutine reports whether the identifier resolves to a variable
// declared outside the goroutine's func literal (captured) or at package
// level. Unresolvable identifiers are skipped — the analyzer never reports
// on guesswork.
func (p *Pass) capturedByGoroutine(id *ast.Ident, fl *ast.FuncLit) bool {
	if p.Pkg.TypesInfo == nil {
		return false
	}
	obj, ok := p.Pkg.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Declared inside the literal (params included) ⇒ goroutine-local.
	return v.Pos() < fl.Pos() || v.Pos() > fl.End()
}
