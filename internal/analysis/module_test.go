package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadEngineFixture builds the dataflow module over the call-graph fixture.
func loadEngineFixture(t *testing.T) *Module {
	t.Helper()
	pkg, err := LoadFile(filepath.Join("testdata", "engine_graph.go"), "repro/internal/core")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return BuildModule([]*Package{pkg})
}

// TestCallGraphEdges pins call-graph construction over every edge flavor:
// direct calls, method calls, method values and function values (reference
// edges), calls inside function literals (attributed to the enclosing
// declaration), calls under go statements, and dynamic calls through
// function-typed values (no edge at all).
func TestCallGraphEdges(t *testing.T) {
	m := loadEngineFixture(t)
	caller := m.FuncByName("internal/core", "caller")
	if caller == nil {
		t.Fatal("caller not found in module")
	}

	var got []string
	for _, cs := range caller.Calls {
		got = append(got, fmt.Sprintf("%s ref=%v lit=%v go=%v",
			cs.Callee.Decl.Name.Name, cs.IsRef, cs.InFuncLit, cs.InGo))
	}
	sort.Strings(got)
	want := []string{
		"leafA ref=false lit=false go=false",
		"leafB ref=true lit=false go=false",   // f := leafB
		"leafC ref=false lit=true go=false",   // inside the run(...) literal
		"leafD ref=false lit=false go=true",   // go leafD()
		"method ref=false lit=false go=false", // w.method()
		"method ref=true lit=false go=false",  // m := w.method
		"run ref=false lit=false go=false",
	}
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("caller edges mismatch\n got: %v\nwant: %v", got, want)
	}

	// run's body calls only through its function-typed parameter: dynamic,
	// so the engine must stay silent rather than guess.
	run := m.FuncByName("internal/core", "run")
	if run == nil {
		t.Fatal("run not found in module")
	}
	if len(run.Calls) != 0 {
		t.Errorf("run must have no resolved edges (dynamic call), got %d", len(run.Calls))
	}
}

// TestFixedPointPropagation seeds the worklist at one leaf and requires the
// property to climb exactly the resolved edges: caller reaches leafC through
// its literal, but run does not (its only call is dynamic).
func TestFixedPointPropagation(t *testing.T) {
	m := loadEngineFixture(t)
	leafC := m.FuncByName("internal/core", "leafC")
	has := m.fixedPoint(
		func(f *FuncInfo) bool { return f == leafC },
		func(cs *CallSite) bool { return true },
	)
	caller := m.FuncByName("internal/core", "caller")
	run := m.FuncByName("internal/core", "run")
	if !has[caller] {
		t.Error("property must propagate from leafC to caller via the literal edge")
	}
	if has[run] {
		t.Error("property must not reach run: its only call is dynamic and forms no edge")
	}
	if !has[leafC] {
		t.Error("seed itself must be in the fixed point")
	}
}

// TestAllocflowCatchesWhatHotpathMisses is the acceptance pin for the PR:
// every kernel in allocflow_bad.go is allocation-free in its own body, so
// the per-function hotpath rule reports nothing, while allocflow traces the
// transitive allocations and reports each offending call.
func TestAllocflowCatchesWhatHotpathMisses(t *testing.T) {
	pkg, err := LoadFile(filepath.Join("testdata", "allocflow_bad.go"), "repro/internal/wordops")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	hot := RunAnalyzers([]*Package{pkg}, []*Analyzer{HotpathAnalyzer})
	if len(hot) != 0 {
		t.Errorf("hotpath must miss the transitive allocations entirely, got:\n%s", renderDiags(hot))
	}
	flow := RunAnalyzers([]*Package{pkg}, []*Analyzer{AllocflowAnalyzer})
	if len(flow) != 3 {
		t.Errorf("allocflow must catch the three transitive allocations, got %d:\n%s",
			len(flow), renderDiags(flow))
	}
	for _, d := range flow {
		if !strings.Contains(d.Message, "->") && !strings.Contains(d.Message, "alloc at") {
			t.Errorf("allocflow diagnostic must print the call chain, got: %s", d.Message)
		}
	}
}

// TestErrwrapInterproc loads the testdata/interproc mini-module — its own
// go.mod, a fake internal/faultfs, and a service package with fully resolved
// cross-package types — and requires the bare-return findings to match the
// //want markers exactly.
func TestErrwrapInterproc(t *testing.T) {
	pkgs, err := LoadModule(filepath.Join("testdata", "interproc"))
	if err != nil {
		t.Fatalf("load mini-module: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("mini-module must load 2 packages, got %d", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, []*Analyzer{ErrwrapAnalyzer})
	var got []string
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		if base != "store.go" {
			t.Errorf("unexpected finding outside store.go: %s", d)
			continue
		}
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	sort.Strings(got)
	want := wantMarkers(t, filepath.Join("testdata", "interproc", "internal", "service", "store.go"))
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("interproc diagnostics mismatch\n got: %v\nwant: %v\nfull diagnostics:\n%s",
			got, want, renderDiags(diags))
	}
}

// --- benchmarks -------------------------------------------------------------
//
// The load-once architecture means the expensive part (parse + lenient type
// check) happens exactly once per lint run; building the dataflow module and
// running all eight rules ride on top. The three benchmarks separate those
// costs so a regression in any layer is visible in isolation.

func BenchmarkLoadModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := LoadModule(filepath.Join("..", "..")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildModule(b *testing.B) {
	pkgs := loadRepoModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildModule(pkgs)
	}
}

func BenchmarkRunAnalyzers(b *testing.B) {
	pkgs := loadRepoModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := RunAnalyzers(pkgs, Analyzers()); len(d) != 0 {
			b.Fatalf("module must lint clean, got %d finding(s)", len(d))
		}
	}
}
