package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural dataflow engine underneath the module-scope
// rules (allocflow, leaks, ctxflow, errwrap). The per-function AST walks of
// PR 3 see one body at a time, so a kernel calling an allocating helper, a
// goroutine joined in the caller, or a context dropped two frames above a
// blocking store op were all invisible. The engine closes that gap in three
// layers, each built exactly once per lint run and shared by every rule:
//
//  1. A module-wide call graph: every *ast.FuncDecl becomes a FuncInfo, and
//     every statically resolvable call — plain calls, method calls through
//     go/types selections, method values (f := x.M; f()), and calls written
//     inside function literals (attributed to the enclosing declaration) —
//     becomes a CallSite edge. Dynamic calls through function-typed values
//     do not resolve and are deliberately skipped: the engine degrades to
//     silence, never guesses (the PR 3 convention).
//
//  2. Per-function summaries computed during the same walk: syntactic
//     allocation sites (the hotpath rule's catalogue, minus //alsrac:alloc-ok
//     waived lines, which is how waivers propagate — a waived site never
//     enters a summary, so it is invisible to every transitive proof),
//     blocking seeds (channel operations, default-less selects, time.Sleep),
//     context parameters, goroutine spawns with their join objects, and
//     store-error returns.
//
//  3. Fixed-point propagation over the graph (Module.fixedPoint): a
//     generic worklist that grows a predicate along reverse call edges until
//     nothing changes. Recursion and mutual recursion converge because the
//     predicate is monotone.
type Module struct {
	Pkgs []*Package

	// Funcs lists every function declaration of the module in a
	// deterministic order (package path, then source position) — module
	// rules iterate this slice, never a map, so diagnostics are stable.
	Funcs []*FuncInfo

	// byObj resolves a types.Func object to its declaration's FuncInfo.
	byObj map[*types.Func]*FuncInfo
}

// FuncInfo is one function declaration plus the summaries the module rules
// consume.
type FuncInfo struct {
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	Obj  *types.Func // nil when type checking degraded for this decl

	Hotpath bool // carries //alsrac:hotpath

	// Calls are the statically resolved outgoing edges, in source order.
	Calls []*CallSite

	// Allocs are the unwaived syntactic allocation sites of the body.
	// Waived sites (//alsrac:alloc-ok on the line or the line above) are
	// excluded here — that exclusion is what makes waivers propagate
	// through allocflow's transitive proof.
	Allocs []Site

	// Blocks are the blocking seeds of the body: channel sends/receives
	// outside a default-guarded select, default-less selects with no
	// ctx.Done case, range over a channel, time.Sleep. Seeds inside
	// nested function literals are not attributed here (the literal may
	// run on another goroutine or never).
	Blocks []Site

	// CtxParams are the context.Context parameter objects (usually one).
	// Detection is syntactic-first (a parameter typed context.Context
	// where the qualifier names the "context" import), so it survives the
	// stubbed-stdlib fixture loads.
	CtxParams []*types.Var

	// Spawns are the go statements of the body with their inferred join
	// objects.
	Spawns []*SpawnSite

	// Joins are the join points of the body: X.Wait() calls, <-ch
	// receives and range-over-channel statements, keyed by the base
	// object when it resolves.
	Joins []JoinSite

	// Classifies reports whether the body consults the error chain —
	// errors.Is / errors.As / a *transient* classifier call — which
	// satisfies the errwrap obligation.
	Classifies bool

	// StoreErrReturns are `return err` sites whose value came unwrapped
	// from a faultfs operation or (after propagation) from a callee that
	// itself leaks store errors bare.
	StoreErrReturns []Site
}

// Site is one position plus a human-readable description, used for
// allocation sites, blocking seeds and bare-return sites.
type Site struct {
	Pos  token.Pos
	Desc string
}

// CallSite is one resolved call (or function/method value reference) edge.
type CallSite struct {
	Caller *FuncInfo
	Callee *FuncInfo // always non-nil (module-internal target)
	Pos    token.Pos
	// Waived: an //alsrac:alloc-ok marker covers the call line, so
	// allocflow must not propagate allocations through this edge.
	Waived bool
	// IsRef: the function was referenced as a value (method value,
	// function assigned to a variable) rather than called directly. The
	// engine treats references as may-call edges — conservative for
	// allocation proofs.
	IsRef bool
	// InFuncLit: the call is written inside a function literal nested in
	// the caller. Blocking does not propagate through such edges (the
	// literal may run elsewhere); allocation does (the literal usually
	// runs on behalf of the caller).
	InFuncLit bool
	// InGo: the call is the operand of a go statement (or written inside
	// one's literal); it runs on another goroutine, so it never blocks
	// the caller.
	InGo bool
	// ArgObjs are the base objects of the call's arguments (nil entries
	// for arguments that are not simple variable chains), used to thread
	// join obligations through parameters.
	ArgObjs []types.Object
}

// SpawnSite is one `go` statement and the join object the engine inferred
// for it: the receiver of a Done() call inside the spawned literal, or the
// channel the literal sends on. A nil JoinObj means the spawn publishes its
// completion in no recognizable way.
type SpawnSite struct {
	Fn      *FuncInfo
	Pos     token.Pos
	JoinObj types.Object
	// ParamIndex is the index of JoinObj in the enclosing function's
	// parameter list, or -1: a parameter join object means the join
	// obligation escapes to every caller.
	ParamIndex int
}

// JoinSite is one join point (X.Wait(), <-ch, range ch).
type JoinSite struct {
	Pos token.Pos
	Obj types.Object // nil when the joined expression did not resolve
}

// BuildModule constructs the call graph and all per-function summaries in a
// single pass over the packages. It is the "load once, analyze many" half of
// the engine: RunAnalyzers builds one Module and every module-scope rule
// reads from it.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, byObj: map[*types.Func]*FuncInfo{}}

	// Pass 1: declare every function so edges can resolve forward refs.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := &FuncInfo{Pkg: pkg, File: file, Decl: fd, Hotpath: isHotpath(fd)}
				if pkg.TypesInfo != nil {
					if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						fi.Obj = obj
						m.byObj[obj] = fi
					}
				}
				m.Funcs = append(m.Funcs, fi)
			}
		}
	}
	sort.SliceStable(m.Funcs, func(i, j int) bool {
		a, b := m.Funcs[i], m.Funcs[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Pkg.Fset.Position(a.Decl.Pos()).Filename < b.Pkg.Fset.Position(b.Decl.Pos()).Filename ||
			(a.Pkg.Fset.Position(a.Decl.Pos()).Filename == b.Pkg.Fset.Position(b.Decl.Pos()).Filename &&
				a.Decl.Pos() < b.Decl.Pos())
	})

	// Pass 2: walk every body once, building edges and summaries together.
	for _, fi := range m.Funcs {
		m.summarize(fi)
	}
	return m
}

// FuncByName resolves "Name" or "(Recv).Name" within a package path suffix,
// for tests and chain rendering.
func (m *Module) FuncByName(pkgSuffix, name string) *FuncInfo {
	for _, fi := range m.Funcs {
		if !strings.HasSuffix(fi.Pkg.Path, pkgSuffix) {
			continue
		}
		if fi.Decl.Name.Name == name {
			return fi
		}
	}
	return nil
}

// DisplayName renders pkgname.Func or pkgname.(Recv).Method for diagnostics.
func (fi *FuncInfo) DisplayName() string {
	name := fi.Decl.Name.Name
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) > 0 {
		recv := types.ExprString(fi.Decl.Recv.List[0].Type)
		recv = strings.TrimPrefix(recv, "*")
		name = "(" + recv + ")." + name
	}
	if fi.Pkg.Name != "" {
		return fi.Pkg.Name + "." + name
	}
	return name
}

// HasCtxParam reports whether the function accepts a context.Context.
func (fi *FuncInfo) HasCtxParam() bool { return len(fi.CtxParams) > 0 }

// summarize walks one function body, resolving call edges and collecting
// every summary the module rules need.
func (m *Module) summarize(fi *FuncInfo) {
	p := fi.Pkg
	marks := collectAllocOK(p.Fset, fi.File)
	fi.CtxParams = ctxParams(p, fi.File, fi.Decl)

	// consumedFun marks expressions used as the Fun of a call, so the
	// reference walk below does not double-count them as method values.
	consumedFun := map[ast.Node]bool{}

	// litDepth tracks nesting inside function literals; goDepth tracks
	// nesting inside go-statement literals specifically (their bodies run
	// on another goroutine, so blocking seeds there do not block fi).
	var walk func(n ast.Node, litDepth, goDepth int)

	addCall := func(call *ast.CallExpr, litDepth, goDepth int) {
		var callee *types.Func
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			consumedFun[fun] = true
			if p.TypesInfo != nil {
				callee, _ = p.TypesInfo.Uses[fun].(*types.Func)
			}
		case *ast.SelectorExpr:
			consumedFun[fun] = true
			consumedFun[fun.Sel] = true
			if p.TypesInfo != nil {
				callee, _ = p.TypesInfo.Uses[fun.Sel].(*types.Func)
			}
		}
		if callee == nil {
			return
		}
		target, ok := m.byObj[callee]
		if !ok {
			// Interface method: resolve by name against module types is
			// out of scope; only declared functions form edges.
			return
		}
		waived, _ := marks.suppressed(p.Fset, call.Pos())
		cs := &CallSite{
			Caller: fi, Callee: target, Pos: call.Pos(),
			Waived: waived, InFuncLit: litDepth > 0, InGo: goDepth > 0,
		}
		for _, arg := range call.Args {
			cs.ArgObjs = append(cs.ArgObjs, baseObj(p, arg))
		}
		fi.Calls = append(fi.Calls, cs)
	}

	walk = func(n ast.Node, litDepth, goDepth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, litDepth+1, goDepth)
				return false
			case *ast.GoStmt:
				fi.Spawns = append(fi.Spawns, m.spawnSite(fi, n))
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, litDepth+1, goDepth+1)
				} else {
					addCall(n.Call, litDepth, goDepth+1)
					for _, arg := range n.Call.Args {
						walk(arg, litDepth, goDepth)
					}
				}
				return false
			case *ast.CallExpr:
				addCall(n, litDepth, goDepth)
				m.callSummaries(fi, n, litDepth, goDepth)
				return true
			case *ast.SelectStmt:
				m.selectSummary(fi, n, goDepth)
				// Descend into case bodies (they run on this goroutine)
				// but the comm clauses were already classified.
				for _, c := range n.Body.List {
					cc := c.(*ast.CommClause)
					for _, stmt := range cc.Body {
						walk(stmt, litDepth, goDepth)
					}
				}
				return false
			case *ast.SendStmt:
				if goDepth == 0 && litDepth == 0 {
					fi.Blocks = append(fi.Blocks, Site{n.Pos(), "channel send"})
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if goDepth == 0 && litDepth == 0 {
						fi.Blocks = append(fi.Blocks, Site{n.Pos(), "channel receive"})
					}
					if goDepth == 0 {
						fi.Joins = append(fi.Joins, JoinSite{n.Pos(), baseObj(p, n.X)})
					}
				}
			case *ast.RangeStmt:
				if t := p.typeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						if goDepth == 0 && litDepth == 0 {
							fi.Blocks = append(fi.Blocks, Site{n.Pos(), "range over channel"})
						}
						if goDepth == 0 {
							fi.Joins = append(fi.Joins, JoinSite{n.Pos(), baseObj(p, n.X)})
						}
					}
				}
			}
			return true
		})
	}
	walk(fi.Decl.Body, 0, 0)
	fi.Allocs = collectAllocs(p, fi.File, fi.Decl.Body, marks)

	// Function/method value references: any remaining use of a module
	// function object that was not the Fun of a call becomes a may-call
	// reference edge.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || consumedFun[id] || p.TypesInfo == nil {
			return true
		}
		obj, ok := p.TypesInfo.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if target, ok := m.byObj[obj]; ok {
			waived, _ := marks.suppressed(p.Fset, id.Pos())
			fi.Calls = append(fi.Calls, &CallSite{
				Caller: fi, Callee: target, Pos: id.Pos(),
				Waived: waived, IsRef: true,
			})
		}
		return true
	})
	sort.SliceStable(fi.Calls, func(i, j int) bool { return fi.Calls[i].Pos < fi.Calls[j].Pos })
}

// callSummaries records blocking/classification facts visible at one call.
func (m *Module) callSummaries(fi *FuncInfo, call *ast.CallExpr, litDepth, goDepth int) {
	p := fi.Pkg
	x, name, ok := selectorCall(call)
	if !ok {
		return
	}
	if id, ok := x.(*ast.Ident); ok {
		switch p.pkgNameOf(fi.File, id) {
		case "time":
			if name == "Sleep" && goDepth == 0 && litDepth == 0 {
				fi.Blocks = append(fi.Blocks, Site{call.Pos(), "time.Sleep"})
			}
		case "errors":
			if name == "Is" || name == "As" {
				fi.Classifies = true
			}
		}
	}
	if name == "Wait" && goDepth == 0 {
		fi.Joins = append(fi.Joins, JoinSite{call.Pos(), baseObj(p, x)})
	}
	if strings.Contains(strings.ToLower(name), "transient") {
		fi.Classifies = true
	}
}

// selectSummary classifies one select statement: a default case or a
// ctx.Done()-style case makes it non-blocking for ctxflow purposes.
func (m *Module) selectSummary(fi *FuncInfo, sel *ast.SelectStmt, goDepth int) {
	hasDefault, hasDoneCase := false, false
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if _, name, ok := selectorCall(call); ok && name == "Done" {
					hasDoneCase = true
				}
			}
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW && goDepth == 0 {
				fi.Joins = append(fi.Joins, JoinSite{u.Pos(), baseObj(fi.Pkg, u.X)})
			}
			return true
		})
	}
	if !hasDefault && !hasDoneCase && goDepth == 0 {
		fi.Blocks = append(fi.Blocks, Site{sel.Pos(), "select with no default and no ctx.Done case"})
	}
}

// spawnSite classifies one go statement: the join object is the receiver of
// a Done() call inside the spawned literal, else the channel the literal
// sends on. Direct `go f(wg)` spawns look for a *sync.WaitGroup-ish
// argument joined elsewhere; without type info they stay unclassified.
func (m *Module) spawnSite(fi *FuncInfo, g *ast.GoStmt) *SpawnSite {
	p := fi.Pkg
	s := &SpawnSite{Fn: fi, Pos: g.Pos(), ParamIndex: -1}
	var doneObj, sendObj types.Object
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if x, name, ok := selectorCall(n); ok && name == "Done" && doneObj == nil {
					doneObj = baseObj(p, x)
				}
			case *ast.SendStmt:
				if sendObj == nil {
					sendObj = baseObj(p, n.Chan)
				}
			}
			return true
		})
	} else {
		// go f(a, b): a WaitGroup-typed pointer argument is the join
		// object by convention (f is expected to Done it).
		for _, arg := range g.Call.Args {
			if obj := baseObj(p, arg); obj != nil && isWaitGroupish(obj) {
				doneObj = obj
				break
			}
		}
	}
	if doneObj != nil {
		s.JoinObj = doneObj
	} else if sendObj != nil {
		s.JoinObj = sendObj
	}
	if s.JoinObj != nil {
		s.ParamIndex = paramIndex(p, fi.Decl, s.JoinObj)
	}
	return s
}

// --- propagation -----------------------------------------------------------

// fixedPoint computes the least fixed point of a monotone predicate over the
// call graph: start from the seeded functions and repeatedly extend along
// edges accepted by through(edge) until nothing changes. The result maps
// every function with the property to true.
func (m *Module) fixedPoint(seed func(*FuncInfo) bool, through func(*CallSite) bool) map[*FuncInfo]bool {
	has := map[*FuncInfo]bool{}
	// Reverse edges: callee -> call sites targeting it.
	rev := map[*FuncInfo][]*CallSite{}
	var work []*FuncInfo
	for _, fi := range m.Funcs {
		for _, cs := range fi.Calls {
			rev[cs.Callee] = append(rev[cs.Callee], cs)
		}
		if seed(fi) {
			has[fi] = true
			work = append(work, fi)
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, cs := range rev[fi] {
			if has[cs.Caller] || !through(cs) {
				continue
			}
			has[cs.Caller] = true
			work = append(work, cs.Caller)
		}
	}
	return has
}

// --- shared syntactic helpers ---------------------------------------------

// baseObj resolves the root identifier of an expression chain (x, x.f,
// x.f[i], *x, x.f(), (x)) to its object, or nil.
func baseObj(p *Package, e ast.Expr) types.Object {
	id := baseIdent(e)
	if id == nil || p.TypesInfo == nil {
		return nil
	}
	if obj, ok := p.TypesInfo.Uses[id]; ok {
		return obj
	}
	if obj, ok := p.TypesInfo.Defs[id]; ok {
		return obj
	}
	return nil
}

// ctxParams returns the parameter objects of type context.Context, detected
// syntactically (selector context.Context whose qualifier names the
// "context" import) so the check works under stubbed stdlib type data.
func ctxParams(p *Package, file *ast.File, fd *ast.FuncDecl) []*types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range fd.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		qual, ok := sel.X.(*ast.Ident)
		if !ok || p.pkgNameOf(file, qual) != "context" {
			continue
		}
		for _, name := range field.Names {
			if p.TypesInfo == nil {
				continue
			}
			if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// paramIndex returns the index of obj in fd's parameter list, or -1.
func paramIndex(p *Package, fd *ast.FuncDecl, obj types.Object) int {
	if fd.Type.Params == nil || p.TypesInfo == nil {
		return -1
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if p.TypesInfo.Defs[name] == obj {
				return idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return -1
}

// isWaitGroupish reports whether the object's type names sync.WaitGroup (or
// an errgroup-style Group) by spelling — used only to classify direct
// `go f(wg)` spawns, syntactic on purpose.
func isWaitGroupish(obj types.Object) bool {
	t := obj.Type()
	if t == nil {
		return false
	}
	s := t.String()
	return strings.HasSuffix(s, "sync.WaitGroup") || strings.HasSuffix(s, ".Group") ||
		strings.HasSuffix(s, "*sync.WaitGroup")
}

// allocatingStdlib are imported packages whose calls count as allocation
// sites inside a hotpath call closure: their common entry points build
// strings, slices or boxed values on every call. The deterministic kernels
// have no business calling them; a justified exception takes an
// //alsrac:alloc-ok marker like any other site.
var allocatingStdlib = map[string]bool{
	"fmt": true, "strings": true, "strconv": true, "errors": true,
	"bytes": true, "sort": true,
}

// collectAllocs gathers the unwaived syntactic allocation sites of a body —
// the same catalogue the hotpath rule reports in-function (make, new, fresh
// append, map/slice composite literals, &composite, closures, go, string
// concatenation) plus calls into allocating stdlib packages, which matter
// once the proof crosses function boundaries. Sites covered by an
// //alsrac:alloc-ok marker are omitted entirely: a waived allocation is
// invisible to the transitive proof, which is how waivers propagate.
func collectAllocs(p *Package, file *ast.File, body ast.Node, marks allocOK) []Site {
	var sites []Site
	add := func(n ast.Node, desc string) {
		if found, _ := marks.suppressed(p.Fset, n.Pos()); found {
			return
		}
		sites = append(sites, Site{n.Pos(), desc})
	}
	selfAppend := map[*ast.CallExpr]bool{}
	pass := &Pass{Pkg: p} // only used for its type helpers
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isAppendCall(pass, call) &&
					appendTargetMatches(n.Lhs[0], call.Args[0]) {
					selfAppend[call] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && pass.isBuiltin(id) {
				switch id.Name {
				case "make":
					add(n, "make")
				case "new":
					add(n, "new")
				case "append":
					if !selfAppend[n] {
						add(n, "append into a fresh slice")
					}
				}
			}
			if x, name, ok := selectorCall(n); ok {
				if id, ok := x.(*ast.Ident); ok {
					if pkg := p.pkgNameOf(file, id); allocatingStdlib[pkg] {
						add(n, pkg+"."+name+" call")
					}
				}
			}
		case *ast.CompositeLit:
			switch pass.compositeKind(n) {
			case "map":
				add(n, "map literal")
			case "slice":
				add(n, "slice literal")
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					add(n, "&composite literal")
					return false
				}
			}
		case *ast.FuncLit:
			add(n, "closure")
			return false
		case *ast.GoStmt:
			add(n, "go statement")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.typeOf(n.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(n, "string concatenation")
					}
				}
			}
		}
		return true
	})
	return sites
}
