// Fixture: hotpath kernels whose whole static call closure is
// allocation-free, including via a waiver at the allocation site inside a
// helper — the waiver removes the site from the helper's summary, so every
// kernel calling it proves clean (the production growI32 pattern).
package wordops

//alsrac:hotpath
func kernelCallsCleanHelper(ws []uint64, n int) int {
	return popcountWords(ws, n)
}

//alsrac:hotpath
func kernelCallsWaivedHelper(dst []uint64, n int) []uint64 {
	return growPooled(dst, n)
}

//alsrac:hotpath
func kernelChainsCleanHelpers(ws []uint64, n int) int {
	return doublePopcount(ws, n)
}

func popcountWords(ws []uint64, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		w := ws[i]
		for w != 0 {
			w &= w - 1
			total++
		}
	}
	return total
}

func doublePopcount(ws []uint64, n int) int {
	return popcountWords(ws, n) * 2
}

func growPooled(s []uint64, n int) []uint64 {
	if cap(s) < n {
		//alsrac:alloc-ok pool warmup; recycled storage keeps steady-state calls allocation-free
		return make([]uint64, n)
	}
	return s[:n]
}
