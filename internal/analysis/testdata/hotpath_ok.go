// Fixture: the allocation-free idioms the hotpath analyzer must accept.
package wordops

type scanState struct {
	cone []int32
}

//alsrac:hotpath
func kernelOK(s *scanState, dst, src []uint64, picks []int32) uint64 {
	// Fixed-size array scratch lives on the stack.
	var masks [64]uint64
	vals := masks[:]
	for i := range src {
		dst[i] = src[i] &^ vals[i&63]
	}
	// Self-append into persistent scratch is amortized, including the
	// truncate-and-refill form.
	s.cone = s.cone[:0]
	for _, p := range picks {
		s.cone = append(s.cone, p)
	}
	s.cone = append(s.cone[:0], picks...)
	// The audited escape hatch: a reasoned alloc-ok marker suppresses.
	//alsrac:alloc-ok one-time header allocation measured off the hot loop
	hdr := make([]uint64, 2)
	return dst[0] ^ hdr[0]
}
