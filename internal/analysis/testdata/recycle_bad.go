// Fixture: an epoch-recycling commit path that allocates per call. The free
// list, epoch snapshot and stale mask are all persistent-scratch candidates;
// rebuilding any of them inside a hotpath-annotated kernel is a finding.
package aig

type recycler struct {
	free   []int
	epochs []uint32
	stale  []bool
}

//alsrac:hotpath
func (r *recycler) recycleBad(n int, epochs []uint32, touched []int) []bool {
	snap := make([]uint32, len(epochs)) //want:hotpath
	copy(snap, epochs)
	r.free = append(touched[:0:0], touched...) //want:hotpath
	stale := make([]bool, n)                   //want:hotpath
	for _, t := range touched {
		stale[t] = true
	}
	onFree := func(slot int) { stale[slot] = true } //want:hotpath
	for _, f := range r.free {
		onFree(f)
	}
	return stale
}

// The amortized shape of the same path: scratch lives on the receiver and is
// re-sliced in place, so steady-state commits allocate nothing.
//
//alsrac:hotpath
func (r *recycler) recycleOK(epochs []uint32, touched []int) []bool {
	r.epochs = append(r.epochs[:0], epochs...)
	r.free = append(r.free[:0], touched...)
	r.stale = r.stale[:0]
	for range epochs {
		r.stale = append(r.stale, false)
	}
	for _, t := range touched {
		r.stale[t] = true
	}
	return r.stale
}
