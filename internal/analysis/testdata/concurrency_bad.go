// Fixture: the goroutine-discipline violations the concurrency analyzer
// must catch.
package core

import "sync"

func fireAndForget(n int) {
	for i := 0; i < n; i++ {
		go work(i) //want:concurrency
	}
}

func work(int) {}

func capturedAccumulator(items []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			total += it //want:concurrency
		}(it)
	}
	wg.Wait()
	return total
}

var generation int

func packageLevelWrite(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		generation = n //want:concurrency
	}()
	wg.Wait()
}
