// Fixture: error-wrapping verb misuse — an error formatted with anything but
// %w loses its chain, and errors.As downstream can no longer find the errno.
// (The interprocedural bare-return half of errwrap is exercised by the
// testdata/interproc mini-module, which has real cross-package types.)
package service

import "fmt"

func stringifiesCause(err error) error {
	return fmt.Errorf("loading job: %v", err) //want:errwrap
}

func stringifiesSecondError(sentinel, cause error) error {
	return fmt.Errorf("op failed: %w: %s", sentinel, cause) //want:errwrap
}

func verboseStringify(err error) error {
	return fmt.Errorf("state dump: %+v", err) //want:errwrap
}
