// Fixture: goroutine-leak shapes the interprocedural leaks analyzer must
// catch — including the spawn-in-helper case where the join obligation
// escapes through a parameter and a caller drops it.
package core

import "sync"

// spawnCrew spawns on its WaitGroup parameter: the obligation escapes to
// every caller, so the helper itself is clean.
func spawnCrew(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

// forgetsToJoin calls the spawning helper and never waits.
func forgetsToJoin(n int) {
	var wg sync.WaitGroup
	spawnCrew(&wg, n) //want:leaks
}

// spawnLeafDeep / forwardSpawn: the obligation survives one forwarding hop
// and is dropped at the top.
func spawnLeafDeep(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func forwardSpawn(wg *sync.WaitGroup) {
	spawnLeafDeep(wg)
}

func topDropsObligation() {
	var wg sync.WaitGroup
	forwardSpawn(&wg) //want:leaks
}

// noSignalNoJoin has no completion signal at all and never joins anything.
func noSignalNoJoin() {
	go func() { //want:leaks
		chew()
	}()
}

func chew() {}

// signalsButNeverWaits Dones a local WaitGroup nobody ever Waits on; the
// object is not a parameter, so no caller can discharge it either.
func signalsButNeverWaits() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //want:leaks
		defer wg.Done()
	}()
}
