// Fixture for the call-graph construction unit tests: direct calls, method
// calls, method values, function values, calls inside function literals and
// go statements, and a dynamic call through a function-typed parameter
// (which must produce no edge).
package core

func caller(ws []int) {
	leafA()

	var w widget
	w.method()

	f := leafB // function value: may-call reference edge
	f()        // dynamic: no edge for the call itself

	m := w.method // method value: may-call reference edge
	_ = m

	run(func() {
		leafC() // attributed to caller, marked InFuncLit
	})

	go leafD() // marked InGo
}

func run(f func()) {
	f() // dynamic through a parameter: no edge
}

func leafA() {}
func leafB() {}
func leafC() {}
func leafD() {}

type widget struct{}

func (widget) method() {}
