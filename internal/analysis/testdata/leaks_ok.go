// Fixture: sanctioned goroutine lifecycles the leaks analyzer must accept —
// notably spawn-in-helper/join-in-caller, which the per-function concurrency
// rule of PR 3 could not express.
package core

import "sync"

// spawnPool spawns on its parameter; the join lives with the callers below.
func spawnPool(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

// runAndJoin joins in the caller, one hop from the spawn.
func runAndJoin(n int) {
	var wg sync.WaitGroup
	spawnPool(&wg, n)
	wg.Wait()
}

// midForward forwards the obligation; topJoins discharges it two hops up.
func midForward(wg *sync.WaitGroup, n int) {
	spawnPool(wg, n)
}

func topJoins(n int) {
	var wg sync.WaitGroup
	midForward(&wg, n)
	wg.Wait()
}

// spawnAndReceive joins through the channel the goroutine sends on.
func spawnAndReceive() int {
	done := make(chan int)
	go func() {
		done <- 1
	}()
	return <-done
}

// spawnAndWaitLocally is the classic same-function pattern.
func spawnAndWaitLocally(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
