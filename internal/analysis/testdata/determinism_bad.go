// Fixture: every determinism violation class the analyzer must catch.
package sim

import (
	"math/rand"
	"time"
)

func elapsedSeconds() float64 {
	start := time.Now() //want:determinism
	_ = start
	d := time.Since(start) //want:determinism
	_ = d
	return 0
}

func unseededDraws() (int, uint64, float64) {
	a := rand.Intn(8)    //want:determinism
	b := rand.Uint64()   //want:determinism
	c := rand.Float64()  //want:determinism
	rand.Shuffle(3, nil) //want:determinism
	return a, b, c
}

func orderedFromMap(m map[int]int, ch chan int) []int {
	out := make([]int, 0, len(m))
	dst := make([]int, len(m))
	i := 0
	for k, v := range m {
		out = append(out, k) //want:determinism
		ch <- v              //want:determinism
		dst[i] = v           //want:determinism
		i++
	}
	return out
}
