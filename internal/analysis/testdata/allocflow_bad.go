// Fixture: transitive allocations the allocflow analyzer must trace through
// the call graph. Every kernel body here is itself allocation-free, so the
// per-function hotpath rule sees nothing in this file — that gap is exactly
// what allocflow closes (pinned by TestAllocflowCatchesWhatHotpathMisses).
package wordops

//alsrac:hotpath
func kernelCallsAllocatingHelper(dst []uint64, n int) []uint64 {
	return growWords(dst, n) //want:allocflow
}

//alsrac:hotpath
func kernelTwoFramesDeep(dst []uint64, n int) []uint64 {
	return ensureWords(dst, n) //want:allocflow
}

//alsrac:hotpath
func kernelCallsAllocatingMethod(s *wordScratch, n int) {
	s.grow(n) //want:allocflow
}

//alsrac:hotpath
func kernelWaivedEdge(dst []uint64, n int) []uint64 {
	//alsrac:alloc-ok warmup call only; steady-state iterations stay within capacity
	return growWords(dst, n)
}

func ensureWords(dst []uint64, n int) []uint64 {
	return growWords(dst, n)
}

func growWords(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

type wordScratch struct{ buf []uint64 }

func (s *wordScratch) grow(n int) {
	s.buf = make([]uint64, n)
}
