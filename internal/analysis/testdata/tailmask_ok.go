// Fixture: the tailmask-conformant shapes the analyzer must accept.
package errest

// A valid-pattern count travels with the words.
func RateOfWordsValid(golden, approx [][]uint64, words, valid int) float64 {
	_ = valid
	return 0
}

// The nPat spelling counts too.
func DistanceOfWords(golden [][]uint64, nPat int) float64 {
	_ = nPat
	return 0
}

type meter struct{ valid int }

// Methods are exempt: the receiver is constructed with the valid count.
func (m *meter) Consume(ws []uint64) {}

// Unexported functions are internal plumbing past the masking boundary.
func rawPopcount(ws []uint64) int { return len(ws) }

// Exported functions without word parameters are out of scope.
func Normalize(x float64) float64 { return x }
