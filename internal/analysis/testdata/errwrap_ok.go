// Fixture: wrapping done right — every error argument sits under %w, other
// verbs format non-error values, and %% never consumes an argument.
package service

import "fmt"

func wrapsProperly(err error) error {
	return fmt.Errorf("loading job: %w", err)
}

func mixesValuesAndError(n int, name string, err error) error {
	return fmt.Errorf("job %d (%s) failed: %w", n, name, err)
}

func literalPercent(err error) error {
	return fmt.Errorf("utilization 100%%: %w", err)
}

func wrapsTwoErrors(sentinel, cause error) error {
	return fmt.Errorf("%w: %w", sentinel, cause)
}
