// Fixture: context-flow violations — a handed context dropped on the floor,
// and blocking helpers reachable from ctx-aware functions without any way to
// cancel them (directly and through a middle frame).
package service

import (
	"context"
	"time"
)

// dropsContext severs the chain it was handed.
func dropsContext(ctx context.Context) error {
	return doWork(context.Background()) //want:ctxflow
}

func doWork(ctx context.Context) error {
	_ = ctx
	return nil
}

// waitsBlind calls a ctx-less helper that can block forever on the channel.
func waitsBlind(ctx context.Context, ch chan int) int {
	return drain(ch) //want:ctxflow
}

func drain(ch chan int) int {
	return <-ch
}

// pollsBlind reaches a time.Sleep two frames down; neither frame takes a
// context, so cancellation can never arrive.
func pollsBlind(ctx context.Context) {
	tickOnce() //want:ctxflow
}

func tickOnce() {
	pause()
}

func pause() {
	time.Sleep(1)
}
