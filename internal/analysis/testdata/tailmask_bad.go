// Fixture: exported errest entry points taking pattern words without a
// valid-pattern count.
package errest

func RateOfWords(golden, approx [][]uint64, words int) float64 { //want:tailmask
	return 0
}

func SumWord(ws []uint64) uint64 { //want:tailmask
	var s uint64
	for _, w := range ws {
		s += w
	}
	return s
}
