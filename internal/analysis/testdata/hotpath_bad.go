// Fixture: every allocation class the hotpath analyzer must catch inside an
// annotated function.
package wordops

type acc struct{ n int }

//alsrac:hotpath
func kernelBad(dst, src []uint64, label, suffix string) int {
	tmp := make([]uint64, len(src)) //want:hotpath
	copy(tmp, src)
	grown := append(src, 0) //want:hotpath
	_ = grown
	box := new(acc) //want:hotpath
	_ = box
	table := map[int]int{1: 2} //want:hotpath
	_ = table
	lits := []int{1, 2, 3} //want:hotpath
	_ = lits
	ptr := &acc{n: 1} //want:hotpath
	_ = ptr
	f := func() {} //want:hotpath
	f()
	defer f()              //want:hotpath
	name := label + suffix //want:hotpath
	_ = name
	//alsrac:alloc-ok
	pad := make([]uint64, 4) //want:hotpath
	_ = pad
	return len(dst)
}

// Unannotated functions may allocate freely.
func helperAllocates(n int) []uint64 {
	return make([]uint64, n)
}
