// Fixture: the sanctioned worker-pool patterns the concurrency analyzer
// must accept (they mirror DESIGN.md §8).
package core

import "sync"

// Disjoint-index publication: each worker owns results[w].
func shardedResults(n int) []int {
	results := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = w * w
		}(w)
	}
	wg.Wait()
	return results
}

// Mutex-guarded shared state.
func lockedAccumulator(items []int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return total
}

// Channel publication: the goroutine writes nothing it captured.
func channelFanIn(items []int) int {
	ch := make(chan int)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			ch <- it * it
		}(it)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
