// Fixture: context handling the ctxflow analyzer must accept — ctx threaded
// to ctx-aware callees, default-guarded selects, ctx.Done select cases, and
// blocking work handed off to another goroutine.
package service

import "context"

// delegates passes its context on; the callee is assumed to honor it.
func delegates(ctx context.Context, ch chan int) int {
	return drainCtx(ctx, ch)
}

func drainCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// tryRecv never blocks: the select has a default case.
func tryRecv(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

func polls(ctx context.Context, ch chan int) (int, bool) {
	return tryRecv(ch)
}

// handsOff moves the blocking pump onto its own goroutine; the spawner is
// not charged with the pump's blocking (the leaks rule owns its lifecycle).
func handsOff(ctx context.Context, ch chan int) {
	go pump(ch)
}

func pump(ch chan int) {
	ch <- 1
}
