// Fixture: the sanctioned patterns the determinism analyzer must accept.
package sim

import "math/rand"

// Explicitly seeded generator chains are the reproducible-randomness idiom.
func seededDraw(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Uint64()
}

// Map-to-map writes keyed by the iteration key are order-independent.
func copyTable(m map[uint64]int32) map[uint64]int32 {
	out := make(map[uint64]int32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Order-independent reductions over map values are fine too.
func sumValues(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Appending inside a slice range is unaffected.
func doubled(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}
