// Fixture: the interprocedural bare-return rule. An unexported helper may
// bare-return a faultfs error (it becomes a store-error source), but an
// exported function leaking such an error unwrapped is a finding — unless
// some frame wraps with %w or classifies the chain.
package service

import (
	"errors"
	"fmt"

	"interproc/internal/faultfs"
)

// loadAll bare-returns the faultfs error: unexported, so no finding here,
// but every caller inherits the obligation.
func loadAll(dir string) ([]byte, error) {
	b, err := faultfs.ReadFile(dir)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Recover leaks the store error bare through two frames.
func Recover(dir string) ([]byte, error) {
	b, err := loadAll(dir)
	if err != nil {
		return nil, err //want:errwrap
	}
	return b, nil
}

// RecoverWrapped keeps the chain intact with %w.
func RecoverWrapped(dir string) ([]byte, error) {
	b, err := loadAll(dir)
	if err != nil {
		return nil, fmt.Errorf("recovering %s: %w", dir, err)
	}
	return b, nil
}

// Classify consults the chain, which satisfies the obligation in full.
func Classify(dir string) ([]byte, error) {
	b, err := loadAll(dir)
	if err != nil {
		if errors.Is(err, errTruncated) {
			return nil, errTruncated
		}
		return nil, err
	}
	return b, nil
}

var errTruncated = errors.New("truncated store")

// Persist bare-returns the store op as a tail call.
func Persist(name string, data []byte) error {
	return faultfs.WriteFile(name, data) //want:errwrap
}

// PersistWrapped is the tail-call pattern done right.
func PersistWrapped(name string, data []byte) error {
	if err := faultfs.WriteFile(name, data); err != nil {
		return fmt.Errorf("persisting %s: %w", name, err)
	}
	return nil
}
