// Package faultfs is a minimal stand-in for the real fault-injection
// filesystem. The errwrap analyzer classifies a call into any package whose
// import path ends in internal/faultfs as a store-error source, so this
// mini-module exercises the cross-package half of the rule with fully
// resolved types (single-file fixtures get only stubbed imports).
package faultfs

import "os"

func ReadFile(name string) ([]byte, error) {
	return os.ReadFile(name)
}

func WriteFile(name string, data []byte) error {
	return os.WriteFile(name, data, 0o644)
}
