module interproc

go 1.24
