package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrwrapAnalyzer guards the failure-routing contract of the PR 5
// robustness layer: the retry/quarantine logic classifies failures by errno
// (isTransientErrno walks the chain with errors.As), so an error born in a
// faultfs operation must keep its chain intact all the way up. Two bug
// classes break that silently:
//
//  1. Wrapping without %w: fmt.Errorf("...: %v", err) renders the cause
//     into a string — errors.As finds no errno behind it, a transient
//     ENOSPC is misrouted to fail-fast, and a job dies that a retry would
//     have saved. Every error-typed argument of fmt.Errorf must sit under a
//     %w verb.
//
//  2. Bare store errors at exported boundaries: an exported function of the
//     service/core layer that returns a faultfs-born error completely
//     unwrapped gives its caller no context about which operation failed —
//     the quarantine log then names nothing. The origin is traced
//     interprocedurally: a helper that bare-returns a faultfs op error
//     becomes a store-error source, and its callers inherit the obligation
//     until some frame wraps (%w keeps the chain) or classifies (errors.Is,
//     errors.As, a *transient* helper) the error.
//
// The faultfs package itself is exempt: it is the source of these errors
// (the OS passthrough and the injector are deliberately transparent).
var ErrwrapAnalyzer = &Analyzer{
	Name:      "errwrap",
	Doc:       "store errors must stay errno-classifiable: wrap with %w or classify, never stringify or leak bare",
	AppliesTo: pathIn("internal/service", "internal/core", "internal/cluster"),
	RunModule: runErrwrap,
}

// errOrigin classifies where a returned error value came from.
type errOrigin struct {
	kind   int // originNone, originFaultfs, originCall
	callee *FuncInfo
	desc   string
}

const (
	originNone = iota
	originFaultfs
	originCall
)

// bareReturn is one `return err` (or tail-call return) whose error came
// from a store operation without wrapping or classification.
type bareReturn struct {
	pos    token.Pos
	origin errOrigin
}

func runErrwrap(mp *ModulePass) {
	m := mp.Module

	bares := map[*FuncInfo][]bareReturn{}
	for _, fi := range m.Funcs {
		bares[fi] = bareStoreReturns(m, fi)
	}

	// Fixed point: f is a store-error source if it bare-returns a faultfs
	// op error, or bare-returns the error of a callee that is itself a
	// source. Classification anywhere in the body discharges the whole
	// function (the retrier pattern: the classifier sits beside the
	// return).
	source := map[*FuncInfo]bool{}
	changed := true
	for changed {
		changed = false
		for _, fi := range m.Funcs {
			if source[fi] || fi.Classifies {
				continue
			}
			for _, br := range bares[fi] {
				if br.origin.kind == originFaultfs ||
					(br.origin.kind == originCall && source[br.origin.callee]) {
					source[fi] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range m.Funcs {
		if !mp.applies(fi.Pkg) {
			continue
		}
		reportBadVerbs(mp, fi)
		if !fi.Decl.Name.IsExported() || fi.Classifies {
			continue
		}
		for _, br := range bares[fi] {
			live := br.origin.kind == originFaultfs ||
				(br.origin.kind == originCall && source[br.origin.callee])
			if !live {
				continue
			}
			mp.Reportf(fi.Pkg, br.pos,
				"exported %s returns a store error bare (from %s): wrap with %%w to add operation context, or classify with the transient-errno helpers, so retry/quarantine can still route the errno",
				fi.DisplayName(), br.origin.desc)
		}
	}
}

// bareStoreReturns scans one body for `return err` sites whose err value was
// last assigned from a faultfs operation or a module call, plus tail-call
// returns of such calls. The reaching-assignment approximation is "closest
// preceding assignment in source order", which matches the if-err-return
// idiom this codebase uses exclusively.
func bareStoreReturns(m *Module, fi *FuncInfo) []bareReturn {
	p := fi.Pkg
	type assign struct {
		pos    token.Pos
		obj    types.Object
		origin errOrigin
	}
	var assigns []assign
	var out []bareReturn

	classify := func(call *ast.CallExpr) errOrigin {
		var callee *types.Func
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if p.TypesInfo != nil {
				callee, _ = p.TypesInfo.Uses[fun].(*types.Func)
			}
		case *ast.SelectorExpr:
			if p.TypesInfo != nil {
				callee, _ = p.TypesInfo.Uses[fun.Sel].(*types.Func)
			}
		}
		if callee == nil {
			return errOrigin{kind: originNone}
		}
		if pkg := callee.Pkg(); pkg != nil && strings.HasSuffix(pkg.Path(), "internal/faultfs") {
			return errOrigin{kind: originFaultfs, desc: "faultfs op " + callee.Name()}
		}
		if target, ok := m.byObj[callee]; ok {
			return errOrigin{kind: originCall, callee: target, desc: target.DisplayName()}
		}
		return errOrigin{kind: originNone}
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			// Record the assignment even when the origin is clean: a
			// store-origin value overwritten by a clean one stops being
			// bare at later returns.
			origin := classify(call)
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isErrorish(p, id) {
					continue
				}
				if obj := baseObj(p, id); obj != nil {
					assigns = append(assigns, assign{n.Pos(), obj, origin})
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				switch res := res.(type) {
				case *ast.Ident:
					if !isErrorish(p, res) {
						continue
					}
					obj := baseObj(p, res)
					if obj == nil {
						continue
					}
					// closest preceding assignment to the same object
					var reach *assign
					for i := range assigns {
						a := &assigns[i]
						if a.obj == obj && a.pos < n.Pos() && (reach == nil || a.pos > reach.pos) {
							reach = a
						}
					}
					if reach != nil && reach.origin.kind != originNone {
						out = append(out, bareReturn{n.Pos(), reach.origin})
					}
				case *ast.CallExpr:
					if isErrorfCall(p, fi.File, res) {
						continue // wrapped (verb hygiene checked separately)
					}
					if origin := classify(res); origin.kind != originNone {
						out = append(out, bareReturn{n.Pos(), origin})
					}
				}
			}
		}
		return true
	})
	return out
}

// isErrorish reports whether the identifier is error-typed, falling back to
// the "err" spelling convention when types degraded.
func isErrorish(p *Package, id *ast.Ident) bool {
	if t := p.typeOf(id); t != nil {
		return implementsError(t)
	}
	return id.Name == "err" || strings.HasSuffix(id.Name, "Err") || strings.HasSuffix(id.Name, "err")
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isErrorfCall matches fmt.Errorf(...).
func isErrorfCall(p *Package, file *ast.File, call *ast.CallExpr) bool {
	x, name, ok := selectorCall(call)
	if !ok || name != "Errorf" {
		return false
	}
	id, ok := x.(*ast.Ident)
	return ok && p.pkgNameOf(file, id) == "fmt"
}

// reportBadVerbs flags fmt.Errorf calls whose error-typed arguments sit
// under a verb other than %w.
func reportBadVerbs(mp *ModulePass, fi *FuncInfo) {
	p := fi.Pkg
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isErrorfCall(p, fi.File, call) || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		verbs := formatVerbs(lit.Value)
		for i, arg := range call.Args[1:] {
			if i >= len(verbs) {
				break
			}
			isErr := false
			if t := p.typeOf(arg); t != nil {
				isErr = implementsError(t)
			} else if id, ok := arg.(*ast.Ident); ok {
				// Degraded types: fall back to the err spelling convention,
				// same as bareStoreReturns.
				isErr = isErrorish(p, id)
			}
			if !isErr {
				continue
			}
			if verbs[i] != 'w' {
				mp.Reportf(p, arg.Pos(),
					"error wrapped with %%%c instead of %%w in %s: the errno chain is stringified away and transient-error classification downstream (errors.As) goes blind",
					verbs[i], fi.DisplayName())
			}
		}
		return true
	})
}

// formatVerbs extracts the verb letters of a quoted format string literal in
// argument order (%% consumes no argument; flags, width and precision are
// skipped; argument indexes like %[1]v are not handled and end the scan).
func formatVerbs(quoted string) []byte {
	var verbs []byte
	s := quoted
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		i++
		if i >= len(s) {
			break
		}
		if s[i] == '%' {
			continue
		}
		if s[i] == '[' {
			return verbs // explicit argument index: give up, never guess
		}
		for i < len(s) && (s[i] == '+' || s[i] == '-' || s[i] == '#' || s[i] == ' ' ||
			s[i] == '0' || s[i] == '.' || (s[i] >= '1' && s[i] <= '9')) {
			i++
		}
		if i < len(s) {
			verbs = append(verbs, s[i])
		}
	}
	return verbs
}
