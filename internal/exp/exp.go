// Package exp drives the paper's experiments: it runs ALSRAC and the
// baseline flows over benchmark suites and threshold sweeps, maps the
// results for the ASIC (MCNC cells) or FPGA (6-LUT) target, and produces
// the rows of Tables III–VII. Area ratio, delay ratio and runtime are
// reported exactly as in the paper: the approximate circuit's mapped
// area/delay over the exact circuit's, averaged across thresholds (and
// repeats).
package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/aig"
	"repro/internal/baseline/mcmc"
	"repro/internal/baseline/sasimi"
	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/errest"
	"repro/internal/mapper"
	"repro/internal/opt"
)

// Target selects the implementation technology.
type Target int

// The two targets of the paper's evaluation.
const (
	ASIC Target = iota // MCNC-style standard cells (Tables IV, V)
	FPGA               // 6-input LUTs (Tables VI, VII)
)

// Baseline selects the comparison method.
type Baseline int

// The two baselines of the paper's evaluation.
const (
	Su  Baseline = iota // SASIMI-style substitution (Su et al., DAC'18)
	Liu                 // stochastic MCMC ALS (Liu & Zhang, ICCAD'17)
)

// Config parameterizes one experiment (one table).
type Config struct {
	Metric     errest.Metric
	Thresholds []float64
	Target     Target
	Baseline   Baseline

	EvalPatterns    int
	Seed            int64
	Repeats         int // the paper averages 3 runs
	MaxReplaceTries int // resub divisor scan cap (0 = paper-faithful unbounded)
	MCMCProposals   int
	LUTK            int
}

// Quick returns a configuration sized for laptop-scale regression runs:
// one repeat, a reduced evaluation budget and a capped divisor scan. The
// table SHAPE (who wins, roughly by how much) is preserved; absolute
// runtimes shrink.
func Quick(metric errest.Metric, thresholds []float64, target Target, baseline Baseline) Config {
	return Config{
		Metric:          metric,
		Thresholds:      thresholds,
		Target:          target,
		Baseline:        baseline,
		EvalPatterns:    2048,
		Seed:            1,
		Repeats:         1,
		MaxReplaceTries: 120,
		MCMCProposals:   1500,
		LUTK:            6,
	}
}

// Full returns the paper-faithful configuration: three repeats, a larger
// evaluation budget, unbounded divisor scans.
func Full(metric errest.Metric, thresholds []float64, target Target, baseline Baseline) Config {
	c := Quick(metric, thresholds, target, baseline)
	c.EvalPatterns = 16384
	c.Repeats = 3
	c.MaxReplaceTries = 0
	c.MCMCProposals = 6000
	return c
}

// Row is one benchmark line of a comparison table.
type Row struct {
	Circuit string

	AreaRatioA  float64 // ALSRAC
	AreaRatioB  float64 // baseline
	DelayRatioA float64
	DelayRatioB float64
	TimeA       time.Duration
	TimeB       time.Duration
}

// measure maps g for the target and returns (area, delay).
func measure(g *aig.Graph, cfg Config) (float64, float64) {
	if cfg.Target == FPGA {
		r := mapper.MapLUT(g, cfg.LUTK)
		return float64(r.LUTs), float64(r.Depth)
	}
	r := mapper.MapCells(g, cell.MCNC())
	return r.Area, r.Delay
}

func ratio(approx, base float64) float64 {
	if base == 0 {
		return 1
	}
	return approx / base
}

// runALSRAC runs the ALSRAC flow once and returns the mapped (area, delay).
func runALSRAC(g *aig.Graph, cfg Config, threshold float64, seed int64) (float64, float64) {
	opts := core.DefaultOptions(cfg.Metric, threshold)
	opts.EvalPatterns = cfg.EvalPatterns
	opts.Seed = seed
	opts.MaxReplaceTries = cfg.MaxReplaceTries
	res := core.Run(g, opts)
	a, d := measure(res.Graph, cfg)
	return a, d
}

// keepIfBetter falls back to the exact circuit's numbers when the
// approximation did not reduce mapped area — a zero-error "change" any
// real flow would simply not commit. Applied identically to both methods.
func keepIfBetter(a, d, baseA, baseD float64) (float64, float64) {
	if a > baseA {
		return baseA, baseD
	}
	return a, d
}

// runBaseline runs the configured baseline once.
func runBaseline(g *aig.Graph, cfg Config, threshold float64, seed int64) (float64, float64) {
	var approx *aig.Graph
	if cfg.Baseline == Su {
		opts := sasimi.Configure(core.DefaultOptions(cfg.Metric, threshold))
		opts.EvalPatterns = cfg.EvalPatterns
		opts.Seed = seed
		res := core.Run(g, opts)
		approx = res.Graph
	} else {
		o := mcmc.DefaultOptions(cfg.Metric, threshold)
		o.EvalPatterns = cfg.EvalPatterns
		o.Seed = seed
		o.Proposals = cfg.MCMCProposals
		res := mcmc.Run(g, o)
		approx = res.Graph
	}
	return measure(approx, cfg)
}

// Compare runs ALSRAC against the configured baseline on one circuit,
// averaging over the threshold sweep and the repeats.
func Compare(name string, g *aig.Graph, cfg Config) Row {
	g = opt.Optimize(g) // the paper pre-optimizes all benchmarks (SIS)
	baseArea, baseDelay := measure(g, cfg)

	row := Row{Circuit: name}
	n := 0
	for _, et := range cfg.Thresholds {
		for rep := 0; rep < cfg.Repeats; rep++ {
			seed := cfg.Seed + int64(rep)*101

			t0 := time.Now()
			aA, dA := runALSRAC(g, cfg, et, seed)
			row.TimeA += time.Since(t0)
			aA, dA = keepIfBetter(aA, dA, baseArea, baseDelay)

			t0 = time.Now()
			aB, dB := runBaseline(g, cfg, et, seed)
			row.TimeB += time.Since(t0)
			aB, dB = keepIfBetter(aB, dB, baseArea, baseDelay)

			row.AreaRatioA += ratio(aA, baseArea)
			row.AreaRatioB += ratio(aB, baseArea)
			row.DelayRatioA += ratio(dA, baseDelay)
			row.DelayRatioB += ratio(dB, baseDelay)
			n++
		}
	}
	row.AreaRatioA /= float64(n)
	row.AreaRatioB /= float64(n)
	row.DelayRatioA /= float64(n)
	row.DelayRatioB /= float64(n)
	row.TimeA /= time.Duration(n)
	row.TimeB /= time.Duration(n)
	return row
}

// CompareSuite runs Compare on every entry and appends the arithmetic mean.
func CompareSuite(entries []bench.Entry, cfg Config, logf func(string, ...any)) []Row {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var rows []Row
	for _, e := range entries {
		row := Compare(e.Name, e.Build(), cfg)
		logf("%-10s area %6.2f%% vs %6.2f%%  delay %6.2f%% vs %6.2f%%  time %v vs %v",
			row.Circuit, 100*row.AreaRatioA, 100*row.AreaRatioB,
			100*row.DelayRatioA, 100*row.DelayRatioB, row.TimeA.Round(time.Millisecond), row.TimeB.Round(time.Millisecond))
		rows = append(rows, row)
	}
	rows = append(rows, Mean(rows))
	return rows
}

// Mean computes the arithmetic-mean row (named "Arithmean" as in the paper).
func Mean(rows []Row) Row {
	m := Row{Circuit: "Arithmean"}
	if len(rows) == 0 {
		return m
	}
	for _, r := range rows {
		m.AreaRatioA += r.AreaRatioA
		m.AreaRatioB += r.AreaRatioB
		m.DelayRatioA += r.DelayRatioA
		m.DelayRatioB += r.DelayRatioB
		m.TimeA += r.TimeA
		m.TimeB += r.TimeB
	}
	n := float64(len(rows))
	m.AreaRatioA /= n
	m.AreaRatioB /= n
	m.DelayRatioA /= n
	m.DelayRatioB /= n
	m.TimeA /= time.Duration(len(rows))
	m.TimeB /= time.Duration(len(rows))
	return m
}

// Render formats rows as a paper-style table. nameA/nameB label the two
// methods (e.g. "ALSRAC", "Su's").
func Render(title, nameA, nameB string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s | %9s %9s | %9s %9s | %10s %10s\n",
		"Circuit", nameA, nameB, nameA, nameB, nameA, nameB)
	fmt.Fprintf(&sb, "%-10s | %9s %9s | %9s %9s | %10s %10s\n",
		"", "area", "area", "delay", "delay", "time", "time")
	fmt.Fprintln(&sb, strings.Repeat("-", 80))
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %8.2f%% %8.2f%% | %8.2f%% %8.2f%% | %10v %10v\n",
			r.Circuit, 100*r.AreaRatioA, 100*r.AreaRatioB,
			100*r.DelayRatioA, 100*r.DelayRatioB,
			r.TimeA.Round(time.Millisecond), r.TimeB.Round(time.Millisecond))
	}
	return sb.String()
}
