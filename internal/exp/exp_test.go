package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/errest"
)

func TestCompareSmallCircuit(t *testing.T) {
	cfg := Quick(errest.NMED, []float64{0.001}, ASIC, Su)
	cfg.EvalPatterns = 1024
	row := Compare("rca8", bench.RCA(8), cfg)
	if row.AreaRatioA <= 0 || row.AreaRatioA > 1.5 {
		t.Fatalf("ALSRAC area ratio %v out of range", row.AreaRatioA)
	}
	if row.AreaRatioB <= 0 || row.AreaRatioB > 1.5 {
		t.Fatalf("baseline area ratio %v out of range", row.AreaRatioB)
	}
	if row.TimeA <= 0 || row.TimeB <= 0 {
		t.Fatalf("times not recorded")
	}
}

func TestCompareLiuBaseline(t *testing.T) {
	cfg := Quick(errest.ER, []float64{0.01}, FPGA, Liu)
	cfg.EvalPatterns = 1024
	cfg.MCMCProposals = 200
	row := Compare("dec", bench.Decoder(4), cfg)
	if row.AreaRatioA <= 0 || row.AreaRatioB <= 0 {
		t.Fatalf("degenerate ratios: %+v", row)
	}
}

func TestMean(t *testing.T) {
	rows := []Row{
		{Circuit: "a", AreaRatioA: 0.5, AreaRatioB: 0.7, DelayRatioA: 1, DelayRatioB: 1, TimeA: time.Second, TimeB: 3 * time.Second},
		{Circuit: "b", AreaRatioA: 0.7, AreaRatioB: 0.9, DelayRatioA: 0.5, DelayRatioB: 0.8, TimeA: 3 * time.Second, TimeB: time.Second},
	}
	m := Mean(rows)
	if m.Circuit != "Arithmean" {
		t.Fatalf("mean row name %q", m.Circuit)
	}
	if m.AreaRatioA != 0.6 || m.AreaRatioB != 0.8 {
		t.Fatalf("mean areas wrong: %+v", m)
	}
	if m.TimeA != 2*time.Second {
		t.Fatalf("mean time wrong: %v", m.TimeA)
	}
	if empty := Mean(nil); empty.AreaRatioA != 0 {
		t.Fatalf("empty mean wrong")
	}
}

func TestRender(t *testing.T) {
	rows := []Row{{Circuit: "rca8", AreaRatioA: 0.8, AreaRatioB: 0.9, DelayRatioA: 1, DelayRatioB: 1}}
	s := Render("Table X", "ALSRAC", "Su's", rows)
	if !strings.Contains(s, "rca8") || !strings.Contains(s, "80.00%") {
		t.Fatalf("render output wrong:\n%s", s)
	}
}

func TestTableConfigs(t *testing.T) {
	for table := 4; table <= 7; table++ {
		cfg := TableConfig(table, true)
		if len(cfg.Thresholds) == 0 {
			t.Errorf("table %d: no thresholds", table)
		}
		if len(Suite(table)) == 0 {
			t.Errorf("table %d: empty suite", table)
		}
		full := TableConfig(table, false)
		if full.Repeats != 3 {
			t.Errorf("table %d: full config repeats = %d", table, full.Repeats)
		}
	}
	if BaselineName(4) != "Su's" || BaselineName(7) != "Liu's" {
		t.Errorf("baseline names wrong")
	}
	// Metric assignments per the paper.
	if TableConfig(4, true).Metric != errest.ER ||
		TableConfig(5, true).Metric != errest.NMED ||
		TableConfig(6, true).Metric != errest.ER ||
		TableConfig(7, true).Metric != errest.MRED {
		t.Errorf("table metrics wrong")
	}
}

func TestThresholdSweepsMatchPaper(t *testing.T) {
	if len(TableIVThresholds) != 7 || TableIVThresholds[0] != 0.001 || TableIVThresholds[6] != 0.05 {
		t.Fatalf("Table IV thresholds wrong: %v", TableIVThresholds)
	}
	if len(TableVThresholds) != 8 || TableVThresholds[7] != 0.0019531 {
		t.Fatalf("Table V thresholds wrong: %v", TableVThresholds)
	}
}

func TestKeepIfBetter(t *testing.T) {
	// Approximation worse than base falls back to base numbers.
	a, d := keepIfBetter(120, 5, 100, 10)
	if a != 100 || d != 10 {
		t.Fatalf("worse approximation not clamped: %v %v", a, d)
	}
	// Better approximation is kept, even with worse delay.
	a, d = keepIfBetter(80, 15, 100, 10)
	if a != 80 || d != 15 {
		t.Fatalf("better approximation clamped: %v %v", a, d)
	}
	// Equal area is kept (a committed zero-gain result is harmless).
	a, _ = keepIfBetter(100, 9, 100, 10)
	if a != 100 {
		t.Fatalf("equal area mishandled")
	}
}

func TestTableIIIRenders(t *testing.T) {
	out := TableIII()
	for _, want := range []string{"rca32", "voter", "mult", "Circuit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III missing %q", want)
		}
	}
}
