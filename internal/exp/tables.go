package exp

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/errest"
	"repro/internal/mapper"
	"repro/internal/opt"
)

// The paper's threshold sweeps (Section IV).
var (
	// TableIVThresholds are the seven ER thresholds of Table IV:
	// 0.1%, 0.3%, 0.5%, 0.8%, 1%, 3%, 5%.
	TableIVThresholds = []float64{0.001, 0.003, 0.005, 0.008, 0.01, 0.03, 0.05}
	// TableVThresholds are the eight NMED thresholds of Table V:
	// 0.00153% ... 0.19531%.
	TableVThresholds = []float64{
		0.0000153, 0.0000305, 0.0000610, 0.0001221,
		0.0002441, 0.0004883, 0.0009766, 0.0019531,
	}
	// TableVIThreshold is the ER threshold of Table VI (1%).
	TableVIThreshold = []float64{0.01}
	// TableVIIThreshold is the MRED threshold of Table VII (0.19531%).
	TableVIIThreshold = []float64{0.0019531}
)

// TableIVConfig returns the experiment behind Table IV: ALSRAC vs Su's
// method on ASIC designs under the ER constraint.
func TableIVConfig(quick bool) Config {
	if quick {
		// The quick preset also trims the threshold sweep to three points
		// spanning the paper's range.
		return Quick(errest.ER, []float64{0.001, 0.01, 0.05}, ASIC, Su)
	}
	return Full(errest.ER, TableIVThresholds, ASIC, Su)
}

// TableVConfig returns the experiment behind Table V: ALSRAC vs Su's
// method on ASIC designs under the NMED constraint.
func TableVConfig(quick bool) Config {
	if quick {
		return Quick(errest.NMED, []float64{0.0000305, 0.0002441, 0.0019531}, ASIC, Su)
	}
	return Full(errest.NMED, TableVThresholds, ASIC, Su)
}

// TableVIConfig returns the experiment behind Table VI: ALSRAC vs Liu's
// method on FPGA designs under the 1% ER constraint.
func TableVIConfig(quick bool) Config {
	if quick {
		return Quick(errest.ER, TableVIThreshold, FPGA, Liu)
	}
	return Full(errest.ER, TableVIThreshold, FPGA, Liu)
}

// TableVIIConfig returns the experiment behind Table VII: ALSRAC vs Liu's
// method on FPGA designs under the 0.19531% MRED constraint.
func TableVIIConfig(quick bool) Config {
	if quick {
		return Quick(errest.MRED, TableVIIThreshold, FPGA, Liu)
	}
	return Full(errest.MRED, TableVIIThreshold, FPGA, Liu)
}

// BenchPreset returns an extra-light configuration for the testing.B
// harness in bench_test.go: a two-point threshold sweep and a small
// evaluation budget. Use Quick/Full (or cmd/exptables) for real table runs.
func BenchPreset(table int) Config {
	cfg := TableConfig(table, true)
	cfg.EvalPatterns = 1024
	cfg.MCMCProposals = 800
	cfg.MaxReplaceTries = 100
	switch table {
	case 4:
		cfg.Thresholds = []float64{0.01, 0.05}
	case 5:
		cfg.Thresholds = []float64{0.0002441, 0.0019531}
	}
	return cfg
}

// Suite returns the benchmark set for a table number (4-7).
func Suite(table int) []bench.Entry {
	switch table {
	case 4:
		return bench.ISCASArith()
	case 5:
		return bench.ArithED()
	case 6:
		return bench.EPFLControl()
	case 7:
		return bench.EPFLArith()
	}
	return nil
}

// TableConfig returns the configuration for a table number (4-7).
func TableConfig(table int, quick bool) Config {
	switch table {
	case 4:
		return TableIVConfig(quick)
	case 5:
		return TableVConfig(quick)
	case 6:
		return TableVIConfig(quick)
	case 7:
		return TableVIIConfig(quick)
	}
	panic(fmt.Sprintf("exp: no comparison config for table %d", table))
}

// BaselineName returns the paper's label for a table's baseline method.
func BaselineName(table int) string {
	if table <= 5 {
		return "Su's"
	}
	return "Liu's"
}

// TableIII renders the benchmark inventory: per circuit, the mapped ASIC
// gate count and delay, and the 6-LUT count and depth (the paper's Table
// III lists #gate/delay for the ASIC set and #LUT/level for the EPFL set).
func TableIII() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III: benchmark inventory (generated circuits)\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s %8s %8s\n",
		"Circuit", "PIs", "POs", "ANDs", "cells", "LUT6", "depth")
	fmt.Fprintln(&sb, strings.Repeat("-", 64))
	for _, e := range bench.All() {
		g := opt.Optimize(e.Build())
		cells := mapper.MapCells(g, cell.MCNC())
		luts := mapper.MapLUT(g, 6)
		fmt.Fprintf(&sb, "%-10s %8d %8d %8d %8d %8d %8d\n",
			e.Name, g.NumPIs(), g.NumPOs(), g.NumAnds(), cells.Gates, luts.LUTs, luts.Depth)
	}
	return sb.String()
}
