package aiger

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzAIGERParse feeds arbitrary bytes to the AIGER reader. The hardened
// contract: Read never panics and never allocates past its declared limits —
// it returns an error (wrapping ErrTooLarge for limit violations) or a valid
// graph. Accepted graphs must survive a write/read round trip in both
// encodings with identical structure, which pins the parser and the writers
// against each other.
func FuzzAIGERParse(f *testing.F) {
	f.Add([]byte("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 b\no0 y\n"))
	f.Add([]byte("aag 0 0 0 1 0\n0\n"))
	f.Add([]byte("aig 3 2 0 1 1\n6\n\x02\x02\n"))
	f.Add([]byte("aag 999999999 999999999 0 0 0\n"))
	f.Add([]byte("aag 1 0 0 0 1\n4294967294 0 0\n"))
	f.Add([]byte("aag 3 2 1 1 0\n"))
	f.Add([]byte("c\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatal("Read returned a graph alongside an error")
			}
			return
		}
		for _, format := range []string{"aag", "aig"} {
			var buf bytes.Buffer
			if err := Write(&buf, g, format); err != nil {
				t.Fatalf("accepted graph does not serialize as %s: %v", format, err)
			}
			g2, err := Read(&buf)
			if err != nil {
				t.Fatalf("%s round trip rejected: %v", format, err)
			}
			if g2.NumPIs() != g.NumPIs() || g2.NumPOs() != g.NumPOs() || g2.NumAnds() != g.NumAnds() {
				t.Fatalf("%s round trip changed shape: %d/%d/%d -> %d/%d/%d", format,
					g.NumPIs(), g.NumPOs(), g.NumAnds(), g2.NumPIs(), g2.NumPOs(), g2.NumAnds())
			}
		}
	})
}

// TestReadRejectsOversizedHeader pins the typed limit error: a header
// demanding more nodes than MaxNodes is rejected before any count-sized
// allocation, wrapping ErrTooLarge.
func TestReadRejectsOversizedHeader(t *testing.T) {
	cases := []string{
		"aag 999999999 999999999 0 0 0\n",
		"aag 16777218 16777216 0 0 2\n",
		"aag 0 0 0 999999999 0\n",
		"aig 999999999 999999999 0 0 0\n",
	}
	for _, in := range cases {
		_, err := Read(bytes.NewReader([]byte(in)))
		if err == nil {
			t.Fatalf("oversized header %q accepted", in)
		}
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("header %q: error %v does not wrap ErrTooLarge", in, err)
		}
	}
}

// TestReadRejectsOverlongLine: a line beyond MaxLineLen yields the typed
// limit error rather than unbounded buffering.
func TestReadRejectsOverlongLine(t *testing.T) {
	long := append([]byte("aag "), bytes.Repeat([]byte("9"), MaxLineLen+1)...)
	_, err := Read(bytes.NewReader(long))
	if err == nil || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("overlong header line: error %v, want ErrTooLarge", err)
	}
}

// TestReadRejectsOutOfRangeAndLHS: an AND definition pointing outside the
// declared variable range is a parse error, not an index panic.
func TestReadRejectsOutOfRangeAndLHS(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("aag 1 0 0 0 1\n4294967294 0 0\n")))
	if err == nil {
		t.Fatal("out-of-range and lhs accepted")
	}
}
