// Package aiger reads and writes combinational AIGER files, the standard
// interchange format for And-Inverter Graphs used by ABC and the hardware
// model-checking community. Both the ASCII ("aag") and the compact binary
// ("aig") encodings are supported, including the symbol table. Latches are
// rejected: this repository is combinational-only, like the paper.
package aiger

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/aig"
)

// Parser hardening limits. An adversarial header ("aag 999999999 ...") must
// not drive allocation: every count is validated against MaxNodes before any
// count-sized slice is made, and every line read is capped at MaxLineLen, so
// the parser's memory use is bounded by the input it has actually consumed.
const (
	// MaxNodes bounds M (and independently the output count) of an accepted
	// file: 2^23 nodes is far beyond every benchmark in the paper while
	// keeping the worst-case parse allocation in the low hundreds of MB.
	MaxNodes = 1 << 23
	// MaxLineLen bounds a single line (including the symbol table).
	MaxLineLen = 1 << 16
)

// ErrTooLarge is wrapped by every limit violation, so callers can map any
// oversized dimension to one typed rejection (the daemon answers 422 with
// it) without matching message text.
var ErrTooLarge = errors.New("aiger: input exceeds parser limits")

// readLine reads one '\n'-terminated line without ever buffering more than
// MaxLineLen bytes, unlike ReadString, which grows without bound.
func readLine(br *bufio.Reader) (string, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if len(buf) > MaxLineLen {
			return "", fmt.Errorf("%w: line longer than %d bytes", ErrTooLarge, MaxLineLen)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return string(buf), err
	}
}

// Write emits the graph in the requested format ("aag" = ASCII, "aig" =
// binary). AND nodes are renumbered into the contiguous variable range the
// format requires; node order is preserved, which keeps the file
// topologically sorted as the binary format demands.
func Write(w io.Writer, g *aig.Graph, format string) error {
	switch format {
	case "aag":
		return writeASCII(w, g)
	case "aig":
		return writeBinary(w, g)
	}
	return fmt.Errorf("aiger: unknown format %q (want aag or aig)", format)
}

// renumber maps graph nodes onto AIGER variables: constant = 0, inputs
// 1..I, AND nodes I+1..M in topological order.
func renumber(g *aig.Graph) (vars []uint32, andNodes []aig.Node) {
	vars = make([]uint32, g.NumNodes())
	next := uint32(1)
	for i := 0; i < g.NumPIs(); i++ {
		vars[g.PI(i)] = next
		next++
	}
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			vars[n] = next
			next++
			andNodes = append(andNodes, n)
		}
	}
	return vars, andNodes
}

func aigerLit(vars []uint32, l aig.Lit) uint32 {
	v := vars[l.Node()] << 1
	if l.IsCompl() {
		v |= 1
	}
	return v
}

func writeASCII(w io.Writer, g *aig.Graph) error {
	bw := bufio.NewWriter(w)
	vars, ands := renumber(g)
	m := g.NumPIs() + len(ands)
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", m, g.NumPIs(), g.NumPOs(), len(ands))
	for i := 0; i < g.NumPIs(); i++ {
		fmt.Fprintf(bw, "%d\n", vars[g.PI(i)]<<1)
	}
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "%d\n", aigerLit(vars, g.PO(i)))
	}
	for _, n := range ands {
		lhs := vars[n] << 1
		r0 := aigerLit(vars, g.Fanin0(n))
		r1 := aigerLit(vars, g.Fanin1(n))
		if r0 < r1 {
			r0, r1 = r1, r0
		}
		fmt.Fprintf(bw, "%d %d %d\n", lhs, r0, r1)
	}
	writeSymbols(bw, g)
	return bw.Flush()
}

func writeBinary(w io.Writer, g *aig.Graph) error {
	bw := bufio.NewWriter(w)
	vars, ands := renumber(g)
	m := g.NumPIs() + len(ands)
	fmt.Fprintf(bw, "aig %d %d 0 %d %d\n", m, g.NumPIs(), g.NumPOs(), len(ands))
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "%d\n", aigerLit(vars, g.PO(i)))
	}
	for _, n := range ands {
		lhs := vars[n] << 1
		r0 := aigerLit(vars, g.Fanin0(n))
		r1 := aigerLit(vars, g.Fanin1(n))
		if r0 < r1 {
			r0, r1 = r1, r0
		}
		// The binary format stores the deltas lhs-r0 and r0-r1 as LEB128.
		writeUvarint(bw, lhs-r0)
		writeUvarint(bw, r0-r1)
	}
	writeSymbols(bw, g)
	return bw.Flush()
}

func writeSymbols(w io.Writer, g *aig.Graph) {
	for i := 0; i < g.NumPIs(); i++ {
		if name := g.PIName(i); name != "" {
			fmt.Fprintf(w, "i%d %s\n", i, name)
		}
	}
	for i := 0; i < g.NumPOs(); i++ {
		if name := g.POName(i); name != "" {
			fmt.Fprintf(w, "o%d %s\n", i, name)
		}
	}
	if g.Name != "" {
		fmt.Fprintf(w, "c\n%s\n", g.Name)
	}
}

func writeUvarint(w *bufio.Writer, x uint32) {
	for x >= 0x80 {
		w.WriteByte(byte(x) | 0x80)
		x >>= 7
	}
	w.WriteByte(byte(x))
}

// Read parses an AIGER file in either format, auto-detected from the magic.
func Read(r io.Reader) (*aig.Graph, error) {
	br := bufio.NewReader(r)
	header, err := readLine(br)
	if err != nil && header == "" {
		return nil, fmt.Errorf("aiger: reading header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) < 6 {
		return nil, fmt.Errorf("aiger: short header %q", strings.TrimSpace(header))
	}
	nums := make([]int, 5)
	for i, f := range fields[1:6] {
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", f)
		}
		nums[i] = v
	}
	m, in, latches, out, ands := nums[0], nums[1], nums[2], nums[3], nums[4]
	if latches != 0 {
		return nil, fmt.Errorf("aiger: sequential files are not supported (%d latches)", latches)
	}
	if m != in+ands {
		return nil, fmt.Errorf("aiger: inconsistent header: M=%d != I+A=%d", m, in+ands)
	}
	if m > MaxNodes {
		return nil, fmt.Errorf("%w: %d nodes (limit %d)", ErrTooLarge, m, MaxNodes)
	}
	if out > MaxNodes {
		return nil, fmt.Errorf("%w: %d outputs (limit %d)", ErrTooLarge, out, MaxNodes)
	}
	switch fields[0] {
	case "aag":
		return readASCII(br, in, out, ands)
	case "aig":
		return readBinary(br, in, out, ands)
	}
	return nil, fmt.Errorf("aiger: unknown magic %q", fields[0])
}

// body holds the parsed structure before graph construction.
type body struct {
	inputs  []uint32
	outputs []uint32
	ands    [][3]uint32 // lhs, rhs0, rhs1
}

func readASCII(br *bufio.Reader, in, out, ands int) (*aig.Graph, error) {
	b := &body{}
	readLits := func(n int, what string) ([]uint32, error) {
		lits := make([]uint32, n)
		for i := range lits {
			line, err := readLine(br)
			if err != nil && line == "" {
				return nil, fmt.Errorf("aiger: reading %s %d: %w", what, i, err)
			}
			v, err := strconv.ParseUint(strings.TrimSpace(line), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("aiger: bad %s literal %q", what, strings.TrimSpace(line))
			}
			lits[i] = uint32(v)
		}
		return lits, nil
	}
	var err error
	if b.inputs, err = readLits(in, "input"); err != nil {
		return nil, err
	}
	if b.outputs, err = readLits(out, "output"); err != nil {
		return nil, err
	}
	for i := 0; i < ands; i++ {
		line, err := readLine(br)
		if err != nil && line == "" {
			return nil, fmt.Errorf("aiger: reading and %d: %w", i, err)
		}
		parts := strings.Fields(line)
		if len(parts) != 3 {
			return nil, fmt.Errorf("aiger: bad and line %q", strings.TrimSpace(line))
		}
		var trip [3]uint32
		for j, p := range parts {
			v, err := strconv.ParseUint(p, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("aiger: bad and literal %q", p)
			}
			trip[j] = uint32(v)
		}
		b.ands = append(b.ands, trip)
	}
	names, comment := readSymbols(br)
	return build(b, in, names, comment)
}

func readBinary(br *bufio.Reader, in, out, ands int) (*aig.Graph, error) {
	b := &body{}
	for i := 0; i < in; i++ {
		b.inputs = append(b.inputs, uint32(i+1)<<1)
	}
	for i := 0; i < out; i++ {
		line, err := readLine(br)
		if err != nil && line == "" {
			return nil, fmt.Errorf("aiger: reading output %d: %w", i, err)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(line), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("aiger: bad output literal %q", strings.TrimSpace(line))
		}
		b.outputs = append(b.outputs, uint32(v))
	}
	for i := 0; i < ands; i++ {
		lhs := uint32(in+1+i) << 1
		d0, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("aiger: and %d: %v", i, err)
		}
		d1, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("aiger: and %d: %v", i, err)
		}
		r0 := lhs - d0
		r1 := r0 - d1
		b.ands = append(b.ands, [3]uint32{lhs, r0, r1})
	}
	names, comment := readSymbols(br)
	return build(b, in, names, comment)
}

func readUvarint(br *bufio.Reader) (uint32, error) {
	var x uint32
	var shift uint
	for {
		c, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		x |= uint32(c&0x7F) << shift
		if c&0x80 == 0 {
			return x, nil
		}
		shift += 7
		if shift > 28 {
			return 0, fmt.Errorf("varint overflow")
		}
	}
}

// readSymbols parses the optional symbol table and comment section. A limit
// violation (an over-long symbol line) aborts the scan; the names collected
// so far are kept — symbols are advisory, structure is already parsed.
func readSymbols(br *bufio.Reader) (map[string]string, string) {
	names := map[string]string{}
	var comment []string
	inComment := false
	for {
		line, err := readLine(br)
		if line == "" && err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		if inComment {
			comment = append(comment, line)
			continue
		}
		if line == "c" {
			inComment = true
			continue
		}
		if i := strings.IndexByte(line, ' '); i > 0 {
			names[line[:i]] = line[i+1:]
		}
		if err != nil {
			break
		}
	}
	return names, strings.Join(comment, "\n")
}

// build constructs the graph from a parsed body.
func build(b *body, in int, names map[string]string, comment string) (*aig.Graph, error) {
	g := aig.New()
	g.Name = comment
	lits := make([]aig.Lit, in+len(b.ands)+1)
	defined := make([]bool, len(lits))
	lits[0], defined[0] = aig.LitFalse, true

	for i, l := range b.inputs {
		if l != uint32(i+1)<<1 {
			return nil, fmt.Errorf("aiger: non-contiguous input literal %d", l)
		}
		lits[i+1] = g.AddPI(names[fmt.Sprintf("i%d", i)])
		defined[i+1] = true
	}
	resolve := func(l uint32) (aig.Lit, error) {
		v := l >> 1
		if int(v) >= len(lits) {
			return 0, fmt.Errorf("aiger: literal %d out of range", l)
		}
		if !defined[v] {
			return 0, fmt.Errorf("aiger: literal %d used before definition", l)
		}
		return lits[v].NotCond(l&1 == 1), nil
	}
	for _, trip := range b.ands {
		lhs, r0, r1 := trip[0], trip[1], trip[2]
		if lhs&1 == 1 || lhs>>1 == 0 {
			return nil, fmt.Errorf("aiger: invalid and lhs %d", lhs)
		}
		if int(lhs>>1) >= len(lits) {
			return nil, fmt.Errorf("aiger: and lhs %d out of variable range", lhs)
		}
		if r0 >= lhs || r1 >= lhs {
			return nil, fmt.Errorf("aiger: and %d not topologically sorted", lhs)
		}
		f0, err := resolve(r0)
		if err != nil {
			return nil, err
		}
		f1, err := resolve(r1)
		if err != nil {
			return nil, err
		}
		lits[lhs>>1] = g.And(f0, f1)
		defined[lhs>>1] = true
	}
	for i, l := range b.outputs {
		po, err := resolve(l)
		if err != nil {
			return nil, err
		}
		g.AddPO(po, names[fmt.Sprintf("o%d", i)])
	}
	return g, nil
}
