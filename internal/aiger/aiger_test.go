package aiger

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
	"repro/internal/sim"
)

func equalFunction(t *testing.T, a, b *aig.Graph) bool {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	p := sim.Uniform(a.NumPIs(), 8, 123)
	va := sim.Simulate(a, p)
	vb := sim.Simulate(b, p)
	for i := 0; i < a.NumPOs(); i++ {
		wa := va.LitInto(a.PO(i), make([]uint64, p.Words))
		wb := vb.LitInto(b.PO(i), make([]uint64, p.Words))
		for w := range wa {
			if wa[w] != wb[w] {
				return false
			}
		}
	}
	return true
}

func TestRoundTripBothFormats(t *testing.T) {
	for _, name := range []string{"rca32", "mtp8", "priority", "voter", "alu4"} {
		g := bench.Get(name)
		for _, format := range []string{"aag", "aig"} {
			var buf bytes.Buffer
			if err := Write(&buf, g, format); err != nil {
				t.Fatalf("%s/%s: %v", name, format, err)
			}
			g2, err := Read(&buf)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, format, err)
			}
			if !equalFunction(t, g, g2) {
				t.Fatalf("%s/%s: function changed in round trip", name, format)
			}
			if g2.NumAnds() > g.NumAnds() {
				t.Fatalf("%s/%s: AND count grew: %d -> %d", name, format, g.NumAnds(), g2.NumAnds())
			}
		}
	}
}

func TestSymbolsPreserved(t *testing.T) {
	g := aig.New()
	g.Name = "mydesign"
	a := g.AddPI("alpha")
	b := g.AddPI("beta")
	g.AddPO(g.And(a, b), "gamma")
	var buf bytes.Buffer
	if err := Write(&buf, g, "aag"); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.PIName(0) != "alpha" || g2.PIName(1) != "beta" || g2.POName(0) != "gamma" {
		t.Fatalf("symbols lost: %q %q %q", g2.PIName(0), g2.PIName(1), g2.POName(0))
	}
	if g2.Name != "mydesign" {
		t.Fatalf("comment lost: %q", g2.Name)
	}
}

func TestKnownASCIIVector(t *testing.T) {
	// The canonical AIGER and-gate example: f = a & b.
	src := "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPIs() != 2 || g.NumPOs() != 1 || g.NumAnds() != 1 {
		t.Fatalf("parsed shape wrong: %s", g)
	}
	p := sim.Exhaustive(2)
	v := sim.Simulate(g, p)
	for m := 0; m < 4; m++ {
		if v.LitBit(g.PO(0), m) != (m == 3) {
			t.Fatalf("and(%02b) wrong", m)
		}
	}
}

func TestConstantOutputs(t *testing.T) {
	// Outputs tied to constants: literal 0 (false) and 1 (true).
	src := "aag 1 1 0 2 0\n2\n0\n1\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.PO(0) != aig.LitFalse || g.PO(1) != aig.LitTrue {
		t.Fatalf("constant outputs wrong: %v %v", g.PO(0), g.PO(1))
	}
}

func TestComplementedOutput(t *testing.T) {
	// f = NAND(a,b): output literal 7 (complement of and var 3).
	src := "aag 3 2 0 1 1\n2\n4\n7\n6 4 2\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	v := sim.Simulate(g, sim.Exhaustive(2))
	for m := 0; m < 4; m++ {
		if v.LitBit(g.PO(0), m) != (m != 3) {
			t.Fatalf("nand(%02b) wrong", m)
		}
	}
}

func TestRejectsSequential(t *testing.T) {
	src := "aag 1 0 1 0 0\n2 3\n"
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Fatal("expected error for latches")
	}
}

func TestRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"magic":          "xyz 1 1 0 0 0\n",
		"short":          "aag 1 1\n",
		"m-inconsistent": "aag 5 1 0 0 1\n2\n4 2 2\n",
		"unsorted":       "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 2 2\n",
		"undefined":      "aag 3 1 0 1 1\n2\n6\n6 4 2\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestBinaryVarintBoundary(t *testing.T) {
	// A graph large enough to force multi-byte varint deltas.
	g := aig.New()
	xs := g.AddPIs(12, "x")
	acc := xs[0]
	for i := 1; i < len(xs); i++ {
		acc = g.Xor(acc, xs[i]) // xors create spread-out literal deltas
	}
	g.AddPO(acc, "parity")
	var buf bytes.Buffer
	if err := Write(&buf, g, "aig"); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalFunction(t, g, g2) {
		t.Fatal("binary round trip broke parity function")
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	g := aig.New()
	if err := Write(&bytes.Buffer{}, g, "bogus"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
