// Package espresso implements a truth-table-backed two-level logic
// minimizer in the style of Espresso: starting from an initial irredundant
// cover, it iterates EXPAND (grow cubes toward primes against the off-set),
// IRREDUNDANT (drop covered cubes) and REDUCE (shrink cubes to open new
// expansion directions) until the cover cost stops improving.
//
// The paper derives its approximate resubstitution functions with Espresso;
// this package provides the same service for the small (≤16-input)
// incompletely specified functions that arise there, with exact containment
// checks done on bit-parallel truth tables.
package espresso

import (
	"repro/internal/tt"
)

// Cost summarizes a cover: cube count first, literal count second.
type Cost struct {
	Cubes    int
	Literals int
}

// Less orders costs lexicographically (fewer cubes, then fewer literals).
func (c Cost) Less(o Cost) bool {
	if c.Cubes != o.Cubes {
		return c.Cubes < o.Cubes
	}
	return c.Literals < o.Literals
}

// CoverCost computes the cost of a cover.
func CoverCost(cov tt.Cover) Cost {
	return Cost{Cubes: len(cov), Literals: cov.NumLits()}
}

// Minimize returns a minimized cover F with on ⊆ F ⊆ on ∪ dc. on and dc
// must be disjoint tables over the same variables.
func Minimize(on, dc tt.Table) tt.Cover {
	n := on.NumVars()
	upper := on.Or(dc)
	cov := tt.ISOP(on, dc)
	best := append(tt.Cover(nil), cov...)
	bestCost := CoverCost(best)

	for iter := 0; iter < 8; iter++ {
		cov = expand(cov, upper, n)
		cov = irredundant(cov, on, n)
		cost := CoverCost(cov)
		if cost.Less(bestCost) {
			best = append(tt.Cover(nil), cov...)
			bestCost = cost
		}
		reduced := reduce(cov, on, n)
		if coversEqual(reduced, cov) {
			break
		}
		cov = reduced
	}
	return best
}

// expand greedily removes literals from each cube while the cube stays
// inside the upper bound (onset ∪ dcset).
func expand(cov tt.Cover, upper tt.Table, n int) tt.Cover {
	out := make(tt.Cover, 0, len(cov))
	for _, c := range cov {
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if c.Pos&bit == 0 && c.Neg&bit == 0 {
				continue
			}
			enlarged := c
			enlarged.Pos &^= bit
			enlarged.Neg &^= bit
			if enlarged.Table(n).AndNot(upper).IsConst0() {
				c = enlarged
			}
		}
		out = append(out, c)
	}
	return out
}

// irredundant removes cubes whose onset contribution is covered by the
// remaining cubes, scanning largest cubes last so specific cubes are
// preferred for removal.
func irredundant(cov tt.Cover, on tt.Table, n int) tt.Cover {
	out := append(tt.Cover(nil), cov...)
	for i := 0; i < len(out); i++ {
		rest := make(tt.Cover, 0, len(out)-1)
		rest = append(rest, out[:i]...)
		rest = append(rest, out[i+1:]...)
		if on.AndNot(rest.Table(n)).IsConst0() {
			out = rest
			i--
		}
	}
	return out
}

// reduce shrinks every cube to the supercube of the onset part only it
// covers, dropping cubes that cover nothing exclusively. Cubes are updated
// sequentially against the current (partially reduced) cover so the cover
// as a whole keeps covering the onset.
func reduce(cov tt.Cover, on tt.Table, n int) tt.Cover {
	out := append(tt.Cover(nil), cov...)
	for i := 0; i < len(out); i++ {
		rest := make(tt.Cover, 0, len(out)-1)
		rest = append(rest, out[:i]...)
		rest = append(rest, out[i+1:]...)
		needed := out[i].Table(n).And(on).AndNot(rest.Table(n))
		if needed.IsConst0() {
			out = rest
			i--
			continue
		}
		out[i] = supercube(needed, n)
	}
	return out
}

// supercube returns the smallest cube containing all minterms of t.
func supercube(t tt.Table, n int) tt.Cube {
	var c tt.Cube
	for v := 0; v < n; v++ {
		x := tt.Var(n, v)
		if t.AndNot(x).IsConst0() {
			c = c.WithPos(v) // all minterms have x_v = 1
		} else if t.And(x).IsConst0() {
			c = c.WithNeg(v) // all minterms have x_v = 0
		}
	}
	return c
}

func coversEqual(a, b tt.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
