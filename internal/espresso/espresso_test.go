package espresso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

func randomTable(rng *rand.Rand, n int) tt.Table {
	t := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		if rng.Intn(2) == 1 {
			t.Set(m, true)
		}
	}
	return t
}

func TestMinimizeInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		on := randomTable(rng, n)
		dc := randomTable(rng, n).AndNot(on)
		cov := Minimize(on, dc)
		f := cov.Table(n)
		if !on.AndNot(f).IsConst0() {
			t.Fatalf("trial %d: onset not covered", trial)
		}
		if !f.AndNot(on.Or(dc)).IsConst0() {
			t.Fatalf("trial %d: cover leaves the interval", trial)
		}
	}
}

func TestMinimizeNeverWorseThanISOP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		on := randomTable(rng, n)
		dc := randomTable(rng, n).AndNot(on)
		isop := tt.ISOP(on, dc)
		mini := Minimize(on, dc)
		if CoverCost(mini).Cubes > CoverCost(isop).Cubes {
			t.Fatalf("trial %d: espresso (%d cubes) worse than ISOP (%d cubes)",
				trial, len(mini), len(isop))
		}
	}
}

func TestMinimizeKnownFunctions(t *testing.T) {
	// Majority of 3: 3 cubes of 2 literals is optimal.
	n := 3
	maj := tt.New(n)
	for m := 0; m < 8; m++ {
		if m&1+m>>1&1+m>>2&1 >= 2 {
			maj.Set(m, true)
		}
	}
	cov := Minimize(maj, tt.New(n))
	if len(cov) != 3 || cov.NumLits() != 6 {
		t.Fatalf("maj3 cover = %v (%d cubes, %d lits), want 3 cubes 6 lits",
			cov, len(cov), cov.NumLits())
	}

	// f = ab + a'b' with dc everywhere else over 3 vars collapses further.
	on := tt.New(2)
	on.Set(0b00, true)
	on.Set(0b11, true)
	cov = Minimize(on, tt.New(2))
	if len(cov) != 2 {
		t.Fatalf("xnor cover = %v", cov)
	}
}

func TestMinimizeUsesDontCares(t *testing.T) {
	// on = minterm 0, dc = the rest: a single tautology cube suffices.
	n := 4
	on := tt.New(n)
	on.Set(0, true)
	dc := tt.Ones(n).AndNot(on)
	cov := Minimize(on, dc)
	if len(cov) != 1 || cov[0].NumLits() != 0 {
		t.Fatalf("cover = %v, want the tautology cube", cov)
	}
}

func TestMinimizeConstants(t *testing.T) {
	n := 3
	if cov := Minimize(tt.New(n), tt.New(n)); len(cov) != 0 {
		t.Fatalf("const0 cover = %v", cov)
	}
	cov := Minimize(tt.Ones(n), tt.New(n))
	if len(cov) != 1 || cov[0].NumLits() != 0 {
		t.Fatalf("const1 cover = %v", cov)
	}
}

func TestCubesArePrimeAfterMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		on := randomTable(rng, n)
		dc := randomTable(rng, n).AndNot(on)
		upper := on.Or(dc)
		for _, c := range Minimize(on, dc) {
			for v := 0; v < n; v++ {
				bit := uint32(1) << uint(v)
				if c.Pos&bit == 0 && c.Neg&bit == 0 {
					continue
				}
				bigger := c
				bigger.Pos &^= bit
				bigger.Neg &^= bit
				if bigger.Table(n).AndNot(upper).IsConst0() {
					t.Fatalf("trial %d: cube %v not prime", trial, c)
				}
			}
		}
	}
}

func TestIrredundantAfterMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		on := randomTable(rng, n)
		dc := randomTable(rng, n).AndNot(on)
		cov := Minimize(on, dc)
		for i := range cov {
			rest := make(tt.Cover, 0, len(cov)-1)
			rest = append(rest, cov[:i]...)
			rest = append(rest, cov[i+1:]...)
			if on.AndNot(rest.Table(n)).IsConst0() {
				t.Fatalf("trial %d: cube %d redundant", trial, i)
			}
		}
	}
}

func TestSupercube(t *testing.T) {
	n := 4
	tab := tt.New(n)
	tab.Set(0b0101, true)
	tab.Set(0b0111, true)
	c := supercube(tab, n)
	// Bits 0 and 2 are always 1, bit 3 always 0, bit 1 varies.
	if c.Pos != 0b0101 || c.Neg != 0b1000 {
		t.Fatalf("supercube = %+v", c)
	}
}

func TestMinimizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		on := randomTable(r, n)
		dc := randomTable(r, n).AndNot(on)
		cov := Minimize(on, dc)
		ft := cov.Table(n)
		return on.AndNot(ft).IsConst0() && ft.AndNot(on.Or(dc)).IsConst0()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
