package espresso

import (
	"testing"

	"repro/internal/tt"
)

// FuzzEspresso feeds arbitrary sampled incompletely specified functions to
// the iterative minimizer and checks the contract Minimize documents:
// on ⊆ F ⊆ on ∪ dc — every onset minterm covered, no offset minterm
// touched — and that the result never costs more than the ISOP cover it
// starts from.
func FuzzEspresso(f *testing.F) {
	f.Add(uint8(3), uint64(0b1010_0101), ^uint64(0))
	f.Add(uint8(6), uint64(0xDEADBEEF_01234567), uint64(0xFFFF0000_FFFF0000))
	f.Add(uint8(1), uint64(0b01), uint64(0b11))
	f.Add(uint8(5), uint64(0x0123_4567), uint64(0x89AB_CDEF))

	f.Fuzz(func(t *testing.T, nRaw uint8, on, care uint64) {
		n := 1 + int(nRaw)%6
		mask := uint64(1)<<(1<<uint(n)) - 1
		care &= mask
		on &= care

		onset, dc := tt.FromOnCare(n, on, care)
		cover := Minimize(onset, dc)

		tbl := cover.Table(n)
		if missed := onset.AndNot(tbl); !missed.IsConst0() {
			t.Fatalf("cover %v misses onset minterms %v", cover, missed)
		}
		if hit := tbl.AndNot(onset.Or(dc)); !hit.IsConst0() {
			t.Fatalf("cover %v intersects the offset at %v", cover, hit)
		}
		if isop := CoverCost(tt.ISOP(onset, dc)); CoverCost(cover).Less(isop) == false &&
			CoverCost(cover) != isop {
			t.Fatalf("minimized cost %+v worse than ISOP cost %+v", CoverCost(cover), isop)
		}
	})
}
