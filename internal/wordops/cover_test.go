package wordops

import (
	"math/rand"
	"testing"
)

func TestTailMask(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{64, ^uint64(0)}, {128, ^uint64(0)}, {1, 1}, {63, 1<<63 - 1},
		{65, 1}, {100, 1<<36 - 1},
	}
	for _, c := range cases {
		if got := TailMask(c.n); got != c.want {
			t.Errorf("TailMask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

// coverScanRef is the per-pattern specification of CoverScan.
func coverScanRef(divs [][]uint64, dinv []uint64, tgt []uint64, tinv uint64, valid int) (on, care uint64, ok bool) {
	for p := 0; p < valid; p++ {
		w, b := p>>6, uint(p)&63
		key := 0
		for j := range divs {
			if (divs[j][w]^dinv[j])>>b&1 == 1 {
				key |= 1 << uint(j)
			}
		}
		v := (tgt[w]^tinv)>>b&1 == 1
		bit := uint64(1) << uint(key)
		if care&bit != 0 {
			if (on&bit != 0) != v {
				return 0, 0, false
			}
			continue
		}
		care |= bit
		if v {
			on |= bit
		}
	}
	return on, care, true
}

// TestCoverScanMatchesReference property-tests the word-parallel minterm
// scan against the per-pattern reference on random words, random divisor
// complements and valid counts including non-multiples of 64. Tail bits are
// random garbage, so any leak past the valid count shows up as a mismatch.
func TestCoverScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		k := rng.Intn(7)
		words := 1 + rng.Intn(4)
		valid := 1 + rng.Intn(64*words)
		divs := make([][]uint64, k)
		dinv := make([]uint64, k)
		for j := range divs {
			divs[j] = make([]uint64, words)
			for w := range divs[j] {
				divs[j][w] = rng.Uint64()
			}
			if rng.Intn(2) == 0 {
				dinv[j] = ^uint64(0)
			}
		}
		tgt := make([]uint64, words)
		for w := range tgt {
			tgt[w] = rng.Uint64()
		}
		var tinv uint64
		if rng.Intn(2) == 0 {
			tinv = ^uint64(0)
		}
		// Bias some trials toward feasibility: make the target a function
		// of the first divisor so conflicts cannot arise from it alone.
		if k > 0 && trial%3 == 0 {
			copy(tgt, divs[0])
			tinv = dinv[0]
		}

		on, care, ok := CoverScan(divs, dinv, tgt, tinv, valid)
		wantOn, wantCare, wantOK := coverScanRef(divs, dinv, tgt, tinv, valid)
		if ok != wantOK {
			t.Fatalf("trial %d (k=%d words=%d valid=%d): ok=%v, reference %v",
				trial, k, words, valid, ok, wantOK)
		}
		if ok && (on != wantOn || care != wantCare) {
			t.Fatalf("trial %d (k=%d words=%d valid=%d): on/care %#x/%#x, reference %#x/%#x",
				trial, k, words, valid, on, care, wantOn, wantCare)
		}
	}
}
