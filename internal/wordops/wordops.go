// Package wordops provides the shared word-level kernels and the reusable
// word-buffer pool behind the simulation-bound hot paths.
//
// Bit-parallel simulation, incremental re-simulation and batch error
// estimation all reduce to a handful of elementwise operations over
// []uint64 value words. Keeping those loops in one place gives the rest of
// the repository a single point to add SIMD-friendly kernels later, and the
// pool turns the per-call `make([]uint64, words)` churn of the hot stages
// into steady-state-allocation-free buffer reuse.
package wordops

import (
	"math/bits"
	"sync"
)

// Equal reports whether a and b hold the same words. a and b must have the
// same length.
//
//alsrac:hotpath
func Equal(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Not writes the elementwise complement of src into dst. The slices must
// have the same length and may not overlap partially (dst == src is fine).
//
//alsrac:hotpath
func Not(dst, src []uint64) {
	for i := range dst {
		dst[i] = ^src[i]
	}
}

// CopyOrNot copies src into dst, complementing every word when compl is
// true. This is the literal-dereference kernel: a complemented AIG edge
// reads the complemented value vector.
//
//alsrac:hotpath
func CopyOrNot(dst, src []uint64, compl bool) {
	if compl {
		Not(dst, src)
		return
	}
	copy(dst, src)
}

// And writes the conjunction of a and b into dst, complementing a when c0
// is set and b when c1 is set — the four fanin-polarity cases of an AIG
// AND node in one kernel. All slices must have the same length.
//
//alsrac:hotpath
func And(dst, a, b []uint64, c0, c1 bool) {
	switch {
	case !c0 && !c1:
		for i := range dst {
			dst[i] = a[i] & b[i]
		}
	case c0 && !c1:
		for i := range dst {
			dst[i] = ^a[i] & b[i]
		}
	case !c0 && c1:
		for i := range dst {
			dst[i] = a[i] &^ b[i]
		}
	default:
		for i := range dst {
			dst[i] = ^(a[i] | b[i])
		}
	}
}

// AndDiff is the incremental-resimulation kernel: it computes the same
// four-polarity conjunction as And, writes it into dst, and reports whether
// any word of dst actually changed. Fusing the write with the comparison
// lets the dirty-TFO propagation decide in one pass over the words whether
// a node's fanouts need re-evaluation. All slices must have the same length.
//
//alsrac:hotpath
func AndDiff(dst, a, b []uint64, c0, c1 bool) bool {
	var m0, m1 uint64
	if c0 {
		m0 = ^uint64(0)
	}
	if c1 {
		m1 = ^uint64(0)
	}
	var diff uint64
	for i := range dst {
		w := (a[i] ^ m0) & (b[i] ^ m1)
		diff |= w ^ dst[i]
		dst[i] = w
	}
	return diff != 0
}

// SelectFlip is the batch-estimation merge kernel: on the bit positions
// where old and new differ the output takes the flipped value yf, elsewhere
// the current value y. All slices must have the same length.
//
//alsrac:hotpath
func SelectFlip(dst, y, yf, old, new []uint64) {
	for i := range dst {
		c := old[i] ^ new[i]
		dst[i] = y[i]&^c | yf[i]&c
	}
}

// TailMask returns the mask of meaningful bits in the last simulation word
// of a run with n valid patterns: bits [0, n mod 64), or all ones when n is
// a multiple of 64. Bits at or beyond the valid count carry arbitrary
// values and must never influence pattern-granular results.
func TailMask(n int) uint64 {
	if r := uint(n) & 63; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// CoverScan classifies the first valid patterns of a target signal by the
// valuation ("key") of up to six divisor signals, entirely at word
// granularity. divs[j] holds the value words of divisor j, complemented by
// XOR with dinv[j] (all-ones or zero); tgt/tinv encode the target the same
// way. Bit m of the returned masks tells whether divisor valuation m was
// observed with the target at 1 (onset) or observed at all (care). ok is
// false when some valuation occurs with both target values — the sampled
// resubstitution feasibility check — detected with an early exit on the
// first conflicting word.
//
// The scan performs O(2^k · words) word operations in place of the
// O(valid · k) single-bit probes of a per-pattern loop: per word, the 2^k
// minterm-indicator masks are derived by iterative splitting (each divisor
// halves every mask into an AND with the divisor's word and an AND with its
// complement).
//
//alsrac:hotpath
func CoverScan(divs [][]uint64, dinv []uint64, tgt []uint64, tinv uint64, valid int) (onset, care uint64, ok bool) {
	k := len(divs)
	if k > 6 {
		panic("wordops: CoverScan supports at most 6 divisors")
	}
	words := (valid + 63) >> 6
	var on, off uint64
	for w := 0; w < words; w++ {
		vmask := ^uint64(0)
		if w == words-1 {
			vmask = TailMask(valid)
		}
		t := tgt[w] ^ tinv
		var masks [64]uint64
		masks[0] = vmask
		n := 1
		for j := 0; j < k; j++ {
			dv := divs[j][w] ^ dinv[j]
			for i := 0; i < n; i++ {
				m := masks[i]
				masks[n+i] = m & dv // key bit j = 1
				masks[i] = m &^ dv  // key bit j = 0
			}
			n <<= 1
		}
		for key := 0; key < n; key++ {
			m := masks[key]
			if m == 0 {
				continue
			}
			bit := uint64(1) << uint(key)
			if m&t != 0 {
				on |= bit
			}
			if m&^t != 0 {
				off |= bit
			}
		}
		if on&off != 0 {
			return 0, 0, false
		}
	}
	return on, on | off, true
}

// --- slice pools -----------------------------------------------------------
//
// Buffers are bucketed by power-of-two capacity: get rounds the requested
// length up to the next power of two, so a buffer returned by put lands in
// the bucket get draws from. Buckets are bounded so that transient bursts
// cannot pin unbounded memory. Besides the value-word pool there are pools
// for the graph-sized scaffolding of the incremental resimulator (int32
// fanout lists and heaps, bool marks, overlay pointer rows), so a
// per-iteration batch setup allocates nothing in steady state either.

type bucket[T any] struct {
	mu   sync.Mutex
	free [][]T
}

// pool is a bucketed freelist for []T. elemShift is log2 of T's size in
// bytes, used to bound each bucket by retained bytes. clearOnPut zeroes
// returned slices — required when T contains pointers, so a pooled buffer
// cannot pin the memory it used to reference.
type pool[T any] struct {
	buckets    [33]bucket[T]
	elemShift  uint
	clearOnPut bool
}

// bucketCap bounds a bucket by retained bytes (~4 MiB per bucket) rather
// than a flat entry count: one ranking pass keeps hundreds of small
// node-vector buffers alive at once (PO rows plus the resimulation
// overlay), and dropping them on put would turn every following pass into
// an allocation storm. Huge buffers keep a floor of 4 entries.
func (p *pool[T]) bucketCap(idx int) int {
	const targetBytes = 4 << 20
	n := targetBytes >> (p.elemShift + uint(idx))
	if n < 4 {
		return 4
	}
	if n > 1024 {
		return 1024
	}
	return n
}

// get returns a slice of length n, contents unspecified.
func (p *pool[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	idx := bits.Len(uint(n - 1))
	b := &p.buckets[idx]
	b.mu.Lock()
	if k := len(b.free); k > 0 {
		s := b.free[k-1]
		b.free[k-1] = nil
		b.free = b.free[:k-1]
		b.mu.Unlock()
		return s[:n]
	}
	b.mu.Unlock()
	return make([]T, n, 1<<idx)
}

// put returns a slice obtained from get. Slices whose capacity is not a
// power of two (i.e. not pool-allocated) are silently dropped.
func (p *pool[T]) put(s []T) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	if p.clearOnPut {
		s = s[:c] // clear the FULL capacity: stale entries beyond len would survive
		var zero T
		for i := range s {
			s[i] = zero
		}
	}
	idx := bits.Len(uint(c - 1))
	b := &p.buckets[idx]
	b.mu.Lock()
	if len(b.free) < p.bucketCap(idx) {
		b.free = append(b.free, s[:0])
	}
	b.mu.Unlock()
}

var (
	words    = pool[uint64]{elemShift: 3}
	ints32   = pool[int32]{elemShift: 2}
	booleans = pool[bool]{elemShift: 0}
	vecPtrs  = pool[[]uint64]{elemShift: 3, clearOnPut: true} // header is 24 bytes; shift 3 is close enough
)

// Get returns a word slice of length n drawn from the pool, allocating a
// fresh one when the pool is empty. The contents are NOT zeroed — callers
// must fully overwrite the slice before reading it.
func Get(n int) []uint64 { return words.get(n) }

// GetZero returns a zeroed word slice of length n from the pool.
func GetZero(n int) []uint64 {
	s := Get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Put returns a slice obtained from Get to the pool. Slices whose capacity
// is not a power of two (i.e. not pool-allocated) are silently dropped, so
// Put is always safe to call. The caller must not use the slice afterwards.
func Put(s []uint64) { words.put(s) }

// GetI32 returns an int32 slice of length n from the pool, contents
// unspecified.
func GetI32(n int) []int32 { return ints32.get(n) }

// PutI32 returns a slice obtained from GetI32 to the pool.
func PutI32(s []int32) { ints32.put(s) }

// GetBoolZero returns an all-false bool slice of length n from the pool.
func GetBoolZero(n int) []bool {
	s := booleans.get(n)
	for i := range s {
		s[i] = false
	}
	return s
}

// PutBool returns a slice obtained from GetBoolZero to the pool.
func PutBool(s []bool) { booleans.put(s) }

// GetVecsZero returns an all-nil slice of vector pointers of length n from
// the pool — the overlay row of an incremental resimulation, or a batch
// estimator's PO-row headers.
func GetVecsZero(n int) [][]uint64 {
	// All-nil by construction: fresh slices come zeroed from make, pooled
	// ones were cleared on PutVecs.
	return vecPtrs.get(n)
}

// PutVecs returns a slice obtained from GetVecsZero to the pool. The
// contained vectors are NOT released — the caller owns them.
func PutVecs(s [][]uint64) { vecPtrs.put(s) }
