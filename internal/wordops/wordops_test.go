package wordops

import (
	"math/rand"
	"testing"
)

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = rng.Uint64()
	}
	return w
}

func TestKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randWords(rng, 9)
	b := randWords(rng, 9)
	dst := make([]uint64, 9)

	if !Equal(a, a) {
		t.Fatal("Equal(a, a) = false")
	}
	if Equal(a, b) {
		t.Fatal("Equal on random words = true")
	}

	Not(dst, a)
	for i := range a {
		if dst[i] != ^a[i] {
			t.Fatalf("Not word %d", i)
		}
	}

	CopyOrNot(dst, a, false)
	if !Equal(dst, a) {
		t.Fatal("CopyOrNot plain")
	}
	CopyOrNot(dst, a, true)
	for i := range a {
		if dst[i] != ^a[i] {
			t.Fatal("CopyOrNot complemented")
		}
	}

	for _, c0 := range []bool{false, true} {
		for _, c1 := range []bool{false, true} {
			And(dst, a, b, c0, c1)
			for i := range dst {
				x, y := a[i], b[i]
				if c0 {
					x = ^x
				}
				if c1 {
					y = ^y
				}
				if dst[i] != x&y {
					t.Fatalf("And(c0=%v, c1=%v) word %d", c0, c1, i)
				}
			}
		}
	}

	for _, c0 := range []bool{false, true} {
		for _, c1 := range []bool{false, true} {
			And(dst, a, b, c0, c1)
			cp := append([]uint64(nil), dst...)
			if AndDiff(dst, a, b, c0, c1) {
				t.Fatalf("AndDiff(c0=%v, c1=%v) reported a change on identical input", c0, c1)
			}
			if !Equal(dst, cp) {
				t.Fatalf("AndDiff(c0=%v, c1=%v) result differs from And", c0, c1)
			}
			dst[3] ^= 1 << 17
			if !AndDiff(dst, a, b, c0, c1) {
				t.Fatalf("AndDiff(c0=%v, c1=%v) missed a changed word", c0, c1)
			}
			if !Equal(dst, cp) {
				t.Fatalf("AndDiff(c0=%v, c1=%v) did not rewrite the changed word", c0, c1)
			}
		}
	}

	y := randWords(rng, 9)
	yf := randWords(rng, 9)
	old := randWords(rng, 9)
	new_ := randWords(rng, 9)
	SelectFlip(dst, y, yf, old, new_)
	for i := range dst {
		c := old[i] ^ new_[i]
		if dst[i] != y[i]&^c|yf[i]&c {
			t.Fatalf("SelectFlip word %d", i)
		}
	}
}

func TestPoolRoundTrip(t *testing.T) {
	s := Get(100)
	if len(s) != 100 {
		t.Fatalf("Get(100) len = %d", len(s))
	}
	if cap(s) != 128 {
		t.Fatalf("Get(100) cap = %d, want power of two 128", cap(s))
	}
	for i := range s {
		s[i] = ^uint64(0)
	}
	Put(s)

	// A smaller request from the same bucket must reuse the buffer (pool is
	// process-global, so merely check length/capacity invariants and that
	// GetZero clears whatever comes back).
	z := GetZero(70)
	if len(z) != 70 {
		t.Fatalf("GetZero(70) len = %d", len(z))
	}
	for i, w := range z {
		if w != 0 {
			t.Fatalf("GetZero word %d = %x", i, w)
		}
	}
	Put(z)

	// Non-power-of-two capacities are dropped, not pooled.
	Put(make([]uint64, 3, 7))

	// Degenerate sizes.
	if s := Get(0); s != nil {
		t.Fatalf("Get(0) = %v", s)
	}
	Put(nil)
	one := Get(1)
	if len(one) != 1 || cap(one) != 1 {
		t.Fatalf("Get(1) len/cap = %d/%d", len(one), cap(one))
	}
	Put(one)
}
