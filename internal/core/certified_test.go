package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/errest"
	"repro/internal/exact"
)

// runCertified drives a certified session to completion, collecting every
// event and post-hoc certifying each committed circuit state against an
// independent exhaustive checker built on the original graph.
func runCertified(t *testing.T, opts Options) (*Session, []Event) {
	t.Helper()
	g := rippleAdder(8)
	chk, err := exact.New(g, exact.Config{})
	if err != nil {
		t.Fatalf("post-hoc checker: %v", err)
	}
	bound := chk.EDThreshold(opts.MaxError)

	s := NewSession(g, opts)
	var events []Event
	for {
		ev, err := s.Step(context.Background())
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		events = append(events, ev)
		if ev.Kind == EventCertified {
			// The acceptance contract: every state the flow commits has an
			// exact maximum error within the bound, proven here by full
			// enumeration independent of the in-flow certificate.
			m, err := chk.MaxError(s.cur)
			if err != nil {
				t.Fatalf("iter %d: post-hoc measure: %v", ev.Iteration, err)
			}
			if m.MaxED > bound {
				t.Fatalf("iter %d: committed state has exact max ED %d > bound %d (cert said %.5g via %s)",
					ev.Iteration, m.MaxED, bound, ev.CertMaxErr, ev.CertBackend)
			}
		}
		if ev.Done {
			break
		}
		if len(events) > 10000 {
			t.Fatal("certified session did not terminate")
		}
	}
	return s, events
}

// TestCertifiedRunRespectsMaxError: with Options.MaxError set, every commit
// is an EventCertified whose circuit provably stays within the bound, the
// rejection counters agree across events, history, and the session, and the
// final result is itself within the bound.
func TestCertifiedRunRespectsMaxError(t *testing.T) {
	opts := sessionOpts(errest.ER)
	opts.Threshold = 0.10
	opts.MaxError = 0.02
	s, events := runCertified(t, opts)

	applied, certified, rejectedEvents := 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case EventApplied:
			t.Fatalf("iter %d: plain applied event in certified mode", ev.Iteration)
		case EventCertified:
			certified++
			if ev.CertBackend == "" {
				t.Fatalf("iter %d: certified event without a backend", ev.Iteration)
			}
			if ev.CertMaxErr > opts.MaxError {
				t.Fatalf("iter %d: certificate max error %v exceeds bound %v",
					ev.Iteration, ev.CertMaxErr, opts.MaxError)
			}
		case EventCertRejected:
			rejectedEvents++
			if ev.Applied {
				t.Fatalf("iter %d: rejection event marked applied", ev.Iteration)
			}
		}
		if ev.Applied {
			applied++
		}
	}
	if certified != applied {
		t.Fatalf("%d certified events but %d applied", certified, applied)
	}
	if certified == 0 {
		t.Fatal("certified run committed nothing — the test exercised no commits")
	}

	res := s.Result()
	if applied != res.Applied {
		t.Fatalf("%d applied events, result says %d", applied, res.Applied)
	}
	rejectedRecords := 0
	for _, rec := range res.History {
		if rec.Rejected {
			rejectedRecords++
			if rec.Applied {
				t.Fatalf("iter %d: history record both applied and rejected", rec.Iteration)
			}
		}
	}
	if rejectedRecords != s.CertRejections() || rejectedEvents != s.CertRejections() {
		t.Fatalf("rejections disagree: %d records, %d events, session says %d",
			rejectedRecords, rejectedEvents, s.CertRejections())
	}
	if stats := s.CertStats(); int(stats.Rejections) != s.CertRejections() {
		t.Fatalf("checker stats count %d rejections, session %d", stats.Rejections, s.CertRejections())
	}

	// The final best graph obeys the bound too (Result may return an earlier
	// snapshot than s.cur, so certify it separately).
	chk, err := exact.New(rippleAdder(8), exact.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := chk.MaxError(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxED > chk.EDThreshold(opts.MaxError) {
		t.Fatalf("final graph has exact max ED %d > bound %d", m.MaxED, chk.EDThreshold(opts.MaxError))
	}
}

// TestCertifiedZeroBoundKeepsFunction: MaxError = 0 with a permissive
// metric threshold turns certification into an exact-equivalence gate — the
// statistical flow keeps electing error-introducing winners, every one is
// rejected, and the result is functionally identical to the input.
func TestCertifiedZeroBoundKeepsFunction(t *testing.T) {
	opts := sessionOpts(errest.ER)
	opts.Threshold = 0.10
	// MaxError is only engaged when positive: a zero bound comes through the
	// smallest representable positive threshold instead. EDThreshold clamps
	// anything below one error-distance unit to an exact ED of 0.
	opts.MaxError = 1e-9
	s, _ := runCertified(t, opts)

	chk, err := exact.New(rippleAdder(8), exact.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := chk.MaxError(s.Result().Graph)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxED != 0 {
		t.Fatalf("zero-bound certified run changed the function: exact max ED %d", m.MaxED)
	}
	if s.CertRejections() == 0 {
		t.Fatal("expected the zero bound to reject at least one statistical winner")
	}
}

// TestCertifiedKillResume is the kill-and-resume contract for certified
// mode: a certified session snapshotted mid-run (including right after a
// rejection), discarded, and restored must finish with history — rejection
// flags included — rejection counter, and final AIG bitwise identical to
// the uninterrupted certified run.
func TestCertifiedKillResume(t *testing.T) {
	g := rippleAdder(8)
	opts := sessionOpts(errest.ER)
	opts.Threshold = 0.10
	opts.MaxError = 0.02

	want := NewSession(g, opts)
	for !want.Done() {
		if ev, err := want.Step(context.Background()); err != nil || ev.Done {
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			break
		}
	}
	wantRes := want.Result()

	for _, kill := range []int{0, 1, 2, 4, 8, 13} {
		s := NewSession(g, opts)
		for i := 0; i < kill && !s.Done(); i++ {
			if _, err := s.Step(context.Background()); err != nil {
				t.Fatalf("kill %d: step: %v", kill, err)
			}
		}
		var ckpt bytes.Buffer
		if err := s.Snapshot(&ckpt); err != nil {
			t.Fatalf("kill %d: snapshot: %v", kill, err)
		}
		s = nil // nothing survives but the checkpoint bytes

		r, err := Restore(bytes.NewReader(ckpt.Bytes()), opts)
		if err != nil {
			t.Fatalf("kill %d: restore: %v", kill, err)
		}
		for !r.Done() {
			if ev, err := r.Step(context.Background()); err != nil || ev.Done {
				if err != nil {
					t.Fatalf("kill %d: resumed step: %v", kill, err)
				}
				break
			}
		}
		got := r.Result()
		if got.FinalError != wantRes.FinalError || got.Iterations != wantRes.Iterations || got.Applied != wantRes.Applied {
			t.Fatalf("kill %d: result %v/%d/%d, want %v/%d/%d", kill,
				got.FinalError, got.Iterations, got.Applied,
				wantRes.FinalError, wantRes.Iterations, wantRes.Applied)
		}
		if r.CertRejections() != want.CertRejections() {
			t.Fatalf("kill %d: %d rejections after resume, want %d",
				kill, r.CertRejections(), want.CertRejections())
		}
		if !reflect.DeepEqual(got.History, wantRes.History) {
			t.Fatalf("kill %d: history differs after resume", kill)
		}
		if !bytes.Equal(graphBytes(t, got.Graph), graphBytes(t, wantRes.Graph)) {
			t.Fatalf("kill %d: final graph not bitwise identical", kill)
		}
	}
}
