package core

import (
	"context"
	"runtime"

	"repro/internal/aig"
	"repro/internal/errest"
	"repro/internal/opt"
	"repro/internal/resub"
	"repro/internal/sim"
)

// EventKind classifies what one Session.Step did.
type EventKind string

const (
	// EventApplied: the step committed the best candidate LAC.
	EventApplied EventKind = "applied"
	// EventNoCandidates: the generator produced no LACs this round
	// (Event.Shrunk reports whether N was scaled down as a consequence).
	EventNoCandidates EventKind = "no-candidates"
	// EventDepthReject: the best candidate was dropped by the delay
	// constraint (Options.MaxDepthRatio); the flow retries with fresh
	// patterns next step.
	EventDepthReject EventKind = "depth-reject"
	// EventThreshold: even the best candidate violates the error threshold
	// (Algorithm 3, line 7) — the session is finished after this step.
	EventThreshold EventKind = "threshold"
	// EventDone: the session had already finished; no work was performed.
	EventDone EventKind = "done"
)

// Event describes the outcome of one Session.Step. It is the unit of
// progress reporting: the service layer streams Events to clients as NDJSON.
type Event struct {
	Kind       EventKind `json:"kind"`
	Iteration  int       `json:"iteration"`
	Rounds     int       `json:"rounds"` // care-set rounds N in effect after the step
	Candidates int       `json:"candidates"`
	Applied    bool      `json:"applied"`
	Err        float64   `json:"err"`  // cumulative error after the step
	Ands       int       `json:"ands"` // AND count after the step
	Shrunk     bool      `json:"shrunk,omitempty"`
	Done       bool      `json:"done"`
	Reason     string    `json:"reason,omitempty"` // termination reason when Done
}

// Termination reasons reported in Event.Reason.
const (
	ReasonStall     = "stall"     // Options.MaxStall iterations without progress
	ReasonThreshold = "threshold" // best candidate exceeds the error threshold
	ReasonBudget    = "budget"    // cumulative error exceeds the threshold
)

// Session is the resumable form of the ALSRAC flow: Run unrolled into an
// explicit state machine. Each Step performs one Algorithm 3 iteration
// (simulate care patterns → generate LACs → rank → apply, or shrink N), and
// the complete mutable state between steps — working AIG, best AIG, the
// pattern count N, the stall/streak counters and the accepted-LAC history —
// can be serialized with Snapshot and revived with Restore, bitwise
// faithfully: a restored session continues exactly as the original would
// have.
//
// A Session is not safe for concurrent use; the service layer gives each
// job's session to exactly one worker goroutine at a time.
type Session struct {
	opts    Options
	workers int
	nEval   int
	logf    func(string, ...any)

	orig     *aig.Graph // reference circuit (error is measured against it)
	evalPats *sim.Patterns
	ev       *errest.Evaluator

	cur      *aig.Graph
	best     *aig.Graph
	depthCap int
	n        int // care-set rounds N
	streak   int // consecutive empty-candidate iterations
	stall    int // consecutive iterations without an applied LAC
	curErr   float64

	iterations int
	applied    int
	history    []IterRecord

	done     bool
	reason   string
	finalErr float64 // cached by Result once done
	finalOK  bool
}

// NewSession prepares a Session over circuit g. g itself is never modified;
// it is retained as the error reference and serialized into snapshots.
func NewSession(g *aig.Graph, opts Options) *Session {
	if opts.Generator == nil {
		opts.Generator = ResubGenerator{Cfg: resub.Config{
			MaxLACsPerNode:  opts.MaxLACsPerNode,
			MaxReplaceTries: opts.MaxReplaceTries,
			MaxDivisors:     opts.MaxDivisors,
			UseEspresso:     opts.UseEspresso,
		}}
	}
	logf := opts.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Patterns == nil {
		opts.Patterns = sim.UniformN
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nEval := opts.EvalPatterns
	if nEval < 64 {
		nEval = 64
	}

	s := &Session{
		opts:    opts,
		workers: workers,
		nEval:   nEval,
		logf:    logf,
		orig:    g,
	}
	s.evalPats = opts.Patterns(g.NumPIs(), nEval, opts.Seed)
	s.ev = errest.NewEvaluatorWorkers(g, s.evalPats, opts.Metric, workers)

	s.cur = g.Sweep()
	s.best = s.cur
	if opts.MaxDepthRatio > 0 {
		s.depthCap = int(opts.MaxDepthRatio * float64(s.cur.Depth()))
	}
	s.n = opts.InitialRounds
	return s
}

// Step performs one Algorithm 3 iteration and reports what happened. When
// the flow has terminated it returns an Event with Done set (idempotently on
// further calls). A context cancellation aborts the step before any state is
// committed and returns ctx.Err(): the interrupted iteration leaves no trace,
// so a later Step — in this process or after Snapshot/Restore — redoes it
// identically.
func (s *Session) Step(ctx context.Context) (Event, error) {
	if s.done {
		return s.doneEvent(), nil
	}
	if err := ctx.Err(); err != nil {
		return Event{}, err
	}
	if s.curErr > s.opts.Threshold {
		return s.finish(ReasonBudget), nil
	}
	if s.stall >= s.opts.MaxStall {
		return s.finish(ReasonStall), nil
	}

	// The iteration number participates in the pattern seed; it is only
	// committed to s.iterations once the step is past every abort point.
	iter := s.iterations + 1
	iterSeed := s.opts.Seed + int64(iter)*7919

	care := s.opts.Patterns(s.cur.NumPIs(), s.n, iterSeed)
	vecs := sim.SimulateWorkers(s.cur, care, s.workers)
	var cands []Candidate
	if wg, ok := s.opts.Generator.(WorkerGenerator); ok {
		cands = wg.GenerateWorkers(s.cur, vecs, care.Valid, s.workers)
	} else {
		cands = s.opts.Generator.Generate(s.cur, vecs, care.Valid)
	}
	vecs.Release()

	if len(cands) == 0 {
		s.iterations = iter
		s.streak++
		s.stall++
		ev := Event{Kind: EventNoCandidates, Iteration: iter, Err: s.curErr, Ands: s.cur.NumAnds()}
		if s.streak >= s.opts.Patience {
			s.n = int(float64(s.n) * s.opts.Scale)
			if s.n < 1 {
				s.n = 1
			}
			s.streak = 0
			ev.Shrunk = true
			s.logf("iter %d: no LACs for %d rounds, shrinking N to %d", iter, s.opts.Patience, s.n)
		}
		ev.Rounds = s.n
		s.record(IterRecord{Iteration: iter, Rounds: ev.Rounds, Err: s.curErr, Ands: s.cur.NumAnds()})
		return ev, nil
	}

	bestCand := rankCandidates(ctx, s.ev, s.cur, s.evalPats, cands, s.workers)
	if err := ctx.Err(); err != nil {
		// Ranking was cut short; nothing has been committed.
		return Event{}, err
	}

	// Committed from here on.
	s.iterations = iter
	s.streak = 0
	rec := IterRecord{Iteration: iter, Rounds: s.n, Candidates: len(cands)}

	if bestCand.Err > s.opts.Threshold {
		rec.Err, rec.Ands = s.curErr, s.cur.NumAnds()
		s.record(rec)
		ev := s.finish(ReasonThreshold)
		ev.Kind = EventThreshold
		ev.Iteration, ev.Rounds, ev.Candidates = iter, s.n, len(cands)
		return ev, nil
	}

	prevAnds := s.cur.NumAnds()
	prevErr := s.curErr
	cand := bestCand.Apply(s.cur)
	if !s.opts.SkipOptimize {
		cand = opt.Optimize(cand)
	} else {
		cand = cand.Sweep()
	}
	if s.depthCap > 0 && cand.Depth() > s.depthCap {
		// Delay-constrained mode: drop this change and try again with fresh
		// patterns next iteration.
		s.stall++
		rec.Err, rec.Ands = s.curErr, s.cur.NumAnds()
		s.record(rec)
		return Event{Kind: EventDepthReject, Iteration: iter, Rounds: s.n,
			Candidates: len(cands), Err: s.curErr, Ands: s.cur.NumAnds()}, nil
	}
	s.cur = cand
	s.curErr = bestCand.Err
	s.applied++
	if s.cur.NumAnds() >= prevAnds && s.curErr == prevErr {
		// The change neither shrank the circuit nor consumed error budget:
		// count it toward the stall guard so a cycle of zero-progress
		// changes cannot loop forever.
		s.stall++
	} else {
		s.stall = 0
	}
	if s.cur.NumAnds() < s.best.NumAnds() {
		s.best = s.cur
	}
	rec.Applied, rec.Err, rec.Ands = true, s.curErr, s.cur.NumAnds()
	s.record(rec)
	s.logf("iter %d: applied LAC at node %d, err %.5g, ands %d",
		iter, bestCand.Node, s.curErr, s.cur.NumAnds())
	return Event{Kind: EventApplied, Iteration: iter, Rounds: s.n, Candidates: len(cands),
		Applied: true, Err: s.curErr, Ands: s.cur.NumAnds()}, nil
}

func (s *Session) record(rec IterRecord) {
	s.history = append(s.history, rec)
}

func (s *Session) finish(reason string) Event {
	s.done = true
	s.reason = reason
	return s.doneEvent()
}

func (s *Session) doneEvent() Event {
	return Event{Kind: EventDone, Iteration: s.iterations, Rounds: s.n,
		Err: s.curErr, Ands: s.cur.NumAnds(), Done: true, Reason: s.reason}
}

// Done reports whether the flow has terminated.
func (s *Session) Done() bool { return s.done }

// Reason returns the termination reason ("" while the session is live).
func (s *Session) Reason() string { return s.reason }

// Iterations returns the number of completed iterations.
func (s *Session) Iterations() int { return s.iterations }

// Applied returns the number of accepted LACs so far.
func (s *Session) Applied() int { return s.applied }

// Rounds returns the care-set simulation rounds N currently in effect.
func (s *Session) Rounds() int { return s.n }

// CurrentError returns the cumulative estimated error of the working circuit.
func (s *Session) CurrentError() float64 { return s.curErr }

// CurrentAnds returns the AND count of the working circuit.
func (s *Session) CurrentAnds() int { return s.cur.NumAnds() }

// History returns the iteration trace so far (a live slice; do not mutate).
func (s *Session) History() []IterRecord { return s.history }

// Result finalizes the session outcome: the smallest circuit observed and
// its measured error on the evaluation pattern set. It may be called on a
// live session (e.g. after a deadline) for the best-so-far result; the
// session can keep stepping afterwards.
func (s *Session) Result() Result {
	if !s.finalOK || !s.done {
		s.finalErr = s.ev.EvalGraph(s.best, s.evalPats)
		s.finalOK = s.done
	}
	return Result{
		Graph:      s.best,
		FinalError: s.finalErr,
		Iterations: s.iterations,
		Applied:    s.applied,
		History:    s.history,
	}
}
