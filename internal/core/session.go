package core

import (
	"context"
	"runtime"

	"repro/internal/aig"
	"repro/internal/errest"
	"repro/internal/exact"
	"repro/internal/opt"
	"repro/internal/sim"
)

// EventKind classifies what one Session.Step did.
type EventKind string

const (
	// EventApplied: the step committed the best candidate LAC.
	EventApplied EventKind = "applied"
	// EventNoCandidates: the generator produced no LACs this round
	// (Event.Shrunk reports whether N was scaled down as a consequence).
	EventNoCandidates EventKind = "no-candidates"
	// EventDepthReject: the best candidate was dropped by the delay
	// constraint (Options.MaxDepthRatio); the flow retries with fresh
	// patterns next step.
	EventDepthReject EventKind = "depth-reject"
	// EventThreshold: even the best candidate violates the error threshold
	// (Algorithm 3, line 7). The session is finished after this step (Done
	// set) when the candidates came from a freshly drawn care set; on the
	// incremental path a persisted care set gets one fresh draw first — the
	// event is then non-final and the next step retries, stall-guarded.
	EventThreshold EventKind = "threshold"
	// EventDone: the session had already finished; no work was performed.
	EventDone EventKind = "done"
	// EventCertified: certified mode committed the best candidate after the
	// exact checker proved its maximum error within Options.MaxError. The
	// certified counterpart of EventApplied.
	EventCertified EventKind = "certified"
	// EventCertRejected: the best candidate passed the sampled threshold
	// but failed exact max-error certification; it was dropped and the flow
	// retries with fresh patterns, stall-guarded (reject-and-continue).
	EventCertRejected EventKind = "rejected"
)

// Event describes the outcome of one Session.Step. It is the unit of
// progress reporting: the service layer streams Events to clients as NDJSON.
type Event struct {
	Kind       EventKind `json:"kind"`
	Iteration  int       `json:"iteration"`
	Rounds     int       `json:"rounds"` // care-set rounds N in effect after the step
	Candidates int       `json:"candidates"`
	Applied    bool      `json:"applied"`
	Err        float64   `json:"err"`  // cumulative error after the step
	Ands       int       `json:"ands"` // AND count after the step
	Shrunk     bool      `json:"shrunk,omitempty"`
	Done       bool      `json:"done"`
	Reason     string    `json:"reason,omitempty"` // termination reason when Done

	// Certified-mode fields (Options.MaxError > 0), set on the certified
	// and rejected event kinds.
	CertBackend string  `json:"cert_backend,omitempty"` // exact backend that decided
	CertMaxErr  float64 `json:"cert_max_err,omitempty"` // exact max error when measured
	Rejections  int     `json:"rejections,omitempty"`   // cumulative certification rejections
}

// Termination reasons reported in Event.Reason.
const (
	ReasonStall     = "stall"     // Options.MaxStall iterations without progress
	ReasonThreshold = "threshold" // best candidate exceeds the error threshold
	ReasonBudget    = "budget"    // cumulative error exceeds the threshold
)

// Session is the resumable form of the ALSRAC flow: Run unrolled into an
// explicit state machine. Each Step performs one Algorithm 3 iteration
// (simulate care patterns → generate LACs → rank → apply, or shrink N), and
// the complete mutable state between steps — working AIG, best AIG, the
// pattern count N, the stall/streak counters and the accepted-LAC history —
// can be serialized with Snapshot and revived with Restore, bitwise
// faithfully: a restored session continues exactly as the original would
// have.
//
// A Session is not safe for concurrent use; the service layer gives each
// job's session to exactly one worker goroutine at a time.
type Session struct {
	opts    Options
	workers int
	nEval   int
	logf    func(string, ...any)

	orig     *aig.Graph // reference circuit (error is measured against it)
	evalPats *sim.Patterns
	ev       *errest.Evaluator

	cur      *aig.Graph
	best     *aig.Graph
	depthCap int
	n        int // care-set rounds N
	streak   int // consecutive empty-candidate iterations
	stall    int // consecutive iterations without an applied LAC
	curErr   float64

	// Incremental hot path (inc is true when the generator implements
	// IncrementalGenerator and no depth cap is in effect). The working
	// graph is mutated in place with ReplaceNode, and two persistent
	// simulation arenas — care patterns and evaluation patterns — are kept
	// up to date by resimulating only the dirty TFO slice of each commit.
	// careSeed/careN identify the live care patterns (they persist across
	// pure-win commits and reroll after an empty round, a non-shrinking
	// commit, or an optimizer flush); careOK is false when the next step
	// must reroll. The arenas themselves are rebuilt
	// lazily from that identity — after NewSession and after Restore —
	// which is sound because a full simulation is bitwise identical to the
	// incrementally maintained state. genStale/genCache are the candidate
	// invalidation mask and the generator's opaque cache; both are
	// droppable for the same reason (a full rescan reproduces the cached
	// merge exactly), which keeps checkpoints free of derived state.
	inc       bool
	careArena *sim.Arena
	evalArena *sim.Arena
	careSeed  int64
	careN     int
	careOK    bool
	sinceOpt  int // commits since the last re-optimization
	genStale  []bool
	genCache  any
	epochs    []uint32   // scratch: epoch snapshot for StaleClosure
	touched   []aig.Node // scratch: ReplaceNode touched list

	// Certified mode (Options.MaxError > 0): the exact checker and the
	// count of winners it rejected. The checker is derived state — it is
	// rebuilt from orig and Options on restore; only the rejection count
	// travels through checkpoints.
	cert         *exact.Checker
	certRejected int

	iterations int
	applied    int
	history    []IterRecord

	done     bool
	reason   string
	finalErr float64 // cached by Result once done
	finalOK  bool
}

// optEvery is the re-optimization cadence of the incremental path: the
// traditional synthesis pass (Algorithm 3, line 9) runs after this many
// committed LACs instead of after every one. Optimization rebuilds the
// graph with fresh node ids, which forces both arenas to resimulate from
// scratch and drops the generator cache, so batching it is what lets the
// incremental machinery amortize. The best snapshot is updated only at
// these optimize boundaries (and at the final flush when the session
// finishes mid-batch), so the reported result is always fully optimized —
// zero-gain LACs whose payoff only materializes under the optimizer are
// credited exactly as on the legacy path, just in batches.
const optEvery = 8

// NewSession prepares a Session over circuit g. g itself is never modified;
// it is retained as the error reference and serialized into snapshots.
func NewSession(g *aig.Graph, opts Options) *Session {
	logf := opts.Verbose
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Generator == nil {
		var fellBack bool
		opts.Generator, fellBack = flowGenerator(&opts, g.NumAnds())
		if fellBack {
			logf("windowed mode: circuit has %d ANDs (< %d), falling back to global scoring",
				g.NumAnds(), windowedFallbackAnds)
		}
	}
	if opts.Patterns == nil {
		opts.Patterns = sim.UniformN
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nEval := opts.EvalPatterns
	if nEval < 64 {
		nEval = 64
	}

	s := &Session{
		opts:    opts,
		workers: workers,
		nEval:   nEval,
		logf:    logf,
		orig:    g,
	}
	s.evalPats = opts.Patterns(g.NumPIs(), nEval, opts.Seed)
	s.ev = errest.NewEvaluatorWorkers(g, s.evalPats, opts.Metric, workers)

	s.cur = g.Sweep()
	s.best = s.cur
	if opts.MaxDepthRatio > 0 {
		s.depthCap = int(opts.MaxDepthRatio * float64(s.cur.Depth()))
	}
	s.n = opts.InitialRounds
	_, incOK := s.opts.Generator.(IncrementalGenerator)
	s.inc = incOK && opts.MaxDepthRatio <= 0
	if opts.MaxError > 0 {
		chk, err := exact.New(g, exact.Config{
			SATConflictBudget: opts.CertConflictBudget,
			Now:               opts.CertNow,
			Observe:           opts.CertObserve,
		})
		if err != nil {
			// Same contract as errest's value metrics: a certified session
			// needs the 64-bit output-value encoding.
			panic("core: certified mode: " + err.Error())
		}
		s.cert = chk
	}
	return s
}

// Step performs one Algorithm 3 iteration and reports what happened. When
// the flow has terminated it returns an Event with Done set (idempotently on
// further calls). A context cancellation aborts the step before any state is
// committed and returns ctx.Err(): the interrupted iteration leaves no trace,
// so a later Step — in this process or after Snapshot/Restore — redoes it
// identically.
func (s *Session) Step(ctx context.Context) (Event, error) {
	if s.done {
		return s.doneEvent(), nil
	}
	if err := ctx.Err(); err != nil {
		return Event{}, err
	}
	if s.curErr > s.opts.Threshold {
		return s.finish(ReasonBudget), nil
	}
	if s.stall >= s.opts.MaxStall {
		return s.finish(ReasonStall), nil
	}

	// The iteration number participates in the pattern seed; it is only
	// committed to s.iterations once the step is past every abort point.
	iter := s.iterations + 1
	iterSeed := s.opts.Seed + int64(iter)*7919

	var cands []Candidate
	careFresh := true
	if s.inc {
		cands, careFresh = s.generateIncremental(iterSeed)
	} else {
		care := s.opts.Patterns(s.cur.NumPIs(), s.n, iterSeed)
		vecs := sim.SimulateWorkers(s.cur, care, s.workers)
		if wg, ok := s.opts.Generator.(WorkerGenerator); ok {
			cands = wg.GenerateWorkers(s.cur, vecs, care.Valid, s.workers)
		} else {
			cands = s.opts.Generator.Generate(s.cur, vecs, care.Valid)
		}
		vecs.Release()
	}

	if len(cands) == 0 {
		s.iterations = iter
		s.streak++
		s.stall++
		// The same patterns would regenerate the same emptiness: draw fresh
		// ones next step (no-op for the legacy path, which rerolls anyway).
		s.careOK = false
		ev := Event{Kind: EventNoCandidates, Iteration: iter, Err: s.curErr, Ands: s.cur.NumAnds()}
		if s.streak >= s.opts.Patience {
			s.n = int(float64(s.n) * s.opts.Scale)
			if s.n < 1 {
				s.n = 1
			}
			s.streak = 0
			ev.Shrunk = true
			s.logf("iter %d: no LACs for %d rounds, shrinking N to %d", iter, s.opts.Patience, s.n)
		}
		ev.Rounds = s.n
		s.record(IterRecord{Iteration: iter, Rounds: ev.Rounds, Err: s.curErr, Ands: s.cur.NumAnds()})
		return ev, nil
	}

	var baseVecs *sim.Vectors
	if s.inc {
		baseVecs = s.evalArena.Vectors()
	}
	bestCand := rankCandidates(ctx, s.ev, s.cur, s.evalPats, baseVecs, cands, s.workers)
	if err := ctx.Err(); err != nil {
		// Ranking was cut short; nothing has been committed. (The care
		// reroll and generator cache refresh above are idempotent: a later
		// retry of this iteration reproduces them bitwise.)
		return Event{}, err
	}

	// Committed from here on.
	s.iterations = iter
	s.streak = 0
	rec := IterRecord{Iteration: iter, Rounds: s.n, Candidates: len(cands)}

	if bestCand.Err > s.opts.Threshold {
		rec.Err, rec.Ands = s.curErr, s.cur.NumAnds()
		s.record(rec)
		if s.inc && !careFresh {
			// Every candidate from the persisted care set is over budget.
			// The paper's flow draws fresh patterns each iteration, so the
			// threshold verdict is only final on a fresh draw: reroll next
			// step and retry, counting toward the stall guard.
			s.stall++
			s.careOK = false
			return Event{Kind: EventThreshold, Iteration: iter, Rounds: s.n,
				Candidates: len(cands), Err: s.curErr, Ands: s.cur.NumAnds()}, nil
		}
		ev := s.finish(ReasonThreshold)
		ev.Kind = EventThreshold
		ev.Iteration, ev.Rounds, ev.Candidates = iter, s.n, len(cands)
		return ev, nil
	}

	// Certified mode: prove the exact maximum error of the candidate
	// circuit before anything is committed. The candidate is applied to a
	// throwaway id-identical clone, so the working graph (and with it the
	// incremental arenas) is untouched on rejection. A certification error
	// (e.g. an exhausted SAT conflict budget) rejects too: the flow never
	// commits a change it could not prove.
	var cert exact.Certificate
	if s.cert != nil {
		candG := bestCand.Apply(s.cur.Clone())
		var err error
		cert, err = s.cert.Certify(candG, s.opts.MaxError)
		if err != nil || !cert.OK {
			s.certRejected++
			s.stall++
			// The same care patterns would re-elect the same winner: force a
			// fresh draw so the next iteration can find a certifiable one.
			s.careOK = false
			rec.Rejected = true
			rec.Err, rec.Ands = s.curErr, s.cur.NumAnds()
			s.record(rec)
			if err != nil {
				s.logf("iter %d: certification error at node %d: %v", iter, bestCand.Node, err)
			} else {
				s.logf("iter %d: rejected LAC at node %d: exact max error %.5g > %.5g (%s)",
					iter, bestCand.Node, cert.MaxErr, s.opts.MaxError, cert.Backend)
			}
			return Event{Kind: EventCertRejected, Iteration: iter, Rounds: s.n,
				Candidates: len(cands), Err: s.curErr, Ands: s.cur.NumAnds(),
				CertBackend: cert.Backend, CertMaxErr: cert.MaxErr,
				Rejections: s.certRejected}, nil
		}
	}

	prevAnds := s.cur.NumAnds()
	prevErr := s.curErr
	flushed := false
	if s.inc {
		flushed = s.commitInPlace(bestCand)
	} else {
		cand := bestCand.Apply(s.cur)
		if !s.opts.SkipOptimize {
			cand = opt.Optimize(cand)
		} else {
			cand = cand.Sweep()
		}
		if s.depthCap > 0 && cand.Depth() > s.depthCap {
			// Delay-constrained mode: drop this change and try again with
			// fresh patterns next iteration.
			s.stall++
			rec.Err, rec.Ands = s.curErr, s.cur.NumAnds()
			s.record(rec)
			return Event{Kind: EventDepthReject, Iteration: iter, Rounds: s.n,
				Candidates: len(cands), Err: s.curErr, Ands: s.cur.NumAnds()}, nil
		}
		s.cur = cand
	}
	s.curErr = bestCand.Err
	s.applied++
	switch {
	case s.cur.NumAnds() < prevAnds:
		s.stall = 0
	case s.curErr != prevErr:
		// An error-budget trade: no smaller yet, but the changed circuit can
		// unlock reductions with fresh patterns next step.
		s.stall = 0
	default:
		s.stall++
	}
	if s.inc && (flushed || s.cur.NumAnds() >= prevAnds) {
		// Care persists exactly as long as the incremental caches do. An
		// optimizer flush renumbers every node and drops the generator cache,
		// so nothing the persisted patterns fed survives it — and the flow
		// measurably benefits from the legacy flow's fresh-patterns diversity
		// on precisely those commits (budget trades and zero-gain exchanges;
		// a pair of inverse zero-gain changes can even toggle forever on a
		// persisted set). Pure winning streaks keep their patterns.
		s.careOK = false
	}
	if !s.inc && s.cur.NumAnds() < s.best.NumAnds() {
		// Incremental best tracking happens at the optimize boundaries
		// inside commitInPlace, where the snapshot is fully optimized.
		s.best = s.cur
	}
	rec.Applied, rec.Err, rec.Ands = true, s.curErr, s.cur.NumAnds()
	s.record(rec)
	s.logf("iter %d: applied LAC at node %d, err %.5g, ands %d",
		iter, bestCand.Node, s.curErr, s.cur.NumAnds())
	ev := Event{Kind: EventApplied, Iteration: iter, Rounds: s.n, Candidates: len(cands),
		Applied: true, Err: s.curErr, Ands: s.cur.NumAnds()}
	if s.cert != nil {
		ev.Kind = EventCertified
		ev.CertBackend = cert.Backend
		ev.CertMaxErr = cert.MaxErr
		ev.Rejections = s.certRejected
	}
	return ev, nil
}

// generateIncremental is the incremental produce path of Step. The care
// arena persists across pure-win commits — those keep it up to date by
// dirty-TFO resimulation — and is rerolled with the step's seed after an
// empty round, a rounds change, a non-shrinking commit, or any optimizer
// flush (pattern persistence and cache persistence share one lifetime).
// The generator reuses its cached candidates for every node the last
// commit's stale closure spared.
//
// Every mutation here is idempotent with respect to a retry of the same
// iteration (after a context abort, or after Restore): the reroll is a pure
// function of (iterSeed, n), regeneration from an all-false mask returns
// the cache unchanged, and a full rescan after a dropped cache is bitwise
// identical to the cached merge.
func (s *Session) generateIncremental(iterSeed int64) (cands []Candidate, fresh bool) {
	gen := s.opts.Generator.(IncrementalGenerator)
	if s.evalArena == nil {
		s.evalArena = sim.NewArena(s.cur, s.evalPats, s.workers)
	}
	reroll := !s.careOK || s.careN != s.n
	if reroll {
		s.careSeed, s.careN, s.careOK = iterSeed, s.n, true
		s.genStale, s.genCache = nil, nil
	}
	if s.careArena == nil || reroll {
		care := s.opts.Patterns(s.cur.NumPIs(), s.careN, s.careSeed)
		if s.careArena == nil {
			s.careArena = sim.NewArena(s.cur, care, s.workers)
		} else {
			s.careArena.Rebind(s.cur, care)
		}
	}
	cands, cache := gen.GenerateIncremental(s.cur, s.careArena.Vectors(),
		s.careArena.Patterns().Valid, s.workers, s.genStale, s.genCache)
	s.genCache = cache
	// The mask is consumed: until the next commit writes a fresh closure,
	// nothing is stale, and a retried step reproduces cands from the cache.
	s.genStale = allFalse(s.genStale, s.cur.NumNodes())
	return cands, reroll
}

// commitInPlace applies the winning candidate to the working graph itself
// and brings the persistent machinery up to date: both arenas resimulate
// only the dirty TFO slice of the change, and the stale closure over the
// epoch diff and touched list tells the next generation which candidate
// entries to rebuild. The traditional optimizer runs at an adaptive
// cadence: a commit stays on the pure incremental path only when it is an
// outright win — the live AND count shrank and no error budget was spent.
// Anything else (a zero-gain commit, or one that consumed budget) gets the
// optimizer immediately, because those are exactly the commits where the
// legacy flow's per-commit optimizer harvests reductions the LAC alone did
// not; skipping it there measurably degrades the final area. A backstop
// flush every optEvery commits bounds drift during long winning streaks.
// Each flush compacts the graph, resets the incremental state and gives
// the best snapshot its chance to improve. The return reports whether a
// flush happened — the caller redraws the care patterns then, so pattern
// persistence and cache persistence share one lifetime.
func (s *Session) commitInPlace(c *Candidate) bool {
	if s.best == s.cur {
		// best must not alias a graph that is about to mutate in place.
		s.best = s.cur.Sweep()
	}
	prevAnds := s.cur.NumAnds()
	pureWin := c.Err == s.curErr // no budget spent; shrink checked below
	s.epochs = s.cur.EpochsInto(s.epochs)
	s.touched = s.touched[:0]
	c.ApplyInPlace(s.cur, &s.touched)
	s.careArena.Update()
	s.evalArena.Update()
	s.genStale = s.cur.StaleClosure(s.epochs, s.touched)
	s.sinceOpt++
	pureWin = pureWin && s.cur.NumAnds() < prevAnds
	if !s.opts.SkipOptimize && (s.sinceOpt >= optEvery || !pureWin) {
		s.flushOptimize()
		// The care arena is NOT rebound here: the caller redraws the care
		// patterns after every flush, and the next generateIncremental
		// rebinds the arena to the fresh draw in one pass.
		s.evalArena.Rebind(s.cur, s.evalPats)
		return true
	}
	if s.opts.SkipOptimize && s.cur.NumAnds() < s.best.NumAnds() {
		// Ablation mode has no optimize boundaries; mirror the legacy
		// best policy on the swept in-place counts.
		s.best = s.cur.Sweep()
	}
	return false
}

// flushOptimize runs the traditional optimizer on the working graph,
// resets the incremental caches (the compacted graph has fresh node ids)
// and updates the best snapshot when the optimized circuit is the smallest
// seen. The working graph is always within the error threshold when this
// runs, so every best snapshot respects the budget.
func (s *Session) flushOptimize() {
	s.cur = opt.Optimize(s.cur)
	s.sinceOpt = 0
	s.genStale, s.genCache = nil, nil
	if s.cur.NumAnds() < s.best.NumAnds() {
		// Sweep makes an independent copy: s.cur mutates in place later.
		s.best = s.cur.Sweep()
	}
}

func (s *Session) releaseArenas() {
	if s.careArena != nil {
		s.careArena.Release()
		s.careArena = nil
	}
	if s.evalArena != nil {
		s.evalArena.Release()
		s.evalArena = nil
	}
}

func allFalse(mask []bool, n int) []bool {
	if cap(mask) < n {
		return make([]bool, n)
	}
	mask = mask[:n]
	for i := range mask {
		mask[i] = false
	}
	return mask
}

func (s *Session) record(rec IterRecord) {
	s.history = append(s.history, rec)
}

func (s *Session) finish(reason string) Event {
	// Commits since the last optimize boundary have not had their shot at
	// the best snapshot yet: flush them through the optimizer, unless the
	// working graph is over budget (ReasonBudget) and must not be recorded.
	if s.inc && !s.opts.SkipOptimize && s.sinceOpt > 0 && s.curErr <= s.opts.Threshold {
		s.flushOptimize()
	}
	s.done = true
	s.reason = reason
	// A finished session never steps again; return the arenas' buffers to
	// the pools (Result only needs the best snapshot and the evaluator).
	s.releaseArenas()
	return s.doneEvent()
}

func (s *Session) doneEvent() Event {
	return Event{Kind: EventDone, Iteration: s.iterations, Rounds: s.n,
		Err: s.curErr, Ands: s.cur.NumAnds(), Done: true, Reason: s.reason}
}

// Done reports whether the flow has terminated.
func (s *Session) Done() bool { return s.done }

// Reason returns the termination reason ("" while the session is live).
func (s *Session) Reason() string { return s.reason }

// Iterations returns the number of completed iterations.
func (s *Session) Iterations() int { return s.iterations }

// Applied returns the number of accepted LACs so far.
func (s *Session) Applied() int { return s.applied }

// Rounds returns the care-set simulation rounds N currently in effect.
func (s *Session) Rounds() int { return s.n }

// CurrentError returns the cumulative estimated error of the working circuit.
func (s *Session) CurrentError() float64 { return s.curErr }

// CurrentAnds returns the AND count of the working circuit.
func (s *Session) CurrentAnds() int { return s.cur.NumAnds() }

// History returns the iteration trace so far (a live slice; do not mutate).
func (s *Session) History() []IterRecord { return s.history }

// CertRejections returns the number of winning candidates the exact
// checker rejected (0 unless Options.MaxError is set).
func (s *Session) CertRejections() int { return s.certRejected }

// CertStats returns the exact checker's counters (the zero Stats when the
// session is not in certified mode).
func (s *Session) CertStats() exact.Stats {
	if s.cert == nil {
		return exact.Stats{}
	}
	return s.cert.Stats()
}

// Result finalizes the session outcome: the smallest circuit observed and
// its measured error on the evaluation pattern set. It may be called on a
// live session (e.g. after a deadline) for the best-so-far result; the
// session can keep stepping afterwards. (On the incremental path "observed"
// means at the optimize boundaries — the best snapshot is always a fully
// optimized circuit; a live mid-batch call can lag the working graph by up
// to optEvery commits.)
func (s *Session) Result() Result {
	if !s.finalOK || !s.done {
		s.finalErr = s.ev.EvalGraph(s.best, s.evalPats)
		s.finalOK = s.done
	}
	return Result{
		Graph:      s.best,
		FinalError: s.finalErr,
		Iterations: s.iterations,
		Applied:    s.applied,
		History:    s.history,
	}
}
