package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/errest"
	"repro/internal/resub"
	"repro/internal/sim"
)

// BenchmarkRankCandidates measures one candidate-ranking pass — the flow's
// dominant cost — including the per-iteration batch setup. With pooled
// buffers the steady-state allocation count per op should stay near zero
// (only the candidate grouping and goroutine bookkeeping remain).
func BenchmarkRankCandidates(b *testing.B) {
	g := rippleAdder(32)
	evalPats := sim.Uniform(g.NumPIs(), 64, 1) // 4096 patterns
	ev := errest.NewEvaluator(g, evalPats, errest.ER)

	// A small care set (many don't-cares) so the generator proposes a
	// realistic candidate batch, as in an early flow iteration.
	care := sim.UniformN(g.NumPIs(), 32, 7)
	vecs := sim.SimulateWorkers(g, care, 1)
	cfg := resub.DefaultConfig()
	cfg.MaxLACsPerNode = 8
	gen := ResubGenerator{Cfg: cfg}
	cands := gen.Generate(g, vecs, care.Valid)
	vecs.Release()
	if len(cands) == 0 {
		b.Fatal("no candidates generated")
	}

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = rankCandidates(context.Background(), ev, g, evalPats, nil, cands, workers)
			}
			b.ReportMetric(float64(len(cands)), "candidates")
		})
	}
}

// BenchmarkSessionStep measures one full flow iteration on the incremental
// path — generation with the persistent arenas and candidate cache, ranking
// against the borrowed eval vectors, and an in-place commit with dirty-TFO
// resimulation. Sessions that finish mid-loop are replaced outside the timer.
func BenchmarkSessionStep(b *testing.B) {
	g := rippleAdder(32)
	opts := DefaultOptions(errest.NMED, 0.001)
	opts.EvalPatterns = 4096
	opts.Workers = 1

	newSession := func() *Session {
		s := NewSession(g, opts)
		if !s.inc {
			b.Fatal("session did not take the incremental path")
		}
		return s
	}
	s := newSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Done() {
			b.StopTimer()
			s = newSession()
			b.StartTimer()
		}
		if _, err := s.Step(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowedFlow measures session start-up plus the first windowed
// iteration on a mid-size MACTree member (tens of thousands of AND nodes):
// initial simulation, per-root window extraction, local care-set scanning
// and the first ranked commit. This is the per-iteration unit cost the
// million-node smoke (TestBigBenchWindowedSmoke) scales up, so it gates the
// windowed hot path against regressions at a size the bench harness can
// afford to repeat.
func BenchmarkWindowedFlow(b *testing.B) {
	g := bench.MACTree(64, 8, 1)
	opts := DefaultOptions(errest.ER, 0.05)
	opts.EvalPatterns = 1024
	opts.InitialRounds = 16
	opts.Workers = 4
	opts.Windowed = true

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSession(g, opts)
		if _, err := s.Step(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, ok := s.opts.Generator.(WindowedGenerator); !ok {
			b.Fatal("session did not take the windowed path")
		}
		s.releaseArenas()
		b.StartTimer()
	}
	b.ReportMetric(float64(g.NumAnds()), "ANDs")
}
