package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/errest"
	"repro/internal/resub"
	"repro/internal/sim"
)

// BenchmarkRankCandidates measures one candidate-ranking pass — the flow's
// dominant cost — including the per-iteration batch setup. With pooled
// buffers the steady-state allocation count per op should stay near zero
// (only the candidate grouping and goroutine bookkeeping remain).
func BenchmarkRankCandidates(b *testing.B) {
	g := rippleAdder(32)
	evalPats := sim.Uniform(g.NumPIs(), 64, 1) // 4096 patterns
	ev := errest.NewEvaluator(g, evalPats, errest.ER)

	// A small care set (many don't-cares) so the generator proposes a
	// realistic candidate batch, as in an early flow iteration.
	care := sim.UniformN(g.NumPIs(), 32, 7)
	vecs := sim.SimulateWorkers(g, care, 1)
	cfg := resub.DefaultConfig()
	cfg.MaxLACsPerNode = 8
	gen := ResubGenerator{Cfg: cfg}
	cands := gen.Generate(g, vecs, care.Valid)
	vecs.Release()
	if len(cands) == 0 {
		b.Fatal("no candidates generated")
	}

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = rankCandidates(context.Background(), ev, g, evalPats, cands, workers)
			}
			b.ReportMetric(float64(len(cands)), "candidates")
		})
	}
}
