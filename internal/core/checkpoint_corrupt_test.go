package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/errest"
)

// midRunCheckpoint produces checkpoint bytes of a session interrupted after
// a few iterations, plus the options needed to restore it.
func midRunCheckpoint(t *testing.T) ([]byte, Options) {
	t.Helper()
	opts := sessionOpts(errest.ER)
	s := NewSession(rippleAdder(8), opts)
	for i := 0; i < 3 && !s.Done(); i++ {
		if _, err := s.Step(context.Background()); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes(), opts
}

// refreshCRC recomputes the trailing CRC32 so corruption introduced above it
// survives the checksum gate and reaches the deeper validation layers.
func refreshCRC(raw []byte) []byte {
	out := append([]byte(nil), raw...)
	crc := crc32.ChecksumIEEE(out[:len(out)-4])
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc)
	return out
}

// TestRestoreCorruptionTable corrupts every checkpoint section — magic,
// version, options fingerprint, history, AIGER graph payload, CRC trailer —
// and requires Restore to report the right typed error class. Restore must
// never panic and never return a session built from damaged bytes.
func TestRestoreCorruptionTable(t *testing.T) {
	raw, opts := midRunCheckpoint(t)

	// Fixed section offsets from the format (DESIGN.md / checkpoint.go):
	// magic [0:8), version [8:12), seed [12:20), metric [20:28),
	// threshold [28:36), nEval [36:44), scalar block follows, then history,
	// graphs, and the 4-byte CRC trailer.
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"flip magic, fix crc", func(b []byte) []byte {
			b[0] ^= 0xFF
			return refreshCRC(b)
		}, ErrCorrupt},
		{"future version, fix crc", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 99)
			return refreshCRC(b)
		}, ErrCorrupt},
		{"flip seed (options fingerprint), fix crc", func(b []byte) []byte {
			b[12] ^= 0x01
			return refreshCRC(b)
		}, ErrMismatch},
		{"flip metric, fix crc", func(b []byte) []byte {
			b[20] ^= 0x01
			return refreshCRC(b)
		}, ErrMismatch},
		{"flip threshold, fix crc", func(b []byte) []byte {
			b[28] ^= 0x01
			return refreshCRC(b)
		}, ErrMismatch},
		{"flip eval budget, fix crc", func(b []byte) []byte {
			b[36] ^= 0x01
			return refreshCRC(b)
		}, ErrMismatch},
		{"truncate mid-graph, fix crc", func(b []byte) []byte {
			// Drop the last 40 bytes of payload: the final graph block's
			// length prefix now points past the end.
			return refreshCRC(b[:len(b)-40])
		}, ErrCorrupt},
		{"truncate to header only", func(b []byte) []byte {
			return b[:20]
		}, ErrCorrupt},
		{"empty", func([]byte) []byte {
			return nil
		}, ErrCorrupt},
		{"flip crc trailer", func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(append([]byte(nil), raw...))
			s, err := Restore(bytes.NewReader(bad), opts)
			if err == nil {
				t.Fatalf("corrupt checkpoint restored to a session (%v)", s)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want class %v", err, tc.wantErr)
			}
		})
	}
}

// TestRestoreByteFlipsNeverPanic flips every payload byte in turn (without
// fixing the CRC) and requires a typed ErrCorrupt from each — the checksum
// gate classifies arbitrary single-byte rot as corruption, and nothing in
// the decode path may panic on any of these inputs.
func TestRestoreByteFlipsNeverPanic(t *testing.T) {
	raw, opts := midRunCheckpoint(t)
	for off := 0; off < len(raw); off++ {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x20
		_, err := Restore(bytes.NewReader(bad), opts)
		if err == nil {
			t.Fatalf("flip at offset %d not detected", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at offset %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

// TestRestoreTruncationsNeverPanic chops the checkpoint at every length with
// the CRC refreshed where possible, driving the length-prefixed decoders
// into their bounds checks rather than the checksum gate.
func TestRestoreTruncationsNeverPanic(t *testing.T) {
	raw, opts := midRunCheckpoint(t)
	for n := 0; n < len(raw)-4; n += 7 {
		bad := append([]byte(nil), raw[:n]...)
		if n > 4 {
			bad = refreshCRC(bad)
		}
		if _, err := Restore(bytes.NewReader(bad), opts); err == nil {
			t.Fatalf("truncation to %d bytes restored successfully", n)
		}
	}
}
