package core

import (
	"reflect"
	"testing"

	"repro/internal/errest"
)

// TestRunDeterministicAcrossWorkers: the whole flow must be bitwise
// reproducible regardless of the worker count — identical iteration
// history, final AND count and final error.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, metric := range []errest.Metric{errest.ER, errest.NMED} {
		g := rippleAdder(8)
		opts := DefaultOptions(metric, 0.01)
		opts.EvalPatterns = 1024
		opts.Seed = 3

		opts.Workers = 1
		seq := Run(g, opts)
		for _, workers := range []int{2, 8} {
			opts.Workers = workers
			par := Run(g, opts)
			if seq.FinalError != par.FinalError {
				t.Fatalf("%v workers=%d: FinalError %v vs %v",
					metric, workers, seq.FinalError, par.FinalError)
			}
			if a, b := seq.Graph.NumAnds(), par.Graph.NumAnds(); a != b {
				t.Fatalf("%v workers=%d: final AND count %d vs %d", metric, workers, a, b)
			}
			if seq.Applied != par.Applied || seq.Iterations != par.Iterations {
				t.Fatalf("%v workers=%d: applied/iterations %d/%d vs %d/%d",
					metric, workers, seq.Applied, seq.Iterations, par.Applied, par.Iterations)
			}
			if !reflect.DeepEqual(seq.History, par.History) {
				t.Fatalf("%v workers=%d: iteration history differs:\nseq: %+v\npar: %+v",
					metric, workers, seq.History, par.History)
			}
		}
	}
}

// TestRunDeterministicAcrossWorkersGenericGenerator: the generic
// (non-sharded) Generator path must also be unaffected by the Workers knob.
func TestRunDeterministicAcrossWorkersGenericGenerator(t *testing.T) {
	g := rippleAdder(6)
	opts := DefaultOptions(errest.ER, 0.02)
	opts.EvalPatterns = 512
	opts.Generator = constZeroGen{}

	opts.Workers = 1
	seq := Run(g, opts)
	opts.Workers = 8
	par := Run(g, opts)
	if seq.FinalError != par.FinalError || seq.Graph.NumAnds() != par.Graph.NumAnds() ||
		!reflect.DeepEqual(seq.History, par.History) {
		t.Fatalf("generic generator not deterministic across workers")
	}
}
