package core

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/errest"
	"repro/internal/sim"
)

func rippleAdder(n int) *aig.Graph {
	g := aig.New()
	g.Name = "rca"
	a := g.AddPIs(n, "a")
	b := g.AddPIs(n, "b")
	carry := aig.LitFalse
	for i := 0; i < n; i++ {
		axb := g.Xor(a[i], b[i])
		g.AddPO(g.Xor(axb, carry), "s")
		carry = g.Or(g.And(a[i], b[i]), g.And(axb, carry))
	}
	g.AddPO(carry, "cout")
	return g
}

// exactError measures the true metric value of approx vs golden circuit g
// by exhaustive simulation.
func exactError(t *testing.T, g, approx *aig.Graph, metric errest.Metric) float64 {
	t.Helper()
	p := sim.Exhaustive(g.NumPIs())
	ev := errest.NewEvaluator(g, p, metric)
	return ev.EvalGraph(approx, p)
}

func TestRunRespectsERThreshold(t *testing.T) {
	g := rippleAdder(4)
	opts := DefaultOptions(errest.ER, 0.05)
	opts.EvalPatterns = 4096
	res := Run(g, opts)
	if res.Graph == nil {
		t.Fatal("nil result graph")
	}
	if res.FinalError > opts.Threshold {
		t.Fatalf("final (estimated) error %.4g exceeds threshold", res.FinalError)
	}
	// The true error (exhaustive) should be close to the estimate: allow a
	// generous sampling margin.
	truth := exactError(t, g, res.Graph, errest.ER)
	if truth > 3*opts.Threshold {
		t.Fatalf("true ER %.4g far above threshold %.4g", truth, opts.Threshold)
	}
	if err := res.Graph.CheckStrict(); err != nil {
		t.Fatal(err)
	}
}

func TestRunReducesArea(t *testing.T) {
	g := rippleAdder(5)
	opts := DefaultOptions(errest.NMED, 0.02)
	opts.EvalPatterns = 4096
	res := Run(g, opts)
	if res.Graph.NumAnds() >= g.NumAnds() {
		t.Fatalf("no area reduction: %d -> %d ANDs", g.NumAnds(), res.Graph.NumAnds())
	}
	if res.Applied == 0 {
		t.Fatalf("no LACs applied")
	}
}

func TestRunZeroThresholdKeepsFunction(t *testing.T) {
	// With Et=0 only error-free changes may be applied: the result must be
	// functionally identical to the input on every pattern.
	g := rippleAdder(3)
	opts := DefaultOptions(errest.ER, 0)
	opts.EvalPatterns = 4096
	res := Run(g, opts)
	if e := exactError(t, g, res.Graph, errest.ER); e != 0 {
		// Sampled zero-error LACs can in principle carry real error; with
		// 4096 patterns on a 6-input circuit every pattern appears, so any
		// nonzero true error is a bug.
		t.Fatalf("threshold 0 produced true ER %.4g", e)
	}
}

func TestRunMonotoneInThreshold(t *testing.T) {
	g := rippleAdder(4)
	var areas []int
	for _, et := range []float64{0.001, 0.05, 0.3} {
		opts := DefaultOptions(errest.ER, et)
		opts.EvalPatterns = 4096
		res := Run(g, opts)
		areas = append(areas, res.Graph.NumAnds())
	}
	// Looser thresholds should never give (much) larger circuits; allow
	// equality since the greedy flow is not strictly monotone.
	if areas[2] > areas[0] {
		t.Fatalf("area at loose threshold (%d) exceeds tight threshold (%d)", areas[2], areas[0])
	}
}

func TestRunInterfacePreserved(t *testing.T) {
	g := rippleAdder(4)
	opts := DefaultOptions(errest.ER, 0.1)
	opts.EvalPatterns = 2048
	res := Run(g, opts)
	if res.Graph.NumPIs() != g.NumPIs() || res.Graph.NumPOs() != g.NumPOs() {
		t.Fatalf("PI/PO interface changed")
	}
	for i := 0; i < g.NumPIs(); i++ {
		if res.Graph.PIName(i) != g.PIName(i) {
			t.Fatalf("PI name %d changed", i)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	g := rippleAdder(4)
	opts := DefaultOptions(errest.ER, 0.03)
	opts.EvalPatterns = 2048
	r1 := Run(g, opts)
	r2 := Run(g, opts)
	if r1.Graph.NumAnds() != r2.Graph.NumAnds() || r1.FinalError != r2.FinalError {
		t.Fatalf("same seed, different results: %d/%g vs %d/%g",
			r1.Graph.NumAnds(), r1.FinalError, r2.Graph.NumAnds(), r2.FinalError)
	}
	opts.Seed = 42
	r3 := Run(g, opts)
	_ = r3 // different seed may legitimately coincide; just ensure it runs
}

func TestRunHistoryConsistent(t *testing.T) {
	g := rippleAdder(4)
	opts := DefaultOptions(errest.ER, 0.05)
	opts.EvalPatterns = 2048
	res := Run(g, opts)
	if len(res.History) != res.Iterations {
		t.Fatalf("history length %d != iterations %d", len(res.History), res.Iterations)
	}
	applied := 0
	lastErr := 0.0
	for _, rec := range res.History {
		if rec.Applied {
			applied++
		}
		if rec.Err+1e-12 < lastErr {
			t.Fatalf("cumulative error decreased: %g -> %g", lastErr, rec.Err)
		}
		lastErr = rec.Err
	}
	if applied != res.Applied {
		t.Fatalf("history applied count %d != %d", applied, res.Applied)
	}
}

func TestRunAppliesLACsUnderGenerousBudget(t *testing.T) {
	// Sanity on the headline behavior: a generous NMED threshold must let
	// the flow apply several approximate changes and stay within budget.
	g := rippleAdder(6)
	opts := DefaultOptions(errest.NMED, 0.05)
	opts.EvalPatterns = 4096
	res := Run(g, opts)
	if res.Applied == 0 {
		t.Fatalf("no LACs applied under a generous budget")
	}
	if res.FinalError > opts.Threshold {
		t.Fatalf("final error %.4g over threshold", res.FinalError)
	}
}

func TestRunWithCustomGenerator(t *testing.T) {
	// A generator that proposes only constant-zero replacements; the flow
	// must still work and respect the threshold.
	g := rippleAdder(4)
	opts := DefaultOptions(errest.ER, 0.1)
	opts.EvalPatterns = 2048
	opts.Generator = constZeroGen{}
	res := Run(g, opts)
	if res.FinalError > opts.Threshold {
		t.Fatalf("final error %.4g over threshold", res.FinalError)
	}
}

type constZeroGen struct{}

func (constZeroGen) Generate(g *aig.Graph, care *sim.Vectors, valid int) []Candidate {
	var out []Candidate
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		node := n
		out = append(out, Candidate{
			Node: node,
			Gain: 1,
			NewVec: func(vecs *sim.Vectors, dst []uint64) {
				for i := range dst {
					dst[i] = 0
				}
			},
			Apply: func(g *aig.Graph) *aig.Graph {
				return g.CopyWith(map[aig.Node]aig.Lit{node: aig.LitFalse})
			},
		})
	}
	return out
}

func TestRunWithCustomPatternDistribution(t *testing.T) {
	// Plugging a biased pattern source must work end to end and respect the
	// threshold as measured under that same distribution.
	g := rippleAdder(4)
	probs := make([]float64, g.NumPIs())
	for i := range probs {
		probs[i] = 0.2
	}
	opts := DefaultOptions(errest.ER, 0.05)
	opts.EvalPatterns = 2048
	opts.Patterns = func(nPIs, n int, seed int64) *sim.Patterns {
		words := (n + 63) / 64
		p := sim.Biased(probs, words, seed)
		p.Valid = n
		return p
	}
	res := Run(g, opts)
	if res.FinalError > opts.Threshold {
		t.Fatalf("final error %.4g over threshold under biased inputs", res.FinalError)
	}
	if err := res.Graph.CheckStrict(); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerboseLogging(t *testing.T) {
	g := rippleAdder(3)
	opts := DefaultOptions(errest.ER, 0.1)
	opts.EvalPatterns = 512
	lines := 0
	opts.Verbose = func(string, ...any) { lines++ }
	res := Run(g, opts)
	if res.Applied > 0 && lines == 0 {
		t.Fatalf("verbose callback never invoked despite applied LACs")
	}
}

func TestRunDepthConstrained(t *testing.T) {
	g := rippleAdder(5)
	origDepth := g.Sweep().Depth()
	opts := DefaultOptions(errest.NMED, 0.02)
	opts.EvalPatterns = 2048
	opts.MaxDepthRatio = 1.0
	res := Run(g, opts)
	if res.Graph.Depth() > origDepth {
		t.Fatalf("depth-constrained run exceeded depth: %d > %d", res.Graph.Depth(), origDepth)
	}
	if res.FinalError > opts.Threshold {
		t.Fatalf("error over threshold")
	}
}

func TestRunWithTripleDivisors(t *testing.T) {
	// The 3-divisor extension must run end to end and respect the budget.
	g := rippleAdder(4)
	opts := DefaultOptions(errest.NMED, 0.01)
	opts.EvalPatterns = 2048
	opts.MaxDivisors = 3
	res := Run(g, opts)
	if res.FinalError > opts.Threshold {
		t.Fatalf("triple-divisor run over threshold: %.4g", res.FinalError)
	}
	if err := res.Graph.CheckStrict(); err != nil {
		t.Fatal(err)
	}
}
