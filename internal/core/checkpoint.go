package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/aig"
	"repro/internal/errest"
)

// Checkpoint format (version 3, little-endian):
//
//	magic   "ALSRACKP"            8 bytes
//	version uint32
//	seed    int64                 Options.Seed the session was started with
//	metric  int64                 Options.Metric
//	thresh  float64               Options.Threshold
//	nEval   int64                 evaluation pattern budget (after clamping)
//	maxErr  float64               Options.MaxError (0 = uncertified; v3)
//	depthCap, n, streak, stall, iterations, applied, certRejected  int64
//	curErr  float64
//	sinceOpt int64, careSeed int64, careN int64, careOK uint8
//	         (incremental-path state; zero/false on the legacy path)
//	done    uint8, reason string  (uint32 length + bytes)
//	history uint32 count, then per record:
//	        iteration, rounds, candidates, ands int64;
//	        applied uint8; rejected uint8 (v3); err float64
//	graphs  orig, cur as length-prefixed raw-codec blocks (aig.AppendRaw);
//	        bestSame uint8 (1 when best == cur), else a third block
//	crc     uint32 IEEE CRC-32 over everything above
//
// Version 3 extends version 2 with certified-mode state: the MaxError
// bound joins the verified header (a resumed run with a different bound
// would silently commit differently, so a mismatch is ErrMismatch), and
// the rejection counter plus per-record rejection flags make a restored
// certified session bitwise identical in its history and events. The
// exact checker itself is derived state — it is rebuilt from the stored
// reference graph and the supplied Options, exactly like the evaluator.
// The fixed offsets of the version-2 header prefix (magic through nEval,
// bytes [0:44)) are unchanged.
//
// The graphs are stored in the raw arena codec (aig.AppendRaw/FromRaw),
// which preserves node ids, dead slots, the free list and per-slot epochs
// exactly. The incremental session mutates its working graph in place —
// freed slots are recycled by later allocations — so a renumbering format
// would make a restored session allocate different ids than the original
// and diverge; the id-preserving codec is what keeps a resumed run bitwise
// identical, which TestSessionSnapshotRestoreDeterministic pins.
//
// What is deliberately NOT serialized: Options fields that are functions
// (Generator, Patterns, Verbose) or pure go-forward knobs (Patience, Scale,
// MaxStall, Workers), and the incremental session's derived state — the
// simulation arenas (a full resimulation of the stored graph on the stored
// care seed is bitwise identical to the incrementally maintained words) and
// the generator's candidate cache (a full rescan reproduces the cached
// merge exactly). Restore takes a fresh Options and verifies the fields
// that would silently corrupt a resumed run if they differed (seed, metric,
// threshold, evaluation budget); supplying the same Generator/Patterns
// configuration is the caller's contract, exactly as it is for Run.

const (
	checkpointMagic   = "ALSRACKP"
	checkpointVersion = 3
)

// Restore failure classes. A structurally damaged checkpoint — torn write,
// bit rot, truncation, a CRC or decode failure — wraps ErrCorrupt: the
// caller may fall back to an older checkpoint generation, which was written
// independently and can still be intact. A checkpoint whose header does not
// match the supplied Options wraps ErrMismatch: every generation of the same
// job shares its configuration, so falling back cannot help and the caller
// should treat the checkpoint set as unusable for these Options.
var (
	ErrCorrupt  = errors.New("corrupt checkpoint")
	ErrMismatch = errors.New("checkpoint does not match options")
)

// Snapshot serializes the complete inter-step state of the session to w as
// one versioned, checksummed checkpoint record. It must not be called
// concurrently with Step.
func (s *Session) Snapshot(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	putU32(&buf, checkpointVersion)
	putI64(&buf, s.opts.Seed)
	putI64(&buf, int64(s.opts.Metric))
	putF64(&buf, s.opts.Threshold)
	putI64(&buf, int64(s.nEval))
	putF64(&buf, s.opts.MaxError)
	putI64(&buf, int64(s.depthCap))
	putI64(&buf, int64(s.n))
	putI64(&buf, int64(s.streak))
	putI64(&buf, int64(s.stall))
	putI64(&buf, int64(s.iterations))
	putI64(&buf, int64(s.applied))
	putI64(&buf, int64(s.certRejected))
	putF64(&buf, s.curErr)
	putI64(&buf, int64(s.sinceOpt))
	putI64(&buf, s.careSeed)
	putI64(&buf, int64(s.careN))
	putBool(&buf, s.careOK)
	putBool(&buf, s.done)
	putString(&buf, s.reason)

	putU32(&buf, uint32(len(s.history)))
	for _, rec := range s.history {
		putI64(&buf, int64(rec.Iteration))
		putI64(&buf, int64(rec.Rounds))
		putI64(&buf, int64(rec.Candidates))
		putI64(&buf, int64(rec.Ands))
		putBool(&buf, rec.Applied)
		putBool(&buf, rec.Rejected)
		putF64(&buf, rec.Err)
	}

	if err := putGraph(&buf, s.orig); err != nil {
		return fmt.Errorf("core: snapshot reference graph: %w", err)
	}
	if err := putGraph(&buf, s.cur); err != nil {
		return fmt.Errorf("core: snapshot working graph: %w", err)
	}
	putBool(&buf, s.best == s.cur)
	if s.best != s.cur {
		if err := putGraph(&buf, s.best); err != nil {
			return fmt.Errorf("core: snapshot best graph: %w", err)
		}
	}

	crc := crc32.ChecksumIEEE(buf.Bytes())
	putU32(&buf, crc)
	_, err := w.Write(buf.Bytes())
	return err
}

// Restore revives a Session from a checkpoint written by Snapshot. opts must
// describe the same run the checkpoint was taken from: seed, metric,
// threshold and evaluation budget are verified against the stored header
// (mismatches are an error), and the caller must supply the same Generator
// and Patterns configuration. The restored session continues bitwise
// identically to the one that was snapshotted.
func Restore(r io.Reader, opts Options) (*Session, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	if len(raw) < len(checkpointMagic)+8 {
		return nil, fmt.Errorf("core: %w: truncated (%d bytes)", ErrCorrupt, len(raw))
	}
	payload, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("core: %w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, got, want)
	}
	d := &ckptReader{buf: payload}
	if magic := string(d.bytes(len(checkpointMagic))); magic != checkpointMagic {
		return nil, fmt.Errorf("core: %w: bad magic %q", ErrCorrupt, magic)
	}
	if v := d.u32(); v != checkpointVersion {
		return nil, fmt.Errorf("core: %w: unsupported version %d (want %d)", ErrCorrupt, v, checkpointVersion)
	}

	seed := d.i64()
	metric := errest.Metric(d.i64())
	threshold := d.f64()
	nEval := int(d.i64())
	maxError := d.f64()
	depthCap := int(d.i64())
	n := int(d.i64())
	streak := int(d.i64())
	stall := int(d.i64())
	iterations := int(d.i64())
	applied := int(d.i64())
	certRejected := int(d.i64())
	curErr := d.f64()
	sinceOpt := int(d.i64())
	careSeed := d.i64()
	careN := int(d.i64())
	careOK := d.bool()
	done := d.bool()
	reason := d.str()

	nHist := int(d.u32())
	if d.err == nil && nHist > len(d.buf)-d.off {
		return nil, fmt.Errorf("core: %w: history count %d exceeds payload", ErrCorrupt, nHist)
	}
	history := make([]IterRecord, 0, nHist)
	for i := 0; i < nHist; i++ {
		rec := IterRecord{
			Iteration:  int(d.i64()),
			Rounds:     int(d.i64()),
			Candidates: int(d.i64()),
			Ands:       int(d.i64()),
		}
		rec.Applied = d.bool()
		rec.Rejected = d.bool()
		rec.Err = d.f64()
		history = append(history, rec)
	}

	orig, err := d.graph()
	if err != nil {
		return nil, fmt.Errorf("core: %w: reference graph: %w", ErrCorrupt, err)
	}
	cur, err := d.graph()
	if err != nil {
		return nil, fmt.Errorf("core: %w: working graph: %w", ErrCorrupt, err)
	}
	best := cur
	if !d.bool() {
		if best, err = d.graph(); err != nil {
			return nil, fmt.Errorf("core: %w: best graph: %w", ErrCorrupt, err)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: %w: decode: %w", ErrCorrupt, d.err)
	}

	if opts.Seed != seed {
		return nil, fmt.Errorf("core: %w: checkpoint seed %d, Options.Seed %d", ErrMismatch, seed, opts.Seed)
	}
	if opts.Metric != metric {
		return nil, fmt.Errorf("core: %w: checkpoint metric %v, Options.Metric %v", ErrMismatch, metric, opts.Metric)
	}
	if opts.Threshold != threshold {
		return nil, fmt.Errorf("core: %w: checkpoint threshold %v, Options.Threshold %v", ErrMismatch, threshold, opts.Threshold)
	}
	wantEval := opts.EvalPatterns
	if wantEval < 64 {
		wantEval = 64
	}
	if wantEval != nEval {
		return nil, fmt.Errorf("core: %w: checkpoint evaluation budget %d, Options.EvalPatterns %d", ErrMismatch, nEval, wantEval)
	}
	if opts.MaxError != maxError {
		return nil, fmt.Errorf("core: %w: checkpoint max error %v, Options.MaxError %v", ErrMismatch, maxError, opts.MaxError)
	}

	// Rebuild the derived machinery exactly as NewSession does, then
	// overwrite the mutable state with the checkpointed values.
	s := NewSession(orig, opts)
	s.cur, s.best = cur, best
	s.depthCap = depthCap
	s.n, s.streak, s.stall = n, streak, stall
	s.curErr = curErr
	s.sinceOpt = sinceOpt
	s.careSeed, s.careN, s.careOK = careSeed, careN, careOK
	s.iterations, s.applied = iterations, applied
	s.certRejected = certRejected
	s.history = history
	s.done, s.reason = done, reason
	return s, nil
}

// --- little-endian encoding helpers ---------------------------------------

func putU32(b *bytes.Buffer, v uint32) {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	b.Write(w[:])
}

func putI64(b *bytes.Buffer, v int64) {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(v))
	b.Write(w[:])
}

func putF64(b *bytes.Buffer, v float64) {
	putI64(b, int64(math.Float64bits(v)))
}

func putBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func putString(b *bytes.Buffer, s string) {
	putU32(b, uint32(len(s)))
	b.WriteString(s)
}

func putGraph(b *bytes.Buffer, g *aig.Graph) error {
	blk := g.AppendRaw(nil)
	putU32(b, uint32(len(blk)))
	b.Write(blk)
	return nil
}

// ckptReader decodes the checkpoint payload, latching the first error so
// call sites stay linear.
type ckptReader struct {
	buf []byte
	off int
	err error
}

func (d *ckptReader) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *ckptReader) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *ckptReader) i64() int64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *ckptReader) f64() float64 { return math.Float64frombits(uint64(d.i64())) }

func (d *ckptReader) bool() bool {
	b := d.bytes(1)
	return b != nil && b[0] != 0
}

func (d *ckptReader) str() string { return string(d.bytes(int(d.u32()))) }

func (d *ckptReader) graph() (*aig.Graph, error) {
	if d.err != nil {
		return nil, d.err
	}
	blk := d.bytes(int(d.u32()))
	if d.err != nil {
		return nil, d.err
	}
	return aig.FromRaw(blk)
}
