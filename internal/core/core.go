// Package core implements the ALSRAC approximate logic synthesis flow
// (Algorithm 3 of the paper): a greedy loop that, in each iteration,
// simulates the current circuit with N random patterns to build approximate
// care sets, generates candidate local approximate changes (LACs), ranks
// them with the batch error estimator, applies the best one that keeps the
// circuit within the error threshold, and re-optimizes with traditional
// logic synthesis. The simulation round N adapts: after t consecutive
// iterations without candidates it is scaled by r < 1, enlarging the
// approximation space.
//
// The LAC generator is pluggable (see Generator); ALSRAC's approximate
// resubstitution is the default, and the SASIMI-style generator of package
// baseline/sasimi reuses the same loop, mirroring how the paper
// reimplements Su's method inside a common framework.
package core

import (
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/aig"
	"repro/internal/errest"
	"repro/internal/resub"
	"repro/internal/sim"
	"repro/internal/wordops"
)

// Candidate is one local approximate change proposed by a Generator.
type Candidate struct {
	// Node is the node whose function the change replaces.
	Node aig.Node
	// Gain is the structural gain estimate in AND nodes (larger is better).
	Gain int
	// NewVec writes the node's replacement value vector, evaluated on the
	// given simulation vectors of the current circuit, into out.
	NewVec func(vecs *sim.Vectors, out []uint64)
	// Apply substitutes the change into g and returns the new circuit.
	Apply func(g *aig.Graph) *aig.Graph
	// Err is filled by the flow: the estimated circuit error (against the
	// original circuit) after applying this candidate.
	Err float64
}

// Generator proposes candidate LACs for the current circuit, given its
// value vectors on the care-set patterns (of which the first valid entries
// are meaningful). Candidates must not retain the care vectors: the flow
// releases them to the buffer pool once generation finishes, and NewVec is
// always handed the vectors it should read.
type Generator interface {
	Generate(g *aig.Graph, care *sim.Vectors, valid int) []Candidate
}

// WorkerGenerator is optionally implemented by Generators whose candidate
// scan shards across worker goroutines. Implementations must produce the
// same candidates in the same order for every worker count — the flow's
// determinism guarantee depends on it.
type WorkerGenerator interface {
	Generator
	GenerateWorkers(g *aig.Graph, care *sim.Vectors, valid int, workers int) []Candidate
}

// ResubGenerator adapts package resub's approximate resubstitution to the
// Generator interface — this is ALSRAC's LAC.
type ResubGenerator struct {
	Cfg resub.Config
}

// Generate implements Generator.
func (rg ResubGenerator) Generate(g *aig.Graph, care *sim.Vectors, valid int) []Candidate {
	return rg.GenerateWorkers(g, care, valid, 1)
}

// GenerateWorkers implements WorkerGenerator.
func (rg ResubGenerator) GenerateWorkers(g *aig.Graph, care *sim.Vectors, valid int, workers int) []Candidate {
	lacs := resub.GenerateWorkers(g, care, valid, rg.Cfg, workers)
	out := make([]Candidate, len(lacs))
	for i := range lacs {
		lac := lacs[i]
		out[i] = Candidate{
			Node:   lac.Node,
			Gain:   lac.Gain,
			NewVec: func(vecs *sim.Vectors, dst []uint64) { lac.EvalVec(vecs, dst) },
			Apply:  func(g *aig.Graph) *aig.Graph { return lac.Apply(g) },
		}
	}
	return out
}

// Options configures a Run. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	Metric    errest.Metric
	Threshold float64 // error threshold Et

	InitialRounds   int     // initial care-set simulation rounds N (paper: 32)
	MaxDivisors     int     // divisor-set size cap (paper: 2; ≥3 enables the triple extension)
	MaxLACsPerNode  int     // LAC limit per node L (paper: 1)
	Patience        int     // controlling parameter t (paper: 5)
	Scale           float64 // scaling factor r (paper: 0.9)
	MaxReplaceTries int     // cap on divisor replacements tried per fanin (0 = unbounded)

	EvalPatterns int   // Monte-Carlo pattern budget for error evaluation
	Seed         int64 // base seed; every iteration derives fresh patterns

	// Workers is the number of worker goroutines used by the three hot
	// stages (care-set simulation, LAC generation, candidate ranking) and
	// the error evaluator. 0 means GOMAXPROCS; 1 runs fully sequential.
	// Results are bitwise identical for every value.
	Workers int

	// Patterns supplies input stimuli with n valid patterns for the given
	// seed; it is used both for error evaluation and for the per-iteration
	// care-set simulation. nil means uniformly distributed inputs — the
	// paper's experimental setup; any other distribution (biased,
	// correlated) can be plugged in, as the paper's method allows.
	Patterns func(nPIs, n int, seed int64) *sim.Patterns

	// MaxStall bounds consecutive iterations without an applied change
	// before giving up (termination guard; the paper relies on N shrinking).
	MaxStall int
	// MaxDepthRatio, when positive, rejects changes that would leave the
	// (re-optimized) circuit deeper than this ratio times the original
	// depth — a delay-constrained mode in the spirit of the paper's
	// "map -D <original delay>" mapping setup. 0 disables the check.
	MaxDepthRatio float64
	// SkipOptimize disables the traditional re-optimization between
	// iterations (ablation knob; the paper always optimizes).
	SkipOptimize bool
	// UseEspresso selects the Espresso-style cover minimizer for
	// resubstitution functions instead of plain ISOP (the paper's tooling).
	UseEspresso bool
	// Generator overrides the LAC generator; nil means ALSRAC resubstitution.
	Generator Generator

	// Verbose, when non-nil, receives progress lines.
	Verbose func(format string, args ...any)
}

// DefaultOptions returns the paper's experiment parameters (Section IV-A):
// N=32, L=1, t=5, r=0.9. The evaluation pattern budget defaults to 8192
// (the paper uses 10^7 rounds on a workstation; this is a pure accuracy/
// runtime knob of the same Monte-Carlo estimator).
func DefaultOptions(metric errest.Metric, threshold float64) Options {
	return Options{
		Metric:         metric,
		Threshold:      threshold,
		InitialRounds:  32,
		MaxDivisors:    2,
		MaxLACsPerNode: 1,
		Patience:       5,
		Scale:          0.9,
		EvalPatterns:   8192,
		Seed:           1,
		MaxStall:       60,
	}
}

// IterRecord traces one flow iteration.
type IterRecord struct {
	Iteration  int
	Rounds     int     // care-set rounds N in effect
	Candidates int     // LACs generated
	Applied    bool    // whether a LAC was applied
	Err        float64 // cumulative error after the iteration
	Ands       int     // AND count after the iteration
}

// Result is the outcome of a Run.
type Result struct {
	Graph      *aig.Graph // the approximate circuit (already swept/optimized)
	FinalError float64    // measured on the evaluation pattern set
	Iterations int
	Applied    int // number of LACs applied
	History    []IterRecord
}

// Run executes the ALSRAC flow on circuit g and returns an approximate
// circuit whose estimated error does not exceed opts.Threshold. g itself is
// not modified. It is a thin loop over Session.Step; long-running callers
// that need checkpointing or per-iteration progress drive a Session
// directly.
func Run(g *aig.Graph, opts Options) Result {
	return RunCtx(context.Background(), g, opts)
}

// RunCtx is Run with a context: when ctx is cancelled (deadline or explicit)
// the flow stops at the next iteration boundary and returns the best result
// found so far — cancellation is a budget, not an error. The result for an
// uncancelled context is bitwise identical to Run's.
func RunCtx(ctx context.Context, g *aig.Graph, opts Options) Result {
	s := NewSession(g, opts)
	for {
		ev, err := s.Step(ctx)
		if err != nil || ev.Done {
			break
		}
	}
	// Return the smallest circuit observed. Error is cumulative and
	// non-decreasing, so every snapshot satisfies the threshold; later
	// zero-gain trades must not be allowed to worsen the result.
	return s.Result()
}

// rankCandidates estimates the error of every candidate with the batch
// estimator and returns the best one (smallest error, then largest gain),
// or nil when there are no candidates. Candidates are grouped by node so
// each node's fanout cone is re-simulated once (the batch estimation
// trick); with workers > 1 the node groups are partitioned across worker
// goroutines, each owning a Fork of the batch estimator. Evaluation is
// branch-and-bound: each worker passes its best error so far as a pruning
// bound, so hopeless candidates abort at the first simulation word that
// exceeds it and report +Inf. The reduction is a sequential scan with a
// fixed tie-break (smallest error, then largest gain, then first in node
// order); pruned candidates never tie-break against survivors, so the
// winner is independent of worker count and scheduling.
//
// Cancelling ctx stops the scan at the next group boundary; the caller
// (Session.Step) detects ctx.Err and discards the partial ranking, so a
// cancelled iteration commits nothing.
func rankCandidates(ctx context.Context, ev *errest.Evaluator, cur *aig.Graph, evalPats *sim.Patterns, cands []Candidate, workers int) *Candidate {
	if len(cands) == 0 {
		return nil
	}
	slices.SortStableFunc(cands, func(a, b Candidate) int { return int(a.Node) - int(b.Node) })
	batch := errest.NewBatchWorkers(ev, cur, evalPats, workers)
	defer batch.Release()

	// Group boundaries: candidates sharing a node form one work unit.
	groups := make([][2]int, 0, len(cands))
	for lo := 0; lo < len(cands); {
		hi := lo + 1
		for hi < len(cands) && cands[hi].Node == cands[lo].Node {
			hi++
		}
		groups = append(groups, [2]int{lo, hi})
		lo = hi
	}

	scan := func(b *errest.Batch, next func() int) {
		vecs := b.Vectors()
		buf := wordops.Get(vecs.Words)
		defer wordops.Put(buf)
		// Branch-and-bound: the smallest exact error this worker has seen
		// prunes later evaluations. The bound is per-worker state, never
		// shared, so which candidates get pruned to +Inf depends on the
		// work split — but the winner does not: a pruned candidate's error
		// strictly exceeds some exact error and therefore the global
		// minimum, so it can neither win nor tie-break against the winner
		// (see errest.Evaluator.EvalPOWordsBounded).
		bound := math.Inf(1)
		for {
			gi := next()
			if gi >= len(groups) || ctx.Err() != nil {
				return
			}
			lo, hi := groups[gi][0], groups[gi][1]
			b.Prepare(cands[lo].Node)
			for i := lo; i < hi; i++ {
				c := &cands[i]
				c.NewVec(vecs, buf)
				c.Err = b.EvalCandidateBounded(c.Node, buf, bound)
				if c.Err < bound {
					bound = c.Err
				}
			}
		}
	}

	if workers = sim.Workers(workers, len(groups)); workers <= 1 {
		seq := 0
		scan(batch, func() int { seq++; return seq - 1 })
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				fork := batch.Fork()
				defer fork.Release()
				scan(fork, func() int { return int(next.Add(1)) - 1 })
			}()
		}
		wg.Wait()
	}

	best := &cands[0]
	for i := 1; i < len(cands); i++ {
		c := &cands[i]
		if c.Err < best.Err || (c.Err == best.Err && c.Gain > best.Gain) {
			best = c
		}
	}
	return best
}
