// Package core implements the ALSRAC approximate logic synthesis flow
// (Algorithm 3 of the paper): a greedy loop that, in each iteration,
// simulates the current circuit with N random patterns to build approximate
// care sets, generates candidate local approximate changes (LACs), ranks
// them with the batch error estimator, applies the best one that keeps the
// circuit within the error threshold, and re-optimizes with traditional
// logic synthesis. The simulation round N adapts: after t consecutive
// iterations without candidates it is scaled by r < 1, enlarging the
// approximation space.
//
// The LAC generator is pluggable (see Generator); ALSRAC's approximate
// resubstitution is the default, and the SASIMI-style generator of package
// baseline/sasimi reuses the same loop, mirroring how the paper
// reimplements Su's method inside a common framework.
package core

import (
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aig"
	"repro/internal/errest"
	"repro/internal/resub"
	"repro/internal/sim"
	"repro/internal/window"
	"repro/internal/wordops"
)

// Candidate is one local approximate change proposed by a Generator.
type Candidate struct {
	// Node is the node whose function the change replaces.
	Node aig.Node
	// Gain is the structural gain estimate in AND nodes (larger is better).
	Gain int
	// NewVec writes the node's replacement value vector, evaluated on the
	// given simulation vectors of the current circuit, into out.
	NewVec func(vecs *sim.Vectors, out []uint64)
	// Apply substitutes the change into g and returns the new circuit.
	Apply func(g *aig.Graph) *aig.Graph
	// ApplyInPlace, when non-nil, commits the change into g itself —
	// rewiring references with aig.ReplaceNode so untouched logic keeps its
	// node ids and freed slots are recycled — and appends every node whose
	// structure or reference count changed to *touched. The incremental
	// session path requires it; generators that only produce Apply fall
	// back to the copying path.
	ApplyInPlace func(g *aig.Graph, touched *[]aig.Node)
	// Err is filled by the flow: the estimated circuit error (against the
	// original circuit) after applying this candidate.
	Err float64
}

// Generator proposes candidate LACs for the current circuit, given its
// value vectors on the care-set patterns (of which the first valid entries
// are meaningful). Candidates must not retain the care vectors: the flow
// releases them to the buffer pool once generation finishes, and NewVec is
// always handed the vectors it should read.
type Generator interface {
	Generate(g *aig.Graph, care *sim.Vectors, valid int) []Candidate
}

// WorkerGenerator is optionally implemented by Generators whose candidate
// scan shards across worker goroutines. Implementations must produce the
// same candidates in the same order for every worker count — the flow's
// determinism guarantee depends on it.
type WorkerGenerator interface {
	Generator
	GenerateWorkers(g *aig.Graph, care *sim.Vectors, valid int, workers int) []Candidate
}

// IncrementalGenerator is optionally implemented by WorkerGenerators that
// can reuse candidate state across flow iterations when told which nodes
// the last committed change invalidated. It is what enables the session's
// incremental hot path: candidates from such a generator must also carry
// ApplyInPlace.
//
// stale and cache come from the previous call on the same graph and
// patterns: stale[v] true means node v's candidates must be recomputed,
// and cache is the opaque value the previous call returned. A nil stale
// mask requests a full scan (cache is ignored). The result must be bitwise
// identical to a full GenerateWorkers scan for every (stale, cache)
// handed back this way — worker-count invariance and the correctness of
// checkpoint restore (which drops the cache and rescans) both rest on it.
type IncrementalGenerator interface {
	WorkerGenerator
	GenerateIncremental(g *aig.Graph, care *sim.Vectors, valid, workers int,
		stale []bool, cache any) ([]Candidate, any)
}

// ResubGenerator adapts package resub's approximate resubstitution to the
// Generator interface — this is ALSRAC's LAC.
type ResubGenerator struct {
	Cfg resub.Config
}

// Generate implements Generator.
func (rg ResubGenerator) Generate(g *aig.Graph, care *sim.Vectors, valid int) []Candidate {
	return rg.GenerateWorkers(g, care, valid, 1)
}

// GenerateWorkers implements WorkerGenerator.
func (rg ResubGenerator) GenerateWorkers(g *aig.Graph, care *sim.Vectors, valid int, workers int) []Candidate {
	return wrapLACs(resub.GenerateWorkers(g, care, valid, rg.Cfg, workers))
}

// GenerateIncremental implements IncrementalGenerator: cache is the LAC
// slice of the previous call, and nodes the stale mask spares reuse their
// cached entries instead of re-running the divisor scan (resub.GenerateReuse).
func (rg ResubGenerator) GenerateIncremental(g *aig.Graph, care *sim.Vectors, valid, workers int,
	stale []bool, cache any) ([]Candidate, any) {
	cached, _ := cache.([]resub.LAC)
	if stale == nil {
		cached = nil
	}
	lacs := resub.GenerateReuse(g, care, valid, rg.Cfg, workers, stale, cached)
	return wrapLACs(lacs), lacs
}

// WindowedGenerator adapts package window's reconvergence-driven windowed
// resubstitution to the Generator interface: per root, the divisor scan
// runs over a bounded local window instead of the full TFI cone, which
// bounds per-root work by a constant and scales candidate generation to
// million-node AIGs. Workers shard by window. With the zero window.Config
// (unbounded windows) the candidates are bitwise identical to
// ResubGenerator's — the property the window package pins.
type WindowedGenerator struct {
	Win window.Config
	Cfg resub.Config
}

// Generate implements Generator.
func (wg WindowedGenerator) Generate(g *aig.Graph, care *sim.Vectors, valid int) []Candidate {
	return wg.GenerateWorkers(g, care, valid, 1)
}

// GenerateWorkers implements WorkerGenerator.
func (wg WindowedGenerator) GenerateWorkers(g *aig.Graph, care *sim.Vectors, valid int, workers int) []Candidate {
	return wrapLACs(window.GenerateWorkers(g, care, valid, wg.Win, wg.Cfg, workers))
}

// GenerateIncremental implements IncrementalGenerator, mirroring
// ResubGenerator: unstale nodes keep their cached window candidates, stale
// ones get fresh windows (window.GenerateReuse — the stale closure covers
// every window dependency, see that function's contract).
func (wg WindowedGenerator) GenerateIncremental(g *aig.Graph, care *sim.Vectors, valid, workers int,
	stale []bool, cache any) ([]Candidate, any) {
	cached, _ := cache.([]resub.LAC)
	if stale == nil {
		cached = nil
	}
	lacs := window.GenerateReuse(g, care, valid, wg.Win, wg.Cfg, workers, stale, cached)
	return wrapLACs(lacs), lacs
}

func wrapLACs(lacs []resub.LAC) []Candidate {
	out := make([]Candidate, len(lacs))
	for i := range lacs {
		lac := lacs[i]
		out[i] = Candidate{
			Node:         lac.Node,
			Gain:         lac.Gain,
			NewVec:       func(vecs *sim.Vectors, dst []uint64) { lac.EvalVec(vecs, dst) },
			Apply:        func(g *aig.Graph) *aig.Graph { return lac.Apply(g) },
			ApplyInPlace: func(g *aig.Graph, touched *[]aig.Node) { lac.ApplyInPlace(g, touched) },
		}
	}
	return out
}

// Options configures a Run. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	Metric    errest.Metric
	Threshold float64 // error threshold Et

	InitialRounds   int     // initial care-set simulation rounds N (paper: 32)
	MaxDivisors     int     // divisor-set size cap (paper: 2; ≥3 enables the triple extension)
	MaxLACsPerNode  int     // LAC limit per node L (paper: 1)
	Patience        int     // controlling parameter t (paper: 5)
	Scale           float64 // scaling factor r (paper: 0.9)
	MaxReplaceTries int     // cap on divisor replacements tried per fanin (0 = unbounded)

	EvalPatterns int   // Monte-Carlo pattern budget for error evaluation
	Seed         int64 // base seed; every iteration derives fresh patterns

	// Workers is the number of worker goroutines used by the three hot
	// stages (care-set simulation, LAC generation, candidate ranking) and
	// the error evaluator. 0 means GOMAXPROCS; 1 runs fully sequential.
	// Results are bitwise identical for every value.
	Workers int

	// Patterns supplies input stimuli with n valid patterns for the given
	// seed; it is used both for error evaluation and for the per-iteration
	// care-set simulation. nil means uniformly distributed inputs — the
	// paper's experimental setup; any other distribution (biased,
	// correlated) can be plugged in, as the paper's method allows.
	Patterns func(nPIs, n int, seed int64) *sim.Patterns

	// MaxStall bounds consecutive iterations without an applied change
	// before giving up (termination guard; the paper relies on N shrinking).
	MaxStall int
	// MaxDepthRatio, when positive, rejects changes that would leave the
	// (re-optimized) circuit deeper than this ratio times the original
	// depth — a delay-constrained mode in the spirit of the paper's
	// "map -D <original delay>" mapping setup. 0 disables the check.
	MaxDepthRatio float64
	// SkipOptimize disables the traditional re-optimization between
	// iterations (ablation knob; the paper always optimizes).
	SkipOptimize bool
	// UseEspresso selects the Espresso-style cover minimizer for
	// resubstitution functions instead of plain ISOP (the paper's tooling).
	UseEspresso bool
	// Windowed selects reconvergence-driven windowed candidate generation
	// (package window): per-root bounded windows instead of full TFI cones,
	// which bounds per-iteration work and memory by circuit size × window
	// bound instead of circuit size² — the mode that reaches million-node
	// AIGs. Circuits below windowedFallbackAnds AND nodes fall back to the
	// global scan, where full cones are cheap and find strictly more
	// divisors. Ignored when Generator is set.
	Windowed bool
	// WindowMaxPIs, WindowMaxNodes, WindowMaxDivisors, WindowSkipFanoutRoots
	// and WindowSkipFanoutDivisors bound the extracted windows (see
	// window.Config). 0 picks the production default of
	// window.DefaultConfig; a negative value means unbounded / no skip.
	WindowMaxPIs             int
	WindowMaxNodes           int
	WindowMaxDivisors        int
	WindowSkipFanoutRoots    int
	WindowSkipFanoutDivisors int
	// Generator overrides the LAC generator; nil means ALSRAC resubstitution
	// (windowed when Windowed is set).
	Generator Generator

	// MaxError, when positive, switches the flow to certified mode: every
	// winning candidate is certified by the exact checker (internal/exact)
	// to keep the exact maximum arithmetic error of the circuit — over ALL
	// inputs, not the sampled patterns — at most MaxError before it is
	// committed. Candidates that fail certification are rejected and the
	// flow continues (the rejection is counted in the history). The bound
	// is normalized like NMED: max |ŷ−y| / (2^nPOs−1) ≤ MaxError. The
	// circuit must have 1..64 outputs.
	MaxError float64
	// CertConflictBudget caps the SAT conflicts of one certification call
	// (0 = unbounded). An exhausted budget rejects the candidate — the
	// flow never commits an uncertified change.
	CertConflictBudget int64
	// CertNow, when set, timestamps certification calls for the checker's
	// latency stats (pure go-forward observability; not serialized in
	// checkpoints). nil reports zero latencies.
	CertNow func() time.Time
	// CertObserve, when set, receives one call per certification with the
	// deciding backend, latency in seconds and SAT conflicts spent — the
	// service layer's metrics hook. Not serialized.
	CertObserve func(backend string, seconds float64, conflicts int64)

	// Verbose, when non-nil, receives progress lines.
	Verbose func(format string, args ...any)
}

// WindowConfig resolves the Window* knobs against the production defaults:
// zero fields pick the window.DefaultConfig value, negative fields mean
// unbounded / no skip (window.Config's zero value).
func (o *Options) WindowConfig() window.Config {
	cfg := window.DefaultConfig()
	resolve := func(dst *int, v int) {
		switch {
		case v > 0:
			*dst = v
		case v < 0:
			*dst = 0
		}
	}
	resolve(&cfg.MaxPIs, o.WindowMaxPIs)
	resolve(&cfg.MaxNodes, o.WindowMaxNodes)
	resolve(&cfg.MaxDivisors, o.WindowMaxDivisors)
	resolve(&cfg.SkipFanoutRoots, o.WindowSkipFanoutRoots)
	resolve(&cfg.SkipFanoutDivisors, o.WindowSkipFanoutDivisors)
	return cfg
}

// windowedFallbackAnds is the circuit size below which a Windowed session
// falls back to global scoring: at that scale every TFI cone is small, the
// quadratic cost is immaterial, and the full cone is a strict superset of
// any window's divisor pool.
const windowedFallbackAnds = 200

// flowGenerator picks the default LAC generator for a session over a
// circuit with numAnds live AND nodes (only consulted when opts.Generator
// is nil). It reports whether the windowed fallback was taken.
func flowGenerator(opts *Options, numAnds int) (Generator, bool) {
	rcfg := resub.Config{
		MaxLACsPerNode:  opts.MaxLACsPerNode,
		MaxReplaceTries: opts.MaxReplaceTries,
		MaxDivisors:     opts.MaxDivisors,
		UseEspresso:     opts.UseEspresso,
	}
	if opts.Windowed && numAnds >= windowedFallbackAnds {
		return WindowedGenerator{Win: opts.WindowConfig(), Cfg: rcfg}, false
	}
	return ResubGenerator{Cfg: rcfg}, opts.Windowed
}

// DefaultOptions returns the paper's experiment parameters (Section IV-A):
// N=32, L=1, t=5, r=0.9. The evaluation pattern budget defaults to 8192
// (the paper uses 10^7 rounds on a workstation; this is a pure accuracy/
// runtime knob of the same Monte-Carlo estimator).
func DefaultOptions(metric errest.Metric, threshold float64) Options {
	return Options{
		Metric:         metric,
		Threshold:      threshold,
		InitialRounds:  32,
		MaxDivisors:    2,
		MaxLACsPerNode: 1,
		Patience:       5,
		Scale:          0.9,
		EvalPatterns:   8192,
		Seed:           1,
		MaxStall:       60,
	}
}

// IterRecord traces one flow iteration.
type IterRecord struct {
	Iteration  int
	Rounds     int     // care-set rounds N in effect
	Candidates int     // LACs generated
	Applied    bool    // whether a LAC was applied
	Rejected   bool    // whether the winner failed max-error certification
	Err        float64 // cumulative error after the iteration
	Ands       int     // AND count after the iteration
}

// Result is the outcome of a Run.
type Result struct {
	Graph      *aig.Graph // the approximate circuit (already swept/optimized)
	FinalError float64    // measured on the evaluation pattern set
	Iterations int
	Applied    int // number of LACs applied
	History    []IterRecord
}

// Run executes the ALSRAC flow on circuit g and returns an approximate
// circuit whose estimated error does not exceed opts.Threshold. g itself is
// not modified. It is a thin loop over Session.Step; long-running callers
// that need checkpointing or per-iteration progress drive a Session
// directly.
func Run(g *aig.Graph, opts Options) Result {
	return RunCtx(context.Background(), g, opts)
}

// RunCtx is Run with a context: when ctx is cancelled (deadline or explicit)
// the flow stops at the next iteration boundary and returns the best result
// found so far — cancellation is a budget, not an error. The result for an
// uncancelled context is bitwise identical to Run's.
func RunCtx(ctx context.Context, g *aig.Graph, opts Options) Result {
	s := NewSession(g, opts)
	for {
		ev, err := s.Step(ctx)
		if err != nil || ev.Done {
			break
		}
	}
	// Return the smallest circuit observed. Error is cumulative and
	// non-decreasing, so every snapshot satisfies the threshold; later
	// zero-gain trades must not be allowed to worsen the result.
	return s.Result()
}

// rankCandidates estimates the error of every candidate with the batch
// estimator and returns the best one (smallest error, then largest gain),
// or nil when there are no candidates. Candidates are grouped by node so
// each node's fanout cone is re-simulated once (the batch estimation
// trick); with workers > 1 the node groups are partitioned across worker
// goroutines, each owning a Fork of the batch estimator. baseVecs, when
// non-nil, is a caller-owned up-to-date simulation of cur on the
// evaluation patterns (the incremental session's persistent arena), which
// skips the full-circuit resimulation the batch setup otherwise performs.
//
// Evaluation is branch-and-bound: the smallest exact error seen by ANY
// worker so far — published through an atomic — bounds every later
// evaluation, so hopeless candidates abort at the first simulation word
// that exceeds it and report +Inf. Which candidates get pruned depends on
// scheduling, but the winner does not: a pruned candidate's error strictly
// exceeds some exact error and therefore the global minimum, and a
// candidate at least as good as the bound always gets its exact value (see
// errest.Evaluator.EvalPOWordsBounded), so every minimum-error candidate is
// evaluated exactly. The reduction is a sequential scan with a fixed
// tie-break (smallest error, then largest gain, then first in node order);
// pruned candidates never tie-break against survivors, so the winner is
// independent of worker count and scheduling.
//
// Cancelling ctx stops the scan at the next group boundary; the caller
// (Session.Step) detects ctx.Err and discards the partial ranking, so a
// cancelled iteration commits nothing.
func rankCandidates(ctx context.Context, ev *errest.Evaluator, cur *aig.Graph, evalPats *sim.Patterns, baseVecs *sim.Vectors, cands []Candidate, workers int) *Candidate {
	if len(cands) == 0 {
		return nil
	}
	slices.SortStableFunc(cands, func(a, b Candidate) int { return int(a.Node) - int(b.Node) })
	var batch *errest.Batch
	if baseVecs != nil {
		batch = errest.NewBatchVecs(ev, cur, baseVecs)
	} else {
		batch = errest.NewBatchWorkers(ev, cur, evalPats, workers)
	}
	defer batch.Release()

	// Group boundaries: candidates sharing a node form one work unit.
	groups := make([][2]int, 0, len(cands))
	for lo := 0; lo < len(cands); {
		hi := lo + 1
		for hi < len(cands) && cands[hi].Node == cands[lo].Node {
			hi++
		}
		groups = append(groups, [2]int{lo, hi})
		lo = hi
	}

	if workers = sim.Workers(workers, len(groups)); workers <= 1 {
		// Sequential scan: the pruning bound is a plain local, no atomics.
		vecs := batch.Vectors()
		buf := wordops.Get(vecs.Words)
		bound := math.Inf(1)
		for gi := 0; gi < len(groups) && ctx.Err() == nil; gi++ {
			lo, hi := groups[gi][0], groups[gi][1]
			batch.Prepare(cands[lo].Node)
			for i := lo; i < hi; i++ {
				c := &cands[i]
				c.NewVec(vecs, buf)
				c.Err = batch.EvalCandidateBounded(c.Node, buf, bound)
				if c.Err < bound {
					bound = c.Err
				}
			}
		}
		wordops.Put(buf)
	} else {
		// The shared pruning bound, stored as float64 bits (see lowerBound):
		// the smallest exact error any worker has published prunes every
		// later evaluation on all workers.
		var boundBits atomic.Uint64
		boundBits.Store(math.Float64bits(math.Inf(1)))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				fork := batch.Fork()
				defer fork.Release()
				vecs := fork.Vectors()
				buf := wordops.Get(vecs.Words)
				defer wordops.Put(buf)
				for {
					gi := int(next.Add(1)) - 1
					if gi >= len(groups) || ctx.Err() != nil {
						return
					}
					lo, hi := groups[gi][0], groups[gi][1]
					fork.Prepare(cands[lo].Node)
					for i := lo; i < hi; i++ {
						c := &cands[i]
						c.NewVec(vecs, buf)
						c.Err = fork.EvalCandidateBounded(c.Node, buf,
							math.Float64frombits(boundBits.Load()))
						lowerBound(&boundBits, c.Err)
					}
				}
			}()
		}
		wg.Wait()
	}

	best := &cands[0]
	for i := 1; i < len(cands); i++ {
		c := &cands[i]
		if c.Err < best.Err || (c.Err == best.Err && c.Gain > best.Gain) {
			best = c
		}
	}
	return best
}

// lowerBound CAS-mins e into the pruning bound. Errors are finite and
// non-negative, so the loop converges; +Inf results never lower the bound.
func lowerBound(bound *atomic.Uint64, e float64) {
	for {
		old := bound.Load()
		if e >= math.Float64frombits(old) {
			return
		}
		if bound.CompareAndSwap(old, math.Float64bits(e)) {
			return
		}
	}
}
