package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/errest"
	"repro/internal/sim"
)

// graphBytes serializes a graph to ASCII AIGER for bitwise comparison.
func graphBytes(t *testing.T, g *aig.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := aiger.Write(&buf, g, "aag"); err != nil {
		t.Fatalf("aiger write: %v", err)
	}
	return buf.Bytes()
}

func sessionOpts(metric errest.Metric) Options {
	opts := DefaultOptions(metric, 0.01)
	opts.EvalPatterns = 1024
	opts.Seed = 3
	opts.Workers = 1
	return opts
}

// TestSessionMatchesRun: driving a Session step by step must reproduce Run
// exactly — same history, same final graph, same error.
func TestSessionMatchesRun(t *testing.T) {
	g := rippleAdder(8)
	opts := sessionOpts(errest.ER)
	want := Run(g, opts)

	s := NewSession(g, opts)
	steps := 0
	for !s.Done() {
		ev, err := s.Step(context.Background())
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if ev.Done {
			break
		}
		steps++
		if steps > 10000 {
			t.Fatal("session did not terminate")
		}
	}
	got := s.Result()
	if got.FinalError != want.FinalError || got.Iterations != want.Iterations || got.Applied != want.Applied {
		t.Fatalf("session result %v/%d/%d, Run %v/%d/%d",
			got.FinalError, got.Iterations, got.Applied,
			want.FinalError, want.Iterations, want.Applied)
	}
	if !reflect.DeepEqual(got.History, want.History) {
		t.Fatalf("history differs:\nsession: %+v\nrun:     %+v", got.History, want.History)
	}
	if !bytes.Equal(graphBytes(t, got.Graph), graphBytes(t, want.Graph)) {
		t.Fatal("final graphs differ between Session and Run")
	}
}

// TestSessionSnapshotRestoreDeterministic is the kill-and-resume contract:
// a session snapshotted mid-run, discarded ("killed"), and restored from the
// checkpoint bytes must finish with a final AIG and error bitwise identical
// to the uninterrupted run with the same seed — for several kill points and
// both metric families.
func TestSessionSnapshotRestoreDeterministic(t *testing.T) {
	for _, metric := range []errest.Metric{errest.ER, errest.NMED} {
		g := rippleAdder(8)
		opts := sessionOpts(metric)
		want := Run(g, opts)

		// 9 and 12 land past the first optEvery boundary, so the restored
		// session must also reproduce the optimizer flush and the arena
		// rebinds that follow it.
		for _, kill := range []int{0, 1, 3, 7, 9, 12, 20} {
			s := NewSession(g, opts)
			for i := 0; i < kill && !s.Done(); i++ {
				if _, err := s.Step(context.Background()); err != nil {
					t.Fatalf("metric %v kill %d: step: %v", metric, kill, err)
				}
			}
			var ckpt bytes.Buffer
			if err := s.Snapshot(&ckpt); err != nil {
				t.Fatalf("metric %v kill %d: snapshot: %v", metric, kill, err)
			}
			s = nil // the "kill": nothing survives but the checkpoint bytes

			r, err := Restore(bytes.NewReader(ckpt.Bytes()), opts)
			if err != nil {
				t.Fatalf("metric %v kill %d: restore: %v", metric, kill, err)
			}
			for !r.Done() {
				ev, err := r.Step(context.Background())
				if err != nil {
					t.Fatalf("metric %v kill %d: resumed step: %v", metric, kill, err)
				}
				if ev.Done {
					break
				}
			}
			got := r.Result()
			if got.FinalError != want.FinalError {
				t.Fatalf("metric %v kill %d: FinalError %v, want %v", metric, kill, got.FinalError, want.FinalError)
			}
			if got.Iterations != want.Iterations || got.Applied != want.Applied {
				t.Fatalf("metric %v kill %d: iterations/applied %d/%d, want %d/%d",
					metric, kill, got.Iterations, got.Applied, want.Iterations, want.Applied)
			}
			if !reflect.DeepEqual(got.History, want.History) {
				t.Fatalf("metric %v kill %d: history differs", metric, kill)
			}
			if !bytes.Equal(graphBytes(t, got.Graph), graphBytes(t, want.Graph)) {
				t.Fatalf("metric %v kill %d: final graph not bitwise identical", metric, kill)
			}
		}
	}
}

// TestRestoreRebuildsArenaBitIdentical: the checkpoint does not serialize the
// simulation arenas — Restore rebuilds them from the stored graph and care
// seed. This test pins the property that rebuild relies on: the from-scratch
// arena words equal the incrementally maintained ones bit for bit. A killed
// session and its restored twin each take one more step; afterwards every
// live node's pattern words in both arenas must match exactly.
func TestRestoreRebuildsArenaBitIdentical(t *testing.T) {
	g := rippleAdder(8)
	opts := sessionOpts(errest.NMED)
	s := NewSession(g, opts)
	if !s.inc {
		t.Fatal("session did not take the incremental path")
	}
	for i := 0; i < 5 && !s.Done(); i++ {
		if _, err := s.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := s.Snapshot(&ckpt); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&ckpt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Done() != r.Done() {
		t.Fatalf("killed session done=%v, restored done=%v", s.Done(), r.Done())
	}
	if s.Done() {
		t.Skip("session finished before the arenas could be compared")
	}
	compare := func(name string, a, b *sim.Arena) {
		t.Helper()
		if (a == nil) != (b == nil) {
			t.Fatalf("%s arena: original %v, restored %v", name, a != nil, b != nil)
		}
		if a == nil {
			return
		}
		va, vb := a.Vectors(), b.Vectors()
		for n := aig.Node(0); int(n) < s.cur.NumNodes(); n++ {
			if s.cur.Kind(n) == aig.KindDead {
				continue
			}
			if !reflect.DeepEqual(va.Node(n), vb.Node(n)) {
				t.Fatalf("%s arena: node %d words differ after restore", name, n)
			}
		}
	}
	compare("care", s.careArena, r.careArena)
	compare("eval", s.evalArena, r.evalArena)
}

// TestSessionSnapshotOfFinishedSession: a terminal session round-trips too
// (the service checkpoints completed jobs before writing results).
func TestSessionSnapshotOfFinishedSession(t *testing.T) {
	g := rippleAdder(6)
	opts := sessionOpts(errest.ER)
	s := NewSession(g, opts)
	for !s.Done() {
		if ev, err := s.Step(context.Background()); err != nil || ev.Done {
			break
		}
	}
	want := s.Result()

	var ckpt bytes.Buffer
	if err := s.Snapshot(&ckpt); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r, err := Restore(&ckpt, opts)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !r.Done() {
		t.Fatal("restored session lost its terminal state")
	}
	if ev, err := r.Step(context.Background()); err != nil || !ev.Done {
		t.Fatalf("step on finished session: ev=%+v err=%v", ev, err)
	}
	got := r.Result()
	if got.FinalError != want.FinalError || !bytes.Equal(graphBytes(t, got.Graph), graphBytes(t, want.Graph)) {
		t.Fatal("finished session did not round-trip")
	}
}

// TestRestoreRejectsCorruption: a flipped byte anywhere in the checkpoint
// must be detected by the CRC.
func TestRestoreRejectsCorruption(t *testing.T) {
	g := rippleAdder(6)
	opts := sessionOpts(errest.ER)
	s := NewSession(g, opts)
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := s.Snapshot(&ckpt); err != nil {
		t.Fatal(err)
	}
	raw := ckpt.Bytes()
	for _, off := range []int{0, len(raw) / 3, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, err := Restore(bytes.NewReader(bad), opts); err == nil {
			t.Fatalf("corruption at offset %d not detected", off)
		}
	}
	if _, err := Restore(bytes.NewReader(raw[:10]), opts); err == nil {
		t.Fatal("truncated checkpoint not detected")
	}
}

// TestRestoreRejectsMismatchedOptions: restoring under different seed,
// metric, threshold or evaluation budget must fail loudly instead of
// silently diverging.
func TestRestoreRejectsMismatchedOptions(t *testing.T) {
	g := rippleAdder(6)
	opts := sessionOpts(errest.ER)
	s := NewSession(g, opts)
	var ckpt bytes.Buffer
	if err := s.Snapshot(&ckpt); err != nil {
		t.Fatal(err)
	}
	raw := ckpt.Bytes()

	cases := []struct {
		name   string
		mutate func(o *Options)
	}{
		{"seed", func(o *Options) { o.Seed = 99 }},
		{"metric", func(o *Options) { o.Metric = errest.NMED }},
		{"threshold", func(o *Options) { o.Threshold = 0.5 }},
		{"eval", func(o *Options) { o.EvalPatterns = 4096 }},
		{"maxerror", func(o *Options) { o.MaxError = 0.5 }},
	}
	for _, tc := range cases {
		bad := opts
		tc.mutate(&bad)
		if _, err := Restore(bytes.NewReader(raw), bad); err == nil {
			t.Fatalf("mismatched %s accepted", tc.name)
		}
	}
	if _, err := Restore(bytes.NewReader(raw), opts); err != nil {
		t.Fatalf("matching options rejected: %v", err)
	}
}

// TestRunCtxCancelReturnsBestSoFar: cancellation is a budget — RunCtx under
// an already-expired context still returns a valid, threshold-respecting
// result (the unmodified swept circuit in the degenerate case), not an
// error or nil graph.
func TestRunCtxCancelReturnsBestSoFar(t *testing.T) {
	g := rippleAdder(8)
	opts := sessionOpts(errest.ER)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCtx(ctx, g, opts)
	if res.Graph == nil {
		t.Fatal("cancelled run returned nil graph")
	}
	if res.Iterations != 0 || res.Applied != 0 {
		t.Fatalf("expired context ran %d iterations", res.Iterations)
	}
	if err := exactError(t, g, res.Graph, errest.ER); err != 0 {
		t.Fatalf("degenerate result is not the exact circuit (error %v)", err)
	}

	// Cancel after a few steps: the partial result must match the prefix of
	// the uninterrupted run (same seed ⇒ same first iterations).
	full := Run(g, opts)
	s := NewSession(g, opts)
	for i := 0; i < 3 && !s.Done(); i++ {
		if _, err := s.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	partial := s.Result()
	if len(partial.History) > len(full.History) {
		t.Fatal("partial run longer than full run")
	}
	if !reflect.DeepEqual(partial.History, full.History[:len(partial.History)]) {
		t.Fatal("partial history is not a prefix of the full history")
	}
	if partial.FinalError > opts.Threshold {
		t.Fatalf("best-so-far result violates threshold: %v", partial.FinalError)
	}
}

// TestSessionStepEvents: the event stream tells a consistent story — one
// event per iteration, monotone iteration numbers, applied events matching
// the history, and a terminal reason.
func TestSessionStepEvents(t *testing.T) {
	g := rippleAdder(8)
	opts := sessionOpts(errest.NMED)
	s := NewSession(g, opts)

	var events []Event
	for {
		ev, err := s.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		if ev.Done {
			break
		}
	}
	last := events[len(events)-1]
	if last.Kind != EventDone && last.Kind != EventThreshold {
		t.Fatalf("terminal event kind %q", last.Kind)
	}
	if last.Reason == "" {
		t.Fatal("terminal event has no reason")
	}
	applied := 0
	for i, ev := range events[:len(events)-1] {
		if ev.Iteration != i+1 {
			t.Fatalf("event %d has iteration %d", i, ev.Iteration)
		}
		if ev.Applied {
			applied++
		}
	}
	res := s.Result()
	if applied != res.Applied {
		t.Fatalf("%d applied events, result says %d", applied, res.Applied)
	}
	if got := len(events) - 1; got != res.Iterations && events[len(events)-1].Kind == EventDone {
		t.Fatalf("%d iteration events, result says %d iterations", got, res.Iterations)
	}
}
