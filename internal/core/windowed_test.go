package core

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/errest"
	"repro/internal/window"
)

// TestFlowGeneratorSelection pins the default-generator policy: Windowed
// picks the windowed generator on large circuits and falls back to global
// scoring below the size floor.
func TestFlowGeneratorSelection(t *testing.T) {
	opts := DefaultOptions(errest.ER, 0.01)
	if _, ok := must(flowGenerator(&opts, 10_000)).(ResubGenerator); !ok {
		t.Fatal("non-windowed options must pick ResubGenerator")
	}
	opts.Windowed = true
	gen, fellBack := flowGenerator(&opts, 10_000)
	if _, ok := gen.(WindowedGenerator); !ok || fellBack {
		t.Fatalf("windowed options on a large circuit picked %T (fallback %v)", gen, fellBack)
	}
	gen, fellBack = flowGenerator(&opts, windowedFallbackAnds-1)
	if _, ok := gen.(ResubGenerator); !ok || !fellBack {
		t.Fatalf("windowed options on a small circuit picked %T (fallback %v)", gen, fellBack)
	}
	if _, ok := gen.(IncrementalGenerator); !ok {
		t.Fatal("fallback generator must stay incremental")
	}
	if _, ok := any(WindowedGenerator{}).(IncrementalGenerator); !ok {
		t.Fatal("WindowedGenerator must implement IncrementalGenerator")
	}
}

func must(g Generator, _ bool) Generator { return g }

// TestWindowConfigResolution pins the knob semantics: 0 = production
// default, negative = unbounded, positive = verbatim.
func TestWindowConfigResolution(t *testing.T) {
	var opts Options
	if got := opts.WindowConfig(); got != window.DefaultConfig() {
		t.Fatalf("zero knobs resolved to %+v, want defaults", got)
	}
	opts = Options{WindowMaxPIs: -1, WindowMaxNodes: 7, WindowMaxDivisors: -1,
		WindowSkipFanoutRoots: 3, WindowSkipFanoutDivisors: -1}
	want := window.Config{MaxPIs: 0, MaxNodes: 7, MaxDivisors: 0,
		SkipFanoutRoots: 3, SkipFanoutDivisors: 0}
	if got := opts.WindowConfig(); got != want {
		t.Fatalf("knobs resolved to %+v, want %+v", got, want)
	}
}

// TestWindowedSessionMatchesGlobalOnFullWindows runs the full flow twice on
// the same circuit — once with the global generator, once windowed with
// every bound lifted — and requires bitwise-identical outcomes: with
// unbounded windows every window reaches the circuit PIs, so the windowed
// session must reproduce the global one exactly, iteration by iteration.
func TestWindowedSessionMatchesGlobalOnFullWindows(t *testing.T) {
	g := bench.ArrayMult(8) // 424 ANDs: above the windowed fallback floor
	opts := DefaultOptions(errest.NMED, 0.002)
	opts.EvalPatterns = 512
	opts.MaxStall = 8
	opts.Workers = 2

	global := Run(g, opts)

	opts.Windowed = true
	opts.WindowMaxPIs, opts.WindowMaxNodes, opts.WindowMaxDivisors = -1, -1, -1
	opts.WindowSkipFanoutRoots, opts.WindowSkipFanoutDivisors = -1, -1
	windowed := Run(g, opts)

	if global.FinalError != windowed.FinalError ||
		global.Graph.NumAnds() != windowed.Graph.NumAnds() ||
		global.Iterations != windowed.Iterations ||
		global.Applied != windowed.Applied {
		t.Fatalf("windowed flow diverged from global: err %v vs %v, ands %d vs %d, iters %d vs %d",
			windowed.FinalError, global.FinalError,
			windowed.Graph.NumAnds(), global.Graph.NumAnds(),
			windowed.Iterations, global.Iterations)
	}
	if !reflect.DeepEqual(global.History, windowed.History) {
		t.Fatal("windowed flow history diverged from global")
	}
	if global.Applied == 0 {
		t.Fatal("flow applied nothing — equivalence untested")
	}
}

// TestWindowedRunDeterministicAcrossWorkers pins bitwise determinism of the
// bounded windowed flow (production window config) for every worker count.
func TestWindowedRunDeterministicAcrossWorkers(t *testing.T) {
	g := bench.CLA(32)
	opts := DefaultOptions(errest.ER, 0.05)
	opts.EvalPatterns = 512
	opts.MaxStall = 8
	opts.Windowed = true
	opts.WindowMaxPIs, opts.WindowMaxNodes = 6, 32

	var ref Result
	for i, workers := range []int{1, 2, 4} {
		opts.Workers = workers
		res := Run(g, opts)
		if i == 0 {
			ref = res
			if res.Applied == 0 {
				t.Fatal("windowed flow applied nothing — determinism untested")
			}
			continue
		}
		if res.FinalError != ref.FinalError || res.Graph.NumAnds() != ref.Graph.NumAnds() ||
			!reflect.DeepEqual(res.History, ref.History) {
			t.Fatalf("workers=%d: windowed flow diverged from workers=1", workers)
		}
	}
}
