package mapper

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/blif"
	"repro/internal/cut"
	"repro/internal/sim"
	"repro/internal/tt"
)

// LUT is one mapped lookup table: the function Fn over the Leaves drives
// the signal of Root (leaf i is variable i of Fn).
type LUT struct {
	Root   aig.Node
	Leaves []aig.Node
	Fn     tt.Table
}

// MappedPO binds a primary output to a mapped signal.
type MappedPO struct {
	Root  aig.Node // 0 for a constant output
	Compl bool
	Const bool // when Root is 0: output is the constant Compl
}

// LUTNetwork is a complete mapped FPGA netlist: LUTs in topological order
// plus the PO bindings. It can be evaluated directly (Eval) and exported
// as BLIF, and carries the source graph for names.
type LUTNetwork struct {
	K      int
	LUTs   []LUT
	POs    []MappedPO
	Depth  int
	source *aig.Graph
}

// ExtractLUTNetwork maps g into K-input LUTs (same algorithm as MapLUT)
// and returns the mapped netlist.
func ExtractLUTNetwork(g *aig.Graph, k int) *LUTNetwork {
	res := MapLUT(g, k)
	net := &LUTNetwork{K: k, Depth: res.Depth, source: g}
	// Emit in topological (id) order; res.Roots holds the chosen cuts.
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		leaves, ok := res.Roots[n]
		if !ok {
			continue
		}
		net.LUTs = append(net.LUTs, LUT{
			Root:   n,
			Leaves: leaves,
			Fn:     cut.Table(g, n, leaves),
		})
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		if po.Node() == 0 {
			net.POs = append(net.POs, MappedPO{Const: true, Compl: po.IsCompl()})
			continue
		}
		net.POs = append(net.POs, MappedPO{Root: po.Node(), Compl: po.IsCompl()})
	}
	return net
}

// NumLUTs returns the LUT count (the FPGA area measure).
func (n *LUTNetwork) NumLUTs() int { return len(n.LUTs) }

// Eval simulates the LUT network bit-parallel on the given input patterns
// and returns the PO words — independent of the AIG evaluator, so it
// verifies the mapping end to end.
func (n *LUTNetwork) Eval(p *sim.Patterns) [][]uint64 {
	g := n.source
	words := p.Words
	vals := make(map[aig.Node][]uint64, len(n.LUTs)+g.NumPIs())
	for i := 0; i < g.NumPIs(); i++ {
		vals[g.PI(i)] = p.In[i]
	}
	for _, lut := range n.LUTs {
		out := make([]uint64, words)
		ins := make([][]uint64, len(lut.Leaves))
		for i, l := range lut.Leaves {
			v, ok := vals[l]
			if !ok {
				panic(fmt.Sprintf("mapper: LUT leaf %d evaluated before definition", l))
			}
			ins[i] = v
		}
		evalTable(lut.Fn, ins, out)
		vals[lut.Root] = out
	}
	res := make([][]uint64, len(n.POs))
	for i, po := range n.POs {
		out := make([]uint64, words)
		switch {
		case po.Const:
			if po.Compl {
				for w := range out {
					out[w] = ^uint64(0)
				}
			}
		default:
			src := vals[po.Root]
			for w := range out {
				if po.Compl {
					out[w] = ^src[w]
				} else {
					out[w] = src[w]
				}
			}
		}
		res[i] = out
	}
	return res
}

// evalTable evaluates a truth table bit-parallel over the input words by
// Shannon-expanding it as a sum of minterms via its ISOP cover.
func evalTable(fn tt.Table, ins [][]uint64, out []uint64) {
	cover := tt.ISOP(fn, tt.New(fn.NumVars()))
	cover.EvalWords(ins, len(out), out)
}

// ToBLIF exports the mapped netlist as a BLIF network with one .names node
// per LUT (cover rows from the LUT's ISOP).
func (n *LUTNetwork) ToBLIF() *blif.Network {
	g := n.source
	net := &blif.Network{Name: g.Name + "_mapped"}
	name := make(map[aig.Node]string)
	for i := 0; i < g.NumPIs(); i++ {
		nm := g.PIName(i)
		if nm == "" {
			nm = fmt.Sprintf("pi%d", i)
		}
		name[g.PI(i)] = nm
		net.Inputs = append(net.Inputs, nm)
	}
	for _, lut := range n.LUTs {
		name[lut.Root] = fmt.Sprintf("lut%d", lut.Root)
	}
	for _, lut := range n.LUTs {
		node := blif.Node{Output: name[lut.Root]}
		for _, l := range lut.Leaves {
			node.Inputs = append(node.Inputs, name[l])
		}
		cover := tt.ISOP(lut.Fn, tt.New(lut.Fn.NumVars()))
		for _, cube := range cover {
			pat := make([]byte, len(lut.Leaves))
			for v := range pat {
				bit := uint32(1) << uint(v)
				switch {
				case cube.Pos&bit != 0:
					pat[v] = '1'
				case cube.Neg&bit != 0:
					pat[v] = '0'
				default:
					pat[v] = '-'
				}
			}
			node.Cover = append(node.Cover, blif.Row{Pattern: string(pat), Value: '1'})
		}
		net.Nodes = append(net.Nodes, node)
	}
	used := map[string]int{}
	for i, po := range n.POs {
		nm := g.POName(i)
		if nm == "" {
			nm = fmt.Sprintf("po%d", i)
		}
		if c := used[nm]; c > 0 {
			nm = fmt.Sprintf("%s_%d", nm, c)
		}
		used[g.POName(i)]++
		net.Outputs = append(net.Outputs, nm)
		node := blif.Node{Output: nm}
		switch {
		case po.Const:
			if po.Compl {
				node.Cover = []blif.Row{{Pattern: "", Value: '1'}}
			}
		default:
			node.Inputs = []string{name[po.Root]}
			pat := "1"
			if po.Compl {
				pat = "0"
			}
			node.Cover = []blif.Row{{Pattern: pat, Value: '1'}}
		}
		net.Nodes = append(net.Nodes, node)
	}
	return net
}
