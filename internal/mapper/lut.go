// Package mapper implements technology mapping of AIGs: K-input LUT
// mapping for FPGA targets (the paper's "if -K 6" substitute) and standard-
// cell mapping against a genlib-style library for ASIC targets (the paper's
// "map -D" substitute). Both are cut-based dynamic programs over the
// priority cuts of package cut: a depth-optimal arrival time is computed
// per node and ties are broken by area flow, followed by a cover-extraction
// walk from the primary outputs.
package mapper

import (
	"math"

	"repro/internal/aig"
	"repro/internal/cut"
)

// LUTResult summarizes an FPGA mapping.
type LUTResult struct {
	K     int
	LUTs  int // number of LUTs in the extracted cover ("area")
	Depth int // LUT levels on the critical path ("delay")
	// Roots maps each mapped node to its chosen cut leaves.
	Roots map[aig.Node][]aig.Node
}

// MapLUT maps g into K-input LUTs, minimizing depth first and area flow
// second, and returns the extracted cover.
func MapLUT(g *aig.Graph, k int) LUTResult {
	sets := cut.Enumerate(g, cut.Config{K: k, PerNode: 16})
	refs := g.RefCounts()

	n := g.NumNodes()
	arr := make([]int32, n)
	flow := make([]float64, n)
	bestCut := make([]int, n)

	for nd := aig.Node(1); int(nd) < n; nd++ {
		if !g.IsAnd(nd) {
			continue
		}
		bestArr := int32(math.MaxInt32)
		bestFlow := math.Inf(1)
		bi := -1
		for ci, c := range sets.Cuts(nd) {
			if c.IsTrivial(nd) {
				continue
			}
			a := int32(0)
			f := 1.0
			for _, l := range c.Leaves {
				if arr[l] > a {
					a = arr[l]
				}
				f += flow[l]
			}
			a++
			if a < bestArr || (a == bestArr && f < bestFlow) {
				bestArr, bestFlow, bi = a, f, ci
			}
		}
		arr[nd] = bestArr
		bestCut[nd] = bi
		d := float64(refs[nd])
		if d < 1 {
			d = 1
		}
		flow[nd] = bestFlow / d
	}

	res := LUTResult{K: k, Roots: make(map[aig.Node][]aig.Node)}
	var stack []aig.Node
	for i := 0; i < g.NumPOs(); i++ {
		nd := g.PO(i).Node()
		if g.IsAnd(nd) {
			stack = append(stack, nd)
			if int(arr[nd]) > res.Depth {
				res.Depth = int(arr[nd])
			}
		}
	}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, done := res.Roots[nd]; done {
			continue
		}
		leaves := sets.Cuts(nd)[bestCut[nd]].Leaves
		res.Roots[nd] = leaves
		res.LUTs++
		for _, l := range leaves {
			if g.IsAnd(l) {
				stack = append(stack, l)
			}
		}
	}
	return res
}
