package mapper

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/cell"
	"repro/internal/tt"
)

func adder(n int) *aig.Graph {
	g := aig.New()
	a := g.AddPIs(n, "a")
	b := g.AddPIs(n, "b")
	carry := aig.LitFalse
	for i := 0; i < n; i++ {
		axb := g.Xor(a[i], b[i])
		g.AddPO(g.Xor(axb, carry), "s")
		carry = g.Or(g.And(a[i], b[i]), g.And(axb, carry))
	}
	g.AddPO(carry, "cout")
	return g
}

func randomGraph(nPIs, nGates int, seed int64) *aig.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < 3; i++ {
		g.AddPO(lits[len(lits)-1-i].NotCond(i == 1), "f")
	}
	return g
}

func TestMapLUTSmallFunctionsFitOneLUT(t *testing.T) {
	g := aig.New()
	xs := g.AddPIs(6, "x")
	// Any 6-input single-output function fits a single 6-LUT.
	f := g.Xor(g.AndN(xs[:3]...), g.OrN(xs[3:]...))
	g.AddPO(f, "f")
	r := MapLUT(g, 6)
	if r.LUTs != 1 || r.Depth != 1 {
		t.Fatalf("6-input function mapped to %d LUTs depth %d, want 1/1", r.LUTs, r.Depth)
	}
}

func TestMapLUTAdder(t *testing.T) {
	g := adder(8)
	r := MapLUT(g, 6)
	if r.LUTs <= 0 || r.LUTs > g.NumAnds() {
		t.Fatalf("LUT count %d out of range (ANDs %d)", r.LUTs, g.NumAnds())
	}
	if r.Depth <= 0 || r.Depth > g.Depth() {
		t.Fatalf("depth %d out of range (AIG depth %d)", r.Depth, g.Depth())
	}
	// Every chosen cut's leaves must themselves be mapped or PIs.
	for root, leaves := range r.Roots {
		if !g.IsAnd(root) {
			t.Fatalf("mapped root %d is not an AND", root)
		}
		for _, l := range leaves {
			if g.IsAnd(l) {
				if _, ok := r.Roots[l]; !ok {
					t.Fatalf("leaf %d of root %d is not mapped", l, root)
				}
			}
		}
	}
}

func TestMapLUTSmallerKMoreLUTs(t *testing.T) {
	g := adder(12)
	r6 := MapLUT(g, 6)
	r4 := MapLUT(g, 4)
	r2 := MapLUT(g, 2)
	if !(r6.LUTs <= r4.LUTs && r4.LUTs <= r2.LUTs) {
		t.Fatalf("LUT counts not monotone in K: K6=%d K4=%d K2=%d", r6.LUTs, r4.LUTs, r2.LUTs)
	}
	// K=2 LUTs are essentially AIG nodes.
	if r2.LUTs > g.NumAnds() {
		t.Fatalf("K2 mapping larger than AIG: %d > %d", r2.LUTs, g.NumAnds())
	}
}

func TestMatchTableCoversAllAndPhases(t *testing.T) {
	mt := BuildMatchTable(cell.MCNC())
	notIf := func(t tt.Table, c bool) tt.Table {
		if c {
			return t.Not()
		}
		return t
	}
	// All 2-input AND functions with arbitrary phases must be matched.
	for phase := 0; phase < 8; phase++ {
		f := notIf(tt.Var(2, 0), phase&1 != 0).And(notIf(tt.Var(2, 1), phase&2 != 0))
		f = notIf(f, phase&4 != 0)
		if _, ok := mt.Lookup(pad16(f)); !ok {
			t.Fatalf("AND phase %d not matched", phase)
		}
	}
	if mt.Size() < 300 {
		t.Fatalf("match table suspiciously small: %d functions", mt.Size())
	}
}

func TestTransform(t *testing.T) {
	// AND2 with inputs swapped and input 0 complemented: f(a,b) = ¬b ∧ a.
	and2 := tt.Var(2, 0).And(tt.Var(2, 1))
	got := transform(and2, 2, []int{1, 0}, 0b01)
	// Minterm over 4 vars: x0=a ... value = (¬x1) ∧ x0.
	var want uint16
	for m := 0; m < 16; m++ {
		if m&2 == 0 && m&1 != 0 {
			want |= 1 << uint(m)
		}
	}
	if got != want {
		t.Fatalf("transform = %04x, want %04x", got, want)
	}
}

func TestPad16(t *testing.T) {
	if pad16(tt.Ones(0)) != 0xFFFF || pad16(tt.New(0)) != 0 {
		t.Fatalf("constant padding wrong")
	}
	v0 := pad16(tt.Var(1, 0))
	if v0 != 0xAAAA {
		t.Fatalf("var0 over 1 var = %04x", v0)
	}
	x2 := pad16(tt.Var(3, 2))
	if x2 != 0xF0F0 {
		t.Fatalf("var2 over 3 vars = %04x", x2)
	}
}

func TestMapCellsAdder(t *testing.T) {
	g := adder(8)
	r := MapCells(g, cell.MCNC())
	if r.Area <= 0 || r.Gates <= 0 || r.Delay <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	// The mapping cannot use more gates than one cell per AND plus one
	// inverter per PO.
	if r.Gates > g.NumAnds()+g.NumPOs() {
		t.Fatalf("gate count %d too large", r.Gates)
	}
}

func TestMapCellsInverterForComplementedPO(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b), "f")
	r1 := MapCells(g, cell.MCNC())

	g2 := aig.New()
	a2 := g2.AddPI("a")
	b2 := g2.AddPI("b")
	g2.AddPO(g2.And(a2, b2).Not(), "f") // NAND: no extra inverter needed
	r2 := MapCells(g2, cell.MCNC())
	// NAND should be cheaper than or equal to AND in this library
	// (nand2 area 1 vs and2 area 2).
	if r2.Area > r1.Area {
		t.Fatalf("NAND mapping (%.1f) more expensive than AND (%.1f)", r2.Area, r1.Area)
	}
}

func TestMapCellsRandom(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomGraph(6, 50, seed)
		r := MapCells(g, cell.MCNC())
		if r.Area <= 0 || r.Delay <= 0 {
			t.Fatalf("seed %d: degenerate mapping %+v", seed, r)
		}
	}
}

func TestMapCellsConstantOutput(t *testing.T) {
	g := aig.New()
	g.AddPI("a")
	g.AddPO(aig.LitTrue, "one")
	g.AddPO(aig.LitFalse, "zero")
	r := MapCells(g, cell.MCNC())
	if r.Gates != 0 {
		t.Fatalf("constant outputs should need no gates, got %d", r.Gates)
	}
}
