package mapper

import (
	"bytes"
	"testing"

	"repro/internal/blif"
	"repro/internal/sim"
)

func TestLUTNetworkEvalMatchesAIG(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"adder", 6}, {"adder", 4}, {"random", 6},
	} {
		var g = adder(8)
		if tc.name == "random" {
			g = randomGraph(8, 80, 3)
		}
		net := ExtractLUTNetwork(g, tc.k)
		if net.NumLUTs() == 0 {
			t.Fatalf("%s/K%d: empty mapping", tc.name, tc.k)
		}
		p := sim.Uniform(g.NumPIs(), 8, 42)
		got := net.Eval(p)
		ref := sim.Simulate(g, p)
		for i := 0; i < g.NumPOs(); i++ {
			want := ref.LitInto(g.PO(i), make([]uint64, p.Words))
			for w := range want {
				if got[i][w] != want[w] {
					t.Fatalf("%s/K%d: PO %d differs from AIG", tc.name, tc.k, i)
				}
			}
		}
	}
}

func TestLUTNetworkRespectsK(t *testing.T) {
	g := adder(12)
	net := ExtractLUTNetwork(g, 4)
	for _, lut := range net.LUTs {
		if len(lut.Leaves) > 4 {
			t.Fatalf("LUT at %d has %d inputs", lut.Root, len(lut.Leaves))
		}
		if lut.Fn.NumVars() != len(lut.Leaves) {
			t.Fatalf("LUT table arity mismatch")
		}
	}
	if net.NumLUTs() != MapLUT(g, 4).LUTs {
		t.Fatalf("netlist LUT count disagrees with MapLUT")
	}
}

func TestLUTNetworkTopologicalOrder(t *testing.T) {
	g := randomGraph(6, 60, 9)
	net := ExtractLUTNetwork(g, 6)
	seen := map[int32]bool{}
	for i := 0; i < g.NumPIs(); i++ {
		seen[int32(g.PI(i))] = true
	}
	for _, lut := range net.LUTs {
		for _, l := range lut.Leaves {
			if !seen[int32(l)] {
				t.Fatalf("LUT %d uses leaf %d before its definition", lut.Root, l)
			}
		}
		seen[int32(lut.Root)] = true
	}
}

func TestLUTNetworkToBLIFRoundTrip(t *testing.T) {
	g := adder(6)
	net := ExtractLUTNetwork(g, 6)
	var buf bytes.Buffer
	if err := net.ToBLIF().Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := blif.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := parsed.ToAIG()
	if err != nil {
		t.Fatal(err)
	}
	p := sim.Uniform(g.NumPIs(), 8, 5)
	v1 := sim.Simulate(g, p)
	v2 := sim.Simulate(g2, p)
	for i := 0; i < g.NumPOs(); i++ {
		a := v1.LitInto(g.PO(i), make([]uint64, p.Words))
		b := v2.LitInto(g2.PO(i), make([]uint64, p.Words))
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("PO %d differs after BLIF round trip of mapped netlist", i)
			}
		}
	}
}

func TestLUTNetworkConstantPO(t *testing.T) {
	g := adder(4)
	g.AddPO(0x1, "one") // constant-true output
	net := ExtractLUTNetwork(g, 6)
	p := sim.Uniform(g.NumPIs(), 2, 7)
	got := net.Eval(p)
	last := got[len(got)-1]
	for _, w := range last {
		if w != ^uint64(0) {
			t.Fatalf("constant PO evaluated wrong")
		}
	}
}
