package mapper

import (
	"math"
	"math/bits"

	"repro/internal/aig"
	"repro/internal/cell"
	"repro/internal/cut"
	"repro/internal/tt"
)

// CellResult summarizes an ASIC mapping.
type CellResult struct {
	Area  float64
	Delay float64
	Gates int // number of library cell instances (inverters included)
}

// Match is the cheapest library realization of a 4-input function,
// including any inverters needed for input/output phases.
type Match struct {
	Cell  string
	Area  float64
	Delay float64
}

// MatchTable maps every 4-variable function (as a 16-bit truth table,
// padded when the cut is smaller) realizable by the library — under input
// permutation and input/output complementation with explicit inverter
// cost — to its cheapest realization.
type MatchTable struct {
	m   map[uint16]Match
	inv cell.Cell
}

// BuildMatchTable precomputes the function→cell match map for a library.
func BuildMatchTable(lib []cell.Cell) *MatchTable {
	inv := cell.Inverter(lib)
	mt := &MatchTable{m: make(map[uint16]Match, 1<<12), inv: inv}
	for _, c := range lib {
		k := c.NumIns
		perms := permutations(k)
		for _, perm := range perms {
			for phase := 0; phase < 1<<k; phase++ {
				f := transform(c.Fn, k, perm, phase)
				nInv := bits.OnesCount(uint(phase))
				area := c.Area + float64(nInv)*inv.Area
				delay := c.Delay
				if nInv > 0 {
					delay += inv.Delay
				}
				mt.consider(f, Match{Cell: c.Name, Area: area, Delay: delay})
				mt.consider(^f, Match{Cell: c.Name + "+inv", Area: area + inv.Area, Delay: delay + inv.Delay})
			}
		}
	}
	return mt
}

func (mt *MatchTable) consider(f uint16, m Match) {
	if old, ok := mt.m[f]; !ok || m.Area < old.Area ||
		(m.Area == old.Area && m.Delay < old.Delay) {
		mt.m[f] = m
	}
}

// Lookup returns the cheapest realization of f, if any.
func (mt *MatchTable) Lookup(f uint16) (Match, bool) {
	m, ok := mt.m[f]
	return m, ok
}

// Size returns the number of distinct matchable functions.
func (mt *MatchTable) Size() int { return len(mt.m) }

// permutations returns all injective maps of k cell inputs onto positions
// 0..3 as slices perm[i] = position of input i.
func permutations(k int) [][]int {
	var out [][]int
	var cur []int
	used := [4]bool{}
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for p := 0; p < 4; p++ {
			if used[p] {
				continue
			}
			used[p] = true
			cur = append(cur, p)
			rec()
			cur = cur[:len(cur)-1]
			used[p] = false
		}
	}
	rec()
	return out
}

// transform computes the 16-bit table of f applied to permuted, optionally
// complemented inputs: out(m) = f(x) with x_i = m[perm[i]] ^ phase_i.
func transform(f tt.Table, k int, perm []int, phase int) uint16 {
	var out uint16
	for m := 0; m < 16; m++ {
		idx := 0
		for i := 0; i < k; i++ {
			b := m >> uint(perm[i]) & 1
			b ^= phase >> uint(i) & 1
			idx |= b << uint(i)
		}
		if f.Get(idx) {
			out |= 1 << uint(m)
		}
	}
	return out
}

// pad16 widens a table over ≤4 variables into a 16-bit padded table.
func pad16(t tt.Table) uint16 {
	if t.NumVars() == 0 {
		if t.Get(0) {
			return 0xFFFF
		}
		return 0
	}
	w := t.Words()[0]
	switch t.NumVars() {
	case 1:
		w &= 0x3
		w |= w << 2
		fallthrough
	case 2:
		w &= 0xF
		w |= w << 4
		fallthrough
	case 3:
		w &= 0xFF
		w |= w << 8
	}
	return uint16(w)
}

// phaseChoice records how one (node, phase) is realized: either a direct
// library match over a cut, or an inverter fed by the opposite phase.
type phaseChoice struct {
	cutIdx  int
	match   Match
	fromInv bool
}

// MapCells maps g onto the given library, minimizing arrival time first and
// area flow second. Mapping is phase-aware: both polarities of every node
// are costed (a complemented output can be realized directly by a NAND-like
// cell rather than by an extra inverter).
func MapCells(g *aig.Graph, lib []cell.Cell) CellResult {
	mt := BuildMatchTable(lib)
	inv := cell.Inverter(lib)
	sets := cut.Enumerate(g, cut.Config{K: 4, PerNode: 8})
	refs := g.RefCounts()

	n := g.NumNodes()
	// Index 0 = positive phase, 1 = negative phase.
	arr := [2][]float64{make([]float64, n), make([]float64, n)}
	flow := [2][]float64{make([]float64, n), make([]float64, n)}
	choice := [2][]phaseChoice{make([]phaseChoice, n), make([]phaseChoice, n)}

	// PIs: positive phase free, negative phase one inverter.
	for i := 0; i < g.NumPIs(); i++ {
		pi := g.PI(i)
		arr[1][pi] = inv.Delay
		flow[1][pi] = inv.Area
		choice[1][pi] = phaseChoice{fromInv: true}
	}

	for nd := aig.Node(1); int(nd) < n; nd++ {
		if !g.IsAnd(nd) {
			continue
		}
		d := float64(refs[nd])
		if d < 1 {
			d = 1
		}
		for p := 0; p < 2; p++ {
			bestArr := math.Inf(1)
			bestFlow := math.Inf(1)
			var best phaseChoice
			for ci, c := range sets.Cuts(nd) {
				if c.IsTrivial(nd) {
					continue
				}
				f16 := pad16(cut.Table(g, nd, c.Leaves))
				if p == 1 {
					f16 = ^f16
				}
				m, ok := mt.Lookup(f16)
				if !ok {
					continue
				}
				a := 0.0
				fl := m.Area
				for _, l := range c.Leaves {
					if arr[0][l] > a {
						a = arr[0][l]
					}
					fl += flow[0][l]
				}
				a += m.Delay
				if a < bestArr || (a == bestArr && fl < bestFlow) {
					bestArr, bestFlow = a, fl
					best = phaseChoice{cutIdx: ci, match: m}
				}
			}
			arr[p][nd] = bestArr
			flow[p][nd] = bestFlow / d
			choice[p][nd] = best
		}
		// Allow each phase to come from the other through an inverter.
		for p := 0; p < 2; p++ {
			aInv := arr[1-p][nd] + inv.Delay
			fInv := flow[1-p][nd] + inv.Area/d
			if aInv < arr[p][nd] || (aInv == arr[p][nd] && fInv < flow[p][nd]) {
				arr[p][nd] = aInv
				flow[p][nd] = fInv
				choice[p][nd] = phaseChoice{fromInv: true}
			}
		}
		if math.IsInf(arr[0][nd], 1) && math.IsInf(arr[1][nd], 1) {
			panic("mapper: node has no matchable cut (library incomplete)")
		}
	}

	// Extract the cover from the primary outputs.
	res := CellResult{}
	type demand struct {
		nd aig.Node
		p  int
	}
	covered := make(map[demand]bool)
	var stack []demand
	need := func(nd aig.Node, p int) {
		if nd == 0 || (p == 0 && !g.IsAnd(nd)) {
			return // constants and positive PIs are free
		}
		stack = append(stack, demand{nd, p})
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		p := 0
		if po.IsCompl() {
			p = 1
		}
		nd := po.Node()
		a := 0.0
		if nd != 0 {
			a = arr[p][nd]
		}
		if a > res.Delay {
			res.Delay = a
		}
		need(nd, p)
	}
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if covered[d] {
			continue
		}
		covered[d] = true
		ch := choice[d.p][d.nd]
		if ch.fromInv {
			res.Area += inv.Area
			res.Gates++
			need(d.nd, 1-d.p)
			continue
		}
		res.Area += ch.match.Area
		res.Gates++
		for _, l := range sets.Cuts(d.nd)[ch.cutIdx].Leaves {
			need(l, 0)
		}
	}
	return res
}
