package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

func randomGraph(rng *rand.Rand, nPIs, size int) *aig.Graph {
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for len(lits) < nPIs+size {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, g.And(a, b))
		} else {
			lits = append(lits, g.Xor(a, b))
		}
	}
	for i := 0; i < 4; i++ {
		g.AddPO(lits[len(lits)-1-i].NotCond(i%2 == 0), "")
	}
	return g.Sweep()
}

func randomReplacement(rng *rand.Rand, g *aig.Graph, v aig.Node) aig.Lit {
	if rng.Intn(8) == 0 {
		return aig.LitFalse
	}
	pick := func() aig.Lit {
		n := aig.Node(rng.Intn(int(v)))
		for g.Kind(n) == aig.KindDead {
			n--
		}
		return aig.MakeLit(n, rng.Intn(2) == 0)
	}
	return g.And(pick(), pick())
}

func liveAnds(g *aig.Graph) []aig.Node {
	var out []aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			out = append(out, n)
		}
	}
	return out
}

// TestArenaMatchesFullSimulation is the tentpole bit-identity property:
// random in-place replacement sequences, with an Arena.Update after each
// commit, must leave every live node's value words bitwise identical to a
// from-scratch SimulateWorkers run on the mutated graph — for every worker
// count, at every step.
func TestArenaMatchesFullSimulation(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(workers)))
			g := randomGraph(rng, 8, 70)
			pats := sim.Uniform(g.NumPIs(), 4, seed+500)
			arena := sim.NewArena(g, pats, workers)
			for step := 0; step < 25; step++ {
				ands := liveAnds(g)
				if len(ands) == 0 {
					break
				}
				v := ands[rng.Intn(len(ands))]
				g.ReplaceNode(v, randomReplacement(rng, g, v), nil)
				arena.Update()

				ref := sim.SimulateWorkers(g, pats, workers)
				got := arena.Vectors()
				for n := aig.Node(0); int(n) < g.NumNodes(); n++ {
					if g.Kind(n) == aig.KindDead {
						continue
					}
					gw, rw := got.Node(n), ref.Node(n)
					for w := range rw {
						if gw[w] != rw[w] {
							t.Fatalf("workers %d seed %d step %d: node %d word %d: arena %x, full sim %x",
								workers, seed, step, n, w, gw[w], rw[w])
						}
					}
				}
				ref.Release()
			}
			arena.Release()
		}
	}
}

// TestArenaUpdateIsIncremental pins that Update actually prunes: a
// replacement near the outputs of a deep chain must re-evaluate far fewer
// nodes than the graph holds.
func TestArenaUpdateIsIncremental(t *testing.T) {
	g := aig.New()
	in := g.AddPIs(4, "x")
	// A long chain with a small side branch near the top.
	l := in[0]
	for i := 0; i < 200; i++ {
		l = g.Xor(l, in[1+i%3])
	}
	side := g.And(in[1], in[2])
	top := g.And(l, side)
	g.AddPO(top, "y")
	g.AddPO(l, "chain")
	g = g.Sweep()

	pats := sim.Uniform(g.NumPIs(), 4, 1)
	arena := sim.NewArena(g, pats, 1)
	defer arena.Release()

	// Replace the side branch: only a handful of nodes sit in its TFO.
	var target aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) && g.Fanin0(n) == in[1] && g.Fanin1(n) == in[2] {
			target = n
			break
		}
	}
	if target == 0 {
		t.Fatal("side branch not found")
	}
	g.ReplaceNode(target, g.And(in[2], in[3]), nil)
	evals := arena.Update()
	if evals == 0 || evals > 10 {
		t.Fatalf("Update evaluated %d nodes for a 2-node TFO change in a %d-node graph",
			evals, g.NumAnds())
	}
	ref := sim.Simulate(g, pats)
	defer ref.Release()
	for n := aig.Node(0); int(n) < g.NumNodes(); n++ {
		if g.Kind(n) == aig.KindDead {
			continue
		}
		gw, rw := arena.Vectors().Node(n), ref.Node(n)
		for w := range rw {
			if gw[w] != rw[w] {
				t.Fatalf("node %d word %d differs after pruned update", n, w)
			}
		}
	}
}

// TestArenaRebind pins that rerolling the patterns (and swapping the graph
// object) resets the arena to a full simulation of the new binding.
func TestArenaRebind(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 6, 40)
	p1 := sim.Uniform(g.NumPIs(), 2, 10)
	arena := sim.NewArena(g, p1, 2)
	defer arena.Release()

	g2 := g.Sweep()
	p2 := sim.Uniform(g2.NumPIs(), 3, 11)
	arena.Rebind(g2, p2)
	ref := sim.SimulateWorkers(g2, p2, 2)
	defer ref.Release()
	for n := aig.Node(0); int(n) < g2.NumNodes(); n++ {
		if g2.Kind(n) == aig.KindDead {
			continue
		}
		gw, rw := arena.Vectors().Node(n), ref.Node(n)
		for w := range rw {
			if gw[w] != rw[w] {
				t.Fatalf("node %d word %d differs after rebind", n, w)
			}
		}
	}
	if arena.Patterns() != p2 {
		t.Fatal("arena not bound to the new patterns")
	}
}
