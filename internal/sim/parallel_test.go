package sim

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/wordops"
)

// randomAIG builds a random DAG with nPIs inputs, nAnds AND attempts and a
// few POs. Structural hashing may fold some ANDs; that is fine for the
// property tests here.
func randomAIG(rng *rand.Rand, nPIs, nAnds, nPOs int) *aig.Graph {
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPOs; i++ {
		g.AddPO(lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0), "f")
	}
	return g
}

// TestSimulateWorkersBitwiseIdentical: word-column sharding must reproduce
// the sequential simulation exactly, for every worker count (including
// counts that do not divide the word count and counts above it).
func TestSimulateWorkersBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		g := randomAIG(rng, 8, 60, 4)
		p := Uniform(g.NumPIs(), 7, int64(trial+1)) // 7 words: odd on purpose
		ref := SimulateWorkers(g, p, 1)
		for _, workers := range []int{2, 3, 4, 8, 16} {
			v := SimulateWorkers(g, p, workers)
			for n := aig.Node(0); int(n) < g.NumNodes(); n++ {
				for w := 0; w < p.Words; w++ {
					if v.Node(n)[w] != ref.Node(n)[w] {
						t.Fatalf("trial %d workers %d: node %d word %d differs",
							trial, workers, n, w)
					}
				}
			}
			v.Release()
		}
		ref.Release()
	}
}

// TestVectorsPoolReuse: releasing and re-simulating must not leak stale
// values through the pooled backing array — in particular the constant
// node's vector must be re-zeroed.
func TestVectorsPoolReuse(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	g.AddPO(g.And(a, a.Not()), "zero") // folds to constant false
	g.AddPO(a, "a")

	p := Exhaustive(1)
	for round := 0; round < 3; round++ {
		v := Simulate(g, p)
		if got := v.Node(0)[0]; got != 0 {
			t.Fatalf("round %d: constant node vector = %x, want 0", round, got)
		}
		if got := v.LitInto(g.PO(0), make([]uint64, 1))[0]; got != 0 {
			t.Fatalf("round %d: constant PO = %x, want 0", round, got)
		}
		// Dirty the buffer before releasing so reuse bugs surface.
		for i := range v.flat {
			v.flat[i] = ^uint64(0)
		}
		v.Release()
	}
}

// fullRescanResimulate reproduces the pre-event-queue Resimulator behavior:
// scan EVERY node above n and re-evaluate those with a changed fanin. It is
// the reference the event-driven implementation must match.
func fullRescanResimulate(g *aig.Graph, base *Vectors, n aig.Node, newVec []uint64, out [][]uint64) {
	overlay := make([][]uint64, g.NumNodes())
	overlay[n] = append([]uint64(nil), newVec...)
	get := func(m aig.Node) []uint64 {
		if o := overlay[m]; o != nil {
			return o
		}
		return base.Node(m)
	}
	for m := n + 1; int(m) < g.NumNodes(); m++ {
		if !g.IsAnd(m) {
			continue
		}
		if overlay[g.Fanin0(m).Node()] == nil && overlay[g.Fanin1(m).Node()] == nil {
			continue
		}
		buf := make([]uint64, base.Words)
		evalAnd(g, m, get, buf)
		eq := true
		for i := range buf {
			if buf[i] != base.Node(m)[i] {
				eq = false
				break
			}
		}
		if eq {
			continue
		}
		overlay[m] = buf
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		src := get(po.Node())
		for w := range out[i] {
			if po.IsCompl() {
				out[i][w] = ^src[w]
			} else {
				out[i][w] = src[w]
			}
		}
	}
}

// TestResimulatorEventDrivenMatchesFullRescan: property test on random AIGs
// — for random (node, replacement-vector) pairs the event-driven TFO walk
// must produce the same PO words as the old full-rescan sweep.
func TestResimulatorEventDrivenMatchesFullRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := randomAIG(rng, 6+rng.Intn(6), 30+rng.Intn(120), 1+rng.Intn(5))
		if g.NumAnds() == 0 {
			continue
		}
		p := Uniform(g.NumPIs(), 1+rng.Intn(4), int64(trial))
		base := Simulate(g, p)
		r := NewResimulator(g, base)
		got := make([][]uint64, g.NumPOs())
		want := make([][]uint64, g.NumPOs())
		for i := range got {
			got[i] = make([]uint64, base.Words)
			want[i] = make([]uint64, base.Words)
		}
		for rep := 0; rep < 10; rep++ {
			var n aig.Node
			for {
				n = aig.Node(rng.Intn(g.NumNodes()-1) + 1)
				if g.IsAnd(n) {
					break
				}
			}
			newVec := make([]uint64, base.Words)
			for w := range newVec {
				newVec[w] = rng.Uint64()
			}
			r.Resimulate(n, newVec)
			r.POWordsInto(got)
			fullRescanResimulate(g, base, n, newVec, want)
			for i := range want {
				for w := range want[i] {
					if got[i][w] != want[i][w] {
						t.Fatalf("trial %d rep %d node %d: PO %d word %d: event-driven %x, full rescan %x",
							trial, rep, n, i, w, got[i][w], want[i][w])
					}
				}
			}
		}
		r.Release()
		base.Release()
	}
}

// TestResimulatorForkIndependence: a Fork must share base values but keep
// its own overlay, so interleaved Resimulate calls cannot interfere.
func TestResimulatorForkIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomAIG(rng, 6, 40, 3)
	p := Uniform(g.NumPIs(), 2, 9)
	base := Simulate(g, p)
	r := NewResimulator(g, base)
	f := r.Fork()

	var n1, n2 aig.Node
	for {
		n1 = aig.Node(rng.Intn(g.NumNodes()-1) + 1)
		if g.IsAnd(n1) {
			break
		}
	}
	for {
		n2 = aig.Node(rng.Intn(g.NumNodes()-1) + 1)
		if g.IsAnd(n2) && n2 != n1 {
			break
		}
	}
	v1 := make([]uint64, base.Words)
	v2 := make([]uint64, base.Words)
	for w := range v1 {
		v1[w] = rng.Uint64()
		v2[w] = rng.Uint64()
	}

	want1 := make([][]uint64, g.NumPOs())
	want2 := make([][]uint64, g.NumPOs())
	got := make([][]uint64, g.NumPOs())
	for i := range got {
		want1[i] = make([]uint64, base.Words)
		want2[i] = make([]uint64, base.Words)
		got[i] = make([]uint64, base.Words)
	}
	fullRescanResimulate(g, base, n1, v1, want1)
	fullRescanResimulate(g, base, n2, v2, want2)

	// Interleave: root resimulates n1, fork resimulates n2, then read both.
	r.Resimulate(n1, v1)
	f.Resimulate(n2, v2)
	r.POWordsInto(got)
	for i := range got {
		for w := range got[i] {
			if got[i][w] != want1[i][w] {
				t.Fatalf("root PO %d word %d: %x want %x", i, w, got[i][w], want1[i][w])
			}
		}
	}
	f.POWordsInto(got)
	for i := range got {
		for w := range got[i] {
			if got[i][w] != want2[i][w] {
				t.Fatalf("fork PO %d word %d: %x want %x", i, w, got[i][w], want2[i][w])
			}
		}
	}
	f.Release()
	r.Release()
	base.Release()
}

// TestSimWorkersClamp pins the small-simulation fan-out skip: below the
// per-worker work floor extra workers are dropped (the CLA32×256-word
// benchmark case regressed 54% at workers=4 before the clamp), while a
// large simulation keeps the requested parallelism.
func TestSimWorkersClamp(t *testing.T) {
	// 333 ANDs × 256 words ≈ 85K evals: under one work quantum → sequential.
	if got := simWorkers(4, 333, 256); got != 1 {
		t.Fatalf("small simulation kept %d workers, want 1", got)
	}
	// 1M ANDs × 128 words: far above the floor → knob honored.
	if got := simWorkers(4, 1_000_000, 128); got != 4 {
		t.Fatalf("large simulation clamped to %d workers, want 4", got)
	}
	// The word count still bounds the shard count.
	if got := simWorkers(8, 1_000_000, 3); got != 3 {
		t.Fatalf("worker count exceeded word count: %d", got)
	}
	bounds := shardBounds(4, 10)
	if bounds[0] != 0 || bounds[4] != 10 {
		t.Fatalf("shard bounds do not cover the word range: %v", bounds[:5])
	}
	for w := 0; w < 4; w++ {
		if bounds[w] > bounds[w+1] {
			t.Fatalf("shard bounds not monotone: %v", bounds[:5])
		}
	}
	wordops.PutI32(bounds)
}
