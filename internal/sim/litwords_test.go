package sim

import (
	"testing"

	"repro/internal/aig"
)

// TestLitWords checks that the zero-copy word view of a literal matches the
// bit-probe accessor under both phases.
func TestLitWords(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	f := g.And(a, b.Not())
	g.AddPO(f, "f")

	p := UniformN(2, 100, 3)
	v := Simulate(g, p)
	defer v.Release()

	for _, l := range []aig.Lit{a, f, f.Not(), aig.MakeLit(f.Node(), true)} {
		ws, inv := v.LitWords(l)
		if l.IsCompl() != (inv == ^uint64(0)) {
			t.Fatalf("lit %v: inv = %#x", l, inv)
		}
		for pat := 0; pat < p.Valid; pat++ {
			got := (ws[pat>>6]^inv)>>(uint(pat)&63)&1 == 1
			if got != v.LitBit(l, pat) {
				t.Fatalf("lit %v pattern %d: words say %v, LitBit says %v",
					l, pat, got, v.LitBit(l, pat))
			}
		}
	}
}
