// Package sim implements 64-way bit-parallel logic simulation over AIGs.
//
// A simulation run evaluates the circuit on 64·W input patterns at once,
// where W is the word count: every node carries a []uint64 whose bit b of
// word w is the node's value under pattern 64·w+b. This is the workhorse
// behind ALSRAC's approximate care sets, its feasibility checks, and the
// batch error estimator.
package sim

import (
	"math/rand"

	"repro/internal/aig"
)

// Patterns holds input stimuli: In[i] is the value word slice of primary
// input i, all of length Words. Valid is the number of meaningful patterns;
// consumers that look at individual patterns (care-set construction,
// feasibility checks) must ignore bit positions at or beyond Valid. Word-
// granular consumers (the simulator itself) may process whole words.
type Patterns struct {
	Words int
	Valid int
	In    [][]uint64
}

// NumPatterns returns the number of valid input patterns.
func (p *Patterns) NumPatterns() int { return p.Valid }

// Uniform returns uniformly random patterns for nPIs inputs, seeded
// deterministically.
func Uniform(nPIs, words int, seed int64) *Patterns {
	rng := rand.New(rand.NewSource(seed))
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, nPIs)}
	for i := range p.In {
		w := make([]uint64, words)
		for j := range w {
			w[j] = rng.Uint64()
		}
		p.In[i] = w
	}
	return p
}

// UniformN returns exactly n uniformly random patterns (the backing words
// are rounded up to a multiple of 64; Valid is set to n). This supports the
// paper's care-set simulation rounds such as N=32.
func UniformN(nPIs, n int, seed int64) *Patterns {
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	p := Uniform(nPIs, words, seed)
	p.Valid = n
	return p
}

// Biased returns patterns where input i is 1 with probability probs[i],
// independently per pattern. It implements the paper's "user-specified
// distribution" knob for non-uniform primary inputs.
func Biased(probs []float64, words int, seed int64) *Patterns {
	rng := rand.New(rand.NewSource(seed))
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, len(probs))}
	for i, prob := range probs {
		w := make([]uint64, words)
		for j := range w {
			var word uint64
			for b := 0; b < 64; b++ {
				if rng.Float64() < prob {
					word |= 1 << uint(b)
				}
			}
			w[j] = word
		}
		p.In[i] = w
	}
	return p
}

// Exhaustive returns all 2^nPIs input patterns (nPIs ≤ 20). When nPIs < 6
// the 64-pattern word cycles through the minterms repeatedly, which keeps
// every pattern equally weighted, so averages over the pattern set are still
// exact expectations under the uniform distribution.
func Exhaustive(nPIs int) *Patterns {
	if nPIs > 20 {
		panic("sim: Exhaustive limited to 20 inputs")
	}
	words := 1
	if nPIs > 6 {
		words = 1 << (nPIs - 6)
	}
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, nPIs)}
	for i := 0; i < nPIs; i++ {
		w := make([]uint64, words)
		if i < 6 {
			// Repeating intra-word mask.
			var mask uint64
			period := uint(1) << uint(i)
			for b := uint(0); b < 64; b++ {
				if b&period != 0 {
					mask |= 1 << b
				}
			}
			for j := range w {
				w[j] = mask
			}
		} else {
			block := 1 << (i - 6)
			for j := range w {
				if j&block != 0 {
					w[j] = ^uint64(0)
				}
			}
		}
		p.In[i] = w
	}
	return p
}

// FromFunc builds patterns by calling fill(i, w) for every input, allowing
// arbitrary (e.g. correlated) stimulus distributions.
func FromFunc(nPIs, words int, fill func(pi int, w []uint64)) *Patterns {
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, nPIs)}
	for i := range p.In {
		w := make([]uint64, words)
		fill(i, w)
		p.In[i] = w
	}
	return p
}

// Vectors holds the simulated value words of every node of a graph.
type Vectors struct {
	Words int
	flat  []uint64
}

// Node returns the value words of node n (a live sub-slice, not a copy).
func (v *Vectors) Node(n aig.Node) []uint64 {
	return v.flat[int(n)*v.Words : (int(n)+1)*v.Words]
}

// LitInto writes the value words of literal l into dst (complementing when
// needed) and returns dst.
func (v *Vectors) LitInto(l aig.Lit, dst []uint64) []uint64 {
	src := v.Node(l.Node())
	if l.IsCompl() {
		for i := range dst {
			dst[i] = ^src[i]
		}
	} else {
		copy(dst, src)
	}
	return dst
}

// LitBit returns the value of literal l under pattern index p.
func (v *Vectors) LitBit(l aig.Lit, p int) bool {
	bit := v.Node(l.Node())[p>>6]>>(uint(p)&63)&1 == 1
	return bit != l.IsCompl()
}

// Simulate evaluates graph g on the given patterns and returns the value
// vectors of every node. The pattern input count must match g.NumPIs().
func Simulate(g *aig.Graph, p *Patterns) *Vectors {
	if len(p.In) != g.NumPIs() {
		panic("sim: pattern input count does not match graph")
	}
	W := p.Words
	v := &Vectors{Words: W, flat: make([]uint64, g.NumNodes()*W)}
	for i := 0; i < g.NumPIs(); i++ {
		copy(v.Node(g.PI(i)), p.In[i])
	}
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		evalAnd(g, n, v.Node, v.Node(n))
	}
	return v
}

// evalAnd computes the AND node n into out, reading fanin vectors through
// the get accessor (which lets callers overlay changed vectors).
func evalAnd(g *aig.Graph, n aig.Node, get func(aig.Node) []uint64, out []uint64) {
	f0, f1 := g.Fanin0(n), g.Fanin1(n)
	a := get(f0.Node())
	b := get(f1.Node())
	switch {
	case !f0.IsCompl() && !f1.IsCompl():
		for i := range out {
			out[i] = a[i] & b[i]
		}
	case f0.IsCompl() && !f1.IsCompl():
		for i := range out {
			out[i] = ^a[i] & b[i]
		}
	case !f0.IsCompl() && f1.IsCompl():
		for i := range out {
			out[i] = a[i] &^ b[i]
		}
	default:
		for i := range out {
			out[i] = ^(a[i] | b[i])
		}
	}
}

// POWords collects the primary-output value words of a simulated graph into
// a freshly allocated [nPOs][Words] slice.
func POWords(g *aig.Graph, v *Vectors) [][]uint64 {
	out := make([][]uint64, g.NumPOs())
	for i := range out {
		out[i] = v.LitInto(g.PO(i), make([]uint64, v.Words))
	}
	return out
}

// Resimulator incrementally re-simulates the transitive fanout of a single
// node whose value vector has been replaced, leaving the base Vectors
// untouched. It is the core primitive of the batch error estimator: one
// Resimulate call per (node, replacement-vector) pair yields the exact
// primary-output words the circuit would produce.
type Resimulator struct {
	g    *aig.Graph
	base *Vectors
	// overlay[n] is non-nil when node n has a recomputed vector.
	overlay [][]uint64
	touched []aig.Node
	pool    [][]uint64
}

// NewResimulator prepares incremental re-simulation over the given base
// simulation of graph g.
func NewResimulator(g *aig.Graph, base *Vectors) *Resimulator {
	return &Resimulator{g: g, base: base, overlay: make([][]uint64, g.NumNodes())}
}

func (r *Resimulator) get(n aig.Node) []uint64 {
	if o := r.overlay[n]; o != nil {
		return o
	}
	return r.base.Node(n)
}

func (r *Resimulator) alloc() []uint64 {
	if len(r.pool) > 0 {
		w := r.pool[len(r.pool)-1]
		r.pool = r.pool[:len(r.pool)-1]
		return w
	}
	return make([]uint64, r.base.Words)
}

// Resimulate replaces node n's value vector with newVec, recomputes n's
// transitive fanout, and returns an accessor for the updated node vectors.
// The overlay stays valid until the next Resimulate call.
func (r *Resimulator) Resimulate(n aig.Node, newVec []uint64) func(aig.Node) []uint64 {
	r.reset()
	ov := r.alloc()
	copy(ov, newVec)
	r.overlay[n] = ov
	r.touched = append(r.touched, n)
	for m := n + 1; int(m) < r.g.NumNodes(); m++ {
		if !r.g.IsAnd(m) {
			continue
		}
		if r.overlay[r.g.Fanin0(m).Node()] == nil && r.overlay[r.g.Fanin1(m).Node()] == nil {
			continue
		}
		out := r.alloc()
		evalAnd(r.g, m, r.get, out)
		// Skip nodes whose value did not actually change: this prunes the
		// fanout frontier the same way event-driven simulation does.
		if wordsEqual(out, r.base.Node(m)) {
			r.pool = append(r.pool, out)
			continue
		}
		r.overlay[m] = out
		r.touched = append(r.touched, m)
	}
	return r.get
}

// POWordsInto evaluates the primary output words under the current overlay,
// writing PO i into out[i].
func (r *Resimulator) POWordsInto(out [][]uint64) {
	for i := 0; i < r.g.NumPOs(); i++ {
		po := r.g.PO(i)
		src := r.get(po.Node())
		dst := out[i]
		if po.IsCompl() {
			for j := range dst {
				dst[j] = ^src[j]
			}
		} else {
			copy(dst, src)
		}
	}
}

func (r *Resimulator) reset() {
	for _, n := range r.touched {
		r.pool = append(r.pool, r.overlay[n])
		r.overlay[n] = nil
	}
	r.touched = r.touched[:0]
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
