// Package sim implements 64-way bit-parallel logic simulation over AIGs.
//
// A simulation run evaluates the circuit on 64·W input patterns at once,
// where W is the word count: every node carries a []uint64 whose bit b of
// word w is the node's value under pattern 64·w+b. This is the workhorse
// behind ALSRAC's approximate care sets, its feasibility checks, and the
// batch error estimator.
//
// Word columns are independent under bit-parallel evaluation, so Simulate
// can shard the [0, Words) range across worker goroutines (see
// SimulateWorkers): every worker evaluates the full topological order over
// its own word chunk, writing disjoint sub-ranges of every node vector.
// The result is bitwise identical for every worker count.
package sim

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/aig"
	"repro/internal/wordops"
)

// Patterns holds input stimuli: In[i] is the value word slice of primary
// input i, all of length Words. Valid is the number of meaningful patterns;
// consumers that look at individual patterns (care-set construction,
// feasibility checks) must ignore bit positions at or beyond Valid. Word-
// granular consumers (the simulator itself) may process whole words.
type Patterns struct {
	Words int
	Valid int
	In    [][]uint64
}

// NumPatterns returns the number of valid input patterns.
func (p *Patterns) NumPatterns() int { return p.Valid }

// Uniform returns uniformly random patterns for nPIs inputs, seeded
// deterministically.
func Uniform(nPIs, words int, seed int64) *Patterns {
	rng := rand.New(rand.NewSource(seed))
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, nPIs)}
	for i := range p.In {
		w := make([]uint64, words)
		for j := range w {
			w[j] = rng.Uint64()
		}
		p.In[i] = w
	}
	return p
}

// UniformN returns exactly n uniformly random patterns (the backing words
// are rounded up to a multiple of 64; Valid is set to n). This supports the
// paper's care-set simulation rounds such as N=32.
func UniformN(nPIs, n int, seed int64) *Patterns {
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	p := Uniform(nPIs, words, seed)
	p.Valid = n
	return p
}

// Biased returns patterns where input i is 1 with probability probs[i],
// independently per pattern. It implements the paper's "user-specified
// distribution" knob for non-uniform primary inputs.
func Biased(probs []float64, words int, seed int64) *Patterns {
	rng := rand.New(rand.NewSource(seed))
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, len(probs))}
	for i, prob := range probs {
		w := make([]uint64, words)
		for j := range w {
			var word uint64
			for b := 0; b < 64; b++ {
				if rng.Float64() < prob {
					word |= 1 << uint(b)
				}
			}
			w[j] = word
		}
		p.In[i] = w
	}
	return p
}

// Exhaustive returns all 2^nPIs input patterns (nPIs ≤ 20). When nPIs < 6
// the 64-pattern word cycles through the minterms repeatedly, which keeps
// every pattern equally weighted, so averages over the pattern set are still
// exact expectations under the uniform distribution.
func Exhaustive(nPIs int) *Patterns {
	if nPIs > 20 {
		panic("sim: Exhaustive limited to 20 inputs")
	}
	words := 1
	if nPIs > 6 {
		words = 1 << (nPIs - 6)
	}
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, nPIs)}
	for i := 0; i < nPIs; i++ {
		w := make([]uint64, words)
		if i < 6 {
			// Repeating intra-word mask.
			var mask uint64
			period := uint(1) << uint(i)
			for b := uint(0); b < 64; b++ {
				if b&period != 0 {
					mask |= 1 << b
				}
			}
			for j := range w {
				w[j] = mask
			}
		} else {
			block := 1 << (i - 6)
			for j := range w {
				if j&block != 0 {
					w[j] = ^uint64(0)
				}
			}
		}
		p.In[i] = w
	}
	return p
}

// FromFunc builds patterns by calling fill(i, w) for every input, allowing
// arbitrary (e.g. correlated) stimulus distributions.
func FromFunc(nPIs, words int, fill func(pi int, w []uint64)) *Patterns {
	p := &Patterns{Words: words, Valid: 64 * words, In: make([][]uint64, nPIs)}
	for i := range p.In {
		w := make([]uint64, words)
		fill(i, w)
		p.In[i] = w
	}
	return p
}

// Workers resolves a worker-count knob against the number of shardable work
// units: n ≤ 0 means GOMAXPROCS, and the result never exceeds units (nor
// drops below 1).
func Workers(n, units int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > units {
		n = units
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Vectors holds the simulated value words of every node of a graph.
type Vectors struct {
	Words int
	flat  []uint64
}

// NewVectors returns a Vectors able to hold vectors of `words` words for
// `nodes` nodes. The backing array is drawn from the shared word pool; the
// constant node's words are zeroed, all other node vectors are expected to
// be fully written by simulation before being read.
func NewVectors(nodes, words int) *Vectors {
	flat := wordops.Get(nodes * words)
	for i := 0; i < words; i++ {
		flat[i] = 0
	}
	return &Vectors{Words: words, flat: flat}
}

// Release returns the backing array to the shared word pool. The Vectors
// (and every slice previously obtained from Node) must not be used
// afterwards. Release on an already-released or nil Vectors is a no-op.
func (v *Vectors) Release() {
	if v == nil || v.flat == nil {
		return
	}
	wordops.Put(v.flat)
	v.flat = nil
}

// Node returns the value words of node n (a live sub-slice, not a copy).
func (v *Vectors) Node(n aig.Node) []uint64 {
	return v.flat[int(n)*v.Words : (int(n)+1)*v.Words]
}

// LitInto writes the value words of literal l into dst (complementing when
// needed) and returns dst.
func (v *Vectors) LitInto(l aig.Lit, dst []uint64) []uint64 {
	wordops.CopyOrNot(dst, v.Node(l.Node()), l.IsCompl())
	return dst
}

// LitBit returns the value of literal l under pattern index p.
func (v *Vectors) LitBit(l aig.Lit, p int) bool {
	bit := v.Node(l.Node())[p>>6]>>(uint(p)&63)&1 == 1
	return bit != l.IsCompl()
}

// LitWords returns the raw value words of literal l's node together with
// the complement mask to XOR them with (all ones for a complemented
// literal, zero otherwise). Word-level kernels consume literals through
// this accessor without copying or materializing the complement.
func (v *Vectors) LitWords(l aig.Lit) (ws []uint64, inv uint64) {
	ws = v.Node(l.Node())
	if l.IsCompl() {
		inv = ^uint64(0)
	}
	return ws, inv
}

// Simulate evaluates graph g on the given patterns and returns the value
// vectors of every node. The pattern input count must match g.NumPIs().
// It runs on the calling goroutine; see SimulateWorkers for the sharded
// version (the results are bitwise identical).
func Simulate(g *aig.Graph, p *Patterns) *Vectors { return SimulateWorkers(g, p, 1) }

// minSimWorkPerWorker is the minimum number of word-level AND evaluations
// (NumAnds × words) each extra worker goroutine must bring before fanning
// out pays for its spawn/join and cache traffic. Below it, small
// simulations (a few hundred gates × a few hundred words) ran measurably
// SLOWER with more workers; large AIGs are far above it and keep full
// parallelism.
const minSimWorkPerWorker = 1 << 17

// simWorkers resolves the worker count for a simulation of ands AND nodes
// over W words: the caller's knob, bounded by the word count and by the
// total work per the minSimWorkPerWorker floor.
func simWorkers(workers, ands, W int) int {
	workers = Workers(workers, W)
	if maxByWork := ands * W / minSimWorkPerWorker; workers > maxByWork {
		workers = maxByWork
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}

// shardBounds writes the word-range shard descriptors for the given worker
// count into a pooled array: worker w owns [bounds[w], bounds[w+1]). The
// caller returns the array with wordops.PutI32. Reusing one pooled
// descriptor array keeps the fan-out path off the allocator instead of
// materializing per-worker range pairs each call.
func shardBounds(workers, W int) []int32 {
	bounds := wordops.GetI32(workers + 1)
	for w := 0; w <= workers; w++ {
		bounds[w] = int32(w * W / workers)
	}
	return bounds
}

// SimulateWorkers evaluates graph g on the given patterns with the given
// number of worker goroutines (0 = GOMAXPROCS). The word range [0, Words)
// is split into one chunk per worker; each worker evaluates the full
// topological order over its chunk, so the result is bitwise identical to
// the sequential evaluation regardless of the worker count. Fan-out is
// skipped entirely when the simulation is too small to amortize it.
func SimulateWorkers(g *aig.Graph, p *Patterns, workers int) *Vectors {
	if len(p.In) != g.NumPIs() {
		panic("sim: pattern input count does not match graph")
	}
	W := p.Words
	v := NewVectors(g.NumNodes(), W)
	for i := 0; i < g.NumPIs(); i++ {
		copy(v.Node(g.PI(i)), p.In[i])
	}
	workers = simWorkers(workers, g.NumAnds(), W)
	if workers <= 1 {
		simulateRange(g, v, 0, W)
		return v
	}
	bounds := shardBounds(workers, W)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			simulateRange(g, v, lo, hi)
		}(int(lo), int(hi))
	}
	wg.Wait()
	wordops.PutI32(bounds)
	return v
}

// simulateRange evaluates every AND node over the word sub-range [lo, hi).
//
//alsrac:hotpath
func simulateRange(g *aig.Graph, v *Vectors, lo, hi int) {
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		f0, f1 := g.Fanin0(n), g.Fanin1(n)
		wordops.And(v.Node(n)[lo:hi],
			v.Node(f0.Node())[lo:hi], v.Node(f1.Node())[lo:hi],
			f0.IsCompl(), f1.IsCompl())
	}
}

// evalAnd computes the AND node n into out, reading fanin vectors through
// the get accessor (which lets callers overlay changed vectors).
//
//alsrac:hotpath
func evalAnd(g *aig.Graph, n aig.Node, get func(aig.Node) []uint64, out []uint64) {
	f0, f1 := g.Fanin0(n), g.Fanin1(n)
	wordops.And(out, get(f0.Node()), get(f1.Node()), f0.IsCompl(), f1.IsCompl())
}

// POWords collects the primary-output value words of a simulated graph into
// a freshly allocated [nPOs][Words] slice.
func POWords(g *aig.Graph, v *Vectors) [][]uint64 {
	out := make([][]uint64, g.NumPOs())
	for i := range out {
		out[i] = v.LitInto(g.PO(i), make([]uint64, v.Words))
	}
	return out
}

// Resimulator incrementally re-simulates the transitive fanout of a single
// node whose value vector has been replaced, leaving the base Vectors
// untouched. It is the core primitive of the batch error estimator: one
// Resimulate call per (node, replacement-vector) pair yields the exact
// primary-output words the circuit would produce.
//
// The fanout adjacency of the graph is computed once at construction, so
// Resimulate walks an event queue over the actual transitive fanout of the
// changed node instead of scanning every node above it.
type Resimulator struct {
	g    *aig.Graph
	base *Vectors

	// AND-node fanouts of every node in CSR form, shared across Forks.
	foStart []int32
	foList  []int32

	// overlay[n] is non-nil when node n has a recomputed vector.
	overlay [][]uint64
	touched []int32
	pool    [][]uint64

	// Event queue: a binary min-heap of node ids, so fanouts are processed
	// in topological (increasing-id) order and each at most once.
	heap   []int32
	inHeap []bool

	// isFork marks Resimulators that share foStart/foList with their root;
	// only the root returns the adjacency to the pool on Release.
	isFork bool
}

// NewResimulator prepares incremental re-simulation over the given base
// simulation of graph g.
func NewResimulator(g *aig.Graph, base *Vectors) *Resimulator {
	n := g.NumNodes()
	start := wordops.GetI32(n + 1)
	for i := range start {
		start[i] = 0
	}
	for m := aig.Node(1); int(m) < n; m++ {
		if !g.IsAnd(m) {
			continue
		}
		start[g.Fanin0(m).Node()+1]++
		start[g.Fanin1(m).Node()+1]++
	}
	for i := 1; i <= n; i++ {
		start[i] += start[i-1]
	}
	list := wordops.GetI32(int(start[n]))
	fill := wordops.GetI32(n)
	copy(fill, start[:n])
	for m := aig.Node(1); int(m) < n; m++ {
		if !g.IsAnd(m) {
			continue
		}
		for _, f := range [2]aig.Node{g.Fanin0(m).Node(), g.Fanin1(m).Node()} {
			list[fill[f]] = int32(m)
			fill[f]++
		}
	}
	wordops.PutI32(fill)
	return &Resimulator{
		g: g, base: base, foStart: start, foList: list,
		overlay: wordops.GetVecsZero(n),
		touched: wordops.GetI32(n)[:0],
		pool:    wordops.GetVecsZero(n)[:0],
		heap:    wordops.GetI32(n)[:0],
		inHeap:  wordops.GetBoolZero(n),
	}
}

// Fork returns a Resimulator that shares the graph, base vectors and fanout
// adjacency with r but owns its own overlay state, so it can run on another
// goroutine concurrently with r (the base vectors are only read).
func (r *Resimulator) Fork() *Resimulator {
	n := r.g.NumNodes()
	return &Resimulator{
		g: r.g, base: r.base, foStart: r.foStart, foList: r.foList,
		overlay: wordops.GetVecsZero(n),
		touched: wordops.GetI32(n)[:0],
		pool:    wordops.GetVecsZero(n)[:0],
		heap:    wordops.GetI32(n)[:0],
		inHeap:  wordops.GetBoolZero(n),
		isFork:  true,
	}
}

func (r *Resimulator) get(n aig.Node) []uint64 {
	if o := r.overlay[n]; o != nil {
		return o
	}
	return r.base.Node(n)
}

func (r *Resimulator) alloc() []uint64 {
	if len(r.pool) > 0 {
		w := r.pool[len(r.pool)-1]
		r.pool = r.pool[:len(r.pool)-1]
		return w
	}
	return wordops.Get(r.base.Words)
}

// Resimulate replaces node n's value vector with newVec, recomputes n's
// transitive fanout, and returns an accessor for the updated node vectors.
// The overlay stays valid until the next Resimulate call.
func (r *Resimulator) Resimulate(n aig.Node, newVec []uint64) func(aig.Node) []uint64 {
	r.reset()
	ov := r.alloc()
	copy(ov, newVec)
	r.overlay[n] = ov
	r.touched = append(r.touched, int32(n))
	r.pushFanouts(n)
	for len(r.heap) > 0 {
		m := aig.Node(r.popMin())
		out := r.alloc()
		evalAnd(r.g, m, r.get, out)
		// Skip nodes whose value did not actually change: this prunes the
		// fanout frontier the same way event-driven simulation does.
		if wordops.Equal(out, r.base.Node(m)) {
			r.pool = append(r.pool, out)
			continue
		}
		r.overlay[m] = out
		r.touched = append(r.touched, int32(m))
		r.pushFanouts(m)
	}
	return r.get
}

// pushFanouts queues the AND fanouts of n for re-evaluation. A node is
// queued at most once: all its potential enqueuers have smaller ids, and
// the heap pops ids in increasing order, so once a node is popped no later
// event can target it again.
func (r *Resimulator) pushFanouts(n aig.Node) {
	for _, m := range r.foList[r.foStart[n]:r.foStart[n+1]] {
		if r.inHeap[m] {
			continue
		}
		r.inHeap[m] = true
		r.heap = append(r.heap, m)
		for i := len(r.heap) - 1; i > 0; {
			p := (i - 1) / 2
			if r.heap[p] <= r.heap[i] {
				break
			}
			r.heap[p], r.heap[i] = r.heap[i], r.heap[p]
			i = p
		}
	}
}

func (r *Resimulator) popMin() int32 {
	m := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	for i := 0; ; {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < last && r.heap[l] < r.heap[small] {
			small = l
		}
		if rr < last && r.heap[rr] < r.heap[small] {
			small = rr
		}
		if small == i {
			break
		}
		r.heap[i], r.heap[small] = r.heap[small], r.heap[i]
		i = small
	}
	r.inHeap[m] = false
	return m
}

// POWordsInto evaluates the primary output words under the current overlay,
// writing PO i into out[i].
func (r *Resimulator) POWordsInto(out [][]uint64) {
	for i := 0; i < r.g.NumPOs(); i++ {
		po := r.g.PO(i)
		wordops.CopyOrNot(out[i], r.get(po.Node()), po.IsCompl())
	}
}

func (r *Resimulator) reset() {
	for _, n := range r.touched {
		r.pool = append(r.pool, r.overlay[n])
		r.overlay[n] = nil
	}
	r.touched = r.touched[:0]
}

// Release returns the Resimulator's scratch vectors and scaffolding arrays
// to the shared pools. The Resimulator must not be used afterwards; Forks
// must be released before their root (the root owns the shared fanout
// adjacency).
func (r *Resimulator) Release() {
	r.reset()
	for _, w := range r.pool {
		wordops.Put(w)
	}
	wordops.PutVecs(r.pool)
	wordops.PutVecs(r.overlay) // all-nil after reset
	wordops.PutI32(r.touched)
	wordops.PutI32(r.heap) // empty: every Resimulate drains the queue
	wordops.PutBool(r.inHeap)
	r.pool, r.overlay, r.touched, r.heap, r.inHeap = nil, nil, nil, nil, nil
	if !r.isFork {
		wordops.PutI32(r.foStart)
		wordops.PutI32(r.foList)
		r.foStart, r.foList = nil, nil
	}
}
