package sim

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/aig"
)

// fullAdder builds a 1-bit full adder.
func fullAdder(g *aig.Graph, a, b, cin aig.Lit) (sum, cout aig.Lit) {
	axb := g.Xor(a, b)
	sum = g.Xor(axb, cin)
	cout = g.Or(g.And(a, b), g.And(axb, cin))
	return
}

func TestSimulateExhaustiveAdder(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	cin := g.AddPI("cin")
	s, co := fullAdder(g, a, b, cin)
	g.AddPO(s, "s")
	g.AddPO(co, "co")

	p := Exhaustive(3)
	v := Simulate(g, p)
	for m := 0; m < 8; m++ {
		va, vb, vc := m&1, m>>1&1, m>>2&1
		total := va + vb + vc
		if got := v.LitBit(s, m); got != (total&1 == 1) {
			t.Errorf("sum(%d%d%d) = %v", va, vb, vc, got)
		}
		if got := v.LitBit(co, m); got != (total >= 2) {
			t.Errorf("cout(%d%d%d) = %v", va, vb, vc, got)
		}
	}
}

func TestExhaustiveSmallCyclesUniformly(t *testing.T) {
	p := Exhaustive(2)
	// Each minterm appears 16 times in the 64-bit word.
	if c := bits.OnesCount64(p.In[0][0]); c != 32 {
		t.Fatalf("PI0 weight = %d, want 32", c)
	}
	if c := bits.OnesCount64(p.In[0][0] & p.In[1][0]); c != 16 {
		t.Fatalf("minterm 11 weight = %d, want 16", c)
	}
}

func TestExhaustiveLarge(t *testing.T) {
	p := Exhaustive(8)
	if p.Words != 4 {
		t.Fatalf("words = %d", p.Words)
	}
	// PI 7 must be 0 in the first two words and 1 in the last two.
	if p.In[7][0] != 0 || p.In[7][1] != 0 || p.In[7][2] != ^uint64(0) || p.In[7][3] != ^uint64(0) {
		t.Fatalf("PI7 pattern wrong: %x", p.In[7])
	}
	// PI 6 alternates words.
	if p.In[6][0] != 0 || p.In[6][1] != ^uint64(0) {
		t.Fatalf("PI6 pattern wrong")
	}
}

func TestUniformDeterministic(t *testing.T) {
	p1 := Uniform(4, 8, 7)
	p2 := Uniform(4, 8, 7)
	p3 := Uniform(4, 8, 8)
	for i := range p1.In {
		for j := range p1.In[i] {
			if p1.In[i][j] != p2.In[i][j] {
				t.Fatalf("same seed produced different patterns")
			}
		}
	}
	same := true
	for i := range p1.In {
		for j := range p1.In[i] {
			if p1.In[i][j] != p3.In[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical patterns")
	}
}

func TestBiasedDistribution(t *testing.T) {
	p := Biased([]float64{0.9, 0.1, 0.5}, 64, 11) // 4096 patterns
	count := func(i int) int {
		c := 0
		for _, w := range p.In[i] {
			c += bits.OnesCount64(w)
		}
		return c
	}
	n := float64(p.NumPatterns())
	if f := float64(count(0)) / n; f < 0.85 || f > 0.95 {
		t.Errorf("PI0 density = %.3f, want ≈0.9", f)
	}
	if f := float64(count(1)) / n; f < 0.05 || f > 0.15 {
		t.Errorf("PI1 density = %.3f, want ≈0.1", f)
	}
	if f := float64(count(2)) / n; f < 0.45 || f > 0.55 {
		t.Errorf("PI2 density = %.3f, want ≈0.5", f)
	}
}

func TestLitInto(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	g.AddPO(a, "f")
	p := Exhaustive(1)
	v := Simulate(g, p)
	buf := make([]uint64, 1)
	v.LitInto(a, buf)
	plain := buf[0]
	v.LitInto(a.Not(), buf)
	if buf[0] != ^plain {
		t.Fatalf("complemented literal not complemented")
	}
}

func TestPOWords(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b), "and")
	g.AddPO(g.And(a, b).Not(), "nand")
	v := Simulate(g, Exhaustive(2))
	pow := POWords(g, v)
	if pow[0][0] != ^pow[1][0] {
		t.Fatalf("PO words do not respect complement")
	}
}

func TestResimulatorMatchesFullSim(t *testing.T) {
	// Build a circuit with reconvergence, replace an internal node's vector
	// with its complement, and compare against simulating a mutated graph.
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	f1 := g.And(ab, c)
	f2 := g.Or(ab, c.Not())
	g.AddPO(f1, "f1")
	g.AddPO(g.Xor(f1, f2), "f2")

	p := Exhaustive(3)
	base := Simulate(g, p)

	r := NewResimulator(g, base)
	flipped := make([]uint64, base.Words)
	for i, w := range base.Node(ab.Node()) {
		flipped[i] = ^w
	}
	r.Resimulate(ab.Node(), flipped)
	got := make([][]uint64, g.NumPOs())
	for i := range got {
		got[i] = make([]uint64, base.Words)
	}
	r.POWordsInto(got)

	// Reference: substitute ab by its complement structurally and simulate.
	ng := g.CopyWith(map[aig.Node]aig.Lit{ab.Node(): ab.Not()})
	refV := Simulate(ng, p)
	ref := POWords(ng, refV)
	for i := range ref {
		for j := range ref[i] {
			if got[i][j] != ref[i][j] {
				t.Fatalf("PO %d word %d: resim %x, full sim %x", i, j, got[i][j], ref[i][j])
			}
		}
	}
	// Base vectors must be untouched.
	v2 := Simulate(g, p)
	for n := aig.Node(0); int(n) < g.NumNodes(); n++ {
		for j, w := range v2.Node(n) {
			if base.Node(n)[j] != w {
				t.Fatalf("base vectors mutated at node %d", n)
			}
		}
	}
}

func TestResimulatorReuse(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	y := g.Or(a, b)
	g.AddPO(g.Xor(x, y), "f")
	p := Exhaustive(2)
	base := Simulate(g, p)
	r := NewResimulator(g, base)

	out := [][]uint64{make([]uint64, 1)}

	// First: replace x with constant 1.
	ones := []uint64{^uint64(0)}
	r.Resimulate(x.Node(), ones)
	r.POWordsInto(out)
	first := out[0][0]

	// Second: replace y with x's original vector; overlay from the first
	// call must be fully cleared.
	r.Resimulate(y.Node(), base.Node(x.Node()))
	r.POWordsInto(out)
	second := out[0][0]

	// Reference values.
	ng1 := g.CopyWith(map[aig.Node]aig.Lit{x.Node(): aig.LitTrue})
	want1 := POWords(ng1, Simulate(ng1, p))[0][0]
	ng2 := g.CopyWith(map[aig.Node]aig.Lit{y.Node(): x})
	want2 := POWords(ng2, Simulate(ng2, p))[0][0]
	if first != want1 {
		t.Fatalf("first resim: got %x want %x", first, want1)
	}
	if second != want2 {
		t.Fatalf("second resim: got %x want %x", second, want2)
	}
}

func TestResimulateIdentityIsNoop(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	g.AddPO(x, "f")
	p := Exhaustive(2)
	base := Simulate(g, p)
	r := NewResimulator(g, base)
	get := r.Resimulate(x.Node(), base.Node(x.Node()))
	if get(x.Node())[0] != base.Node(x.Node())[0] {
		t.Fatalf("identity resimulation changed values")
	}
}

// TestResimulatorRandomVectorsProperty: for random replacement vectors (not
// just complements), the resimulated PO words must match simulating a
// circuit built with the node's function replaced by an equivalent function
// of fresh inputs. We verify against a brute-force overlay evaluator.
func TestResimulatorRandomVectorsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := aig.New()
	lits := g.AddPIs(5, "x")
	for i := 0; i < 25; i++ {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < 3; i++ {
		g.AddPO(lits[len(lits)-1-i], "f")
	}
	p := Exhaustive(5)
	base := Simulate(g, p)
	r := NewResimulator(g, base)
	out := make([][]uint64, g.NumPOs())
	for i := range out {
		out[i] = make([]uint64, base.Words)
	}

	// Brute-force reference: recompute every node with the overlay value
	// forced at n.
	reference := func(n aig.Node, newVec []uint64) [][]uint64 {
		vals := make([][]uint64, g.NumNodes())
		for id := aig.Node(0); int(id) < g.NumNodes(); id++ {
			vals[id] = make([]uint64, base.Words)
			copy(vals[id], base.Node(id))
		}
		copy(vals[n], newVec)
		for id := n + 1; int(id) < g.NumNodes(); id++ {
			if !g.IsAnd(id) {
				continue
			}
			f0, f1 := g.Fanin0(id), g.Fanin1(id)
			for w := 0; w < base.Words; w++ {
				a := vals[f0.Node()][w]
				if f0.IsCompl() {
					a = ^a
				}
				b := vals[f1.Node()][w]
				if f1.IsCompl() {
					b = ^b
				}
				vals[id][w] = a & b
			}
		}
		ref := make([][]uint64, g.NumPOs())
		for i := 0; i < g.NumPOs(); i++ {
			po := g.PO(i)
			ref[i] = make([]uint64, base.Words)
			for w := 0; w < base.Words; w++ {
				v := vals[po.Node()][w]
				if po.IsCompl() {
					v = ^v
				}
				ref[i][w] = v
			}
		}
		return ref
	}

	for trial := 0; trial < 40; trial++ {
		var n aig.Node
		for {
			n = aig.Node(rng.Intn(g.NumNodes()-1) + 1)
			if g.IsAnd(n) {
				break
			}
		}
		newVec := make([]uint64, base.Words)
		for w := range newVec {
			newVec[w] = rng.Uint64()
		}
		r.Resimulate(n, newVec)
		r.POWordsInto(out)
		want := reference(n, newVec)
		for i := range want {
			for w := range want[i] {
				if out[i][w] != want[i][w] {
					t.Fatalf("trial %d node %d PO %d word %d: got %x want %x",
						trial, n, i, w, out[i][w], want[i][w])
				}
			}
		}
	}
}
