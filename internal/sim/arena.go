package sim

import (
	"repro/internal/aig"
	"repro/internal/wordops"
)

// Arena is a persistent simulation state that tracks a graph across in-place
// mutations (aig.Graph.ReplaceNode). Where SimulateWorkers recomputes every
// node vector from scratch, Arena.Update re-evaluates only the slots whose
// epoch moved since the last sync plus the transitive fanout that actually
// changes value — the dirty-TFO slice of a committed LAC instead of the
// whole circuit.
//
// The result is bitwise identical to a fresh SimulateWorkers run on the
// mutated graph for every live node, for any worker count: word columns are
// independent, evaluation follows ascending node ids (the graph's
// topological order), and propagation prunes a fanout only when the fused
// AndDiff kernel proves the node's words did not change — in which case the
// fanout's inputs are bit-identical to the from-scratch run's.
type Arena struct {
	g       *aig.Graph
	p       *Patterns
	workers int
	vecs    *Vectors
	epochs  []uint32 // graph epochs at last sync

	// Update scratch, reused across calls so steady-state updates allocate
	// nothing once grown to the graph size.
	heap    []int32
	inHeap  []bool
	foStart []int32
	foList  []int32
	foFill  []int32
}

// NewArena builds an arena bound to g and p and fully simulates it (with
// the given worker count, 0 = GOMAXPROCS). The pattern input count must
// match g.NumPIs().
func NewArena(g *aig.Graph, p *Patterns, workers int) *Arena {
	a := &Arena{workers: workers}
	a.Rebind(g, p)
	return a
}

// Rebind points the arena at a (possibly different) graph and pattern set
// and re-simulates from scratch. Sessions use this after a structural
// optimization pass replaced the graph object, and when the care patterns
// are rerolled.
func (a *Arena) Rebind(g *aig.Graph, p *Patterns) {
	a.vecs.Release()
	a.g, a.p = g, p
	a.vecs = SimulateWorkers(g, p, a.workers)
	a.syncEpochs()
}

// Vectors returns the arena's value vectors. The returned object is owned
// by the arena: it is updated in place by Update and freed by Release.
func (a *Arena) Vectors() *Vectors { return a.vecs }

// Patterns returns the pattern set the arena is bound to.
func (a *Arena) Patterns() *Patterns { return a.p }

// Release returns the arena's vectors to the shared pool. The arena must
// not be used afterwards.
func (a *Arena) Release() {
	a.vecs.Release()
	a.vecs = nil
}

// Update incrementally re-simulates after in-place mutations of the bound
// graph, and returns the number of AND evaluations performed. Every slot
// whose epoch moved since the last Update (created, recycled or freed by
// ReplaceNode) is re-evaluated, and changes propagate through the current
// fanout structure in ascending node-id order; fanouts of a node whose
// value words came out unchanged are pruned. After Update, Vectors holds
// bitwise the same words a from-scratch SimulateWorkers run would for every
// live node.
//
//alsrac:alloc-ok scratch slices grow to the graph size once and are reused
func (a *Arena) Update() int {
	g := a.g
	n := g.NumNodes()
	a.vecs.EnsureNodes(n)
	for len(a.epochs) < n {
		a.epochs = append(a.epochs, 0)
	}

	// Seed the heap with every epoch-dirty live AND node. Recycled slots
	// hold stale value words from their previous occupant; their fanouts are
	// necessarily also epoch-dirty (an old node cannot reference a slot that
	// was dead when it was built), so even a coincidental AndDiff match on
	// garbage cannot mask a needed downstream update.
	// inHeap is all-false between Updates (every push is matched by a pop
	// that clears the flag), so growing without clearing is safe.
	a.heap = a.heap[:0]
	a.inHeap = growBools(a.inHeap, n)
	dirty := false
	for i := 0; i < n; i++ {
		if a.epochs[i] != g.Epoch(aig.Node(i)) {
			dirty = true
			if g.IsAnd(aig.Node(i)) {
				a.push(int32(i))
			}
		}
	}
	if !dirty {
		return 0
	}
	a.buildFanouts()

	evals := 0
	vecs := a.vecs
	for len(a.heap) > 0 {
		m := a.popMin()
		node := aig.Node(m)
		if !g.IsAnd(node) {
			continue
		}
		f0, f1 := g.Fanin0(node), g.Fanin1(node)
		changed := wordops.AndDiff(vecs.Node(node),
			vecs.Node(f0.Node()), vecs.Node(f1.Node()),
			f0.IsCompl(), f1.IsCompl())
		evals++
		if changed || a.epochs[m] != g.Epoch(node) {
			for _, fo := range a.foList[a.foStart[m]:a.foStart[m+1]] {
				a.push(fo)
			}
		}
	}
	a.syncEpochs()
	return evals
}

func (a *Arena) syncEpochs() {
	g := a.g
	n := g.NumNodes()
	if cap(a.epochs) < n {
		a.epochs = make([]uint32, n)
	}
	a.epochs = a.epochs[:n]
	for i := range a.epochs {
		a.epochs[i] = g.Epoch(aig.Node(i))
	}
}

// buildFanouts computes the CSR fanout adjacency of the bound graph into
// the arena's scratch.
//
//alsrac:hotpath
func (a *Arena) buildFanouts() {
	g := a.g
	n := g.NumNodes()
	a.foStart = growI32Clear(a.foStart, n+1)
	for m := aig.Node(1); int(m) < n; m++ {
		if !g.IsAnd(m) {
			continue
		}
		a.foStart[g.Fanin0(m).Node()+1]++
		a.foStart[g.Fanin1(m).Node()+1]++
	}
	for i := 1; i <= n; i++ {
		a.foStart[i] += a.foStart[i-1]
	}
	a.foList = growI32(a.foList, int(a.foStart[n]))
	a.foFill = growI32(a.foFill, n)
	copy(a.foFill, a.foStart[:n])
	for m := aig.Node(1); int(m) < n; m++ {
		if !g.IsAnd(m) {
			continue
		}
		for _, f := range [2]aig.Node{g.Fanin0(m).Node(), g.Fanin1(m).Node()} {
			a.foList[a.foFill[f]] = int32(m)
			a.foFill[f]++
		}
	}
}

// push adds node m to the min-heap unless already queued.
//
//alsrac:hotpath
func (a *Arena) push(m int32) {
	if a.inHeap[m] {
		return
	}
	a.inHeap[m] = true
	a.heap = append(a.heap, m)
	for i := len(a.heap) - 1; i > 0; {
		p := (i - 1) / 2
		if a.heap[p] <= a.heap[i] {
			break
		}
		a.heap[p], a.heap[i] = a.heap[i], a.heap[p]
		i = p
	}
}

//alsrac:hotpath
func (a *Arena) popMin() int32 {
	m := a.heap[0]
	last := len(a.heap) - 1
	a.heap[0] = a.heap[last]
	a.heap = a.heap[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && a.heap[l] < a.heap[small] {
			small = l
		}
		if r < last && a.heap[r] < a.heap[small] {
			small = r
		}
		if small == i {
			break
		}
		a.heap[i], a.heap[small] = a.heap[small], a.heap[i]
		i = small
	}
	a.inHeap[m] = false
	return m
}

// EnsureNodes grows the vector storage to hold at least `nodes` node
// vectors, preserving existing contents. Newly covered slots hold arbitrary
// words until written.
func (v *Vectors) EnsureNodes(nodes int) {
	need := nodes * v.Words
	if len(v.flat) >= need {
		return
	}
	nf := wordops.Get(need)
	copy(nf, v.flat)
	wordops.Put(v.flat)
	v.flat = nf
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		//alsrac:alloc-ok amortized capacity growth; the arena reuses storage so steady-state calls are allocation-free
		return make([]int32, n)
	}
	return s[:n]
}

func growI32Clear(s []int32, n int) []int32 {
	s = growI32(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
