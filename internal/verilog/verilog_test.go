package verilog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
)

func render(t *testing.T, g *aig.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteBasicStructure(t *testing.T) {
	g := aig.New()
	g.Name = "half_adder"
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.Xor(a, b), "sum")
	g.AddPO(g.And(a, b), "carry")
	out := render(t, g)

	for _, want := range []string{
		"module half_adder(a, b, sum, carry);",
		"input a;", "input b;",
		"output sum;", "output carry;",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "assign") < 3 {
		t.Errorf("too few assigns:\n%s", out)
	}
}

func TestWriteConstantsAndComplements(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	g.AddPO(aig.LitTrue, "one")
	g.AddPO(aig.LitFalse, "zero")
	g.AddPO(a.Not(), "na")
	out := render(t, g)
	if !strings.Contains(out, "assign one = 1'b1;") ||
		!strings.Contains(out, "assign zero = 1'b0;") ||
		!strings.Contains(out, "assign na = ~a;") {
		t.Fatalf("constant/complement emission wrong:\n%s", out)
	}
}

func TestSanitizeNames(t *testing.T) {
	g := aig.New()
	a := g.AddPI("s[3]") // bus-style name needs sanitizing
	g.AddPI("2bad")      // illegal identifier falls back
	g.AddPO(a, "out.x")
	out := render(t, g)
	if strings.Contains(out, "[") || strings.Contains(out, ".") {
		t.Fatalf("unsanitized identifiers:\n%s", out)
	}
	if !strings.Contains(out, "s_3") || !strings.Contains(out, "pi1") {
		t.Fatalf("sanitization unexpected:\n%s", out)
	}
}

func TestDuplicateNamesDisambiguated(t *testing.T) {
	g := aig.New()
	a := g.AddPI("x")
	b := g.AddPI("x")
	g.AddPO(g.And(a, b), "x")
	out := render(t, g)
	if strings.Count(strings.Split(out, "\n")[0], " x,") > 1 {
		t.Fatalf("duplicate port names survived:\n%s", out)
	}
}

func TestWriteBenchmarkCircuits(t *testing.T) {
	for _, name := range []string{"rca32", "voter", "mtp8"} {
		g := bench.Get(name)
		out := render(t, g)
		if strings.Count(out, "assign") < g.NumAnds() {
			t.Errorf("%s: fewer assigns than AND gates", name)
		}
	}
}
