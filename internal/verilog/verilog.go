// Package verilog writes AIGs as structural Verilog netlists (assign-style
// AND/NOT expressions), for handing approximate circuits to downstream
// ASIC/FPGA tooling. There is no reader: Verilog parsing is out of scope
// for this reproduction; BLIF and AIGER are the interchange formats.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"

	"repro/internal/aig"
)

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_$]*$`)

// maxIdentLen bounds an emitted identifier: IEEE 1364 only guarantees 1024
// significant characters, and a hostile symbol table must not balloon the
// netlist. Longer names fall back to the positional name.
const maxIdentLen = 1024

// sanitize makes a name a legal Verilog identifier (escaping via
// substitution, with a fallback positional name).
func sanitize(name, fallback string) string {
	if name == "" || len(name) > maxIdentLen {
		return fallback
	}
	r := strings.NewReplacer("[", "_", "]", "", ".", "_", "-", "_", ":", "_")
	name = r.Replace(name)
	if !identRe.MatchString(name) {
		return fallback
	}
	return name
}

// Write emits the graph as a single structural Verilog module.
func Write(w io.Writer, g *aig.Graph) error {
	bw := bufio.NewWriter(w)
	modName := sanitize(g.Name, "top")

	piNames := make([]string, g.NumPIs())
	used := map[string]bool{}
	uniq := func(base string) string {
		if !used[base] {
			used[base] = true
			return base
		}
		for i := 0; ; i++ {
			c := fmt.Sprintf("%s_%d", base, i)
			if !used[c] {
				used[c] = true
				return c
			}
		}
	}
	for i := range piNames {
		piNames[i] = uniq(sanitize(g.PIName(i), fmt.Sprintf("pi%d", i)))
	}
	poNames := make([]string, g.NumPOs())
	for i := range poNames {
		poNames[i] = uniq(sanitize(g.POName(i), fmt.Sprintf("po%d", i)))
	}

	fmt.Fprintf(bw, "module %s(%s, %s);\n", modName,
		strings.Join(piNames, ", "), strings.Join(poNames, ", "))
	for _, n := range piNames {
		fmt.Fprintf(bw, "  input %s;\n", n)
	}
	for _, n := range poNames {
		fmt.Fprintf(bw, "  output %s;\n", n)
	}

	// Signal names per node.
	sig := make([]string, g.NumNodes())
	for i := 0; i < g.NumPIs(); i++ {
		sig[g.PI(i)] = piNames[i]
	}
	lit := func(l aig.Lit) string {
		if l.Node() == 0 {
			if l.IsCompl() {
				return "1'b1"
			}
			return "1'b0"
		}
		s := sig[l.Node()]
		if l.IsCompl() {
			return "~" + s
		}
		return s
	}
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		name := fmt.Sprintf("n%d", n)
		sig[n] = name
		fmt.Fprintf(bw, "  wire %s;\n", name)
	}
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		fmt.Fprintf(bw, "  assign %s = %s & %s;\n", sig[n], lit(g.Fanin0(n)), lit(g.Fanin1(n)))
	}
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "  assign %s = %s;\n", poNames[i], lit(g.PO(i)))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}
