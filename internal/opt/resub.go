package opt

import (
	"repro/internal/aig"
	"repro/internal/cut"
	"repro/internal/tt"
)

// ResubPass performs EXACT (zero-error) resubstitution inside cut windows,
// the optimization counterpart of ALSRAC's approximate LAC and an analog of
// ABC's "resub" command. For every node v and one of its K-feasible cuts,
// the functions of v and of the other nodes inside the cut cone are
// expressed over the cut leaves; a divisor set is accepted only when the
// classical resubstitution condition (Theorem 1 of the paper) holds for
// ALL 2^K window-input patterns, which makes the rewrite sound: any primary
// input assignment induces some window pattern.
//
// Like Rewrite, the pass collects simultaneous exact replacements and
// rebuilds once; it returns an equivalent of g when nothing improves.
func ResubPass(g *aig.Graph, k int) *aig.Graph {
	origAnds := g.NumAnds()
	origNodes := g.NumNodes()
	sets := cut.Enumerate(g, cut.Config{K: k, PerNode: 6})
	refs := g.RefCounts()

	sub := make(map[aig.Node]aig.Lit)
	for v := aig.Node(1); int(v) < origNodes; v++ {
		if !g.IsAnd(v) {
			continue
		}
		if lit, gain := bestWindowResub(g, sets, refs, v); gain > 0 {
			sub[v] = lit
		}
	}
	if len(sub) == 0 {
		return g.Sweep()
	}
	ng := g.CopyWith(sub)
	if ng.NumAnds() >= origAnds {
		return g.Sweep()
	}
	return ng
}

// bestWindowResub looks for the highest-gain exact resubstitution of v
// using one or two divisors drawn from inside its cut cones.
func bestWindowResub(g *aig.Graph, sets *cut.Sets, refs []int32, v aig.Node) (aig.Lit, int) {
	bestGain := 0
	var bestLit aig.Lit
	for _, c := range sets.Cuts(v) {
		if c.IsTrivial(v) || c.Size() < 2 {
			continue
		}
		cone := windowNodes(g, v, c.Leaves)
		if len(cone) < 2 {
			continue // only v itself: nothing to resubstitute with
		}
		fv := cut.Table(g, v, c.Leaves)
		// Candidate divisors: leaves and internal cone nodes except v.
		divNodes := append(append([]aig.Node(nil), c.Leaves...), cone...)
		tabs := make([]tt.Table, len(divNodes))
		for i, d := range divNodes {
			tabs[i] = cut.Table(g, d, c.Leaves)
		}
		freedBase := coneFreed(g, v, c.Leaves, refs)

		consider := func(divs []aig.Node, dTabs []tt.Table) {
			cover, ok := exactCover(fv, dTabs)
			if !ok {
				return
			}
			cost := coverAndCost(cover)
			gain := freedBase - cost
			if gain <= bestGain {
				return
			}
			bestGain = gain
			bestLit = buildCover(g, cover, divs)
		}
		for i, d1 := range divNodes {
			if d1 == v {
				continue
			}
			consider([]aig.Node{d1}, []tt.Table{tabs[i]})
			for j := i + 1; j < len(divNodes); j++ {
				if divNodes[j] == v {
					continue
				}
				consider([]aig.Node{d1, divNodes[j]}, []tt.Table{tabs[i], tabs[j]})
			}
		}
	}
	return bestLit, bestGain
}

// windowNodes returns the AND nodes strictly inside the cut cone of root,
// root excluded.
func windowNodes(g *aig.Graph, root aig.Node, leaves []aig.Node) []aig.Node {
	inLeaves := make(map[aig.Node]bool, len(leaves))
	for _, l := range leaves {
		inLeaves[l] = true
	}
	seen := map[aig.Node]bool{}
	var out []aig.Node
	var walk func(aig.Node)
	walk = func(n aig.Node) {
		if seen[n] || inLeaves[n] || !g.IsAnd(n) {
			return
		}
		seen[n] = true
		walk(g.Fanin0(n).Node())
		walk(g.Fanin1(n).Node())
		if n != root {
			out = append(out, n)
		}
	}
	walk(root)
	return out
}

// exactCover checks whether fv is a function of the divisor tables on every
// window minterm (Theorem 1, exhaustively), and if so returns an ISOP of
// that function over the divisors (unreached divisor patterns become
// don't-cares).
func exactCover(fv tt.Table, divs []tt.Table) (tt.Cover, bool) {
	k := len(divs)
	on := tt.New(k)
	care := tt.New(k)
	for m := 0; m < fv.NumBits(); m++ {
		key := 0
		for j := range divs {
			if divs[j].Get(m) {
				key |= 1 << uint(j)
			}
		}
		val := fv.Get(m)
		if care.Get(key) {
			if on.Get(key) != val {
				return nil, false
			}
			continue
		}
		care.Set(key, true)
		if val {
			on.Set(key, true)
		}
	}
	return tt.ISOP(on, care.Not()), true
}
