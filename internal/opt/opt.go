// Package opt implements traditional (exact) logic optimization over AIGs:
// structural sweeping, AND-tree balancing and cut-based rewriting. It
// stands in for the ABC commands "sweep; resyn2" that ALSRAC runs after
// every applied approximate change (Algorithm 3, line 9). All passes
// preserve the circuit function exactly.
package opt

import (
	"sync"

	"repro/internal/aig"
	"repro/internal/cut"
	"repro/internal/tt"
)

// Optimize runs the default script — the resyn2 analog: sweep, balance and
// several rewriting passes. The result computes the same function with, in
// practice, fewer AND nodes and smaller depth.
func Optimize(g *aig.Graph) *aig.Graph {
	g = g.Sweep()
	g = Balance(g)
	g = Rewrite(g)
	g = Rewrite(g)
	g = Balance(g)
	g = Rewrite(g)
	return g.Sweep()
}

// Balance rebuilds every multi-input AND tree in a balanced form, reducing
// circuit depth without changing the function (the ABC "balance" pass).
// Trees are broken at complemented edges and at shared (multi-fanout)
// nodes. When balancing does not help, the input graph is returned.
func Balance(g *aig.Graph) *aig.Graph {
	ng := aig.New()
	ng.Name = g.Name
	refs := g.RefCounts()

	m := make([]aig.Lit, g.NumNodes())
	// lev[i] is the depth of new-graph node i.
	lev := make([]int32, 1, g.NumNodes())
	levOf := func(l aig.Lit) int32 { return lev[l.Node()] }
	and := func(a, b aig.Lit) aig.Lit {
		l := ng.And(a, b)
		for len(lev) < ng.NumNodes() {
			lev = append(lev, 0)
		}
		if ng.IsAnd(l.Node()) && lev[l.Node()] == 0 {
			lev[l.Node()] = max(levOf(a), levOf(b)) + 1
		}
		return l
	}

	m[0] = aig.LitFalse
	for i := 0; i < g.NumPIs(); i++ {
		m[g.PI(i)] = ng.AddPI(g.PIName(i))
		lev = append(lev, 0)
	}

	var leaves []aig.Lit
	var collect func(l aig.Lit)
	collect = func(l aig.Lit) {
		n := l.Node()
		if l.IsCompl() || !g.IsAnd(n) || refs[n] > 1 {
			leaves = append(leaves, m[n].NotCond(l.IsCompl()))
			return
		}
		collect(g.Fanin0(n))
		collect(g.Fanin1(n))
	}

	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		leaves = leaves[:0]
		collect(g.Fanin0(n))
		collect(g.Fanin1(n))
		ls := append([]aig.Lit(nil), leaves...)
		// Repeatedly combine the two shallowest operands (Huffman style).
		for len(ls) > 1 {
			i0 := argminLevel(ls, lev)
			a := ls[i0]
			ls[i0] = ls[len(ls)-1]
			ls = ls[:len(ls)-1]
			i1 := argminLevel(ls, lev)
			b := ls[i1]
			ls[i1] = ls[len(ls)-1]
			ls = ls[:len(ls)-1]
			ls = append(ls, and(a, b))
		}
		m[n] = ls[0]
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(m[po.Node()].NotCond(po.IsCompl()), g.POName(i))
	}
	res := ng.Sweep()
	if res.NumAnds() > g.NumAnds() {
		return g
	}
	return res
}

func argminLevel(ls []aig.Lit, lev []int32) int {
	best := 0
	for i := 1; i < len(ls); i++ {
		if lev[ls[i].Node()] < lev[ls[best].Node()] {
			best = i
		}
	}
	return best
}

// Rewrite performs one round of DAG-aware cut rewriting: for every AND node
// it considers its 4-input cuts, resynthesizes the cut function from its
// ISOP (in the cheaper output polarity), and replaces the node when the new
// structure costs fewer AND nodes than the cut cone frees. All replacements
// are exact, so they can be applied simultaneously. When the rewritten
// graph is not smaller, an equivalent of the input graph is returned.
func Rewrite(g *aig.Graph) *aig.Graph {
	origAnds := g.NumAnds()
	origNodes := g.NumNodes() // scratch structures are appended past this
	sets := cut.Enumerate(g, cut.DefaultConfig())
	refs := g.RefCounts()

	type choice struct {
		cov    tt.Cover
		compl  bool
		leaves []aig.Node
	}
	sub := make(map[aig.Node]aig.Lit)
	for n := aig.Node(1); int(n) < origNodes; n++ {
		if !g.IsAnd(n) {
			continue
		}
		bestGain := 0
		var best choice
		for _, c := range sets.Cuts(n) {
			if c.IsTrivial(n) {
				continue
			}
			freed := coneFreed(g, n, c.Leaves, refs)
			tab := cut.Table(g, n, c.Leaves)
			cov, compl := cheaperCover(tab)
			cost := coverAndCost(cov)
			if gain := freed - cost; gain > bestGain {
				bestGain = gain
				best = choice{cov: cov, compl: compl, leaves: c.Leaves}
			}
		}
		if bestGain > 0 {
			sub[n] = buildCover(g, best.cov, best.leaves).NotCond(best.compl)
		}
	}
	if len(sub) == 0 {
		return g
	}
	ng := g.CopyWith(sub)
	if ng.NumAnds() >= origAnds {
		// Not an improvement; drop the scratch nodes added while building
		// candidate structures.
		return g.Sweep()
	}
	return ng
}

// coneFreed counts the AND nodes that die when node n is replaced by a new
// structure whose inputs are the given leaves: the nodes of n's MFFC that
// lie strictly inside the cut cone. refs is restored before returning.
func coneFreed(g *aig.Graph, n aig.Node, leaves []aig.Node, refs []int32) int {
	isLeaf := make(map[aig.Node]bool, len(leaves))
	for _, l := range leaves {
		isLeaf[l] = true
	}
	var deref func(aig.Node) int
	deref = func(m aig.Node) int {
		c := 1
		for _, f := range [2]aig.Lit{g.Fanin0(m), g.Fanin1(m)} {
			fn := f.Node()
			refs[fn]--
			if refs[fn] == 0 && g.IsAnd(fn) && !isLeaf[fn] {
				c += deref(fn)
			}
		}
		return c
	}
	var reref func(aig.Node)
	reref = func(m aig.Node) {
		for _, f := range [2]aig.Lit{g.Fanin0(m), g.Fanin1(m)} {
			fn := f.Node()
			if refs[fn] == 0 && g.IsAnd(fn) && !isLeaf[fn] {
				reref(fn)
			}
			refs[fn]++
		}
	}
	c := deref(n)
	reref(n)
	return c
}

// cheaperCover returns the ISOP of tab or of its complement, whichever
// needs fewer AND nodes, along with whether the output must be inverted.
func cheaperCover(tab tt.Table) (tt.Cover, bool) {
	n := tab.NumVars()
	if n <= coverMemoMaxVars {
		key := uint32(n)<<16 | uint32(tab.Words()[0]&(1<<(1<<uint(n))-1))
		if e, ok := coverMemo.Load(key); ok {
			ent := e.(coverMemoEntry)
			return ent.cov, ent.compl
		}
		cov, compl := cheaperCoverUncached(tab)
		coverMemo.Store(key, coverMemoEntry{cov: cov, compl: compl})
		return cov, compl
	}
	return cheaperCoverUncached(tab)
}

// coverMemoMaxVars bounds the memo key space: cut enumeration uses K=4, so
// every table Rewrite sees fits in 16 truth-table bits, and the cache tops
// out at 4·2^16 entries. The two ISOP runs per call dominate both the CPU
// and the allocation profile of the whole ALSRAC flow (the same handful of
// small functions recurs across cuts, iterations and circuits), so a
// process-wide memo turns the optimize cadence from the flow's hot spot
// into a table lookup.
const coverMemoMaxVars = 4

type coverMemoEntry struct {
	cov   tt.Cover
	compl bool
}

// coverMemo caches cheaperCover results by (vars, truth bits). Covers are
// treated as immutable by every consumer (buildCover only reads), so
// sharing one Cover value across goroutines and calls is safe.
var coverMemo sync.Map

func cheaperCoverUncached(tab tt.Table) (tt.Cover, bool) {
	n := tab.NumVars()
	on := tt.ISOP(tab, tt.New(n))
	off := tt.ISOP(tab.Not(), tt.New(n))
	if coverAndCost(off) < coverAndCost(on) {
		return off, true
	}
	return on, false
}

// coverAndCost counts the AND nodes needed to realize a cover.
func coverAndCost(c tt.Cover) int {
	if len(c) == 0 {
		return 0
	}
	cost := len(c) - 1
	for _, cube := range c {
		if l := cube.NumLits(); l > 1 {
			cost += l - 1
		}
	}
	return cost
}

// buildCover materializes a cover over the given leaves in g and returns
// its literal.
func buildCover(g *aig.Graph, cov tt.Cover, leaves []aig.Node) aig.Lit {
	terms := make([]aig.Lit, 0, len(cov))
	for _, cube := range cov {
		lits := make([]aig.Lit, 0, len(leaves))
		for v, leaf := range leaves {
			bit := uint32(1) << uint(v)
			if cube.Pos&bit != 0 {
				lits = append(lits, aig.MakeLit(leaf, false))
			}
			if cube.Neg&bit != 0 {
				lits = append(lits, aig.MakeLit(leaf, true))
			}
		}
		terms = append(terms, g.AndN(lits...))
	}
	return g.OrN(terms...)
}
