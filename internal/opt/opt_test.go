package opt

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

// randomCircuit builds a seeded random multi-level circuit with nPIs inputs
// and nGates random AND/OR/XOR gates over random earlier signals.
func randomCircuit(nPIs, nGates int, seed int64) *aig.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		var l aig.Lit
		switch rng.Intn(3) {
		case 0:
			l = g.And(a, b)
		case 1:
			l = g.Or(a, b)
		default:
			l = g.Xor(a, b)
		}
		lits = append(lits, l)
	}
	for i := 0; i < 4; i++ {
		g.AddPO(lits[len(lits)-1-i], "f")
	}
	return g
}

// equivalent checks functional equivalence of two graphs with the same PI
// interface by exhaustive simulation (nPIs ≤ 12).
func equivalent(t *testing.T, a, b *aig.Graph) bool {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("interface mismatch")
	}
	p := sim.Exhaustive(a.NumPIs())
	va := sim.Simulate(a, p)
	vb := sim.Simulate(b, p)
	pa := sim.POWords(a, va)
	pb := sim.POWords(b, vb)
	for i := range pa {
		for w := range pa[i] {
			if pa[i][w] != pb[i][w] {
				return false
			}
		}
	}
	return true
}

func TestBalancePreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCircuit(6, 40, seed)
		b := Balance(g)
		if !equivalent(t, g, b) {
			t.Fatalf("seed %d: Balance changed the function", seed)
		}
		if err := b.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBalanceReducesChainDepth(t *testing.T) {
	g := aig.New()
	xs := g.AddPIs(8, "x")
	// Deliberately build a linear AND chain of depth 7.
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = g.And(acc, x)
	}
	g.AddPO(acc, "f")
	if g.Depth() != 7 {
		t.Fatalf("chain depth = %d", g.Depth())
	}
	b := Balance(g)
	if b.Depth() != 3 {
		t.Fatalf("balanced depth = %d, want 3", b.Depth())
	}
	if !equivalent(t, g, b) {
		t.Fatalf("Balance changed the function")
	}
}

func TestRewritePreservesFunction(t *testing.T) {
	for seed := int64(10); seed < 15; seed++ {
		g := randomCircuit(7, 60, seed)
		r := Rewrite(g)
		if !equivalent(t, g, r) {
			t.Fatalf("seed %d: Rewrite changed the function", seed)
		}
		if err := r.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRewriteShrinksRedundantLogic(t *testing.T) {
	// Build mux-of-identical-branches: f = s? (a&b) : (a&b) plus other
	// redundancies the rewriter should collapse.
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	s := g.AddPI("s")
	ab1 := g.And(a, b)
	// A second, structurally different computation of a&b:
	// (a|b) & a & b would strash partially; build (a & (b & (a | b))).
	ab2 := g.And(a, g.And(b, g.Or(a, b)))
	f := g.Mux(s, ab1, ab2)
	g.AddPO(f, "f")
	before := g.NumAnds()
	r := Rewrite(g)
	if r.NumAnds() >= before {
		t.Fatalf("Rewrite did not shrink: %d -> %d", before, r.NumAnds())
	}
	if !equivalent(t, g, r) {
		t.Fatalf("Rewrite changed the function")
	}
}

func TestOptimizePreservesFunctionAndShrinks(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		g := randomCircuit(8, 80, seed)
		o := Optimize(g)
		if !equivalent(t, g, o) {
			t.Fatalf("seed %d: Optimize changed the function", seed)
		}
		if o.NumAnds() > g.NumAnds() {
			t.Fatalf("seed %d: Optimize grew the circuit %d -> %d", seed, g.NumAnds(), o.NumAnds())
		}
	}
}

func TestOptimizeIdempotentEnough(t *testing.T) {
	g := randomCircuit(6, 50, 99)
	o1 := Optimize(g)
	o2 := Optimize(o1)
	if o2.NumAnds() > o1.NumAnds() {
		t.Fatalf("second Optimize grew the circuit: %d -> %d", o1.NumAnds(), o2.NumAnds())
	}
	if !equivalent(t, o1, o2) {
		t.Fatalf("Optimize changed the function on second run")
	}
}

func TestCoverAndCost(t *testing.T) {
	g := aig.New()
	xs := g.AddPIs(4, "x")
	// XOR of two variables has 2 cubes of 2 literals: cost 3.
	f := g.Xor(xs[0], xs[1])
	g.AddPO(f, "f")
	_ = f
	// cheap sanity of cost helper itself via known covers is in resub; here
	// ensure Rewrite on an optimal XOR does not "improve" it into something
	// bigger.
	r := Rewrite(g)
	if r.NumAnds() > g.NumAnds() {
		t.Fatalf("Rewrite grew an optimal XOR: %d -> %d", g.NumAnds(), r.NumAnds())
	}
}

func TestConeFreedRestoresRefs(t *testing.T) {
	g := randomCircuit(5, 30, 7)
	refs := g.RefCounts()
	want := append([]int32(nil), refs...)
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		leaves := []aig.Node{g.Fanin0(n).Node(), g.Fanin1(n).Node()}
		if c := coneFreed(g, n, leaves, refs); c != 1 {
			t.Fatalf("freed with fanin leaves = %d, want 1", c)
		}
		for i := range refs {
			if refs[i] != want[i] {
				t.Fatalf("coneFreed corrupted refs at %d", i)
			}
		}
	}
}

func TestResubPassPreservesFunction(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		g := randomCircuit(7, 70, seed)
		r := ResubPass(g, 6)
		if !equivalent(t, g, r) {
			t.Fatalf("seed %d: ResubPass changed the function", seed)
		}
		if err := r.Check(); err != nil {
			t.Fatal(err)
		}
		if r.NumAnds() > g.NumAnds() {
			t.Fatalf("seed %d: ResubPass grew the circuit", seed)
		}
	}
}

func TestResubPassFindsWireSubstitution(t *testing.T) {
	// f = (a&b) | (a&b&c): the redundant conjunct makes the OR node
	// exactly resubstitutable by the wire (a&b).
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	abc := g.And(ab, c)
	f := g.Or(ab, abc)
	g.AddPO(f, "f")
	r := ResubPass(g, 4)
	if r.NumAnds() >= g.NumAnds() {
		t.Fatalf("ResubPass missed the absorption: %d -> %d ANDs", g.NumAnds(), r.NumAnds())
	}
	if !equivalent(t, g, r) {
		t.Fatalf("ResubPass changed the function")
	}
}

func TestResubPassOnOptimizedAdderIsSafe(t *testing.T) {
	// Run after Optimize on a structured circuit: must stay equivalent.
	g := aig.New()
	xs := g.AddPIs(8, "x")
	carry := aig.LitFalse
	for i := 0; i < 4; i++ {
		axb := g.Xor(xs[i], xs[4+i])
		g.AddPO(g.Xor(axb, carry), "s")
		carry = g.Or(g.And(xs[i], xs[4+i]), g.And(axb, carry))
	}
	g.AddPO(carry, "cout")
	o := Optimize(g)
	r := ResubPass(o, 6)
	if !equivalent(t, o, r) {
		t.Fatalf("ResubPass broke the adder")
	}
}
