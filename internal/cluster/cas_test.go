package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultfs"
)

func newTestCAS(t *testing.T) (*CAS, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := NewCAS(dir, faultfs.OS{})
	if err != nil {
		t.Fatalf("NewCAS: %v", err)
	}
	return c, dir
}

const casKey = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func TestCASCheckpointGenerations(t *testing.T) {
	c, _ := newTestCAS(t)

	if c.HasCheckpoint(casKey) {
		t.Fatalf("fresh store claims a checkpoint")
	}
	if payload, gen, err := c.LatestCheckpoint(casKey); err != nil || payload != nil || gen != 0 {
		t.Fatalf("LatestCheckpoint on empty store = (%v, %d, %v), want (nil, 0, nil)", payload, gen, err)
	}

	for i := 1; i <= 5; i++ {
		if err := c.PutCheckpoint(casKey, []byte(fmt.Sprintf("gen-%d", i))); err != nil {
			t.Fatalf("PutCheckpoint %d: %v", i, err)
		}
	}
	payload, gen, err := c.LatestCheckpoint(casKey)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if gen != 5 || string(payload) != "gen-5" {
		t.Fatalf("got generation %d payload %q, want 5 %q", gen, payload, "gen-5")
	}
	// Pruning keeps only the newest keepGenerations.
	if got := c.gens(casKey); len(got) != keepGenerations {
		t.Fatalf("kept %d generations %v, want %d", len(got), got, keepGenerations)
	}
}

func TestCASCorruptGenerationFallsBack(t *testing.T) {
	c, dir := newTestCAS(t)
	for i := 1; i <= 3; i++ {
		if err := c.PutCheckpoint(casKey, []byte(fmt.Sprintf("gen-%d", i))); err != nil {
			t.Fatalf("PutCheckpoint: %v", err)
		}
	}
	var corrupt atomic.Int64
	c.OnCorrupt = func(kind string) {
		if kind == "checkpoint" {
			corrupt.Add(1)
		}
	}

	// Truncate the newest generation mid-payload: the CRC must reject it and
	// the read must land on generation 2.
	newest := filepath.Join(dir, casKey[:2], casKey, genName(3))
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("reading generation 3: %v", err)
	}
	if err := os.WriteFile(newest, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatalf("truncating generation 3: %v", err)
	}

	payload, gen, err := c.LatestCheckpoint(casKey)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if gen != 2 || string(payload) != "gen-2" {
		t.Fatalf("fallback landed on generation %d payload %q, want 2 %q", gen, payload, "gen-2")
	}
	if corrupt.Load() != 1 {
		t.Fatalf("OnCorrupt fired %d times, want 1", corrupt.Load())
	}
}

func TestCASResultCorruptTreatedAsMissAndRemoved(t *testing.T) {
	c, dir := newTestCAS(t)
	if err := c.PutResult(casKey, []byte("the result")); err != nil {
		t.Fatalf("PutResult: %v", err)
	}
	if payload, ok := c.Result(casKey); !ok || string(payload) != "the result" {
		t.Fatalf("Result = (%q, %t)", payload, ok)
	}

	path := filepath.Join(dir, casKey[:2], casKey, resultName)
	blob, _ := os.ReadFile(path)
	blob[len(blob)-1] ^= 0xff // flip a CRC byte
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("corrupting result: %v", err)
	}

	var kinds []string
	c.OnCorrupt = func(kind string) { kinds = append(kinds, kind) }
	if _, ok := c.Result(casKey); ok {
		t.Fatalf("corrupt result served as a hit")
	}
	if len(kinds) != 1 || kinds[0] != "result" {
		t.Fatalf("OnCorrupt calls = %v, want [result]", kinds)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt result not removed (err=%v): recompute would collide", err)
	}
}

// TestCASConcurrentReadersDuringCorruption is the satellite-3 chaos fixture:
// a checkpoint is truncated in place between the generation write and the
// reads, while many readers race one writer appending new generations. Under
// -race this pins two properties at once — no torn read is ever returned
// (every payload is a complete generation), and readers fall back past the
// corrupt newest generation instead of failing.
func TestCASConcurrentReadersDuringCorruption(t *testing.T) {
	c, dir := newTestCAS(t)
	valid := map[string]bool{}
	for i := 1; i <= 2; i++ {
		payload := fmt.Sprintf("gen-%d", i)
		valid[payload] = true
		if err := c.PutCheckpoint(casKey, []byte(payload)); err != nil {
			t.Fatalf("PutCheckpoint: %v", err)
		}
	}
	// Corrupt generation 2 (the newest) in place: readers must land on 1
	// until the writer goroutine publishes healthy newer generations.
	g2 := filepath.Join(dir, casKey[:2], casKey, genName(2))
	blob, err := os.ReadFile(g2)
	if err != nil {
		t.Fatalf("reading generation 2: %v", err)
	}
	if err := os.WriteFile(g2, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatalf("truncating generation 2: %v", err)
	}
	c.OnCorrupt = func(string) {} // hot path exercised concurrently; keep it race-visible

	// Deterministic fallback check first: with the newest generation torn,
	// a reader lands one generation back.
	if payload, gen, err := c.LatestCheckpoint(casKey); err != nil || gen != 1 || string(payload) != "gen-1" {
		t.Fatalf("fallback = (%q, %d, %v), want (gen-1, 1, nil)", payload, gen, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				payload, gen, err := c.LatestCheckpoint(casKey)
				if err != nil {
					errs <- fmt.Errorf("LatestCheckpoint: %w", err)
					return
				}
				if gen == 0 {
					// Legal transient: the reader listed generations that the
					// racing writer's pruning removed before the reads. The
					// caller's contract is "rebuild from circuit" — safe.
					continue
				}
				if gen == 2 {
					errs <- fmt.Errorf("truncated generation 2 served to a reader")
					return
				}
				if !bytes.HasPrefix(payload, []byte("gen-")) {
					errs <- fmt.Errorf("torn payload %q", payload)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 3; i <= 12; i++ {
			if err := c.PutCheckpoint(casKey, []byte(fmt.Sprintf("gen-%d", i))); err != nil {
				errs <- fmt.Errorf("PutCheckpoint %d: %w", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Quiesced: the newest healthy generation wins.
	if payload, gen, err := c.LatestCheckpoint(casKey); err != nil || gen != 12 || string(payload) != "gen-12" {
		t.Fatalf("final read = (%q, %d, %v), want (gen-12, 12, nil)", payload, gen, err)
	}
}

func TestFrameRejectsEveryMutation(t *testing.T) {
	payload := []byte("checkpoint payload bytes")
	blob := frame(payload)
	if got, err := unframe(blob); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = (%q, %v)", got, err)
	}
	for i := range blob {
		mutated := bytes.Clone(blob)
		mutated[i] ^= 0x01
		if _, err := unframe(mutated); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", i)
		}
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := unframe(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}
