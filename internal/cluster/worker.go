package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/aiger"
	"repro/internal/core"
	"repro/internal/service"
)

// WorkerConfig tunes a cluster worker.
type WorkerConfig struct {
	// Join is the coordinator's base URL (e.g. "http://host:8080").
	Join string
	// Name labels the worker in coordinator logs.
	Name string
	// Client issues the worker's HTTP requests; tests route it through a
	// faultfs.NetInjector. Nil means http.DefaultClient.
	Client *http.Client
	// Now supplies wall-clock time (injected — determinism rule). Required.
	Now func() time.Time
	// Sleep waits ctx-aware between polls and retries. Nil installs a
	// timer-based default; tests inject a no-op to run the loop flat out.
	Sleep func(ctx context.Context, d time.Duration) error
	// CheckpointEvery uploads a checkpoint every N committed iterations
	// (default 25). Smaller values shrink the recompute window after a kill
	// at the cost of upload traffic.
	CheckpointEvery int
	// PollInterval overrides the coordinator-advertised idle-claim cadence.
	PollInterval time.Duration
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

// Worker is a thin claim-execute loop around core.Session: register, claim,
// resume-or-build, step with lease renewals and checkpoint uploads, upload
// the result, repeat. All cluster smarts (leases, hedging, quarantine,
// caching) live coordinator-side; the worker only has to execute
// deterministically and keep its lease renewed — exactly the properties the
// single-process daemon already guarantees.
type Worker struct {
	cfg  WorkerConfig
	id   string
	ttl  time.Duration
	poll time.Duration
}

// errLeaseLost is the worker-side marker for an HTTP 409: ownership gone,
// abandon the session immediately.
var errLeaseLost = errors.New("cluster: coordinator revoked the lease")

// NewWorker validates cfg and prepares a worker (Run does the registering).
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Join == "" {
		return nil, errors.New("cluster: WorkerConfig.Join is required")
	}
	if cfg.Now == nil {
		return nil, errors.New("cluster: WorkerConfig.Now is required")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepCtx
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 25
	}
	return &Worker{cfg: cfg}, nil
}

// sleepCtx is the production Sleep: a timer raced against ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (wk *Worker) logf(format string, args ...any) {
	if wk.cfg.Logf != nil {
		wk.cfg.Logf(format, args...)
	}
}

// Run registers with the coordinator and executes claimed jobs until ctx is
// cancelled. Transient coordinator unavailability is retried under capped
// backoff; Run only returns on ctx cancellation.
func (wk *Worker) Run(ctx context.Context) error {
	if err := wk.register(ctx); err != nil {
		return err
	}
	wk.logf("worker %s: joined %s (lease ttl %v, poll %v)", wk.id, wk.cfg.Join, wk.ttl, wk.poll)
	idleAttempt := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		claim, ok, err := wk.claim(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, errReregister) {
				// Coordinator restarted and forgot us: join again.
				if rerr := wk.register(ctx); rerr != nil {
					return rerr
				}
				continue
			}
			idleAttempt++
			wk.logf("worker %s: claim failed (%v), backing off", wk.id, err)
			if serr := wk.cfg.Sleep(ctx, service.Backoff("cluster/claim/"+wk.id, idleAttempt, wk.poll, 8*wk.poll)); serr != nil {
				return serr
			}
			continue
		}
		if !ok {
			idleAttempt = 0
			if serr := wk.cfg.Sleep(ctx, wk.poll); serr != nil {
				return serr
			}
			continue
		}
		idleAttempt = 0
		wk.runAttempt(ctx, claim)
	}
}

// register joins the coordinator, retrying under backoff until ctx dies.
func (wk *Worker) register(ctx context.Context) error {
	for attempt := 1; ; attempt++ {
		var resp RegisterResponse
		status, err := wk.doJSON(ctx, http.MethodPost, "/cluster/register", RegisterRequest{Name: wk.cfg.Name}, &resp)
		if err == nil && status == http.StatusOK {
			wk.id = resp.WorkerID
			wk.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			wk.poll = time.Duration(resp.PollMillis) * time.Millisecond
			if wk.cfg.PollInterval > 0 {
				wk.poll = wk.cfg.PollInterval
			}
			if wk.poll <= 0 {
				wk.poll = 500 * time.Millisecond
			}
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		wk.logf("worker: register failed (status %d, err %v), retrying", status, err)
		if serr := wk.cfg.Sleep(ctx, service.Backoff("cluster/register", attempt, 100*time.Millisecond, 5*time.Second)); serr != nil {
			return serr
		}
	}
}

// errReregister reports a 410 from claim: this worker id is unknown (the
// coordinator restarted) and a fresh registration is needed.
var errReregister = errors.New("cluster: worker unknown to coordinator")

func (wk *Worker) claim(ctx context.Context) (ClaimResponse, bool, error) {
	var resp ClaimResponse
	status, err := wk.doJSON(ctx, http.MethodPost, "/cluster/claim", ClaimRequest{WorkerID: wk.id}, &resp)
	if err != nil {
		return ClaimResponse{}, false, err
	}
	switch status {
	case http.StatusOK:
		return resp, true, nil
	case http.StatusNoContent:
		return ClaimResponse{}, false, nil
	case http.StatusGone:
		return ClaimResponse{}, false, errReregister
	}
	return ClaimResponse{}, false, fmt.Errorf("cluster: claim returned status %d", status)
}

// runAttempt executes one leased attempt end to end. Failures the worker
// itself detects are reported via /fail; lease loss (409 anywhere) abandons
// the session silently — the coordinator has already moved on.
func (wk *Worker) runAttempt(ctx context.Context, claim ClaimResponse) {
	defer func() {
		if r := recover(); r != nil {
			wk.logf("worker %s: attempt %s panicked: %v", wk.id, claim.AttemptID, r)
			_ = wk.fail(ctx, claim, fmt.Sprintf("worker panic: %v", r))
		}
	}()

	sess, err := wk.buildSession(ctx, claim)
	if err != nil {
		if ctx.Err() == nil && !errors.Is(err, errLeaseLost) {
			_ = wk.fail(ctx, claim, err.Error())
		}
		return
	}
	wk.logf("worker %s: job %s attempt %s starting at iteration %d (hedge=%t)",
		wk.id, claim.JobID, claim.AttemptID, sess.Iterations(), claim.Hedge)

	// jobCtx is cancelled the moment the coordinator revokes the lease: the
	// 409 is the cluster's form of ctx cancellation, and wiring it into the
	// session ctx makes a revoked worker stop mid-flow like any other
	// cancellation the core already handles.
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	lastRenew := wk.cfg.Now()
	countdown := wk.cfg.CheckpointEvery
	for {
		ev, err := sess.Step(jobCtx)
		if err != nil {
			if ctx.Err() != nil {
				// Graceful shutdown: park a final checkpoint so the next
				// owner resumes instead of recomputing. The upload must
				// outlive the dying ctx (which would fail it instantly), so
				// it runs on a detached, bounded context.
				shutCtx, done := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
				_ = wk.uploadCheckpoint(shutCtx, claim, sess)
				done()
			}
			return
		}
		if ev.Done {
			wk.uploadResult(ctx, claim, sess)
			return
		}
		countdown--
		if countdown <= 0 {
			countdown = wk.cfg.CheckpointEvery
			if err := wk.uploadCheckpoint(jobCtx, claim, sess); err != nil {
				if errors.Is(err, errLeaseLost) {
					cancel()
					wk.logf("worker %s: job %s attempt %s: lease lost at checkpoint, abandoning", wk.id, claim.JobID, claim.AttemptID)
					return
				}
				wk.logf("worker %s: job %s: checkpoint upload failed: %v", wk.id, claim.JobID, err)
			}
			lastRenew = wk.cfg.Now() // checkpoint upload renews
			continue
		}
		if now := wk.cfg.Now(); wk.ttl > 0 && now.Sub(lastRenew) >= wk.ttl/3 {
			if err := wk.renew(jobCtx, claim); err != nil {
				if errors.Is(err, errLeaseLost) {
					cancel()
					wk.logf("worker %s: job %s attempt %s: lease lost at renew, abandoning", wk.id, claim.JobID, claim.AttemptID)
					return
				}
				// Transient coordinator trouble: keep stepping; the next
				// renew or upload settles ownership one way or the other.
				wk.logf("worker %s: job %s: renew failed: %v", wk.id, claim.JobID, err)
			}
			lastRenew = now
		}
	}
}

// buildSession restores the claim from the coordinator's newest checkpoint
// when one exists, falling back to a fresh build from the circuit — the same
// restore-or-rebuild ladder the single-process daemon uses, stretched over
// HTTP. Determinism makes every rung bitwise-equivalent.
func (wk *Worker) buildSession(ctx context.Context, claim ClaimResponse) (*core.Session, error) {
	if claim.HasCheckpoint {
		ckpt, status, err := wk.get(ctx, "/cluster/jobs/"+claim.JobID+"/checkpoint")
		if err == nil && status == http.StatusOK {
			sess, rerr := service.RestoreSession(claim.Spec, ckpt)
			if rerr == nil {
				return sess, nil
			}
			wk.logf("worker %s: job %s: checkpoint unusable (%v), rebuilding from circuit", wk.id, claim.JobID, rerr)
		}
	}
	circuit, status, err := wk.get(ctx, "/cluster/jobs/"+claim.JobID+"/circuit")
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching circuit: %w", err)
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetching circuit: status %d", status)
	}
	return service.BuildSession(claim.Spec, circuit)
}

func (wk *Worker) renew(ctx context.Context, claim ClaimResponse) error {
	status, err := wk.doJSON(ctx, http.MethodPost, "/cluster/jobs/"+claim.JobID+"/renew",
		AttemptRequest{WorkerID: wk.id, AttemptID: claim.AttemptID}, nil)
	return leaseStatus(status, err, "renew")
}

func (wk *Worker) uploadCheckpoint(ctx context.Context, claim ClaimResponse, sess *core.Session) error {
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		return fmt.Errorf("cluster: snapshotting session: %w", err)
	}
	status, err := wk.put(ctx, "/cluster/jobs/"+claim.JobID+"/checkpoint?"+wk.attemptQuery(claim), buf.Bytes())
	return leaseStatus(status, err, "checkpoint upload")
}

// uploadResult publishes the finished session. A 409 is a won-by-the-other-
// guy hedge race, not an error.
func (wk *Worker) uploadResult(ctx context.Context, claim ClaimResponse, sess *core.Session) {
	res := sess.Result()
	var aag bytes.Buffer
	if err := aiger.Write(&aag, res.Graph, "aag"); err != nil {
		_ = wk.fail(ctx, claim, fmt.Sprintf("encoding result: %v", err))
		return
	}
	sum := ResultSummary{
		Iterations: res.Iterations,
		Applied:    res.Applied,
		Ands:       res.Graph.NumAnds(),
		FinalError: res.FinalError,
		Reason:     sess.Reason(),
	}
	sj, err := json.Marshal(sum)
	if err != nil {
		_ = wk.fail(ctx, claim, fmt.Sprintf("encoding summary: %v", err))
		return
	}
	path := "/cluster/jobs/" + claim.JobID + "/result?" + wk.attemptQuery(claim) +
		"&summary=" + url.QueryEscape(string(sj))
	status, err := wk.put(ctx, path, aag.Bytes())
	switch {
	case err != nil:
		wk.logf("worker %s: job %s: result upload failed: %v", wk.id, claim.JobID, err)
	case status == http.StatusConflict:
		wk.logf("worker %s: job %s attempt %s: lost the finish race", wk.id, claim.JobID, claim.AttemptID)
	case status >= 300:
		wk.logf("worker %s: job %s: result upload returned status %d", wk.id, claim.JobID, status)
	default:
		wk.logf("worker %s: job %s done (%d iterations, error %.6g)", wk.id, claim.JobID, sum.Iterations, sum.FinalError)
	}
}

func (wk *Worker) fail(ctx context.Context, claim ClaimResponse, msg string) error {
	_, err := wk.doJSON(ctx, http.MethodPost, "/cluster/jobs/"+claim.JobID+"/fail",
		FailRequest{WorkerID: wk.id, AttemptID: claim.AttemptID, Error: msg}, nil)
	return err
}

func (wk *Worker) attemptQuery(claim ClaimResponse) string {
	return "worker=" + url.QueryEscape(wk.id) + "&attempt=" + url.QueryEscape(claim.AttemptID)
}

// leaseStatus folds (status, err) into the lease protocol: 409 is
// errLeaseLost, anything else non-2xx is a transient error.
func leaseStatus(status int, err error, op string) error {
	if err != nil {
		return err
	}
	if status == http.StatusConflict {
		return errLeaseLost
	}
	if status >= 300 {
		return fmt.Errorf("cluster: %s returned status %d", op, status)
	}
	return nil
}

// --- HTTP plumbing ---------------------------------------------------------

// workerHTTPRetries bounds retries of one logical call on *network* errors
// (HTTP statuses are never retried here — the lease protocol gives every
// status a meaning). All calls in the worker protocol are safe to repeat: a
// duplicated claim leaves an extra lease that simply expires, and uploads
// are idempotent by content.
const workerHTTPRetries = 4

func (wk *Worker) doRetry(ctx context.Context, key string, call func() (int, error)) (int, error) {
	var status int
	var err error
	for attempt := 1; ; attempt++ {
		status, err = call()
		if err == nil || ctx.Err() != nil || attempt >= workerHTTPRetries {
			return status, err
		}
		if serr := wk.cfg.Sleep(ctx, service.Backoff(key, attempt, 50*time.Millisecond, 2*time.Second)); serr != nil {
			return status, err
		}
	}
}

func (wk *Worker) doJSON(ctx context.Context, method, path string, reqBody, respBody any) (int, error) {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return 0, fmt.Errorf("cluster: encoding request: %w", err)
	}
	return wk.doRetry(ctx, "cluster/http/"+path, func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, method, wk.cfg.Join+path, bytes.NewReader(payload))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := wk.cfg.Client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if err != nil {
			return 0, err
		}
		if respBody != nil && resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, respBody); err != nil {
				return 0, fmt.Errorf("cluster: decoding response: %w", err)
			}
		}
		return resp.StatusCode, nil
	})
}

func (wk *Worker) get(ctx context.Context, path string) ([]byte, int, error) {
	var body []byte
	status, err := wk.doRetry(ctx, "cluster/http/"+path, func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.cfg.Join+path, nil)
		if err != nil {
			return 0, err
		}
		resp, err := wk.cfg.Client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if err != nil {
			return 0, err
		}
		return resp.StatusCode, nil
	})
	return body, status, err
}

func (wk *Worker) put(ctx context.Context, path string, body []byte) (int, error) {
	return wk.doRetry(ctx, "cluster/http/"+path, func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, wk.cfg.Join+path, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.ContentLength = int64(len(body))
		resp, err := wk.cfg.Client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		return resp.StatusCode, nil
	})
}
