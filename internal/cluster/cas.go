package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

// CAS is the coordinator's content-addressed blob store. Entries live under
// <dir>/<key[:2]>/<key>/: checkpoint generations (checkpoint.NNNNNN, newest
// wins, keepGenerations retained) and one result blob. Every blob is framed
// with a magic, a length and a CRC32-IEEE of the payload, written atomically
// (temp + fsync + rename + dirsync via faultfs.WriteAtomic), and verified on
// every read: a torn or rotted entry is reported to the caller as absent —
// checkpoints fall back generation by generation, results fall back to
// recompute — never as garbage data. Corruption is counted through
// OnCorrupt so the cache-integrity signal reaches /metrics.
//
// Addressing is by JobKey, not job id: duplicate submissions of the same
// normalized work share checkpoints and results, which is what turns a
// resubmitted or reassigned job into a cache hit.
type CAS struct {
	dir string
	fs  faultfs.FS

	// OnCorrupt, when set, is invoked once per corrupt entry detected
	// ("checkpoint" or "result"). Set before first use; not synchronized.
	OnCorrupt func(kind string)

	// mu serializes writers (generation numbering and pruning). Readers
	// deliberately do not take it: atomic rename gives them a complete old
	// or complete new blob, and the CRC catches everything else.
	mu sync.Mutex
}

const (
	casMagic        = "ALSRCAS1"
	keepGenerations = 3
	ckptPrefix      = "checkpoint"
	resultName      = "result"
)

// ErrCASCorrupt is wrapped into errors reported for unreadable frames.
var ErrCASCorrupt = errors.New("cluster: corrupt CAS entry")

// NewCAS opens (creating if needed) a store rooted at dir.
func NewCAS(dir string, fsys faultfs.FS) (*CAS, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating CAS dir: %w", err)
	}
	return &CAS{dir: dir, fs: fsys}, nil
}

func (c *CAS) keyDir(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = key[:2]
	}
	return filepath.Join(c.dir, shard, key)
}

// frame wraps payload as magic || u32 len || payload || u32 crc.
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(casMagic)+8+len(payload))
	out = append(out, casMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

// unframe verifies and strips the frame. Any mismatch — short blob, wrong
// magic, bad length, CRC failure — is ErrCASCorrupt.
func unframe(blob []byte) ([]byte, error) {
	if len(blob) < len(casMagic)+8 || string(blob[:len(casMagic)]) != casMagic {
		return nil, fmt.Errorf("%w: bad header", ErrCASCorrupt)
	}
	n := binary.LittleEndian.Uint32(blob[len(casMagic):])
	rest := blob[len(casMagic)+4:]
	if uint32(len(rest)) != n+4 {
		return nil, fmt.Errorf("%w: length %d does not match blob", ErrCASCorrupt, n)
	}
	payload := rest[:n]
	want := binary.LittleEndian.Uint32(rest[n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCASCorrupt)
	}
	return payload, nil
}

func (c *CAS) corrupt(kind string) {
	if c.OnCorrupt != nil {
		c.OnCorrupt(kind)
	}
}

// gens lists a key's checkpoint generation numbers, descending.
func (c *CAS) gens(key string) []int {
	entries, err := c.fs.ReadDir(c.keyDir(key))
	if err != nil {
		return nil
	}
	return genNumbers(entries)
}

func genNumbers(entries []fs.DirEntry) []int {
	var seqs []int
	for _, e := range entries {
		if rest, ok := strings.CutPrefix(e.Name(), ckptPrefix+"."); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > 0 {
				seqs = append(seqs, n)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	return seqs
}

func genName(n int) string { return fmt.Sprintf("%s.%06d", ckptPrefix, n) }

// PutCheckpoint stores payload as the key's next checkpoint generation and
// prunes generations beyond keepGenerations (pruning failures are ignored:
// an extra old generation is harmless).
func (c *CAS) PutCheckpoint(key string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir := c.keyDir(key)
	if err := c.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: creating CAS entry dir: %w", err)
	}
	next := 1
	if g := c.gens(key); len(g) > 0 {
		next = g[0] + 1
	}
	path := filepath.Join(dir, genName(next))
	if err := faultfs.WriteAtomic(c.fs, path, frame(payload)); err != nil {
		return fmt.Errorf("cluster: writing checkpoint generation %d: %w", next, err)
	}
	if g := c.gens(key); len(g) > keepGenerations {
		for _, n := range g[keepGenerations:] {
			_ = c.fs.Remove(filepath.Join(dir, genName(n)))
		}
	}
	return nil
}

// LatestCheckpoint returns the newest CRC-valid checkpoint payload and its
// generation number, falling back generation by generation past corrupt
// entries. (nil, 0, nil) means no usable checkpoint — indistinguishable, by
// design, from never having checkpointed: the caller rebuilds from the
// circuit and determinism makes the rerun identical.
func (c *CAS) LatestCheckpoint(key string) ([]byte, int, error) {
	dir := c.keyDir(key)
	for _, n := range c.gens(key) {
		blob, err := c.fs.ReadFile(filepath.Join(dir, genName(n)))
		if err != nil {
			continue // racing pruner or unreadable file: try older
		}
		payload, err := unframe(blob)
		if err != nil {
			c.corrupt("checkpoint")
			continue
		}
		return payload, n, nil
	}
	return nil, 0, nil
}

// HasCheckpoint reports whether any checkpoint generation exists on disk
// (without CRC-verifying it — claim responses use this as a hint only; the
// authoritative read happens at restore time).
func (c *CAS) HasCheckpoint(key string) bool {
	return len(c.gens(key)) > 0
}

// PutResult stores the key's result blob.
func (c *CAS) PutResult(key string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir := c.keyDir(key)
	if err := c.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: creating CAS entry dir: %w", err)
	}
	if err := faultfs.WriteAtomic(c.fs, filepath.Join(dir, resultName), frame(payload)); err != nil {
		return fmt.Errorf("cluster: writing result: %w", err)
	}
	return nil
}

// Result returns the key's CRC-valid result payload, or ok=false when the
// entry is absent or corrupt. A corrupt entry is removed (best effort) so
// the recompute's PutResult starts from a clean slot.
func (c *CAS) Result(key string) ([]byte, bool) {
	path := filepath.Join(c.keyDir(key), resultName)
	blob, err := c.fs.ReadFile(path)
	if err != nil {
		return nil, false
	}
	payload, err := unframe(blob)
	if err != nil {
		c.corrupt("result")
		_ = c.fs.Remove(path)
		return nil, false
	}
	return payload, true
}
