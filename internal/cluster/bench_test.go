package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/service"
)

// BenchmarkClusterDispatch measures the coordinator's pure scheduling
// overhead for one job lifecycle: submit → claim → checkpoint upload →
// result upload → result read. Every iteration varies the seed so the
// content-addressed cache never short-circuits the path being measured.
func BenchmarkClusterDispatch(b *testing.B) {
	clk := newFakeClock()
	co, err := NewCoordinator(CoordConfig{
		Dir:      b.TempDir(),
		Now:      clk.Now,
		LeaseTTL: time.Hour,
	})
	if err != nil {
		b.Fatalf("NewCoordinator: %v", err)
	}

	circuit := testCircuit(b)
	w := co.Register("bench")
	sum := ResultSummary{Iterations: 17, Applied: 9, Ands: 100, FinalError: 0.042, Reason: "threshold"}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := service.JobSpec{
			Metric:       "er",
			Threshold:    0.05,
			Seed:         int64(i + 1), // unique key per iteration: no cache hits
			EvalPatterns: 1024,
			Workers:      1,
		}
		st, err := co.Submit(spec, circuit)
		if err != nil {
			b.Fatalf("Submit: %v", err)
		}
		if st.CacheHit {
			b.Fatalf("iteration %d hit the cache: benchmark measures dispatch, not lookup", i)
		}
		claim, ok, err := co.Claim(w.WorkerID)
		if err != nil || !ok {
			b.Fatalf("Claim = (%v, %t)", err, ok)
		}
		if err := co.UploadCheckpoint(claim.JobID, w.WorkerID, claim.AttemptID, []byte(fmt.Sprintf("ckpt-%d", i))); err != nil {
			b.Fatalf("UploadCheckpoint: %v", err)
		}
		if err := co.UploadResult(claim.JobID, w.WorkerID, claim.AttemptID, sum, circuit); err != nil {
			b.Fatalf("UploadResult: %v", err)
		}
		if _, err := co.ResultAAG(st.ID); err != nil {
			b.Fatalf("ResultAAG: %v", err)
		}
	}
}
