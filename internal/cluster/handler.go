package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/service"
)

// maxBodyBytes bounds every request body the coordinator reads. A torn
// upload (Content-Length larger than what arrived) fails the read with
// io.ErrUnexpectedEOF and is rejected before it can reach the CAS.
const maxBodyBytes = 64 << 20

// NewHandler builds the coordinator's HTTP surface: the client-facing /jobs
// API (mirroring the single-process daemon's shapes) plus the /cluster/*
// worker protocol documented in proto.go.
func NewHandler(co *Coordinator) http.Handler {
	mux := http.NewServeMux()

	// Client surface.
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(co, w, r)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := co.Status(r.PathValue("id"))
		if err != nil {
			clusterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		aag, err := co.ResultAAG(r.PathValue("id"))
		if err != nil {
			clusterError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(aag)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := co.Cancel(r.PathValue("id"))
		if err != nil {
			clusterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = co.Registry().WritePrometheus(w)
	})

	// Worker protocol.
	mux.HandleFunc("POST /cluster/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, co.Register(req.Name))
	})
	mux.HandleFunc("POST /cluster/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, ok, err := co.Claim(req.WorkerID)
		if err != nil {
			clusterError(w, err)
			return
		}
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /cluster/jobs/{id}/circuit", func(w http.ResponseWriter, r *http.Request) {
		data, err := co.Circuit(r.PathValue("id"))
		if err != nil {
			clusterError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	mux.HandleFunc("GET /cluster/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		payload, ok, err := co.Checkpoint(r.PathValue("id"))
		if err != nil {
			clusterError(w, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, "no_checkpoint", "no usable checkpoint")
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(payload)
	})
	mux.HandleFunc("POST /cluster/jobs/{id}/renew", func(w http.ResponseWriter, r *http.Request) {
		var req AttemptRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := co.Renew(r.PathValue("id"), req.WorkerID, req.AttemptID); err != nil {
			clusterError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("PUT /cluster/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		payload, ok := readBody(w, r)
		if !ok {
			return
		}
		q := r.URL.Query()
		if err := co.UploadCheckpoint(r.PathValue("id"), q.Get("worker"), q.Get("attempt"), payload); err != nil {
			clusterError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("PUT /cluster/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		aag, ok := readBody(w, r)
		if !ok {
			return
		}
		q := r.URL.Query()
		sum, err := summaryFromQuery(q.Get("summary"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_summary", "%v", err)
			return
		}
		if err := co.UploadResult(r.PathValue("id"), q.Get("worker"), q.Get("attempt"), sum, aag); err != nil {
			clusterError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /cluster/jobs/{id}/fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := co.Fail(r.PathValue("id"), req.WorkerID, req.AttemptID, req.Error); err != nil {
			clusterError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	return mux
}

// handleSubmit accepts the same query-parameter spec and circuit body as the
// single-process POST /jobs, so the CLI client and smoke scripts work
// unchanged against a coordinator.
func handleSubmit(co *Coordinator, w http.ResponseWriter, r *http.Request) {
	spec, err := service.SpecFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", "%v", err)
		return
	}
	circuit, ok := readBody(w, r)
	if !ok {
		return
	}
	if len(circuit) == 0 {
		writeError(w, http.StatusBadRequest, "empty_circuit", "request body must contain a circuit")
		return
	}
	st, err := co.Submit(spec, circuit)
	if err != nil {
		if errors.Is(err, service.ErrUnparsable) {
			writeError(w, http.StatusBadRequest, "unparsable", "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_spec", "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// summaryFromQuery decodes the worker's base-independent summary encoding:
// a single JSON object passed URL-encoded in ?summary=.
func summaryFromQuery(s string) (ResultSummary, error) {
	var sum ResultSummary
	if s == "" {
		return sum, fmt.Errorf("missing summary parameter")
	}
	if err := json.Unmarshal([]byte(s), &sum); err != nil {
		return sum, fmt.Errorf("decoding summary: %w", err)
	}
	return sum, nil
}

// readBody drains the request body under maxBodyBytes, enforcing
// Content-Length when present: a body shorter than declared (a torn upload
// through a dying proxy) is rejected so partial bytes never reach the store.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", "reading body: %v", err)
		return nil, false
	}
	if len(data) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large", "body exceeds %d bytes", maxBodyBytes)
		return nil, false
	}
	if cl := r.Header.Get("Content-Length"); cl != "" {
		if want, perr := strconv.ParseInt(cl, 10, 64); perr == nil && int64(len(data)) != want {
			writeError(w, http.StatusBadRequest, "torn_body", "body truncated: got %d of %d bytes", len(data), want)
			return nil, false
		}
	}
	return data, true
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	data, ok := readBody(w, r)
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", "decoding request: %v", err)
		return false
	}
	return true
}

// clusterError maps coordinator sentinel errors onto HTTP statuses. 409 is
// the load-bearing one: it is how lease loss — the cluster's form of ctx
// cancellation — crosses the wire.
func clusterError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
	case errors.Is(err, ErrLeaseLost):
		writeError(w, http.StatusConflict, "lease_lost", "%v", err)
	case errors.Is(err, ErrNotDone):
		writeError(w, http.StatusConflict, "not_done", "%v", err)
	case errors.Is(err, ErrUnknownWorker):
		writeError(w, http.StatusGone, "unknown_worker", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  code,
	})
}
