package cluster

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/aiger"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/service"
)

// fakeClock is the injected time source shared by a test's coordinator and
// workers. It only moves when the test says so, which makes every lease
// expiry and hedge decision a deliberate act of the test script.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testCircuit returns a 16-bit carry-lookahead adder as ASCII AIGER bytes —
// the same workload the service tests use (~17 iterations at testSpec).
func testCircuit(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := aiger.Write(&buf, bench.CLA(16), "aag"); err != nil {
		t.Fatalf("serializing test circuit: %v", err)
	}
	return buf.Bytes()
}

func testSpec() service.JobSpec {
	return service.JobSpec{
		Metric:       "er",
		Threshold:    0.05,
		Seed:         3,
		EvalPatterns: 1024,
		Workers:      1,
	}
}

// refRun computes the uninterrupted single-process answer: the bitwise
// yardstick every cluster execution — killed, resumed, hedged or cached —
// must reproduce exactly.
func refRun(t *testing.T, spec service.JobSpec, circuit []byte) (core.Result, []byte) {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	g, err := service.ParseCircuit(spec.Format, circuit)
	if err != nil {
		t.Fatalf("parse circuit: %v", err)
	}
	res := core.Run(g, opts)
	var buf bytes.Buffer
	if err := aiger.Write(&buf, res.Graph, "aag"); err != nil {
		t.Fatalf("serializing reference: %v", err)
	}
	return res, buf.Bytes()
}

// newTestCoord builds a coordinator on a temp dir with the shared fake clock
// and test-friendly timings; mutate tweaks the config before construction.
func newTestCoord(t *testing.T, clk *fakeClock, mutate func(*CoordConfig)) *Coordinator {
	t.Helper()
	cfg := CoordConfig{
		Dir:      t.TempDir(),
		Now:      clk.Now,
		LeaseTTL: 10 * time.Second,
		Logf:     t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return co
}

// finishAttempt plays a worker completing an attempt through the direct API:
// the payload must parse as AAG, so tests hand back the circuit itself.
func finishAttempt(t *testing.T, co *Coordinator, claim ClaimResponse, workerID string, aag []byte) {
	t.Helper()
	sum := ResultSummary{Iterations: 17, Applied: 9, Ands: 100, FinalError: 0.042, Reason: "threshold"}
	if err := co.UploadResult(claim.JobID, workerID, claim.AttemptID, sum, aag); err != nil {
		t.Fatalf("UploadResult(%s): %v", claim.JobID, err)
	}
}
