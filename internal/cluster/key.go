// Package cluster scales alsracd from one process to a fault-tolerant
// coordinator/worker fleet. The coordinator owns the job table, a
// content-addressed checkpoint/result store, and the lease/hedge/quarantine
// state machine; workers are thin claim-execute loops around the same
// core.Session engine the single-process daemon drives. Determinism is the
// load-bearing wall throughout: the flow is bitwise-deterministic in
// (circuit, normalized spec), so a job may die on one machine and finish on
// another — resumed from its last uploaded checkpoint — and still produce
// the byte-identical result, and two submissions of the same work are one
// computation.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/aig"
	"repro/internal/service"
)

// keyVersion tags the derivation so any change to the fingerprint, the
// field list, or the session semantics (a new optimization that changes
// results) can invalidate every cached blob at once by bumping it.
const keyVersion = "alsrac-cluster-key-v1"

// JobKey derives the content address of a job: a hex SHA-256 over the
// circuit's structural fingerprint and every spec field that influences the
// final result. Two submissions with equal keys provably compute the same
// answer (the flow is deterministic in exactly these inputs), so checkpoints
// and results are shared across job ids by key.
//
// Deliberately excluded:
//   - Workers: intra-job parallelism is bitwise-invariant (the PR 1
//     contract), so a 1-thread and an 8-thread run share cache entries.
//   - TimeoutSec: a deadline changes *whether* the run finishes, not what it
//     converges to; timed-out best-so-far results are never cached.
//   - Format: the fingerprint is taken after parsing, so the same circuit
//     submitted as BLIF and as AIGER collides — that is the point.
//
// The spec must already be normalized (Normalize fills defaults), otherwise
// an explicit default and an absent field would key differently.
func JobKey(spec service.JobSpec, g *aig.Graph) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", keyVersion)
	fmt.Fprintf(h, "fp=%016x\n", aig.Fingerprint(g))
	fmt.Fprintf(h, "metric=%s threshold=%g maxerror=%g certbudget=%d\n",
		spec.Metric, spec.Threshold, spec.MaxError, spec.CertConflictBudget)
	fmt.Fprintf(h, "seed=%d eval=%d n=%d l=%d t=%d r=%g maxstall=%d maxdepth=%g\n",
		spec.Seed, spec.EvalPatterns, spec.InitialRounds, spec.MaxLACsPerNode,
		spec.Patience, spec.Scale, spec.MaxStall, spec.MaxDepthRatio)
	fmt.Fprintf(h, "windowed=%t wpis=%d wnodes=%d wdivs=%d wsfr=%d wsfd=%d\n",
		spec.Windowed, spec.WindowMaxPIs, spec.WindowMaxNodes, spec.WindowMaxDivisors,
		spec.WindowSkipFanoutRoots, spec.WindowSkipFanoutDivisors)
	return hex.EncodeToString(h.Sum(nil))
}
