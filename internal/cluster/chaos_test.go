package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/service"
)

// TestClusterChaosMatrix drives one worker through a deterministic schedule
// of network faults — a dropped registration, a dropped claim, a delayed
// circuit fetch, a truncated checkpoint download — layered on top of a
// poisoned (unrestorable) checkpoint in the store. The worker must retry
// through every fault, reject the garbage checkpoint, rebuild from the
// circuit and still produce the reference bytes. This is the cluster
// analogue of the faultfs chaos tests: same injected-schedule determinism,
// same bit-identity bar, run under -race.
func TestClusterChaosMatrix(t *testing.T) {
	circuit := testCircuit(t)
	_, refAAG := refRun(t, testSpec(), circuit)

	clk := newFakeClock()
	co := newTestCoord(t, clk, func(cfg *CoordConfig) {
		cfg.LeaseTTL = 10 * time.Second
		cfg.PollInterval = 2 * time.Millisecond
		cfg.RedispatchMax = time.Second
	})
	srv := httptest.NewServer(NewHandler(co))
	defer srv.Close()

	// A previous "session" left a checkpoint that does not restore (the
	// cross-machine analogue of a torn local checkpoint): claim will
	// advertise it, restore must reject it, and the rebuild-from-circuit
	// ladder must converge to the identical answer.
	st, err := co.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	seeder := co.Register("seeder")
	seedClaim, ok, _ := co.Claim(seeder.WorkerID)
	if !ok {
		t.Fatalf("seed claim failed")
	}
	if err := co.UploadCheckpoint(seedClaim.JobID, seeder.WorkerID, seedClaim.AttemptID, []byte("not a core snapshot")); err != nil {
		t.Fatalf("seeding checkpoint: %v", err)
	}
	// The seeder dies; the job requeues with its poisoned checkpoint.
	clk.Advance(11 * time.Second)
	co.Jobs()
	if got, _ := co.Status(st.ID); got.State != service.StateQueued {
		t.Fatalf("after seeder death: %s, want queued", got.State)
	}
	clk.Advance(30 * time.Second)

	// The chaos schedule, deterministic by construction: each fault arms on
	// the N-th matching call and fires exactly once.
	var sleepMu sync.Mutex
	var delays []time.Duration
	inj := faultfs.NewNetInjector(http.DefaultTransport,
		func(d time.Duration) {
			sleepMu.Lock()
			delays = append(delays, d)
			sleepMu.Unlock()
		},
		faultfs.NetFault{Method: http.MethodPost, PathSubstr: "/cluster/register", N: 1, Drop: true},
		faultfs.NetFault{Method: http.MethodPost, PathSubstr: "/cluster/claim", N: 1, Drop: true},
		faultfs.NetFault{Method: http.MethodGet, PathSubstr: "/checkpoint", N: 1, Truncate: 7, Truncated: true},
		faultfs.NetFault{Method: http.MethodGet, PathSubstr: "/circuit", N: 1, Delay: 5 * time.Millisecond},
	)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	startTestWorker(t, ctx, &wg, WorkerConfig{
		Join:            srv.URL,
		Name:            "chaos",
		Client:          &http.Client{Transport: inj},
		Now:             clk.Now,
		Sleep:           testWorkerSleep,
		CheckpointEvery: 5,
		Logf:            t.Logf,
	})

	waitClusterState(t, srv, st.ID, service.StateDone)
	gotAAG, err := co.ResultAAG(st.ID)
	if err != nil {
		t.Fatalf("ResultAAG: %v", err)
	}
	if !bytes.Equal(gotAAG, refAAG) {
		t.Fatalf("chaos run result differs from reference")
	}
	if fired := inj.Fired(); len(fired) != 4 {
		t.Fatalf("%d of 4 scheduled faults fired: %v", len(fired), fired)
	}
	sleepMu.Lock()
	nd := len(delays)
	sleepMu.Unlock()
	if nd != 1 {
		t.Fatalf("delay fault slept %d times, want 1", nd)
	}
}
