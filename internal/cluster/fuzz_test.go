package cluster

import (
	"bytes"
	"testing"
)

// FuzzCASFrame drives arbitrary bytes through the CAS frame codec. Two
// invariants: unframe never panics and never accepts a blob it cannot
// re-encode to the identical bytes (the framing is canonical — one payload,
// one frame), and frame→unframe is the identity on every payload.
func FuzzCASFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("payload"))
	f.Add(frame([]byte("checkpoint bytes")))
	f.Add(frame(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		if payload, err := unframe(data); err == nil {
			if !bytes.Equal(frame(payload), data) {
				t.Fatalf("unframe accepted a non-canonical frame of %d bytes", len(data))
			}
		}
		rt, err := unframe(frame(data))
		if err != nil {
			t.Fatalf("roundtrip rejected: %v", err)
		}
		if !bytes.Equal(rt, data) {
			t.Fatalf("roundtrip changed payload: %d bytes in, %d out", len(data), len(rt))
		}
	})
}
