package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// partitionAfterCheckpoint simulates `kill -9` of a worker right after its
// first successful checkpoint upload: every subsequent request — renewals,
// further checkpoints, the result, even new claims — vanishes into the
// partition, exactly the silence a SIGKILLed process leaves behind. (Unlike
// ctx cancellation, a real kill gives the worker no chance to park a
// farewell checkpoint, and neither does this.)
type partitionAfterCheckpoint struct {
	base http.RoundTripper

	mu       sync.Mutex
	dropped  bool
	signaled chan struct{}
}

func newPartitionAfterCheckpoint() *partitionAfterCheckpoint {
	return &partitionAfterCheckpoint{base: http.DefaultTransport, signaled: make(chan struct{})}
}

func (p *partitionAfterCheckpoint) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	if p.dropped {
		p.mu.Unlock()
		return nil, errors.New("partitioned: worker was killed")
	}
	p.mu.Unlock()
	resp, err := p.base.RoundTrip(req)
	if err == nil && req.Method == http.MethodPut && strings.Contains(req.URL.Path, "/checkpoint") {
		p.mu.Lock()
		if !p.dropped {
			p.dropped = true
			close(p.signaled)
		}
		p.mu.Unlock()
	}
	return resp, err
}

// testWorkerSleep is a real (short) ctx-aware sleep so idle workers poll
// without busy-spinning; lease logic everywhere uses the fake clock.
func testWorkerSleep(ctx context.Context, d time.Duration) error {
	if d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func startTestWorker(t *testing.T, ctx context.Context, wg *sync.WaitGroup, cfg WorkerConfig) {
	t.Helper()
	wk, err := NewWorker(cfg)
	if err != nil {
		t.Fatalf("NewWorker(%s): %v", cfg.Name, err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = wk.Run(ctx)
	}()
}

func httpStatus(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(srv.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func waitClusterState(t *testing.T, srv *httptest.Server, id string, want service.State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := httpStatus(t, srv, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterKillAndResumeBitIdentity is the tentpole acceptance test: a job
// starts on worker A, worker A is killed mid-run right after a checkpoint
// upload, the lease expires, and worker B resumes from A's checkpoint on a
// different "machine" — producing a result byte-identical to an
// uninterrupted single-process run.
func TestClusterKillAndResumeBitIdentity(t *testing.T) {
	circuit := testCircuit(t)
	ref, refAAG := refRun(t, testSpec(), circuit)

	clk := newFakeClock()
	co := newTestCoord(t, clk, func(cfg *CoordConfig) {
		cfg.LeaseTTL = 10 * time.Second
		cfg.PollInterval = 2 * time.Millisecond
		cfg.RedispatchMax = time.Second
	})
	srv := httptest.NewServer(NewHandler(co))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()

	part := newPartitionAfterCheckpoint()
	startTestWorker(t, ctx, &wg, WorkerConfig{
		Join:            srv.URL,
		Name:            "victim",
		Client:          &http.Client{Transport: part},
		Now:             clk.Now,
		Sleep:           testWorkerSleep,
		CheckpointEvery: 5, // the CLA(16) job runs ~17 iterations: killed mid-run
		Logf:            t.Logf,
	})

	// Submit over HTTP, like a real client would.
	resp, err := http.Post(srv.URL+"/jobs?metric=er&threshold=0.05&seed=3&eval=1024&workers=1",
		"text/plain", bytes.NewReader(circuit))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}

	// Wait for the victim's first checkpoint; the partition drops at that
	// exact instant.
	select {
	case <-part.signaled:
	case <-time.After(60 * time.Second):
		t.Fatalf("victim never uploaded a checkpoint")
	}
	if !co.cas.HasCheckpoint(st.Key) {
		t.Fatalf("checkpoint signal fired but CAS holds none")
	}

	// Worker B joins after the kill — it can only know the job through the
	// coordinator's store.
	startTestWorker(t, ctx, &wg, WorkerConfig{
		Join:            srv.URL,
		Name:            "successor",
		Now:             clk.Now,
		Sleep:           testWorkerSleep,
		CheckpointEvery: 5,
		Logf:            t.Logf,
	})

	// The victim's lease expires; worker B's claims sweep it out.
	clk.Advance(11 * time.Second)
	deadline := time.Now().Add(60 * time.Second)
	for httpStatus(t, srv, st.ID).Redispatches == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Past the redispatch backoff, B inherits and finishes. The clock stays
	// frozen from here on, so B's own lease cannot expire mid-run.
	clk.Advance(30 * time.Second)
	final := waitClusterState(t, srv, st.ID, service.StateDone)

	// Bit-identity across the kill: iterations, error and the full circuit.
	if final.Iterations != ref.Iterations {
		t.Fatalf("resumed run took %d iterations, reference %d", final.Iterations, ref.Iterations)
	}
	if final.FinalError != ref.FinalError {
		t.Fatalf("resumed run error %v, reference %v", final.FinalError, ref.FinalError)
	}
	got, err := http.Get(srv.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	gotAAG, _ := io.ReadAll(got.Body)
	got.Body.Close()
	if !bytes.Equal(gotAAG, refAAG) {
		t.Fatalf("resumed result differs from reference run:\n got %d bytes\nwant %d bytes", len(gotAAG), len(refAAG))
	}

	// The fault-tolerance machinery actually engaged.
	if co.met.leasesExpired.Value() == 0 {
		t.Fatalf("no lease expired — the kill never happened?")
	}
	if co.met.reassignments.Value() == 0 {
		t.Fatalf("no reassignment recorded")
	}
	if co.met.ckptUploads.Value() == 0 {
		t.Fatalf("no checkpoint uploads recorded")
	}
}

// TestClusterSingleWorkerMatchesReference is the no-fault baseline: one
// worker, no kills, result bytes equal the reference run.
func TestClusterSingleWorkerMatchesReference(t *testing.T) {
	circuit := testCircuit(t)
	_, refAAG := refRun(t, testSpec(), circuit)

	clk := newFakeClock()
	co := newTestCoord(t, clk, func(cfg *CoordConfig) {
		cfg.PollInterval = 2 * time.Millisecond
	})
	srv := httptest.NewServer(NewHandler(co))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()

	startTestWorker(t, ctx, &wg, WorkerConfig{
		Join: srv.URL, Name: "solo", Now: clk.Now, Sleep: testWorkerSleep,
		CheckpointEvery: 5, Logf: t.Logf,
	})

	st, err := co.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitClusterState(t, srv, st.ID, service.StateDone)
	gotAAG, err := co.ResultAAG(st.ID)
	if err != nil {
		t.Fatalf("ResultAAG: %v", err)
	}
	if !bytes.Equal(gotAAG, refAAG) {
		t.Fatalf("cluster result differs from reference")
	}

	// And a duplicate submission over HTTP is an instant cache hit.
	resp, err := http.Post(srv.URL+"/jobs?metric=er&threshold=0.05&seed=3&eval=1024&workers=1",
		"text/plain", bytes.NewReader(circuit))
	if err != nil {
		t.Fatalf("duplicate POST: %v", err)
	}
	var dup JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&dup); err != nil {
		t.Fatalf("decoding duplicate: %v", err)
	}
	resp.Body.Close()
	if !dup.CacheHit || dup.State != service.StateDone {
		t.Fatalf("duplicate = %+v, want instant cache hit", dup)
	}
	if co.met.cacheHits.Value() != 1 {
		t.Fatalf("cache-hit metric = %d, want 1", co.met.cacheHits.Value())
	}
}

// TestClusterMetricsEndpoint spot-checks that the cluster series surface on
// GET /metrics in Prometheus text format.
func TestClusterMetricsEndpoint(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, nil)
	srv := httptest.NewServer(NewHandler(co))
	defer srv.Close()

	co.Register("w1")
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"alsrac_cluster_workers 1",
		"alsrac_cluster_cache_hits_total 0",
		"alsrac_cluster_jobs{state=\"queued\"} 0",
		"alsrac_cluster_job_seconds_bucket",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestTornCheckpointUploadRejected drives the handler with a body shorter
// than its declared Content-Length — the shape a torn upload takes after a
// proxy dies mid-transfer — and requires the partial bytes never reach the
// CAS.
func TestTornCheckpointUploadRejected(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, nil)
	h := NewHandler(co)
	circuit := testCircuit(t)
	st, _ := co.Submit(testSpec(), circuit)
	w := co.Register("w1")
	claim, ok, _ := co.Claim(w.WorkerID)
	if !ok {
		t.Fatalf("claim failed")
	}

	path := fmt.Sprintf("/cluster/jobs/%s/checkpoint?worker=%s&attempt=%s", st.ID, w.WorkerID, claim.AttemptID)
	torn := httptest.NewRequest(http.MethodPut, path, bytes.NewReader([]byte("only-half-the-checkpo")))
	torn.Header.Set("Content-Length", "1000")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, torn)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("torn upload = %d, want 400", rec.Code)
	}
	if co.cas.HasCheckpoint(st.Key) {
		t.Fatalf("torn payload reached the CAS")
	}

	// The same upload, intact, lands.
	good := httptest.NewRequest(http.MethodPut, path, bytes.NewReader([]byte("the-whole-checkpoint")))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, good)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("intact upload = %d (%s), want 204", rec.Code, rec.Body)
	}
	payload, _, err := co.cas.LatestCheckpoint(st.Key)
	if err != nil || string(payload) != "the-whole-checkpoint" {
		t.Fatalf("stored checkpoint = (%q, %v)", payload, err)
	}
}
