package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/service"
)

// Wire types of the coordinator's worker-facing API. Everything is plain
// JSON over the existing HTTP surface; circuit, checkpoint and result bodies
// are raw bytes. Paths:
//
//	POST /cluster/register                  RegisterRequest  -> RegisterResponse
//	POST /cluster/claim                     ClaimRequest     -> ClaimResponse | 204
//	GET  /cluster/jobs/{id}/circuit                          -> circuit bytes
//	GET  /cluster/jobs/{id}/checkpoint                       -> checkpoint bytes | 404
//	POST /cluster/jobs/{id}/renew           AttemptRequest   -> 204 | 409
//	PUT  /cluster/jobs/{id}/checkpoint?worker=&attempt=      -> 204 | 409 (body: checkpoint)
//	PUT  /cluster/jobs/{id}/result?worker=&attempt=&...      -> 200 | 409 (body: result AAG)
//	POST /cluster/jobs/{id}/fail            FailRequest      -> 204
//
// A 409 on renew/checkpoint/result means the lease is lost: another attempt
// owns the job (or it reached a terminal state), and the worker must abandon
// its session immediately. That 409 is the cross-machine form of ctx
// cancellation — the worker's job context is cancelled the moment one
// arrives.

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its identity and cadence: renew the
// lease comfortably inside LeaseTTLMillis (the worker renews at TTL/3), and
// poll claim no faster than PollMillis when idle.
type RegisterResponse struct {
	WorkerID       string `json:"worker_id"`
	LeaseTTLMillis int64  `json:"lease_ttl_ms"`
	PollMillis     int64  `json:"poll_ms"`
}

// ClaimRequest asks for work.
type ClaimRequest struct {
	WorkerID string `json:"worker_id"`
}

// ClaimResponse grants a lease on one job attempt.
type ClaimResponse struct {
	JobID     string          `json:"job_id"`
	AttemptID string          `json:"attempt_id"`
	Spec      service.JobSpec `json:"spec"`
	// Hedge marks a straggler duplicate: another worker still holds a live
	// lease on the same job, first finisher wins.
	Hedge bool `json:"hedge,omitempty"`
	// HasCheckpoint hints that GET .../checkpoint will likely succeed, so
	// the worker should resume rather than rebuild.
	HasCheckpoint bool `json:"has_checkpoint,omitempty"`
}

// AttemptRequest identifies a worker's attempt for renew.
type AttemptRequest struct {
	WorkerID  string `json:"worker_id"`
	AttemptID string `json:"attempt_id"`
}

// FailRequest reports an attempt failure the worker itself detected (panic,
// unparsable circuit, session error). Network-dead workers never send it —
// their lease simply expires.
type FailRequest struct {
	WorkerID  string `json:"worker_id"`
	AttemptID string `json:"attempt_id"`
	Error     string `json:"error"`
}

// ResultSummary is the metadata side of a finished job, stored alongside the
// result circuit in the CAS so a cache hit restores the full status a fresh
// run would have reported.
type ResultSummary struct {
	Iterations int     `json:"iterations"`
	Applied    int     `json:"applied"`
	Ands       int     `json:"ands"`
	FinalError float64 `json:"final_error"`
	Reason     string  `json:"reason"`
}

// encodeResult packs summary JSON + result AAG bytes into one CAS payload:
// u32 summary length, summary, circuit.
func encodeResult(sum ResultSummary, aag []byte) ([]byte, error) {
	sj, err := json.Marshal(sum)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding result summary: %w", err)
	}
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(sj)))
	out = append(out, sj...)
	return append(out, aag...), nil
}

// decodeResult splits a CAS result payload back into summary and AAG bytes.
func decodeResult(payload []byte) (ResultSummary, []byte, error) {
	var sum ResultSummary
	if len(payload) < 4 {
		return sum, nil, fmt.Errorf("cluster: result payload too short")
	}
	n := binary.LittleEndian.Uint32(payload)
	rest := payload[4:]
	if uint32(len(rest)) < n {
		return sum, nil, fmt.Errorf("cluster: result summary length %d exceeds payload", n)
	}
	if err := json.Unmarshal(rest[:n], &sum); err != nil {
		return sum, nil, fmt.Errorf("cluster: decoding result summary: %w", err)
	}
	return sum, rest[n:], nil
}

// JobStatus is the coordinator's externally visible job snapshot. It mirrors
// the single-process service.JobStatus fields clients already parse, plus
// the cluster-only dimensions.
type JobStatus struct {
	ID           string          `json:"id"`
	Spec         service.JobSpec `json:"spec"`
	State        service.State   `json:"state"`
	Error        string          `json:"error,omitempty"`
	Key          string          `json:"key"`
	CacheHit     bool            `json:"cache_hit,omitempty"`
	Worker       string          `json:"worker,omitempty"`
	Hedged       bool            `json:"hedged,omitempty"`
	Redispatches int             `json:"redispatches,omitempty"`
	Iterations   int             `json:"iterations,omitempty"`
	Applied      int             `json:"applied,omitempty"`
	Ands         int             `json:"ands,omitempty"`
	FinalError   float64         `json:"final_error,omitempty"`
	Reason       string          `json:"reason,omitempty"`
}
