package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/service"
)

// CoordConfig tunes a Coordinator. Zero values pick production defaults;
// tests inject a fake clock and a faultfs injector.
type CoordConfig struct {
	// Dir is the coordinator's persistence root: <Dir>/jobs/<id>/ for specs
	// and lifecycle state, <Dir>/cas/ for content-addressed blobs.
	Dir string
	// FS is the filesystem (faultfs.OS{} by default).
	FS faultfs.FS
	// Now supplies wall-clock time for leases, hedging and metrics. The
	// clock is injected — this package may not read time.Now itself
	// (alsraclint determinism rule). Required.
	Now func() time.Time
	// LeaseTTL is how long a claimed attempt stays owned without a renewal
	// (renew, checkpoint upload and result upload all renew). Default 15s.
	LeaseTTL time.Duration
	// PollInterval is the idle-claim cadence advertised to workers.
	// Default 500ms.
	PollInterval time.Duration
	// MaxWorkerFailures quarantines a job once this many *distinct* workers
	// have failed it (lease expiry or reported failure). Default 3.
	MaxWorkerFailures int
	// HedgeQuantile (default 0.95) of the observed attempt-duration
	// histogram sets the straggler threshold: a sole attempt older than the
	// quantile gets a hedge duplicate on another worker.
	HedgeQuantile float64
	// HedgeMinSamples (default 5) gates hedging until the histogram has
	// enough completions to make the quantile meaningful.
	HedgeMinSamples int
	// HedgeMinDelay floors the hedge threshold. Default 1s.
	HedgeMinDelay time.Duration
	// RedispatchBase/RedispatchMax bound the capped-backoff delay before a
	// failed job becomes claimable again. Defaults 250ms / 15s.
	RedispatchBase time.Duration
	RedispatchMax  time.Duration
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

// attempt is one lease: a worker executing (or hedging) a job.
type attempt struct {
	id      string
	worker  string
	hedge   bool
	started time.Time
	expires time.Time
}

// cjob is the coordinator-side job record.
type cjob struct {
	id   string
	spec service.JobSpec
	key  string

	state         service.State
	errMsg        string
	cacheHit      bool
	active        []*attempt
	failedWorkers map[string]bool
	redispatches  int
	nextEligible  time.Time
	everHedged    bool

	sum       ResultSummary
	resultAAG []byte // decoded once, cached in memory after first read
}

// workerInfo is one registered worker.
type workerInfo struct {
	id       string
	name     string
	lastSeen time.Time
	alive    bool
}

type coordMetrics struct {
	workers       *obs.Gauge
	jobsByState   map[service.State]*obs.Gauge
	leasesGranted *obs.Counter
	leasesRenewed *obs.Counter
	leasesExpired *obs.Counter
	reassignments *obs.Counter
	hedges        *obs.Counter
	hedgeWins     *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	ckptUploads   *obs.Counter
	quarantined   *obs.Counter
	casCorrupt    map[string]*obs.Counter
	jobSeconds    *obs.Histogram
}

// Coordinator shards jobs across registered workers with lease-based
// ownership. It runs no background goroutines: every lease expiry, hedge
// decision and redispatch happens lazily inside API entry points against the
// injected clock, which makes the whole state machine single-stepped and
// deterministic under test — the same discipline that keeps kill-and-resume
// bit-identical keeps the scheduler reproducible.
type Coordinator struct {
	cfg CoordConfig
	cas *CAS
	reg *obs.Registry
	met coordMetrics

	mu          sync.Mutex
	jobs        map[string]*cjob
	order       []*cjob // insertion-ordered (determinism: never range the map)
	workers     map[string]*workerInfo
	workerOrder []string
	nextJob     int
	nextWorker  int
	nextAttempt int
}

// Sentinel errors surfaced by coordinator entry points.
var (
	// ErrNotFound: no such job.
	ErrNotFound = errors.New("cluster: no such job")
	// ErrLeaseLost: the attempt no longer owns the job (expired, superseded
	// by a finished hedge, cancelled, or already terminal). HTTP 409.
	ErrLeaseLost = errors.New("cluster: lease lost")
	// ErrNotDone: result requested before the job finished.
	ErrNotDone = errors.New("cluster: job is not done")
	// ErrUnknownWorker: the worker id was never registered (or the
	// coordinator restarted); the worker must re-register.
	ErrUnknownWorker = errors.New("cluster: unknown worker")
)

// NewCoordinator builds a coordinator over cfg.Dir, recovering persisted
// jobs: terminal ones are served from the store, interrupted ones re-enter
// the queue and will resume from their key's newest CAS checkpoint.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, errors.New("cluster: CoordConfig.Dir is required")
	}
	if cfg.Now == nil {
		return nil, errors.New("cluster: CoordConfig.Now is required")
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.MaxWorkerFailures <= 0 {
		cfg.MaxWorkerFailures = 3
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = 5
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = time.Second
	}
	if cfg.RedispatchBase <= 0 {
		cfg.RedispatchBase = 250 * time.Millisecond
	}
	if cfg.RedispatchMax <= 0 {
		cfg.RedispatchMax = 15 * time.Second
	}

	cas, err := NewCAS(filepath.Join(cfg.Dir, "cas"), cfg.FS)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	met := coordMetrics{
		workers:       reg.Gauge("alsrac_cluster_workers", "registered workers considered alive"),
		jobsByState:   map[service.State]*obs.Gauge{},
		leasesGranted: reg.Counter("alsrac_cluster_leases_granted_total", "job attempts leased to workers"),
		leasesRenewed: reg.Counter("alsrac_cluster_leases_renewed_total", "lease renewals (renew, checkpoint and result uploads)"),
		leasesExpired: reg.Counter("alsrac_cluster_leases_expired_total", "leases that expired without renewal (dead or partitioned worker)"),
		reassignments: reg.Counter("alsrac_cluster_reassignments_total", "jobs requeued after losing their owning worker"),
		hedges:        reg.Counter("alsrac_cluster_hedges_total", "straggler attempts duplicated onto a second worker"),
		hedgeWins:     reg.Counter("alsrac_cluster_hedge_wins_total", "jobs finished first by their hedge attempt"),
		cacheHits:     reg.Counter("alsrac_cluster_cache_hits_total", "submissions served from the content-addressed result store"),
		cacheMisses:   reg.Counter("alsrac_cluster_cache_misses_total", "submissions that required computation"),
		ckptUploads:   reg.Counter("alsrac_cluster_checkpoints_total", "checkpoint generations uploaded by workers"),
		quarantined:   reg.Counter("alsrac_cluster_quarantined_total", "jobs quarantined after failing on MaxWorkerFailures distinct workers"),
		casCorrupt:    map[string]*obs.Counter{},
		jobSeconds:    reg.Histogram("alsrac_cluster_job_seconds", "attempt durations from claim to result", obs.LatencyBuckets()),
	}
	for _, s := range []service.State{
		service.StateQueued, service.StateRunning, service.StateDone,
		service.StateFailed, service.StateCancelled, service.StateQuarantined,
	} {
		met.jobsByState[s] = reg.Gauge("alsrac_cluster_jobs", "jobs by lifecycle state", "state", string(s))
	}
	for _, kind := range []string{"checkpoint", "result"} {
		met.casCorrupt[kind] = reg.Counter("alsrac_cluster_cas_corrupt_total", "CRC-rejected CAS entries by kind", "kind", kind)
	}
	cas.OnCorrupt = func(kind string) {
		if ctr, ok := met.casCorrupt[kind]; ok {
			ctr.Inc()
		}
	}

	co := &Coordinator{
		cfg:     cfg,
		cas:     cas,
		reg:     reg,
		met:     met,
		jobs:    map[string]*cjob{},
		workers: map[string]*workerInfo{},
	}
	if err := co.recover(); err != nil {
		return nil, err
	}
	return co, nil
}

// Registry exposes the coordinator's metrics.
func (co *Coordinator) Registry() *obs.Registry { return co.reg }

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// --- persistence -----------------------------------------------------------

// coordState is the per-job state.json payload.
type coordState struct {
	State        service.State `json:"state"`
	Error        string        `json:"error,omitempty"`
	Key          string        `json:"key"`
	CacheHit     bool          `json:"cache_hit,omitempty"`
	Redispatches int           `json:"redispatches,omitempty"`
	Summary      ResultSummary `json:"summary,omitempty"`
}

func (co *Coordinator) jobDir(id string) string {
	return filepath.Join(co.cfg.Dir, "jobs", id)
}

func (co *Coordinator) persistJob(j *cjob, circuit []byte) error {
	dir := co.jobDir(j.id)
	if err := co.cfg.FS.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: creating job dir: %w", err)
	}
	specJSON, err := json.MarshalIndent(j.spec, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encoding spec: %w", err)
	}
	if err := faultfs.WriteAtomic(co.cfg.FS, filepath.Join(dir, "spec.json"), specJSON); err != nil {
		return fmt.Errorf("cluster: persisting spec: %w", err)
	}
	if err := faultfs.WriteAtomic(co.cfg.FS, filepath.Join(dir, "circuit"), circuit); err != nil {
		return fmt.Errorf("cluster: persisting circuit: %w", err)
	}
	return co.persistState(j)
}

func (co *Coordinator) persistState(j *cjob) error {
	data, err := json.Marshal(coordState{
		State: j.state, Error: j.errMsg, Key: j.key,
		CacheHit: j.cacheHit, Redispatches: j.redispatches, Summary: j.sum,
	})
	if err != nil {
		return fmt.Errorf("cluster: encoding state: %w", err)
	}
	if err := faultfs.WriteAtomic(co.cfg.FS, filepath.Join(co.jobDir(j.id), "state.json"), data); err != nil {
		return fmt.Errorf("cluster: persisting state: %w", err)
	}
	return nil
}

// recover reloads the job table from disk. Jobs that were queued or running
// when the previous coordinator died re-enter the queue; their next claim
// resumes from the key's newest CAS checkpoint, so no iteration already made
// durable is recomputed.
func (co *Coordinator) recover() error {
	root := filepath.Join(co.cfg.Dir, "jobs")
	if err := co.cfg.FS.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("cluster: creating jobs dir: %w", err)
	}
	entries, err := co.cfg.FS.ReadDir(root)
	if err != nil {
		return fmt.Errorf("cluster: scanning jobs dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "c") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids) // zero-padded ids: lexical order is submission order
	for _, id := range ids {
		specData, err := co.cfg.FS.ReadFile(filepath.Join(co.jobDir(id), "spec.json"))
		if err != nil {
			continue // torn submission: spec.json is written first
		}
		var spec service.JobSpec
		if err := json.Unmarshal(specData, &spec); err != nil {
			continue
		}
		j := &cjob{id: id, spec: spec, state: service.StateQueued, failedWorkers: map[string]bool{}}
		if data, err := co.cfg.FS.ReadFile(filepath.Join(co.jobDir(id), "state.json")); err == nil {
			var cs coordState
			if json.Unmarshal(data, &cs) == nil {
				j.key, j.cacheHit, j.redispatches, j.sum, j.errMsg = cs.Key, cs.CacheHit, cs.Redispatches, cs.Summary, cs.Error
				if cs.State.Terminal() {
					j.state = cs.State
				}
			}
		}
		if j.key == "" {
			// Re-derive: old state.json or torn write. Needs the circuit.
			circuit, err := co.cfg.FS.ReadFile(filepath.Join(co.jobDir(id), "circuit"))
			if err != nil {
				continue
			}
			g, err := service.ParseCircuit(spec.Format, circuit)
			if err != nil {
				continue
			}
			j.key = JobKey(spec, g)
		}
		if n, err := parseJobID(id); err == nil && n >= co.nextJob {
			co.nextJob = n + 1
		}
		co.jobs[id] = j
		co.order = append(co.order, j)
		co.met.jobsByState[j.state].Inc()
	}
	return nil
}

func formatJobID(n int) string { return fmt.Sprintf("c%06d", n) }

func parseJobID(id string) (int, error) {
	var n int
	_, err := fmt.Sscanf(id, "c%06d", &n)
	return n, err
}

// --- lazy sweep ------------------------------------------------------------

// sweepLocked advances the lease state machine to `now`: attempts whose
// lease expired are discarded, their workers recorded as failures, and their
// jobs either requeued under capped backoff or quarantined once
// MaxWorkerFailures distinct workers have died holding them. Workers unseen
// for two TTLs drop out of the alive gauge. Called at every API entry with
// co.mu held — there is no background ticker to race with.
func (co *Coordinator) sweepLocked(now time.Time) {
	for _, j := range co.order {
		if len(j.active) == 0 {
			continue
		}
		kept := j.active[:0]
		for _, a := range j.active {
			if a.expires.After(now) {
				kept = append(kept, a)
				continue
			}
			co.met.leasesExpired.Inc()
			j.failedWorkers[a.worker] = true
			co.logf("cluster: job %s attempt %s: lease expired (worker %s)", j.id, a.id, a.worker)
		}
		j.active = kept
		if len(j.active) == 0 && j.state == service.StateRunning {
			co.requeueLocked(j, now, "lease expired")
		}
	}
	alive := int64(0)
	for _, id := range co.workerOrder {
		w := co.workers[id]
		wasAlive := w.alive
		w.alive = now.Sub(w.lastSeen) <= 2*co.cfg.LeaseTTL
		if wasAlive && !w.alive {
			co.logf("cluster: worker %s (%s) presumed dead", w.id, w.name)
		}
		if w.alive {
			alive++
		}
	}
	co.met.workers.Set(alive)
}

// requeueLocked returns a running job to the queue (or quarantines it) after
// it lost every active attempt.
func (co *Coordinator) requeueLocked(j *cjob, now time.Time, why string) {
	if len(j.failedWorkers) >= co.cfg.MaxWorkerFailures {
		co.transitionLocked(j, service.StateQuarantined)
		j.errMsg = fmt.Sprintf("quarantined: failed on %d distinct workers (last: %s)", len(j.failedWorkers), why)
		co.met.quarantined.Inc()
		_ = co.persistState(j)
		co.logf("cluster: job %s quarantined after %d distinct worker failures", j.id, len(j.failedWorkers))
		return
	}
	j.redispatches++
	j.nextEligible = now.Add(service.Backoff("cluster/redispatch/"+j.id, j.redispatches,
		co.cfg.RedispatchBase, co.cfg.RedispatchMax))
	co.met.reassignments.Inc()
	co.transitionLocked(j, service.StateQueued)
	_ = co.persistState(j)
	co.logf("cluster: job %s requeued (%s), eligible in %v", j.id, why, j.nextEligible.Sub(now))
}

func (co *Coordinator) transitionLocked(j *cjob, s service.State) {
	if j.state == s {
		return
	}
	co.met.jobsByState[j.state].Dec()
	j.state = s
	co.met.jobsByState[s].Inc()
}

// touchWorkerLocked records worker liveness on any API traffic.
func (co *Coordinator) touchWorkerLocked(workerID string, now time.Time) *workerInfo {
	w, ok := co.workers[workerID]
	if !ok {
		return nil
	}
	w.lastSeen = now
	w.alive = true
	return w
}

// --- worker-facing API -----------------------------------------------------

// Register admits a worker and assigns its id.
func (co *Coordinator) Register(name string) RegisterResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.nextWorker++
	w := &workerInfo{id: fmt.Sprintf("w%04d", co.nextWorker), name: name, lastSeen: now, alive: true}
	co.workers[w.id] = w
	co.workerOrder = append(co.workerOrder, w.id)
	co.sweepLocked(now) // after insertion, so the alive gauge counts the newcomer
	co.logf("cluster: worker %s (%s) registered", w.id, name)
	return RegisterResponse{
		WorkerID:       w.id,
		LeaseTTLMillis: co.cfg.LeaseTTL.Milliseconds(),
		PollMillis:     co.cfg.PollInterval.Milliseconds(),
	}
}

// Claim hands the worker one job attempt, preferring queued work and falling
// back to hedging the oldest straggler. ok=false means nothing to do.
func (co *Coordinator) Claim(workerID string) (ClaimResponse, bool, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.sweepLocked(now)
	if co.touchWorkerLocked(workerID, now) == nil {
		return ClaimResponse{}, false, ErrUnknownWorker
	}

	// Pass 1: queued, past their backoff gate.
	for _, j := range co.order {
		if j.state != service.StateQueued || j.nextEligible.After(now) {
			continue
		}
		a := co.grantLocked(j, workerID, false, now)
		return co.claimResponseLocked(j, a), true, nil
	}

	// Pass 2: hedge the oldest sole-attempt straggler on a different worker.
	delay, ok := co.hedgeDelayLocked()
	if !ok {
		return ClaimResponse{}, false, nil
	}
	for _, j := range co.order {
		if j.state != service.StateRunning || len(j.active) != 1 {
			continue
		}
		a := j.active[0]
		if a.worker == workerID || a.hedge || now.Sub(a.started) < delay {
			continue
		}
		h := co.grantLocked(j, workerID, true, now)
		co.met.hedges.Inc()
		j.everHedged = true
		co.logf("cluster: job %s hedged on %s (primary %s running %v > p%d %v)",
			j.id, workerID, a.worker, now.Sub(a.started), int(co.cfg.HedgeQuantile*100), delay)
		return co.claimResponseLocked(j, h), true, nil
	}
	return ClaimResponse{}, false, nil
}

// hedgeDelayLocked derives the straggler threshold from the attempt-duration
// histogram: the configured quantile, floored by HedgeMinDelay, and disabled
// entirely until HedgeMinSamples completions have been observed.
func (co *Coordinator) hedgeDelayLocked() (time.Duration, bool) {
	if co.met.jobSeconds.Count() < uint64(co.cfg.HedgeMinSamples) {
		return 0, false
	}
	d := time.Duration(co.met.jobSeconds.Quantile(co.cfg.HedgeQuantile) * float64(time.Second))
	if d < co.cfg.HedgeMinDelay {
		d = co.cfg.HedgeMinDelay
	}
	return d, true
}

func (co *Coordinator) grantLocked(j *cjob, workerID string, hedge bool, now time.Time) *attempt {
	co.nextAttempt++
	a := &attempt{
		id:      fmt.Sprintf("a%06d", co.nextAttempt),
		worker:  workerID,
		hedge:   hedge,
		started: now,
		expires: now.Add(co.cfg.LeaseTTL),
	}
	j.active = append(j.active, a)
	co.transitionLocked(j, service.StateRunning)
	co.met.leasesGranted.Inc()
	return a
}

func (co *Coordinator) claimResponseLocked(j *cjob, a *attempt) ClaimResponse {
	return ClaimResponse{
		JobID:         j.id,
		AttemptID:     a.id,
		Spec:          j.spec,
		Hedge:         a.hedge,
		HasCheckpoint: co.cas.HasCheckpoint(j.key),
	}
}

// findAttemptLocked resolves (job, attempt) or reports the lease lost.
func (co *Coordinator) findAttemptLocked(jobID, attemptID string) (*cjob, *attempt, error) {
	j, ok := co.jobs[jobID]
	if !ok {
		return nil, nil, ErrNotFound
	}
	for _, a := range j.active {
		if a.id == attemptID {
			return j, a, nil
		}
	}
	return j, nil, ErrLeaseLost
}

// Renew extends an attempt's lease. ErrLeaseLost (HTTP 409) tells the worker
// its ownership is gone and the session must be abandoned.
func (co *Coordinator) Renew(jobID, workerID, attemptID string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.sweepLocked(now)
	co.touchWorkerLocked(workerID, now)
	_, a, err := co.findAttemptLocked(jobID, attemptID)
	if err != nil {
		return err
	}
	a.expires = now.Add(co.cfg.LeaseTTL)
	co.met.leasesRenewed.Inc()
	return nil
}

// Circuit serves a job's verbatim circuit bytes.
func (co *Coordinator) Circuit(jobID string) ([]byte, error) {
	co.mu.Lock()
	if _, ok := co.jobs[jobID]; !ok {
		co.mu.Unlock()
		return nil, ErrNotFound
	}
	dir := co.jobDir(jobID)
	co.mu.Unlock()
	data, err := co.cfg.FS.ReadFile(filepath.Join(dir, "circuit"))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading circuit of %s: %w", jobID, err)
	}
	return data, nil
}

// Checkpoint returns the newest CRC-valid checkpoint for the job's key, or
// ok=false when none is restorable.
func (co *Coordinator) Checkpoint(jobID string) ([]byte, bool, error) {
	co.mu.Lock()
	j, ok := co.jobs[jobID]
	if !ok {
		co.mu.Unlock()
		return nil, false, ErrNotFound
	}
	key := j.key
	co.mu.Unlock()
	payload, gen, err := co.cas.LatestCheckpoint(key)
	if err != nil || gen == 0 {
		return nil, false, err
	}
	return payload, true, nil
}

// UploadCheckpoint stores a checkpoint under the job's key and renews the
// lease — progress is proof of life. The payload lands in the CAS whole or
// not at all; a torn upload (short body) must be rejected by the HTTP layer
// before this point.
func (co *Coordinator) UploadCheckpoint(jobID, workerID, attemptID string, payload []byte) error {
	co.mu.Lock()
	now := co.cfg.Now()
	co.sweepLocked(now)
	co.touchWorkerLocked(workerID, now)
	j, a, err := co.findAttemptLocked(jobID, attemptID)
	if err != nil {
		co.mu.Unlock()
		return err
	}
	a.expires = now.Add(co.cfg.LeaseTTL)
	co.met.leasesRenewed.Inc()
	key := j.key
	co.mu.Unlock()

	if err := co.cas.PutCheckpoint(key, payload); err != nil {
		return err
	}
	co.met.ckptUploads.Inc()
	return nil
}

// UploadResult finishes an attempt: first finisher wins, the job goes Done,
// the result lands in the CAS under the job's key, and every other attempt's
// lease dies (its worker sees 409 at the next renew — the cross-machine ctx
// cancellation). Losing attempts get ErrLeaseLost.
func (co *Coordinator) UploadResult(jobID, workerID, attemptID string, sum ResultSummary, aag []byte) error {
	// Validate before taking the winner slot: an unparsable body must not
	// mark the job done.
	if _, err := service.ParseCircuit("aag", aag); err != nil {
		return fmt.Errorf("cluster: rejecting result for %s: %w", jobID, err)
	}
	payload, err := encodeResult(sum, aag)
	if err != nil {
		return err
	}

	co.mu.Lock()
	now := co.cfg.Now()
	co.sweepLocked(now)
	co.touchWorkerLocked(workerID, now)
	j, a, err := co.findAttemptLocked(jobID, attemptID)
	if err != nil {
		co.mu.Unlock()
		return err
	}
	if j.state.Terminal() {
		co.mu.Unlock()
		return ErrLeaseLost
	}
	co.met.jobSeconds.Observe(now.Sub(a.started).Seconds())
	if a.hedge {
		co.met.hedgeWins.Inc()
	}
	j.active = nil // losers' leases die with the job
	j.sum = sum
	j.resultAAG = aag
	j.errMsg = ""
	co.transitionLocked(j, service.StateDone)
	key := j.key
	co.mu.Unlock()

	if err := co.cas.PutResult(key, payload); err != nil {
		co.logf("cluster: job %s: persisting result: %v", jobID, err)
	}
	co.mu.Lock()
	_ = co.persistState(j)
	co.mu.Unlock()
	co.logf("cluster: job %s done by %s (%s%d iterations, error %.6g)",
		jobID, workerID, map[bool]string{true: "hedge, ", false: ""}[a.hedge], sum.Iterations, sum.FinalError)
	return nil
}

// Fail records a worker-reported attempt failure and requeues or quarantines
// the job.
func (co *Coordinator) Fail(jobID, workerID, attemptID, errMsg string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.sweepLocked(now)
	co.touchWorkerLocked(workerID, now)
	j, a, err := co.findAttemptLocked(jobID, attemptID)
	if err != nil {
		if errors.Is(err, ErrLeaseLost) {
			return nil // stale failure report for a lease already swept
		}
		return err
	}
	for i, cur := range j.active {
		if cur == a {
			j.active = append(j.active[:i], j.active[i+1:]...)
			break
		}
	}
	j.failedWorkers[workerID] = true
	j.errMsg = errMsg
	co.logf("cluster: job %s attempt %s failed on %s: %s", jobID, a.id, workerID, errMsg)
	if len(j.active) == 0 && j.state == service.StateRunning {
		co.requeueLocked(j, now, "worker-reported failure")
	}
	return nil
}

// --- client-facing API -----------------------------------------------------

// Submit accepts a job. If the content-addressed store already holds a
// CRC-valid result for the derived key, the job completes instantly as a
// cache hit; otherwise it is queued for the worker fleet.
func (co *Coordinator) Submit(spec service.JobSpec, circuit []byte) (JobStatus, error) {
	if err := spec.Normalize(); err != nil {
		return JobStatus{}, err
	}
	g, err := service.ParseCircuit(spec.Format, circuit)
	if err != nil {
		return JobStatus{}, fmt.Errorf("%w: %w", service.ErrUnparsable, err)
	}
	key := JobKey(spec, g)

	co.mu.Lock()
	now := co.cfg.Now()
	co.sweepLocked(now)
	co.nextJob++
	j := &cjob{
		id:            formatJobID(co.nextJob),
		spec:          spec,
		key:           key,
		state:         service.StateQueued,
		failedWorkers: map[string]bool{},
		nextEligible:  now,
	}
	co.mu.Unlock()

	// The job is persisted, cache-checked and fully formed *before* it is
	// published into the table: once workers can claim it, only lock-holding
	// code may touch it.
	if payload, ok := co.cas.Result(key); ok {
		if sum, aag, derr := decodeResult(payload); derr == nil {
			j.cacheHit = true
			j.sum = sum
			j.resultAAG = aag
			j.state = service.StateDone
			co.met.cacheHits.Inc()
			if err := co.persistJob(j, circuit); err != nil {
				co.logf("cluster: job %s: persisting cache-hit job: %v", j.id, err)
			}
			co.publishJob(j)
			co.logf("cluster: job %s served from cache (key %.12s…)", j.id, key)
			return co.Status(j.id)
		}
		// decode failure counts as corruption: fall through to recompute
		co.cas.corrupt("result")
	}
	co.met.cacheMisses.Inc()
	if err := co.persistJob(j, circuit); err != nil {
		j.state = service.StateFailed
		j.errMsg = err.Error()
		co.publishJob(j)
		return JobStatus{}, err
	}
	co.publishJob(j)
	co.logf("cluster: job %s queued (key %.12s…)", j.id, key)
	return co.Status(j.id)
}

// publishJob (which takes the lock itself) inserts a fully-initialized
// lock itself), making it visible to claims and status reads.
func (co *Coordinator) publishJob(j *cjob) {
	co.mu.Lock()
	co.jobs[j.id] = j
	co.order = append(co.order, j)
	co.met.jobsByState[j.state].Inc()
	co.mu.Unlock()
}

// Cancel terminates a job. Active attempts lose their leases; their workers
// observe 409 at the next renew and abandon the session.
func (co *Coordinator) Cancel(jobID string) (JobStatus, error) {
	co.mu.Lock()
	j, ok := co.jobs[jobID]
	if !ok {
		co.mu.Unlock()
		return JobStatus{}, ErrNotFound
	}
	if !j.state.Terminal() {
		j.active = nil
		co.transitionLocked(j, service.StateCancelled)
		_ = co.persistState(j)
	}
	co.mu.Unlock()
	return co.Status(jobID)
}

// Status snapshots one job.
func (co *Coordinator) Status(jobID string) (JobStatus, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[jobID]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return co.statusLocked(j), nil
}

func (co *Coordinator) statusLocked(j *cjob) JobStatus {
	st := JobStatus{
		ID:           j.id,
		Spec:         j.spec,
		State:        j.state,
		Error:        j.errMsg,
		Key:          j.key,
		CacheHit:     j.cacheHit,
		Hedged:       j.everHedged,
		Redispatches: j.redispatches,
		Iterations:   j.sum.Iterations,
		Applied:      j.sum.Applied,
		Ands:         j.sum.Ands,
		FinalError:   j.sum.FinalError,
		Reason:       j.sum.Reason,
	}
	var owners []string
	for _, a := range j.active {
		owners = append(owners, a.worker)
	}
	st.Worker = strings.Join(owners, ",")
	return st
}

// Jobs lists every job in submission order.
func (co *Coordinator) Jobs() []JobStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.sweepLocked(now)
	out := make([]JobStatus, 0, len(co.order))
	for _, j := range co.order {
		out = append(out, co.statusLocked(j))
	}
	return out
}

// ResultAAG returns a done job's result circuit bytes. A job whose CAS
// result entry rotted after completion is requeued for recompute and
// reported ErrNotDone — the caller polls again, exactly as for a job that
// has not finished yet.
func (co *Coordinator) ResultAAG(jobID string) ([]byte, error) {
	co.mu.Lock()
	j, ok := co.jobs[jobID]
	if !ok {
		co.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.state != service.StateDone {
		co.mu.Unlock()
		return nil, ErrNotDone
	}
	if j.resultAAG != nil {
		aag := j.resultAAG
		co.mu.Unlock()
		return aag, nil
	}
	key := j.key
	co.mu.Unlock()

	payload, ok := co.cas.Result(key)
	if ok {
		if sum, aag, err := decodeResult(payload); err == nil {
			co.mu.Lock()
			j.sum = sum
			j.resultAAG = aag
			co.mu.Unlock()
			return aag, nil
		}
		co.cas.corrupt("result")
	}
	// Corrupt-entry fallback to recompute: the deterministic flow will
	// reproduce the identical result from the persisted circuit.
	co.mu.Lock()
	now := co.cfg.Now()
	if j.state == service.StateDone && j.resultAAG == nil {
		co.transitionLocked(j, service.StateQueued)
		j.nextEligible = now
		_ = co.persistState(j)
		co.logf("cluster: job %s result unreadable in CAS, requeued for recompute", j.id)
	}
	co.mu.Unlock()
	return nil, ErrNotDone
}
