package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/service"
)

func TestJobKeyDeterministicAndSensitive(t *testing.T) {
	circuit := testCircuit(t)
	spec := testSpec()
	if err := spec.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	g, err := service.ParseCircuit(spec.Format, circuit)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	base := JobKey(spec, g)
	if base != JobKey(spec, g) {
		t.Fatalf("JobKey not deterministic")
	}

	// Result-relevant fields must change the key…
	seeded := spec
	seeded.Seed = 7
	if JobKey(seeded, g) == base {
		t.Fatalf("seed change did not change the key")
	}
	tighter := spec
	tighter.Threshold = 0.01
	if JobKey(tighter, g) == base {
		t.Fatalf("threshold change did not change the key")
	}

	// …and result-irrelevant fields must not: intra-job parallelism is
	// bitwise-invariant and a deadline changes only whether the run finishes.
	wide := spec
	wide.Workers = 8
	if JobKey(wide, g) != base {
		t.Fatalf("worker count leaked into the key")
	}
	timed := spec
	timed.TimeoutSec = 30
	if JobKey(timed, g) != base {
		t.Fatalf("timeout leaked into the key")
	}
}

// TestDuplicateSubmissionCacheHit is the acceptance-criterion test: the
// second submission of identical work never reaches a worker, and the hit is
// visible on the cache-hit metric.
func TestDuplicateSubmissionCacheHit(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, nil)
	circuit := testCircuit(t)

	st1, err := co.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st1.CacheHit || st1.State != service.StateQueued {
		t.Fatalf("first submission: %+v, want queued miss", st1)
	}

	w := co.Register("w1")
	claim, ok, err := co.Claim(w.WorkerID)
	if err != nil || !ok {
		t.Fatalf("Claim = (%v, %t)", err, ok)
	}
	finishAttempt(t, co, claim, w.WorkerID, circuit)

	st2, err := co.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("duplicate Submit: %v", err)
	}
	if !st2.CacheHit || st2.State != service.StateDone {
		t.Fatalf("duplicate submission: %+v, want instant cache-hit done", st2)
	}
	if st2.Key != st1.Key {
		t.Fatalf("duplicate derived a different key: %s vs %s", st2.Key, st1.Key)
	}
	if st2.Iterations != 17 || st2.Reason != "threshold" {
		t.Fatalf("cache hit lost the stored summary: %+v", st2)
	}
	if got := co.met.cacheHits.Value(); got != 1 {
		t.Fatalf("cache-hit metric = %d, want 1", got)
	}
	if got := co.met.cacheMisses.Value(); got != 1 {
		t.Fatalf("cache-miss metric = %d, want 1", got)
	}
	// Nothing left for workers: the duplicate must not be claimable.
	if _, ok, _ := co.Claim(w.WorkerID); ok {
		t.Fatalf("cache-hit job handed to a worker")
	}
	// Both ids serve the identical result bytes.
	a1, err := co.ResultAAG(st1.ID)
	if err != nil {
		t.Fatalf("ResultAAG(%s): %v", st1.ID, err)
	}
	a2, err := co.ResultAAG(st2.ID)
	if err != nil {
		t.Fatalf("ResultAAG(%s): %v", st2.ID, err)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatalf("cache hit served different bytes")
	}
}

func TestLeaseExpiryReassignsFromCheckpoint(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, func(cfg *CoordConfig) {
		cfg.LeaseTTL = 10 * time.Second
	})
	circuit := testCircuit(t)

	st, err := co.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	w1 := co.Register("w1")
	w2 := co.Register("w2")

	claim1, ok, err := co.Claim(w1.WorkerID)
	if err != nil || !ok {
		t.Fatalf("w1 claim = (%v, %t)", err, ok)
	}
	if claim1.HasCheckpoint {
		t.Fatalf("fresh job claims to have a checkpoint")
	}
	if err := co.UploadCheckpoint(claim1.JobID, w1.WorkerID, claim1.AttemptID, []byte("iteration-5-state")); err != nil {
		t.Fatalf("UploadCheckpoint: %v", err)
	}

	// w1 "dies" (no renewals); the lease expires and a sweep requeues.
	clk.Advance(11 * time.Second)
	if _, ok, _ := co.Claim(w2.WorkerID); ok {
		t.Fatalf("claim succeeded while the job sat in redispatch backoff")
	}
	if got, _ := co.Status(st.ID); got.State != service.StateQueued || got.Redispatches != 1 {
		t.Fatalf("after expiry: %+v, want queued with 1 redispatch", got)
	}
	if co.met.leasesExpired.Value() != 1 || co.met.reassignments.Value() != 1 {
		t.Fatalf("expiry metrics = (%d, %d), want (1, 1)",
			co.met.leasesExpired.Value(), co.met.reassignments.Value())
	}

	// Past the redispatch backoff, w2 inherits the job *with* the dead
	// worker's checkpoint.
	clk.Advance(time.Minute)
	claim2, ok, err := co.Claim(w2.WorkerID)
	if err != nil || !ok {
		t.Fatalf("w2 claim = (%v, %t)", err, ok)
	}
	if claim2.JobID != st.ID || !claim2.HasCheckpoint {
		t.Fatalf("w2 claim = %+v, want job %s with checkpoint", claim2, st.ID)
	}
	ckpt, ok, err := co.Checkpoint(claim2.JobID)
	if err != nil || !ok || string(ckpt) != "iteration-5-state" {
		t.Fatalf("Checkpoint = (%q, %t, %v)", ckpt, ok, err)
	}

	// The dead worker's stale attempt is gone: any late upload gets 409.
	if err := co.UploadCheckpoint(claim1.JobID, w1.WorkerID, claim1.AttemptID, []byte("zombie")); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie upload error = %v, want ErrLeaseLost", err)
	}
	finishAttempt(t, co, claim2, w2.WorkerID, circuit)
	if got, _ := co.Status(st.ID); got.State != service.StateDone {
		t.Fatalf("final state %s, want done", got.State)
	}
}

func TestHedgeFirstFinisherWins(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, func(cfg *CoordConfig) {
		cfg.HedgeMinSamples = 1
		cfg.HedgeMinDelay = 100 * time.Millisecond
		cfg.LeaseTTL = time.Hour // leases never expire in this test
	})
	circuit := testCircuit(t)
	w1 := co.Register("w1")
	w2 := co.Register("w2")

	// Seed the duration histogram with one fast completion.
	warm := testSpec()
	warm.Seed = 11
	stWarm, err := co.Submit(warm, circuit)
	if err != nil {
		t.Fatalf("Submit warm: %v", err)
	}
	cw, ok, _ := co.Claim(w1.WorkerID)
	if !ok || cw.JobID != stWarm.ID {
		t.Fatalf("warm claim = %+v", cw)
	}
	clk.Advance(10 * time.Millisecond)
	finishAttempt(t, co, cw, w1.WorkerID, circuit)

	// The real job: w1 owns it and stalls past the hedge threshold.
	st, err := co.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	c1, ok, _ := co.Claim(w1.WorkerID)
	if !ok || c1.JobID != st.ID {
		t.Fatalf("w1 claim = %+v", c1)
	}
	// w1 itself must never be offered a hedge of its own job.
	if _, ok, _ := co.Claim(w1.WorkerID); ok {
		t.Fatalf("owner was offered a hedge of its own job")
	}
	// Too early for a hedge.
	if _, ok, _ := co.Claim(w2.WorkerID); ok {
		t.Fatalf("hedge granted before the straggler threshold")
	}
	clk.Advance(time.Second)
	c2, ok, err := co.Claim(w2.WorkerID)
	if err != nil || !ok {
		t.Fatalf("hedge claim = (%v, %t)", err, ok)
	}
	if c2.JobID != st.ID || !c2.Hedge {
		t.Fatalf("hedge claim = %+v, want hedge of %s", c2, st.ID)
	}
	if co.met.hedges.Value() != 1 {
		t.Fatalf("hedges metric = %d, want 1", co.met.hedges.Value())
	}
	// A job with a live hedge is not hedged again.
	w3 := co.Register("w3")
	if _, ok, _ := co.Claim(w3.WorkerID); ok {
		t.Fatalf("double hedge granted")
	}

	// Hedge finishes first; the primary's late result is a 409.
	finishAttempt(t, co, c2, w2.WorkerID, circuit)
	if err := co.UploadResult(c1.JobID, w1.WorkerID, c1.AttemptID, ResultSummary{}, circuit); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("loser result error = %v, want ErrLeaseLost", err)
	}
	if err := co.Renew(c1.JobID, w1.WorkerID, c1.AttemptID); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("loser renew error = %v, want ErrLeaseLost", err)
	}
	got, _ := co.Status(st.ID)
	if got.State != service.StateDone || !got.Hedged {
		t.Fatalf("final status %+v, want done+hedged", got)
	}
	if co.met.hedgeWins.Value() != 1 {
		t.Fatalf("hedge wins metric = %d, want 1", co.met.hedgeWins.Value())
	}
}

func TestPoisonJobQuarantinedAfterDistinctWorkerFailures(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, func(cfg *CoordConfig) {
		cfg.MaxWorkerFailures = 2
		cfg.LeaseTTL = 10 * time.Second
	})
	circuit := testCircuit(t)
	st, err := co.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	w1 := co.Register("w1")
	w2 := co.Register("w2")

	// Round 1: w1 claims and dies.
	if c, ok, _ := co.Claim(w1.WorkerID); !ok || c.JobID != st.ID {
		t.Fatalf("w1 claim failed")
	}
	clk.Advance(11 * time.Second)
	co.Jobs() // any API entry sweeps
	if got, _ := co.Status(st.ID); got.State != service.StateQueued {
		t.Fatalf("after first death: %s, want queued", got.State)
	}

	// Round 2: w2 claims the requeued job and dies too — second *distinct*
	// worker, so the job is quarantined, not requeued again.
	clk.Advance(time.Minute)
	if c, ok, _ := co.Claim(w2.WorkerID); !ok || c.JobID != st.ID {
		t.Fatalf("w2 claim failed")
	}
	clk.Advance(11 * time.Second)
	co.Jobs()
	got, _ := co.Status(st.ID)
	if got.State != service.StateQuarantined {
		t.Fatalf("after second death: %s, want quarantined", got.State)
	}
	if co.met.quarantined.Value() != 1 {
		t.Fatalf("quarantined metric = %d, want 1", co.met.quarantined.Value())
	}
	// A quarantined job is never handed out again.
	clk.Advance(time.Hour)
	w3 := co.Register("w3")
	if _, ok, _ := co.Claim(w3.WorkerID); ok {
		t.Fatalf("quarantined job claimed")
	}
}

func TestWorkerReportedFailureCountsTowardQuarantine(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, func(cfg *CoordConfig) {
		cfg.MaxWorkerFailures = 2
	})
	circuit := testCircuit(t)
	st, _ := co.Submit(testSpec(), circuit)
	w1 := co.Register("w1")
	w2 := co.Register("w2")

	c1, _, _ := co.Claim(w1.WorkerID)
	if err := co.Fail(c1.JobID, w1.WorkerID, c1.AttemptID, "panic: divisor table"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if got, _ := co.Status(st.ID); got.State != service.StateQueued || got.Redispatches != 1 {
		t.Fatalf("after reported failure: %+v", got)
	}
	clk.Advance(time.Minute)
	c2, ok, _ := co.Claim(w2.WorkerID)
	if !ok {
		t.Fatalf("redispatch claim failed")
	}
	if err := co.Fail(c2.JobID, w2.WorkerID, c2.AttemptID, "panic: divisor table"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if got, _ := co.Status(st.ID); got.State != service.StateQuarantined {
		t.Fatalf("after second reported failure: %s, want quarantined", got.State)
	}
	// The same worker failing twice is one distinct worker — no quarantine.
	// (Covered implicitly: two distinct workers were required above.)
}

func TestCoordinatorRecovery(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	circuit := testCircuit(t)
	mk := func() *Coordinator {
		co, err := NewCoordinator(CoordConfig{Dir: dir, Now: clk.Now, Logf: t.Logf})
		if err != nil {
			t.Fatalf("NewCoordinator: %v", err)
		}
		return co
	}

	co1 := mk()
	stDone, err := co1.Submit(testSpec(), circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	w := co1.Register("w1")
	c, _, _ := co1.Claim(w.WorkerID)
	if err := co1.UploadCheckpoint(c.JobID, w.WorkerID, c.AttemptID, []byte("ckpt")); err != nil {
		t.Fatalf("UploadCheckpoint: %v", err)
	}
	finishAttempt(t, co1, c, w.WorkerID, circuit)
	other := testSpec()
	other.Seed = 99
	stOpen, err := co1.Submit(other, circuit)
	if err != nil {
		t.Fatalf("Submit open: %v", err)
	}
	cw, _, _ := co1.Claim(w.WorkerID)
	if cw.JobID != stOpen.ID {
		t.Fatalf("claimed %s, want %s", cw.JobID, stOpen.ID)
	}

	// Coordinator dies and restarts over the same dir.
	co2 := mk()
	gotDone, err := co2.Status(stDone.ID)
	if err != nil || gotDone.State != service.StateDone {
		t.Fatalf("recovered done job = (%+v, %v)", gotDone, err)
	}
	aag, err := co2.ResultAAG(stDone.ID)
	if err != nil || !bytes.Equal(aag, circuit) {
		t.Fatalf("recovered result unreadable: %v", err)
	}
	gotOpen, err := co2.Status(stOpen.ID)
	if err != nil || gotOpen.State != service.StateQueued {
		t.Fatalf("recovered open job = (%+v, %v), want requeued", gotOpen, err)
	}
	// Workers are not recovered: the old id is told to re-register, and new
	// ids never collide with pre-restart job numbering.
	if _, _, err := co2.Claim(w.WorkerID); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("stale worker claim error = %v, want ErrUnknownWorker", err)
	}
	w2 := co2.Register("w1-reborn")
	c2, ok, err := co2.Claim(w2.WorkerID)
	if err != nil || !ok || c2.JobID != stOpen.ID {
		t.Fatalf("post-restart claim = (%+v, %t, %v)", c2, ok, err)
	}
	st3, err := co2.Submit(func() service.JobSpec { s := testSpec(); s.Seed = 123; return s }(), circuit)
	if err != nil {
		t.Fatalf("post-restart Submit: %v", err)
	}
	if st3.ID == stDone.ID || st3.ID == stOpen.ID {
		t.Fatalf("job id %s collided after restart", st3.ID)
	}
}

func TestResultCorruptionAfterDoneTriggersRecompute(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoord(t, clk, nil)
	circuit := testCircuit(t)
	st, _ := co.Submit(testSpec(), circuit)
	w := co.Register("w1")
	c, _, _ := co.Claim(w.WorkerID)
	finishAttempt(t, co, c, w.WorkerID, circuit)

	// Drop the in-memory copy and rot the CAS entry underneath.
	co.mu.Lock()
	co.jobs[st.ID].resultAAG = nil
	co.mu.Unlock()
	if err := co.cas.fs.Remove(co.cas.keyDir(co.jobs[st.ID].key) + "/" + resultName); err != nil {
		t.Fatalf("removing result: %v", err)
	}

	if _, err := co.ResultAAG(st.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("ResultAAG on rotted entry = %v, want ErrNotDone", err)
	}
	got, _ := co.Status(st.ID)
	if got.State != service.StateQueued {
		t.Fatalf("rotted job state %s, want requeued for recompute", got.State)
	}
	// The recompute path works end to end: a worker claims it again.
	c2, ok, err := co.Claim(w.WorkerID)
	if err != nil || !ok || c2.JobID != st.ID {
		t.Fatalf("recompute claim = (%+v, %t, %v)", c2, ok, err)
	}
}
