package cell

import "testing"

func TestMCNCLibraryShape(t *testing.T) {
	lib := MCNC()
	if len(lib) < 15 {
		t.Fatalf("library has only %d cells", len(lib))
	}
	seen := map[string]bool{}
	for _, c := range lib {
		if seen[c.Name] {
			t.Errorf("duplicate cell %q", c.Name)
		}
		seen[c.Name] = true
		if c.NumIns < 1 || c.NumIns > 4 {
			t.Errorf("cell %q has %d inputs", c.Name, c.NumIns)
		}
		if c.Fn.NumVars() != c.NumIns {
			t.Errorf("cell %q table arity mismatch", c.Name)
		}
		if c.Area <= 0 || c.Delay <= 0 {
			t.Errorf("cell %q has non-positive area/delay", c.Name)
		}
		if c.Fn.IsConst0() || c.Fn.IsConst1() {
			t.Errorf("cell %q is a constant", c.Name)
		}
	}
}

func TestCellFunctions(t *testing.T) {
	lib := MCNC()
	byName := map[string]Cell{}
	for _, c := range lib {
		byName[c.Name] = c
	}
	// Spot-check a few functions minterm by minterm.
	nand2 := byName["nand2"]
	for m := 0; m < 4; m++ {
		want := !(m&1 == 1 && m&2 == 2)
		if nand2.Fn.Get(m) != want {
			t.Errorf("nand2(%d) = %v", m, nand2.Fn.Get(m))
		}
	}
	maj3 := byName["maj3"]
	for m := 0; m < 8; m++ {
		ones := m&1 + m>>1&1 + m>>2&1
		if maj3.Fn.Get(m) != (ones >= 2) {
			t.Errorf("maj3(%d) wrong", m)
		}
	}
	mux2 := byName["mux2"]
	for m := 0; m < 8; m++ {
		a, b, s := m&1 == 1, m&2 == 2, m&4 == 4
		want := b
		if s {
			want = a
		}
		if mux2.Fn.Get(m) != want {
			t.Errorf("mux2(%d) wrong", m)
		}
	}
}

func TestInverter(t *testing.T) {
	lib := MCNC()
	inv := Inverter(lib)
	if inv.Name != "inv1" || inv.Fn.Get(0) != true || inv.Fn.Get(1) != false {
		t.Fatalf("Inverter returned %+v", inv)
	}
}
