// Package cell models a standard-cell library for ASIC technology mapping:
// cells with a logic function (truth table), an area and a pin-to-output
// delay. The built-in library mirrors the classic MCNC genlib used by the
// paper's ASIC experiments (a faithful substitute: only area/delay RATIOS
// between the compared flows matter, and both flows are mapped with the
// same library).
package cell

import "repro/internal/tt"

// Cell is one library gate.
type Cell struct {
	Name   string
	NumIns int
	// Fn is the cell function over NumIns variables (input 0 is variable 0).
	Fn    tt.Table
	Area  float64
	Delay float64
}

// fn builds a table over n vars from an expression callback.
func fn(n int, f func(m int) bool) tt.Table {
	t := tt.New(n)
	for m := 0; m < 1<<n; m++ {
		if f(m) {
			t.Set(m, true)
		}
	}
	return t
}

func bit(m, i int) bool { return m>>i&1 == 1 }

// MCNC returns the built-in MCNC-like library. The first cell is the
// inverter, which mappers also use for complemented outputs and inputs.
func MCNC() []Cell {
	return []Cell{
		{"inv1", 1, fn(1, func(m int) bool { return !bit(m, 0) }), 1, 0.9},
		{"buf", 1, fn(1, func(m int) bool { return bit(m, 0) }), 2, 1.0},
		{"nand2", 2, fn(2, func(m int) bool { return !(bit(m, 0) && bit(m, 1)) }), 1, 1.0},
		{"nor2", 2, fn(2, func(m int) bool { return !(bit(m, 0) || bit(m, 1)) }), 1, 1.4},
		{"and2", 2, fn(2, func(m int) bool { return bit(m, 0) && bit(m, 1) }), 2, 1.9},
		{"or2", 2, fn(2, func(m int) bool { return bit(m, 0) || bit(m, 1) }), 2, 2.4},
		{"xor2", 2, fn(2, func(m int) bool { return bit(m, 0) != bit(m, 1) }), 5, 1.9},
		{"xnor2", 2, fn(2, func(m int) bool { return bit(m, 0) == bit(m, 1) }), 5, 2.1},
		{"nand3", 3, fn(3, func(m int) bool { return !(bit(m, 0) && bit(m, 1) && bit(m, 2)) }), 2, 1.1},
		{"nor3", 3, fn(3, func(m int) bool { return !(bit(m, 0) || bit(m, 1) || bit(m, 2)) }), 2, 2.4},
		{"nand4", 4, fn(4, func(m int) bool { return !(bit(m, 0) && bit(m, 1) && bit(m, 2) && bit(m, 3)) }), 3, 1.4},
		{"nor4", 4, fn(4, func(m int) bool { return !(bit(m, 0) || bit(m, 1) || bit(m, 2) || bit(m, 3)) }), 3, 3.8},
		{"aoi21", 3, fn(3, func(m int) bool { return !(bit(m, 0) && bit(m, 1) || bit(m, 2)) }), 2, 1.6},
		{"oai21", 3, fn(3, func(m int) bool { return !((bit(m, 0) || bit(m, 1)) && bit(m, 2)) }), 2, 1.6},
		{"aoi22", 4, fn(4, func(m int) bool { return !(bit(m, 0) && bit(m, 1) || bit(m, 2) && bit(m, 3)) }), 3, 2.0},
		{"oai22", 4, fn(4, func(m int) bool { return !((bit(m, 0) || bit(m, 1)) && (bit(m, 2) || bit(m, 3))) }), 3, 2.0},
		{"mux2", 3, fn(3, func(m int) bool { // s ? a : b with s=var2
			if bit(m, 2) {
				return bit(m, 0)
			}
			return bit(m, 1)
		}), 5, 2.0},
		{"maj3", 3, fn(3, func(m int) bool {
			n := 0
			for i := 0; i < 3; i++ {
				if bit(m, i) {
					n++
				}
			}
			return n >= 2
		}), 4, 2.2},
	}
}

// Inverter returns the inverter cell of a library (by convention the cell
// named "inv1"; falls back to the first single-input cell).
func Inverter(lib []Cell) Cell {
	for _, c := range lib {
		if c.Name == "inv1" {
			return c
		}
	}
	for _, c := range lib {
		if c.NumIns == 1 {
			return c
		}
	}
	panic("cell: library has no inverter")
}
