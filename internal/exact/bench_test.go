package exact

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
)

// certFixture builds an original circuit and a bounded-error candidate of
// the kind the flow certifies: one carry node of an adder replaced by a
// fanin, a real resubstitution-shaped change.
func certFixture(b *testing.B, n int) (orig, appr *aig.Graph) {
	b.Helper()
	orig = bench.RCA(n)
	// Replace the carry-out driver with its complement: the difference
	// support spans every input and the exact error distance is 2^n.
	po := orig.PO(n)
	appr = orig.CopyWith(map[aig.Node]aig.Lit{po.Node(): aig.MakeLit(po.Node(), true)})
	return orig, appr
}

// BenchmarkCertifyExhaustive measures one full exhaustive certification on
// an 8-bit ripple-carry adder (17 PIs in the difference support: 2^17
// patterns enumerated per call).
func BenchmarkCertifyExhaustive(b *testing.B) {
	orig, appr := certFixture(b, 8)
	chk, err := New(orig, Config{})
	if err != nil {
		b.Fatal(err)
	}
	bound := uint64(1) << 8 // exact ED of the fixture: full enumeration, no early exit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert, err := chk.CertifyED(appr, bound)
		if err != nil {
			b.Fatal(err)
		}
		if !cert.OK || cert.Backend != BackendExhaustive {
			b.Fatalf("unexpected certificate %+v", cert)
		}
	}
}

// BenchmarkCertifySAT measures one full CDCL certification (miter build,
// datapath + comparator construction, Tseitin encoding, solve) on a
// 16-bit ripple-carry adder — a cone the exhaustive backend cannot touch.
func BenchmarkCertifySAT(b *testing.B) {
	orig, appr := certFixture(b, 16)
	chk, err := New(orig, Config{MaxExhaustivePIs: -1})
	if err != nil {
		b.Fatal(err)
	}
	bound := uint64(1) << 16 // certified: exact ED is 2^16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert, err := chk.CertifyED(appr, bound)
		if err != nil {
			b.Fatal(err)
		}
		if !cert.OK || cert.Backend != BackendSAT {
			b.Fatalf("unexpected certificate %+v", cert)
		}
	}
}
