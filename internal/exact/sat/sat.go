// Package sat is a small, self-contained CDCL SAT solver: two watched
// literals per clause, first-UIP conflict-clause learning, VSIDS-style
// activity ordering with phase saving, and Luby restarts. It exists to
// decide the miter instances of package exact without external
// dependencies, and it is fully deterministic: the same sequence of
// NewVar/AddClause calls produces the same verdict, the same model and the
// same conflict count on every run — activities break ties by variable
// index, and no map iteration or wall clock participates in any decision.
//
// The solver is deliberately minimal. There is no clause deletion,
// preprocessing or literal-block-distance machinery: certification
// instances are bounded cones of a single circuit, a regime where the
// watched-literal core with learning is already orders of magnitude beyond
// what plain enumeration could decide, and minimality keeps the solver
// auditable against the exhaustive oracle (see package exact's fuzz
// target).
package sat

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: variable index shifted left once, low bit set for
// negation — the same packing as aig.Lit, so encoders translate directly.
type Lit int32

// MkLit builds the literal for v, negated when neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsNeg reports whether the literal is negated.
func (l Lit) IsNeg() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is a solver verdict.
type Status int

const (
	// Unknown: the conflict budget ran out before a verdict.
	Unknown Status = iota
	// Sat: a satisfying assignment was found (read it with Value).
	Sat
	// Unsat: the instance has no satisfying assignment.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

const (
	varUndef   int8 = 0
	varTrue    int8 = 1
	varFalse   int8 = -1
	noReason        = int32(-1)
	restartMul      = 100 // conflicts per Luby unit
)

// Solver is a single-use CDCL instance: add variables and clauses, then
// call Solve. It is not safe for concurrent use.
type Solver struct {
	clauses [][]Lit   // problem + learned clauses; first two lits are watched
	watches [][]int32 // per literal: clause indices watching it

	assign []int8  // per var: varUndef/varTrue/varFalse
	level  []int32 // per var: decision level of its assignment
	reason []int32 // per var: clause index that implied it, or noReason
	phase  []bool  // per var: saved polarity for the next decision

	trail    []Lit
	trailLim []int32 // trail length at each decision level
	qhead    int

	activity []float64
	varInc   float64
	order    varHeap

	seen    []bool // scratch for analyze
	toClear []Var  // scratch for analyze

	ok        bool // false once a top-level conflict is known
	conflicts int64
	budget    int64 // remaining conflicts; negative = unbounded
}

// New returns an empty solver with no conflict budget.
func New() *Solver {
	s := &Solver{ok: true, varInc: 1, budget: -1}
	s.order.act = &s.activity
	return s
}

// SetConflictBudget caps the total number of conflicts Solve may spend;
// n <= 0 removes the cap. When the cap is hit Solve returns Unknown.
func (s *Solver) SetConflictBudget(n int64) {
	if n <= 0 {
		s.budget = -1
	} else {
		s.budget = n
	}
}

// Conflicts returns the number of conflicts encountered so far.
func (s *Solver) Conflicts() int64 { return s.conflicts }

// NumVars returns the number of variables created.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assign))
	s.assign = append(s.assign, varUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

// value returns the literal's current truth value.
func (s *Solver) value(l Lit) int8 {
	a := s.assign[l.Var()]
	if l.IsNeg() {
		return -a
	}
	return a
}

// Value returns the variable's value in the model after Solve returned Sat.
// Variables never touched by propagation or decisions report false.
func (s *Solver) Value(v Var) bool { return s.assign[v] == varTrue }

// AddClause adds a clause. It must be called at decision level 0 (i.e.
// before Solve, or between Solve calls after a full restart). The clause is
// simplified against the top-level assignment; duplicate literals are
// merged and tautologies dropped. It returns false when the clause (or a
// previous one) makes the instance trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Sort by literal value for dedup/tautology detection: insertion sort,
	// clauses are short.
	c := append([]Lit(nil), lits...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	out := c[:0]
	var prev Lit = -1
	for _, l := range c {
		if l == prev {
			continue // duplicate
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology: x ∨ ¬x
		}
		switch s.value(l) {
		case varTrue:
			return true // already satisfied at level 0
		case varFalse:
			prev = l
			continue // false at level 0: drop the literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], noReason)
		if s.propagate() >= 0 {
			s.ok = false
			return false
		}
		return true
	}
	s.attachClause(out)
	return true
}

func (s *Solver) attachClause(c []Lit) int32 {
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.watches[c[0]] = append(s.watches[c[0]], ci)
	s.watches[c[1]] = append(s.watches[c[1]], ci)
	return ci
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *Solver) uncheckedEnqueue(l Lit, from int32) {
	v := l.Var()
	if l.IsNeg() {
		s.assign[v] = varFalse
	} else {
		s.assign[v] = varTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation to fixpoint and returns the index of a
// conflicting clause, or -1.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		falseLit := p.Not()
		ws := s.watches[falseLit]
		j := 0
	nextClause:
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			c := s.clauses[ci]
			// Normalize: the false watched literal sits at c[1].
			if c[0] == falseLit {
				c[0], c[1] = c[1], c[0]
			}
			// Satisfied via the other watch: keep watching.
			if s.value(c[0]) == varTrue {
				ws[j] = ci
				j++
				continue
			}
			// Look for a replacement watch.
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != varFalse {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					continue nextClause // watch moved: drop from this list
				}
			}
			// No replacement: clause is unit or conflicting.
			ws[j] = ci
			j++
			if s.value(c[0]) == varFalse {
				// Conflict: keep the remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[falseLit] = ws[:j]
				s.qhead = len(s.trail)
				return ci
			}
			s.uncheckedEnqueue(c[0], ci)
		}
		s.watches[falseLit] = ws[:j]
	}
	return -1
}

// analyze derives the first-UIP learned clause from the conflict and
// returns it together with the backtrack level. learnt[0] is the asserting
// literal; when the clause has more than one literal, learnt[1] holds a
// literal from the backtrack level (the second watch).
func (s *Solver) analyze(confl int32) (learnt []Lit, btLevel int32) {
	learnt = append(learnt, 0) // slot for the asserting literal
	pathC := 0
	var p Lit
	haveP := false
	idx := len(s.trail) - 1

	for {
		c := s.clauses[confl]
		for _, q := range c {
			if haveP && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.toClear = append(s.toClear, v)
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		haveP = true
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC <= 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	if len(learnt) > 1 {
		// Find the literal with the highest decision level after the
		// asserting one and place it at index 1 — it is the second watch and
		// determines the backtrack level.
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, v := range s.toClear {
		s.seen[v] = false
	}
	s.toClear = s.toClear[:0]
	return learnt, btLevel
}

// cancelUntil backtracks to the given decision level, saving phases and
// restoring the decision order.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	lim := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == varTrue
		s.assign[v] = varUndef
		s.reason[v] = noReason
		s.order.insert(v)
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayActivity() { s.varInc /= 0.95 }

// pickBranchVar returns the unassigned variable with the highest activity
// (ties broken by smallest index), or -1 when all are assigned.
func (s *Solver) pickBranchVar() Var {
	for s.order.len() > 0 {
		v := s.order.removeMin()
		if s.assign[v] == varUndef {
			return v
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve runs the CDCL search and returns the verdict. After Sat, Value
// reads the model; after Unsat the instance is permanently unsatisfiable.
// Unknown is returned only when a conflict budget is set and exhausted.
func (s *Solver) Solve() Status {
	if !s.ok {
		return Unsat
	}
	if s.propagate() >= 0 {
		s.ok = false
		return Unsat
	}
	var restarts int64
	for {
		limit := luby(restarts+1) * restartMul
		var since int64
		for {
			confl := s.propagate()
			if confl >= 0 {
				s.conflicts++
				since++
				if s.decisionLevel() == 0 {
					s.ok = false
					return Unsat
				}
				learnt, bt := s.analyze(confl)
				s.cancelUntil(bt)
				if len(learnt) == 1 {
					s.uncheckedEnqueue(learnt[0], noReason)
				} else {
					ci := s.attachClause(learnt)
					s.uncheckedEnqueue(learnt[0], ci)
				}
				s.decayActivity()
				if s.budget >= 0 && s.conflicts >= s.budget {
					s.cancelUntil(0)
					return Unknown
				}
				continue
			}
			if since >= limit {
				s.cancelUntil(0)
				restarts++
				break // restart
			}
			v := s.pickBranchVar()
			if v < 0 {
				return Sat
			}
			s.trailLim = append(s.trailLim, int32(len(s.trail)))
			s.uncheckedEnqueue(MkLit(v, !s.phase[v]), noReason)
		}
	}
}

// varHeap is an indexed binary max-heap over variables ordered by
// (activity desc, index asc) — the deterministic VSIDS order.
type varHeap struct {
	act  *[]float64
	data []Var
	pos  []int32 // position+1 per var; 0 = absent
}

func (h *varHeap) len() int { return len(h.data) }

func (h *varHeap) less(a, b Var) bool {
	aa, ab := (*h.act)[a], (*h.act)[b]
	if aa != ab {
		return aa > ab
	}
	return a < b
}

func (h *varHeap) insert(v Var) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, 0)
	}
	if h.pos[v] != 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = int32(len(h.data))
	h.up(len(h.data) - 1)
}

// update restores the heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if int(v) < len(h.pos) && h.pos[v] != 0 {
		h.up(int(h.pos[v]) - 1)
	}
}

func (h *varHeap) removeMin() Var {
	v := h.data[0]
	h.pos[v] = 0
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	if len(h.data) > 0 && v != last {
		h.data[0] = last
		h.pos[last] = 1
		h.down(0)
	}
	return v
}

func (h *varHeap) up(i int) {
	v := h.data[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.data[p]) {
			break
		}
		h.data[i] = h.data[p]
		h.pos[h.data[i]] = int32(i + 1)
		i = p
	}
	h.data[i] = v
	h.pos[v] = int32(i + 1)
}

func (h *varHeap) down(i int) {
	v := h.data[i]
	for {
		c := 2*i + 1
		if c >= len(h.data) {
			break
		}
		if c+1 < len(h.data) && h.less(h.data[c+1], h.data[c]) {
			c++
		}
		if !h.less(h.data[c], v) {
			break
		}
		h.data[i] = h.data[c]
		h.pos[h.data[i]] = int32(i + 1)
		i = c
	}
	h.data[i] = v
	h.pos[v] = int32(i + 1)
}
