package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatalf("model a=%v b=%v, want a=false b=true", s.Value(a), s.Value(b))
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Fatal("tautology rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

// TestPigeonhole pins the classic UNSAT family: n+1 pigeons in n holes.
// These instances force real conflict-driven search (they have no short
// resolution refutations at higher n, so keep n small).
func TestPigeonhole(t *testing.T) {
	for _, holes := range []int{2, 3, 4, 5} {
		s := New()
		pigeons := holes + 1
		// v[p][h]: pigeon p sits in hole h.
		v := make([][]Var, pigeons)
		for p := range v {
			v[p] = make([]Var, holes)
			for h := range v[p] {
				v[p][h] = s.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				lits[h] = MkLit(v[p][h], false)
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): Solve = %v, want Unsat", pigeons, holes, got)
		}
	}
}

// bruteForce decides a CNF over nVars variables by enumeration and returns
// (satisfiable, a model when satisfiable).
func bruteForce(nVars int, cnf [][]Lit) (bool, uint64) {
	for m := uint64(0); m < 1<<uint(nVars); m++ {
		ok := true
		for _, c := range cnf {
			sat := false
			for _, l := range c {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.IsNeg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true, m
		}
	}
	return false, 0
}

func checkModel(t *testing.T, s *Solver, cnf [][]Lit, seed int64) {
	t.Helper()
	for _, c := range cnf {
		sat := false
		for _, l := range c {
			if s.Value(l.Var()) != l.IsNeg() {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("seed %d: model violates clause %v", seed, c)
		}
	}
}

// TestRandom3SATVsBruteForce cross-checks the CDCL verdict against plain
// enumeration on random 3-SAT instances around the phase transition.
func TestRandom3SATVsBruteForce(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nVars := 5 + rng.Intn(8) // 5..12
		nClauses := int(4.3*float64(nVars)) + rng.Intn(5)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		cnf := make([][]Lit, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			cnf = append(cnf, c)
			s.AddClause(c...)
		}
		got := s.Solve()
		want, _ := bruteForce(nVars, cnf)
		if want && got != Sat {
			t.Fatalf("seed %d: Solve = %v, brute force says Sat", seed, got)
		}
		if !want && got != Unsat {
			t.Fatalf("seed %d: Solve = %v, brute force says Unsat", seed, got)
		}
		if got == Sat {
			checkModel(t, s, cnf, seed)
		}
	}
}

// TestDeterministic pins that two solvers fed the same instance agree on
// verdict, model and conflict count.
func TestDeterministic(t *testing.T) {
	build := func() (*Solver, [][]Lit) {
		rng := rand.New(rand.NewSource(42))
		nVars, nClauses := 30, 120
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			cnf = append(cnf, c)
			s.AddClause(c...)
		}
		return s, cnf
	}
	s1, _ := build()
	s2, _ := build()
	r1, r2 := s1.Solve(), s2.Solve()
	if r1 != r2 {
		t.Fatalf("verdicts differ: %v vs %v", r1, r2)
	}
	if s1.Conflicts() != s2.Conflicts() {
		t.Fatalf("conflict counts differ: %d vs %d", s1.Conflicts(), s2.Conflicts())
	}
	if r1 == Sat {
		for v := 0; v < s1.NumVars(); v++ {
			if s1.Value(Var(v)) != s2.Value(Var(v)) {
				t.Fatalf("models differ at var %d", v)
			}
		}
	}
}

// TestConflictBudget pins that an exhausted budget reports Unknown rather
// than a wrong verdict.
func TestConflictBudget(t *testing.T) {
	holes := 6 // PHP(7,6) needs far more than 2 conflicts
	s := New()
	pigeons := holes + 1
	v := make([][]Var, pigeons)
	for p := range v {
		v[p] = make([]Var, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	s.SetConflictBudget(2)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with budget 2 = %v, want Unknown", got)
	}
	if s.Conflicts() < 2 {
		t.Fatalf("Conflicts = %d, want >= 2", s.Conflicts())
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
