package exact

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
	"repro/internal/errest"
	"repro/internal/sim"
)

// randGraph builds a random strashed AIG: nAnds AND gates over random
// earlier literals, outputs tapped from random nodes.
func randGraph(rng *rand.Rand, nPIs, nPOs, nAnds int) *aig.Graph {
	g := aig.New()
	lits := make([]aig.Lit, 0, 1+nPIs+nAnds)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, g.AddPI(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for o := 0; o < nPOs; o++ {
		g.AddPO(lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 1), fmt.Sprintf("o%d", o))
	}
	return g
}

// mutate derives an approximate variant: one random AND node is replaced by
// a random literal (or constant), exactly the shape of a resubstitution LAC.
func mutate(g *aig.Graph, rng *rand.Rand) *aig.Graph {
	var ands []aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			ands = append(ands, n)
		}
	}
	if len(ands) == 0 {
		return g.Sweep()
	}
	tgt := ands[rng.Intn(len(ands))]
	var repl aig.Lit
	switch rng.Intn(4) {
	case 0:
		repl = aig.LitFalse
	case 1:
		repl = aig.LitTrue
	default:
		n := aig.Node(rng.Intn(g.NumNodes()-1) + 1)
		repl = aig.MakeLit(n, rng.Intn(2) == 1)
	}
	return g.CopyWith(map[aig.Node]aig.Lit{tgt: repl})
}

// bruteMeasure computes the reference whole-space error measurements by
// plain enumeration of all 2^nPIs inputs, independently of the miter and
// support machinery under test.
func bruteMeasure(orig, appr *aig.Graph) (maxED uint64, er, nmed float64, maxFlips int) {
	n := orig.NumPIs()
	p := sim.Exhaustive(n)
	vo := sim.Simulate(orig, p)
	va := sim.Simulate(appr, p)
	defer vo.Release()
	defer va.Release()
	total := 1 << uint(n)
	maxVal := math.Pow(2, float64(orig.NumPOs())) - 1
	var bad, sum uint64
	for idx := 0; idx < total; idx++ {
		var a, b uint64
		for o := 0; o < orig.NumPOs(); o++ {
			if vo.LitBit(orig.PO(o), idx) {
				a |= 1 << uint(o)
			}
			if va.LitBit(appr.PO(o), idx) {
				b |= 1 << uint(o)
			}
		}
		d := a ^ b
		if d == 0 {
			continue
		}
		bad++
		fl := 0
		for x := d; x != 0; x &= x - 1 {
			fl++
		}
		if fl > maxFlips {
			maxFlips = fl
		}
		var ed uint64
		if a >= b {
			ed = a - b
		} else {
			ed = b - a
		}
		sum += ed
		if ed > maxED {
			maxED = ed
		}
	}
	space := math.Ldexp(1, n)
	return maxED, float64(bad) / space, float64(sum) / space / maxVal, maxFlips
}

// edAt evaluates the error distance of one concrete input assignment.
func edAt(orig, appr *aig.Graph, witness []bool) uint64 {
	p := &sim.Patterns{Words: 1, Valid: 1, In: make([][]uint64, orig.NumPIs())}
	for i := range p.In {
		w := make([]uint64, 1)
		if witness[i] {
			w[0] = 1
		}
		p.In[i] = w
	}
	vo := sim.Simulate(orig, p)
	va := sim.Simulate(appr, p)
	defer vo.Release()
	defer va.Release()
	var a, b uint64
	for o := 0; o < orig.NumPOs(); o++ {
		if vo.LitBit(orig.PO(o), 0) {
			a |= 1 << uint(o)
		}
		if va.LitBit(appr.PO(o), 0) {
			b |= 1 << uint(o)
		}
	}
	if a >= b {
		return a - b
	}
	return b - a
}

// TestMaxErrorVsBruteForce cross-checks the exhaustive backend's exact
// measurements (max ED, ER, NMED, worst-case flips) against plain
// enumeration on random instances. Equality is exact (==): every quantity
// is a small integer divided by a power of two.
func TestMaxErrorVsBruteForce(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nPIs := 2 + rng.Intn(9) // 2..10
		nPOs := 1 + rng.Intn(6)
		orig := randGraph(rng, nPIs, nPOs, 5+rng.Intn(30))
		appr := mutate(orig, rng)

		chk, err := New(orig, Config{})
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		cert, err := chk.MaxError(appr)
		if err != nil {
			t.Fatalf("seed %d: MaxError: %v", seed, err)
		}
		maxED, er, nmed, maxFlips := bruteMeasure(orig, appr)
		if cert.MaxED != maxED {
			t.Fatalf("seed %d: MaxED = %d, brute force %d", seed, cert.MaxED, maxED)
		}
		if cert.Backend != BackendTrivial && (cert.ER != er || cert.NMED != nmed || cert.MaxFlips != maxFlips) {
			t.Fatalf("seed %d: ER/NMED/flips = %v/%v/%d, brute force %v/%v/%d",
				seed, cert.ER, cert.NMED, cert.MaxFlips, er, nmed, maxFlips)
		}
		if cert.Backend == BackendTrivial && maxED != 0 {
			t.Fatalf("seed %d: trivial certificate but brute-force max ED %d", seed, maxED)
		}
	}
}

// TestBackendsAgree pins the tentpole's oracle property: the CDCL backend
// (forced via negative MaxExhaustivePIs) and the exhaustive backend return
// the same verdict for every threshold, and every violation witness
// replays to an input whose error distance exceeds the threshold.
func TestBackendsAgree(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		nPIs := 2 + rng.Intn(7)
		nPOs := 1 + rng.Intn(5)
		orig := randGraph(rng, nPIs, nPOs, 5+rng.Intn(25))
		appr := mutate(orig, rng)

		exh, err := New(orig, Config{MaxExhaustivePIs: 30})
		if err != nil {
			t.Fatal(err)
		}
		forced, err := New(orig, Config{MaxExhaustivePIs: -1})
		if err != nil {
			t.Fatal(err)
		}
		maxED, _, _, _ := bruteMeasure(orig, appr)
		thresholds := []uint64{0, maxED, maxED + 1}
		if maxED > 0 {
			thresholds = append(thresholds, maxED-1)
		}
		for _, T := range thresholds {
			ce, err := exh.CertifyED(appr, T)
			if err != nil {
				t.Fatalf("seed %d T=%d: exhaustive: %v", seed, T, err)
			}
			cs, err := forced.CertifyED(appr, T)
			if err != nil {
				t.Fatalf("seed %d T=%d: sat: %v", seed, T, err)
			}
			want := maxED <= T
			if ce.OK != want || cs.OK != want {
				t.Fatalf("seed %d T=%d maxED=%d: exhaustive OK=%v, sat OK=%v, want %v",
					seed, T, maxED, ce.OK, cs.OK, want)
			}
			for _, cert := range []Certificate{ce, cs} {
				if cert.OK {
					continue
				}
				if len(cert.Witness) != nPIs {
					t.Fatalf("seed %d T=%d: witness length %d, want %d", seed, T, len(cert.Witness), nPIs)
				}
				if ed := edAt(orig, appr, cert.Witness); ed <= T {
					t.Fatalf("seed %d T=%d: %s witness ED %d does not exceed threshold", seed, T, cert.Backend, ed)
				}
			}
		}
	}
}

// TestErrestExactProperty is the PR's property satellite: when the sampled
// pattern set is the complete 2^n enumeration, the exhaustive checker's
// whole-space ER and NMED must reproduce package errest's Monte-Carlo
// values EXACTLY (==, no epsilon) — including the n%6 ≠ 0 sizes where the
// checker's last simulation word is only partially valid, which pins the
// tail handling on both sides.
func TestErrestExactProperty(t *testing.T) {
	for _, nPIs := range []int{3, 4, 5, 7, 8} { // 3..5 exercise the sub-word tail
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(nPIs)))
			nPOs := 1 + rng.Intn(5)
			orig := randGraph(rng, nPIs, nPOs, 5+rng.Intn(25))
			appr := mutate(orig, rng)

			// BlockWords 1 forces multi-block enumeration at nPIs > 6.
			chk, err := New(orig, Config{BlockWords: 1})
			if err != nil {
				t.Fatal(err)
			}
			cert, err := chk.MaxError(appr)
			if err != nil {
				t.Fatal(err)
			}
			pats := sim.Exhaustive(nPIs)
			evER := errest.NewEvaluator(orig, pats, errest.ER)
			evNMED := errest.NewEvaluator(orig, pats, errest.NMED)
			wantER := evER.EvalGraph(appr, pats)
			wantNMED := evNMED.EvalGraph(appr, pats)
			if cert.Backend == BackendTrivial {
				if wantER != 0 || wantNMED != 0 {
					t.Fatalf("nPIs=%d seed %d: trivial certificate but errest ER=%v NMED=%v",
						nPIs, seed, wantER, wantNMED)
				}
				continue
			}
			if cert.ER != wantER {
				t.Fatalf("nPIs=%d seed %d: exact ER %v != errest ER %v (support %d)",
					nPIs, seed, cert.ER, wantER, cert.SupportSize)
			}
			if cert.NMED != wantNMED {
				t.Fatalf("nPIs=%d seed %d: exact NMED %v != errest NMED %v (support %d)",
					nPIs, seed, cert.NMED, wantNMED, cert.SupportSize)
			}
		}
	}
}

// TestTrivialOnIdenticalGraphs pins that strashing folds an identical
// candidate to constant-false differences: no enumeration, no SAT call.
func TestTrivialOnIdenticalGraphs(t *testing.T) {
	g := bench.RCA(8)
	chk, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := chk.CertifyED(g.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK || cert.Backend != BackendTrivial {
		t.Fatalf("cert = %+v, want trivial OK", cert)
	}
	st := chk.Stats()
	if st.Calls != 1 || st.TrivialCalls != 1 || st.ExhaustiveCalls != 0 || st.SATCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEDThreshold pins the normalized-bound conversion on exact and
// fractional bounds.
func TestEDThreshold(t *testing.T) {
	g := bench.RCA(4) // 5 POs, maxVal 31
	chk, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		bound float64
		want  uint64
	}{
		{0, 0}, {-1, 0},
		{1.0 / 31.0, 1},
		{0.05, 1}, // 0.05·31 = 1.55
		{0.5, 15}, // 15.5
		{1.0, 31},
		{2.0, 31}, // clamped
	}
	for _, c := range cases {
		if got := chk.EDThreshold(c.bound); got != c.want {
			t.Fatalf("EDThreshold(%v) = %d, want %d", c.bound, got, c.want)
		}
	}
}

// TestSATAdderBound runs the CNF backend on a real arithmetic circuit
// large enough that exhaustive enumeration is off the table: a 16-bit
// ripple-carry adder (33 PIs) with one sum bit forced to a wrong function
// must be rejected below its exact error distance and certified at it.
func TestSATAdderBound(t *testing.T) {
	orig := bench.RCA(16)
	// Break output bit 12: replace its driver with the complement.
	po := orig.PO(12)
	appr := orig.CopyWith(map[aig.Node]aig.Lit{po.Node(): aig.MakeLit(po.Node(), true)})
	chk, err := New(orig, Config{MaxExhaustivePIs: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Flipping bit 12 always produces ED 2^12 exactly.
	cert, err := chk.CertifyED(appr, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK {
		t.Fatalf("ED ≤ 4096 should certify, got %+v", cert)
	}
	cert, err = chk.CertifyED(appr, 1<<12-1)
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK {
		t.Fatal("ED ≤ 4095 should be rejected")
	}
	if ed := edAt(orig, appr, cert.Witness); ed != 1<<12 {
		t.Fatalf("witness ED = %d, want 4096", ed)
	}
}

// TestConflictBudgetSurfaces pins that an exhausted SAT budget comes back
// as ErrBudget, never as a verdict.
func TestConflictBudgetSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := randGraph(rng, 24, 8, 400)
	appr := mutate(orig, rng)
	maxED, _, _, _ := func() (uint64, float64, float64, int) {
		chk, _ := New(orig, Config{MaxExhaustivePIs: 30})
		cert, err := chk.MaxError(appr)
		if err != nil {
			t.Fatal(err)
		}
		return cert.MaxED, 0, 0, 0
	}()
	if maxED == 0 {
		t.Skip("mutation folded to equivalence")
	}
	chk, err := New(orig, Config{MaxExhaustivePIs: -1, SATConflictBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A threshold just below the max forces a search; one conflict is not
	// enough to decide anything real. If the instance happens to be decided
	// by pure propagation the call legitimately succeeds — accept both, but
	// a wrong verdict is fatal.
	cert, err := chk.CertifyED(appr, maxED-1)
	if err == nil {
		if cert.OK {
			t.Fatal("certified a violated bound")
		}
		return
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
