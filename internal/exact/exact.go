// Package exact certifies worst-case error bounds between an original
// circuit and an approximate candidate — the exact counterpart to the
// Monte-Carlo estimates of package errest. Where errest answers "what is
// the average error on these sampled patterns", this package answers "is
// the maximum arithmetic error over ALL inputs at most T", with a proof.
//
// Two backends share one miter construction (both circuits imported into a
// single structurally hashed graph over shared primary inputs, so
// identical cones merge and the per-output difference functions fold):
//
//   - An exhaustive bit-parallel evaluator for small support: when the
//     union support of the difference functions (plus the original output
//     bits they flip) has at most Config.MaxExhaustivePIs inputs, all 2^s
//     patterns are enumerated 64 at a time in bounded blocks, yielding the
//     exact maximum error distance — and, for free, the exact error rate,
//     exact NMED and the worst-case output flip count over the whole space.
//
//   - A CNF backend for everything else: the miter grows a two's-complement
//     |orig − approx| datapath and a greater-than-T comparator, the cone of
//     the violation output is Tseitin-encoded, and the self-contained CDCL
//     solver of package exact/sat decides it. UNSAT is the certificate;
//     a SAT model is replayed through the simulator to a concrete violating
//     input pattern before it is reported, so the solver never has the
//     final word on a violation.
//
// Both backends agree by construction, and the fuzz target FuzzMiterSAT
// holds them to it. The checker is deterministic: no wall clock (timing
// uses the injected Config.Now) and no map iteration participates in any
// verdict.
package exact

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"repro/internal/aig"
	"repro/internal/exact/sat"
	"repro/internal/sim"
)

// Backend names reported in Certificate.Backend and observability labels.
const (
	BackendTrivial    = "trivial"
	BackendExhaustive = "exhaustive"
	BackendSAT        = "sat"
)

// ErrBudget is returned when the SAT backend exhausts its conflict budget
// before reaching a verdict. Callers should treat it as "not certified".
var ErrBudget = errors.New("exact: SAT conflict budget exhausted")

// DefaultMaxExhaustivePIs is the support size up to which the exhaustive
// backend is preferred: 2^24 patterns at 64 per word is a quarter-million
// simulation words, comfortably cheaper than a SAT call on the same cone.
const DefaultMaxExhaustivePIs = 24

// defaultBlockWords bounds the per-block simulation footprint of the
// exhaustive backend (64 Ki patterns per block).
const defaultBlockWords = 1024

// Config tunes a Checker. The zero value picks the production defaults.
type Config struct {
	// MaxExhaustivePIs is the largest difference-support size decided by
	// exhaustive enumeration; larger cones go to the SAT backend. 0 means
	// DefaultMaxExhaustivePIs; a negative value forces the SAT backend for
	// every instance (a testing knob that lets the exhaustive evaluator
	// serve as cross-check oracle).
	MaxExhaustivePIs int
	// BlockWords is the simulation block size of the exhaustive backend in
	// 64-pattern words. 0 means defaultBlockWords.
	BlockWords int
	// SATConflictBudget caps the conflicts of one SAT call; 0 = unbounded.
	// An exhausted budget surfaces as ErrBudget.
	SATConflictBudget int64
	// Now, when set, timestamps backend calls for Stats and Observe. nil
	// reports zero latencies (the checker itself never reads a wall clock).
	Now func() time.Time
	// Observe, when set, receives one call per certification with the
	// backend that decided it, the latency in seconds (0 when Now is nil)
	// and the SAT conflicts spent (0 for non-SAT backends). The service
	// layer hangs its metrics here.
	Observe func(backend string, seconds float64, conflicts int64)
}

// Stats counts what a Checker has done. Latency fields are zero unless
// Config.Now was set.
type Stats struct {
	Calls             int64
	TrivialCalls      int64
	ExhaustiveCalls   int64
	SATCalls          int64
	Rejections        int64 // certificates with OK == false
	SATConflicts      int64
	ExhaustiveSeconds float64
	SATSeconds        float64
}

// Certificate is the outcome of one certification call.
type Certificate struct {
	// OK reports that the maximum error distance is ≤ Threshold, exactly.
	OK bool
	// Backend that produced the verdict: BackendTrivial (the difference
	// folded to constant false in the miter), BackendExhaustive or
	// BackendSAT.
	Backend string
	// Threshold is the integer error-distance bound certified against.
	Threshold uint64
	// SupportSize is the number of primary inputs the difference depends on.
	SupportSize int
	// MaxED is the exact maximum error distance (exhaustive backend), or
	// the error distance of the found witness (SAT backend, OK == false).
	// It is 0 for a SAT certificate of OK — UNSAT proves the bound without
	// computing the true maximum.
	MaxED uint64
	// MaxErr is MaxED normalized by 2^nPOs − 1 (the NMED scale).
	MaxErr float64
	// ER, NMED and MaxFlips are exact whole-space measurements, filled by
	// the exhaustive backend only: error rate, normalized mean error
	// distance, and the worst-case number of flipped outputs.
	ER       float64
	NMED     float64
	MaxFlips int
	// Conflicts spent by the SAT backend (0 otherwise).
	Conflicts int64
	// Witness, when OK is false, is a primary-input assignment whose error
	// distance exceeds Threshold (inputs outside the support are false).
	// It has been replayed through the simulator, not just read off a model.
	Witness []bool
}

// Checker certifies candidate graphs against one original circuit. It is
// not safe for concurrent use; the flow certifies one candidate at a time.
type Checker struct {
	cfg    Config
	orig   *aig.Graph
	nPIs   int
	nPOs   int
	maxVal float64 // 2^nPOs − 1
	stats  Stats
}

// New builds a Checker for the original circuit. The arithmetic error
// distance reads the outputs as an unsigned binary number (PO 0 least
// significant, as in errest), so the circuit must have at most 64 outputs.
func New(orig *aig.Graph, cfg Config) (*Checker, error) {
	if orig.NumPOs() > 64 {
		return nil, fmt.Errorf("exact: %d outputs exceed the 64-bit value encoding", orig.NumPOs())
	}
	if orig.NumPOs() == 0 {
		return nil, errors.New("exact: circuit has no outputs")
	}
	if cfg.MaxExhaustivePIs == 0 {
		cfg.MaxExhaustivePIs = DefaultMaxExhaustivePIs
	}
	if cfg.BlockWords <= 0 {
		cfg.BlockWords = defaultBlockWords
	}
	return &Checker{
		cfg:    cfg,
		orig:   orig,
		nPIs:   orig.NumPIs(),
		nPOs:   orig.NumPOs(),
		maxVal: math.Pow(2, float64(orig.NumPOs())) - 1,
	}, nil
}

// Stats returns a snapshot of the checker's counters.
func (c *Checker) Stats() Stats { return c.stats }

// EDThreshold converts a normalized maximum-error bound (the NMED scale:
// max |ŷ−y| / (2^nPOs−1) ≤ bound) into the equivalent integer
// error-distance threshold. Error distances are integers, so the bound is
// exact: floor with a half-ULP guard against bounds written as decimal
// fractions.
func (c *Checker) EDThreshold(bound float64) uint64 {
	if bound <= 0 {
		return 0
	}
	t := math.Floor(bound*c.maxVal + 1e-9)
	if t >= c.maxVal {
		return uint64(c.maxVal)
	}
	return uint64(t)
}

// Certify certifies that the exact maximum error of approx against the
// original is at most the normalized bound (see EDThreshold).
func (c *Checker) Certify(approx *aig.Graph, bound float64) (Certificate, error) {
	return c.CertifyED(approx, c.EDThreshold(bound))
}

// CertifyED certifies that max_x |value_orig(x) − value_approx(x)| ≤ maxED,
// over every input assignment x. The certificate is exact in both
// directions: OK true is a proof of the bound, OK false comes with a
// replayed witness input exceeding it.
func (c *Checker) CertifyED(approx *aig.Graph, maxED uint64) (Certificate, error) {
	c.stats.Calls++
	cert, err := c.certify(approx, maxED)
	if err == nil && !cert.OK {
		c.stats.Rejections++
	}
	return cert, err
}

// MaxError measures the exact whole-space error of approx against the
// original with the exhaustive backend: maximum error distance, error
// rate, NMED and worst-case flip count. It fails when the difference
// support exceeds the exhaustive capacity (certification against a bound
// does not — CertifyED switches to SAT there).
func (c *Checker) MaxError(approx *aig.Graph) (Certificate, error) {
	m, err := c.buildMiter(approx)
	if err != nil {
		return Certificate{}, err
	}
	if m.trivial() {
		return Certificate{OK: true, Backend: BackendTrivial}, nil
	}
	cap := c.cfg.MaxExhaustivePIs
	if cap < 0 {
		cap = DefaultMaxExhaustivePIs
	}
	if len(m.support) > cap {
		return Certificate{}, fmt.Errorf("exact: support %d exceeds exhaustive capacity %d", len(m.support), cap)
	}
	cert := c.exhaustive(m, math.MaxUint64, false)
	cert.OK = true // measurement, not a bound check
	cert.Threshold = 0
	return cert, nil
}

func (c *Checker) certify(approx *aig.Graph, maxED uint64) (Certificate, error) {
	m, err := c.buildMiter(approx)
	if err != nil {
		return Certificate{}, err
	}
	if m.trivial() {
		c.stats.TrivialCalls++
		c.observe(BackendTrivial, 0, 0)
		return Certificate{OK: true, Backend: BackendTrivial, Threshold: maxED}, nil
	}
	if c.cfg.MaxExhaustivePIs >= 0 && len(m.support) <= c.cfg.MaxExhaustivePIs {
		start := c.now()
		cert := c.exhaustive(m, maxED, true)
		secs := c.since(start)
		c.stats.ExhaustiveCalls++
		c.stats.ExhaustiveSeconds += secs
		c.observe(BackendExhaustive, secs, 0)
		return cert, nil
	}
	start := c.now()
	cert, err := c.satCertify(m, maxED)
	secs := c.since(start)
	c.stats.SATCalls++
	c.stats.SATSeconds += secs
	c.stats.SATConflicts += cert.Conflicts
	c.observe(BackendSAT, secs, cert.Conflicts)
	return cert, err
}

func (c *Checker) now() time.Time {
	if c.cfg.Now == nil {
		return time.Time{}
	}
	return c.cfg.Now()
}

func (c *Checker) since(start time.Time) float64 {
	if c.cfg.Now == nil {
		return 0
	}
	return c.cfg.Now().Sub(start).Seconds()
}

func (c *Checker) observe(backend string, secs float64, conflicts int64) {
	if c.cfg.Observe != nil {
		c.cfg.Observe(backend, secs, conflicts)
	}
}

// miter is both circuits imported into one structurally hashed graph over
// shared primary inputs.
type miter struct {
	g       *aig.Graph
	origPOs []aig.Lit // original output bits, LSB first
	apprPOs []aig.Lit // approximate output bits
	diff    []aig.Lit // per-output XOR; strash folds identical cones to const
	support []int     // PI indices the error distance depends on, ascending
}

// trivial reports that every difference folded to constant false: the
// candidate is exactly equivalent and any bound holds.
func (m *miter) trivial() bool {
	for _, d := range m.diff {
		if d != aig.LitFalse {
			return false
		}
	}
	return true
}

func (c *Checker) buildMiter(approx *aig.Graph) (*miter, error) {
	if approx.NumPIs() != c.nPIs || approx.NumPOs() != c.nPOs {
		return nil, fmt.Errorf("exact: interface mismatch: original %d PIs/%d POs, candidate %d PIs/%d POs",
			c.nPIs, c.nPOs, approx.NumPIs(), approx.NumPOs())
	}
	g := aig.New()
	pis := make([]aig.Lit, c.nPIs)
	for i := 0; i < c.nPIs; i++ {
		pis[i] = g.AddPI(c.orig.PIName(i))
	}
	m := &miter{
		g:       g,
		origPOs: importGraph(g, c.orig, pis),
		apprPOs: importGraph(g, approx, pis),
	}
	m.diff = make([]aig.Lit, c.nPOs)
	for o := 0; o < c.nPOs; o++ {
		m.diff[o] = g.Xor(m.origPOs[o], m.apprPOs[o])
	}

	// The error distance at input x is |Σ_{o: d_o(x)} ±2^o| with the sign
	// of each term set by the ORIGINAL output bit, so the support is the
	// union of every non-constant difference cone plus the original output
	// cones at positions where the difference can fire at all. A single
	// backward id sweep marks the union (fanin ids are always smaller).
	mask := make([]bool, g.NumNodes())
	var maxSeed aig.Node
	seed := func(l aig.Lit) {
		if n := l.Node(); n != 0 {
			mask[n] = true
			if n > maxSeed {
				maxSeed = n
			}
		}
	}
	for o := 0; o < c.nPOs; o++ {
		if m.diff[o] == aig.LitFalse {
			continue
		}
		seed(m.diff[o])
		seed(m.origPOs[o])
	}
	for i := maxSeed; i >= 1; i-- {
		if !mask[i] || !g.IsAnd(i) {
			continue
		}
		mask[g.Fanin0(i).Node()] = true
		mask[g.Fanin1(i).Node()] = true
	}
	for i := 0; i < c.nPIs; i++ {
		if mask[pis[i].Node()] {
			m.support = append(m.support, i)
		}
	}
	return m, nil
}

// importGraph rebuilds the live cone of src inside dst, mapping src's i-th
// primary input to the literal pis[i]. It returns src's output literals
// expressed in dst. The pass is iterative over node ids (fanin ids are
// always smaller than the node id), so arbitrarily deep circuits import
// without recursion, and dead slots in src are skipped entirely.
func importGraph(dst *aig.Graph, src *aig.Graph, pis []aig.Lit) []aig.Lit {
	n := src.NumNodes()
	live := make([]bool, n)
	for _, po := range src.POs() {
		live[po.Node()] = true
	}
	for i := n - 1; i >= 1; i-- {
		if !live[i] || !src.IsAnd(aig.Node(i)) {
			continue
		}
		live[src.Fanin0(aig.Node(i)).Node()] = true
		live[src.Fanin1(aig.Node(i)).Node()] = true
	}
	m := make([]aig.Lit, n)
	m[0] = aig.LitFalse
	for i, pi := range src.PIs() {
		m[pi] = pis[i]
	}
	for i := 1; i < n; i++ {
		nd := aig.Node(i)
		if !live[i] || !src.IsAnd(nd) {
			continue
		}
		f0, f1 := src.Fanin0(nd), src.Fanin1(nd)
		a := m[f0.Node()].NotCond(f0.IsCompl())
		b := m[f1.Node()].NotCond(f1.IsCompl())
		m[i] = dst.And(a, b)
	}
	pos := make([]aig.Lit, src.NumPOs())
	for i, po := range src.POs() {
		pos[i] = m[po.Node()].NotCond(po.IsCompl())
	}
	return pos
}

// exhaustive enumerates all 2^s assignments of the miter's support,
// simulating the miter in bounded blocks of 64-pattern words, and computes
// the exact maximum error distance along with whole-space ER, NMED and the
// worst-case flip count. Inputs outside the support are held at false —
// the error distance provably does not depend on them. When earlyExit is
// set, enumeration stops at the first pattern exceeding maxED.
func (c *Checker) exhaustive(m *miter, maxED uint64, earlyExit bool) Certificate {
	s := len(m.support)
	total := uint64(1) << uint(s)
	totalWords := int((total + 63) / 64)
	blockWords := c.cfg.BlockWords
	if blockWords > totalWords {
		blockWords = totalWords
	}

	pats := &sim.Patterns{Words: blockWords, Valid: 64 * blockWords, In: make([][]uint64, c.nPIs)}
	zero := make([]uint64, blockWords)
	for i := range pats.In {
		pats.In[i] = zero
	}
	supWords := make([][]uint64, s)
	for j := range supWords {
		supWords[j] = make([]uint64, blockWords)
		pats.In[m.support[j]] = supWords[j]
	}
	// Support bits below 6 cycle inside every word with period 2^j.
	for j := 0; j < s && j < 6; j++ {
		var mask uint64
		for b := uint(0); b < 64; b++ {
			if b>>uint(j)&1 == 1 {
				mask |= 1 << b
			}
		}
		w := supWords[j]
		for i := range w {
			w[i] = mask
		}
	}

	cert := Certificate{Backend: BackendExhaustive, Threshold: maxED, SupportSize: s}
	var (
		bad      uint64 // patterns with any flipped output
		sumED    uint64
		bestED   uint64
		bestIdx  uint64
		maxFlips int
		valsO    [64]uint64
		valsA    [64]uint64
	)

	for base := 0; base < totalWords; base += blockWords {
		nw := blockWords
		if base+nw > totalWords {
			nw = totalWords - base
		}
		// Support bits ≥ 6 are constant within a word: bit j of the global
		// pattern index selects all-ones on words where it is set.
		for j := 6; j < s; j++ {
			w := supWords[j]
			for i := 0; i < nw; i++ {
				if (uint64(base+i)>>uint(j-6))&1 == 1 {
					w[i] = ^uint64(0)
				} else {
					w[i] = 0
				}
			}
		}
		vecs := sim.Simulate(m.g, pats)
		for w := 0; w < nw; w++ {
			transposeLits(vecs, m.origPOs, w, valsO[:])
			transposeLits(vecs, m.apprPOs, w, valsA[:])
			gbase := uint64(base+w) * 64
			hi := 64
			if rem := total - gbase; rem < 64 {
				hi = int(rem)
			}
			for b := 0; b < hi; b++ {
				vo, va := valsO[b], valsA[b]
				d := vo ^ va
				if d == 0 {
					continue
				}
				bad++
				if fl := bits.OnesCount64(d); fl > maxFlips {
					maxFlips = fl
				}
				var ed uint64
				if vo >= va {
					ed = vo - va
				} else {
					ed = va - vo
				}
				sumED += ed
				if ed > bestED {
					bestED, bestIdx = ed, gbase+uint64(b)
				}
				if earlyExit && ed > maxED {
					vecs.Release()
					cert.MaxED = ed
					cert.MaxErr = float64(ed) / c.maxVal
					cert.MaxFlips = maxFlips
					cert.Witness = c.witness(m.support, gbase+uint64(b))
					return cert
				}
			}
		}
		vecs.Release()
	}

	space := math.Ldexp(1, s) // 2^s, exact
	cert.OK = bestED <= maxED
	cert.MaxED = bestED
	cert.MaxErr = float64(bestED) / c.maxVal
	cert.ER = float64(bad) / space
	cert.NMED = float64(sumED) / space / c.maxVal
	cert.MaxFlips = maxFlips
	if !cert.OK {
		cert.Witness = c.witness(m.support, bestIdx)
	}
	return cert
}

// witness expands a support-space pattern index into a full primary-input
// assignment (non-support inputs false).
func (c *Checker) witness(support []int, idx uint64) []bool {
	w := make([]bool, c.nPIs)
	for j, pi := range support {
		w[pi] = idx>>uint(j)&1 == 1
	}
	return w
}

// transposeLits extracts the 64 per-pattern output values encoded in word
// index w of the PO literals: vals[b] has bit o equal to pattern b of
// pos[o]. The complement convention matches sim.Vectors.LitWords.
func transposeLits(v *sim.Vectors, pos []aig.Lit, w int, vals []uint64) {
	for b := range vals {
		vals[b] = 0
	}
	for o, po := range pos {
		ws, inv := v.LitWords(po)
		word := ws[w] ^ inv
		for ; word != 0; word &= word - 1 {
			vals[bits.TrailingZeros64(word)] |= 1 << uint(o)
		}
	}
}

// satCertify decides max ED > maxED with the CNF backend: the miter grows
// an |orig − approx| datapath and a greater-than-maxED comparator, the
// violation cone is Tseitin-encoded, and the CDCL solver of exact/sat
// decides it. UNSAT certifies the bound. A model is replayed through the
// simulator before it is believed.
func (c *Checker) satCertify(m *miter, maxED uint64) (Certificate, error) {
	cert := Certificate{Backend: BackendSAT, Threshold: maxED, SupportSize: len(m.support)}
	if maxED >= uint64(c.maxVal) {
		// No error distance can exceed 2^k − 1.
		cert.OK = true
		return cert, nil
	}
	viol := buildViolation(m, maxED)
	switch viol {
	case aig.LitFalse:
		cert.OK = true
		return cert, nil
	case aig.LitTrue:
		// Every input violates; replay the all-false pattern.
		return c.replay(m, cert, make([]bool, c.nPIs), maxED)
	}

	solver := sat.New()
	if c.cfg.SATConflictBudget > 0 {
		solver.SetConflictBudget(c.cfg.SATConflictBudget)
	}
	g := m.g
	cone := g.TFICone(viol.Node())
	varOf := make(map[aig.Node]sat.Var, len(cone))
	for _, n := range cone { // ascending id order: deterministic numbering
		varOf[n] = solver.NewVar()
	}
	toSAT := func(l aig.Lit) sat.Lit { return sat.MkLit(varOf[l.Node()], l.IsCompl()) }
	for _, n := range cone {
		if !g.IsAnd(n) {
			continue
		}
		vn := sat.MkLit(varOf[n], false)
		a, b := toSAT(g.Fanin0(n)), toSAT(g.Fanin1(n))
		solver.AddClause(vn.Not(), a)
		solver.AddClause(vn.Not(), b)
		solver.AddClause(vn, a.Not(), b.Not())
	}
	solver.AddClause(toSAT(viol))

	status := solver.Solve()
	cert.Conflicts = solver.Conflicts()
	switch status {
	case sat.Unsat:
		cert.OK = true
		return cert, nil
	case sat.Unknown:
		return cert, fmt.Errorf("%w (after %d conflicts)", ErrBudget, cert.Conflicts)
	}
	witness := make([]bool, c.nPIs)
	for i := 0; i < c.nPIs; i++ {
		if v, ok := varOf[m.g.PI(i)]; ok {
			witness[i] = solver.Value(v)
		}
	}
	return c.replay(m, cert, witness, maxED)
}

// replay simulates the witness input through the miter and confirms its
// error distance exceeds maxED; a witness that does not replay is an
// internal inconsistency and is reported as an error, never as a verdict.
func (c *Checker) replay(m *miter, cert Certificate, witness []bool, maxED uint64) (Certificate, error) {
	pats := &sim.Patterns{Words: 1, Valid: 1, In: make([][]uint64, c.nPIs)}
	for i := range pats.In {
		w := make([]uint64, 1)
		if witness[i] {
			w[0] = 1
		}
		pats.In[i] = w
	}
	vecs := sim.Simulate(m.g, pats)
	var vo, va uint64
	for o := 0; o < c.nPOs; o++ {
		if vecs.LitBit(m.origPOs[o], 0) {
			vo |= 1 << uint(o)
		}
		if vecs.LitBit(m.apprPOs[o], 0) {
			va |= 1 << uint(o)
		}
	}
	vecs.Release()
	var ed uint64
	if vo >= va {
		ed = vo - va
	} else {
		ed = va - vo
	}
	if ed <= maxED {
		return cert, fmt.Errorf("exact: SAT witness does not replay: ED %d ≤ threshold %d", ed, maxED)
	}
	cert.OK = false
	cert.MaxED = ed
	cert.MaxErr = float64(ed) / c.maxVal
	cert.Witness = witness
	return cert, nil
}

// buildViolation grows |A − B| > T inside the miter graph and returns the
// violation literal. A and B are the original and approximate output
// vectors read as unsigned integers; the datapath is a (k+1)-bit
// two's-complement subtraction in both directions, a sign-selected
// absolute value, and an MSB-first greater-than-constant comparator.
func buildViolation(m *miter, t uint64) aig.Lit {
	g := m.g
	k := len(m.origPOs)
	width := k + 1
	sub := func(a, b []aig.Lit) []aig.Lit {
		// a − b = a + ^b + 1 over width bits, zero-extended operands.
		d := make([]aig.Lit, width)
		carry := aig.LitTrue
		for i := 0; i < width; i++ {
			ai, bi := aig.LitFalse, aig.LitTrue // zero-extension: ^0 = 1
			if i < k {
				ai, bi = a[i], b[i].Not()
			}
			axb := g.Xor(ai, bi)
			d[i] = g.Xor(axb, carry)
			carry = g.Or(g.And(ai, bi), g.And(carry, axb))
		}
		return d
	}
	ab := sub(m.origPOs, m.apprPOs)
	ba := sub(m.apprPOs, m.origPOs)
	sign := ab[width-1] // 1 iff A < B, then |A−B| = B−A
	abs := make([]aig.Lit, width)
	for i := range abs {
		abs[i] = g.Mux(sign, ba[i], ab[i])
	}
	gt, eq := aig.LitFalse, aig.LitTrue
	for i := width - 1; i >= 0; i-- {
		bit := abs[i]
		if t>>uint(i)&1 == 1 {
			eq = g.And(eq, bit)
		} else {
			gt = g.Or(gt, g.And(eq, bit))
			eq = g.And(eq, bit.Not())
		}
	}
	return gt
}
