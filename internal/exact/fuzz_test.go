package exact

import (
	"math/rand"
	"testing"
)

// FuzzMiterSAT is the PR's fuzz satellite: on random small AIG pairs and
// random thresholds, the CDCL backend's verdict must equal the exhaustive
// evaluator's, and every SAT model must replay to an input pattern whose
// error distance actually exceeds the threshold. The instance is derived
// deterministically from the fuzzed scalars, so every crash reproduces.
func FuzzMiterSAT(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(12), uint64(0))
	f.Add(int64(2), uint8(6), uint8(5), uint8(30), uint64(3))
	f.Add(int64(3), uint8(2), uint8(1), uint8(4), uint64(1))
	f.Add(int64(99), uint8(8), uint8(6), uint8(40), uint64(17))
	f.Fuzz(func(t *testing.T, seed int64, nPIsRaw, nPOsRaw, nAndsRaw uint8, threshold uint64) {
		nPIs := 1 + int(nPIsRaw%8) // 1..8
		nPOs := 1 + int(nPOsRaw%6) // 1..6
		nAnds := 1 + int(nAndsRaw%48)
		rng := rand.New(rand.NewSource(seed))
		orig := randGraph(rng, nPIs, nPOs, nAnds)
		appr := mutate(orig, rng)
		maxVal := uint64(1)<<uint(nPOs) - 1
		T := threshold % (maxVal + 2) // include the clamp region

		exh, err := New(orig, Config{MaxExhaustivePIs: 30, BlockWords: 2})
		if err != nil {
			t.Fatal(err)
		}
		forced, err := New(orig, Config{MaxExhaustivePIs: -1})
		if err != nil {
			t.Fatal(err)
		}
		ce, err := exh.CertifyED(appr, T)
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		cs, err := forced.CertifyED(appr, T)
		if err != nil {
			t.Fatalf("sat: %v", err)
		}
		if ce.OK != cs.OK {
			t.Fatalf("verdicts disagree at T=%d: exhaustive %v (maxED %d), sat %v",
				T, ce.OK, ce.MaxED, cs.OK)
		}
		maxED, _, _, _ := bruteMeasure(orig, appr)
		if want := maxED <= T; ce.OK != want {
			t.Fatalf("verdict %v at T=%d, brute-force max ED %d", ce.OK, T, maxED)
		}
		for _, cert := range []Certificate{ce, cs} {
			if cert.OK {
				continue
			}
			if len(cert.Witness) != nPIs {
				t.Fatalf("%s witness length %d, want %d", cert.Backend, len(cert.Witness), nPIs)
			}
			if ed := edAt(orig, appr, cert.Witness); ed <= T {
				t.Fatalf("%s witness ED %d ≤ threshold %d", cert.Backend, ed, T)
			}
		}
	})
}
