// Package tt implements bit-parallel truth tables over up to 16 variables,
// together with sum-of-products covers and irredundant SOP (ISOP)
// computation in the style of Minato–Morreale.
//
// A truth table over n variables stores 2^n function values packed into
// 64-bit words. Variable 0 is the fastest-toggling input (minterm bit 0).
// Truth tables are the working representation for resubstitution functions,
// cut functions during rewriting and mapping, and the input to the two-level
// minimizer in package espresso.
package tt

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the largest supported number of variables.
const MaxVars = 16

// varMasks[v] is the repeating word pattern of variable v for v < 6.
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// Table is a truth table over a fixed number of variables.
type Table struct {
	nVars int
	w     []uint64
}

// WordCount returns the number of 64-bit words needed for n variables.
func WordCount(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// New returns the constant-0 table over n variables (0 ≤ n ≤ MaxVars).
func New(n int) Table {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("tt: unsupported variable count %d", n))
	}
	return Table{nVars: n, w: make([]uint64, WordCount(n))}
}

// Ones returns the constant-1 table over n variables.
func Ones(n int) Table {
	t := New(n)
	for i := range t.w {
		t.w[i] = ^uint64(0)
	}
	t.trim()
	return t
}

// Var returns the table of input variable v over n variables.
func Var(n, v int) Table {
	if v < 0 || v >= n {
		panic(fmt.Sprintf("tt: variable %d out of range for %d vars", v, n))
	}
	t := New(n)
	if v < 6 {
		for i := range t.w {
			t.w[i] = varMasks[v]
		}
	} else {
		block := 1 << (v - 6)
		for i := range t.w {
			if i&block != 0 {
				t.w[i] = ^uint64(0)
			}
		}
	}
	t.trim()
	return t
}

// FromBits builds a table over n variables from the low 2^n bits of bits
// (n ≤ 6).
func FromBits(n int, b uint64) Table {
	if n > 6 {
		panic("tt: FromBits supports at most 6 variables")
	}
	t := New(n)
	t.w[0] = b
	t.trim()
	return t
}

// FromOnCare builds the onset and don't-care tables of a sampled
// incompletely specified function over n ≤ 6 variables from packed minterm
// masks: bit m of on (resp. care) tells whether minterm m was observed with
// function value 1 (resp. observed at all). The don't-care table is the
// complement of the care set. This is the hand-off point from word-parallel
// care-set construction (wordops.CoverScan) to two-level minimization.
func FromOnCare(n int, on, care uint64) (onset, dc Table) {
	return FromBits(n, on), FromBits(n, ^care)
}

// trim clears the unused high bits of the last word when nVars < 6.
func (t *Table) trim() {
	if t.nVars < 6 {
		t.w[0] &= (uint64(1) << (1 << t.nVars)) - 1
	}
}

// NumVars returns the number of variables.
func (t Table) NumVars() int { return t.nVars }

// NumBits returns the number of minterms (2^n).
func (t Table) NumBits() int { return 1 << t.nVars }

// Words exposes the backing words (shared, not a copy).
func (t Table) Words() []uint64 { return t.w }

// Clone returns an independent copy.
func (t Table) Clone() Table {
	return Table{nVars: t.nVars, w: append([]uint64(nil), t.w...)}
}

// Get returns the function value for minterm m.
func (t Table) Get(m int) bool { return t.w[m>>6]>>(uint(m)&63)&1 == 1 }

// Set assigns the function value for minterm m.
func (t *Table) Set(m int, v bool) {
	if v {
		t.w[m>>6] |= 1 << (uint(m) & 63)
	} else {
		t.w[m>>6] &^= 1 << (uint(m) & 63)
	}
}

func (t Table) check(o Table) {
	if t.nVars != o.nVars {
		panic("tt: mixing tables of different arity")
	}
}

// And returns t ∧ o.
func (t Table) And(o Table) Table {
	t.check(o)
	r := New(t.nVars)
	for i := range r.w {
		r.w[i] = t.w[i] & o.w[i]
	}
	return r
}

// AndNot returns t ∧ ¬o.
func (t Table) AndNot(o Table) Table {
	t.check(o)
	r := New(t.nVars)
	for i := range r.w {
		r.w[i] = t.w[i] &^ o.w[i]
	}
	return r
}

// Or returns t ∨ o.
func (t Table) Or(o Table) Table {
	t.check(o)
	r := New(t.nVars)
	for i := range r.w {
		r.w[i] = t.w[i] | o.w[i]
	}
	return r
}

// Xor returns t ⊕ o.
func (t Table) Xor(o Table) Table {
	t.check(o)
	r := New(t.nVars)
	for i := range r.w {
		r.w[i] = t.w[i] ^ o.w[i]
	}
	return r
}

// Not returns ¬t.
func (t Table) Not() Table {
	r := New(t.nVars)
	for i := range r.w {
		r.w[i] = ^t.w[i]
	}
	r.trim()
	return r
}

// Equal reports whether the two tables denote the same function.
func (t Table) Equal(o Table) bool {
	t.check(o)
	for i := range t.w {
		if t.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// IsConst0 reports whether the function is identically false.
func (t Table) IsConst0() bool {
	for _, w := range t.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// IsConst1 reports whether the function is identically true.
func (t Table) IsConst1() bool { return t.Not().IsConst0() }

// CountOnes returns the number of minterms on which the function is true.
func (t Table) CountOnes() int {
	c := 0
	for _, w := range t.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// Cofactor returns the cofactor of t with variable v fixed to val. The
// result is still expressed over the same n variables (v becomes don't-care).
func (t Table) Cofactor(v int, val bool) Table {
	r := t.Clone()
	if v < 6 {
		shift := uint(1) << v
		m := varMasks[v]
		for i := range r.w {
			if val {
				hi := r.w[i] & m
				r.w[i] = hi | hi>>shift
			} else {
				lo := r.w[i] &^ m
				r.w[i] = lo | lo<<shift
			}
		}
		return r
	}
	block := 1 << (v - 6)
	for i := 0; i < len(r.w); i += 2 * block {
		for j := 0; j < block; j++ {
			if val {
				r.w[i+j] = r.w[i+block+j]
			} else {
				r.w[i+block+j] = r.w[i+j]
			}
		}
	}
	return r
}

// DependsOn reports whether the function depends on variable v.
func (t Table) DependsOn(v int) bool {
	return !t.Cofactor(v, false).Equal(t.Cofactor(v, true))
}

// SupportSize returns the number of variables the function depends on.
func (t Table) SupportSize() int {
	n := 0
	for v := 0; v < t.nVars; v++ {
		if t.DependsOn(v) {
			n++
		}
	}
	return n
}

// String renders the table as a hex string, most significant word first.
func (t Table) String() string {
	var sb strings.Builder
	for i := len(t.w) - 1; i >= 0; i-- {
		digits := 16
		if t.nVars < 6 && i == 0 {
			digits = max(1, (1<<t.nVars)/4)
		}
		fmt.Fprintf(&sb, "%0*x", digits, t.w[i])
	}
	return sb.String()
}
