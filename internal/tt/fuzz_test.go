package tt

import "testing"

// FuzzISOP feeds arbitrary sampled incompletely specified functions (onset
// and care masks over up to 6 variables) to the ISOP generator and checks
// the two-level contract: the cover contains the whole onset and never
// touches the offset, i.e. onset ⊆ cover ⊆ onset ∪ dc.
func FuzzISOP(f *testing.F) {
	f.Add(uint8(3), uint64(0b1010_0101), ^uint64(0))
	f.Add(uint8(6), uint64(0xDEADBEEF_01234567), uint64(0xFFFF0000_FFFF0000))
	f.Add(uint8(1), uint64(0b01), uint64(0b11))
	f.Add(uint8(4), uint64(0), uint64(0))

	f.Fuzz(func(t *testing.T, nRaw uint8, on, care uint64) {
		n := 1 + int(nRaw)%6
		mask := uint64(1)<<(1<<uint(n)) - 1
		care &= mask
		on &= care // a minterm observed as 1 is by definition in the care set

		onset, dc := FromOnCare(n, on, care)
		cover := ISOP(onset, dc)
		checkCoverContract(t, n, cover, onset, dc)
	})
}

// checkCoverContract fails the test when a two-level cover violates
// onset ⊆ cover ⊆ onset ∪ dc. Shared with the espresso fuzz target's
// mirror-image check via copy — the packages must not import each other's
// test internals.
func checkCoverContract(t *testing.T, n int, cover Cover, onset, dc Table) {
	t.Helper()
	tbl := cover.Table(n)
	if missed := onset.AndNot(tbl); !missed.IsConst0() {
		t.Fatalf("cover %v misses onset minterms %v", cover, missed)
	}
	if hit := tbl.AndNot(onset.Or(dc)); !hit.IsConst0() {
		t.Fatalf("cover %v intersects the offset at %v", cover, hit)
	}
}
