package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordCount(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 6: 1, 7: 2, 8: 4, 10: 16, 16: 1024}
	for n, want := range cases {
		if got := WordCount(n); got != want {
			t.Errorf("WordCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestVarTables(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for v := 0; v < n; v++ {
			tab := Var(n, v)
			for m := 0; m < 1<<n; m++ {
				want := m>>v&1 == 1
				if tab.Get(m) != want {
					t.Fatalf("Var(%d,%d).Get(%d) = %v, want %v", n, v, m, tab.Get(m), want)
				}
			}
		}
	}
}

func TestConstTables(t *testing.T) {
	for n := 0; n <= 8; n++ {
		if !New(n).IsConst0() {
			t.Errorf("New(%d) not const0", n)
		}
		if !Ones(n).IsConst1() {
			t.Errorf("Ones(%d) not const1", n)
		}
		if Ones(n).CountOnes() != 1<<n {
			t.Errorf("Ones(%d) has %d ones", n, Ones(n).CountOnes())
		}
	}
}

func TestBooleanOps(t *testing.T) {
	const n = 7
	a, b := Var(n, 2), Var(n, 6)
	if got := a.And(b).CountOnes(); got != 1<<(n-2) {
		t.Errorf("And count = %d", got)
	}
	if got := a.Or(b).CountOnes(); got != 3<<(n-2) {
		t.Errorf("Or count = %d", got)
	}
	if got := a.Xor(b).CountOnes(); got != 1<<(n-1) {
		t.Errorf("Xor count = %d", got)
	}
	if !a.AndNot(b).Equal(a.And(b.Not())) {
		t.Errorf("AndNot mismatch")
	}
	if !a.Not().Not().Equal(a) {
		t.Errorf("double negation is not identity")
	}
}

func TestSetGet(t *testing.T) {
	tab := New(8)
	tab.Set(100, true)
	tab.Set(255, true)
	if !tab.Get(100) || !tab.Get(255) || tab.Get(99) {
		t.Fatalf("Set/Get inconsistent")
	}
	tab.Set(100, false)
	if tab.Get(100) {
		t.Fatalf("clearing failed")
	}
	if tab.CountOnes() != 1 {
		t.Fatalf("count = %d, want 1", tab.CountOnes())
	}
}

func TestCofactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{3, 6, 7, 9} {
		tab := randomTable(rng, n)
		for v := 0; v < n; v++ {
			c0 := tab.Cofactor(v, false)
			c1 := tab.Cofactor(v, true)
			for m := 0; m < 1<<n; m++ {
				m0 := m &^ (1 << v)
				m1 := m | 1<<v
				if c0.Get(m) != tab.Get(m0) {
					t.Fatalf("n=%d v=%d cofactor0 wrong at %d", n, v, m)
				}
				if c1.Get(m) != tab.Get(m1) {
					t.Fatalf("n=%d v=%d cofactor1 wrong at %d", n, v, m)
				}
			}
			if c0.DependsOn(v) || c1.DependsOn(v) {
				t.Fatalf("cofactor still depends on %d", v)
			}
		}
	}
}

func TestDependsOn(t *testing.T) {
	n := 8
	f := Var(n, 1).Xor(Var(n, 7))
	for v := 0; v < n; v++ {
		want := v == 1 || v == 7
		if f.DependsOn(v) != want {
			t.Errorf("DependsOn(%d) = %v", v, f.DependsOn(v))
		}
	}
	if f.SupportSize() != 2 {
		t.Errorf("SupportSize = %d", f.SupportSize())
	}
}

func randomTable(rng *rand.Rand, n int) Table {
	tab := New(n)
	for i := range tab.w {
		tab.w[i] = rng.Uint64()
	}
	tab.trim()
	return tab
}

// Property: De Morgan's law holds for random tables.
func TestDeMorganProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		a, b := randomTable(r, n), randomTable(r, n)
		return a.And(b).Not().Equal(a.Not().Or(b.Not()))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Shannon expansion reconstructs the function.
func TestShannonExpansionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		tab := randomTable(r, n)
		v := r.Intn(n)
		x := Var(n, v)
		rebuilt := x.And(tab.Cofactor(v, true)).Or(x.Not().And(tab.Cofactor(v, false)))
		return rebuilt.Equal(tab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := FromBits(2, 0b0110) // XOR
	if f.String() != "6" {
		t.Errorf("xor2 string = %q, want 6", f.String())
	}
	g := FromBits(4, 0x6996)
	if g.String() != "6996" {
		t.Errorf("xor4 string = %q", g.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Var(6, 2)
	b := a.Clone()
	b.Set(0, !b.Get(0))
	if a.Get(0) == b.Get(0) {
		t.Fatalf("Clone shares storage")
	}
	if a.Words()[0] == b.Words()[0] {
		t.Fatalf("Clone did not copy words")
	}
}

func TestNumBits(t *testing.T) {
	if New(0).NumBits() != 1 || New(5).NumBits() != 32 || New(10).NumBits() != 1024 {
		t.Fatalf("NumBits wrong")
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for 17 variables")
		}
	}()
	New(17)
}

func TestVarPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for var out of range")
		}
	}()
	Var(3, 3)
}
