package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestISOPCompletelySpecified(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 20; trial++ {
			on := randomTable(rng, n)
			cov := ISOP(on, New(n))
			if !cov.Table(n).Equal(on) {
				t.Fatalf("n=%d trial=%d: cover %v does not equal function", n, trial, cov)
			}
		}
	}
}

func TestISOPRespectsInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a, b := randomTable(rng, n), randomTable(rng, n)
		on := a.AndNot(b)
		dc := a.And(b)
		cov := ISOP(on, dc)
		f := cov.Table(n)
		// on ⊆ f
		if !on.AndNot(f).IsConst0() {
			t.Fatalf("trial %d: cover misses onset", trial)
		}
		// f ⊆ on ∪ dc
		if !f.AndNot(on.Or(dc)).IsConst0() {
			t.Fatalf("trial %d: cover overlaps offset", trial)
		}
	}
}

func TestISOPIsIrredundant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		on := randomTable(rng, n)
		dc := randomTable(rng, n).AndNot(on)
		cov := ISOP(on, dc)
		// Dropping any single cube must uncover part of the onset.
		for i := range cov {
			reduced := make(Cover, 0, len(cov)-1)
			reduced = append(reduced, cov[:i]...)
			reduced = append(reduced, cov[i+1:]...)
			if on.AndNot(reduced.Table(n)).IsConst0() {
				t.Fatalf("trial %d: cube %d (%v) is redundant in %v", trial, i, cov[i], cov)
			}
		}
	}
}

func TestISOPCubesArePrime(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		on := randomTable(rng, n)
		dc := randomTable(rng, n).AndNot(on)
		upper := on.Or(dc)
		cov := ISOP(on, dc)
		for _, c := range cov {
			// Removing any literal must leave the interval.
			for v := 0; v < n; v++ {
				bit := uint32(1) << uint(v)
				if c.Pos&bit == 0 && c.Neg&bit == 0 {
					continue
				}
				enlarged := c
				enlarged.Pos &^= bit
				enlarged.Neg &^= bit
				if enlarged.Table(n).AndNot(upper).IsConst0() {
					t.Fatalf("trial %d: cube %v is not prime (literal %d removable)", trial, c, v)
				}
			}
		}
	}
}

func TestISOPConstants(t *testing.T) {
	n := 4
	if cov := ISOP(New(n), New(n)); len(cov) != 0 {
		t.Errorf("ISOP(0) = %v, want empty", cov)
	}
	cov := ISOP(Ones(n), New(n))
	if len(cov) != 1 || cov[0].NumLits() != 0 {
		t.Errorf("ISOP(1) = %v, want tautology cube", cov)
	}
	// Onset empty but DC full: the empty cover is a fine choice.
	cov = ISOP(New(n), Ones(n))
	if len(cov) != 0 {
		t.Errorf("ISOP(0,dc=1) = %v, want empty", cov)
	}
}

func TestISOPPaperExample(t *testing.T) {
	// Table II of the ALSRAC paper: inputs u,z; output v̂ with
	// v̂(00)=1, v̂(01)=0, v̂(10)=0, v̂(11)=don't-care.
	// Expected ISOP: ¬u ∧ ¬z (a single NOR cube).
	on := New(2)
	on.Set(0b00, true)
	dc := New(2)
	dc.Set(0b11, true)
	cov := ISOP(on, dc)
	if len(cov) != 1 {
		t.Fatalf("cover = %v, want single cube", cov)
	}
	c := cov[0]
	if c.Pos != 0 || c.Neg != 0b11 {
		t.Fatalf("cube = %v, want u'z' (Pos=0 Neg=3)", c)
	}
}

func TestISOPXor(t *testing.T) {
	n := 3
	f := Var(n, 0).Xor(Var(n, 1)).Xor(Var(n, 2))
	cov := ISOP(f, New(n))
	if len(cov) != 4 {
		t.Fatalf("xor3 ISOP has %d cubes, want 4", len(cov))
	}
	for _, c := range cov {
		if c.NumLits() != 3 {
			t.Fatalf("xor3 cube %v has %d literals", c, c.NumLits())
		}
	}
}

func TestISOPOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for overlapping on/dc")
		}
	}()
	on := Ones(2)
	dc := Ones(2)
	ISOP(on, dc)
}

// Property: the ISOP of a randomly generated interval is always within the
// interval and covers the onset (compact restatement used by quick.Check).
func TestISOPIntervalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		on := randomTable(r, n)
		dc := randomTable(r, n).AndNot(on)
		cov := ISOP(on, dc)
		ft := cov.Table(n)
		return on.AndNot(ft).IsConst0() && ft.AndNot(on.Or(dc)).IsConst0()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCubeBasics(t *testing.T) {
	c := Cube{}.WithPos(0).WithNeg(2)
	if c.NumLits() != 2 {
		t.Errorf("NumLits = %d", c.NumLits())
	}
	if !c.HasVar(0) || c.HasVar(1) || !c.HasVar(2) {
		t.Errorf("HasVar wrong")
	}
	if c.String() != "ac'" {
		t.Errorf("String = %q", c.String())
	}
	if !c.EvalMinterm(0b001) || c.EvalMinterm(0b101) || c.EvalMinterm(0b000) {
		t.Errorf("EvalMinterm wrong")
	}
	taut := Cube{}
	if !taut.Contains(c) || c.Contains(taut) {
		t.Errorf("Contains wrong")
	}
}

func TestCoverEvalWords(t *testing.T) {
	// f = ab' + c over 3 vars, evaluated bit-parallel on random words.
	cov := Cover{
		Cube{}.WithPos(0).WithNeg(1),
		Cube{}.WithPos(2),
	}
	rng := rand.New(rand.NewSource(3))
	const W = 4
	ins := make([][]uint64, 3)
	for v := range ins {
		ins[v] = make([]uint64, W)
		for i := range ins[v] {
			ins[v][i] = rng.Uint64()
		}
	}
	out := make([]uint64, W)
	cov.EvalWords(ins, W, out)
	for i := 0; i < W; i++ {
		want := (ins[0][i] &^ ins[1][i]) | ins[2][i]
		if out[i] != want {
			t.Fatalf("word %d: got %x want %x", i, out[i], want)
		}
	}
}

func TestCoverString(t *testing.T) {
	if (Cover{}).String() != "0" {
		t.Errorf("empty cover string")
	}
	cov := Cover{Cube{}.WithPos(0), Cube{}.WithNeg(1)}
	if cov.String() != "a + b'" {
		t.Errorf("cover string = %q", cov.String())
	}
}
