package tt

// ISOP computes an irredundant sum-of-products for an incompletely
// specified function using the Minato–Morreale procedure. The function is
// given as an interval: on is the onset (must be covered) and dc the
// don't-care set (may be covered). on and dc must be disjoint tables over
// the same variables.
//
// The returned cover F satisfies on ⊆ F ⊆ on ∪ dc, every cube of F is a
// prime implicant of the interval, and no cube can be dropped without
// uncovering part of the onset.
func ISOP(on, dc Table) Cover {
	on.check(dc)
	if !on.And(dc).IsConst0() {
		panic("tt: ISOP onset and don't-care set overlap")
	}
	cov, _ := isop(on, on.Or(dc), on.NumVars()-1)
	return cov
}

// isop implements the recursion on the interval [lower, upper]; v is the
// highest variable index that may still appear in cubes. It returns the
// cover and the exact table of the cover.
func isop(lower, upper Table, v int) (Cover, Table) {
	n := lower.NumVars()
	if lower.IsConst0() {
		return nil, New(n)
	}
	if upper.IsConst1() {
		return Cover{{}}, Ones(n)
	}
	// Find the top variable on which either bound depends.
	for v >= 0 && !lower.DependsOn(v) && !upper.DependsOn(v) {
		v--
	}
	if v < 0 {
		// lower is not 0 and upper is not 1, yet neither depends on any
		// variable: impossible for a consistent interval.
		panic("tt: inconsistent ISOP interval")
	}

	l0 := lower.Cofactor(v, false)
	l1 := lower.Cofactor(v, true)
	u0 := upper.Cofactor(v, false)
	u1 := upper.Cofactor(v, true)

	// Cubes that must contain ¬v: onset part in the v=0 half that the v=1
	// half's upper bound cannot absorb.
	c0, t0 := isop(l0.AndNot(u1), u0, v-1)
	// Cubes that must contain v.
	c1, t1 := isop(l1.AndNot(u0), u1, v-1)
	// Remaining onset, coverable without v.
	lnew := l0.AndNot(t0).Or(l1.AndNot(t1))
	cs, ts := isop(lnew, u0.And(u1), v-1)

	cover := make(Cover, 0, len(c0)+len(c1)+len(cs))
	for _, c := range c0 {
		cover = append(cover, c.WithNeg(v))
	}
	for _, c := range c1 {
		cover = append(cover, c.WithPos(v))
	}
	cover = append(cover, cs...)

	varT := Var(n, v)
	table := varT.Not().And(t0).Or(varT.And(t1)).Or(ts)
	return cover, table
}
