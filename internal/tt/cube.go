package tt

import (
	"math/bits"
	"strings"
)

// Cube is a product term over up to MaxVars variables, stored as two
// bitmasks: Pos has bit v set when the cube contains the positive literal of
// variable v, Neg when it contains the negative literal. A variable absent
// from both masks is unconstrained. The empty cube is the tautology.
type Cube struct {
	Pos uint32
	Neg uint32
}

// NumLits returns the number of literals in the cube.
func (c Cube) NumLits() int {
	n := 0
	for m := c.Pos | c.Neg; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// HasVar reports whether variable v appears (in either phase) in the cube.
func (c Cube) HasVar(v int) bool { return (c.Pos|c.Neg)>>uint(v)&1 == 1 }

// WithPos returns the cube extended with the positive literal of v.
func (c Cube) WithPos(v int) Cube { c.Pos |= 1 << uint(v); return c }

// WithNeg returns the cube extended with the negative literal of v.
func (c Cube) WithNeg(v int) Cube { c.Neg |= 1 << uint(v); return c }

// Contains reports whether c contains d's cube space, i.e. every minterm of
// d is a minterm of c. This holds exactly when c's literal set is a subset
// of d's.
func (c Cube) Contains(d Cube) bool {
	return c.Pos&^d.Pos == 0 && c.Neg&^d.Neg == 0
}

// EvalMinterm reports whether the cube covers minterm m (bit v of m is the
// value of variable v).
func (c Cube) EvalMinterm(m int) bool {
	um := uint32(m)
	return c.Pos&^um == 0 && c.Neg&um == 0
}

// Table expands the cube into a truth table over n variables.
func (c Cube) Table(n int) Table {
	t := Ones(n)
	for v := 0; v < n; v++ {
		bit := uint32(1) << uint(v)
		if c.Pos&bit != 0 {
			t = t.And(Var(n, v))
		}
		if c.Neg&bit != 0 {
			t = t.And(Var(n, v).Not())
		}
	}
	return t
}

// String renders the cube with letters a,b,c,... and ' for complement, or
// "1" for the tautology cube.
func (c Cube) String() string {
	if c.Pos == 0 && c.Neg == 0 {
		return "1"
	}
	var sb strings.Builder
	for v := 0; v < 32; v++ {
		bit := uint32(1) << uint(v)
		if c.Pos&bit != 0 {
			sb.WriteByte(byte('a' + v))
		}
		if c.Neg&bit != 0 {
			sb.WriteByte(byte('a' + v))
			sb.WriteByte('\'')
		}
	}
	return sb.String()
}

// Cover is a sum of cubes.
type Cover []Cube

// Table expands the cover into a truth table over n variables.
func (cv Cover) Table(n int) Table {
	t := New(n)
	for _, c := range cv {
		t = t.Or(c.Table(n))
	}
	return t
}

// NumLits returns the total literal count of the cover.
func (cv Cover) NumLits() int {
	n := 0
	for _, c := range cv {
		n += c.NumLits()
	}
	return n
}

// String renders the cover as a sum of products, or "0" when empty.
func (cv Cover) String() string {
	if len(cv) == 0 {
		return "0"
	}
	parts := make([]string, len(cv))
	for i, c := range cv {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}

// EvalWords evaluates the cover bit-parallel over variable value words:
// ins[v] holds 64 assignments of variable v per word. The result has the
// same word count as the inputs. nWords is the number of words per input.
func (cv Cover) EvalWords(ins [][]uint64, nWords int, out []uint64) {
	for i := 0; i < nWords; i++ {
		out[i] = 0
	}
	for _, c := range cv {
		for i := 0; i < nWords; i++ {
			w := ^uint64(0)
			for m := c.Pos; m != 0; m &= m - 1 {
				w &= ins[bits.TrailingZeros32(m)][i]
			}
			for m := c.Neg; m != 0; m &= m - 1 {
				w &= ^ins[bits.TrailingZeros32(m)][i]
			}
			out[i] |= w
		}
	}
}
