package errest

import (
	"repro/internal/aig"
	"repro/internal/sim"
)

// Batch ranks candidate local approximate changes at single nodes using the
// batch estimation idea of Su et al. (DAC 2018): for a node v, the circuit
// is re-simulated ONCE with v's value vector complemented, which yields for
// every primary output the exact words Y' the circuit produces on the
// patterns where v flips. Any candidate that replaces v's vector by ṽ then
// costs only O(words·POs): on the patterns where ṽ differs from v the
// outputs take their flipped values Y', elsewhere the current values Y.
// This is exact — bit-parallel pattern independence means complementing the
// whole vector evaluates the single-pattern flip for all patterns at once,
// reconvergence included — and matches the accuracy of per-candidate
// resimulation, as the paper notes.
type Batch struct {
	Eval *Evaluator

	g     *aig.Graph
	vecs  *sim.Vectors
	resim *sim.Resimulator

	cur     [][]uint64 // current circuit PO words Y
	flipped [][]uint64 // PO words Y' with the prepared node complemented
	scratch [][]uint64 // candidate PO words Ŷ
	flipBuf []uint64

	prepared aig.Node
}

// NewBatch simulates the current circuit g on patterns p and prepares batch
// estimation against the given evaluator (whose golden values come from the
// original circuit).
func NewBatch(ev *Evaluator, g *aig.Graph, p *sim.Patterns) *Batch {
	vecs := sim.Simulate(g, p)
	b := &Batch{
		Eval:     ev,
		g:        g,
		vecs:     vecs,
		resim:    sim.NewResimulator(g, vecs),
		cur:      sim.POWords(g, vecs),
		flipped:  allocPO(g.NumPOs(), p.Words),
		scratch:  allocPO(g.NumPOs(), p.Words),
		flipBuf:  make([]uint64, p.Words),
		prepared: -1,
	}
	return b
}

func allocPO(n, words int) [][]uint64 {
	out := make([][]uint64, n)
	for i := range out {
		out[i] = make([]uint64, words)
	}
	return out
}

// Vectors returns the node value vectors of the current circuit on the
// evaluation patterns.
func (b *Batch) Vectors() *sim.Vectors { return b.vecs }

// CurrentError returns the error of the current circuit (before any
// candidate is applied).
func (b *Batch) CurrentError() float64 { return b.Eval.EvalPOWords(b.cur) }

// Prepare computes the flipped output words Y' for node n. It must be
// called before EvalCandidate for candidates at n.
func (b *Batch) Prepare(n aig.Node) {
	base := b.vecs.Node(n)
	for i, w := range base {
		b.flipBuf[i] = ^w
	}
	b.resim.Resimulate(n, b.flipBuf)
	b.resim.POWordsInto(b.flipped)
	b.prepared = n
}

// EvalCandidate returns the circuit error that would result from replacing
// the prepared node's value vector by newVec.
func (b *Batch) EvalCandidate(n aig.Node, newVec []uint64) float64 {
	if n != b.prepared {
		panic("errest: EvalCandidate called without Prepare")
	}
	old := b.vecs.Node(n)
	for o := range b.scratch {
		y := b.cur[o]
		yf := b.flipped[o]
		dst := b.scratch[o]
		for w := range dst {
			c := old[w] ^ newVec[w]
			dst[w] = y[w]&^c | yf[w]&c
		}
	}
	return b.Eval.EvalPOWords(b.scratch)
}
