package errest

import (
	"math"

	"repro/internal/aig"
	"repro/internal/sim"
	"repro/internal/wordops"
)

// Batch ranks candidate local approximate changes at single nodes using the
// batch estimation idea of Su et al. (DAC 2018): for a node v, the circuit
// is re-simulated ONCE with v's value vector complemented, which yields for
// every primary output the exact words Y' the circuit produces on the
// patterns where v flips. Any candidate that replaces v's vector by ṽ then
// costs only O(words·POs): on the patterns where ṽ differs from v the
// outputs take their flipped values Y', elsewhere the current values Y.
// This is exact — bit-parallel pattern independence means complementing the
// whole vector evaluates the single-pattern flip for all patterns at once,
// reconvergence included — and matches the accuracy of per-candidate
// resimulation, as the paper notes.
//
// A Batch is confined to one goroutine, but Fork returns additional views
// that share the (read-only) base simulation while owning their own
// re-simulation state, so disjoint candidate subsets can be ranked
// concurrently.
type Batch struct {
	Eval *Evaluator

	g     *aig.Graph
	vecs  *sim.Vectors
	resim *sim.Resimulator

	cur      [][]uint64 // current circuit PO words Y (read-only after construction)
	curFlat  []uint64   // backing of cur, one pooled block
	flipped  [][]uint64 // PO words Y' with the prepared node complemented
	flipFlat []uint64   // backing of flipped
	flipBuf  []uint64

	prepared aig.Node
	isFork   bool
	borrowed bool // vecs owned by the caller, not released here
}

// NewBatch simulates the current circuit g on patterns p and prepares batch
// estimation against the given evaluator (whose golden values come from the
// original circuit).
func NewBatch(ev *Evaluator, g *aig.Graph, p *sim.Patterns) *Batch {
	return NewBatchWorkers(ev, g, p, 1)
}

// NewBatchWorkers is NewBatch with the base simulation sharded over the
// given number of worker goroutines (0 = GOMAXPROCS).
func NewBatchWorkers(ev *Evaluator, g *aig.Graph, p *sim.Patterns, workers int) *Batch {
	return newBatch(ev, g, sim.SimulateWorkers(g, p, workers), false)
}

// NewBatchVecs prepares batch estimation on top of an existing simulation
// of g — typically a persistent sim.Arena kept incrementally up to date
// across flow iterations, which turns the full-circuit resimulation that
// NewBatchWorkers performs on every ranking round into a no-op. The vectors
// stay owned by the caller: Release leaves them untouched, and they must
// outlive the batch and every fork.
func NewBatchVecs(ev *Evaluator, g *aig.Graph, vecs *sim.Vectors) *Batch {
	return newBatch(ev, g, vecs, true)
}

func newBatch(ev *Evaluator, g *aig.Graph, vecs *sim.Vectors, borrowed bool) *Batch {
	b := &Batch{
		Eval:     ev,
		g:        g,
		vecs:     vecs,
		resim:    sim.NewResimulator(g, vecs),
		prepared: -1,
		borrowed: borrowed,
	}
	b.cur, b.curFlat = allocPO(g.NumPOs(), vecs.Words)
	b.flipped, b.flipFlat = allocPO(g.NumPOs(), vecs.Words)
	b.flipBuf = wordops.Get(vecs.Words)
	for i := range b.cur {
		vecs.LitInto(g.PO(i), b.cur[i])
	}
	return b
}

// Fork returns a Batch sharing the base simulation and current PO words
// with b but owning its own re-simulation state and scratch buffers, so it
// can rank candidates on another goroutine concurrently with b. Forks must
// be released before the root batch.
func (b *Batch) Fork() *Batch {
	f := &Batch{
		Eval:     b.Eval,
		g:        b.g,
		vecs:     b.vecs,
		resim:    b.resim.Fork(),
		cur:      b.cur,
		flipBuf:  wordops.Get(b.vecs.Words),
		prepared: -1,
		isFork:   true,
	}
	f.flipped, f.flipFlat = allocPO(b.g.NumPOs(), b.vecs.Words)
	return f
}

// Release returns the batch's buffers to the shared word pool. A fork
// releases only its private state; the root batch also releases the base
// simulation (so every fork must be released first). The Batch must not be
// used afterwards.
func (b *Batch) Release() {
	b.resim.Release()
	releasePO(b.flipped, b.flipFlat)
	wordops.Put(b.flipBuf)
	b.flipped, b.flipFlat, b.flipBuf = nil, nil, nil
	if !b.isFork {
		releasePO(b.cur, b.curFlat)
		b.cur, b.curFlat = nil, nil
		if !b.borrowed {
			b.vecs.Release()
		}
	}
	b.vecs = nil
}

// allocPO carves n PO rows of `words` words each out of a single pooled
// block — one pool round-trip instead of n+1, which keeps Fork cheap enough
// that multi-worker ranking amortizes on small circuits.
func allocPO(n, words int) (rows [][]uint64, flat []uint64) {
	rows = wordops.GetVecsZero(n)
	flat = wordops.Get(n * words)
	for i := range rows {
		rows[i] = flat[i*words : (i+1)*words]
	}
	return rows, flat
}

func releasePO(rows [][]uint64, flat []uint64) {
	wordops.Put(flat)
	wordops.PutVecs(rows)
}

// Vectors returns the node value vectors of the current circuit on the
// evaluation patterns.
func (b *Batch) Vectors() *sim.Vectors { return b.vecs }

// CurrentError returns the error of the current circuit (before any
// candidate is applied).
func (b *Batch) CurrentError() float64 { return b.Eval.EvalPOWords(b.cur) }

// Prepare computes the flipped output words Y' for node n. It must be
// called before EvalCandidate for candidates at n.
func (b *Batch) Prepare(n aig.Node) {
	wordops.Not(b.flipBuf, b.vecs.Node(n))
	b.resim.Resimulate(n, b.flipBuf)
	b.resim.POWordsInto(b.flipped)
	b.prepared = n
}

// EvalCandidate returns the circuit error that would result from replacing
// the prepared node's value vector by newVec.
func (b *Batch) EvalCandidate(n aig.Node, newVec []uint64) float64 {
	return b.EvalCandidateBounded(n, newVec, math.Inf(1))
}

// EvalCandidateBounded is EvalCandidate with branch-and-bound pruning:
// candidates whose error strictly exceeds bound return +Inf, with the
// metric accumulation aborted at the first word that passes the bound. A
// candidate at least as good as the bound always gets its exact error (see
// Evaluator.EvalPOWordsBounded for the monotonicity argument).
func (b *Batch) EvalCandidateBounded(n aig.Node, newVec []uint64, bound float64) float64 {
	if n != b.prepared {
		panic("errest: EvalCandidate called without Prepare")
	}
	old := b.vecs.Node(n)
	return b.Eval.EvalFlipBounded(b.cur, b.flipped, old, newVec, bound)
}
