package errest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

// rippleAdder builds an n-bit ripple-carry adder (2n PIs, n+1 POs).
func rippleAdder(n int) *aig.Graph {
	g := aig.New()
	g.Name = "rca"
	a := g.AddPIs(n, "a")
	b := g.AddPIs(n, "b")
	carry := aig.LitFalse
	for i := 0; i < n; i++ {
		axb := g.Xor(a[i], b[i])
		sum := g.Xor(axb, carry)
		carry = g.Or(g.And(a[i], b[i]), g.And(axb, carry))
		g.AddPO(sum, "s")
	}
	g.AddPO(carry, "cout")
	return g
}

func TestERZeroForIdenticalCircuit(t *testing.T) {
	g := rippleAdder(4)
	p := sim.Exhaustive(8)
	ev := NewEvaluator(g, p, ER)
	if e := ev.EvalGraph(g, p); e != 0 {
		t.Fatalf("self ER = %v, want 0", e)
	}
}

func TestERExactForStuckOutput(t *testing.T) {
	// Force the carry-out of a 2-bit adder to constant 0 and compare the
	// measured ER against an analytic count over all 16 input patterns.
	g := rippleAdder(2)
	p := sim.Exhaustive(4)
	ev := NewEvaluator(g, p, ER)

	// Stick the PO value (not the node) at 0: account for PO phase.
	approx := g.CopyWith(map[aig.Node]aig.Lit{g.PO(2).Node(): aig.LitFalse.NotCond(g.PO(2).IsCompl())})
	got := ev.EvalGraph(approx, p)
	// cout=1 happens when a+b >= 4: count pairs (a,b) in [0,3]^2 with sum>=4.
	bad := 0
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a+b >= 4 {
				bad++
			}
		}
	}
	want := float64(bad) / 16
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ER = %v, want %v", got, want)
	}
}

func TestNMEDExactForDroppedLSB(t *testing.T) {
	// Dropping the LSB sum bit of an adder gives ED=1 whenever the true
	// LSB is 1, which is half of all patterns: MED = 0.5.
	n := 3
	g := rippleAdder(n)
	p := sim.Exhaustive(2 * n)
	ev := NewEvaluator(g, p, NMED)
	approx := g.CopyWith(map[aig.Node]aig.Lit{g.PO(0).Node(): aig.LitFalse.NotCond(g.PO(0).IsCompl())})
	got := ev.EvalGraph(approx, p)
	maxVal := math.Pow(2, float64(n+1)) - 1
	want := 0.5 / maxVal
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("NMED = %v, want %v", got, want)
	}
}

func TestMREDForDroppedLSB(t *testing.T) {
	n := 2
	g := rippleAdder(n)
	p := sim.Exhaustive(2 * n)
	ev := NewEvaluator(g, p, MRED)
	approx := g.CopyWith(map[aig.Node]aig.Lit{g.PO(0).Node(): aig.LitFalse.NotCond(g.PO(0).IsCompl())})
	got := ev.EvalGraph(approx, p)
	// Analytic: for each (a,b), y=a+b; if y odd, ED=1 and RED=1/max(y,1).
	sum := 0.0
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			y := a + b
			if y%2 == 1 {
				sum += 1 / math.Max(float64(y), 1)
			}
		}
	}
	want := sum / 16
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MRED = %v, want %v", got, want)
	}
}

func TestMREDDivisionByZeroGuard(t *testing.T) {
	// Circuit: identity on 2 inputs. Approximation: outputs stuck at 1.
	// For y=0 the denominator must clamp to 1.
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(a, "y0")
	g.AddPO(b, "y1")
	p := sim.Exhaustive(2)
	ev := NewEvaluator(g, p, MRED)
	approx := aig.New()
	approx.AddPI("a")
	approx.AddPI("b")
	approx.AddPO(aig.LitTrue, "y0")
	approx.AddPO(aig.LitTrue, "y1")
	got := ev.EvalGraph(approx, p)
	// y: 0,1,2,3 each 1/4. yhat always 3.
	want := (3.0/1 + 2.0/1 + 1.0/2 + 0.0/3) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MRED = %v, want %v", got, want)
	}
}

func TestMetricString(t *testing.T) {
	if ER.String() != "ER" || NMED.String() != "NMED" || MRED.String() != "MRED" {
		t.Fatalf("metric names wrong")
	}
	if Metric(9).String() != "Metric(9)" {
		t.Fatalf("unknown metric name wrong")
	}
}

func TestTransposeWord(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	po := make([][]uint64, 5)
	for o := range po {
		po[o] = []uint64{rng.Uint64()}
	}
	vals := make([]uint64, 64)
	transposeWord(po, 0, vals)
	for b := 0; b < 64; b++ {
		var want uint64
		for o := range po {
			want |= (po[o][0] >> uint(b) & 1) << uint(o)
		}
		if vals[b] != want {
			t.Fatalf("bit %d: got %x want %x", b, vals[b], want)
		}
	}
}

func TestBatchMatchesFullResimulation(t *testing.T) {
	// For every AND node and a set of random replacement vectors, the batch
	// estimate must equal the error of the structurally modified circuit.
	// We use replacement-by-complement and replacement-by-other-node so the
	// reference circuit is easy to construct.
	g := rippleAdder(3)
	p := sim.Exhaustive(6)
	for _, metric := range []Metric{ER, NMED, MRED} {
		ev := NewEvaluator(g, p, metric)
		b := NewBatch(ev, g, p)
		if e := b.CurrentError(); e != 0 {
			t.Fatalf("%v: current error of exact circuit = %v", metric, e)
		}
		v := b.Vectors()
		for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
			if !g.IsAnd(n) {
				continue
			}
			b.Prepare(n)

			// Candidate 1: complement of the node.
			flip := make([]uint64, v.Words)
			for i, w := range v.Node(n) {
				flip[i] = ^w
			}
			got := b.EvalCandidate(n, flip)
			ref := g.CopyWith(map[aig.Node]aig.Lit{n: aig.MakeLit(n, true)})
			want := ev.EvalGraph(ref, p)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v node %d complement: batch %v, full %v", metric, n, got, want)
			}

			// Candidate 2: constant zero.
			zero := make([]uint64, v.Words)
			got = b.EvalCandidate(n, zero)
			ref = g.CopyWith(map[aig.Node]aig.Lit{n: aig.LitFalse})
			want = ev.EvalGraph(ref, p)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v node %d const0: batch %v, full %v", metric, n, got, want)
			}
		}
	}
}

func TestBatchCumulativeAgainstOriginal(t *testing.T) {
	// After applying one LAC, errors of subsequent candidates must be
	// measured against the ORIGINAL golden outputs, not the current circuit.
	g := rippleAdder(2)
	p := sim.Exhaustive(4)
	ev := NewEvaluator(g, p, ER)

	// Apply: stuck carry-out at 0.
	approx := g.CopyWith(map[aig.Node]aig.Lit{g.PO(2).Node(): aig.LitFalse.NotCond(g.PO(2).IsCompl())})
	b := NewBatch(ev, approx, p)
	base := b.CurrentError()
	if base <= 0 {
		t.Fatalf("expected nonzero cumulative error, got %v", base)
	}
	// A candidate identical to the current vector must return exactly the
	// cumulative error.
	n := approx.PO(0).Node()
	if !approx.IsAnd(n) {
		t.Skip("PO0 not an AND in this construction")
	}
	b.Prepare(n)
	same := b.EvalCandidate(n, b.Vectors().Node(n))
	if math.Abs(same-base) > 1e-12 {
		t.Fatalf("identity candidate error %v != cumulative %v", same, base)
	}
}

func TestEvaluatorPanicsOnWideValueMetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for >64 POs with NMED")
		}
	}()
	golden := make([][]uint64, 65)
	for i := range golden {
		golden[i] = make([]uint64, 1)
	}
	NewEvaluatorFromWords(golden, 1, 64, NMED)
}
