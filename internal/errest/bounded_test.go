package errest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wordops"
)

func randPOWords(rng *rand.Rand, nPOs, words int) [][]uint64 {
	out := make([][]uint64, nPOs)
	for o := range out {
		out[o] = make([]uint64, words)
		for w := range out[o] {
			out[o][w] = rng.Uint64()
		}
	}
	return out
}

// TestEvalPOWordsBoundedMatchesUnbounded property-tests the pruned
// evaluation against the unbounded one for all three metrics: any bound at
// or above the true error must return the exact value (bit-identical), and
// any bound strictly below it must return +Inf.
func TestEvalPOWordsBoundedMatchesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		nPOs := 1 + rng.Intn(12)
		words := 1 + rng.Intn(6)
		valid := 1 + rng.Intn(64*words)
		golden := randPOWords(rng, nPOs, words)
		approx := randPOWords(rng, nPOs, words)
		// Occasionally evaluate an exact copy so the err==0 edge is hit.
		if trial%7 == 0 {
			for o := range approx {
				copy(approx[o], golden[o])
			}
		}
		for _, metric := range []Metric{ER, NMED, MRED} {
			e := NewEvaluatorFromWords(golden, words, valid, metric)
			err := e.EvalPOWords(approx)

			// Exactly at the bound: pruning must not fire (determinism of
			// the candidate ranking depends on this).
			if got := e.EvalPOWordsBounded(approx, err); got != err {
				t.Fatalf("%v trial %d: bound==err returned %v, want %v", metric, trial, got, err)
			}
			if got := e.EvalPOWordsBounded(approx, math.Inf(1)); got != err {
				t.Fatalf("%v trial %d: bound=+Inf returned %v, want %v", metric, trial, got, err)
			}
			if err > 0 {
				lower := math.Nextafter(err, 0)
				if got := e.EvalPOWordsBounded(approx, lower); !math.IsInf(got, 1) {
					t.Fatalf("%v trial %d: bound just below err=%v returned %v, want +Inf",
						metric, trial, err, got)
				}
				if got := e.EvalPOWordsBounded(approx, 0); !math.IsInf(got, 1) {
					t.Fatalf("%v trial %d: bound 0 with err=%v returned %v, want +Inf",
						metric, trial, err, got)
				}
			}
		}
	}
}

// TestEvalFlipBoundedMatchesMerge property-tests the fused merge-and-
// evaluate path against explicitly merging with wordops.SelectFlip and then
// evaluating: the results must be bit-identical, bounded or not.
func TestEvalFlipBoundedMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		nPOs := 1 + rng.Intn(12)
		words := 1 + rng.Intn(6)
		valid := 1 + rng.Intn(64*words)
		golden := randPOWords(rng, nPOs, words)
		cur := randPOWords(rng, nPOs, words)
		flipped := randPOWords(rng, nPOs, words)
		old := randPOWords(rng, 1, words)[0]
		new := randPOWords(rng, 1, words)[0]

		merged := make([][]uint64, nPOs)
		for o := range merged {
			merged[o] = make([]uint64, words)
			wordops.SelectFlip(merged[o], cur[o], flipped[o], old, new)
		}
		for _, metric := range []Metric{ER, NMED, MRED} {
			e := NewEvaluatorFromWords(golden, words, valid, metric)
			want := e.EvalPOWords(merged)
			if got := e.EvalFlipBounded(cur, flipped, old, new, math.Inf(1)); got != want {
				t.Fatalf("%v trial %d: fused %v, merged %v", metric, trial, got, want)
			}
			if got := e.EvalFlipBounded(cur, flipped, old, new, want); got != want {
				t.Fatalf("%v trial %d: fused at bound==err returned %v, want %v",
					metric, trial, got, want)
			}
			if want > 0 {
				lower := math.Nextafter(want, 0)
				if got := e.EvalFlipBounded(cur, flipped, old, new, lower); !math.IsInf(got, 1) {
					t.Fatalf("%v trial %d: fused below err=%v returned %v, want +Inf",
						metric, trial, want, got)
				}
			}
		}
	}
}

// TestTailPatternsIgnored is the regression test for tail-pattern handling:
// with a valid count that is not a multiple of 64, differences confined to
// the garbage bits of the last word must not contribute to any metric, and
// a single differing valid pattern contributes exactly 1/valid to ER.
func TestTailPatternsIgnored(t *testing.T) {
	const valid = 100 // 2 words, last word has 36 garbage bit positions
	const words = 2
	rng := rand.New(rand.NewSource(4))
	golden := randPOWords(rng, 4, words)
	for _, metric := range []Metric{ER, NMED, MRED} {
		e := NewEvaluatorFromWords(golden, words, valid, metric)
		if n := e.NumPatterns(); n != valid {
			t.Fatalf("%v: NumPatterns = %d, want %d", metric, n, valid)
		}

		// Corrupt only bits at or beyond the valid count.
		approx := make([][]uint64, len(golden))
		for o := range approx {
			approx[o] = append([]uint64(nil), golden[o]...)
			approx[o][words-1] ^= ^wordops.TailMask(valid)
		}
		if err := e.EvalPOWords(approx); err != 0 {
			t.Fatalf("%v: tail-only difference scored %v, want 0", metric, err)
		}

		// Flip PO 0 on the last VALID pattern: exactly one pattern differs.
		approx[0][words-1] ^= 1 << uint((valid-1)%64)
		err := e.EvalPOWords(approx)
		if err <= 0 {
			t.Fatalf("%v: valid-pattern difference scored %v, want > 0", metric, err)
		}
		if metric == ER && err != 1.0/valid {
			t.Fatalf("ER: one bad pattern scored %v, want %v", err, 1.0/valid)
		}
	}
}

// TestEvaluatorFromWordsClampsValid checks the valid-count defaulting.
func TestEvaluatorFromWordsClampsValid(t *testing.T) {
	golden := [][]uint64{{0, 0}}
	for _, valid := range []int{0, -5, 129, 1 << 20} {
		e := NewEvaluatorFromWords(golden, 2, valid, ER)
		if e.NumPatterns() != 128 {
			t.Fatalf("valid=%d: NumPatterns = %d, want 128", valid, e.NumPatterns())
		}
	}
}
