// Package errest implements the error metrics of approximate logic
// synthesis (error rate, normalized mean error distance, mean relative
// error distance) and the batch local-approximate-change error estimator of
// Su et al. (DAC 2018) that ALSRAC uses to rank candidate changes.
//
// All measurements are Monte-Carlo estimates over a fixed, seeded pattern
// set, exactly as in the paper (which uses 10^7 simulation rounds; the
// pattern budget here is a knob). Golden values always come from the
// ORIGINAL circuit, so errors are cumulative across applied changes.
package errest

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/aig"
	"repro/internal/sim"
	"repro/internal/wordops"
)

// Metric identifies an error metric.
type Metric int

// The metrics used in the paper's evaluation.
const (
	// ER is the error rate: the probability that at least one primary
	// output differs from the exact circuit.
	ER Metric = iota
	// NMED is the mean error distance normalized by the maximum output
	// value 2^O−1, with outputs read as an unsigned binary number (PO 0 is
	// the least significant bit).
	NMED
	// MRED is the mean of |ŷ−y| / max(y,1).
	MRED
)

// String returns the conventional abbreviation of the metric.
func (m Metric) String() string {
	switch m {
	case ER:
		return "ER"
	case NMED:
		return "NMED"
	case MRED:
		return "MRED"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Evaluator measures the error of approximate primary-output words against
// golden outputs captured from the original circuit on a fixed pattern set.
type Evaluator struct {
	metric  Metric
	words   int
	nPOs    int
	nPat    int    // number of VALID patterns (≤ 64·words)
	tail    uint64 // valid-bit mask of the last word
	workers int

	golden [][]uint64 // golden PO words, one slice per PO
	// goldenVal[p] is the golden output value of pattern p (value metrics
	// only, computed lazily at construction).
	goldenVal []uint64
	maxVal    float64
}

// NewEvaluator simulates the exact circuit g on the given patterns and
// returns an evaluator for the chosen metric. For the value metrics (NMED,
// MRED) the circuit must have at most 64 primary outputs; wider outputs are
// outside the supported encoding (the paper's arithmetic benchmarks fit).
func NewEvaluator(g *aig.Graph, p *sim.Patterns, metric Metric) *Evaluator {
	return NewEvaluatorWorkers(g, p, metric, 1)
}

// NewEvaluatorWorkers is NewEvaluator with the golden simulation sharded
// over the given number of worker goroutines (0 = GOMAXPROCS); the worker
// count is retained and reused by EvalGraph. The evaluator itself is
// identical for every worker count.
func NewEvaluatorWorkers(g *aig.Graph, p *sim.Patterns, metric Metric, workers int) *Evaluator {
	v := sim.SimulateWorkers(g, p, workers)
	golden := sim.POWords(g, v)
	v.Release()
	e := NewEvaluatorFromWords(golden, p.Words, p.Valid, metric)
	e.workers = workers
	return e
}

// NewEvaluatorFromWords builds an evaluator directly from golden PO words.
// valid is the number of meaningful patterns: bits at or beyond it in the
// last word are masked out of every metric (out of range, it defaults to
// the full 64·words).
func NewEvaluatorFromWords(golden [][]uint64, words, valid int, metric Metric) *Evaluator {
	if valid <= 0 || valid > 64*words {
		valid = 64 * words
	}
	e := &Evaluator{
		metric:  metric,
		words:   words,
		nPOs:    len(golden),
		nPat:    valid,
		tail:    wordops.TailMask(valid),
		workers: 1,
		golden:  golden,
	}
	if metric != ER {
		if e.nPOs > 64 {
			panic("errest: value metrics support at most 64 outputs")
		}
		e.goldenVal = make([]uint64, 64*words)
		transposeValues(golden, words, e.goldenVal)
		e.maxVal = math.Pow(2, float64(e.nPOs)) - 1
	}
	return e
}

// Metric returns the metric this evaluator computes.
func (e *Evaluator) Metric() Metric { return e.metric }

// Words returns the pattern word count.
func (e *Evaluator) Words() int { return e.words }

// NumPatterns returns the number of evaluation patterns.
func (e *Evaluator) NumPatterns() int { return e.nPat }

// EvalPOWords computes the metric for the given approximate PO words. It
// only reads evaluator state, so it is safe to call concurrently (the batch
// ranking workers do).
func (e *Evaluator) EvalPOWords(approx [][]uint64) float64 {
	return e.EvalPOWordsBounded(approx, math.Inf(1))
}

// EvalPOWordsBounded is EvalPOWords with branch-and-bound pruning: when the
// metric strictly exceeds bound, evaluation stops at the first simulation
// word where the partial value passes it and +Inf is returned.
//
// The pruning is exact, not heuristic. All three metrics accumulate
// non-negative per-word contributions, so the partial value is
// non-decreasing in the word index; the partial is checked with the same
// floating-point expression that produces the final value, and IEEE
// division is monotone, so a result ≤ bound can never be pruned — callers
// always get the exact value for any candidate at least as good as the
// bound, and +Inf strictly above it. This is what lets the candidate
// ranking thread a best-so-far bound through without changing the winner.
//
//alsrac:hotpath
func (e *Evaluator) EvalPOWordsBounded(approx [][]uint64, bound float64) float64 {
	if len(approx) != e.nPOs {
		panic("errest: PO count mismatch")
	}
	switch e.metric {
	case ER:
		return e.errorRate(approx, bound)
	case NMED:
		return e.meanED(approx, false, bound)
	case MRED:
		return e.meanED(approx, true, bound)
	}
	panic("errest: unknown metric")
}

// EvalGraph simulates an approximate circuit on the evaluator's patterns
// and returns its error. The circuit must have the same PI/PO interface as
// the original. Simulation uses the evaluator's worker count and pooled
// buffers throughout.
func (e *Evaluator) EvalGraph(g *aig.Graph, p *sim.Patterns) float64 {
	v := sim.SimulateWorkers(g, p, e.workers)
	approx := make([][]uint64, g.NumPOs())
	for i := range approx {
		approx[i] = v.LitInto(g.PO(i), wordops.Get(v.Words))
	}
	err := e.EvalPOWords(approx)
	for _, w := range approx {
		wordops.Put(w)
	}
	v.Release()
	return err
}

// EvalFlipBounded computes the metric of the candidate outputs
// ŷ_o = (y_o &^ c) | (yf_o & c) with c = old ⊕ new — the batch-estimation
// merge — without materializing them, pruned by bound exactly like
// EvalPOWordsBounded. Fusing the merge into the metric loop means a pruned
// candidate aborts the merge too, and the merged words stay in registers
// instead of a scratch buffer. The accumulation order matches
// EvalPOWordsBounded word for word, so the result is bit-identical to
// merging first and evaluating after.
//
//alsrac:hotpath
func (e *Evaluator) EvalFlipBounded(y, yf [][]uint64, old, new []uint64, bound float64) float64 {
	if len(y) != e.nPOs || len(yf) != e.nPOs {
		panic("errest: PO count mismatch")
	}
	nPatF := float64(e.nPat)
	if e.metric == ER {
		bad := 0
		for w := 0; w < e.words; w++ {
			c := old[w] ^ new[w]
			var acc uint64
			for o := 0; o < e.nPOs; o++ {
				yo := y[o][w]&^c | yf[o][w]&c
				acc |= yo ^ e.golden[o][w]
			}
			if w == e.words-1 {
				acc &= e.tail
			}
			bad += bits.OnesCount64(acc)
			if float64(bad)/nPatF > bound {
				return math.Inf(1)
			}
		}
		return float64(bad) / nPatF
	}

	relative := e.metric == MRED
	var valsArr [64]uint64
	vals := valsArr[:]
	sum := 0.0
	for w := 0; w < e.words; w++ {
		c := old[w] ^ new[w]
		for b := range vals {
			vals[b] = 0
		}
		for o := 0; o < e.nPOs; o++ {
			word := y[o][w]&^c | yf[o][w]&c
			for ; word != 0; word &= word - 1 {
				vals[bits.TrailingZeros64(word)] |= 1 << uint(o)
			}
		}
		base := w * 64
		hi := 64
		if w == e.words-1 {
			hi = e.nPat - base
		}
		for b := 0; b < hi; b++ {
			y := e.goldenVal[base+b]
			yhat := vals[b]
			var ed float64
			if yhat >= y {
				ed = float64(yhat - y)
			} else {
				ed = float64(y - yhat)
			}
			if relative {
				den := float64(y)
				if den < 1 {
					den = 1
				}
				ed /= den
			}
			sum += ed
		}
		partial := sum / nPatF
		if !relative {
			partial /= e.maxVal
		}
		if partial > bound {
			return math.Inf(1)
		}
	}
	mean := sum / nPatF
	if relative {
		return mean
	}
	return mean / e.maxVal
}

//alsrac:hotpath
func (e *Evaluator) errorRate(approx [][]uint64, bound float64) float64 {
	bad := 0
	nPatF := float64(e.nPat)
	for w := 0; w < e.words; w++ {
		var acc uint64
		for o := 0; o < e.nPOs; o++ {
			acc |= approx[o][w] ^ e.golden[o][w]
		}
		if w == e.words-1 {
			acc &= e.tail // patterns beyond Valid never count
		}
		bad += bits.OnesCount64(acc)
		if float64(bad)/nPatF > bound {
			return math.Inf(1)
		}
	}
	return float64(bad) / nPatF
}

//alsrac:hotpath
func (e *Evaluator) meanED(approx [][]uint64, relative bool, bound float64) float64 {
	// Stack-allocated scratch keeps concurrent calls allocation-free.
	var valsArr [64]uint64
	vals := valsArr[:]
	sum := 0.0
	nPatF := float64(e.nPat)
	for w := 0; w < e.words; w++ {
		transposeWord(approx, w, vals)
		base := w * 64
		hi := 64
		if w == e.words-1 {
			hi = e.nPat - base // patterns beyond Valid never count
		}
		for b := 0; b < hi; b++ {
			y := e.goldenVal[base+b]
			yhat := vals[b]
			var ed float64
			if yhat >= y {
				ed = float64(yhat - y)
			} else {
				ed = float64(y - yhat)
			}
			if relative {
				den := float64(y)
				if den < 1 {
					den = 1
				}
				ed /= den
			}
			sum += ed
		}
		// Same expression as the final value below, so pruning can never
		// fire on a result that would end up ≤ bound.
		partial := sum / nPatF
		if !relative {
			partial /= e.maxVal
		}
		if partial > bound {
			return math.Inf(1)
		}
	}
	mean := sum / nPatF
	if relative {
		return mean
	}
	return mean / e.maxVal
}

// transposeValues converts PO word slices into per-pattern output values.
func transposeValues(po [][]uint64, words int, out []uint64) {
	// Stack-allocated scratch: construction-time use only today, but kept
	// allocation-free like the eval path.
	var valsArr [64]uint64
	for w := 0; w < words; w++ {
		transposeWord(po, w, valsArr[:])
		copy(out[w*64:], valsArr[:])
	}
}

// transposeWord extracts the 64 output values encoded in word index w of
// the PO slices: vals[b] has bit o equal to bit b of po[o][w].
//
//alsrac:hotpath
func transposeWord(po [][]uint64, w int, vals []uint64) {
	for b := range vals {
		vals[b] = 0
	}
	for o, pw := range po {
		word := pw[w]
		for ; word != 0; word &= word - 1 {
			vals[bits.TrailingZeros64(word)] |= 1 << uint(o)
		}
	}
}
