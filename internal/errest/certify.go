package errest

import "math"

// Certification implements the statistical-guarantee side of
// simulation-based error measurement (the "statistically certified"
// ingredient of Liu & Zhang's ALS): Monte-Carlo estimates come with a
// one-sided Hoeffding confidence bound.
//
// For n i.i.d. samples of a per-pattern error variable bounded in [0, R],
// Hoeffding's inequality gives
//
//	P( true mean ≥ observed + ε ) ≤ exp(−2·n·ε²/R²),
//
// so with confidence 1−δ the true metric is below observed + R·sqrt(ln(1/δ)/(2n)).
//
// The per-pattern variable is bounded by R=1 for ER (an indicator) and for
// NMED (error distance normalized by the maximum output value). For MRED
// the relative error distance of a single pattern is unbounded in general;
// Range lets callers supply a domain bound (MaxRED) when one is known.

// UpperBound returns the one-sided (1−δ)-confidence upper bound for a
// metric observed as `observed` over n samples of a per-pattern variable
// bounded in [0, rang].
func UpperBound(observed float64, n int, rang, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	eps := rang * math.Sqrt(math.Log(1/delta)/(2*float64(n)))
	return observed + eps
}

// SamplesFor returns the number of Monte-Carlo samples needed so that the
// Hoeffding margin at confidence 1−δ is at most eps for a per-pattern
// variable bounded in [0, rang].
func SamplesFor(eps, rang, delta float64) int {
	if eps <= 0 {
		return math.MaxInt32
	}
	n := rang * rang * math.Log(1/delta) / (2 * eps * eps)
	return int(math.Ceil(n))
}

// CertifiedUpperBound returns the (1−δ)-confidence upper bound for this
// evaluator's metric given an observed value on its pattern set. For MRED
// the per-pattern range defaults to 1, which is only valid when relative
// errors cannot exceed 100%; use UpperBound directly with a domain bound
// otherwise.
func (e *Evaluator) CertifiedUpperBound(observed, delta float64) float64 {
	return UpperBound(observed, e.nPat, 1, delta)
}

// Certify reports whether the observed error is below the threshold with
// confidence 1−δ.
func (e *Evaluator) Certify(observed, threshold, delta float64) bool {
	return e.CertifiedUpperBound(observed, delta) <= threshold
}
