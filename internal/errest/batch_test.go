package errest

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

func randomAIG(rng *rand.Rand, nPIs, nAnds, nPOs int) *aig.Graph {
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPOs; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(min(4, len(lits)))], "f")
	}
	return g
}

// TestBatchForkMatchesRoot: a Fork evaluating the same (node, vector)
// candidates concurrently must report exactly the root batch's errors.
func TestBatchForkMatchesRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomAIG(rng, 8, 120, 4)
	pats := sim.Uniform(g.NumPIs(), 8, 3)
	ev := NewEvaluator(g, pats, ER)

	var nodes []aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			nodes = append(nodes, n)
		}
	}
	cands := make([][]uint64, 12)
	candNode := make([]aig.Node, len(cands))
	for i := range cands {
		candNode[i] = nodes[rng.Intn(len(nodes))]
		cands[i] = make([]uint64, pats.Words)
		for w := range cands[i] {
			cands[i][w] = rng.Uint64()
		}
	}

	batch := NewBatch(ev, g, pats)
	want := make([]float64, len(cands))
	for i := range cands {
		batch.Prepare(candNode[i])
		want[i] = batch.EvalCandidate(candNode[i], cands[i])
	}

	// Re-evaluate everything on several forks concurrently.
	got := make([]float64, len(cands))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := batch.Fork()
			defer f.Release()
			for i := w; i < len(cands); i += 4 {
				f.Prepare(candNode[i])
				got[i] = f.EvalCandidate(candNode[i], cands[i])
			}
		}(w)
	}
	wg.Wait()
	for i := range cands {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: fork err %v, root err %v", i, got[i], want[i])
		}
	}
	batch.Release()
}

// TestEvaluatorWorkersIdentical: the sharded golden run and EvalGraph must
// produce the same error values as the sequential evaluator.
func TestEvaluatorWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomAIG(rng, 8, 100, 4)
	approx := randomAIG(rng, 8, 90, 4) // same interface, different logic
	pats := sim.Uniform(g.NumPIs(), 5, 21)
	for _, metric := range []Metric{ER, NMED, MRED} {
		seq := NewEvaluator(g, pats, metric)
		for _, workers := range []int{2, 4, 9} {
			par := NewEvaluatorWorkers(g, pats, metric, workers)
			if a, b := seq.EvalGraph(approx, pats), par.EvalGraph(approx, pats); a != b {
				t.Fatalf("%v workers=%d: EvalGraph %v vs %v", metric, workers, a, b)
			}
		}
	}
}
