package errest

import (
	"math"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

func TestUpperBoundShrinksWithSamples(t *testing.T) {
	b1 := UpperBound(0.01, 1000, 1, 0.05)
	b2 := UpperBound(0.01, 100000, 1, 0.05)
	if b2 >= b1 {
		t.Fatalf("bound did not shrink with more samples: %v vs %v", b1, b2)
	}
	if b1 <= 0.01 || b2 <= 0.01 {
		t.Fatalf("bound must exceed the observation")
	}
}

func TestUpperBoundDegenerate(t *testing.T) {
	if !math.IsInf(UpperBound(0.1, 0, 1, 0.05), 1) {
		t.Fatalf("zero samples must give an infinite bound")
	}
	if !math.IsInf(UpperBound(0.1, 100, 1, 0), 1) {
		t.Fatalf("delta 0 must give an infinite bound")
	}
}

func TestSamplesForInvertsUpperBound(t *testing.T) {
	const eps, delta = 0.001, 0.01
	n := SamplesFor(eps, 1, delta)
	// With n samples, the margin must be at most eps.
	margin := UpperBound(0, n, 1, delta)
	if margin > eps*1.0001 {
		t.Fatalf("margin %v exceeds eps %v at n=%d", margin, eps, n)
	}
	// With half the samples it must not be.
	if UpperBound(0, n/2, 1, delta) <= eps {
		t.Fatalf("SamplesFor not tight")
	}
}

func TestHoeffdingEmpirically(t *testing.T) {
	// Measure ER of a stuck-at circuit repeatedly with independent pattern
	// sets; the (1-δ) upper bound must hold in at least ~(1-δ) of trials.
	g := rippleAdder(3)
	approx := g.CopyWith(nil)
	// Flip the top sum bit output permanently (stuck-at complement).
	po := approx.PO(1)
	approx.SetPO(1, po.Not())

	// True ER: flipping one PO affects every pattern => ER = 1... use a
	// subtler fault: complement only when carry is set is hard to build, so
	// instead use the LSB drop which errs on half the patterns.
	approx2 := g.CopyWith(map[aig.Node]aig.Lit{g.PO(0).Node(): aig.LitFalse.NotCond(g.PO(0).IsCompl())})
	trueER := exactER(t, g, approx2)

	const delta = 0.1
	trials, held := 60, 0
	for i := 0; i < trials; i++ {
		p := sim.Uniform(g.NumPIs(), 4, int64(1000+i)) // 256 patterns
		ev := NewEvaluator(g, p, ER)
		observed := ev.EvalGraph(approx2, p)
		if ev.CertifiedUpperBound(observed, delta) >= trueER {
			held++
		}
	}
	if float64(held)/float64(trials) < 1-2*delta {
		t.Fatalf("Hoeffding bound held in only %d/%d trials", held, trials)
	}
}

func exactER(t *testing.T, g, approx *aig.Graph) float64 {
	t.Helper()
	p := sim.Exhaustive(g.NumPIs())
	ev := NewEvaluator(g, p, ER)
	return ev.EvalGraph(approx, p)
}

func TestCertify(t *testing.T) {
	g := rippleAdder(3)
	p := sim.Uniform(g.NumPIs(), 512, 1) // 32768 patterns
	ev := NewEvaluator(g, p, ER)
	if !ev.Certify(0.001, 0.05, 0.05) {
		t.Fatalf("tiny observation with many samples should certify")
	}
	if ev.Certify(0.049, 0.05, 0.05) {
		t.Fatalf("observation at the threshold edge must not certify")
	}
}
