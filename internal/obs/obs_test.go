package obs

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alsrac_iterations_total", "total flow iterations")
	c.Inc()
	c.Add(4)
	g := r.Gauge("alsrac_queue_depth", "queued jobs")
	g.Set(7)
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# HELP alsrac_iterations_total total flow iterations\n",
		"# TYPE alsrac_iterations_total counter\n",
		"alsrac_iterations_total 5\n",
		"# TYPE alsrac_queue_depth gauge\n",
		"alsrac_queue_depth 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledFamilyRendersHeaderOnce(t *testing.T) {
	r := NewRegistry()
	// Registered out of order: rendering must sort and group the family.
	r.Gauge("alsrac_jobs", "jobs by state", "state", "running").Set(2)
	r.Gauge("alsrac_jobs", "jobs by state", "state", "done").Set(5)
	r.Gauge("alsrac_jobs", "jobs by state", "state", "queued").Set(1)

	out := render(t, r)
	if strings.Count(out, "# TYPE alsrac_jobs gauge") != 1 {
		t.Fatalf("family header not emitted exactly once:\n%s", out)
	}
	wantOrder := []string{
		`alsrac_jobs{state="done"} 5`,
		`alsrac_jobs{state="queued"} 1`,
		`alsrac_jobs{state="running"} 2`,
	}
	pos := -1
	for _, w := range wantOrder {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", w, out)
		}
		if i < pos {
			t.Fatalf("series out of order (%q):\n%s", w, out)
		}
		pos = i
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	la := r.Counter("x_total", "x", "k", "v")
	if la == a {
		t.Fatal("labeled series aliases unlabeled series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alsrac_step_seconds", "step latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`alsrac_step_seconds_bucket{le="0.01"} 1`,
		`alsrac_step_seconds_bucket{le="0.1"} 3`,
		`alsrac_step_seconds_bucket{le="1"} 4`,
		`alsrac_step_seconds_bucket{le="+Inf"} 5`,
		`alsrac_step_seconds_sum 5.605`,
		`alsrac_step_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "b", []float64{1})
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	out := render(t, r)
	if !strings.Contains(out, `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in inclusive bucket:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "e", "path", `a"b\c`).Inc()
	out := render(t, r)
	if !strings.Contains(out, `esc_total{path="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		for _, s := range []string{"zeta", "alpha", "mid"} {
			r.Gauge("multi", "m", "k", s).Set(int64(len(s)))
		}
		r.Counter("aaa_total", "a").Inc()
		var b strings.Builder
		r.WritePrometheus(&b)
		return b.String()
	}
	first := build()
	for i := 0; i < 10; i++ {
		if got := build(); got != first {
			t.Fatalf("output not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
