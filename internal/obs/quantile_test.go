package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "test", []float64{1, 2, 4, 8})

	if got := h.Quantile(0.95); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}

	// 10 samples in (1,2], so every rank lands in that bucket and the
	// estimate interpolates linearly across it.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("Quantile(0.5) = %v, want 1.5 (midpoint of (1,2])", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("Quantile(1) = %v, want 2 (bucket upper bound)", got)
	}

	// Add 10 samples in (4,8]: p95 of 20 samples is rank 19, inside (4,8].
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	got := h.Quantile(0.95)
	want := 4 + (8-4)*(19.0-10.0)/10.0 // lower + span * (rank-cumBefore)/bucketCount
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Quantile(0.95) = %v, want %v", got, want)
	}

	// Samples beyond the last bound clamp to the highest finite bound.
	h2 := r.Histogram("q_test_inf_seconds", "test", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf-bucket Quantile = %v, want clamp to 2", got)
	}

	// Quantile range is clamped.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v, want Quantile(0) = %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v, want Quantile(1) = %v", got, h.Quantile(1))
	}
}
