// Package obs provides the daemon's hand-rolled observability primitives:
// lock-free counters and gauges, mutex-guarded histograms, and a Registry
// that renders them in the Prometheus text exposition format (version
// 0.0.4) for GET /metrics scrapes.
//
// There is deliberately no dependency on a metrics library: the whole
// surface is three atomic types and one renderer. The registry keeps its
// series in an ordered slice (the map is only a lookup index), so the
// exposition output is byte-for-byte deterministic — the same discipline
// the alsraclint determinism analyzer enforces on this package: no
// wall-clock reads (durations are observed by the caller and passed in)
// and no ordered results derived from map iteration.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never go down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets, Prometheus
// style: bucket i counts observations ≤ Buckets[i], plus an implicit +Inf
// bucket, a sum and a total count.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []uint64 // len(bounds)+1; last is +Inf
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed samples by
// linear interpolation within the bucket containing the target rank — the
// same estimate Prometheus's histogram_quantile computes server-side. The
// cluster coordinator uses Quantile(0.95) of the job-duration histogram to
// derive its hedge delay, so the estimate must be computable locally without
// a scrape round trip. Samples landing in the +Inf bucket clamp to the
// highest finite bound. Returns 0 when no samples have been observed.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.samples == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.samples)
	cum := uint64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + c
		if float64(next) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets is a default bucket layout for second-denominated
// latencies, from 1ms to 10s.
func LatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// series is one registered time series: a metric instance plus its identity
// (family name, help, type, label pairs).
type series struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds registered series and renders them for scraping. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*series
	all   []*series // insertion-ordered; rendering sorts a copy
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*series{}}
}

// Counter registers (or returns the previously registered) counter with the
// given name and label pairs ("key", "value", ...).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns the previously registered) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or returns the previously registered) histogram with
// the given bucket upper bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, "histogram", labels)
	if s.histogram == nil {
		bounds := append([]float64(nil), buckets...)
		s.histogram = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	return s.histogram
}

func (r *Registry) lookup(name, help, typ string, labels []string) *series {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.typ != typ {
			panic(fmt.Sprintf("obs: %s already registered as %s, requested %s", key, s.typ, typ))
		}
		return s
	}
	s := &series{name: name, help: help, typ: typ, labels: append([]string(nil), labels...)}
	r.byKey[key] = s
	r.all = append(r.all, s)
	return s
}

// WritePrometheus renders every registered series in the text exposition
// format, families sorted by name and series sorted by label set, each
// family preceded by its # HELP and # TYPE header exactly once.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ordered := make([]*series, len(r.all))
	copy(ordered, r.all)
	r.mu.Unlock()
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return renderLabels(ordered[i].labels) < renderLabels(ordered[j].labels)
	})

	var b strings.Builder
	prevFamily := ""
	for _, s := range ordered {
		if s.name != prevFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", s.name, escapeHelp(s.help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.typ)
			prevFamily = s.name
		}
		switch s.typ {
		case "counter":
			fmt.Fprintf(&b, "%s%s %d\n", s.name, renderLabels(s.labels), s.counter.Value())
		case "gauge":
			fmt.Fprintf(&b, "%s%s %d\n", s.name, renderLabels(s.labels), s.gauge.Value())
		case "histogram":
			renderHistogram(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func renderHistogram(b *strings.Builder, s *series) {
	h := s.histogram
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, samples := h.sum, h.samples
	h.mu.Unlock()

	withLE := func(le string) []string {
		lbl := make([]string, 0, len(s.labels)+2)
		lbl = append(lbl, s.labels...)
		return append(lbl, "le", le)
	}
	cum := uint64(0)
	for i, bound := range bounds {
		cum += counts[i]
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, renderLabels(withLE(le)), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, renderLabels(withLE("+Inf")), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", s.name, renderLabels(s.labels), strconv.FormatFloat(sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, renderLabels(s.labels), samples)
}

// renderLabels renders alternating key/value pairs as {k="v",...}, or ""
// when there are none.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
