package bench

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

// structHash is an FNV-1a digest of the graph's exact structure: node kinds,
// AND fanin literals in id order, and the PO literals. Any change to node
// construction order, strashing or the generator's rng consumption moves it.
func structHash(g *aig.Graph) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * uint(i)) & 0xFF
			h *= prime
		}
	}
	mix(uint64(g.NumNodes()))
	for i := 0; i < g.NumNodes(); i++ {
		v := aig.Node(i)
		mix(uint64(g.Kind(v)))
		if g.IsAnd(v) {
			mix(uint64(g.Fanin0(v)))
			mix(uint64(g.Fanin1(v)))
		}
	}
	mix(uint64(g.NumPOs()))
	for i := 0; i < g.NumPOs(); i++ {
		mix(uint64(g.PO(i)))
	}
	return h
}

// TestMACTreeFunctional checks a small member exhaustively: every pattern of
// MACTree(2, 3, seed) must compute a0*b0 + a1*b1 exactly, for both seeds so
// both multiplier architectures are covered in tree position 0 and 1.
func TestMACTreeFunctional(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := MACTree(2, 3, seed)
		if g.NumPIs() != 12 {
			t.Fatalf("seed %d: %d PIs, want 12", seed, g.NumPIs())
		}
		p := sim.Exhaustive(12)
		v := sim.Simulate(g, p)
		for pat := 0; pat < 1<<12; pat++ {
			a0 := piValue(p, 0, 3, pat)
			b0 := piValue(p, 3, 3, pat)
			a1 := piValue(p, 6, 3, pat)
			b1 := piValue(p, 9, 3, pat)
			got := evalBus(g, v, 0, g.NumPOs(), pat)
			want := a0*b0 + a1*b1
			if got != want {
				t.Fatalf("seed %d: %d*%d + %d*%d = %d, want %d",
					seed, a0, b0, a1, b1, got, want)
			}
		}
	}
}

// TestMACTreeOddUnits covers the straggler path of the balanced reduction
// (an odd bus carried to the next level) on random patterns.
func TestMACTreeOddUnits(t *testing.T) {
	const units, width = 5, 4
	g := MACTree(units, width, 9)
	v, p := simRandom(g, 17)
	for pat := 0; pat < 256; pat++ {
		var want uint64
		for u := 0; u < units; u++ {
			a := piValue(p, u*2*width, width, pat)
			b := piValue(p, u*2*width+width, width, pat)
			want += a * b
		}
		if got := evalBus(g, v, 0, g.NumPOs(), pat); got != want {
			t.Fatalf("pattern %d: sum = %d, want %d", pat, got, want)
		}
	}
}

// TestMACTreeGolden pins the family's structure: equal parameters must build
// bitwise-identical graphs (hash equality across two builds) and the exact
// construction is frozen by a golden hash — benchgen output and the bigbench
// smoke member cannot drift silently.
func TestMACTreeGolden(t *testing.T) {
	const goldenMac4x4s7 = 0x69b53df217f38ec8
	g1 := MACTree(4, 4, 7)
	g2 := MACTree(4, 4, 7)
	h1, h2 := structHash(g1), structHash(g2)
	if h1 != h2 {
		t.Fatalf("MACTree is not deterministic: %#x vs %#x", h1, h2)
	}
	if h1 != goldenMac4x4s7 {
		t.Fatalf("MACTree(4,4,7) structure hash %#x, want %#x", h1, goldenMac4x4s7)
	}
	if err := g1.Check(); err != nil {
		t.Fatal(err)
	}
	if hs := structHash(MACTree(4, 4, 8)); hs == h1 {
		t.Logf("warning: seeds 7/8 hashed identically (%#x)", hs)
	}
}

// TestMACTreeScales spot-checks the size model the ≥1M-node smoke relies on:
// AND count grows linearly in units, and the 64-unit member already clears
// the windowed fallback floor by two orders of magnitude.
func TestMACTreeScales(t *testing.T) {
	small := MACTree(8, 8, 1)
	large := MACTree(64, 8, 1)
	if large.NumAnds() < 7*small.NumAnds() {
		t.Fatalf("MACTree not scaling linearly: 8 units = %d ANDs, 64 units = %d",
			small.NumAnds(), large.NumAnds())
	}
	if large.NumAnds() < 20_000 {
		t.Fatalf("MACTree(64,8,1) too small: %d ANDs", large.NumAnds())
	}
}
