package bench

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

// evalBus reads the integer encoded by consecutive POs [lo, lo+width) of a
// simulated graph under pattern index p.
func evalBus(g *aig.Graph, v *sim.Vectors, lo, width, p int) uint64 {
	var out uint64
	for i := 0; i < width; i++ {
		if v.LitBit(g.PO(lo+i), p) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// simRandom simulates g on 256 random patterns and returns vectors plus the
// per-pattern PI values as integers over the given PI ranges.
func simRandom(g *aig.Graph, seed int64) (*sim.Vectors, *sim.Patterns) {
	p := sim.Uniform(g.NumPIs(), 4, seed)
	return sim.Simulate(g, p), p
}

func piValue(p *sim.Patterns, lo, width, pat int) uint64 {
	var out uint64
	for i := 0; i < width; i++ {
		if p.In[lo+i][pat>>6]>>(uint(pat)&63)&1 == 1 {
			out |= 1 << uint(i)
		}
	}
	return out
}

func testAdder(t *testing.T, build func(int) *aig.Graph, n int) {
	t.Helper()
	g := build(n)
	if g.NumPIs() != 2*n || g.NumPOs() != n+1 {
		t.Fatalf("%s: interface %d/%d", g.Name, g.NumPIs(), g.NumPOs())
	}
	v, p := simRandom(g, int64(n))
	for pat := 0; pat < 256; pat++ {
		a := piValue(p, 0, n, pat)
		b := piValue(p, n, n, pat)
		got := evalBus(g, v, 0, n+1, pat)
		want := (a + b) & (1<<(n+1) - 1)
		if got != want {
			t.Fatalf("%s: %d+%d = %d, want %d", g.Name, a, b, got, want)
		}
	}
}

func TestRCA(t *testing.T)    { testAdder(t, RCA, 8); testAdder(t, RCA, 32) }
func TestCLA(t *testing.T)    { testAdder(t, CLA, 8); testAdder(t, CLA, 32) }
func TestKSA(t *testing.T)    { testAdder(t, KSA, 8); testAdder(t, KSA, 32) }
func TestKSAOdd(t *testing.T) { testAdder(t, KSA, 5) }
func TestCLAOdd(t *testing.T) { testAdder(t, CLA, 6) }

func testMult(t *testing.T, g *aig.Graph, n int) {
	t.Helper()
	if g.NumPIs() != 2*n || g.NumPOs() != 2*n {
		t.Fatalf("%s: interface %d/%d", g.Name, g.NumPIs(), g.NumPOs())
	}
	v, p := simRandom(g, 77)
	for pat := 0; pat < 256; pat++ {
		a := piValue(p, 0, n, pat)
		b := piValue(p, n, n, pat)
		got := evalBus(g, v, 0, 2*n, pat)
		if got != a*b {
			t.Fatalf("%s: %d*%d = %d, want %d", g.Name, a, b, got, a*b)
		}
	}
}

func TestArrayMult(t *testing.T)   { testMult(t, ArrayMult(8), 8) }
func TestWallaceMult(t *testing.T) { testMult(t, WallaceMult(8), 8) }
func TestWallaceSmall(t *testing.T) {
	testMult(t, WallaceMult(4), 4)
	testMult(t, WallaceMult(3), 3)
}

func TestSquare(t *testing.T) {
	n := 8
	g := Square(n)
	v, p := simRandom(g, 5)
	for pat := 0; pat < 256; pat++ {
		a := piValue(p, 0, n, pat)
		got := evalBus(g, v, 0, 2*n, pat)
		if got != a*a {
			t.Fatalf("square(%d) = %d, want %d", a, got, a*a)
		}
	}
}

func TestALU(t *testing.T) {
	g := ALU()
	if g.NumPIs() != 12 || g.NumPOs() != 8 {
		t.Fatalf("alu interface %d/%d", g.NumPIs(), g.NumPOs())
	}
	v, p := simRandom(g, 4)
	for pat := 0; pat < 256; pat++ {
		a := piValue(p, 0, 4, pat)
		b := piValue(p, 4, 4, pat)
		cin := piValue(p, 8, 1, pat)
		op := piValue(p, 9, 3, pat)
		r := evalBus(g, v, 0, 4, pat)
		var want uint64
		switch op {
		case 0:
			want = (a + b + cin) & 0xF
		case 1:
			want = (a - b) & 0xF
		case 2:
			want = a & b
		case 3:
			want = a | b
		case 4:
			want = a ^ b
		case 5:
			want = ^(a | b) & 0xF
		case 6:
			if a < b {
				want = 1
			}
		case 7:
			want = b
		}
		if r != want {
			t.Fatalf("alu op %d: a=%d b=%d cin=%d -> %d, want %d", op, a, b, cin, r, want)
		}
		// zero flag
		zero := evalBus(g, v, 5, 1, pat)
		if (zero == 1) != (r == 0) {
			t.Fatalf("zero flag wrong for r=%d", r)
		}
	}
}

func TestDivider(t *testing.T) {
	n := 8
	g := Divider(n)
	v, p := simRandom(g, 9)
	for pat := 0; pat < 256; pat++ {
		num := piValue(p, 0, n, pat)
		den := piValue(p, n, n, pat)
		if den == 0 {
			continue // division by zero leaves unspecified outputs
		}
		q := evalBus(g, v, 0, n, pat)
		r := evalBus(g, v, n, n, pat)
		if q != num/den || r != num%den {
			t.Fatalf("%d/%d = q%d r%d, want q%d r%d", num, den, q, r, num/den, num%den)
		}
	}
}

func TestSqrt(t *testing.T) {
	n := 16
	g := Sqrt(n)
	if g.NumPOs() != n/2 {
		t.Fatalf("sqrt POs = %d", g.NumPOs())
	}
	v, p := simRandom(g, 12)
	for pat := 0; pat < 256; pat++ {
		x := piValue(p, 0, n, pat)
		got := evalBus(g, v, 0, n/2, pat)
		want := uint64(math.Sqrt(float64(x)))
		// Guard against float rounding at perfect squares.
		for (want+1)*(want+1) <= x {
			want++
		}
		for want*want > x {
			want--
		}
		if got != want {
			t.Fatalf("sqrt(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestDecoder(t *testing.T) {
	g := Decoder(4)
	if g.NumPOs() != 16 {
		t.Fatalf("decoder POs = %d", g.NumPOs())
	}
	p := sim.Exhaustive(4)
	v := sim.Simulate(g, p)
	for m := 0; m < 16; m++ {
		for o := 0; o < 16; o++ {
			want := o == m
			if v.LitBit(g.PO(o), m) != want {
				t.Fatalf("decoder(%d) output %d wrong", m, o)
			}
		}
	}
}

func TestPriority(t *testing.T) {
	g := Priority(8)
	p := sim.Exhaustive(8)
	v := sim.Simulate(g, p)
	for m := 0; m < 256; m++ {
		idx := evalBus(g, v, 0, 3, m)
		valid := evalBus(g, v, 3, 1, m)
		if m == 0 {
			if valid != 0 {
				t.Fatalf("valid set for zero input")
			}
			continue
		}
		want := uint64(63 - uint(leadingZeros8(uint8(m))) - 56)
		if valid != 1 || idx != want {
			t.Fatalf("priority(%08b) = %d (valid %d), want %d", m, idx, valid, want)
		}
	}
}

func leadingZeros8(x uint8) int {
	n := 0
	for i := 7; i >= 0; i-- {
		if x>>uint(i)&1 == 1 {
			return n
		}
		n++
	}
	return 8
}

func TestArbiter(t *testing.T) {
	g := Arbiter(4)
	p := sim.Exhaustive(5)
	v := sim.Simulate(g, p)
	for m := 0; m < 32; m++ {
		req := m & 0xF
		en := m>>4&1 == 1
		grants := evalBus(g, v, 0, 4, m)
		busy := evalBus(g, v, 4, 1, m)
		if !en || req == 0 {
			if grants != 0 || busy != 0 {
				t.Fatalf("idle arbiter granted: req=%04b en=%v", req, en)
			}
			continue
		}
		// Exactly the lowest-index request wins.
		want := uint64(req & -req)
		if grants != want || busy != 1 {
			t.Fatalf("arbiter(%04b) = %04b, want %04b", req, grants, want)
		}
	}
}

func TestVoter(t *testing.T) {
	g := Voter(7)
	p := sim.Exhaustive(7)
	v := sim.Simulate(g, p)
	for m := 0; m < 128; m++ {
		ones := 0
		for i := 0; i < 7; i++ {
			if m>>i&1 == 1 {
				ones++
			}
		}
		want := ones >= 4
		if v.LitBit(g.PO(0), m) != want {
			t.Fatalf("voter(%07b) = %v, want %v", m, !want, want)
		}
	}
}

func TestShifter(t *testing.T) {
	n := 16
	g := Shifter(n)
	v, p := simRandom(g, 21)
	for pat := 0; pat < 256; pat++ {
		x := piValue(p, 0, n, pat)
		sh := piValue(p, n, 4, pat)
		got := evalBus(g, v, 0, n, pat)
		want := x >> sh
		if got != want {
			t.Fatalf("%d >> %d = %d, want %d", x, sh, got, want)
		}
	}
}

func TestMax(t *testing.T) {
	n := 12
	g := Max(n)
	v, p := simRandom(g, 33)
	for pat := 0; pat < 256; pat++ {
		a := piValue(p, 0, n, pat)
		b := piValue(p, n, n, pat)
		got := evalBus(g, v, 0, n, pat)
		want := max(a, b)
		if got != want {
			t.Fatalf("max(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestInt2Float(t *testing.T) {
	g := Int2Float(11, 4, 3)
	if g.NumPOs() != 7 {
		t.Fatalf("int2float POs = %d", g.NumPOs())
	}
	v, p := simRandom(g, 8)
	for pat := 0; pat < 256; pat++ {
		x := piValue(p, 0, 11, pat)
		man := evalBus(g, v, 0, 3, pat)
		exp := evalBus(g, v, 3, 4, pat)
		if x == 0 {
			if exp != 0 || man != 0 {
				t.Fatalf("int2float(0) = exp %d man %d", exp, man)
			}
			continue
		}
		wantExp := uint64(0)
		for xx := x; xx > 1; xx >>= 1 {
			wantExp++
		}
		if exp != wantExp {
			t.Fatalf("int2float(%d) exp = %d, want %d", x, exp, wantExp)
		}
		// Mantissa: the 3 bits right below the leading one, left-aligned.
		var wantMan uint64
		for b := 0; b < 3; b++ {
			src := int(wantExp) - 1 - b
			if src >= 0 && x>>uint(src)&1 == 1 {
				wantMan |= 1 << uint(2-b)
			}
		}
		if man != wantMan {
			t.Fatalf("int2float(%d) man = %03b, want %03b", x, man, wantMan)
		}
	}
}

func TestSine(t *testing.T) {
	n := 6
	g := Sine(n)
	p := sim.Exhaustive(n)
	v := sim.Simulate(g, p)
	maxV := float64(uint64(1)<<n - 1)
	for x := 0; x < 1<<n; x++ {
		got := evalBus(g, v, 0, n, x)
		s := math.Sin(2 * math.Pi * float64(x) / float64(int(1)<<n))
		want := uint64(math.Round(maxV / 2 * (1 + s)))
		if got != want {
			t.Fatalf("sine(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	g := Log2(8, 4)
	p := sim.Exhaustive(8)
	v := sim.Simulate(g, p)
	for x := 0; x < 256; x++ {
		got := evalBus(g, v, 0, g.NumPOs(), x)
		val := 1.0
		if x > 1 {
			val = float64(x)
		}
		want := uint64(math.Round(math.Log2(val) * 16))
		if got != want {
			t.Fatalf("log2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestComparator(t *testing.T) {
	g := Comparator(5)
	v, p := simRandom(g, 2)
	for pat := 0; pat < 256; pat++ {
		a := piValue(p, 0, 5, pat)
		b := piValue(p, 5, 5, pat)
		lt := v.LitBit(g.PO(0), pat)
		eq := v.LitBit(g.PO(1), pat)
		gt := v.LitBit(g.PO(2), pat)
		if lt != (a < b) || eq != (a == b) || gt != (a > b) {
			t.Fatalf("cmp(%d,%d) = %v %v %v", a, b, lt, eq, gt)
		}
	}
}

func TestRandomControlDeterministicAndSized(t *testing.T) {
	g1 := RandomControl("rc", 20, 10, 200, 42)
	g2 := RandomControl("rc", 20, 10, 200, 42)
	if g1.NumAnds() != g2.NumAnds() || g1.NumPIs() != 20 || g1.NumPOs() != 10 {
		t.Fatalf("random control not deterministic or wrong interface")
	}
	if g1.NumAnds() < 100 {
		t.Fatalf("random control too small: %d ANDs", g1.NumAnds())
	}
	g3 := RandomControl("rc", 20, 10, 200, 43)
	if g3.NumAnds() == g1.NumAnds() && g3.Depth() == g1.Depth() {
		// Different seeds normally differ in at least one statistic.
		v1, _ := simRandom(g1, 7)
		v3, _ := simRandom(g3, 7)
		same := true
		for i := 0; i < g1.NumPOs() && i < g3.NumPOs(); i++ {
			if v1.LitBit(g1.PO(i), 0) != v3.LitBit(g3.PO(i), 0) {
				same = false
			}
		}
		if same {
			t.Logf("warning: seeds 42/43 produced suspiciously similar circuits")
		}
	}
}

func TestROMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	values := make([]uint64, 32)
	for i := range values {
		values[i] = rng.Uint64() & 0xFF
	}
	g := ROM("rom", 5, 8, values)
	p := sim.Exhaustive(5)
	v := sim.Simulate(g, p)
	for m := 0; m < 32; m++ {
		if got := evalBus(g, v, 0, 8, m); got != values[m] {
			t.Fatalf("rom[%d] = %d, want %d", m, got, values[m])
		}
	}
}

func TestSuitesBuildAndCheck(t *testing.T) {
	for _, e := range All() {
		g := e.Build()
		if g == nil {
			t.Fatalf("%s: nil graph", e.Name)
		}
		if err := g.Check(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if g.NumAnds() == 0 {
			t.Fatalf("%s: empty circuit", e.Name)
		}
	}
}

func TestGet(t *testing.T) {
	if Get("rca32") == nil || Get("voter") == nil {
		t.Fatalf("Get failed for known benchmarks")
	}
	if Get("nonexistent") != nil {
		t.Fatalf("Get returned a graph for an unknown name")
	}
}

func TestArithEDOutputsFitValueMetrics(t *testing.T) {
	for _, e := range ArithED() {
		g := e.Build()
		if g.NumPOs() > 64 {
			t.Errorf("%s: %d POs exceed the value-metric limit", e.Name, g.NumPOs())
		}
	}
	for _, e := range EPFLArith() {
		g := e.Build()
		if g.NumPOs() > 64 {
			t.Errorf("%s: %d POs exceed the value-metric limit", e.Name, g.NumPOs())
		}
	}
}
