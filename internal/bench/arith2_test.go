package bench

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

func TestBrentKung(t *testing.T) {
	testAdder(t, BrentKung, 8)
	testAdder(t, BrentKung, 16)
	testAdder(t, BrentKung, 32)
	testAdder(t, BrentKung, 7) // non-power-of-two width
}

func TestCarrySelect(t *testing.T) {
	testAdder(t, func(n int) *aig.Graph { return CarrySelect(n, 4) }, 8)
	testAdder(t, func(n int) *aig.Graph { return CarrySelect(n, 4) }, 17)
	testAdder(t, func(n int) *aig.Graph { return CarrySelect(n, 5) }, 16)
}

func TestBoothSigned(t *testing.T) {
	n := 6
	g := Booth(n)
	if g.NumPIs() != 2*n || g.NumPOs() != 2*n {
		t.Fatalf("booth interface %d/%d", g.NumPIs(), g.NumPOs())
	}
	v, p := simRandom(g, 55)
	mask := uint64(1)<<(2*n) - 1
	for pat := 0; pat < 256; pat++ {
		a := signExtend(piValue(p, 0, n, pat), n)
		b := signExtend(piValue(p, n, n, pat), n)
		got := evalBus(g, v, 0, 2*n, pat)
		want := uint64(a*b) & mask
		if got != want {
			t.Fatalf("booth(%d,%d) = %x, want %x", a, b, got, want)
		}
	}
}

func signExtend(x uint64, n int) int64 {
	if x>>(n-1)&1 == 1 {
		x |= ^uint64(0) << n
	}
	return int64(x)
}

func TestParity(t *testing.T) {
	g := Parity(9)
	v, p := simRandom(g, 3)
	for pat := 0; pat < 256; pat++ {
		x := piValue(p, 0, 9, pat)
		want := false
		for b := 0; b < 9; b++ {
			if x>>b&1 == 1 {
				want = !want
			}
		}
		if v.LitBit(g.PO(0), pat) != want {
			t.Fatalf("parity(%09b) wrong", x)
		}
	}
}

func TestAbsDiff(t *testing.T) {
	n := 7
	g := AbsDiff(n)
	v, p := simRandom(g, 8)
	for pat := 0; pat < 256; pat++ {
		a := piValue(p, 0, n, pat)
		b := piValue(p, n, n, pat)
		got := evalBus(g, v, 0, n, pat)
		want := a - b
		if b > a {
			want = b - a
		}
		if got != want {
			t.Fatalf("|%d-%d| = %d, want %d", a, b, got, want)
		}
	}
}

func TestGrayEncode(t *testing.T) {
	n := 6
	g := GrayEncode(n)
	p := sim.Exhaustive(n)
	v := sim.Simulate(g, p)
	for x := 0; x < 1<<n; x++ {
		got := evalBus(g, v, 0, n, x)
		want := uint64(x) ^ uint64(x)>>1
		if got != want {
			t.Fatalf("gray(%d) = %b, want %b", x, got, want)
		}
	}
}

func TestSevenSeg(t *testing.T) {
	g := SevenSeg()
	p := sim.Exhaustive(4)
	v := sim.Simulate(g, p)
	// Digit 8 lights everything; digit 1 lights only segments b and c.
	if got := evalBus(g, v, 0, 7, 8); got != 0b1111111 {
		t.Fatalf("seg(8) = %07b", got)
	}
	if got := evalBus(g, v, 0, 7, 1); got != 0b0000110 {
		t.Fatalf("seg(1) = %07b", got)
	}
	for d := 10; d < 16; d++ {
		if got := evalBus(g, v, 0, 7, d); got != 0 {
			t.Fatalf("seg(%d) = %07b, want dark", d, got)
		}
	}
}
