package bench

import "repro/internal/aig"

// RCA builds an n-bit ripple-carry adder: PIs a[n], b[n]; POs s[n], cout.
// rca32 in the paper is RCA(32).
func RCA(n int) *aig.Graph {
	g := aig.New()
	g.Name = "rca" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))
	sum, cout := addBus(g, a, b, aig.LitFalse)
	addPOs(g, sum, "s")
	g.AddPO(cout, "cout")
	return g
}

// CLA builds an n-bit carry-lookahead adder with 4-bit lookahead blocks.
// cla32 in the paper is CLA(32).
func CLA(n int) *aig.Graph {
	g := aig.New()
	g.Name = "cla" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))

	p := make(bus, n) // propagate
	gen := make(bus, n)
	for i := 0; i < n; i++ {
		p[i] = g.Xor(a[i], b[i])
		gen[i] = g.And(a[i], b[i])
	}

	sum := make(bus, n)
	carry := aig.LitFalse
	for blk := 0; blk < n; blk += 4 {
		end := min(blk+4, n)
		// Carries inside the block from the block carry-in, two-level
		// lookahead: c_{i+1} = g_i ∨ p_i·c_i expanded.
		c := carry
		for i := blk; i < end; i++ {
			sum[i] = g.Xor(p[i], c)
			// expanded lookahead from block carry-in
			term := carry
			for j := blk; j <= i; j++ {
				term = g.And(term, p[j])
			}
			next := term
			for j := blk; j <= i; j++ {
				t := gen[j]
				for k := j + 1; k <= i; k++ {
					t = g.And(t, p[k])
				}
				next = g.Or(next, t)
			}
			c = next
		}
		carry = c
	}
	addPOs(g, sum, "s")
	g.AddPO(carry, "cout")
	return g
}

// KSA builds an n-bit Kogge-Stone parallel-prefix adder. ksa32 in the paper
// is KSA(32).
func KSA(n int) *aig.Graph {
	g := aig.New()
	g.Name = "ksa" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))

	p := make(bus, n)
	gen := make(bus, n)
	for i := 0; i < n; i++ {
		p[i] = g.Xor(a[i], b[i])
		gen[i] = g.And(a[i], b[i])
	}
	// Prefix combine: (G,P) ∘ (G',P') = (G ∨ P·G', P·P').
	G := append(bus(nil), gen...)
	P := append(bus(nil), p...)
	for d := 1; d < n; d *= 2 {
		ng := append(bus(nil), G...)
		np := append(bus(nil), P...)
		for i := d; i < n; i++ {
			ng[i] = g.Or(G[i], g.And(P[i], G[i-d]))
			np[i] = g.And(P[i], P[i-d])
		}
		G, P = ng, np
	}
	sum := make(bus, n)
	sum[0] = p[0]
	for i := 1; i < n; i++ {
		sum[i] = g.Xor(p[i], G[i-1])
	}
	addPOs(g, sum, "s")
	g.AddPO(G[n-1], "cout")
	return g
}

// ArrayMult builds an n×n array multiplier: PIs a[n], b[n]; POs p[2n].
// mtp8 in the paper is ArrayMult(8).
func ArrayMult(n int) *aig.Graph {
	g := aig.New()
	g.Name = "mtp" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))
	prod := multiplyBuses(g, a, b)
	addPOs(g, prod, "p")
	return g
}

// multiplyBuses builds a row-ripple array multiplier structure.
func multiplyBuses(g *aig.Graph, a, b bus) bus {
	n, m := len(a), len(b)
	prod := make(bus, n+m)
	for i := range prod {
		prod[i] = aig.LitFalse
	}
	acc := make(bus, 0, n)
	for j := 0; j < m; j++ {
		row := make(bus, n)
		for i := 0; i < n; i++ {
			row[i] = g.And(a[i], b[j])
		}
		if j == 0 {
			prod[0] = row[0]
			acc = row[1:]
			continue
		}
		sum, cout := addBus(g, acc, row, aig.LitFalse)
		prod[j] = sum[0]
		acc = append(sum[1:], cout)
	}
	copy(prod[m:], acc)
	return prod
}

// WallaceMult builds an n×n Wallace-tree multiplier: 3:2 compression of the
// partial products followed by a final ripple adder. wal8 in the paper is
// WallaceMult(8).
func WallaceMult(n int) *aig.Graph {
	g := aig.New()
	g.Name = "wal" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))
	addPOs(g, wallaceBuses(g, a, b), "p")
	return g
}

// wallaceBuses builds a Wallace-tree multiplier over two operand buses and
// returns the len(a)+len(b)-bit product.
func wallaceBuses(g *aig.Graph, a, b bus) bus {
	n, m := len(a), len(b)
	w := n + m
	// cols[k] = bits of weight k awaiting compression.
	cols := make([][]aig.Lit, w)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cols[i+j] = append(cols[i+j], g.And(a[i], b[j]))
		}
	}
	// Compress until every column has at most 2 bits.
	for {
		again := false
		next := make([][]aig.Lit, w)
		for k := 0; k < w; k++ {
			col := cols[k]
			for len(col) >= 3 {
				s, c := fullAdder(g, col[0], col[1], col[2])
				col = col[3:]
				next[k] = append(next[k], s)
				if k+1 < w {
					next[k+1] = append(next[k+1], c)
				}
				again = true
			}
			if len(col) == 2 {
				// Half adder.
				s := g.Xor(col[0], col[1])
				c := g.And(col[0], col[1])
				next[k] = append(next[k], s)
				if k+1 < w {
					next[k+1] = append(next[k+1], c)
				}
				again = true
				col = nil
			}
			next[k] = append(next[k], col...)
		}
		cols = next
		maxLen := 0
		for _, col := range cols {
			if len(col) > maxLen {
				maxLen = len(col)
			}
		}
		if maxLen <= 2 || !again {
			break
		}
	}
	// Final carry-propagate add of the two remaining rows.
	rowA := make(bus, w)
	rowB := make(bus, w)
	for k := 0; k < w; k++ {
		rowA[k], rowB[k] = aig.LitFalse, aig.LitFalse
		if len(cols[k]) > 0 {
			rowA[k] = cols[k][0]
		}
		if len(cols[k]) > 1 {
			rowB[k] = cols[k][1]
		}
	}
	sum, _ := addBus(g, rowA, rowB, aig.LitFalse)
	return sum[:w]
}

// Square builds an n-bit squarer (p = a·a): PIs a[n]; POs p[2n].
func Square(n int) *aig.Graph {
	g := aig.New()
	g.Name = "square" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	prod := multiplyBuses(g, a, a)
	addPOs(g, prod, "p")
	return g
}

// ALU builds a 4-bit ALU slice in the spirit of the MCNC alu4 benchmark:
// inputs a[4], b[4], cin, op[3]; outputs r[4], cout, zero, neg, ovf
// (12 PIs, 8 POs). Operations: add, sub, and, or, xor, nor, slt, pass-b.
func ALU() *aig.Graph {
	g := aig.New()
	g.Name = "alu4"
	a := bus(g.AddPIs(4, "a"))
	b := bus(g.AddPIs(4, "b"))
	cin := g.AddPI("cin")
	op := bus(g.AddPIs(3, "op"))

	// Decode op.
	dec := make([]aig.Lit, 8)
	for i := range dec {
		x0 := op[0].NotCond(i&1 == 0)
		x1 := op[1].NotCond(i&2 == 0)
		x2 := op[2].NotCond(i&4 == 0)
		dec[i] = g.AndN(x0, x1, x2)
	}

	addSum, addC := addBus(g, a, b, cin)
	subDiff, subBor := subBus(g, a, b)
	bitwise := func(f func(x, y aig.Lit) aig.Lit) bus {
		out := make(bus, 4)
		for i := range out {
			out[i] = f(a[i], b[i])
		}
		return out
	}
	andB := bitwise(g.And)
	orB := bitwise(g.Or)
	xorB := bitwise(g.Xor)
	norB := bitwise(func(x, y aig.Lit) aig.Lit { return g.Or(x, y).Not() })
	// slt: 1 when a < b (unsigned).
	slt := bus{subBor, aig.LitFalse, aig.LitFalse, aig.LitFalse}

	results := []bus{addSum[:4], subDiff[:4], andB, orB, xorB, norB, slt, b}
	r := make(bus, 4)
	for i := 0; i < 4; i++ {
		terms := make([]aig.Lit, len(results))
		for k, res := range results {
			terms[k] = g.And(dec[k], res[i])
		}
		r[i] = g.OrN(terms...)
	}
	cout := g.Or(g.And(dec[0], addC), g.And(dec[1], subBor))
	zero := g.OrN(r...).Not()
	neg := r[3]
	ovf := g.Xor(addC, subBor) // a simple flag mixing both chains

	addPOs(g, r, "r")
	g.AddPO(cout, "cout")
	g.AddPO(zero, "zero")
	g.AddPO(neg, "neg")
	g.AddPO(ovf, "ovf")
	return g
}

// Divider builds an n-bit restoring divider: PIs num[n], den[n]; POs q[n],
// r[n]. The EPFL "divisor" benchmark stands behind this generator (scaled).
func Divider(n int) *aig.Graph {
	g := aig.New()
	g.Name = "div" + itoa(n)
	num := bus(g.AddPIs(n, "n"))
	den := bus(g.AddPIs(n, "d"))

	rem := make(bus, n+1)
	for i := range rem {
		rem[i] = aig.LitFalse
	}
	den1 := append(append(bus(nil), den...), aig.LitFalse) // widen to n+1
	q := make(bus, n)
	for i := n - 1; i >= 0; i-- {
		// rem = rem<<1 | num[i]
		shifted := append(bus{num[i]}, rem[:n]...)
		diff, borrow := subBus(g, shifted, den1)
		q[i] = borrow.Not()
		rem = muxBus(g, q[i], diff, shifted)
	}
	addPOs(g, q, "q")
	addPOs(g, rem[:n], "r")
	return g
}

// Sqrt builds an integer square-root unit over an n-bit input (n even):
// PIs x[n]; POs r[n/2], computing r = floor(sqrt(x)) by restoring digit
// recurrence. The EPFL "sqrt" benchmark stands behind this generator.
func Sqrt(n int) *aig.Graph {
	if n%2 != 0 {
		panic("bench: Sqrt needs an even input width")
	}
	g := aig.New()
	g.Name = "sqrt" + itoa(n)
	x := bus(g.AddPIs(n, "x"))
	half := n / 2

	// rem and res grow as the recurrence proceeds; keep width n+2.
	w := n + 2
	rem := constBus(w, 0)
	res := constBus(w, 0)
	for i := half - 1; i >= 0; i-- {
		// rem = rem<<2 | x[2i+1..2i]
		rem = append(bus{x[2*i], x[2*i+1]}, rem[:w-2]...)
		// trial = res<<2 | 01
		trial := append(bus{aig.LitTrue, aig.LitFalse}, res[:w-2]...)
		diff, borrow := subBus(g, rem, trial)
		bit := borrow.Not()
		rem = muxBus(g, bit, diff, rem)
		// res = res<<1 | bit
		res = append(bus{bit}, res[:w-1]...)
	}
	addPOs(g, res[:half], "r")
	return g
}
