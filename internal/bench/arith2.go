package bench

import "repro/internal/aig"

// This file extends the benchmark family beyond the paper's Table III with
// additional arithmetic units commonly used in approximate-computing
// studies. They exercise the same flows and are handy for users adopting
// the library on their own designs.

// BrentKung builds an n-bit Brent-Kung parallel-prefix adder: PIs a[n],
// b[n]; POs s[n], cout. Compared with Kogge-Stone it trades depth for
// fewer prefix cells.
func BrentKung(n int) *aig.Graph {
	g := aig.New()
	g.Name = "bka" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))

	p := make(bus, n)
	gen := make(bus, n)
	for i := 0; i < n; i++ {
		p[i] = g.Xor(a[i], b[i])
		gen[i] = g.And(a[i], b[i])
	}
	// Prefix tree: carry[i] = generate of the range [0..i].
	G := append(bus(nil), gen...)
	P := append(bus(nil), p...)
	// Up-sweep.
	for d := 1; d < n; d *= 2 {
		for i := 2*d - 1; i < n; i += 2 * d {
			G[i] = g.Or(G[i], g.And(P[i], G[i-d]))
			P[i] = g.And(P[i], P[i-d])
		}
	}
	// Down-sweep.
	for d := largestPow2Below(n); d >= 2; d /= 2 {
		for i := d + d/2 - 1; i < n; i += d {
			G[i] = g.Or(G[i], g.And(P[i], G[i-d/2]))
			P[i] = g.And(P[i], P[i-d/2])
		}
	}
	sum := make(bus, n)
	sum[0] = p[0]
	for i := 1; i < n; i++ {
		sum[i] = g.Xor(p[i], G[i-1])
	}
	addPOs(g, sum, "s")
	g.AddPO(G[n-1], "cout")
	return g
}

func largestPow2Below(n int) int {
	d := 1
	for d*2 < n {
		d *= 2
	}
	return d
}

// CarrySelect builds an n-bit carry-select adder with the given block
// width: each block computes both carry hypotheses and a mux picks the
// real one. PIs a[n], b[n]; POs s[n], cout.
func CarrySelect(n, block int) *aig.Graph {
	g := aig.New()
	g.Name = "csa" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))

	sum := make(bus, n)
	carry := aig.LitFalse
	for lo := 0; lo < n; lo += block {
		hi := min(lo+block, n)
		// Ripple the block twice: carry-in 0 and carry-in 1.
		s0, c0 := rippleSlice(g, a[lo:hi], b[lo:hi], aig.LitFalse)
		s1, c1 := rippleSlice(g, a[lo:hi], b[lo:hi], aig.LitTrue)
		for i := lo; i < hi; i++ {
			sum[i] = g.Mux(carry, s1[i-lo], s0[i-lo])
		}
		carry = g.Mux(carry, c1, c0)
	}
	addPOs(g, sum, "s")
	g.AddPO(carry, "cout")
	return g
}

func rippleSlice(g *aig.Graph, a, b bus, cin aig.Lit) (bus, aig.Lit) {
	sum := make(bus, len(a))
	c := cin
	for i := range a {
		sum[i], c = fullAdder(g, a[i], b[i], c)
	}
	return sum, c
}

// Booth builds an n×n radix-4 Booth-recoded signed multiplier (two's
// complement): PIs a[n], b[n]; POs p[2n]. n must be even.
func Booth(n int) *aig.Graph {
	if n%2 != 0 {
		panic("bench: Booth needs an even width")
	}
	g := aig.New()
	g.Name = "booth" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))
	w := 2 * n

	// Sign-extend a to the full product width.
	aExt := make(bus, w)
	copy(aExt, a)
	for i := n; i < w; i++ {
		aExt[i] = a[n-1]
	}
	negAExt := negate(g, aExt)
	twoA := shiftLeftOne(aExt)
	negTwoA := negate(g, twoA)

	acc := constBus(w, 0)
	for j := 0; j < n; j += 2 {
		// Booth digits use bits b[j+1], b[j], b[j-1] (b[-1] = 0).
		bm1 := aig.LitFalse
		if j > 0 {
			bm1 = b[j-1]
		}
		b0, b1 := b[j], b[j+1]
		// digit = -2*b1 + b0 + bm1 ∈ {-2..2}
		isPlus1 := g.And(b1.Not(), g.Xor(b0, bm1))
		isPlus2 := g.AndN(b1.Not(), b0, bm1)
		isMinus1 := g.And(b1, g.Xor(b0, bm1))
		isMinus2 := g.AndN(b1, b0.Not(), bm1.Not())

		term := make(bus, w)
		for i := 0; i < w; i++ {
			term[i] = g.OrN(
				g.And(isPlus1, aExt[i]),
				g.And(isPlus2, twoA[i]),
				g.And(isMinus1, negAExt[i]),
				g.And(isMinus2, negTwoA[i]),
			)
		}
		// Shift by j and accumulate.
		shifted := make(bus, w)
		for i := 0; i < w; i++ {
			if i >= j {
				shifted[i] = term[i-j]
			} else {
				shifted[i] = aig.LitFalse
			}
		}
		acc, _ = addBus(g, acc, shifted, aig.LitFalse)
		acc = acc[:w]
	}
	addPOs(g, acc, "p")
	return g
}

// negate returns the two's complement of the bus.
func negate(g *aig.Graph, a bus) bus {
	inv := make(bus, len(a))
	for i := range a {
		inv[i] = a[i].Not()
	}
	s, _ := addBus(g, inv, constBus(len(a), 1), aig.LitFalse)
	return s[:len(a)]
}

func shiftLeftOne(a bus) bus {
	out := make(bus, len(a))
	out[0] = aig.LitFalse
	copy(out[1:], a[:len(a)-1])
	return out
}

// Parity builds an n-input parity tree: PIs x[n]; PO parity.
func Parity(n int) *aig.Graph {
	g := aig.New()
	g.Name = "parity" + itoa(n)
	xs := bus(g.AddPIs(n, "x"))
	g.AddPO(g.XorN(xs...), "p")
	return g
}

// AbsDiff builds an n-bit absolute-difference unit |a−b| (a core of motion
// estimation kernels): PIs a[n], b[n]; POs d[n].
func AbsDiff(n int) *aig.Graph {
	g := aig.New()
	g.Name = "absdiff" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))
	amb, borrow := subBus(g, a, b)
	bma, _ := subBus(g, b, a)
	addPOs(g, muxBus(g, borrow, bma[:n], amb[:n]), "d")
	return g
}

// GrayEncode builds an n-bit binary-to-Gray encoder: PIs x[n]; POs y[n].
func GrayEncode(n int) *aig.Graph {
	g := aig.New()
	g.Name = "gray" + itoa(n)
	x := bus(g.AddPIs(n, "x"))
	y := make(bus, n)
	for i := 0; i < n-1; i++ {
		y[i] = g.Xor(x[i], x[i+1])
	}
	y[n-1] = x[n-1]
	addPOs(g, y, "y")
	return g
}

// SevenSeg builds a BCD-to-seven-segment decoder: PIs d[4]; POs seg[7]
// (segments a..g, active high, inputs ≥ 10 dark).
func SevenSeg() *aig.Graph {
	// Segment patterns for digits 0-9, bit 0 = segment a.
	var digits = [10]uint64{
		0b0111111, 0b0000110, 0b1011011, 0b1001111, 0b1100110,
		0b1101101, 0b1111101, 0b0000111, 0b1111111, 0b1101111,
	}
	values := make([]uint64, 16)
	copy(values[:10], digits[:])
	g := ROM("bcd7seg", 4, 7, values)
	g.Name = "bcd7seg"
	return g
}
