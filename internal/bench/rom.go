package bench

import (
	"math"

	"repro/internal/aig"
	"repro/internal/tt"
)

// ROM synthesizes a combinational lookup table: PIs addr[nIn]; POs y[nOut].
// values[m] holds the output word for address m (low nOut bits used). Each
// output bit is built from its irredundant sum-of-products.
func ROM(name string, nIn, nOut int, values []uint64) *aig.Graph {
	if len(values) != 1<<nIn {
		panic("bench: ROM needs 2^nIn values")
	}
	g := aig.New()
	g.Name = name
	addr := bus(g.AddPIs(nIn, "addr"))

	for b := 0; b < nOut; b++ {
		on := tt.New(nIn)
		for m, v := range values {
			if v>>uint(b)&1 == 1 {
				on.Set(m, true)
			}
		}
		cover := tt.ISOP(on, tt.New(nIn))
		terms := make([]aig.Lit, 0, len(cover))
		for _, cube := range cover {
			lits := make([]aig.Lit, 0, nIn)
			for v := 0; v < nIn; v++ {
				bit := uint32(1) << uint(v)
				if cube.Pos&bit != 0 {
					lits = append(lits, addr[v])
				}
				if cube.Neg&bit != 0 {
					lits = append(lits, addr[v].Not())
				}
			}
			terms = append(terms, g.AndN(lits...))
		}
		g.AddPO(g.OrN(terms...), busName("y", b))
	}
	return g
}

// Sine builds an n-bit sine table: y = round((2^n−1)/2 · (1 + sin(2πx/2^n))).
// The EPFL "sine" benchmark is a 24-bit implementation; this is the scaled
// table form.
func Sine(n int) *aig.Graph {
	size := 1 << n
	maxV := float64(size - 1)
	values := make([]uint64, size)
	for x := 0; x < size; x++ {
		s := math.Sin(2 * math.Pi * float64(x) / float64(size))
		values[x] = uint64(math.Round(maxV / 2 * (1 + s)))
	}
	g := ROM("sine"+itoa(n), n, n, values)
	return g
}

// Log2 builds an n-bit fixed-point base-2 logarithm table with fracBits
// fractional output bits: y = round(log2(max(x,1)) · 2^fracBits). The EPFL
// "log2" benchmark is the 32-bit implementation; this is the scaled table
// form.
func Log2(n, fracBits int) *aig.Graph {
	size := 1 << n
	values := make([]uint64, size)
	var maxVal uint64
	for x := 0; x < size; x++ {
		v := 1.0
		if x > 1 {
			v = float64(x)
		}
		values[x] = uint64(math.Round(math.Log2(v) * float64(int(1)<<fracBits)))
		if values[x] > maxVal {
			maxVal = values[x]
		}
	}
	outBits := 1
	for uint64(1)<<outBits <= maxVal {
		outBits++
	}
	return ROM("log2_"+itoa(n), n, outBits, values)
}

// Comparator builds an n-bit three-way comparator: PIs a[n], b[n]; POs lt,
// eq, gt. Used by examples and tests.
func Comparator(n int) *aig.Graph {
	g := aig.New()
	g.Name = "cmp" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))
	_, borrow := subBus(g, a, b)
	eqBits := make([]aig.Lit, n)
	for i := 0; i < n; i++ {
		eqBits[i] = g.Xnor(a[i], b[i])
	}
	eq := g.AndN(eqBits...)
	lt := borrow
	gt := g.And(lt.Not(), eq.Not())
	g.AddPO(lt, "lt")
	g.AddPO(eq, "eq")
	g.AddPO(gt, "gt")
	return g
}
