package bench

import "repro/internal/aig"

// Entry names a benchmark and its generator.
type Entry struct {
	Name  string
	Build func() *aig.Graph
}

// Get builds the named benchmark from any suite, or nil when unknown.
func Get(name string) *aig.Graph {
	for _, suite := range [][]Entry{ISCASArith(), ArithED(), EPFLControl(), EPFLArith(), Extra()} {
		for _, e := range suite {
			if e.Name == name {
				return e.Build()
			}
		}
	}
	return nil
}

// All returns every benchmark entry across the suites, deduplicated by name.
func All() []Entry {
	var out []Entry
	seen := map[string]bool{}
	for _, suite := range [][]Entry{ISCASArith(), ArithED(), EPFLControl(), EPFLArith(), Extra()} {
		for _, e := range suite {
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// ISCASArith is the benchmark set of Table IV: ISCAS-class control circuits
// (seeded random substitutes with the original PI/PO profile, scaled
// gate counts) plus the arithmetic set. Circuit widths are scaled versus
// the paper to keep a laptop-class reproduction tractable; DESIGN.md
// discusses why ratios are preserved.
func ISCASArith() []Entry {
	return []Entry{
		{"alu4", ALU},
		{"c880", func() *aig.Graph { return RandomControl("c880", 30, 13, 250, 880) }},
		{"c1908", func() *aig.Graph { return RandomControl("c1908", 33, 25, 300, 1908) }},
		{"c2670", func() *aig.Graph { return RandomControl("c2670", 40, 32, 350, 2670) }},
		{"c3540", func() *aig.Graph { return RandomControl("c3540", 28, 22, 400, 3540) }},
		{"c5315", func() *aig.Graph { return RandomControl("c5315", 45, 40, 450, 5315) }},
		{"c7552", func() *aig.Graph { return RandomControl("c7552", 50, 35, 500, 7552) }},
		{"cla32", func() *aig.Graph { return CLA(32) }},
		{"ksa32", func() *aig.Graph { return KSA(32) }},
		{"mtp8", func() *aig.Graph { return ArrayMult(8) }},
		{"rca32", func() *aig.Graph { return RCA(32) }},
		{"wal8", func() *aig.Graph { return WallaceMult(8) }},
	}
}

// ArithED is the benchmark set of Table V (NMED constraint): the arithmetic
// circuits whose outputs encode binary numbers.
func ArithED() []Entry {
	return []Entry{
		{"cla32", func() *aig.Graph { return CLA(32) }},
		{"ksa32", func() *aig.Graph { return KSA(32) }},
		{"mtp8", func() *aig.Graph { return ArrayMult(8) }},
		{"rca32", func() *aig.Graph { return RCA(32) }},
		{"wal8", func() *aig.Graph { return WallaceMult(8) }},
	}
}

// EPFLControl is the benchmark set of Table VI: the EPFL random/control
// suite (generated equivalents, scaled; substitutions documented).
func EPFLControl() []Entry {
	return []Entry{
		{"arbiter", func() *aig.Graph { return Arbiter(32) }},
		{"cavlc", func() *aig.Graph { return RandomControl("cavlc", 10, 11, 180, 101) }},
		{"ctrl", func() *aig.Graph { return RandomControl("ctrl", 7, 25, 60, 27) }},
		{"decoder", func() *aig.Graph { return Decoder(6) }},
		{"i2c", func() *aig.Graph { return RandomControl("i2c", 32, 30, 300, 147) }},
		{"int2float", func() *aig.Graph { return Int2Float(11, 4, 3) }},
		{"mem_ctrl", func() *aig.Graph { return RandomControl("mem_ctrl", 48, 40, 700, 1204) }},
		{"priority", func() *aig.Graph { return Priority(64) }},
		{"router", func() *aig.Graph { return RandomControl("router", 20, 12, 90, 60) }},
		{"voter", func() *aig.Graph { return Voter(63) }},
	}
}

// EPFLArith is the benchmark set of Table VII: the EPFL arithmetic suite
// (generated equivalents, scaled; "hyp" is excluded exactly as in the
// paper, which could not synthesize it within 24 hours).
func EPFLArith() []Entry {
	return []Entry{
		{"adder", func() *aig.Graph { return RCA(32) }},
		{"shifter", func() *aig.Graph { return Shifter(32) }},
		{"divisor", func() *aig.Graph { return Divider(8) }},
		{"log2", func() *aig.Graph { return Log2(8, 4) }},
		{"max", func() *aig.Graph { return Max(16) }},
		{"mult", func() *aig.Graph { return ArrayMult(8) }},
		{"sine", func() *aig.Graph { return Sine(8) }},
		{"sqrt", func() *aig.Graph { return Sqrt(16) }},
		{"square", func() *aig.Graph { return Square(12) }},
	}
}

// Extra lists additional generated circuits beyond the paper's Table III:
// alternative adder/multiplier architectures and small control blocks that
// broaden the library for downstream users.
func Extra() []Entry {
	return []Entry{
		{"bka32", func() *aig.Graph { return BrentKung(32) }},
		{"csa32", func() *aig.Graph { return CarrySelect(32, 4) }},
		{"booth8", func() *aig.Graph { return Booth(8) }},
		{"parity16", func() *aig.Graph { return Parity(16) }},
		{"absdiff8", func() *aig.Graph { return AbsDiff(8) }},
		{"gray8", func() *aig.Graph { return GrayEncode(8) }},
		{"bcd7seg", SevenSeg},
		{"cmp16", func() *aig.Graph { return Comparator(16) }},
		// Smallest registered member of the scalable MACTree family; the
		// big members (e.g. mac2048x8, >10^6 ANDs) are built on demand via
		// MACTree/benchgen -family to keep build-all tests fast.
		{"mac16x4", func() *aig.Graph { return MACTree(16, 4, 1) }},
	}
}
