package bench

import (
	"math/rand"

	"repro/internal/aig"
)

// MACTree builds a scalable multiply-accumulate forest: `units` independent
// width-bit multipliers whose products are summed by a balanced binary adder
// tree. It is the repo's synthetic million-node family — MACTree(2048, 8, 1)
// exceeds 10^6 AND nodes — used to exercise windowed resubstitution at a
// scale the Table III circuits never reach.
//
// The circuit is fully deterministic from (units, width, seed): the seed
// drives only the per-unit multiplier architecture (row-ripple array vs
// Wallace tree), giving the family structural variety without sacrificing
// reproducibility. Two calls with equal parameters build bitwise-identical
// graphs; the golden-hash test pins this.
//
// Interface: PIs a<u>[width], b<u>[width] for each unit u (unit u's operands
// start at PI index u*2*width); POs s[outW] encode
// sum(a<u> * b<u>) for all units, with outW wide enough to hold the exact
// sum (2*width bits per product plus one bit per tree level).
func MACTree(units, width int, seed int64) *aig.Graph {
	if units < 1 || width < 1 {
		panic("bench: MACTree needs units >= 1 and width >= 1")
	}
	g := aig.New()
	g.Name = "mac" + itoa(units) + "x" + itoa(width)
	rng := rand.New(rand.NewSource(seed))

	prods := make([]bus, units)
	for u := 0; u < units; u++ {
		a := bus(g.AddPIs(width, "a"+itoa(u)))
		b := bus(g.AddPIs(width, "b"+itoa(u)))
		if rng.Intn(2) == 0 {
			prods[u] = multiplyBuses(g, a, b)
		} else {
			prods[u] = wallaceBuses(g, a, b)
		}
	}

	// Balanced reduction: each level halves the bus count and grows the
	// running sums by one carry bit; an odd straggler rides to the next
	// level untouched (addBus zero-extends the narrower operand).
	for len(prods) > 1 {
		next := make([]bus, 0, (len(prods)+1)/2)
		for i := 0; i+1 < len(prods); i += 2 {
			sum, cout := addBus(g, prods[i], prods[i+1], aig.LitFalse)
			next = append(next, append(sum, cout))
		}
		if len(prods)%2 == 1 {
			next = append(next, prods[len(prods)-1])
		}
		prods = next
	}
	addPOs(g, prods[0], "s")
	return g
}
