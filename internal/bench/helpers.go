// Package bench generates the benchmark circuits of the paper's evaluation
// (Table III) from scratch: ISCAS-class control logic, the SIS-optimized
// arithmetic set (rca32, cla32, ksa32, mtp8, wal8, alu4) and the EPFL
// random/control and arithmetic suites. Where the original netlists are not
// reproducible offline (ISCAS c-series, several EPFL control circuits),
// seeded pseudo-random multi-level logic with the same PI/PO profile stands
// in; arithmetic circuits are generated as real adders, multipliers,
// dividers, shifters and square-root units, scaled to tractable widths.
// DESIGN.md lists every substitution.
package bench

import "repro/internal/aig"

// bus is a little-endian vector of literals (index 0 = LSB).
type bus []aig.Lit

// addPOs registers all bus bits as outputs named prefix0..prefixN-1.
func addPOs(g *aig.Graph, b bus, prefix string) {
	for i, l := range b {
		g.AddPO(l, busName(prefix, i))
	}
}

func busName(prefix string, i int) string {
	return prefix + "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// fullAdder returns sum and carry of three bits.
func fullAdder(g *aig.Graph, a, b, c aig.Lit) (sum, carry aig.Lit) {
	axb := g.Xor(a, b)
	sum = g.Xor(axb, c)
	carry = g.Or(g.And(a, b), g.And(axb, c))
	return
}

// addBus returns a+b+cin as a sum bus of max(len) bits plus carry-out,
// using a ripple chain. Shorter operands are zero-extended.
func addBus(g *aig.Graph, a, b bus, cin aig.Lit) (bus, aig.Lit) {
	n := max(len(a), len(b))
	sum := make(bus, n)
	carry := cin
	for i := 0; i < n; i++ {
		ai, bi := aig.LitFalse, aig.LitFalse
		if i < len(a) {
			ai = a[i]
		}
		if i < len(b) {
			bi = b[i]
		}
		sum[i], carry = fullAdder(g, ai, bi, carry)
	}
	return sum, carry
}

// subBus returns a-b and the borrow-out (1 when a < b).
func subBus(g *aig.Graph, a, b bus) (bus, aig.Lit) {
	n := max(len(a), len(b))
	diff := make(bus, n)
	borrow := aig.LitFalse
	for i := 0; i < n; i++ {
		ai, bi := aig.LitFalse, aig.LitFalse
		if i < len(a) {
			ai = a[i]
		}
		if i < len(b) {
			bi = b[i]
		}
		axb := g.Xor(ai, bi)
		diff[i] = g.Xor(axb, borrow)
		// borrow' = ¬a·b + ¬(a⊕b)·borrow
		borrow = g.Or(g.And(ai.Not(), bi), g.And(axb.Not(), borrow))
	}
	return diff, borrow
}

// muxBus selects a when s is true, else b, bit by bit.
func muxBus(g *aig.Graph, s aig.Lit, a, b bus) bus {
	n := max(len(a), len(b))
	out := make(bus, n)
	for i := 0; i < n; i++ {
		ai, bi := aig.LitFalse, aig.LitFalse
		if i < len(a) {
			ai = a[i]
		}
		if i < len(b) {
			bi = b[i]
		}
		out[i] = g.Mux(s, ai, bi)
	}
	return out
}

// constBus returns the width-bit little-endian constant v.
func constBus(width int, v uint64) bus {
	b := make(bus, width)
	for i := range b {
		if v>>uint(i)&1 == 1 {
			b[i] = aig.LitTrue
		} else {
			b[i] = aig.LitFalse
		}
	}
	return b
}

// geq returns a >= b (unsigned).
func geq(g *aig.Graph, a, b bus) aig.Lit {
	_, borrow := subBus(g, a, b)
	return borrow.Not()
}
