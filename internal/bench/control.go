package bench

import (
	"math/rand"

	"repro/internal/aig"
)

// Decoder builds an n-to-2^n line decoder: PIs s[n]; POs d[2^n] (one-hot).
// The EPFL "decoder" benchmark is Decoder(8); scaled variants keep the
// exact same structure.
func Decoder(n int) *aig.Graph {
	g := aig.New()
	g.Name = "decoder" + itoa(n)
	s := bus(g.AddPIs(n, "s"))
	for m := 0; m < 1<<n; m++ {
		lits := make([]aig.Lit, n)
		for i := 0; i < n; i++ {
			lits[i] = s[i].NotCond(m>>i&1 == 0)
		}
		g.AddPO(g.AndN(lits...), busName("d", m))
	}
	return g
}

// Priority builds an n-input priority encoder: PIs r[n]; POs idx[ceil(log2 n)]
// (index of the highest-priority asserted input, higher index wins) and a
// valid flag. The EPFL "priority" benchmark is the 128-input variant.
func Priority(n int) *aig.Graph {
	g := aig.New()
	g.Name = "priority" + itoa(n)
	r := bus(g.AddPIs(n, "r"))

	// anyAbove[i] = r[i+1] | ... | r[n-1]
	sel := make(bus, n) // sel[i]: r[i] is the highest asserted input
	anyAbove := aig.LitFalse
	for i := n - 1; i >= 0; i-- {
		sel[i] = g.And(r[i], anyAbove.Not())
		anyAbove = g.Or(anyAbove, r[i])
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for b := 0; b < bits; b++ {
		var terms []aig.Lit
		for i := 0; i < n; i++ {
			if i>>b&1 == 1 {
				terms = append(terms, sel[i])
			}
		}
		g.AddPO(g.OrN(terms...), busName("idx", b))
	}
	g.AddPO(anyAbove, "valid")
	return g
}

// Arbiter builds an n-client fixed-priority arbiter with an enable input:
// PIs req[n], en; POs grant[n], busy. Structurally a priority chain like
// the EPFL "arbiter" (which is a larger round-robin design; scaled
// substitute documented in DESIGN.md).
func Arbiter(n int) *aig.Graph {
	g := aig.New()
	g.Name = "arbiter" + itoa(n)
	req := bus(g.AddPIs(n, "req"))
	en := g.AddPI("en")

	taken := aig.LitFalse
	grants := make(bus, n)
	for i := 0; i < n; i++ {
		grants[i] = g.AndN(req[i], taken.Not(), en)
		taken = g.Or(taken, req[i])
	}
	addPOs(g, grants, "gnt")
	g.AddPO(g.And(taken, en), "busy")
	return g
}

// Voter builds an n-input majority voter (n odd): PIs v[n]; PO maj. It
// counts ones with a full-adder tree and compares against n/2, like the
// EPFL "voter" (1001 inputs; scaled substitute).
func Voter(n int) *aig.Graph {
	if n%2 == 0 {
		panic("bench: Voter needs an odd input count")
	}
	g := aig.New()
	g.Name = "voter" + itoa(n)
	v := bus(g.AddPIs(n, "v"))

	count := popCount(g, v)
	threshold := constBus(len(count), uint64(n/2)+1)
	g.AddPO(geq(g, count, threshold), "maj")
	return g
}

// popCount sums the bits of v into a binary count using a balanced
// carry-save adder tree.
func popCount(g *aig.Graph, v bus) bus {
	// Work with a list of equal-weight buses and add them pairwise.
	items := make([]bus, len(v))
	for i, l := range v {
		items[i] = bus{l}
	}
	for len(items) > 1 {
		var next []bus
		for i := 0; i+1 < len(items); i += 2 {
			sum, cout := addBus(g, items[i], items[i+1], aig.LitFalse)
			next = append(next, append(sum, cout))
		}
		if len(items)%2 == 1 {
			next = append(next, items[len(items)-1])
		}
		items = next
	}
	return items[0]
}

// Shifter builds an n-bit logical right barrel shifter: PIs x[n],
// sh[log2 n]; POs y[n]. The EPFL "shifter" benchmark is the 64-bit variant.
func Shifter(n int) *aig.Graph {
	g := aig.New()
	g.Name = "shifter" + itoa(n)
	x := bus(g.AddPIs(n, "x"))
	bits := 0
	for 1<<bits < n {
		bits++
	}
	sh := bus(g.AddPIs(bits, "sh"))

	cur := x
	for b := 0; b < bits; b++ {
		amount := 1 << b
		shifted := make(bus, n)
		for i := 0; i < n; i++ {
			if i+amount < n {
				shifted[i] = cur[i+amount]
			} else {
				shifted[i] = aig.LitFalse
			}
		}
		cur = muxBus(g, sh[b], shifted, cur)
	}
	addPOs(g, cur, "y")
	return g
}

// Max builds a two-operand n-bit maximum unit: PIs a[n], b[n]; POs m[n].
// The EPFL "max" benchmark computes the max of four 128-bit words; this is
// the scaled two-word form.
func Max(n int) *aig.Graph {
	g := aig.New()
	g.Name = "max" + itoa(n)
	a := bus(g.AddPIs(n, "a"))
	b := bus(g.AddPIs(n, "b"))
	aGeB := geq(g, a, b)
	addPOs(g, muxBus(g, aGeB, a, b), "m")
	return g
}

// Int2Float converts an n-bit unsigned integer to a small floating-point
// format with expBits exponent bits and manBits mantissa bits (no sign,
// truncation rounding), like the EPFL "int2float" (11-bit to 7-bit).
func Int2Float(n, expBits, manBits int) *aig.Graph {
	g := aig.New()
	g.Name = "int2float" + itoa(n)
	x := bus(g.AddPIs(n, "x"))

	// Exponent = index of the leading one (0 when x = 0).
	sel := make(bus, n) // one-hot leading-one position
	anyAbove := aig.LitFalse
	for i := n - 1; i >= 0; i-- {
		sel[i] = g.And(x[i], anyAbove.Not())
		anyAbove = g.Or(anyAbove, x[i])
	}
	exp := make(bus, expBits)
	for b := 0; b < expBits; b++ {
		var terms []aig.Lit
		for i := 0; i < n; i++ {
			if i>>b&1 == 1 {
				terms = append(terms, sel[i])
			}
		}
		exp[b] = g.OrN(terms...)
	}
	// Mantissa = the manBits bits below the leading one (left-aligned).
	man := make(bus, manBits)
	for b := 0; b < manBits; b++ {
		var terms []aig.Lit
		for i := 0; i < n; i++ {
			src := i - 1 - b // bit position feeding mantissa bit (MSB first)
			if src >= 0 {
				terms = append(terms, g.And(sel[i], x[src]))
			}
		}
		man[manBits-1-b] = g.OrN(terms...)
	}
	addPOs(g, man, "man")
	addPOs(g, exp, "exp")
	return g
}

// RandomControl builds a seeded pseudo-random multi-level control circuit
// with the given interface and AND-gate budget. It substitutes benchmarks
// whose netlists are not reproducible offline (ISCAS c-series, EPFL cavlc/
// i2c/mem_ctrl/router): random control logic exercises the same ALS code
// paths (irregular structure, wide fanin cones, no arithmetic encoding).
func RandomControl(name string, nPI, nPO, nGates int, seed int64) *aig.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	g.Name = name
	lits := bus(g.AddPIs(nPI, "x"))

	for attempts := 0; len(lits) < nPI+nGates && attempts < 100*nGates; attempts++ {
		// Bias fanin choice toward recent signals for depth.
		pick := func() aig.Lit {
			i := len(lits) - 1 - rng.Intn(min(len(lits), 3*nPI))
			if i < 0 {
				i = rng.Intn(len(lits))
			}
			return lits[i].NotCond(rng.Intn(2) == 0)
		}
		a, b := pick(), pick()
		before := g.NumNodes()
		var l aig.Lit
		switch rng.Intn(4) {
		case 0, 1:
			l = g.And(a, b)
		case 2:
			l = g.Or(a, b)
		default:
			l = g.Xor(a, b)
		}
		if g.NumNodes() > before {
			lits = append(lits, l)
		}
	}
	// Outputs: the most recently created distinct signals.
	for i := 0; i < nPO; i++ {
		g.AddPO(lits[len(lits)-1-i%nGates], busName("f", i))
	}
	return g
}
