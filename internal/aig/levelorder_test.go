package aig

import (
	"math/rand"
	"sort"
	"testing"
)

func randomTestGraph(rng *rand.Rand, nPIs, nAnds int) *Graph {
	g := New()
	lits := make([]Lit, 0, nPIs+nAnds)
	for _, l := range g.AddPIs(nPIs, "x") {
		lits = append(lits, l)
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		lits = append(lits, g.And(a, b))
	}
	g.AddPO(lits[len(lits)-1], "f")
	return g
}

// TestLevelOrderMatchesStableSort checks that the counting-sorted level
// order is exactly the ids 1..NumNodes−1 stable-sorted by (level, id), with
// correct CSR level boundaries.
func TestLevelOrderMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomTestGraph(rng, 2+rng.Intn(6), 5+rng.Intn(60))
		levels := g.Levels()
		order, start := g.LevelOrder(levels)

		want := make([]Node, 0, g.NumNodes()-1)
		for n := Node(1); int(n) < g.NumNodes(); n++ {
			want = append(want, n)
		}
		sort.SliceStable(want, func(i, j int) bool {
			return levels[want[i]] < levels[want[j]]
		})
		if len(order) != len(want) {
			t.Fatalf("trial %d: order length %d, want %d", trial, len(order), len(want))
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("trial %d: order[%d] = %d, want %d", trial, i, order[i], want[i])
			}
		}
		for lev := 0; lev+1 < len(start); lev++ {
			for _, n := range order[start[lev]:start[lev+1]] {
				if int(levels[n]) != lev {
					t.Fatalf("trial %d: node %d (level %d) in bucket %d", trial, n, levels[n], lev)
				}
			}
		}
		if int(start[len(start)-1]) != len(order) {
			t.Fatalf("trial %d: last CSR boundary %d, want %d",
				trial, start[len(start)-1], len(order))
		}
	}
}

// TestConeMarkerMatchesTFICone checks epoch-stamped cone marking against
// TFICone across repeated marks on the same marker (the reuse pattern of the
// candidate generation scan).
func TestConeMarkerMatchesTFICone(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := randomTestGraph(rng, 5, 80)
	m := NewConeMarker(g)
	// Repeatedly mark cones in random node order: stale stamps from bigger
	// earlier cones must never leak into later smaller ones.
	for trial := 0; trial < 200; trial++ {
		v := Node(1 + rng.Intn(g.NumNodes()-1))
		m.MarkTFI(g, v)
		in := make(map[Node]bool)
		for _, u := range g.TFICone(v) {
			in[u] = true
		}
		for u := Node(0); int(u) < g.NumNodes(); u++ {
			if m.InCone(u) != in[u] {
				t.Fatalf("trial %d node %d: InCone(%d) = %v, TFICone says %v",
					trial, v, u, m.InCone(u), in[u])
			}
		}
	}
}

// TestConeMarkerEpochOverflow forces the epoch wrap path.
func TestConeMarkerEpochOverflow(t *testing.T) {
	g := New()
	a := g.AddPIs(2, "x")
	f := g.And(a[0], a[1])
	g.AddPO(f, "f")
	m := NewConeMarker(g)
	m.MarkTFI(g, f.Node())
	m.epoch = 1<<31 - 1 // next MarkTFI must clear and restart
	m.MarkTFI(g, a[0].Node())
	if !m.InCone(a[0].Node()) || m.InCone(f.Node()) {
		t.Fatalf("epoch wrap corrupted cone membership")
	}
}
