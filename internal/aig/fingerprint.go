package aig

import "hash/fnv"

// Fingerprint returns a 64-bit FNV-1a hash of the graph's visible structure
// and interface: the primary inputs (count and names), every live AND gate's
// fanin literals in id order, and the primary output literals and names.
// Dead (recycled) slots, per-slot epochs and the free list do not
// contribute, so a graph fingerprints identically to its id-preserving
// raw-codec round trip, and two parses of the same circuit file always
// collide. Names are included deliberately: the fingerprint addresses cached
// results, and a served result must carry the exact PI/PO names of the
// submission it answers.
//
// The hash is structural, not semantic — two logically equivalent graphs
// with different gate decompositions fingerprint differently. That is the
// right granularity for content addressing: the synthesis flow is
// deterministic in (graph structure, options), not in the Boolean function
// alone.
func Fingerprint(g *Graph) uint64 {
	h := fnv.New64a()
	var w [8]byte
	putU64 := func(v uint64) {
		w[0] = byte(v)
		w[1] = byte(v >> 8)
		w[2] = byte(v >> 16)
		w[3] = byte(v >> 24)
		w[4] = byte(v >> 32)
		w[5] = byte(v >> 40)
		w[6] = byte(v >> 48)
		w[7] = byte(v >> 56)
		h.Write(w[:])
	}
	putStr := func(s string) {
		putU64(uint64(len(s)))
		h.Write([]byte(s))
	}

	putU64(uint64(g.NumPIs()))
	for i := 0; i < g.NumPIs(); i++ {
		putU64(uint64(g.PI(i)))
		putStr(g.PIName(i))
	}
	for n := Node(0); int(n) < g.NumNodes(); n++ {
		if g.Kind(n) != KindAnd {
			continue
		}
		putU64(uint64(n))
		putU64(uint64(g.Fanin0(n)))
		putU64(uint64(g.Fanin1(n)))
	}
	putU64(uint64(g.NumPOs()))
	for i := 0; i < g.NumPOs(); i++ {
		putU64(uint64(g.PO(i)))
		putStr(g.POName(i))
	}
	return h.Sum64()
}
