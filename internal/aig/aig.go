// Package aig implements an And-Inverter Graph (AIG), the circuit
// representation used throughout this repository.
//
// An AIG is a directed acyclic graph in which every internal node is a
// two-input AND gate and every edge may carry an optional complement
// (inversion) marker. Following the convention of the ABC system, edges are
// encoded as literals: a literal is 2*node+1 if the edge is complemented and
// 2*node otherwise. Node 0 is the constant-zero node, so the literal 0 is
// Boolean false and the literal 1 is Boolean true.
//
// Graphs are built incrementally with And and its derived helpers (Or, Xor,
// Mux, ...). Construction maintains two invariants that the rest of the
// repository relies on:
//
//   - Structural hashing: at most one AND node exists for any ordered pair of
//     fanin literals, and trivial identities (x·0=0, x·1=x, x·x=x, x·¬x=0)
//     never allocate a node.
//   - Topological ordering by id: the fanins of a node always have smaller
//     ids than the node itself, so iterating ids in increasing order visits
//     the graph in topological order.
package aig

import (
	"fmt"
	"math"
)

// Node identifies a vertex of the graph. Node 0 is the constant-zero node.
type Node int32

// Lit is an edge reference: a node id shifted left by one, with the low bit
// set when the edge is complemented.
type Lit uint32

// Predefined literals for the Boolean constants.
const (
	LitFalse Lit = 0 // constant node, plain
	LitTrue  Lit = 1 // constant node, complemented
)

// MakeLit builds the literal that refers to node n, complemented when neg is
// true.
func MakeLit(n Node, neg bool) Lit {
	l := Lit(n) << 1
	if neg {
		l |= 1
	}
	return l
}

// Node returns the node the literal points at.
func (l Lit) Node() Node { return Node(l >> 1) }

// IsCompl reports whether the literal carries a complement marker.
func (l Lit) IsCompl() bool { return l&1 == 1 }

// Not returns the complement of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotCond complements the literal when c is true and returns it unchanged
// otherwise.
func (l Lit) NotCond(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// Regular strips the complement marker.
func (l Lit) Regular() Lit { return l &^ 1 }

// String renders the literal in the conventional "¬n7"/"n7" form.
func (l Lit) String() string {
	if l.IsCompl() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// Kind classifies a node.
type Kind uint8

// The node kinds of an AIG. KindDead marks a recycled slot: a node freed by
// an in-place replacement whose id may be reused by a later allocation (see
// ReplaceNode). Dead slots carry cleared fanins, are never referenced by live
// nodes or primary outputs, and are skipped by every consumer that filters on
// KindAnd — which is all of them.
const (
	KindConst Kind = iota // the constant-zero node (always node 0)
	KindPI                // primary input
	KindAnd               // two-input AND gate
	KindDead              // freed slot awaiting recycling
)

// Graph is a mutable, structurally hashed AIG.
//
// The zero value is not usable; call New.
type Graph struct {
	Name string // optional design name, carried through I/O

	kind   []Kind
	fanin0 []Lit // valid only for KindAnd nodes
	fanin1 []Lit // valid only for KindAnd nodes

	pis []Node
	pos []Lit

	piNames []string
	poNames []string

	strash map[uint64]Node
	nAnds  int

	// free holds the ids of KindDead slots in strictly increasing order;
	// And() recycles the smallest free slot whose id exceeds both fanin ids,
	// preserving the topological id-ordering invariant. epoch[n] is bumped
	// whenever slot n changes meaning (allocated, recycled or freed), so
	// simulation arenas detect structurally dirty slots by comparing a
	// remembered epoch against the graph's.
	free  []Node
	epoch []uint32

	// repl is scratch reused across ReplaceNode calls (never cloned).
	repl replaceScratch
}

// New returns an empty graph containing only the constant node.
func New() *Graph {
	g := &Graph{
		kind:   make([]Kind, 1, 64),
		fanin0: make([]Lit, 1, 64),
		fanin1: make([]Lit, 1, 64),
		epoch:  make([]uint32, 1, 64),
		strash: make(map[uint64]Node),
	}
	g.kind[0] = KindConst
	return g
}

// NumNodes returns the total number of nodes including the constant node.
func (g *Graph) NumNodes() int { return len(g.kind) }

// NumPIs returns the number of primary inputs.
func (g *Graph) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *Graph) NumPOs() int { return len(g.pos) }

// NumAnds returns the number of AND nodes.
func (g *Graph) NumAnds() int { return g.nAnds }

// Kind returns the kind of node n.
func (g *Graph) Kind(n Node) Kind { return g.kind[n] }

// IsAnd reports whether node n is an AND gate.
func (g *Graph) IsAnd(n Node) bool { return g.kind[n] == KindAnd }

// Fanin0 returns the first fanin literal of an AND node.
func (g *Graph) Fanin0(n Node) Lit { return g.fanin0[n] }

// Fanin1 returns the second fanin literal of an AND node.
func (g *Graph) Fanin1(n Node) Lit { return g.fanin1[n] }

// PI returns the node of the i-th primary input.
func (g *Graph) PI(i int) Node { return g.pis[i] }

// PIs returns the primary input nodes in creation order. The returned slice
// is owned by the graph and must not be modified.
func (g *Graph) PIs() []Node { return g.pis }

// PO returns the literal driving the i-th primary output.
func (g *Graph) PO(i int) Lit { return g.pos[i] }

// POs returns the primary output literals in creation order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) POs() []Lit { return g.pos }

// PIName returns the name of the i-th primary input ("" when unnamed).
func (g *Graph) PIName(i int) string {
	if i < len(g.piNames) {
		return g.piNames[i]
	}
	return ""
}

// POName returns the name of the i-th primary output ("" when unnamed).
func (g *Graph) POName(i int) string {
	if i < len(g.poNames) {
		return g.poNames[i]
	}
	return ""
}

// PIIndex returns the input index of PI node n, or -1 when n is not a PI.
func (g *Graph) PIIndex(n Node) int {
	if g.kind[n] != KindPI {
		return -1
	}
	for i, p := range g.pis {
		if p == n {
			return i
		}
	}
	return -1
}

// AddPI appends a primary input with the given name and returns its literal.
func (g *Graph) AddPI(name string) Lit {
	n := g.newNode(KindPI, 0, 0)
	g.pis = append(g.pis, n)
	g.piNames = append(g.piNames, name)
	return MakeLit(n, false)
}

// AddPIs appends k unnamed inputs named prefix0..prefix{k-1} and returns
// their literals.
func (g *Graph) AddPIs(k int, prefix string) []Lit {
	lits := make([]Lit, k)
	for i := range lits {
		lits[i] = g.AddPI(fmt.Sprintf("%s%d", prefix, i))
	}
	return lits
}

// AddPO registers lit as a primary output with the given name and returns
// the output index.
func (g *Graph) AddPO(l Lit, name string) int {
	g.pos = append(g.pos, l)
	g.poNames = append(g.poNames, name)
	return len(g.pos) - 1
}

// SetPO redirects the i-th primary output to drive lit.
func (g *Graph) SetPO(i int, l Lit) { g.pos[i] = l }

// Epoch returns the structural epoch of slot n (see the free/epoch fields).
func (g *Graph) Epoch(n Node) uint32 { return g.epoch[n] }

// NumDead returns the number of dead (recyclable) slots.
func (g *Graph) NumDead() int { return len(g.free) }

func (g *Graph) newNode(k Kind, f0, f1 Lit) Node {
	if k == KindAnd {
		if n, ok := g.recycleSlot(max(f0.Node(), f1.Node())); ok {
			g.kind[n] = KindAnd
			g.fanin0[n] = f0
			g.fanin1[n] = f1
			g.epoch[n]++
			return n
		}
	}
	n := Node(len(g.kind))
	g.kind = append(g.kind, k)
	g.fanin0 = append(g.fanin0, f0)
	g.fanin1 = append(g.fanin1, f1)
	g.epoch = append(g.epoch, 1)
	return n
}

// recycleSlot pops the smallest free slot with id strictly greater than
// minAbove — the largest fanin id of the node about to occupy it — so the
// topological id-ordering invariant survives recycling. The free list is
// sorted ascending, so a binary search finds the candidate.
//
//alsrac:hotpath
func (g *Graph) recycleSlot(minAbove Node) (Node, bool) {
	lo, hi := 0, len(g.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.free[mid] <= minAbove {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(g.free) {
		return 0, false
	}
	n := g.free[lo]
	copy(g.free[lo:], g.free[lo+1:])
	g.free = g.free[:len(g.free)-1]
	return n, true
}

// freeNode marks an AND slot dead and queues it for recycling: the strash
// entry is dropped, the fanins are cleared, the epoch is bumped and the id
// is inserted into the sorted free list. The caller guarantees the node is
// unreferenced.
//
//alsrac:hotpath
func (g *Graph) freeNode(n Node) {
	delete(g.strash, uint64(g.fanin0[n])<<32|uint64(g.fanin1[n]))
	g.kind[n] = KindDead
	g.fanin0[n] = 0
	g.fanin1[n] = 0
	g.epoch[n]++
	g.nAnds--
	// Insert keeping the list sorted; frees arrive in descending id order
	// during a dead sweep, so the insertion point is usually the front.
	lo, hi := 0, len(g.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.free[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g.free = append(g.free, 0)
	copy(g.free[lo+1:], g.free[lo:])
	g.free[lo] = n
}

// And returns a literal for the conjunction of a and b, folding constants,
// applying the trivial identities and reusing an existing node when one with
// the same fanins already exists.
func (g *Graph) And(a, b Lit) Lit {
	// Normalize operand order so that the strash key is canonical.
	if a > b {
		a, b = b, a
	}
	// Trivial cases. After ordering, a constant operand must be a.
	switch {
	case a == LitFalse:
		return LitFalse
	case a == LitTrue:
		return b
	case a == b:
		return a
	case a == b.Not():
		return LitFalse
	}
	key := uint64(a)<<32 | uint64(b)
	if n, ok := g.strash[key]; ok {
		return MakeLit(n, false)
	}
	n := g.newNode(KindAnd, a, b)
	g.strash[key] = n
	g.nAnds++
	return MakeLit(n, false)
}

// Or returns a literal for the disjunction of a and b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal for the exclusive-or of a and b.
func (g *Graph) Xor(a, b Lit) Lit {
	// a^b = (a ∨ b) ∧ ¬(a ∧ b)
	return g.And(g.Or(a, b), g.And(a, b).Not())
}

// Xnor returns a literal for the complement of the exclusive-or of a and b.
func (g *Graph) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns a literal for "if s then t else e".
func (g *Graph) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// AndN returns the conjunction of all literals in xs (true when empty),
// combined as a balanced tree to keep the logic depth logarithmic.
func (g *Graph) AndN(xs ...Lit) Lit { return g.reduceBalanced(xs, g.And, LitTrue) }

// OrN returns the disjunction of all literals in xs (false when empty),
// combined as a balanced tree.
func (g *Graph) OrN(xs ...Lit) Lit {
	return g.reduceBalanced(xs, g.Or, LitFalse)
}

// XorN returns the parity of all literals in xs (false when empty).
func (g *Graph) XorN(xs ...Lit) Lit {
	return g.reduceBalanced(xs, g.Xor, LitFalse)
}

func (g *Graph) reduceBalanced(xs []Lit, op func(Lit, Lit) Lit, unit Lit) Lit {
	switch len(xs) {
	case 0:
		return unit
	case 1:
		return xs[0]
	}
	mid := len(xs) / 2
	return op(g.reduceBalanced(xs[:mid], op, unit), g.reduceBalanced(xs[mid:], op, unit))
}

// Levels returns the logic level of every node: PIs and the constant are at
// level 0 and an AND node is one above the maximum of its fanins.
func (g *Graph) Levels() []int32 {
	lev := make([]int32, g.NumNodes())
	for n := Node(1); int(n) < g.NumNodes(); n++ {
		if g.kind[n] != KindAnd {
			continue
		}
		l0 := lev[g.fanin0[n].Node()]
		l1 := lev[g.fanin1[n].Node()]
		lev[n] = max(l0, l1) + 1
	}
	return lev
}

// Depth returns the maximum logic level over the primary outputs.
func (g *Graph) Depth() int {
	lev := g.Levels()
	d := int32(0)
	for _, po := range g.pos {
		d = max(d, lev[po.Node()])
	}
	return int(d)
}

// RefCounts returns, for every node, the number of fanout references from
// AND nodes and primary outputs.
func (g *Graph) RefCounts() []int32 {
	refs := make([]int32, g.NumNodes())
	for n := Node(1); int(n) < g.NumNodes(); n++ {
		if g.kind[n] == KindAnd {
			refs[g.fanin0[n].Node()]++
			refs[g.fanin1[n].Node()]++
		}
	}
	for _, po := range g.pos {
		refs[po.Node()]++
	}
	return refs
}

// Stats summarizes the size and shape of a graph.
type Stats struct {
	PIs   int
	POs   int
	Ands  int
	Depth int
}

// Stats returns size statistics for the graph.
func (g *Graph) Stats() Stats {
	return Stats{PIs: g.NumPIs(), POs: g.NumPOs(), Ands: g.NumAnds(), Depth: g.Depth()}
}

// String implements fmt.Stringer with a short one-line summary.
func (g *Graph) String() string {
	s := g.Stats()
	name := g.Name
	if name == "" {
		name = "aig"
	}
	return fmt.Sprintf("%s: pi=%d po=%d and=%d depth=%d", name, s.PIs, s.POs, s.Ands, s.Depth)
}

// Check validates the structural invariants of the graph and returns a
// descriptive error when one is violated. It is intended for tests and for
// debugging transformations.
func (g *Graph) Check() error {
	if g.NumNodes() == 0 || g.kind[0] != KindConst {
		return fmt.Errorf("aig: node 0 is not the constant node")
	}
	if g.NumNodes() > math.MaxInt32 {
		return fmt.Errorf("aig: too many nodes")
	}
	for n := Node(1); int(n) < g.NumNodes(); n++ {
		switch g.kind[n] {
		case KindPI:
		case KindDead:
			if g.fanin0[n] != 0 || g.fanin1[n] != 0 {
				return fmt.Errorf("aig: dead node %d has uncleared fanins", n)
			}
		case KindAnd:
			f0, f1 := g.fanin0[n], g.fanin1[n]
			if f0.Node() >= n || f1.Node() >= n {
				return fmt.Errorf("aig: node %d has fanin with id >= its own", n)
			}
			if f0 > f1 {
				return fmt.Errorf("aig: node %d has unordered fanins", n)
			}
			if f0 == f1 || f0 == f1.Not() {
				return fmt.Errorf("aig: node %d has duplicate/complementary fanins", n)
			}
		default:
			return fmt.Errorf("aig: node %d has invalid kind %d", n, g.kind[n])
		}
	}
	for i, po := range g.pos {
		if int(po.Node()) >= g.NumNodes() {
			return fmt.Errorf("aig: PO %d points at nonexistent node", i)
		}
	}
	return nil
}
