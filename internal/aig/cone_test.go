package aig

import "testing"

// buildDiamond returns a graph with a reconvergent diamond:
//
//	f = (a&b) & (a&c)   with shared input a.
func buildDiamond(t *testing.T) (*Graph, Lit, Lit, Lit, Lit, Lit, Lit) {
	t.Helper()
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	ac := g.And(a, c)
	f := g.And(ab, ac)
	g.AddPO(f, "f")
	return g, a, b, c, ab, ac, f
}

func TestTFICone(t *testing.T) {
	g, a, b, c, ab, ac, f := buildDiamond(t)
	cone := g.TFICone(f.Node())
	want := map[Node]bool{
		a.Node(): true, b.Node(): true, c.Node(): true,
		ab.Node(): true, ac.Node(): true, f.Node(): true,
	}
	if len(cone) != len(want) {
		t.Fatalf("cone size = %d, want %d (%v)", len(cone), len(want), cone)
	}
	for _, n := range cone {
		if !want[n] {
			t.Errorf("unexpected node %d in TFI cone", n)
		}
	}
	// Cone of a single AND excludes unrelated nodes.
	coneAB := g.TFICone(ab.Node())
	for _, n := range coneAB {
		if n == c.Node() || n == ac.Node() || n == f.Node() {
			t.Errorf("TFI(ab) contains unrelated node %d", n)
		}
	}
}

func TestTFIMaskMatchesCone(t *testing.T) {
	g, _, _, _, _, ac, f := buildDiamond(t)
	mask := make([]bool, g.NumNodes())
	g.TFIMask(f.Node(), mask)
	cone := g.TFICone(f.Node())
	n := 0
	for id, in := range mask {
		if in {
			n++
			found := false
			for _, c := range cone {
				if c == Node(id) {
					found = true
				}
			}
			if !found {
				t.Errorf("mask marks %d but cone misses it", id)
			}
		}
	}
	if n != len(cone) {
		t.Fatalf("mask count %d != cone size %d", n, len(cone))
	}
	// Reuse the mask for a smaller cone; stale marks must be cleared.
	g.TFIMask(ac.Node(), mask)
	if mask[f.Node()] {
		t.Fatalf("mask not reset between calls")
	}
}

func TestTFOCone(t *testing.T) {
	g, a, _, _, ab, ac, f := buildDiamond(t)
	tfo := g.TFOCone(a.Node())
	want := map[Node]bool{a.Node(): true, ab.Node(): true, ac.Node(): true, f.Node(): true}
	if len(tfo) != len(want) {
		t.Fatalf("TFO size = %d want %d", len(tfo), len(want))
	}
	for _, n := range tfo {
		if !want[n] {
			t.Errorf("unexpected node %d in TFO", n)
		}
	}
	tfoAB := g.TFOCone(ab.Node())
	if len(tfoAB) != 2 { // ab and f
		t.Fatalf("TFO(ab) = %v", tfoAB)
	}
}

func TestSupport(t *testing.T) {
	g, _, _, _, ab, _, f := buildDiamond(t)
	if s := g.Support(f); len(s) != 3 {
		t.Fatalf("Support(f) = %v, want all 3 PIs", s)
	}
	if s := g.Support(ab); len(s) != 2 || s[0] != 0 || s[1] != 1 {
		t.Fatalf("Support(ab) = %v, want [0 1]", s)
	}
}

func TestMFFCSize(t *testing.T) {
	g, _, _, _, ab, ac, f := buildDiamond(t)
	refs := g.RefCounts()
	// f's MFFC contains all three ANDs: ab and ac are only used by f.
	if got := g.MFFCSize(f.Node(), refs); got != 3 {
		t.Fatalf("MFFC(f) = %d, want 3", got)
	}
	// refs must be restored.
	refs2 := g.RefCounts()
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatalf("MFFCSize corrupted refs at node %d", i)
		}
	}
	// Now give ab a second fanout: its MFFC no longer belongs to f.
	g.AddPO(MakeLit(ab.Node(), false), "g")
	refs = g.RefCounts()
	if got := g.MFFCSize(f.Node(), refs); got != 2 { // f and ac only
		t.Fatalf("MFFC(f) with shared ab = %d, want 2", got)
	}
	if got := g.MFFCSize(ac.Node(), refs); got != 1 {
		t.Fatalf("MFFC(ac) = %d, want 1", got)
	}
}

func TestCopyWithSweepsDangling(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	f := g.And(a, b)
	g.And(a, b.Not()) // dangling
	g.AddPO(f, "f")
	ng := g.Sweep()
	if ng.NumAnds() != 1 {
		t.Fatalf("sweep kept dangling node: %d ANDs", ng.NumAnds())
	}
	if ng.NumPIs() != 2 || ng.PIName(1) != "b" {
		t.Fatalf("sweep lost PIs or names")
	}
	if err := ng.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyWithSubstitution(t *testing.T) {
	// f = (a&b) & c; substitute node (a&b) by literal a: f becomes a&c.
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	f := g.And(ab, c)
	g.AddPO(f, "f")
	ng := g.CopyWith(map[Node]Lit{ab.Node(): a})
	if ng.NumAnds() != 1 {
		t.Fatalf("substituted graph has %d ANDs, want 1", ng.NumAnds())
	}
	// Verify function: f' = a & c.
	po := ng.PO(0)
	n := po.Node()
	if ng.Kind(n) != KindAnd {
		t.Fatalf("PO is not an AND")
	}
	// Both fanins must be plain PI literals a and c.
	f0, f1 := ng.Fanin0(n), ng.Fanin1(n)
	pins := map[Node]bool{f0.Node(): true, f1.Node(): true}
	if !pins[ng.PI(0)] || !pins[ng.PI(2)] || f0.IsCompl() || f1.IsCompl() || po.IsCompl() {
		t.Fatalf("substitution produced wrong structure")
	}
	_ = b
}

func TestCopyWithSubstituteByConstant(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	ab := g.And(a, b)
	g.AddPO(ab, "f")
	ng := g.CopyWith(map[Node]Lit{ab.Node(): LitTrue})
	if ng.NumAnds() != 0 {
		t.Fatalf("constant substitution left %d ANDs", ng.NumAnds())
	}
	if ng.PO(0) != LitTrue {
		t.Fatalf("PO = %v, want const 1", ng.PO(0))
	}
}

func TestCopyWithComplementedPO(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b).Not(), "nand")
	ng := g.Sweep()
	if !ng.PO(0).IsCompl() {
		t.Fatalf("PO complement lost in copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b), "f")
	c := g.Clone()
	c.AddPI("c")
	c.And(a, b.Not())
	if g.NumPIs() != 2 || g.NumAnds() != 1 {
		t.Fatalf("mutating clone affected original")
	}
	if c.NumPIs() != 3 || c.NumAnds() != 2 {
		t.Fatalf("clone did not accept mutations")
	}
}

func TestCopyWithSelfComplement(t *testing.T) {
	// Substituting a node by its own complement must terminate and flip
	// the node's function in place.
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	ab := g.And(a, b)
	g.AddPO(ab, "f")
	ng := g.CopyWith(map[Node]Lit{ab.Node(): ab.Not()})
	if !ng.PO(0).IsCompl() {
		t.Fatalf("PO should be the complemented AND")
	}
	if ng.NumAnds() != 1 {
		t.Fatalf("ANDs = %d, want 1", ng.NumAnds())
	}
}

// TestCopyWithIdentityProperty: substituting every AND node by itself must
// reproduce a functionally identical graph (checked structurally thanks to
// canonical strashing of the copy).
func TestCopyWithIdentityProperty(t *testing.T) {
	g := New()
	xs := g.AddPIs(4, "x")
	f1 := g.Or(g.And(xs[0], xs[1]), g.Xor(xs[2], xs[3]))
	f2 := g.Mux(xs[0], f1, xs[2])
	g.AddPO(f1, "f1")
	g.AddPO(f2.Not(), "f2")

	sub := map[Node]Lit{}
	for n := Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			sub[n] = MakeLit(n, false)
		}
	}
	ng := g.CopyWith(sub)
	plain := g.Sweep()
	if ng.NumAnds() != plain.NumAnds() || ng.NumPOs() != plain.NumPOs() {
		t.Fatalf("identity substitution changed the graph: %d vs %d ANDs",
			ng.NumAnds(), plain.NumAnds())
	}
	for i := 0; i < ng.NumPOs(); i++ {
		if ng.PO(i) != plain.PO(i) {
			t.Fatalf("PO %d differs after identity substitution", i)
		}
	}
}
