package aig

import (
	"strconv"
	"strings"
	"testing"
)

// buildCheckedGraph returns a small strictly valid graph: two AND levels
// over three inputs with one output.
func buildCheckedGraph(t *testing.T) (*Graph, Node, Node) {
	t.Helper()
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "f")
	if err := g.CheckStrict(); err != nil {
		t.Fatalf("valid graph must pass CheckStrict: %v", err)
	}
	return g, x.Node(), y.Node()
}

func TestCheckStrictAcceptsBuiltGraphs(t *testing.T) {
	g, _, _ := buildCheckedGraph(t)
	for _, derived := range []*Graph{g.Clone(), g.Sweep()} {
		if err := derived.CheckStrict(); err != nil {
			t.Errorf("derived graph must pass CheckStrict: %v", err)
		}
	}
}

func TestCheckStrictReportsCycle(t *testing.T) {
	g, x, y := buildCheckedGraph(t)
	// Corrupt x's first fanin to point forward at y, closing the cycle
	// x -> y -> x. Fanin ordering is violated too; the error must name one
	// of the nodes on the cycle either way.
	g.fanin0[x] = MakeLit(y, false)
	err := g.CheckStrict()
	if err == nil {
		t.Fatal("CheckStrict must reject a cyclic graph")
	}
	if !mentionsNode(err.Error(), x) && !mentionsNode(err.Error(), y) {
		t.Errorf("cycle error must name an offending node (%d or %d): %v", x, y, err)
	}
	// The basic Check catches the forward edge via id ordering; make sure
	// the explicit traversal finds the loop on its own too.
	err = g.checkAcyclic()
	if err == nil {
		t.Fatal("checkAcyclic must detect the x -> y -> x loop")
	}
	if !strings.Contains(err.Error(), "cycle") ||
		(!mentionsNode(err.Error(), x) && !mentionsNode(err.Error(), y)) {
		t.Errorf("checkAcyclic must report a cycle naming node %d or %d: %v", x, y, err)
	}
}

func TestCheckStrictReportsStaleStrashEntry(t *testing.T) {
	t.Run("entry for vanished structure", func(t *testing.T) {
		g, x, _ := buildCheckedGraph(t)
		// Fabricate an entry whose fanins no node has.
		bogus := uint64(MakeLit(1, true))<<32 | uint64(MakeLit(2, true))
		g.strash[bogus] = x
		err := g.CheckStrict()
		if err == nil {
			t.Fatal("CheckStrict must reject a stale structural-hash entry")
		}
		if !strings.Contains(err.Error(), "structural-hash") {
			t.Errorf("error must blame the structural-hash table: %v", err)
		}
	})
	t.Run("entry redirected to the wrong node", func(t *testing.T) {
		g, x, y := buildCheckedGraph(t)
		key := uint64(g.fanin0[x])<<32 | uint64(g.fanin1[x])
		g.strash[key] = y // x's structure now resolves to y
		err := g.CheckStrict()
		if err == nil {
			t.Fatal("CheckStrict must reject a redirected structural-hash entry")
		}
		if !mentionsNode(err.Error(), x) && !mentionsNode(err.Error(), y) {
			t.Errorf("error must name the offending node (%d or %d): %v", x, y, err)
		}
	})
	t.Run("missing entry", func(t *testing.T) {
		g, x, _ := buildCheckedGraph(t)
		key := uint64(g.fanin0[x])<<32 | uint64(g.fanin1[x])
		delete(g.strash, key)
		err := g.CheckStrict()
		if err == nil {
			t.Fatal("CheckStrict must reject a missing structural-hash entry")
		}
		if !mentionsNode(err.Error(), x) {
			t.Errorf("error must name node %d: %v", x, err)
		}
	})
}

func TestCheckLevelsReportsWrongLevel(t *testing.T) {
	g, _, y := buildCheckedGraph(t)
	levels := g.Levels()
	if err := g.CheckLevels(levels); err != nil {
		t.Fatalf("fresh levels must validate: %v", err)
	}
	levels[y]++ // corrupt the top node's level
	err := g.CheckLevels(levels)
	if err == nil {
		t.Fatal("CheckLevels must reject a corrupted level")
	}
	if !mentionsNode(err.Error(), y) {
		t.Errorf("error must name node %d: %v", y, err)
	}

	short := levels[:len(levels)-1]
	if g.CheckLevels(short) == nil {
		t.Error("CheckLevels must reject a level slice of the wrong length")
	}
}

func TestCheckStrictReportsWrongAndCount(t *testing.T) {
	g, _, _ := buildCheckedGraph(t)
	g.nAnds++
	if err := g.CheckStrict(); err == nil {
		t.Error("CheckStrict must reject a wrong cached AND count")
	}
}

func TestCheckStrictReportsBrokenPIList(t *testing.T) {
	g, x, _ := buildCheckedGraph(t)
	g.pis[1] = x // an AND node posing as a PI
	err := g.CheckStrict()
	if err == nil {
		t.Fatal("CheckStrict must reject a non-PI node in the input list")
	}
	if !mentionsNode(err.Error(), x) {
		t.Errorf("error must name node %d: %v", x, err)
	}
}

// mentionsNode reports whether the error text contains the node id as its
// own token (not as a substring of a larger number).
func mentionsNode(msg string, n Node) bool {
	fields := strings.FieldsFunc(msg, func(r rune) bool {
		return r < '0' || r > '9'
	})
	want := strconv.Itoa(int(n))
	for _, f := range fields {
		if f == want {
			return true
		}
	}
	return false
}
