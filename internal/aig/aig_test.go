package aig

import (
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	l := MakeLit(7, true)
	if l.Node() != 7 || !l.IsCompl() {
		t.Fatalf("MakeLit(7,true) = %v", l)
	}
	if l.Not().IsCompl() {
		t.Fatalf("Not did not clear complement")
	}
	if l.Regular() != MakeLit(7, false) {
		t.Fatalf("Regular failed")
	}
	if l.NotCond(false) != l || l.NotCond(true) != l.Not() {
		t.Fatalf("NotCond failed")
	}
	if LitFalse.Not() != LitTrue {
		t.Fatalf("constants are not complements")
	}
}

func TestAndTrivialCases(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")

	cases := []struct {
		name string
		got  Lit
		want Lit
	}{
		{"x*0", g.And(a, LitFalse), LitFalse},
		{"0*x", g.And(LitFalse, a), LitFalse},
		{"x*1", g.And(a, LitTrue), a},
		{"1*x", g.And(LitTrue, a), a},
		{"x*x", g.And(a, a), a},
		{"x*!x", g.And(a, a.Not()), LitFalse},
		{"!x*!x", g.And(a.Not(), a.Not()), a.Not()},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
	if g.NumAnds() != 0 {
		t.Fatalf("trivial cases allocated %d AND nodes", g.NumAnds())
	}
	_ = b
}

func TestStructuralHashing(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Fatalf("And(a,b) != And(b,a): %v vs %v", x, y)
	}
	if g.NumAnds() != 1 {
		t.Fatalf("expected 1 AND node, got %d", g.NumAnds())
	}
	z := g.And(a.Not(), b)
	if z == x {
		t.Fatalf("different functions hashed to the same node")
	}
	if g.NumAnds() != 2 {
		t.Fatalf("expected 2 AND nodes, got %d", g.NumAnds())
	}
}

func TestDerivedGates(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	s := g.AddPI("s")
	or := g.Or(a, b)
	xor := g.Xor(a, b)
	mux := g.Mux(s, a, b)
	g.AddPO(or, "or")
	g.AddPO(xor, "xor")
	g.AddPO(mux, "mux")

	// Evaluate by brute force over the 8 input combinations.
	eval := func(root Lit, va, vb, vs bool) bool {
		vals := make([]bool, g.NumNodes())
		vals[a.Node()] = va
		vals[b.Node()] = vb
		vals[s.Node()] = vs
		for n := Node(1); int(n) < g.NumNodes(); n++ {
			if g.Kind(n) != KindAnd {
				continue
			}
			f0, f1 := g.Fanin0(n), g.Fanin1(n)
			v0 := vals[f0.Node()] != f0.IsCompl()
			v1 := vals[f1.Node()] != f1.IsCompl()
			vals[n] = v0 && v1
		}
		return vals[root.Node()] != root.IsCompl()
	}
	for i := 0; i < 8; i++ {
		va, vb, vs := i&1 != 0, i&2 != 0, i&4 != 0
		if got, want := eval(or, va, vb, vs), va || vb; got != want {
			t.Errorf("or(%v,%v) = %v", va, vb, got)
		}
		if got, want := eval(xor, va, vb, vs), va != vb; got != want {
			t.Errorf("xor(%v,%v) = %v", va, vb, got)
		}
		want := vb
		if vs {
			want = va
		}
		if got := eval(mux, va, vb, vs); got != want {
			t.Errorf("mux(%v;%v,%v) = %v", vs, va, vb, got)
		}
	}
}

func TestLevelsAndDepth(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	abc := g.And(ab, c)
	g.AddPO(abc, "f")
	lev := g.Levels()
	if lev[a.Node()] != 0 || lev[ab.Node()] != 1 || lev[abc.Node()] != 2 {
		t.Fatalf("levels wrong: %v", lev)
	}
	if g.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", g.Depth())
	}
}

func TestAndNBalanced(t *testing.T) {
	g := New()
	xs := g.AddPIs(16, "x")
	f := g.AndN(xs...)
	g.AddPO(f, "f")
	if d := g.Depth(); d != 4 {
		t.Fatalf("AndN(16) depth = %d, want 4", d)
	}
	if g.AndN() != LitTrue {
		t.Fatalf("empty AndN should be true")
	}
	if g.OrN() != LitFalse {
		t.Fatalf("empty OrN should be false")
	}
	if g.AndN(xs[3]) != xs[3] {
		t.Fatalf("single-element AndN should be identity")
	}
}

func TestRefCounts(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	ab := g.And(a, b)
	f := g.And(ab, a.Not()) // note: a used twice
	g.AddPO(f, "f")
	g.AddPO(ab, "g")
	refs := g.RefCounts()
	if refs[a.Node()] != 2 {
		t.Errorf("refs[a] = %d, want 2", refs[a.Node()])
	}
	if refs[ab.Node()] != 2 { // one AND fanout + one PO
		t.Errorf("refs[ab] = %d, want 2", refs[ab.Node()])
	}
	if refs[f.Node()] != 1 {
		t.Errorf("refs[f] = %d, want 1", refs[f.Node()])
	}
}

func TestCheckValid(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.Xor(a, b), "f")
	if err := g.Check(); err != nil {
		t.Fatalf("Check on valid graph: %v", err)
	}
}

// TestStrashIdempotent checks, with random literal pairs, that And is a
// pure function of its arguments: calling it twice returns the same literal
// and never grows the graph the second time.
func TestStrashIdempotent(t *testing.T) {
	g := New()
	lits := g.AddPIs(8, "x")
	// Build some structure to draw literals from.
	for i := 0; i < 50; i++ {
		a := lits[(i*7)%len(lits)]
		b := lits[(i*13+5)%len(lits)].Not()
		lits = append(lits, g.And(a, b))
	}
	f := func(i, j uint8, ci, cj bool) bool {
		a := lits[int(i)%len(lits)].NotCond(ci)
		b := lits[int(j)%len(lits)].NotCond(cj)
		x := g.And(a, b)
		before := g.NumNodes()
		y := g.And(a, b)
		return x == y && g.NumNodes() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPINames(t *testing.T) {
	g := New()
	g.AddPI("alpha")
	g.AddPI("beta")
	po := g.AddPO(LitTrue, "out")
	if g.PIName(0) != "alpha" || g.PIName(1) != "beta" {
		t.Fatalf("PI names wrong")
	}
	if g.POName(po) != "out" {
		t.Fatalf("PO name wrong")
	}
	if g.PIIndex(g.PI(1)) != 1 {
		t.Fatalf("PIIndex wrong")
	}
	if g.PIIndex(0) != -1 {
		t.Fatalf("PIIndex of const should be -1")
	}
}

func TestStatsAndString(t *testing.T) {
	g := New()
	g.Name = "demo"
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b), "f")
	s := g.Stats()
	if s.PIs != 2 || s.POs != 1 || s.Ands != 1 || s.Depth != 1 {
		t.Fatalf("stats = %+v", s)
	}
	str := g.String()
	if str != "demo: pi=2 po=1 and=1 depth=1" {
		t.Fatalf("String = %q", str)
	}
	g2 := New()
	if g2.String() != "aig: pi=0 po=0 and=0 depth=0" {
		t.Fatalf("unnamed String = %q", g2.String())
	}
}

func TestLitString(t *testing.T) {
	if MakeLit(5, false).String() != "n5" || MakeLit(5, true).String() != "!n5" {
		t.Fatalf("Lit.String wrong")
	}
}
