package aig

// CopyWith rebuilds the graph into a fresh, structurally hashed graph,
// substituting nodes along the way. For every entry old→lit in sub, all
// references to node old are redirected to the literal lit. Substitution
// targets are interpreted against the ORIGINAL graph: the target's cone is
// rebuilt from the original node functions, with no substitution applied
// inside it. This makes a substitution like n→¬n well defined (flip a node)
// and rules out substitution cycles by construction; chains of dependent
// replacements are applied with one CopyWith call each.
//
// Nodes that become unreachable from the primary outputs are dropped, so
// CopyWith doubles as a cleanup ("sweep") pass.
func (g *Graph) CopyWith(sub map[Node]Lit) *Graph {
	ng := New()
	ng.Name = g.Name

	const unset = ^Lit(0)
	newLit := make([]Lit, g.NumNodes())  // substituted resolution
	origLit := make([]Lit, g.NumNodes()) // original-function resolution
	for i := range newLit {
		newLit[i] = unset
		origLit[i] = unset
	}
	newLit[0], origLit[0] = LitFalse, LitFalse
	for i, pi := range g.pis {
		l := ng.AddPI(g.piNames[i])
		newLit[pi], origLit[pi] = l, l
	}

	// resolveOrig rebuilds node n's original function, ignoring sub.
	var resolveOrig func(n Node) Lit
	resolveOrig = func(n Node) Lit {
		if origLit[n] != unset {
			return origLit[n]
		}
		f0 := resolveOrig(g.fanin0[n].Node()).NotCond(g.fanin0[n].IsCompl())
		f1 := resolveOrig(g.fanin1[n].Node()).NotCond(g.fanin1[n].IsCompl())
		l := ng.And(f0, f1)
		origLit[n] = l
		return l
	}

	// resolve rebuilds node n with substitutions applied at substituted
	// nodes (targets resolved via resolveOrig).
	var resolve func(n Node) Lit
	resolve = func(n Node) Lit {
		if newLit[n] != unset {
			return newLit[n]
		}
		if target, ok := sub[n]; ok {
			l := resolveOrig(target.Node()).NotCond(target.IsCompl())
			newLit[n] = l
			return l
		}
		f0 := resolve(g.fanin0[n].Node()).NotCond(g.fanin0[n].IsCompl())
		f1 := resolve(g.fanin1[n].Node()).NotCond(g.fanin1[n].IsCompl())
		l := ng.And(f0, f1)
		newLit[n] = l
		return l
	}

	for i, po := range g.pos {
		nl := resolve(po.Node()).NotCond(po.IsCompl())
		ng.AddPO(nl, g.poNames[i])
	}
	// A substitution can make a consumer fold to a constant or a fanin after
	// its cone was already rebuilt, stranding the cone as garbage in ng. A
	// second, substitution-free pass rebuilds only what the POs reach; it
	// cannot strand anything itself because a canonical graph re-folds to
	// exactly the same literals.
	refs := ng.RefCounts()
	for n := Node(1); int(n) < ng.NumNodes(); n++ {
		if ng.kind[n] == KindAnd && refs[n] == 0 {
			return ng.CopyWith(nil)
		}
	}
	return ng
}

// Clone returns a deep copy of the graph with identical node ids.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Name:    g.Name,
		kind:    append([]Kind(nil), g.kind...),
		fanin0:  append([]Lit(nil), g.fanin0...),
		fanin1:  append([]Lit(nil), g.fanin1...),
		pis:     append([]Node(nil), g.pis...),
		pos:     append([]Lit(nil), g.pos...),
		piNames: append([]string(nil), g.piNames...),
		poNames: append([]string(nil), g.poNames...),
		strash:  make(map[uint64]Node, len(g.strash)),
		nAnds:   g.nAnds,
		free:    append([]Node(nil), g.free...),
		epoch:   append([]uint32(nil), g.epoch...),
	}
	for k, v := range g.strash {
		ng.strash[k] = v
	}
	return ng
}

// Sweep returns a cleaned-up copy: structurally hashed, constants folded and
// dangling nodes removed. Equivalent to CopyWith(nil).
func (g *Graph) Sweep() *Graph { return g.CopyWith(nil) }
