package aig

import "fmt"

// CheckStrict validates every invariant the repository's transformations
// rely on, beyond the structural basics of Check: acyclicity (by explicit
// traversal, not just the id-ordering convention), fanin ordering and
// normalization, structural-hash table consistency in both directions, the
// AND-node count, and primary-input bookkeeping. It is the runtime
// companion of the alsraclint static analyzers — flow tests call it on
// every circuit the flow produces, so a transformation that corrupts the
// graph is caught at the iteration that broke it, with the offending node
// id in the error.
func (g *Graph) CheckStrict() error {
	if err := g.Check(); err != nil {
		return err
	}
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	if err := g.checkStrash(); err != nil {
		return err
	}
	if err := g.checkPIs(); err != nil {
		return err
	}
	return g.checkRecycling()
}

// checkRecycling validates the slot-recycling bookkeeping added for in-place
// replacement: the free list must enumerate exactly the KindDead slots in
// strictly increasing order, no live AND node or primary output may reference
// a dead slot, and the epoch slice must cover every slot (epochs themselves
// carry no invariant beyond length — they only need to change when a slot
// does, which the arena tests pin behaviorally).
func (g *Graph) checkRecycling() error {
	if len(g.epoch) != g.NumNodes() {
		return fmt.Errorf("aig: epoch slice has %d entries for %d nodes", len(g.epoch), g.NumNodes())
	}
	dead := 0
	for n := Node(1); int(n) < g.NumNodes(); n++ {
		switch g.kind[n] {
		case KindDead:
			dead++
		case KindAnd:
			for _, f := range [2]Lit{g.fanin0[n], g.fanin1[n]} {
				if g.kind[f.Node()] == KindDead {
					return fmt.Errorf("aig: live node %d references dead node %d", n, f.Node())
				}
			}
		}
	}
	if dead != len(g.free) {
		return fmt.Errorf("aig: %d dead slots but %d free-list entries", dead, len(g.free))
	}
	prev := Node(0)
	for i, n := range g.free {
		if int(n) >= g.NumNodes() || g.kind[n] != KindDead {
			return fmt.Errorf("aig: free-list entry %d (node %d) is not a dead slot", i, n)
		}
		if n <= prev {
			return fmt.Errorf("aig: free list not strictly increasing at entry %d (node %d)", i, n)
		}
		prev = n
	}
	for i, po := range g.pos {
		if g.kind[po.Node()] == KindDead {
			return fmt.Errorf("aig: PO %d driven by dead node %d", i, po.Node())
		}
	}
	return nil
}

// checkAcyclic verifies by depth-first traversal that no node is reachable
// from its own fanins. With Check's id-ordering invariant satisfied this is
// implied, but a mutated or hand-corrupted graph can carry forward edges;
// the explicit walk pins the offending node instead of relying on the
// convention it may have broken.
func (g *Graph) checkAcyclic() error {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make([]byte, g.NumNodes())
	var stack []Node
	for root := Node(1); int(root) < g.NumNodes(); root++ {
		if color[root] != white || g.kind[root] != KindAnd {
			continue
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if color[n] == white {
				color[n] = grey
				if g.kind[n] == KindAnd {
					for _, f := range [2]Lit{g.fanin0[n], g.fanin1[n]} {
						fn := f.Node()
						if int(fn) >= g.NumNodes() {
							return fmt.Errorf("aig: node %d has fanin pointing at nonexistent node %d", n, fn)
						}
						switch color[fn] {
						case grey:
							return fmt.Errorf("aig: cycle through node %d (fanin of node %d)", fn, n)
						case white:
							stack = append(stack, fn)
						}
					}
				}
				continue
			}
			color[n] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// checkStrash verifies the structural-hash table in both directions: every
// AND node must be findable under its canonical fanin key, every table
// entry must describe a live AND node with exactly those fanins, and the
// cached AND count must match the graph.
func (g *Graph) checkStrash() error {
	ands := 0
	for n := Node(1); int(n) < g.NumNodes(); n++ {
		if g.kind[n] != KindAnd {
			continue
		}
		ands++
		key := uint64(g.fanin0[n])<<32 | uint64(g.fanin1[n])
		m, ok := g.strash[key]
		if !ok {
			return fmt.Errorf("aig: AND node %d missing from the structural-hash table", n)
		}
		if m != n {
			return fmt.Errorf("aig: structural-hash entry for node %d's fanins points at node %d (duplicate structure)", n, m)
		}
	}
	if ands != g.nAnds {
		return fmt.Errorf("aig: cached AND count %d does not match the %d AND nodes present", g.nAnds, ands)
	}
	if len(g.strash) != ands {
		// More entries than AND nodes means at least one stale entry; find
		// one to name in the error.
		for key, m := range g.strash {
			f0, f1 := Lit(key>>32), Lit(key&0xFFFFFFFF)
			if int(m) >= g.NumNodes() || g.kind[m] != KindAnd ||
				g.fanin0[m] != f0 || g.fanin1[m] != f1 {
				return fmt.Errorf("aig: stale structural-hash entry (%v,%v) -> node %d", f0, f1, m)
			}
		}
		return fmt.Errorf("aig: structural-hash table has %d entries for %d AND nodes", len(g.strash), ands)
	}
	return nil
}

// checkPIs verifies primary-input bookkeeping: every registered PI is a
// distinct KindPI node and every KindPI node is registered.
func (g *Graph) checkPIs() error {
	if len(g.pis) != len(g.piNames) {
		return fmt.Errorf("aig: %d PIs but %d PI names", len(g.pis), len(g.piNames))
	}
	seen := make([]bool, g.NumNodes())
	for i, pi := range g.pis {
		if int(pi) >= g.NumNodes() || g.kind[pi] != KindPI {
			return fmt.Errorf("aig: PI %d registered at node %d, which is not a PI node", i, pi)
		}
		if seen[pi] {
			return fmt.Errorf("aig: node %d registered as a PI twice", pi)
		}
		seen[pi] = true
	}
	for n := Node(1); int(n) < g.NumNodes(); n++ {
		if g.kind[n] == KindPI && !seen[n] {
			return fmt.Errorf("aig: PI node %d missing from the input list", n)
		}
	}
	return nil
}

// CheckLevels verifies a caller-held logic-level slice against the graph:
// the constant node and PIs at level 0, every AND node one above the
// maximum of its fanin levels. Consumers that cache level orders across a
// pass (package resub's generation scan) validate their snapshot with this
// in tests; the error names the first offending node.
func (g *Graph) CheckLevels(levels []int32) error {
	if len(levels) != g.NumNodes() {
		return fmt.Errorf("aig: level slice has %d entries for %d nodes", len(levels), g.NumNodes())
	}
	for n := Node(0); int(n) < g.NumNodes(); n++ {
		switch g.kind[n] {
		case KindAnd:
			want := max(levels[g.fanin0[n].Node()], levels[g.fanin1[n].Node()]) + 1
			if levels[n] != want {
				return fmt.Errorf("aig: node %d has level %d, expected %d", n, levels[n], want)
			}
		default:
			if levels[n] != 0 {
				return fmt.Errorf("aig: node %d is not an AND node but has level %d", n, levels[n])
			}
		}
	}
	return nil
}
