package aig

import (
	"encoding/binary"
	"fmt"
)

// Raw graph codec: an exact, id-preserving serialization of a Graph
// including dead (recyclable) slots. The AIGER writer renumbers nodes
// compactly, which is right for interchange but wrong for checkpoints of a
// session using in-place replacement — a resumed run must see the same slot
// layout and free list, or its future allocations (and with them candidate
// tie-breaks) would drift from the run it resumes. Epochs are deliberately
// not serialized: they only ever feed equality comparisons against arena
// copies taken after restore, so a fresh zeroed epoch slice is equivalent.
//
// Layout (little-endian):
//
//	magic   "AIGRAW01"                     8 bytes
//	name    u32 length + bytes
//	nodes   u32, then kind bytes (nodes)
//	        then fanin0,fanin1 u32 pairs for each KindAnd slot in id order
//	pis     u32 count, node u32 each, then names (u32 length + bytes each)
//	pos     u32 count, lit u32 each, then names

const rawMagic = "AIGRAW01"

// AppendRaw appends the raw encoding of g to buf and returns the result.
func (g *Graph) AppendRaw(buf []byte) []byte {
	buf = append(buf, rawMagic...)
	buf = appendRawString(buf, g.Name)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.NumNodes()))
	for _, k := range g.kind {
		buf = append(buf, byte(k))
	}
	for n := Node(0); int(n) < g.NumNodes(); n++ {
		if g.kind[n] != KindAnd {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.fanin0[n]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.fanin1[n]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.pis)))
	for _, pi := range g.pis {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(pi))
	}
	for i := range g.pis {
		buf = appendRawString(buf, g.PIName(i))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.pos)))
	for _, po := range g.pos {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(po))
	}
	for i := range g.pos {
		buf = appendRawString(buf, g.POName(i))
	}
	return buf
}

func appendRawString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// FromRaw decodes a graph encoded by AppendRaw, restoring node ids, dead
// slots and the derived free list and structural-hash table exactly. The
// decoded graph passes CheckStrict whenever the encoded one did.
func FromRaw(data []byte) (*Graph, error) {
	d := rawReader{buf: data}
	if string(d.take(len(rawMagic))) != rawMagic {
		return nil, fmt.Errorf("aig: raw graph: bad magic")
	}
	g := &Graph{strash: make(map[uint64]Node)}
	g.Name = d.str()
	nodes := int(d.u32())
	if d.err == nil && (nodes < 1 || nodes > len(data)) {
		return nil, fmt.Errorf("aig: raw graph: implausible node count %d", nodes)
	}
	if d.err != nil {
		return nil, fmt.Errorf("aig: raw graph: %v", d.err)
	}
	g.kind = make([]Kind, nodes)
	g.fanin0 = make([]Lit, nodes)
	g.fanin1 = make([]Lit, nodes)
	g.epoch = make([]uint32, nodes)
	for i := range g.kind {
		g.kind[i] = Kind(d.take(1)[0])
	}
	for n := Node(0); int(n) < nodes && d.err == nil; n++ {
		switch g.kind[n] {
		case KindConst:
			if n != 0 {
				return nil, fmt.Errorf("aig: raw graph: constant kind at node %d", n)
			}
		case KindPI:
		case KindDead:
			g.free = append(g.free, n)
		case KindAnd:
			f0, f1 := Lit(d.u32()), Lit(d.u32())
			if f0.Node() >= n || f1.Node() >= n || f0 > f1 {
				return nil, fmt.Errorf("aig: raw graph: node %d has invalid fanins", n)
			}
			g.fanin0[n], g.fanin1[n] = f0, f1
			key := uint64(f0)<<32 | uint64(f1)
			if _, dup := g.strash[key]; dup {
				return nil, fmt.Errorf("aig: raw graph: duplicate structure at node %d", n)
			}
			g.strash[key] = n
			g.nAnds++
		default:
			return nil, fmt.Errorf("aig: raw graph: node %d has invalid kind %d", n, g.kind[n])
		}
	}
	nPIs := int(d.u32())
	if d.err == nil && nPIs > nodes {
		return nil, fmt.Errorf("aig: raw graph: %d PIs for %d nodes", nPIs, nodes)
	}
	for i := 0; i < nPIs && d.err == nil; i++ {
		pi := Node(d.u32())
		if int(pi) >= nodes || g.kind[pi] != KindPI {
			return nil, fmt.Errorf("aig: raw graph: PI %d at non-PI node %d", i, pi)
		}
		g.pis = append(g.pis, pi)
	}
	for i := 0; i < nPIs && d.err == nil; i++ {
		g.piNames = append(g.piNames, d.str())
	}
	nPOs := int(d.u32())
	if d.err == nil && nPOs > len(d.buf) {
		return nil, fmt.Errorf("aig: raw graph: implausible PO count %d", nPOs)
	}
	for i := 0; i < nPOs && d.err == nil; i++ {
		po := Lit(d.u32())
		if int(po.Node()) >= nodes || g.kind[po.Node()] == KindDead {
			return nil, fmt.Errorf("aig: raw graph: PO %d points at invalid node", i)
		}
		g.pos = append(g.pos, po)
	}
	for i := 0; i < nPOs && d.err == nil; i++ {
		g.poNames = append(g.poNames, d.str())
	}
	if d.err != nil {
		return nil, fmt.Errorf("aig: raw graph: %v", d.err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("aig: raw graph: %d trailing bytes", len(d.buf)-d.off)
	}
	return g, nil
}

type rawReader struct {
	buf []byte
	off int
	err error
}

func (d *rawReader) take(n int) []byte {
	if d.err != nil {
		return make([]byte, n)
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at offset %d", d.off)
		return make([]byte, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *rawReader) u32() uint32 {
	return binary.LittleEndian.Uint32(d.take(4))
}

func (d *rawReader) str() string { return string(d.take(int(d.u32()))) }
