package aig_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

// randomGraph builds a random structurally hashed AIG with nPIs inputs and
// roughly size AND nodes, registering a handful of POs over the last-built
// literals. The result is swept before returning: ReplaceNode keeps a
// reachability-minimal graph minimal, and the tests compare AND counts
// against the (sweeping) CopyWith reference, so they need a minimal start.
func randomGraph(rng *rand.Rand, nPIs, size int) *aig.Graph {
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for len(lits) < nPIs+size {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		var l aig.Lit
		switch rng.Intn(3) {
		case 0:
			l = g.And(a, b)
		case 1:
			l = g.Or(a, b)
		default:
			l = g.Xor(a, b)
		}
		lits = append(lits, l)
	}
	for i := 0; i < 4; i++ {
		g.AddPO(lits[len(lits)-1-i].NotCond(i%2 == 0), "")
	}
	return g.Sweep()
}

// liveAnds returns the live AND nodes of g in id order.
func liveAnds(g *aig.Graph) []aig.Node {
	var out []aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			out = append(out, n)
		}
	}
	return out
}

// buildReplacement constructs a replacement literal for node v in g from
// nodes with ids strictly below v (which therefore cannot lie in v's TFO).
// The same pseudo-random choices produce the same literal on a clone of g,
// because cloning preserves the free list and so the allocation order.
func buildReplacement(rng *rand.Rand, g *aig.Graph, v aig.Node) aig.Lit {
	switch rng.Intn(8) {
	case 0:
		return aig.LitFalse
	case 1:
		return aig.MakeLit(v, true) // polarity flip
	}
	pick := func() aig.Lit {
		n := aig.Node(rng.Intn(int(v)))
		for g.Kind(n) == aig.KindDead {
			n--
			if n < 0 {
				n = 0
			}
		}
		return aig.MakeLit(n, rng.Intn(2) == 0)
	}
	a, b := pick(), pick()
	if rng.Intn(2) == 0 {
		return g.And(a, b)
	}
	return g.Or(a, b)
}

// TestReplaceNodeMatchesCopyWith drives random in-place replacement
// sequences and checks each step against the CopyWith reference on a clone:
// the functions must match bitwise on random patterns, the AND counts must
// agree (both results are strash-complete and reachability-minimal), and the
// mutated graph must satisfy every strict invariant including the free-list
// and epoch bookkeeping.
func TestReplaceNodeMatchesCopyWith(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 8, 60)
		pats := sim.Uniform(g.NumPIs(), 4, seed+100)
		sawDead := false
		for step := 0; step < 30; step++ {
			ands := liveAnds(g)
			if len(ands) == 0 {
				break
			}
			v := ands[rng.Intn(len(ands))]

			// Mirror the same replacement construction on a clone, then
			// apply it through the CopyWith reference path. Cloning preserves
			// the strash table and free list, so the same construction yields
			// the same literal on both graphs.
			cl := g.Clone()
			seq := rng.Int63()
			l := buildReplacement(rand.New(rand.NewSource(seq)), g, v)
			lcl := buildReplacement(rand.New(rand.NewSource(seq)), cl, v)
			if l != lcl {
				t.Fatalf("seed %d step %d: replacement lit diverged on clone: %v vs %v", seed, step, l, lcl)
			}
			want := cl.CopyWith(map[aig.Node]aig.Lit{v: l})

			g.ReplaceNode(v, l, nil)
			if err := g.CheckStrict(); err != nil {
				t.Fatalf("seed %d step %d: CheckStrict after ReplaceNode(%d, %v): %v", seed, step, v, l, err)
			}
			if g.NumAnds() != want.NumAnds() {
				t.Fatalf("seed %d step %d: %d ANDs in place, %d via CopyWith", seed, step, g.NumAnds(), want.NumAnds())
			}
			gotV := sim.Simulate(g, pats)
			wantV := sim.Simulate(want, pats)
			for i := 0; i < g.NumPOs(); i++ {
				got := gotV.LitInto(g.PO(i), make([]uint64, pats.Words))
				ref := wantV.LitInto(want.PO(i), make([]uint64, pats.Words))
				for w := range got {
					if got[w] != ref[w] {
						t.Fatalf("seed %d step %d: PO %d differs after replacing node %d", seed, step, i, v)
					}
				}
			}
			gotV.Release()
			wantV.Release()
			sawDead = sawDead || g.NumDead() > 0
		}
		if !sawDead {
			t.Fatalf("seed %d: replacement sequence produced no recyclable slots", seed)
		}
	}
}

// TestReplaceNodeRecyclesSlots pins that freed slots are actually reused:
// after a replacement frees nodes, subsequent allocations must fill dead
// slots before growing the arrays.
func TestReplaceNodeRecyclesSlots(t *testing.T) {
	g := aig.New()
	in := g.AddPIs(6, "x")
	a := g.And(in[0], in[1])
	b := g.And(a, in[2])
	c := g.And(b, in[3])
	g.AddPO(c, "y")
	// Replace b by a plain input literal: b and (via the rebuilt c) the old
	// c die, freeing two slots.
	g.ReplaceNode(b.Node(), in[4], nil)
	if err := g.CheckStrict(); err != nil {
		t.Fatal(err)
	}
	if g.NumDead() == 0 {
		t.Fatal("expected dead slots after ReplaceNode")
	}
	nodesBefore := g.NumNodes()
	deadBefore := g.NumDead()
	l := g.And(in[4], in[5])
	if g.NumNodes() != nodesBefore {
		t.Fatalf("allocation grew the node arrays to %d despite %d free slots", g.NumNodes(), deadBefore)
	}
	if g.NumDead() != deadBefore-1 {
		t.Fatalf("free list went %d -> %d, want one slot consumed", deadBefore, g.NumDead())
	}
	if !g.IsAnd(l.Node()) {
		t.Fatalf("recycled literal %v is not an AND node", l)
	}
	if err := g.CheckStrict(); err != nil {
		t.Fatal(err)
	}
}

// TestReplaceNodeTouchedCoversChanges checks that the touched list includes
// every node whose reference count changed, by diffing RefCounts before and
// after.
func TestReplaceNodeTouchedCoversChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 6, 40)
	for step := 0; step < 20; step++ {
		ands := liveAnds(g)
		if len(ands) == 0 {
			break
		}
		v := ands[rng.Intn(len(ands))]
		// Build the replacement literal first: constructing it already
		// mutates the graph (ReplaceNode only reports changes it makes).
		l := buildReplacement(rand.New(rand.NewSource(rng.Int63())), g, v)
		before := make([]int32, g.NumNodes())
		copy(before, refCounts(g))
		var touched []aig.Node
		g.ReplaceNode(v, l, &touched)
		after := refCounts(g)
		inTouched := make(map[aig.Node]bool, len(touched))
		for _, n := range touched {
			inTouched[n] = true
		}
		limit := min(len(before), len(after))
		for n := 0; n < limit; n++ {
			if before[n] != after[n] && !inTouched[aig.Node(n)] && g.Kind(aig.Node(n)) != aig.KindDead {
				t.Fatalf("step %d: node %d refcount %d->%d not reported in touched",
					step, n, before[n], after[n])
			}
		}
	}
}

func refCounts(g *aig.Graph) []int32 { return g.RefCounts() }

// TestRawRoundTrip pins the raw codec: encoding a graph with dead slots and
// decoding it back must reproduce the identical slot layout, free list and
// function, and re-encoding must give identical bytes.
func TestRawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 7, 50)
	g.Name = "raw-test"
	for step := 0; step < 50 && g.NumDead() == 0; step++ {
		ands := liveAnds(g)
		v := ands[rng.Intn(len(ands))]
		g.ReplaceNode(v, buildReplacement(rand.New(rand.NewSource(rng.Int63())), g, v), nil)
	}
	if g.NumDead() == 0 {
		t.Fatal("want dead slots in the encoded graph")
	}
	enc := g.AppendRaw(nil)
	dec, err := aig.FromRaw(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.CheckStrict(); err != nil {
		t.Fatal(err)
	}
	if dec.Name != g.Name || dec.NumNodes() != g.NumNodes() || dec.NumAnds() != g.NumAnds() ||
		dec.NumDead() != g.NumDead() || dec.NumPIs() != g.NumPIs() || dec.NumPOs() != g.NumPOs() {
		t.Fatalf("decoded shape differs: %v vs %v", dec, g)
	}
	for n := aig.Node(0); int(n) < g.NumNodes(); n++ {
		if dec.Kind(n) != g.Kind(n) {
			t.Fatalf("node %d kind differs", n)
		}
		if g.IsAnd(n) && (dec.Fanin0(n) != g.Fanin0(n) || dec.Fanin1(n) != g.Fanin1(n)) {
			t.Fatalf("node %d fanins differ", n)
		}
	}
	enc2 := dec.AppendRaw(nil)
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding the decoded graph changed the bytes")
	}
	// A post-restore allocation must behave like one on the original: same
	// recycled slot, same resulting layout.
	ands := liveAnds(g)
	v := ands[len(ands)/2]
	seq := rng.Int63()
	g.ReplaceNode(v, buildReplacement(rand.New(rand.NewSource(seq)), g, v), nil)
	dec.ReplaceNode(v, buildReplacement(rand.New(rand.NewSource(seq)), dec, v), nil)
	if !bytes.Equal(g.AppendRaw(nil), dec.AppendRaw(nil)) {
		t.Fatal("post-restore replacement diverged from the original graph")
	}
	// Corruption must be detected, not crash.
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		if _, err := aig.FromRaw(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}
