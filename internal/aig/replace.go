package aig

// replaceScratch is per-graph scratch reused across ReplaceNode calls, so a
// steady stream of in-place substitutions allocates nothing once the buffers
// have grown to the graph size.
type replaceScratch struct {
	foStart  []int32 // CSR fanout adjacency over the pre-replacement graph
	foList   []int32
	sub      []Lit  // old node -> replacement literal (litUnset when none)
	heap     []int32
	inHeap   []bool
	refs     []int32
	replaced []Node // old nodes with a sub entry, ascending id
	created  []Node // nodes returned by And() during the walk
	stack    []Node // dead-sweep work list
}

const litUnset = ^Lit(0)

// ReplaceNode substitutes literal l for every reference to node v — fanins
// of other AND nodes and primary outputs — *in place*, rebuilding only v's
// transitive fanout, and then frees every node that became unreferenced
// (v's MFFC and the superseded fanout nodes). Freed slots go onto the free
// list for recycling by later allocations; every slot that is allocated,
// recycled or freed gets its epoch bumped, which is how simulation arenas
// find the dirty region.
//
// The semantics match CopyWith(map[Node]Lit{v: l}) followed by a sweep: l is
// interpreted against the current graph (so it must not depend on v through
// any path — resubstitution covers are built from v's fanin cone excluding
// v, which guarantees this; l.Node() == v itself is allowed and means a
// polarity flip or no-op). Unlike CopyWith, node ids of untouched logic are
// preserved.
//
// Every node whose reference count or structure changed — created nodes,
// fanins of created or freed nodes, and redirected PO targets — is appended
// to *touched (when touched is non-nil, with possible duplicates): together
// with the epoch bumps this is exactly the seed set a caller needs to
// invalidate per-node derived state (candidate covers, MFFC gains) by
// forward closure.
func (g *Graph) ReplaceNode(v Node, l Lit, touched *[]Node) {
	if g.kind[v] != KindAnd {
		panic("aig: ReplaceNode target is not an AND node")
	}
	if l == MakeLit(v, false) {
		return // identity
	}
	n := g.NumNodes()
	s := &g.repl
	s.buildFanouts(g, n)
	s.sub = growLits(s.sub, n)
	for i := range s.sub {
		s.sub[i] = litUnset
	}
	s.heap = s.heap[:0]
	s.inHeap = growBools(s.inHeap, n)
	s.replaced = s.replaced[:0]
	s.created = s.created[:0]

	note := func(m Node) {
		if touched != nil {
			*touched = append(*touched, m)
		}
	}

	s.sub[v] = l
	s.replaced = append(s.replaced, v)
	note(l.Node())
	s.pushFanouts(v)

	// Event-driven rebuild of the dirty TFO slice: pop old node ids in
	// ascending (topological) order, remap each popped node's fanins through
	// sub, and create the remapped node — And() strash-shares, folds trivial
	// identities, and recycles free slots whose id respects the topological
	// order. New references created here keep shared logic alive through the
	// dead sweep below.
	for len(s.heap) > 0 {
		a := Node(s.popMin())
		if g.kind[a] != KindAnd {
			continue
		}
		f0, f1 := s.mapLit(g.fanin0[a]), s.mapLit(g.fanin1[a])
		if f0 == g.fanin0[a] && f1 == g.fanin1[a] {
			continue // fanins unaffected; node keeps its meaning
		}
		nl := g.And(f0, f1)
		if nl == MakeLit(a, false) {
			continue // remap reproduced the node itself
		}
		s.sub[a] = nl
		s.replaced = append(s.replaced, a)
		s.created = append(s.created, nl.Node())
		note(nl.Node())
		if g.kind[nl.Node()] == KindAnd {
			note(g.fanin0[nl.Node()].Node())
			note(g.fanin1[nl.Node()].Node())
		}
		s.pushFanouts(a)
	}

	for i, po := range g.pos {
		if t := s.sub[po.Node()]; t != litUnset {
			g.pos[i] = t.NotCond(po.IsCompl())
			note(t.Node())
		}
	}

	// Dead sweep: recompute reference counts over the rewired graph, then
	// free every replaced old node that ended up unreferenced, cascading
	// into its fanin cone (the MFFC of the change). Replaced nodes that
	// gained new references — strash hits resurrecting shared structure —
	// survive; so do ex-MFFC nodes referenced by the replacement cover.
	s.refs = growI32(s.refs, g.NumNodes())
	for i := range s.refs {
		s.refs[i] = 0
	}
	for m := Node(1); int(m) < g.NumNodes(); m++ {
		if g.kind[m] == KindAnd {
			s.refs[g.fanin0[m].Node()]++
			s.refs[g.fanin1[m].Node()]++
		}
	}
	for _, po := range g.pos {
		s.refs[po.Node()]++
	}
	// Seed with the replacement root (it dies when the rewired fanouts all
	// folded away from it), every node created during the walk (a consumer
	// higher up can fold to a constant and strand the node it just asked
	// for), and the replaced nodes in ascending order so the LIFO pops
	// highest ids — fanouts — first. A node popped while still referenced is
	// skipped; the free that drops its count to zero re-pushes it, so no
	// order of cascades leaks a node.
	s.stack = append(s.stack[:0], l.Node())
	s.stack = append(s.stack, s.created...)
	s.stack = append(s.stack, s.replaced...)
	for len(s.stack) > 0 {
		m := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if g.kind[m] != KindAnd || s.refs[m] != 0 {
			continue
		}
		for _, f := range [2]Lit{g.fanin0[m], g.fanin1[m]} {
			fn := f.Node()
			s.refs[fn]--
			if s.refs[fn] == 0 && g.kind[fn] == KindAnd {
				s.stack = append(s.stack, fn)
			}
			note(fn)
		}
		g.freeNode(m)
	}
}

// CollectGarbage frees every AND node that is unreachable from the primary
// outputs, cascading through the cones that die with it, and reports how
// many nodes it freed. Callers that build speculative structure directly in
// the graph — a candidate cover whose terms partially strash-fold away
// before ReplaceNode wires the survivor in — run this after committing so
// the live-node set matches what a sweep would keep. Freed slots join the
// free list exactly as in ReplaceNode's dead sweep; the fanins of freed
// nodes (their reference counts changed) are appended to *touched when it
// is non-nil.
//
//alsrac:hotpath
func (g *Graph) CollectGarbage(touched *[]Node) int {
	s := &g.repl
	n := g.NumNodes()
	s.refs = growI32(s.refs, n)
	for i := range s.refs {
		s.refs[i] = 0
	}
	for m := Node(1); int(m) < n; m++ {
		if g.kind[m] == KindAnd {
			s.refs[g.fanin0[m].Node()]++
			s.refs[g.fanin1[m].Node()]++
		}
	}
	for _, po := range g.pos {
		s.refs[po.Node()]++
	}
	s.stack = s.stack[:0]
	for m := Node(1); int(m) < n; m++ {
		if g.kind[m] == KindAnd && s.refs[m] == 0 {
			s.stack = append(s.stack, m)
		}
	}
	freed := 0
	for len(s.stack) > 0 {
		m := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if g.kind[m] != KindAnd || s.refs[m] != 0 {
			continue
		}
		for _, f := range [2]Lit{g.fanin0[m], g.fanin1[m]} {
			fn := f.Node()
			s.refs[fn]--
			if s.refs[fn] == 0 && g.kind[fn] == KindAnd {
				s.stack = append(s.stack, fn)
			}
			if touched != nil {
				*touched = append(*touched, fn)
			}
		}
		g.freeNode(m)
		freed++
	}
	return freed
}

// EpochsInto snapshots every slot's epoch into dst (grown as needed) and
// returns it. Taken immediately before a batch of in-place edits, the
// snapshot is what StaleClosure diffs against afterwards.
func (g *Graph) EpochsInto(dst []uint32) []uint32 {
	if cap(dst) < len(g.epoch) {
		dst = make([]uint32, len(g.epoch))
	}
	dst = dst[:len(g.epoch)]
	copy(dst, g.epoch)
	return dst
}

// StaleClosure computes which nodes' TFI-derived state a batch of in-place
// edits invalidated: resubstitution candidates, covers, MFFC gains —
// anything that depends only on a node's transitive fanin cone (values,
// structure, levels, reference counts inside the cone). The seed set is the
// edits' touched list (see ReplaceNode), every slot whose epoch moved since
// the epochsBefore snapshot, and the fanins of epoch-dirty live nodes
// (their reference counts changed even when their own cones did not); one
// ascending pass closes the seed forward over the current fanin structure.
// The returned mask is indexed by node id; ids at or past len(epochsBefore)
// — slots that did not exist at the snapshot — are always stale.
func (g *Graph) StaleClosure(epochsBefore []uint32, touched []Node) []bool {
	n := g.NumNodes()
	stale := make([]bool, n)
	for _, t := range touched {
		stale[t] = true
	}
	for i := 0; i < n; i++ {
		v := Node(i)
		if i < len(epochsBefore) && g.epoch[v] == epochsBefore[i] {
			continue
		}
		stale[i] = true
		if g.kind[v] == KindAnd {
			stale[g.fanin0[v].Node()] = true
			stale[g.fanin1[v].Node()] = true
		}
	}
	for v := Node(1); int(v) < n; v++ {
		if g.kind[v] == KindAnd && (stale[g.fanin0[v].Node()] || stale[g.fanin1[v].Node()]) {
			stale[v] = true
		}
	}
	return stale
}

// mapLit resolves a literal of the pre-replacement graph through the
// substitution map.
//
//alsrac:hotpath
func (s *replaceScratch) mapLit(f Lit) Lit {
	if t := s.sub[f.Node()]; t != litUnset {
		return t.NotCond(f.IsCompl())
	}
	return f
}

// buildFanouts computes the CSR fanout adjacency of the n pre-replacement
// slots into the persistent scratch arrays.
//
//alsrac:hotpath
func (s *replaceScratch) buildFanouts(g *Graph, n int) {
	s.foStart = growI32(s.foStart, n+1)
	for i := range s.foStart {
		s.foStart[i] = 0
	}
	for m := Node(1); int(m) < n; m++ {
		if g.kind[m] != KindAnd {
			continue
		}
		s.foStart[g.fanin0[m].Node()+1]++
		s.foStart[g.fanin1[m].Node()+1]++
	}
	for i := 1; i <= n; i++ {
		s.foStart[i] += s.foStart[i-1]
	}
	s.foList = growI32(s.foList, int(s.foStart[n]))
	s.refs = growI32(s.refs, n) // reused as the CSR fill cursor here
	copy(s.refs, s.foStart[:n])
	for m := Node(1); int(m) < n; m++ {
		if g.kind[m] != KindAnd {
			continue
		}
		for _, f := range [2]Node{g.fanin0[m].Node(), g.fanin1[m].Node()} {
			s.foList[s.refs[f]] = int32(m)
			s.refs[f]++
		}
	}
}

// pushFanouts queues the pre-replacement AND fanouts of n onto the min-heap,
// each at most once. Only old slots appear in the adjacency, so freshly
// created or recycled nodes are never queued.
//
//alsrac:hotpath
func (s *replaceScratch) pushFanouts(n Node) {
	for _, m := range s.foList[s.foStart[n]:s.foStart[n+1]] {
		if s.inHeap[m] {
			continue
		}
		s.inHeap[m] = true
		s.heap = append(s.heap, m)
		for i := len(s.heap) - 1; i > 0; {
			p := (i - 1) / 2
			if s.heap[p] <= s.heap[i] {
				break
			}
			s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
			i = p
		}
	}
}

//alsrac:hotpath
func (s *replaceScratch) popMin() int32 {
	m := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && s.heap[l] < s.heap[small] {
			small = l
		}
		if r < last && s.heap[r] < s.heap[small] {
			small = r
		}
		if small == i {
			break
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
	s.inHeap[m] = false
	return m
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		//alsrac:alloc-ok amortized capacity growth; recycled scratch makes steady-state calls allocation-free
		return make([]int32, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growLits(s []Lit, n int) []Lit {
	if cap(s) < n {
		return make([]Lit, n)
	}
	return s[:n]
}
