package aig

// TFICone returns the transitive-fanin cone of node n, including n itself,
// as node ids in increasing (topological) order. PIs in the cone are
// included; the constant node is not.
func (g *Graph) TFICone(n Node) []Node {
	mark := make([]bool, g.NumNodes())
	mark[n] = true
	// Because fanin ids are always smaller than the node id, a single
	// backward sweep over ids suffices.
	for i := n; i >= 1; i-- {
		if !mark[i] || g.kind[i] != KindAnd {
			continue
		}
		mark[g.fanin0[i].Node()] = true
		mark[g.fanin1[i].Node()] = true
	}
	var cone []Node
	for i := Node(1); i <= n; i++ {
		if mark[i] {
			cone = append(cone, i)
		}
	}
	return cone
}

// TFIMask marks the transitive-fanin cone of n (including n, excluding the
// constant node) in a caller-provided mask of length NumNodes. The mask is
// reset before use so it can be reused across calls.
func (g *Graph) TFIMask(n Node, mask []bool) {
	for i := range mask {
		mask[i] = false
	}
	mask[n] = true
	for i := n; i >= 1; i-- {
		if !mask[i] || g.kind[i] != KindAnd {
			continue
		}
		mask[g.fanin0[i].Node()] = true
		mask[g.fanin1[i].Node()] = true
	}
	mask[0] = false
}

// TFOCone returns the transitive-fanout cone of node n, including n itself,
// as node ids in increasing (topological) order.
func (g *Graph) TFOCone(n Node) []Node {
	mark := make([]bool, g.NumNodes())
	mark[n] = true
	cone := []Node{n}
	for i := n + 1; int(i) < g.NumNodes(); i++ {
		if g.kind[i] != KindAnd {
			continue
		}
		if mark[g.fanin0[i].Node()] || mark[g.fanin1[i].Node()] {
			mark[i] = true
			cone = append(cone, i)
		}
	}
	return cone
}

// Support returns the indices of the primary inputs in the transitive fanin
// of the literal's node, in increasing input order.
func (g *Graph) Support(l Lit) []int {
	cone := g.TFICone(l.Node())
	inCone := make(map[Node]bool, len(cone))
	for _, n := range cone {
		inCone[n] = true
	}
	var sup []int
	for i, pi := range g.pis {
		if inCone[pi] {
			sup = append(sup, i)
		}
	}
	return sup
}

// MFFCSize returns the number of AND nodes in the maximum fanout-free cone
// of node n: the nodes that would become dangling if n were removed. refs
// must be the current reference counts (see RefCounts); it is restored
// before returning.
func (g *Graph) MFFCSize(n Node, refs []int32) int {
	if g.kind[n] != KindAnd {
		return 0
	}
	count := g.deref(n, refs)
	g.reref(n, refs)
	return count
}

// deref recursively dereferences the fanins of n, counting the AND nodes
// whose reference count drops to zero (n itself included).
func (g *Graph) deref(n Node, refs []int32) int {
	count := 1
	for _, f := range [2]Lit{g.fanin0[n], g.fanin1[n]} {
		fn := f.Node()
		refs[fn]--
		if refs[fn] == 0 && g.kind[fn] == KindAnd {
			count += g.deref(fn, refs)
		}
	}
	return count
}

// reref undoes a matching deref.
func (g *Graph) reref(n Node, refs []int32) {
	for _, f := range [2]Lit{g.fanin0[n], g.fanin1[n]} {
		fn := f.Node()
		if refs[fn] == 0 && g.kind[fn] == KindAnd {
			g.reref(fn, refs)
		}
		refs[fn]++
	}
}
