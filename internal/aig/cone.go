package aig

import "math"

// LevelOrder returns the non-constant nodes grouped by logic level in CSR
// form: order holds the ids 1..NumNodes−1 sorted by (level, id), and
// order[start[l]:start[l+1]] is exactly the nodes at level l (len(start) is
// maxLevel+2). levels must come from Levels on the same graph. Computed
// once, the order lets per-node consumers enumerate any node subset in
// level order — ascending or descending — without re-sorting (package
// resub's divisor scan visits every TFI cone this way).
func (g *Graph) LevelOrder(levels []int32) (order []Node, start []int32) {
	maxLev := int32(0)
	for _, l := range levels[1:] {
		if l > maxLev {
			maxLev = l
		}
	}
	start = make([]int32, maxLev+2)
	for _, l := range levels[1:] {
		start[l+1]++
	}
	for l := int32(1); l < int32(len(start)); l++ {
		start[l] += start[l-1]
	}
	order = make([]Node, len(levels)-1)
	fill := append([]int32(nil), start...)
	for n := 1; n < len(levels); n++ {
		l := levels[n]
		order[fill[l]] = Node(n)
		fill[l]++
	}
	return order, start
}

// ConeMarker answers transitive-fanin membership queries with an
// epoch-stamped scratch array: marking a new cone bumps the epoch instead
// of clearing the previous marks, so repeated per-node cone queries over
// one graph allocate nothing and never pay an O(nodes) clear. A marker is
// confined to one goroutine; concurrent scans each own their own.
type ConeMarker struct {
	stamp []int32
	epoch int32
}

// NewConeMarker returns a marker sized for graph g.
func NewConeMarker(g *Graph) *ConeMarker {
	return &ConeMarker{stamp: make([]int32, g.NumNodes())}
}

// MarkTFI stamps the transitive-fanin cone of n (including n and the PIs in
// the cone, excluding the constant node), replacing the previously marked
// cone. It runs the same backward id sweep as TFICone.
func (m *ConeMarker) MarkTFI(g *Graph, n Node) {
	if m.epoch == math.MaxInt32 {
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.epoch = 0
	}
	m.epoch++
	m.stamp[n] = m.epoch
	for i := n; i >= 1; i-- {
		if m.stamp[i] != m.epoch || g.kind[i] != KindAnd {
			continue
		}
		m.stamp[g.fanin0[i].Node()] = m.epoch
		m.stamp[g.fanin1[i].Node()] = m.epoch
	}
	m.stamp[0] = 0 // the constant node is never part of a cone
}

// InCone reports whether node u belongs to the cone stamped by the most
// recent MarkTFI call.
func (m *ConeMarker) InCone(u Node) bool { return m.stamp[u] == m.epoch }

// TFICone returns the transitive-fanin cone of node n, including n itself,
// as node ids in increasing (topological) order. PIs in the cone are
// included; the constant node is not.
func (g *Graph) TFICone(n Node) []Node {
	mark := make([]bool, g.NumNodes())
	mark[n] = true
	// Because fanin ids are always smaller than the node id, a single
	// backward sweep over ids suffices.
	for i := n; i >= 1; i-- {
		if !mark[i] || g.kind[i] != KindAnd {
			continue
		}
		mark[g.fanin0[i].Node()] = true
		mark[g.fanin1[i].Node()] = true
	}
	var cone []Node
	for i := Node(1); i <= n; i++ {
		if mark[i] {
			cone = append(cone, i)
		}
	}
	return cone
}

// TFIMask marks the transitive-fanin cone of n (including n, excluding the
// constant node) in a caller-provided mask of length NumNodes. The mask is
// reset before use so it can be reused across calls.
func (g *Graph) TFIMask(n Node, mask []bool) {
	for i := range mask {
		mask[i] = false
	}
	mask[n] = true
	for i := n; i >= 1; i-- {
		if !mask[i] || g.kind[i] != KindAnd {
			continue
		}
		mask[g.fanin0[i].Node()] = true
		mask[g.fanin1[i].Node()] = true
	}
	mask[0] = false
}

// TFOCone returns the transitive-fanout cone of node n, including n itself,
// as node ids in increasing (topological) order.
func (g *Graph) TFOCone(n Node) []Node {
	mark := make([]bool, g.NumNodes())
	mark[n] = true
	cone := []Node{n}
	for i := n + 1; int(i) < g.NumNodes(); i++ {
		if g.kind[i] != KindAnd {
			continue
		}
		if mark[g.fanin0[i].Node()] || mark[g.fanin1[i].Node()] {
			mark[i] = true
			cone = append(cone, i)
		}
	}
	return cone
}

// Support returns the indices of the primary inputs in the transitive fanin
// of the literal's node, in increasing input order.
func (g *Graph) Support(l Lit) []int {
	cone := g.TFICone(l.Node())
	inCone := make(map[Node]bool, len(cone))
	for _, n := range cone {
		inCone[n] = true
	}
	var sup []int
	for i, pi := range g.pis {
		if inCone[pi] {
			sup = append(sup, i)
		}
	}
	return sup
}

// MFFCSize returns the number of AND nodes in the maximum fanout-free cone
// of node n: the nodes that would become dangling if n were removed. refs
// must be the current reference counts (see RefCounts); it is restored
// before returning.
func (g *Graph) MFFCSize(n Node, refs []int32) int {
	if g.kind[n] != KindAnd {
		return 0
	}
	count := g.deref(n, refs)
	g.reref(n, refs)
	return count
}

// deref recursively dereferences the fanins of n, counting the AND nodes
// whose reference count drops to zero (n itself included).
func (g *Graph) deref(n Node, refs []int32) int {
	count := 1
	for _, f := range [2]Lit{g.fanin0[n], g.fanin1[n]} {
		fn := f.Node()
		refs[fn]--
		if refs[fn] == 0 && g.kind[fn] == KindAnd {
			count += g.deref(fn, refs)
		}
	}
	return count
}

// reref undoes a matching deref.
func (g *Graph) reref(n Node, refs []int32) {
	for _, f := range [2]Lit{g.fanin0[n], g.fanin1[n]} {
		fn := f.Node()
		if refs[fn] == 0 && g.kind[fn] == KindAnd {
			g.reref(fn, refs)
		}
		refs[fn]++
	}
}
