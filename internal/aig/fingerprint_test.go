package aig

import "testing"

func fpGraph() *Graph {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	g.AddPO(g.And(g.And(a, b), c), "y")
	g.AddPO(g.Xor(a, b), "z")
	return g
}

func TestFingerprintDeterministic(t *testing.T) {
	f1 := Fingerprint(fpGraph())
	f2 := Fingerprint(fpGraph())
	if f1 != f2 {
		t.Fatalf("same construction, different fingerprints: %x vs %x", f1, f2)
	}
	if f1 == 0 {
		t.Fatalf("fingerprint is zero")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(fpGraph())

	// Different structure.
	g := fpGraph()
	g.SetPO(0, g.PO(0).Not())
	if Fingerprint(g) == base {
		t.Fatalf("negating a PO did not change the fingerprint")
	}

	// Different PO name only: must differ, cached results carry names.
	g2 := New()
	a := g2.AddPI("a")
	b := g2.AddPI("b")
	c := g2.AddPI("c")
	g2.AddPO(g2.And(g2.And(a, b), c), "y_renamed")
	g2.AddPO(g2.Xor(a, b), "z")
	if Fingerprint(g2) == base {
		t.Fatalf("renaming a PO did not change the fingerprint")
	}

	// Different PI name only.
	g3 := New()
	a = g3.AddPI("a0")
	b = g3.AddPI("b")
	c = g3.AddPI("c")
	g3.AddPO(g3.And(g3.And(a, b), c), "y")
	g3.AddPO(g3.Xor(a, b), "z")
	if Fingerprint(g3) == base {
		t.Fatalf("renaming a PI did not change the fingerprint")
	}
}

func TestFingerprintIgnoresDeadSlots(t *testing.T) {
	// Replacing a node frees slots; the surviving structure must fingerprint
	// identically to a graph built directly in that shape, because the raw
	// codec round trip preserves ids but a fresh parse of the result does
	// not preserve the free list.
	g := fpGraph()
	// Collapse PO 1 (the xor cone) to constant false, freeing its gates.
	g.SetPO(1, LitFalse)
	if g.CollectGarbage(nil) == 0 {
		t.Fatalf("test premise broken: nothing was freed")
	}
	if g.NumDead() == 0 {
		t.Fatalf("test premise broken: no dead slots were produced")
	}
	before := Fingerprint(g)

	raw := g.AppendRaw(nil)
	g2, err := FromRaw(raw)
	if err != nil {
		t.Fatalf("FromRaw: %v", err)
	}
	if got := Fingerprint(g2); got != before {
		t.Fatalf("raw round trip changed fingerprint: %x vs %x", got, before)
	}
}
