package sasimi

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/core"
	"repro/internal/errest"
	"repro/internal/sim"
)

func rippleAdder(n int) *aig.Graph {
	g := aig.New()
	a := g.AddPIs(n, "a")
	b := g.AddPIs(n, "b")
	carry := aig.LitFalse
	for i := 0; i < n; i++ {
		axb := g.Xor(a[i], b[i])
		g.AddPO(g.Xor(axb, carry), "s")
		carry = g.Or(g.And(a[i], b[i]), g.And(axb, carry))
	}
	g.AddPO(carry, "cout")
	return g
}

func TestGeneratorProposesCandidates(t *testing.T) {
	g := rippleAdder(4)
	p := sim.Uniform(g.NumPIs(), 8, 3)
	vecs := sim.Simulate(g, p)
	cands := DefaultGenerator().Generate(g, vecs, p.Valid)
	if len(cands) == 0 {
		t.Fatalf("no candidates")
	}
	perNode := map[aig.Node]int{}
	for _, c := range cands {
		perNode[c.Node]++
		if c.Gain <= 0 {
			t.Errorf("candidate at node %d has gain %d", c.Node, c.Gain)
		}
	}
	for n, k := range perNode {
		if k > 3 {
			t.Errorf("node %d has %d candidates, cap 3", n, k)
		}
	}
}

func TestCandidateVectorsMatchApply(t *testing.T) {
	// For each candidate, the predicted new vector must equal the node's
	// vector when simulating the substituted circuit... the substitute is an
	// existing signal, so NewVec must be exactly that signal's vector.
	g := rippleAdder(3)
	p := sim.Exhaustive(g.NumPIs())
	vecs := sim.Simulate(g, p)
	cands := DefaultGenerator().Generate(g, vecs, p.Valid)
	buf := make([]uint64, vecs.Words)
	for _, c := range cands {
		c.NewVec(vecs, buf)
		ng := c.Apply(g.Clone())
		if ng.NumPIs() != g.NumPIs() || ng.NumPOs() != g.NumPOs() {
			t.Fatalf("apply changed the interface")
		}
		if err := ng.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSasimiFlowRespectsThreshold(t *testing.T) {
	// A small adder under a generous ER budget: single-signal substitution
	// is coarse (the paper's motivation), but some move must fit 25%.
	g := rippleAdder(4)
	opts := Configure(core.DefaultOptions(errest.ER, 0.25))
	opts.EvalPatterns = 4096
	res := core.Run(g, opts)
	if res.FinalError > opts.Threshold {
		t.Fatalf("final error %.4g over threshold", res.FinalError)
	}
	if res.Applied == 0 {
		t.Fatalf("SASIMI flow applied nothing")
	}
}

func TestSasimiSubstitutesOnlyAcyclic(t *testing.T) {
	// All substitutes must have smaller ids than the target (acyclic by
	// construction); Apply must never panic or loop.
	g := rippleAdder(5)
	p := sim.Uniform(g.NumPIs(), 8, 9)
	vecs := sim.Simulate(g, p)
	for _, c := range DefaultGenerator().Generate(g, vecs, p.Valid) {
		ng := c.Apply(g)
		if err := ng.Check(); err != nil {
			t.Fatalf("node %d: %v", c.Node, err)
		}
	}
}

func TestConfigure(t *testing.T) {
	opts := Configure(core.DefaultOptions(errest.NMED, 0.01))
	if opts.InitialRounds != 512 || opts.Scale != 1.0 {
		t.Fatalf("Configure did not pin the similarity budget")
	}
	if _, ok := opts.Generator.(Generator); !ok {
		t.Fatalf("Configure did not install the SASIMI generator")
	}
}
