// Package sasimi implements the comparison baseline of the paper's ASIC
// experiments (Tables IV and V): Su et al.'s DAC 2018 method, which is the
// SASIMI substitute-and-simplify LAC — replace a signal by another, similar
// signal, its complement, or a constant — driven by the same greedy flow
// and batch error estimation as ALSRAC. The paper reimplemented Su's method
// inside its own framework; this package does the same by plugging a SASIMI
// candidate generator into core.Run.
package sasimi

import (
	"math/bits"
	"sort"

	"repro/internal/aig"
	"repro/internal/core"
	"repro/internal/sim"
)

// Generator proposes single-signal substitution LACs. For every AND node v
// it scans all signals s with smaller topological id (which can never be in
// v's fanout cone, so substitution cannot create a cycle), ranks them by
// simulated similarity to v, and emits the closest matches in either
// polarity plus the two constants.
type Generator struct {
	// PerNode caps emitted candidates per node (most-similar first).
	PerNode int
	// MaxDiff drops signal pairs that disagree on more than this fraction
	// of the simulated patterns (both polarities considered).
	MaxDiff float64
}

// DefaultGenerator mirrors SASIMI's setup: a handful of most-similar
// substitute signals per target.
func DefaultGenerator() Generator { return Generator{PerNode: 3, MaxDiff: 0.30} }

type cand struct {
	s    aig.Lit // substitute signal (possibly complemented, or a constant)
	diff int     // disagreeing patterns
}

// Generate implements core.Generator.
func (sg Generator) Generate(g *aig.Graph, care *sim.Vectors, valid int) []core.Candidate {
	words := care.Words
	lastMask := ^uint64(0)
	if valid%64 != 0 {
		lastMask = (uint64(1) << uint(valid%64)) - 1
	}
	fullWords := valid / 64

	// diff counts disagreements between node n's vector and lit s on the
	// valid patterns.
	diffCount := func(n aig.Node, s aig.Lit) int {
		vn := care.Node(n)
		vs := care.Node(s.Node())
		inv := s.IsCompl()
		d := 0
		for w := 0; w < words; w++ {
			x := vn[w] ^ vs[w]
			if inv {
				x = ^x
			}
			if w == fullWords {
				x &= lastMask
			} else if w > fullWords {
				break
			}
			d += bits.OnesCount64(x)
		}
		return d
	}

	refs := g.RefCounts()
	maxDiff := int(sg.MaxDiff * float64(valid))
	var out []core.Candidate
	for v := aig.Node(1); int(v) < g.NumNodes(); v++ {
		if !g.IsAnd(v) {
			continue
		}
		var cs []cand
		// Constant candidates first (SASIMI includes stuck-at substitutes).
		cs = append(cs,
			cand{s: aig.LitFalse, diff: diffCount(v, aig.LitFalse)},
			cand{s: aig.LitTrue, diff: diffCount(v, aig.LitTrue)},
		)
		// Signal candidates: any node with a smaller id (PIs included).
		for s := aig.Node(1); s < v; s++ {
			if g.Kind(s) == aig.KindConst {
				continue
			}
			d := diffCount(v, aig.MakeLit(s, false))
			if d <= maxDiff {
				cs = append(cs, cand{s: aig.MakeLit(s, false), diff: d})
			}
			if valid-d <= maxDiff {
				cs = append(cs, cand{s: aig.MakeLit(s, true), diff: valid - d})
			}
		}
		sort.SliceStable(cs, func(i, j int) bool { return cs[i].diff < cs[j].diff })
		n := sg.PerNode
		if n > len(cs) {
			n = len(cs)
		}
		mffc := g.MFFCSize(v, refs)
		for _, c := range cs[:n] {
			node := v
			sub := c.s
			out = append(out, core.Candidate{
				Node: node,
				Gain: mffc,
				NewVec: func(vecs *sim.Vectors, dst []uint64) {
					vecs.LitInto(sub, dst)
				},
				Apply: func(g *aig.Graph) *aig.Graph {
					return g.CopyWith(map[aig.Node]aig.Lit{node: sub})
				},
			})
		}
	}
	return out
}

// Configure rewires ALSRAC flow options to run Su's method: the SASIMI
// generator with a fixed 512-pattern similarity budget for substitute
// detection (no adaptive N — that mechanism is ALSRAC's contribution).
func Configure(opts core.Options) core.Options {
	opts.Generator = DefaultGenerator()
	opts.InitialRounds = 512
	opts.Scale = 1.0 // N stays fixed; adaptive care sets are ALSRAC's trick
	return opts
}
