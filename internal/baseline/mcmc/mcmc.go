// Package mcmc implements the comparison baseline of the paper's FPGA
// experiments (Tables VI and VII): a stochastic approximate logic synthesis
// flow in the style of Liu and Zhang's "statistically certified ALS"
// (ICCAD 2017), which explores the space of local changes with Markov chain
// Monte Carlo moves. Each proposal replaces a random node by a constant,
// one of its fanins, or another similar signal; moves that keep the
// simulated error within the threshold are accepted with a Metropolis
// criterion on the area change, and the best circuit seen is returned.
//
// Simplifications versus the original (documented in DESIGN.md): error
// certification uses the same fixed Monte-Carlo pattern budget as the rest
// of this repository instead of sequential hypothesis testing, and the
// proposal distribution is uniform over move kinds.
package mcmc

import (
	"math"
	"math/rand"

	"repro/internal/aig"
	"repro/internal/errest"
	"repro/internal/opt"
	"repro/internal/sim"
)

// Options configures a stochastic ALS run.
type Options struct {
	Metric    errest.Metric
	Threshold float64

	Proposals    int     // number of MCMC proposals
	EvalPatterns int     // Monte-Carlo pattern budget
	Seed         int64   //
	InitTemp     float64 // initial Metropolis temperature, in AND-node units
	CoolingRate  float64 // temperature decay per proposal (e.g. 0.999)
	// OptimizeEvery runs exact re-optimization after this many accepted
	// moves (0 disables periodic optimization; a final pass always runs).
	OptimizeEvery int
	// CertifyDelta, when positive, requires every accepted move's error to
	// be below the threshold with confidence 1−δ (a Hoeffding bound over
	// the evaluation samples) — the "statistically certified" acceptance
	// rule of Liu's method. It needs an evaluation budget large enough
	// that the confidence margin is small relative to the threshold.
	CertifyDelta float64
}

// DefaultOptions returns a setup comparable to the ALSRAC runs: the same
// evaluation budget, a proposal count that scales with circuit size, and a
// gentle cooling schedule.
func DefaultOptions(metric errest.Metric, threshold float64) Options {
	return Options{
		Metric:        metric,
		Threshold:     threshold,
		Proposals:     4000,
		EvalPatterns:  8192,
		Seed:          1,
		InitTemp:      4,
		CoolingRate:   0.999,
		OptimizeEvery: 25,
	}
}

// Result is the outcome of a stochastic run.
type Result struct {
	Graph      *aig.Graph
	FinalError float64
	Proposed   int
	Accepted   int
}

// Run performs MCMC-based approximate synthesis of g.
func Run(g *aig.Graph, o Options) Result {
	rng := rand.New(rand.NewSource(o.Seed))

	evalWords := (o.EvalPatterns + 63) / 64
	if evalWords < 1 {
		evalWords = 1
	}
	pats := sim.Uniform(g.NumPIs(), evalWords, o.Seed)
	ev := errest.NewEvaluator(g, pats, o.Metric)

	cur := opt.Optimize(g)
	best := cur
	bestArea := cur.NumAnds()
	temp := o.InitTemp

	res := Result{}
	batch := errest.NewBatch(ev, cur, pats)
	sinceOpt := 0

	for res.Proposed < o.Proposals {
		res.Proposed++
		temp *= o.CoolingRate

		ands := andNodes(cur)
		if len(ands) == 0 {
			break
		}
		v := ands[rng.Intn(len(ands))]

		// Propose a replacement literal for v.
		var sub aig.Lit
		switch rng.Intn(4) {
		case 0:
			sub = aig.LitFalse
		case 1:
			sub = aig.LitTrue
		case 2:
			// One of v's fanins (wire move), random phase.
			f := cur.Fanin0(v)
			if rng.Intn(2) == 0 {
				f = cur.Fanin1(v)
			}
			sub = f.NotCond(rng.Intn(2) == 0)
		default:
			// A random earlier signal, random phase.
			s := aig.Node(1 + rng.Intn(int(v)))
			if cur.Kind(s) == aig.KindConst {
				s = cur.PI(rng.Intn(cur.NumPIs()))
			}
			sub = aig.MakeLit(s, rng.Intn(2) == 0)
		}

		// Estimate the error cheaply with the batch estimator.
		batch.Prepare(v)
		newVec := make([]uint64, pats.Words)
		batch.Vectors().LitInto(sub, newVec)
		err := batch.EvalCandidate(v, newVec)
		if o.CertifyDelta > 0 {
			if !ev.Certify(err, o.Threshold, o.CertifyDelta) {
				continue
			}
		} else if err > o.Threshold {
			continue
		}

		// Metropolis acceptance on the error-budget consumption: moves that
		// do not increase the error are always taken; budget-consuming moves
		// are accepted with probability decaying as the chain cools.
		curErr := batch.CurrentError()
		if err > curErr && o.Threshold > 0 {
			p := math.Exp(-(err - curErr) / (o.Threshold * math.Max(temp, 1e-6)))
			if rng.Float64() >= p {
				continue
			}
		}
		cand := cur.CopyWith(map[aig.Node]aig.Lit{v: sub})
		res.Accepted++
		sinceOpt++
		cur = cand
		if o.OptimizeEvery > 0 && sinceOpt >= o.OptimizeEvery {
			cur = opt.Optimize(cur)
			sinceOpt = 0
		}
		batch = errest.NewBatch(ev, cur, pats)

		if cur.NumAnds() < bestArea && batch.CurrentError() <= o.Threshold {
			best = cur
			bestArea = cur.NumAnds()
		}
	}

	best = opt.Optimize(best)
	res.Graph = best
	res.FinalError = ev.EvalGraph(best, pats)
	return res
}

func andNodes(g *aig.Graph) []aig.Node {
	var out []aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			out = append(out, n)
		}
	}
	return out
}
