package mcmc

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/errest"
)

func rippleAdder(n int) *aig.Graph {
	g := aig.New()
	a := g.AddPIs(n, "a")
	b := g.AddPIs(n, "b")
	carry := aig.LitFalse
	for i := 0; i < n; i++ {
		axb := g.Xor(a[i], b[i])
		g.AddPO(g.Xor(axb, carry), "s")
		carry = g.Or(g.And(a[i], b[i]), g.And(axb, carry))
	}
	g.AddPO(carry, "cout")
	return g
}

func TestMCMCRespectsThreshold(t *testing.T) {
	g := rippleAdder(4)
	o := DefaultOptions(errest.ER, 0.05)
	o.Proposals = 600
	o.EvalPatterns = 2048
	res := Run(g, o)
	if res.FinalError > o.Threshold {
		t.Fatalf("final error %.4g over threshold %.4g", res.FinalError, o.Threshold)
	}
	if res.Graph == nil || res.Graph.NumPOs() != g.NumPOs() {
		t.Fatalf("bad result graph")
	}
	if err := res.Graph.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMCMCReducesAreaWithBudget(t *testing.T) {
	g := rippleAdder(5)
	o := DefaultOptions(errest.NMED, 0.05)
	o.Proposals = 1200
	o.EvalPatterns = 2048
	res := Run(g, o)
	if res.Graph.NumAnds() >= g.NumAnds() {
		t.Fatalf("no area reduction: %d -> %d", g.NumAnds(), res.Graph.NumAnds())
	}
	if res.Accepted == 0 {
		t.Fatalf("no accepted moves")
	}
}

func TestMCMCZeroThresholdIsSafe(t *testing.T) {
	// With Et=0 only error-free moves are accepted: the result must agree
	// with the original circuit on every evaluation pattern.
	g := rippleAdder(3)
	o := DefaultOptions(errest.ER, 0)
	o.Proposals = 300
	o.EvalPatterns = 1024
	res := Run(g, o)
	if res.FinalError != 0 {
		t.Fatalf("threshold 0 produced error %.4g", res.FinalError)
	}
}

func TestMCMCDeterministicForSeed(t *testing.T) {
	g := rippleAdder(4)
	o := DefaultOptions(errest.ER, 0.03)
	o.Proposals = 400
	o.EvalPatterns = 1024
	r1 := Run(g, o)
	r2 := Run(g, o)
	if r1.Graph.NumAnds() != r2.Graph.NumAnds() || r1.Accepted != r2.Accepted {
		t.Fatalf("same seed, different outcomes")
	}
}

func TestMCMCProposalAccounting(t *testing.T) {
	g := rippleAdder(3)
	o := DefaultOptions(errest.ER, 0.1)
	o.Proposals = 123
	o.EvalPatterns = 512
	res := Run(g, o)
	if res.Proposed != 123 {
		t.Fatalf("proposed %d, want 123", res.Proposed)
	}
	if res.Accepted > res.Proposed {
		t.Fatalf("accepted %d > proposed %d", res.Accepted, res.Proposed)
	}
}

func TestMCMCCertifiedAcceptance(t *testing.T) {
	// With certification on and a threshold close to the confidence margin,
	// the flow must accept strictly fewer (or equal) moves than without.
	g := rippleAdder(4)
	o := DefaultOptions(errest.ER, 0.05)
	o.Proposals = 400
	o.EvalPatterns = 8192
	plain := Run(g, o)
	o.CertifyDelta = 0.05
	cert := Run(g, o)
	if cert.Accepted > plain.Accepted {
		t.Fatalf("certified run accepted more moves: %d > %d", cert.Accepted, plain.Accepted)
	}
	if cert.FinalError > o.Threshold {
		t.Fatalf("certified run exceeded threshold")
	}
}
