package window_test

import (
	"context"
	"os"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/errest"
)

// bigbenchSysCeiling bounds runtime.MemStats.Sys after one windowed step on
// the million-node member. The windowed mode's promise is memory linear in
// circuit size × window bound — a global-scan regression (full TFI cones on
// a 10^6-node AIG) blows far past this, while the windowed path stays well
// under it even with allocator slack.
const bigbenchSysCeiling = 4 << 30

// TestBigBenchWindowedSmoke drives one windowed Session.Step over a
// million-node MACTree member under a peak-memory assertion. It needs a few
// minutes of CPU, so it is opt-in: set ALSRAC_BIGBENCH=1 (the CI
// bigbench-smoke job does; see scripts/smoke_bigbench.sh).
func TestBigBenchWindowedSmoke(t *testing.T) {
	if os.Getenv("ALSRAC_BIGBENCH") != "1" {
		t.Skip("set ALSRAC_BIGBENCH=1 to run the million-node windowed smoke")
	}
	g := bench.MACTree(2048, 8, 1)
	if g.NumAnds() < 1_000_000 {
		t.Fatalf("smoke member too small: %d ANDs", g.NumAnds())
	}

	opts := core.DefaultOptions(errest.ER, 0.05)
	opts.EvalPatterns = 64
	opts.InitialRounds = 16
	opts.MaxLACsPerNode = 1
	opts.SkipOptimize = true // the optimizer is not the windowed hot path
	opts.Windowed = true
	opts.Verbose = t.Logf

	s := core.NewSession(g, opts)
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Iterations() != 1 {
		t.Fatalf("expected one iteration, got %d", s.Iterations())
	}

	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	t.Logf("windowed step over %d ANDs: %d applied, error %.4g, Sys %d MiB",
		g.NumAnds(), s.Applied(), s.CurrentError(), m.Sys>>20)
	if m.Sys > bigbenchSysCeiling {
		t.Fatalf("peak memory %d MiB exceeds the %d MiB windowed ceiling",
			m.Sys>>20, uint64(bigbenchSysCeiling)>>20)
	}
}
