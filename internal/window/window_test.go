package window

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
	"repro/internal/resub"
	"repro/internal/sim"
)

func liveAndNodes(g *aig.Graph) []aig.Node {
	var out []aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			out = append(out, n)
		}
	}
	return out
}

// TestWindowedEqualsGlobal is the window-vs-global equivalence property:
// with an unbounded Config{} every window expands until its leaves are the
// circuit PIs, so the windowed generator must produce candidate sets and
// scores (divisors, covers, gains) bitwise identical to the global
// resub.Generate path — for workers 1, 2 and 4, across circuits and scan
// configurations. CI runs this under -race (scripts/verify.sh).
func TestWindowedEqualsGlobal(t *testing.T) {
	circuits := []struct {
		name  string
		build func() *aig.Graph
	}{
		{"rca16", func() *aig.Graph { return bench.RCA(16) }},
		{"cla16", func() *aig.Graph { return bench.CLA(16) }},
		{"mtp6", func() *aig.Graph { return bench.ArrayMult(6) }},
		{"ctrl", func() *aig.Graph { return bench.RandomControl("ctrl", 12, 6, 120, 5) }},
	}
	configs := []resub.Config{
		resub.DefaultConfig(),
		{MaxLACsPerNode: 2, MaxDivisors: 3, MaxReplaceTries: 12},
		{MaxLACsPerNode: 1, MaxDivisors: 2, DescendingLevels: true},
	}
	total := 0
	for _, c := range circuits {
		g := c.build()
		pats := sim.UniformN(g.NumPIs(), 64, 11)
		vecs := sim.Simulate(g, pats)
		for ci, rcfg := range configs {
			want := resub.GenerateWorkers(g, vecs, pats.Valid, rcfg, 1)
			total += len(want)
			for _, workers := range []int{1, 2, 4} {
				got := GenerateWorkers(g, vecs, pats.Valid, Config{}, rcfg, workers)
				if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
					t.Errorf("%s cfg %d workers %d: windowed full-PI scan diverged from global generation (%d vs %d candidates)",
						c.name, ci, workers, len(got), len(want))
				}
			}
		}
		vecs.Release()
	}
	if total == 0 {
		t.Fatal("no circuit produced candidates — equivalence untested")
	}
}

// TestExtractBounds checks the structural window invariants on bounded
// configurations: budgets respected, inner closed over the leaves (every
// path from the root to a PI crosses a leaf before leaving the window), and
// the inner set exactly the volume between cut and root.
func TestExtractBounds(t *testing.T) {
	g := bench.CLA(32)
	cfg := Config{MaxPIs: 6, MaxNodes: 16}
	ex := NewExtractor(g, cfg, g.Levels(), g.RefCounts())
	for _, root := range liveAndNodes(g) {
		win := ex.Extract(root)
		if win == nil {
			t.Fatalf("root %d: skipped without a skip limit", root)
		}
		if win.Root != root {
			t.Fatalf("root %d: window reports root %d", root, win.Root)
		}
		if len(win.Cut.Leaves) > max(cfg.MaxPIs, 2) {
			t.Fatalf("root %d: %d leaves exceeds MaxPIs %d", root, len(win.Cut.Leaves), cfg.MaxPIs)
		}
		if len(win.Inner) > cfg.MaxNodes {
			t.Fatalf("root %d: %d inner nodes exceeds MaxNodes %d", root, len(win.Inner), cfg.MaxNodes)
		}
		inLeaves := map[aig.Node]bool{}
		for _, l := range win.Cut.Leaves {
			inLeaves[l] = true
		}
		inInner := map[aig.Node]bool{}
		for _, n := range win.Inner {
			if inLeaves[n] {
				t.Fatalf("root %d: node %d is both leaf and inner", root, n)
			}
			inInner[n] = true
		}
		// The cut property: walking down from the root must stay on inner
		// nodes until a leaf is crossed.
		var walk func(aig.Node)
		walk = func(n aig.Node) {
			if inLeaves[n] {
				return
			}
			if !inInner[n] {
				t.Fatalf("root %d: node %d reachable from the root without crossing a leaf", root, n)
			}
			walk(g.Fanin0(n).Node())
			walk(g.Fanin1(n).Node())
		}
		walk(root)
		// And the volume property: every inner node is reachable that way.
		seen := map[aig.Node]bool{}
		var count func(aig.Node) int
		count = func(n aig.Node) int {
			if seen[n] || inLeaves[n] || !g.IsAnd(n) {
				return 0
			}
			seen[n] = true
			return 1 + count(g.Fanin0(n).Node()) + count(g.Fanin1(n).Node())
		}
		if vol := count(root); vol != len(win.Inner) {
			t.Fatalf("root %d: volume %d but %d inner nodes", root, vol, len(win.Inner))
		}
	}
}

// TestExtractSkipsAndCaps pins the fanout skip limits and the divisor cap.
func TestExtractSkipsAndCaps(t *testing.T) {
	g := bench.CLA(16)
	levels, fanout := g.Levels(), g.RefCounts()

	skipped, kept := 0, 0
	ex := NewExtractor(g, Config{SkipFanoutRoots: 2}, levels, fanout)
	for _, root := range liveAndNodes(g) {
		if win := ex.Extract(root); win == nil {
			if fanout[root] <= 2 {
				t.Fatalf("root %d: skipped with fanout %d ≤ 2", root, fanout[root])
			}
			skipped++
		} else {
			if fanout[root] > 2 {
				t.Fatalf("root %d: kept with fanout %d > 2", root, fanout[root])
			}
			kept++
		}
	}
	if skipped == 0 || kept == 0 {
		t.Fatalf("skip limit untested: %d skipped, %d kept", skipped, kept)
	}

	ex = NewExtractor(g, Config{MaxDivisors: 5, SkipFanoutDivisors: 3}, levels, fanout)
	for _, root := range liveAndNodes(g) {
		win := ex.Extract(root)
		pool := ex.Divisors(false)
		if len(pool) > 5 {
			t.Fatalf("root %d: pool size %d exceeds MaxDivisors 5", root, len(pool))
		}
		for _, u := range pool {
			if fanout[u] > 3 {
				t.Fatalf("root %d: divisor %d with fanout %d > 3", root, u, fanout[u])
			}
		}
		for i := 1; i < len(pool); i++ {
			a, b := pool[i-1], pool[i]
			if levels[a] > levels[b] || (levels[a] == levels[b] && a >= b) {
				t.Fatalf("root %d: pool not in (level, id) order at %d", root, i)
			}
		}
		_ = win
	}
}

// TestWindowedGenerateReuse drives random in-place replacement sequences
// through the windowed generator with bounded windows: after each commit,
// GenerateReuse with the stale closure and the previous candidate list must
// reproduce a from-scratch GenerateWorkers run exactly, while actually
// sparing unstale nodes.
func TestWindowedGenerateReuse(t *testing.T) {
	rcfg := resub.DefaultConfig()
	wcfg := Config{MaxPIs: 5, MaxNodes: 12, MaxDivisors: 20}
	for _, workers := range []int{1, 2, 4} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*23 + int64(workers)))
			g := genTestGraph(rng, 8, 60)
			pats := sim.Uniform(g.NumPIs(), 2, seed+300)
			arena := sim.NewArena(g, pats, workers)
			cache := GenerateWorkers(g, arena.Vectors(), pats.Valid, wcfg, rcfg, workers)
			reused := false
			for step := 0; step < 12; step++ {
				ands := liveAndNodes(g)
				if len(ands) == 0 {
					break
				}
				v := ands[rng.Intn(len(ands))]
				epochs := g.EpochsInto(nil)
				var touched []aig.Node
				g.ReplaceNode(v, replacementLit(rng, g, v), &touched)
				arena.Update()

				stale := g.StaleClosure(epochs, touched)
				got := GenerateReuse(g, arena.Vectors(), pats.Valid, wcfg, rcfg, workers, stale, cache)
				want := GenerateWorkers(g, arena.Vectors(), pats.Valid, wcfg, rcfg, workers)
				if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
					t.Fatalf("workers %d seed %d step %d: windowed reuse diverged from full generation",
						workers, seed, step)
				}
				for _, n := range ands {
					if g.IsAnd(n) && int(n) < len(stale) && !stale[n] {
						reused = true
					}
				}
				cache = got
			}
			if !reused {
				t.Fatalf("workers %d seed %d: stale mask never spared a node — reuse untested", workers, seed)
			}
			arena.Release()
		}
	}
}

// TestGenerateReuseDegradesToFull pins the nil-mask and nil-cache paths.
func TestGenerateReuseDegradesToFull(t *testing.T) {
	g := bench.RCA(8)
	pats := sim.Uniform(g.NumPIs(), 2, 9)
	vecs := sim.Simulate(g, pats)
	defer vecs.Release()
	wcfg, rcfg := DefaultConfig(), resub.DefaultConfig()
	want := GenerateWorkers(g, vecs, pats.Valid, wcfg, rcfg, 1)
	if got := GenerateReuse(g, vecs, pats.Valid, wcfg, rcfg, 1, nil, want); !reflect.DeepEqual(got, want) {
		t.Fatal("nil stale mask did not degrade to a full scan")
	}
	stale := make([]bool, g.NumNodes())
	if got := GenerateReuse(g, vecs, pats.Valid, wcfg, rcfg, 1, stale, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("nil cache did not degrade to a full scan")
	}
}

func genTestGraph(rng *rand.Rand, nPIs, size int) *aig.Graph {
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for len(lits) < nPIs+size {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, g.And(a, b))
		} else {
			lits = append(lits, g.Xor(a, b))
		}
	}
	for i := 0; i < 4; i++ {
		g.AddPO(lits[len(lits)-1-i].NotCond(i%2 == 0), "")
	}
	return g.Sweep()
}

func replacementLit(rng *rand.Rand, g *aig.Graph, v aig.Node) aig.Lit {
	if rng.Intn(8) == 0 {
		return aig.LitFalse
	}
	pick := func() aig.Lit {
		n := aig.Node(rng.Intn(int(v)))
		for g.Kind(n) == aig.KindDead {
			n--
		}
		return aig.MakeLit(n, rng.Intn(2) == 0)
	}
	return g.And(pick(), pick())
}
