package window

import (
	"sync"
	"sync/atomic"

	"repro/internal/aig"
	"repro/internal/resub"
	"repro/internal/sim"
)

// Generate produces the windowed candidate set: for every live AND node, a
// reconvergence-driven window is extracted under wcfg and the divisor-set
// scan of Algorithm 2 (resub.Scanner, bitwise the global kernel) runs over
// the window's divisor pool on the global care vectors. Candidates are
// returned in ascending node order, exactly like resub.Generate.
func Generate(g *aig.Graph, vecs *sim.Vectors, valid int, wcfg Config, rcfg resub.Config) []resub.LAC {
	return GenerateWorkers(g, vecs, valid, wcfg, rcfg, 1)
}

// GenerateWorkers is Generate with the roots sharded across worker
// goroutines (0 = GOMAXPROCS): workers shard by window, not by candidate —
// each worker owns an Extractor, a resub.Scanner and a private
// reference-count copy, draws contiguous root chunks from an atomic
// counter, and per-chunk outputs are concatenated in chunk order, so the
// candidate list is identical for every worker count.
func GenerateWorkers(g *aig.Graph, vecs *sim.Vectors, valid int, wcfg Config, rcfg resub.Config, workers int) []resub.LAC {
	var roots []aig.Node
	for v := aig.Node(1); int(v) < g.NumNodes(); v++ {
		if g.IsAnd(v) {
			roots = append(roots, v)
		}
	}
	return generateOver(g, vecs, valid, wcfg, rcfg, workers, roots)
}

// GenerateReuse is GenerateWorkers with cross-iteration candidate reuse,
// the windowed analogue of resub.GenerateReuse: cached holds the previous
// candidate list and stale flags the nodes to rescan; live unstale nodes
// keep their cached entries verbatim (resub.MergeByNode). The stale
// closure of package core covers every windowed dependency: a root's
// window, divisor pool and window-MFFC are functions of its TFI — fanin
// structure, logic levels, value words and reference counts (the fanout
// skip limits read the same counts) — and any node whose structure or
// reference count changed seeds the closure, which marks its entire
// transitive fanout, root included. Nodes at or beyond len(stale) are
// treated as stale; a nil mask or cache degrades to a full scan.
func GenerateReuse(g *aig.Graph, vecs *sim.Vectors, valid int, wcfg Config, rcfg resub.Config,
	workers int, stale []bool, cached []resub.LAC) []resub.LAC {

	if stale == nil || cached == nil {
		return GenerateWorkers(g, vecs, valid, wcfg, rcfg, workers)
	}
	isStale := func(v aig.Node) bool {
		return int(v) >= len(stale) || stale[v]
	}
	var ands, rescan []aig.Node
	for v := aig.Node(1); int(v) < g.NumNodes(); v++ {
		if !g.IsAnd(v) {
			continue
		}
		ands = append(ands, v)
		if isStale(v) {
			rescan = append(rescan, v)
		}
	}
	fresh := generateOver(g, vecs, valid, wcfg, rcfg, workers, rescan)
	return resub.MergeByNode(ands, isStale, cached, fresh)
}

// winState is the per-worker scratch of the windowed scan.
type winState struct {
	ex   *Extractor
	sc   *resub.Scanner
	desc bool
	refs []int32 // mutable reference counts for the window-MFFC computation
}

func newWinState(g *aig.Graph, vecs *sim.Vectors, valid int, wcfg Config, rcfg resub.Config,
	levels, fanout, refs []int32) *winState {

	return &winState{
		ex:   NewExtractor(g, wcfg, levels, fanout),
		sc:   resub.NewScanner(g, vecs, valid, rcfg),
		desc: rcfg.DescendingLevels,
		refs: refs,
	}
}

func (w *winState) appendRootLACs(lacs []resub.LAC, root aig.Node) []resub.LAC {
	win := w.ex.Extract(root)
	if win == nil {
		return lacs
	}
	pool := w.ex.Divisors(w.desc)
	mffc := w.ex.MFFCInWindow(w.refs)
	return w.sc.ScanNode(lacs, root, pool, mffc)
}

// generateOver runs the windowed scan over an explicit, ascending root list.
func generateOver(g *aig.Graph, vecs *sim.Vectors, valid int, wcfg Config, rcfg resub.Config,
	workers int, roots []aig.Node) []resub.LAC {

	levels := g.Levels()
	fanout := g.RefCounts()
	workers = sim.Workers(workers, len(roots))
	if workers <= 1 {
		// Sequential: the MFFC computation restores the counts after every
		// root, so the shared fanout slice doubles as the mutable copy.
		st := newWinState(g, vecs, valid, wcfg, rcfg, levels, fanout, fanout)
		var lacs []resub.LAC
		for _, v := range roots {
			lacs = st.appendRootLACs(lacs, v)
		}
		return lacs
	}

	// Window work is bounded per root, so chunks can be larger than the
	// global scan's without imbalance; chunk outputs merge in index order.
	const chunkRoots = 64
	nChunks := (len(roots) + chunkRoots - 1) / chunkRoots
	results := make([][]resub.LAC, nChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newWinState(g, vecs, valid, wcfg, rcfg, levels, fanout,
				append([]int32(nil), fanout...))
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunkRoots
				hi := min(lo+chunkRoots, len(roots))
				var lacs []resub.LAC
				for _, v := range roots[lo:hi] {
					lacs = st.appendRootLACs(lacs, v)
				}
				results[c] = lacs
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]resub.LAC, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}
