// Package window implements reconvergence-driven windowed resubstitution:
// ALSRAC's candidate scan restricted, per root node, to a bounded local
// window instead of the root's entire transitive fanin cone. The global
// scan touches O(|TFI|) nodes per root — quadratic over the circuit — so it
// cannot reach million-node AIGs; a window bounds the per-root work by a
// constant, making a full generation pass linear in circuit size with flat
// peak memory.
//
// Window extraction follows mockturtle's reconvergence-driven cut
// computation: starting from the root's fanins, the leaf whose expansion
// adds the fewest new leaves is replaced by its fanins (cost 0 expansions
// are exactly reconvergences), subject to a leaf budget MaxPIs and a volume
// budget MaxNodes, with fanout-based skip limits for roots and divisors.
//
// The care patterns a window is scored on are the global simulation words
// of package sim's persistent Arena: the window function of every inner
// node on the window's input stimuli (the leaves' arena words) equals its
// global function on the circuit stimuli, so the arena words of the window
// nodes ARE the local simulation — reused, not recomputed, which keeps
// local patterns bitwise consistent with global ones. Candidate generation
// over the window divisor pool runs through resub.Scanner, the same kernel
// as the global path: a window that reaches the circuit PIs produces
// bitwise-identical candidates (see the equivalence property test).
package window

import (
	"slices"

	"repro/internal/aig"
	"repro/internal/cut"
)

// Config bounds window extraction. The zero value of every field means
// "unbounded" / "no skip": Config{} degrades to full-TFI windows, which is
// what the window-vs-global equivalence property runs on. DefaultConfig
// returns production bounds.
type Config struct {
	// MaxPIs bounds the number of window inputs (cut leaves). A leaf
	// expansion that would leave more than MaxPIs leaves is not taken.
	MaxPIs int
	// MaxNodes bounds the window volume: the number of inner nodes
	// (expanded leaves plus the root).
	MaxNodes int
	// MaxDivisors caps the divisor pool handed to the candidate scan, after
	// level ordering — the pool keeps its first MaxDivisors entries. (This
	// is mockturtle's max_divisors, a pool cap; resub.Config.MaxDivisors is
	// the divisor-set width and unrelated.)
	MaxDivisors int
	// SkipFanoutRoots skips root nodes with more than this many fanout
	// references entirely — high-fanout nodes are rarely replaceable and
	// their windows are expensive.
	SkipFanoutRoots int
	// SkipFanoutDivisors drops divisor candidates with more than this many
	// fanout references from the pool.
	SkipFanoutDivisors int
}

// DefaultConfig returns the production window bounds, in the spirit of
// mockturtle's resubstitution_params (max_pis 8, max_divisors 150,
// skip_fanout_limit_for_roots 1000, skip_fanout_limit_for_divisors 100).
func DefaultConfig() Config {
	return Config{
		MaxPIs:             8,
		MaxNodes:           128,
		MaxDivisors:        150,
		SkipFanoutRoots:    1000,
		SkipFanoutDivisors: 100,
	}
}

// Window is one extracted reconvergence-driven window: Cut.Leaves are the
// window inputs (every PI-to-root path crosses a leaf) and Inner the nodes
// between them, root included. Both slices are sorted by node id and owned
// by the Extractor — valid until its next Extract call.
type Window struct {
	Root  aig.Node
	Cut   cut.Cut
	Inner []aig.Node
}

// Extractor computes windows over one graph. The graph, the logic levels
// and the fanout counts are shared read-only across extractors; the
// membership stamps and result slices are private, so concurrent workers
// each own an Extractor. Fanout counts are aig.Graph.RefCounts — AND fanins
// plus PO references — matching what the skip limits mean elsewhere in the
// module.
type Extractor struct {
	g      *aig.Graph
	cfg    Config
	levels []int32
	fanout []int32

	// Window membership is epoch-stamped: mark[n]==epoch means n is in the
	// current window, and additionally leaf[n]==epoch means it is a leaf.
	mark  []int32
	leaf  []int32
	epoch int32

	leaves []aig.Node // current leaf set, in discovery order during expansion
	pool   []aig.Node // divisor pool scratch, reused across windows
	win    Window
}

// NewExtractor prepares an Extractor over g. levels must be g.Levels() and
// fanout g.RefCounts() for the same graph revision.
func NewExtractor(g *aig.Graph, cfg Config, levels, fanout []int32) *Extractor {
	n := g.NumNodes()
	return &Extractor{
		g: g, cfg: cfg, levels: levels, fanout: fanout,
		mark: make([]int32, n),
		leaf: make([]int32, n),
	}
}

// Extract computes the window of root (which must be a live AND node), or
// returns nil when the root's fanout exceeds Config.SkipFanoutRoots. The
// result is a pure function of the graph and the root — independent of any
// previously extracted window — which is what makes sharding roots across
// workers deterministic.
//
// Expansion policy: while the volume budget lasts, the AND leaf whose
// replacement by its fanins adds the fewest new leaves (ties: largest node
// id, i.e. deepest in the cone) is expanded, unless that would exceed the
// leaf budget. Cost-0 expansions are reconvergences — they shrink the leaf
// set — so reconvergent regions are absorbed first.
func (e *Extractor) Extract(root aig.Node) *Window {
	g, cfg := e.g, &e.cfg
	if cfg.SkipFanoutRoots > 0 && int(e.fanout[root]) > cfg.SkipFanoutRoots {
		return nil
	}
	e.epoch++
	e.mark[root] = e.epoch
	e.win.Root = root
	e.win.Inner = append(e.win.Inner[:0], root)
	e.leaves = e.leaves[:0]
	for _, f := range [2]aig.Node{g.Fanin0(root).Node(), g.Fanin1(root).Node()} {
		if e.mark[f] != e.epoch {
			e.mark[f] = e.epoch
			e.leaf[f] = e.epoch
			e.leaves = append(e.leaves, f)
		}
	}

	for cfg.MaxNodes <= 0 || len(e.win.Inner) < cfg.MaxNodes {
		best, bestCost := -1, 3
		for i, l := range e.leaves {
			if !g.IsAnd(l) {
				continue
			}
			cost := 0
			for _, f := range [2]aig.Node{g.Fanin0(l).Node(), g.Fanin1(l).Node()} {
				if e.mark[f] != e.epoch {
					cost++
				}
			}
			if cfg.MaxPIs > 0 && len(e.leaves)-1+cost > cfg.MaxPIs {
				continue
			}
			if cost < bestCost || (cost == bestCost && l > e.leaves[best]) {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			break
		}
		l := e.leaves[best]
		e.leaves = append(e.leaves[:best], e.leaves[best+1:]...)
		e.leaf[l] = e.epoch - 1 // demote: still in the window, no longer a leaf
		e.win.Inner = append(e.win.Inner, l)
		for _, f := range [2]aig.Node{g.Fanin0(l).Node(), g.Fanin1(l).Node()} {
			if e.mark[f] != e.epoch {
				e.mark[f] = e.epoch
				e.leaf[f] = e.epoch
				e.leaves = append(e.leaves, f)
			}
		}
	}

	slices.Sort(e.leaves)
	slices.Sort(e.win.Inner)
	e.win.Cut.Leaves = e.leaves
	return &e.win
}

// Divisors returns the divisor pool of the current window: every window
// node (leaves and inner, root included — the scan skips it) whose fanout
// does not exceed Config.SkipFanoutDivisors, sorted by (level, id)
// ascending — or descending levels with ascending ids within a level when
// descLevels is set — exactly the order the global path's cone scan
// produces, then truncated to Config.MaxDivisors entries. The slice is
// owned by the Extractor and valid until the next Extract call.
func (e *Extractor) Divisors(descLevels bool) []aig.Node {
	lim := int32(e.cfg.SkipFanoutDivisors)
	pool := append(e.pool[:0], e.win.Inner...)
	pool = append(pool, e.win.Cut.Leaves...)
	e.pool = pool
	if lim > 0 {
		kept := pool[:0]
		for _, u := range pool {
			if e.fanout[u] <= lim {
				kept = append(kept, u)
			}
		}
		pool = kept
	}
	slices.SortFunc(pool, func(a, b aig.Node) int {
		la, lb := e.levels[a], e.levels[b]
		if la != lb {
			if descLevels {
				return int(lb - la)
			}
			return int(la - lb)
		}
		return int(a - b)
	})
	if e.cfg.MaxDivisors > 0 && len(pool) > e.cfg.MaxDivisors {
		pool = pool[:e.cfg.MaxDivisors]
	}
	return pool
}

// MFFCInWindow computes the size of the current window root's maximal
// fanout-free cone restricted to the window: the number of AND nodes that
// would die with the root, descending only through inner nodes. It equals
// aig.Graph.MFFCSize exactly when the window leaves are PIs (the
// equivalence configuration) and is a conservative lower bound otherwise —
// logic below the leaves that would also die is not counted, so windowed
// gains never overstate the global gain. refs must be a mutable copy of
// the graph's reference counts; it is restored before returning.
func (e *Extractor) MFFCInWindow(refs []int32) int {
	count := e.deref(e.win.Root, refs)
	e.reref(e.win.Root, refs)
	return count
}

func (e *Extractor) isInner(n aig.Node) bool {
	return e.mark[n] == e.epoch && e.leaf[n] != e.epoch && e.g.IsAnd(n)
}

func (e *Extractor) deref(n aig.Node, refs []int32) int {
	count := 1
	for _, f := range [2]aig.Node{e.g.Fanin0(n).Node(), e.g.Fanin1(n).Node()} {
		refs[f]--
		if refs[f] == 0 && e.isInner(f) {
			count += e.deref(f, refs)
		}
	}
	return count
}

func (e *Extractor) reref(n aig.Node, refs []int32) {
	for _, f := range [2]aig.Node{e.g.Fanin0(n).Node(), e.g.Fanin1(n).Node()} {
		if refs[f] == 0 && e.isInner(f) {
			e.reref(f, refs)
		}
		refs[f]++
	}
}
