package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startAPI brings up a manager plus its HTTP handler on an httptest server.
func startAPI(t *testing.T, cfg Config) (*httptest.Server, *Manager, func()) {
	t.Helper()
	m, stop := startManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m))
	return srv, m, func() {
		srv.Close()
		stop()
	}
}

func postJob(t *testing.T, srv *httptest.Server, query string, circuit []byte) JobStatus {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs?"+query, "application/octet-stream", bytes.NewReader(circuit))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("POST /jobs: decoding %q: %v", body, err)
	}
	return st
}

func getStatus(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(srv.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("GET /jobs/%s: decode: %v", id, err)
	}
	return st
}

func waitStatusHTTP(t *testing.T, srv *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, srv, id)
		if st.State == want {
			return st
		}
		if st.State.terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s in state %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAPISubmitPollResult drives the full happy path over HTTP: submit a
// circuit, poll status, fetch the result in every supported format.
func TestAPISubmitPollResult(t *testing.T) {
	srv, _, stop := startAPI(t, Config{Dir: t.TempDir(), Now: time.Now})
	defer stop()

	circuit := testCircuit(t)
	spec := testSpec()
	want, wantAAG := referenceRun(t, spec, circuit)

	st := postJob(t, srv,
		fmt.Sprintf("metric=er&threshold=%g&seed=%d&eval=%d&workers=1",
			spec.Threshold, spec.Seed, spec.EvalPatterns), circuit)
	if st.State != StateQueued {
		t.Fatalf("fresh job state %s", st.State)
	}
	final := waitStatusHTTP(t, srv, st.ID, StateDone)
	if final.FinalError != want.FinalError || final.Iterations != want.Iterations {
		t.Fatalf("HTTP result error %v / %d iterations, reference %v / %d",
			final.FinalError, final.Iterations, want.FinalError, want.Iterations)
	}
	if len(final.History) != want.Iterations {
		t.Fatalf("history over HTTP has %d records, want %d", len(final.History), want.Iterations)
	}

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, wantAAG) {
		t.Fatal("result over HTTP differs from direct core.Run")
	}
	for _, format := range []string{"aig", "blif", "v"} {
		resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/result?format=" + format)
		if err != nil {
			t.Fatalf("GET result?format=%s: %v", format, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("result format %s: status %d, %d bytes", format, resp.StatusCode, len(body))
		}
	}
	resp, err = http.Get(srv.URL + "/jobs/" + st.ID + "/result?format=bogus")
	if err != nil {
		t.Fatalf("GET result?format=bogus: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format: status %d, want 400", resp.StatusCode)
	}
}

// TestAPIEventStream consumes the NDJSON stream end to end: every line must
// decode, sequence numbers must be gap-free, and the stream must close on
// the terminal event.
func TestAPIEventStream(t *testing.T) {
	srv, _, stop := startAPI(t, Config{Dir: t.TempDir()})
	defer stop()

	st := postJob(t, srv, "metric=er&threshold=0.05&seed=3&eval=1024&workers=1", testCircuit(t))
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	seq, steps, terminal := 0, 0, false
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Seq != seq {
			t.Fatalf("event seq %d, want %d", ev.Seq, seq)
		}
		seq++
		if ev.Step != nil {
			steps++
		}
		if ev.State.terminal() {
			terminal = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if steps == 0 || !terminal {
		t.Fatalf("stream saw %d steps, terminal=%v", steps, terminal)
	}

	// Reconnect with ?from= mid-log: the replay must pick up exactly there.
	resp2, err := http.Get(fmt.Sprintf("%s/jobs/%s/events?from=%d", srv.URL, st.ID, seq-1))
	if err != nil {
		t.Fatalf("GET events?from: %v", err)
	}
	defer resp2.Body.Close()
	data, _ := io.ReadAll(resp2.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("replay from %d returned %d events, want 1", seq-1, len(lines))
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[0]), &last); err != nil {
		t.Fatalf("replay decode: %v", err)
	}
	if last.Seq != seq-1 {
		t.Fatalf("replay seq %d, want %d", last.Seq, seq-1)
	}
}

// TestAPICancel exercises DELETE /jobs/{id}.
func TestAPICancel(t *testing.T) {
	srv, _, stop := startAPI(t, Config{Dir: t.TempDir()})
	defer stop()
	st := postJob(t, srv, "metric=er&threshold=0.05&seed=3&eval=1024&workers=1", testCircuit(t))
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		s := getStatus(t, srv, st.ID)
		if s.State.terminal() {
			if s.State != StateCancelled && s.State != StateDone {
				t.Fatalf("post-cancel state %s", s.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never terminated after cancel")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAPIListHealthzMetrics covers the remaining read endpoints.
func TestAPIListHealthzMetrics(t *testing.T) {
	srv, _, stop := startAPI(t, Config{Dir: t.TempDir(), Now: time.Now})
	defer stop()
	st := postJob(t, srv, "metric=er&threshold=0.05&seed=3&eval=1024&workers=1", testCircuit(t))
	waitStatusHTTP(t, srv, st.ID, StateDone)

	resp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("GET /jobs: err %v, jobs %+v", err, list.Jobs)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok": true`) {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"alsrac_jobs_submitted_total 1",
		`alsrac_jobs{state="done"} 1`,
		"# TYPE alsrac_step_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// apiError decodes the structured error body every failure path emits.
func apiError(t *testing.T, resp *http.Response) (msg, code string) {
	t.Helper()
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not structured JSON: %v", err)
	}
	if body.Error == "" || body.Code == "" {
		t.Fatalf("error body missing fields: %+v", body)
	}
	return body.Error, body.Code
}

// TestAPIRobustnessOversizedAndUnparsable pins the hardened submission
// paths: a body over the HTTP cap is cut off by MaxBytesReader with 413; a
// well-sized body that is not a usable circuit — malformed, or demanding
// more nodes than the parser limits allow — is 422 with a structured
// {"error", "code"} body distinguishing the two.
func TestAPIRobustnessOversizedAndUnparsable(t *testing.T) {
	srv, _, stop := startAPI(t, Config{Dir: t.TempDir()})
	defer stop()

	resp, err := http.Post(srv.URL+"/jobs", "application/octet-stream",
		bytes.NewReader(make([]byte, maxCircuitBytes+1)))
	if err != nil {
		t.Fatalf("POST oversized: %v", err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		resp.Body.Close()
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if _, code := apiError(t, resp); code != "too_large" {
		t.Fatalf("oversized body: code %q, want too_large", code)
	}
	resp.Body.Close()

	resp, err = http.Post(srv.URL+"/jobs", "application/octet-stream",
		strings.NewReader("this is not a circuit"))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		resp.Body.Close()
		t.Fatalf("garbage circuit: status %d, want 422", resp.StatusCode)
	}
	if _, code := apiError(t, resp); code != "unparsable" {
		t.Fatalf("garbage circuit: code %q, want unparsable", code)
	}
	resp.Body.Close()

	resp, err = http.Post(srv.URL+"/jobs", "application/octet-stream",
		strings.NewReader("aag 999999999 999999999 0 0 0\n"))
	if err != nil {
		t.Fatalf("POST over-limit header: %v", err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		resp.Body.Close()
		t.Fatalf("over-limit circuit: status %d, want 422", resp.StatusCode)
	}
	if _, code := apiError(t, resp); code != "too_large" {
		t.Fatalf("over-limit circuit: code %q, want too_large", code)
	}
	resp.Body.Close()
}

// TestAPIRejectsBadRequests pins the error paths: empty body, garbage
// params, unknown ids.
func TestAPIRejectsBadRequests(t *testing.T) {
	srv, _, stop := startAPI(t, Config{Dir: t.TempDir()})
	defer stop()

	resp, err := http.Post(srv.URL+"/jobs", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("POST empty: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/jobs?threshold=lots", "application/octet-stream",
		bytes.NewReader(testCircuit(t)))
	if err != nil {
		t.Fatalf("POST bad threshold: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad threshold: status %d", resp.StatusCode)
	}

	for _, path := range []string{"/jobs/j999999", "/jobs/j999999/result", "/jobs/j999999/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	st := postJob(t, srv, "metric=er&threshold=0.05&seed=3&eval=1024&workers=1", testCircuit(t))
	resp, err = http.Get(srv.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET early result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		// 200 only if the job already finished; otherwise 409.
		t.Fatalf("early result: status %d", resp.StatusCode)
	}
}
