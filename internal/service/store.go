package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/aig"
	"repro/internal/aiger"
)

// On-disk layout, one directory per job under the manager's root:
//
//	<dir>/<id>/spec.json    the normalized JobSpec
//	<dir>/<id>/circuit      the submitted circuit, verbatim
//	<dir>/<id>/checkpoint   core.Session checkpoint (periodic + at shutdown)
//	<dir>/<id>/state.json   last persisted lifecycle state
//	<dir>/<id>/result.aag   the optimized circuit, once done
//
// Every file is written via temp-file + rename, so a crash mid-write leaves
// either the old or the new version, never a torn one. A job whose
// state.json is missing or non-terminal is re-enqueued at startup; if a
// checkpoint exists the session resumes from it, otherwise the job restarts
// from the original circuit — both paths converge to the same final result
// because the flow is deterministic in the (seed, spec) pair.

// persistedState is the state.json payload.
type persistedState struct {
	State    State   `json:"state"`
	Error    string  `json:"error,omitempty"`
	TimedOut bool    `json:"timed_out,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	FinalErr float64 `json:"final_error,omitempty"`
}

type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating job dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) jobDir(id string) string { return filepath.Join(st.dir, id) }

// writeAtomic writes data to path via a temp file in the same directory and
// an atomic rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// createJob persists a new job's spec and circuit.
func (st *store) createJob(id string, spec JobSpec, circuit []byte) error {
	dir := st.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "spec.json"), specJSON); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "circuit"), circuit); err != nil {
		return err
	}
	return st.saveState(id, persistedState{State: StateQueued})
}

func (st *store) saveState(id string, ps persistedState) error {
	data, err := json.Marshal(ps)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(st.jobDir(id), "state.json"), data)
}

func (st *store) loadCircuit(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.jobDir(id), "circuit"))
}

func (st *store) checkpointPath(id string) string {
	return filepath.Join(st.jobDir(id), "checkpoint")
}

func (st *store) hasCheckpoint(id string) bool {
	_, err := os.Stat(st.checkpointPath(id))
	return err == nil
}

// saveCheckpoint snapshots the session atomically.
func (st *store) saveCheckpoint(id string, snapshot func(w *os.File) error) error {
	dir := st.jobDir(id)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if err := snapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, st.checkpointPath(id))
}

func (st *store) saveResult(id string, g *aig.Graph) error {
	var buf strings.Builder
	if err := aiger.Write(&buf, g, "aag"); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(st.jobDir(id), "result.aag"), []byte(buf.String()))
}

func (st *store) loadResult(id string) (*aig.Graph, error) {
	f, err := os.Open(filepath.Join(st.jobDir(id), "result.aag"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aiger.Read(f)
}

// storedJob is one job recovered from disk at startup.
type storedJob struct {
	id            string
	spec          JobSpec
	state         persistedState
	hasCheckpoint bool
}

// loadAll scans the job directory and returns every persisted job sorted by
// id (ids are zero-padded sequence numbers, so lexical order is submission
// order).
func (st *store) loadAll() ([]storedJob, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []storedJob
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "j") {
			continue
		}
		id := e.Name()
		specData, err := os.ReadFile(filepath.Join(st.jobDir(id), "spec.json"))
		if err != nil {
			continue // torn submission: spec.json is written first, skip
		}
		var spec JobSpec
		if err := json.Unmarshal(specData, &spec); err != nil {
			continue
		}
		sj := storedJob{id: id, spec: spec, hasCheckpoint: st.hasCheckpoint(id)}
		if data, err := os.ReadFile(filepath.Join(st.jobDir(id), "state.json")); err == nil {
			_ = json.Unmarshal(data, &sj.state)
		}
		if sj.state.State == "" {
			sj.state.State = StateQueued
		}
		out = append(out, sj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out, nil
}

// nextID returns the next job id after the highest one present on disk.
func (st *store) nextID(loaded []storedJob) int {
	next := 1
	for _, sj := range loaded {
		if n, err := strconv.Atoi(strings.TrimPrefix(sj.id, "j")); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

func formatID(n int) string { return fmt.Sprintf("j%06d", n) }
