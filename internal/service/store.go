package service

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/faultfs"
)

// On-disk layout, one directory per job under the manager's root:
//
//	<dir>/<id>/spec.json        the normalized JobSpec
//	<dir>/<id>/circuit          the submitted circuit, verbatim
//	<dir>/<id>/checkpoint.NNNNNN  core.Session checkpoint generations
//	<dir>/<id>/state.json       last persisted lifecycle state
//	<dir>/<id>/result.aag       the optimized circuit, once done
//
// Every file is written via temp-file + rename with an fsync of the file
// before the rename and an fsync of the parent directory after it, so a
// crash at any instant leaves either the old or the new version durable,
// never a torn or half-visible one. Checkpoints are kept as the last
// keepCheckpoints generations (checkpoint.000001, .000002, ...): restore
// tries the newest first and falls back generation by generation on
// corruption, so one torn or rotted checkpoint never loses a job. A job
// whose state.json is missing or non-terminal is re-enqueued at startup —
// unless it has crash-looped through too many recovery attempts, in which
// case it is quarantined (see Manager). All filesystem traffic flows
// through a faultfs.FS so the chaos tests can torture these exact paths.

// persistedState is the state.json payload.
type persistedState struct {
	State    State   `json:"state"`
	Error    string  `json:"error,omitempty"`
	TimedOut bool    `json:"timed_out,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	FinalErr float64 `json:"final_error,omitempty"`
	// Attempts counts recovery attempts since the last successful
	// checkpoint; the startup rescan quarantines a job beyond the limit.
	Attempts int `json:"attempts,omitempty"`
}

// keepCheckpoints is how many checkpoint generations survive pruning.
const keepCheckpoints = 3

type store struct {
	dir   string
	fs    faultfs.FS
	retry *retrier
}

func newStore(dir string, fsys faultfs.FS, retry *retrier) (*store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating job dir: %w", err)
	}
	return &store{dir: dir, fs: fsys, retry: retry}, nil
}

func (st *store) jobDir(id string) string { return filepath.Join(st.dir, id) }

// writeAtomic writes data to path via a temp file in the same directory,
// fsyncs it, renames it into place and fsyncs the directory (the shared
// faultfs.WriteAtomic primitive), retrying the whole sequence on transient
// errnos. A failure leaves the target file untouched (old version or absent)
// and no temp residue.
func (st *store) writeAtomic(path string, data []byte) error {
	return st.retry.do(path, func() error {
		return faultfs.WriteAtomic(st.fs, path, data)
	})
}

// createJob persists a new job's spec and circuit.
func (st *store) createJob(id string, spec JobSpec, circuit []byte) error {
	dir := st.jobDir(id)
	if err := st.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := st.writeAtomic(filepath.Join(dir, "spec.json"), specJSON); err != nil {
		return err
	}
	if err := st.writeAtomic(filepath.Join(dir, "circuit"), circuit); err != nil {
		return err
	}
	return st.saveState(id, persistedState{State: StateQueued})
}

func (st *store) saveState(id string, ps persistedState) error {
	data, err := json.Marshal(ps)
	if err != nil {
		return err
	}
	return st.writeAtomic(filepath.Join(st.jobDir(id), "state.json"), data)
}

func (st *store) loadCircuit(id string) ([]byte, error) {
	return st.fs.ReadFile(filepath.Join(st.jobDir(id), "circuit"))
}

// --- checkpoint generations ------------------------------------------------

const ckptPrefix = "checkpoint"

// checkpointGens lists the job's checkpoint files newest-first: numbered
// generations in descending sequence, then a legacy unnumbered "checkpoint"
// file (written by older daemons) as the oldest.
func (st *store) checkpointGens(id string) []string {
	entries, err := st.fs.ReadDir(st.jobDir(id))
	if err != nil {
		return nil
	}
	var seqs []int
	legacy := false
	for _, e := range entries {
		name := e.Name()
		if name == ckptPrefix {
			legacy = true
			continue
		}
		if rest, ok := strings.CutPrefix(name, ckptPrefix+"."); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > 0 {
				seqs = append(seqs, n)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	var out []string
	for _, n := range seqs {
		out = append(out, filepath.Join(st.jobDir(id), ckptGenName(n)))
	}
	if legacy {
		out = append(out, filepath.Join(st.jobDir(id), ckptPrefix))
	}
	return out
}

func ckptGenName(n int) string { return fmt.Sprintf("%s.%06d", ckptPrefix, n) }

func (st *store) hasCheckpoint(id string) bool {
	return len(st.checkpointGens(id)) > 0
}

// saveCheckpoint snapshots the session into a fresh checkpoint generation
// (temp file, fsync, rename, fsync dir — under transient-errno retry), then
// prunes generations beyond keepCheckpoints. Pruning failures are ignored:
// an extra old generation is harmless, a failed new one is not.
func (st *store) saveCheckpoint(id string, snapshot func(w io.Writer) error) error {
	dir := st.jobDir(id)
	gens := st.checkpointGens(id)
	next := 1
	for _, g := range gens {
		base := filepath.Base(g)
		if rest, ok := strings.CutPrefix(base, ckptPrefix+"."); ok {
			if n, err := strconv.Atoi(rest); err == nil && n >= next {
				next = n + 1
			}
		}
	}
	target := filepath.Join(dir, ckptGenName(next))
	err := st.retry.do(target, func() error {
		tmp, err := st.fs.CreateTemp(dir, ".ckpt-*")
		if err != nil {
			return err
		}
		name := tmp.Name()
		cleanup := func() { _ = st.fs.Remove(name) }
		if err := snapshot(tmp); err != nil {
			tmp.Close()
			cleanup()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			cleanup()
			return err
		}
		if err := tmp.Close(); err != nil {
			cleanup()
			return err
		}
		if err := st.fs.Rename(name, target); err != nil {
			cleanup()
			return err
		}
		return st.fs.SyncDir(dir)
	})
	if err != nil {
		return err
	}
	if gens := st.checkpointGens(id); len(gens) > keepCheckpoints {
		for _, old := range gens[keepCheckpoints:] {
			_ = st.fs.Remove(old)
		}
	}
	return nil
}

func (st *store) saveResult(id string, g *aig.Graph) error {
	var buf strings.Builder
	if err := aiger.Write(&buf, g, "aag"); err != nil {
		return err
	}
	return st.writeAtomic(filepath.Join(st.jobDir(id), "result.aag"), []byte(buf.String()))
}

func (st *store) loadResult(id string) (*aig.Graph, error) {
	f, err := st.fs.Open(filepath.Join(st.jobDir(id), "result.aag"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aiger.Read(f)
}

// storedJob is one job recovered from disk at startup.
type storedJob struct {
	id            string
	spec          JobSpec
	state         persistedState
	hasCheckpoint bool
}

// loadAll scans the job directory and returns every persisted job sorted by
// id (ids are zero-padded sequence numbers, so lexical order is submission
// order). Stale temp files from writes interrupted by a crash — never
// renamed into place, so never visible as artifacts — are swept out here.
func (st *store) loadAll() ([]storedJob, error) {
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []storedJob
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "j") {
			continue
		}
		id := e.Name()
		st.sweepTemps(id)
		specData, err := st.fs.ReadFile(filepath.Join(st.jobDir(id), "spec.json"))
		if err != nil {
			continue // torn submission: spec.json is written first, skip
		}
		var spec JobSpec
		if err := json.Unmarshal(specData, &spec); err != nil {
			continue
		}
		sj := storedJob{id: id, spec: spec, hasCheckpoint: st.hasCheckpoint(id)}
		if data, err := st.fs.ReadFile(filepath.Join(st.jobDir(id), "state.json")); err == nil {
			_ = json.Unmarshal(data, &sj.state)
		}
		if sj.state.State == "" {
			sj.state.State = StateQueued
		}
		out = append(out, sj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out, nil
}

// sweepTemps removes interrupted-write residue (.tmp-*, .ckpt-*) from a job
// directory. Errors are ignored: a leftover temp file is invisible to every
// reader, sweeping is pure hygiene.
func (st *store) sweepTemps(id string) {
	entries, err := st.fs.ReadDir(st.jobDir(id))
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") || strings.HasPrefix(name, ".ckpt-") {
			_ = st.fs.Remove(filepath.Join(st.jobDir(id), name))
		}
	}
}

// nextID returns the next job id after the highest one present on disk.
func (st *store) nextID(loaded []storedJob) int {
	next := 1
	for _, sj := range loaded {
		if n, err := strconv.Atoi(strings.TrimPrefix(sj.id, "j")); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

func formatID(n int) string { return fmt.Sprintf("j%06d", n) }
