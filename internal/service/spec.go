// Package service implements alsracd's job engine: a bounded submission
// queue feeding a pool of workers, each driving one checkpointed core.Session
// at a time. Jobs survive process death — every job's spec, circuit,
// checkpoint and result live under one directory, a new Manager re-enqueues
// whatever was interrupted, and a restored session continues bitwise
// identically to the run that was killed (the core checkpoint contract).
//
// The package obeys the same alsraclint determinism discipline as the
// synthesis core: no wall-clock reads (the Manager's clock is injected via
// Config.Now), no unseeded randomness (job IDs are sequential), and no
// ordered results derived from map iteration (the job table keeps an
// insertion-ordered slice beside its lookup map).
package service

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/errest"
)

// JobSpec is the serializable description of one synthesis job: everything
// needed to rebuild identical core.Options after a restart. The circuit
// body is stored separately (it can be large).
type JobSpec struct {
	Metric    string  `json:"metric"`    // "er", "nmed", "mred" or "maxerr"
	Threshold float64 `json:"threshold"` // error threshold Et

	// MaxError > 0 makes the job certified: every winning LAC is proven by
	// the exact checker (internal/exact) to keep the worst-case normalized
	// error within this bound before it is committed. Metric "maxerr" is
	// the dedicated certified job type — it guides the search with NMED and
	// defaults MaxError to Threshold.
	MaxError float64 `json:"max_error,omitempty"`
	// CertConflictBudget caps the CDCL conflicts of one SAT certification
	// (0 = unbounded); an exhausted budget rejects the candidate.
	CertConflictBudget int64 `json:"cert_conflict_budget,omitempty"`

	Seed           int64   `json:"seed"`
	EvalPatterns   int     `json:"eval_patterns"`
	InitialRounds  int     `json:"initial_rounds"`
	MaxLACsPerNode int     `json:"max_lacs_per_node"`
	Patience       int     `json:"patience"`
	Scale          float64 `json:"scale"`
	MaxStall       int     `json:"max_stall"`
	MaxDepthRatio  float64 `json:"max_depth_ratio"`
	Workers        int     `json:"workers"` // per-session worker goroutines (0 = all CPUs)

	// Windowed selects reconvergence-driven windowed candidate generation;
	// the Window* knobs follow core.Options semantics (0 = production
	// default, negative = unbounded / no skip).
	Windowed                 bool `json:"windowed,omitempty"`
	WindowMaxPIs             int  `json:"window_max_pis,omitempty"`
	WindowMaxNodes           int  `json:"window_max_nodes,omitempty"`
	WindowMaxDivisors        int  `json:"window_max_divisors,omitempty"`
	WindowSkipFanoutRoots    int  `json:"window_skip_fanout_roots,omitempty"`
	WindowSkipFanoutDivisors int  `json:"window_skip_fanout_divisors,omitempty"`

	// Format of the submitted circuit: "blif", "aag", "aig" or "auto"
	// (sniffed from the payload).
	Format string `json:"format"`

	// TimeoutSec bounds one running attempt of the job; on expiry the job
	// completes with its best-so-far result (TimedOut is set on the status).
	// 0 means no deadline.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// ParseMetric maps the wire name of a metric to the errest constant that
// guides the search. "maxerr" — the certified job type — is guided by NMED
// (the statistical estimate of the same arithmetic-error scale the exact
// checker certifies).
func ParseMetric(s string) (errest.Metric, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "er":
		return errest.ER, nil
	case "nmed", "maxerr":
		return errest.NMED, nil
	case "mred":
		return errest.MRED, nil
	}
	return 0, fmt.Errorf("unknown metric %q (er, nmed, mred, maxerr)", s)
}

// Normalize fills unset fields with the paper's default parameters so the
// persisted spec is self-contained: a resumed job must rebuild the exact
// same core.Options even if the daemon's defaults change between versions.
func (s *JobSpec) Normalize() error {
	// Canonicalize the metric first so the persisted form is deterministic:
	// an absent field means the default metric (v2-era specs and clients that
	// never send one), surrounding whitespace and case are stripped, and an
	// unknown name fails here with a stable message rather than differently
	// at each consumer.
	s.Metric = strings.ToLower(strings.TrimSpace(s.Metric))
	if s.Metric == "" {
		s.Metric = "er"
	}
	if _, err := ParseMetric(s.Metric); err != nil {
		return err
	}
	if s.Threshold < 0 {
		return fmt.Errorf("threshold must be non-negative, got %v", s.Threshold)
	}
	if s.MaxError < 0 {
		return fmt.Errorf("max_error must be non-negative, got %v", s.MaxError)
	}
	if s.CertConflictBudget < 0 {
		s.CertConflictBudget = 0
	}
	if s.Metric == "maxerr" {
		// The certified job type: pin the bound into the persisted spec so a
		// resumed job certifies against exactly what the submitter asked for.
		if s.MaxError == 0 {
			s.MaxError = s.Threshold
		}
		if s.MaxError <= 0 {
			return fmt.Errorf("metric maxerr needs a positive max_error (or threshold), got %v", s.MaxError)
		}
	}
	def := core.DefaultOptions(errest.ER, 0)
	if s.Seed == 0 {
		s.Seed = def.Seed
	}
	if s.EvalPatterns <= 0 {
		s.EvalPatterns = def.EvalPatterns
	}
	if s.InitialRounds <= 0 {
		s.InitialRounds = def.InitialRounds
	}
	if s.MaxLACsPerNode <= 0 {
		s.MaxLACsPerNode = def.MaxLACsPerNode
	}
	if s.Patience <= 0 {
		s.Patience = def.Patience
	}
	if s.Scale <= 0 || s.Scale > 1 {
		s.Scale = def.Scale
	}
	if s.MaxStall <= 0 {
		s.MaxStall = def.MaxStall
	}
	if s.MaxDepthRatio < 0 {
		s.MaxDepthRatio = 0
	}
	if s.Workers < 0 {
		s.Workers = 0
	}
	if s.TimeoutSec < 0 {
		s.TimeoutSec = 0
	}
	if s.Windowed {
		// Pin the window bounds a zero knob resolves to, so the persisted
		// spec stays self-contained even if the production defaults change
		// between daemon versions. Negative (unbounded) knobs keep their
		// stable meaning and persist as-is.
		def := (&core.Options{}).WindowConfig()
		fill := func(v *int, d int) {
			if *v == 0 {
				*v = d
			}
		}
		fill(&s.WindowMaxPIs, def.MaxPIs)
		fill(&s.WindowMaxNodes, def.MaxNodes)
		fill(&s.WindowMaxDivisors, def.MaxDivisors)
		fill(&s.WindowSkipFanoutRoots, def.SkipFanoutRoots)
		fill(&s.WindowSkipFanoutDivisors, def.SkipFanoutDivisors)
	}
	if s.Format == "" {
		s.Format = "auto"
	}
	switch s.Format {
	case "auto", "blif", "aag", "aig":
	default:
		return fmt.Errorf("unknown circuit format %q (auto, blif, aag, aig)", s.Format)
	}
	return nil
}

// Options rebuilds the core.Options for this spec. Two calls on the same
// normalized spec return identical options — the property crash-safe resume
// relies on.
func (s JobSpec) Options() (core.Options, error) {
	m, err := ParseMetric(s.Metric)
	if err != nil {
		return core.Options{}, err
	}
	opts := core.DefaultOptions(m, s.Threshold)
	opts.MaxError = s.MaxError
	opts.CertConflictBudget = s.CertConflictBudget
	opts.Seed = s.Seed
	opts.EvalPatterns = s.EvalPatterns
	opts.InitialRounds = s.InitialRounds
	opts.MaxLACsPerNode = s.MaxLACsPerNode
	opts.Patience = s.Patience
	opts.Scale = s.Scale
	opts.MaxStall = s.MaxStall
	opts.MaxDepthRatio = s.MaxDepthRatio
	opts.Workers = s.Workers
	opts.Windowed = s.Windowed
	opts.WindowMaxPIs = s.WindowMaxPIs
	opts.WindowMaxNodes = s.WindowMaxNodes
	opts.WindowMaxDivisors = s.WindowMaxDivisors
	opts.WindowSkipFanoutRoots = s.WindowSkipFanoutRoots
	opts.WindowSkipFanoutDivisors = s.WindowSkipFanoutDivisors
	return opts, nil
}

// ParseCircuit decodes the submitted circuit body according to the spec's
// format ("auto" sniffs AIGER magic, otherwise BLIF).
func ParseCircuit(format string, data []byte) (*aig.Graph, error) {
	switch format {
	case "aag", "aig":
		return aiger.Read(bytes.NewReader(data))
	case "blif":
		return readBLIF(data)
	case "auto", "":
		if bytes.HasPrefix(data, []byte("aag ")) || bytes.HasPrefix(data, []byte("aig ")) {
			return aiger.Read(bytes.NewReader(data))
		}
		return readBLIF(data)
	}
	return nil, fmt.Errorf("unknown circuit format %q", format)
}

func readBLIF(data []byte) (*aig.Graph, error) {
	net, err := blif.Read(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return net.ToAIG()
}
