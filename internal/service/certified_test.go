package service

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// certSpec is the certified job type: NMED-guided search with every commit
// proven by the exact checker to keep the worst-case error within the bound.
func certSpec() JobSpec {
	return JobSpec{
		Metric:       "maxerr",
		Threshold:    0.03,
		Seed:         3,
		EvalPatterns: 1024,
		Workers:      1,
	}
}

// TestCertifiedJobEndToEnd: a certified job submitted through the manager
// runs to completion, its event stream carries certified (and possibly
// rejected) step events, and the certification metrics move.
func TestCertifiedJobEndToEnd(t *testing.T) {
	circuit := testCircuit(t)
	spec := certSpec()
	want, wantAAG := referenceRun(t, spec, circuit)

	m, stop := startManager(t, Config{Dir: t.TempDir(), Now: time.Now})
	defer stop()

	st, err := m.Submit(spec, circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitState(t, m, st.ID, StateDone)
	if final.FinalError != want.FinalError || final.Applied != want.Applied {
		t.Fatalf("certified job got %v/%d applied, reference %v/%d",
			final.FinalError, final.Applied, want.FinalError, want.Applied)
	}
	if !bytes.Equal(graphAAG(t, m, st.ID), wantAAG) {
		t.Fatal("certified service result differs from direct core.Run")
	}

	// Every committed step of a certified job is a "certified" event — the
	// NDJSON stream must never show a plain "applied" — and rejected events
	// must agree with the rejection counter.
	job, _ := m.Get(st.ID)
	events, _, _ := job.Subscribe(0)
	certified, rejected := 0, 0
	for _, ev := range events {
		if ev.Step == nil {
			continue
		}
		switch ev.Step.Kind {
		case core.EventApplied:
			t.Fatalf("plain applied event in a certified job: %+v", ev.Step)
		case core.EventCertified:
			certified++
			if ev.Step.CertBackend == "" {
				t.Fatalf("certified event without a backend: %+v", ev.Step)
			}
		case core.EventCertRejected:
			rejected++
		}
	}
	if certified != want.Applied {
		t.Fatalf("%d certified events, reference applied %d", certified, want.Applied)
	}

	var calls uint64
	for _, c := range m.met.certifyTotal {
		calls += c.Value()
	}
	if calls == 0 {
		t.Fatal("alsrac_certify_total never moved")
	}
	if got := m.met.certRejected.Value(); got != uint64(rejected) {
		t.Fatalf("alsrac_certify_rejected_total %d, %d rejected events", got, rejected)
	}
	var observed uint64
	for _, h := range m.met.certifySeconds {
		observed += h.Count()
	}
	if observed != calls {
		t.Fatalf("latency histograms observed %d certifications, counters say %d", observed, calls)
	}
}

// TestCertifiedKillAndResume is the acceptance crash test for the certified
// job type: interrupt a certified job mid-run (checkpoint v3 carries the
// certification state), restart over the same directory, and require a
// final graph bitwise identical to the uninterrupted certified run.
func TestCertifiedKillAndResume(t *testing.T) {
	dir := t.TempDir()
	circuit := testCircuit(t)
	spec := certSpec()
	want, wantAAG := referenceRun(t, spec, circuit)
	if want.Iterations < 3 {
		t.Fatalf("reference run too short (%d iterations) to interrupt meaningfully", want.Iterations)
	}

	m1, stop1 := startManager(t, Config{Dir: dir, CheckpointEvery: 1})
	st, err := m1.Submit(spec, circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, _ := m1.Get(st.ID)
		s := job.Status(false)
		if s.Iterations >= 1 || s.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("certified job never started iterating")
		}
	}
	stop1()

	interrupted, _ := m1.Get(st.ID)
	if istat := interrupted.Status(false); !istat.State.terminal() {
		gens, err := filepath.Glob(filepath.Join(dir, st.ID, "checkpoint.*"))
		if err != nil || len(gens) == 0 {
			t.Fatalf("no checkpoint generation after shutdown (%v, %v)", gens, err)
		}
	}

	m2, stop2 := startManager(t, Config{Dir: dir, CheckpointEvery: 1})
	defer stop2()
	final := waitState(t, m2, st.ID, StateDone)
	if final.FinalError != want.FinalError ||
		final.Iterations != want.Iterations || final.Applied != want.Applied {
		t.Fatalf("resumed certified run %v/%d/%d, reference %v/%d/%d",
			final.FinalError, final.Iterations, final.Applied,
			want.FinalError, want.Iterations, want.Applied)
	}
	if !bytes.Equal(graphAAG(t, m2, st.ID), wantAAG) {
		t.Fatal("resumed certified result differs bitwise from uninterrupted run")
	}

	// The rejection history survives the restart: rejected records in the
	// final status must match the reference run's.
	wantRejected := 0
	for _, rec := range want.History {
		if rec.Rejected {
			wantRejected++
		}
	}
	gotRejected := 0
	for _, rec := range final.History {
		if rec.Rejected {
			gotRejected++
		}
	}
	if gotRejected != wantRejected {
		t.Fatalf("resumed history has %d rejected records, reference %d", gotRejected, wantRejected)
	}
}
